// checkjson validates a brew-bench -json output file: it must parse and
// carry at least one family with at least one row with a nonzero cycle
// count. If the tiered family (E6) is present, its acceptance bars are
// enforced: tier-0 rewrite cost at least 3x below tier-1 (E6b >= 3*E6a)
// and post-promotion steady-state cycles exactly equal to the tier-1
// direct result (E6e == E6d). If the polymorph family (E7) is present,
// the multi-version specialization bar is enforced: the single-variant
// baseline's per-caller cost must be at least 2x the variant table's
// (E7a >= 2*E7b), and the generic-fallthrough row E7c must exist. If the
// obs family (E8) is present, the observability bars are enforced:
// enabled tracing within 2% of disabled on the steady-state wall clock
// (E8b <= 1.02*E8a, with an absolute noise floor for sub-millisecond
// jitter), identical steady-state emulated cycles (E8d == E8c), a
// nonempty reconstructed lifecycle trace (E8e > 0), and a sanity cap on
// the traced submit path (E8g <= 3*E8f + noise — the per-request span
// cost is real but must not balloon). If the persist family (E9) is
// present, the warm-start bars are enforced: a cold boot must trace
// (E9a > 0), a warm boot re-traces at least 5x less (5*E9b <= E9a),
// revalidation stays within 5% of the warm-boot wall plus an absolute
// floor for its fixed per-record cost (E9c <= E9d/20 + noise), and the
// persist/reload oracle reports zero divergences (E9e == 0). If the load
// family (E10, cmd/brew-load) is present, the sharded-service bars are
// enforced: the modeled single-shard makespan at least 4x the sharded one
// (E10a >= 4*E10b — deterministic work units, so this is the structural
// speedup, not wall clock), warm-path tail latency bounded (E10c <= E10e
// <= 25ms), zero warm-path lock acquisitions (E10f == 0), zero
// high-priority sheds under overload (E10g == 0), and nonzero warm
// throughput (E10h > 0).
// Used by scripts/verify.sh.
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: checkjson <bench.json>")
		os.Exit(2)
	}
	b, err := os.ReadFile(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var out struct {
		Families []struct {
			Key  string `json:"key"`
			Rows []struct {
				ID     string `json:"id"`
				Cycles uint64 `json:"cycles"`
			} `json:"rows"`
		} `json:"families"`
	}
	if err := json.Unmarshal(b, &out); err != nil {
		fmt.Fprintf(os.Stderr, "checkjson: %s does not parse: %v\n", os.Args[1], err)
		os.Exit(1)
	}
	rows := 0
	for _, f := range out.Families {
		nonzero := 0
		for _, r := range f.Rows {
			if r.ID == "" {
				fmt.Fprintf(os.Stderr, "checkjson: family %s has a row with an empty id\n", f.Key)
				os.Exit(1)
			}
			// Individual rows may legitimately cost zero (e.g. E5c's
			// warm-cache burst traces nothing), but a family where every
			// row is zero is a broken measurement.
			if r.Cycles > 0 {
				nonzero++
			}
			rows++
		}
		if len(f.Rows) > 0 && nonzero == 0 {
			fmt.Fprintf(os.Stderr, "checkjson: family %s has no row with nonzero cycles\n", f.Key)
			os.Exit(1)
		}
		if f.Key == "tiered" {
			byID := map[string]uint64{}
			for _, r := range f.Rows {
				byID[r.ID] = r.Cycles
			}
			for _, id := range []string{"E6a", "E6b", "E6d", "E6e"} {
				if _, ok := byID[id]; !ok {
					fmt.Fprintf(os.Stderr, "checkjson: tiered family is missing row %s\n", id)
					os.Exit(1)
				}
			}
			// E6a/E6b cycles are deterministic rewrite work units; the
			// tiered-rewriting acceptance bar is tier-0 at least 3x cheaper.
			if byID["E6b"] < 3*byID["E6a"] {
				fmt.Fprintf(os.Stderr,
					"checkjson: tiered: tier-1 rewrite cost %d is not >= 3x tier-0 cost %d\n",
					byID["E6b"], byID["E6a"])
				os.Exit(1)
			}
			// Promotion must fully recover tier-1 code quality: identical
			// steady-state cycles, not merely close.
			if byID["E6e"] != byID["E6d"] {
				fmt.Fprintf(os.Stderr,
					"checkjson: tiered: post-promotion steady state %d cycles != tier-1 direct %d\n",
					byID["E6e"], byID["E6d"])
				os.Exit(1)
			}
		}
		if f.Key == "polymorph" {
			byID := map[string]uint64{}
			for _, r := range f.Rows {
				byID[r.ID] = r.Cycles
			}
			for _, id := range []string{"E7a", "E7b", "E7c"} {
				if _, ok := byID[id]; !ok {
					fmt.Fprintf(os.Stderr, "checkjson: polymorph family is missing row %s\n", id)
					os.Exit(1)
				}
			}
			// E7a/E7b cycles are deterministic per-caller costs (execution
			// cycles plus rewrite work units over calls); the variant-table
			// acceptance bar is a >= 2x steady-state win per caller.
			if byID["E7a"] < 2*byID["E7b"] {
				fmt.Fprintf(os.Stderr,
					"checkjson: polymorph: single-variant cost %d is not >= 2x variant-table cost %d\n",
					byID["E7a"], byID["E7b"])
				os.Exit(1)
			}
		}
		if f.Key == "obs" {
			byID := map[string]uint64{}
			for _, r := range f.Rows {
				byID[r.ID] = r.Cycles
			}
			for _, id := range []string{"E8a", "E8b", "E8c", "E8d", "E8e", "E8f", "E8g"} {
				if _, ok := byID[id]; !ok {
					fmt.Fprintf(os.Stderr, "checkjson: obs family is missing row %s\n", id)
					os.Exit(1)
				}
			}
			// E8a/E8b are wall-clock nanoseconds over the same steady-state
			// sweeps (min of interleaved reps). No span fires inside the
			// data plane, so the tracing-overhead bar is 2%; a 5ms absolute
			// floor absorbs scheduler jitter on hosts where the measured
			// region ran short (tiny verify grids).
			const noiseNS = 5_000_000
			if limit := byID["E8a"] + byID["E8a"]/50 + noiseNS; byID["E8b"] > limit {
				fmt.Fprintf(os.Stderr,
					"checkjson: obs: enabled steady state %d ns exceeds disabled %d ns by more than 2%%+noise\n",
					byID["E8b"], byID["E8a"])
				os.Exit(1)
			}
			// E8f/E8g are the traced submit path: one trace and two
			// recorded spans per ~µs cache-hit submit is a real double-digit
			// percentage, reported honestly in the rows. The bar here is a
			// regression cap only: tracing must never triple the path.
			if limit := 3*byID["E8f"] + noiseNS; byID["E8g"] > limit {
				fmt.Fprintf(os.Stderr,
					"checkjson: obs: traced submit path %d ns exceeds 3x untraced %d ns + noise\n",
					byID["E8g"], byID["E8f"])
				os.Exit(1)
			}
			// Steady-state cycles are deterministic: tracing must cost the
			// emulated data plane exactly nothing.
			if byID["E8d"] != byID["E8c"] {
				fmt.Fprintf(os.Stderr,
					"checkjson: obs: enabled steady state %d cycles != disabled %d\n",
					byID["E8d"], byID["E8c"])
				os.Exit(1)
			}
			// The reconstructed coalesced-burst lifecycle must link events.
			if byID["E8e"] == 0 {
				fmt.Fprintf(os.Stderr, "checkjson: obs: reconstructed trace is empty\n")
				os.Exit(1)
			}
		}
		if f.Key == "persist" {
			byID := map[string]uint64{}
			for _, r := range f.Rows {
				byID[r.ID] = r.Cycles
			}
			for _, id := range []string{"E9a", "E9b", "E9c", "E9d", "E9e"} {
				if _, ok := byID[id]; !ok {
					fmt.Fprintf(os.Stderr, "checkjson: persist family is missing row %s\n", id)
					os.Exit(1)
				}
			}
			// E9a/E9b are trace counts: a cold boot must trace, and the
			// warm-start bar is at least 5x fewer traces after restart
			// (the reference run serves every request from the store: 0).
			if byID["E9a"] == 0 {
				fmt.Fprintf(os.Stderr, "checkjson: persist: cold boot traced nothing\n")
				os.Exit(1)
			}
			if 5*byID["E9b"] > byID["E9a"] {
				fmt.Fprintf(os.Stderr,
					"checkjson: persist: warm boot traces %d not >= 5x below cold boot %d\n",
					byID["E9b"], byID["E9a"])
				os.Exit(1)
			}
			// E9c/E9d are wall-clock nanoseconds: revalidation (digests,
			// checksums, install verification) must stay within 5% of the
			// whole warm boot, so adoption integrity is effectively free.
			// Revalidation has a fixed per-record cost independent of grid
			// size (decode walk + install verify), so a 5ms absolute floor
			// absorbs it on tiny verify grids where the boot itself runs
			// short; at the default grid the 5% term dominates.
			const revalNoiseNS = 5_000_000
			if limit := byID["E9d"]/20 + revalNoiseNS; byID["E9c"] > limit {
				fmt.Fprintf(os.Stderr,
					"checkjson: persist: revalidation %d ns exceeds 5%%+noise of warm boot %d ns\n",
					byID["E9c"], byID["E9d"])
				os.Exit(1)
			}
			// The persist/reload oracle must find cached == fresh, always.
			if byID["E9e"] != 0 {
				fmt.Fprintf(os.Stderr, "checkjson: persist: %d persist-oracle divergences\n", byID["E9e"])
				os.Exit(1)
			}
		}
		if f.Key == "load" {
			byID := map[string]uint64{}
			for _, r := range f.Rows {
				byID[r.ID] = r.Cycles
			}
			for _, id := range []string{"E10a", "E10b", "E10c", "E10d", "E10e", "E10f", "E10g", "E10h"} {
				if _, ok := byID[id]; !ok {
					fmt.Fprintf(os.Stderr, "checkjson: load family is missing row %s\n", id)
					os.Exit(1)
				}
			}
			// E10a/E10b are deterministic modeled makespans over rewrite
			// work units: sharding the service 8 ways must buy at least a
			// 4x structural speedup (shard count times balance).
			if byID["E10a"] < 4*byID["E10b"] {
				fmt.Fprintf(os.Stderr,
					"checkjson: load: single-shard makespan %d is not >= 4x sharded makespan %d\n",
					byID["E10a"], byID["E10b"])
				os.Exit(1)
			}
			// E10c..E10e are warm serve-path latency percentiles in wall
			// nanoseconds. The tail bar is generous (25ms) because the host
			// is time-shared, but a cache hit that takes that long means the
			// serve path is contending on something it must not touch.
			if byID["E10e"] > 25_000_000 {
				fmt.Fprintf(os.Stderr,
					"checkjson: load: warm p999 latency %d ns exceeds the 25ms tail bar\n", byID["E10e"])
				os.Exit(1)
			}
			if byID["E10e"] < byID["E10c"] || byID["E10d"] < byID["E10c"] {
				fmt.Fprintf(os.Stderr,
					"checkjson: load: latency percentiles not monotonic (p50 %d, p99 %d, p999 %d)\n",
					byID["E10c"], byID["E10d"], byID["E10e"])
				os.Exit(1)
			}
			// The warm serve path is lock-free by design; with the counted
			// mutex armed (-tags brewsvc_lockstat) any nonzero count here is
			// a regression. The harness itself also fails hard on this.
			if byID["E10f"] != 0 {
				fmt.Fprintf(os.Stderr,
					"checkjson: load: warm serve path acquired %d service locks, want 0\n", byID["E10f"])
				os.Exit(1)
			}
			// Admission control must shed strictly by class: the overload
			// phase arms the shed seam for the Low class only.
			if byID["E10g"] != 0 {
				fmt.Fprintf(os.Stderr,
					"checkjson: load: %d high-priority requests shed under overload, want 0\n", byID["E10g"])
				os.Exit(1)
			}
			if byID["E10h"] == 0 {
				fmt.Fprintf(os.Stderr, "checkjson: load: zero warm throughput\n")
				os.Exit(1)
			}
		}
	}
	if rows == 0 {
		fmt.Fprintln(os.Stderr, "checkjson: no rows")
		os.Exit(1)
	}
	fmt.Printf("checkjson: %d families, %d rows OK\n", len(out.Families), rows)
}
