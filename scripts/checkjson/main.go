// checkjson validates a brew-bench -json output file: it must parse and
// carry at least one family with at least one row with a nonzero cycle
// count. Used by scripts/verify.sh.
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: checkjson <bench.json>")
		os.Exit(2)
	}
	b, err := os.ReadFile(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var out struct {
		Families []struct {
			Key  string `json:"key"`
			Rows []struct {
				ID     string `json:"id"`
				Cycles uint64 `json:"cycles"`
			} `json:"rows"`
		} `json:"families"`
	}
	if err := json.Unmarshal(b, &out); err != nil {
		fmt.Fprintf(os.Stderr, "checkjson: %s does not parse: %v\n", os.Args[1], err)
		os.Exit(1)
	}
	rows := 0
	for _, f := range out.Families {
		nonzero := 0
		for _, r := range f.Rows {
			if r.ID == "" {
				fmt.Fprintf(os.Stderr, "checkjson: family %s has a row with an empty id\n", f.Key)
				os.Exit(1)
			}
			// Individual rows may legitimately cost zero (e.g. E5c's
			// warm-cache burst traces nothing), but a family where every
			// row is zero is a broken measurement.
			if r.Cycles > 0 {
				nonzero++
			}
			rows++
		}
		if len(f.Rows) > 0 && nonzero == 0 {
			fmt.Fprintf(os.Stderr, "checkjson: family %s has no row with nonzero cycles\n", f.Key)
			os.Exit(1)
		}
	}
	if rows == 0 {
		fmt.Fprintln(os.Stderr, "checkjson: no rows")
		os.Exit(1)
	}
	fmt.Printf("checkjson: %d families, %d rows OK\n", len(out.Families), rows)
}
