// checkjson validates a brew-bench -json output file: it must parse and
// carry at least one family with at least one row with a nonzero cycle
// count. If the tiered family (E6) is present, its acceptance bars are
// enforced: tier-0 rewrite cost at least 3x below tier-1 (E6b >= 3*E6a)
// and post-promotion steady-state cycles exactly equal to the tier-1
// direct result (E6e == E6d). If the polymorph family (E7) is present,
// the multi-version specialization bar is enforced: the single-variant
// baseline's per-caller cost must be at least 2x the variant table's
// (E7a >= 2*E7b), and the generic-fallthrough row E7c must exist.
// Used by scripts/verify.sh.
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: checkjson <bench.json>")
		os.Exit(2)
	}
	b, err := os.ReadFile(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var out struct {
		Families []struct {
			Key  string `json:"key"`
			Rows []struct {
				ID     string `json:"id"`
				Cycles uint64 `json:"cycles"`
			} `json:"rows"`
		} `json:"families"`
	}
	if err := json.Unmarshal(b, &out); err != nil {
		fmt.Fprintf(os.Stderr, "checkjson: %s does not parse: %v\n", os.Args[1], err)
		os.Exit(1)
	}
	rows := 0
	for _, f := range out.Families {
		nonzero := 0
		for _, r := range f.Rows {
			if r.ID == "" {
				fmt.Fprintf(os.Stderr, "checkjson: family %s has a row with an empty id\n", f.Key)
				os.Exit(1)
			}
			// Individual rows may legitimately cost zero (e.g. E5c's
			// warm-cache burst traces nothing), but a family where every
			// row is zero is a broken measurement.
			if r.Cycles > 0 {
				nonzero++
			}
			rows++
		}
		if len(f.Rows) > 0 && nonzero == 0 {
			fmt.Fprintf(os.Stderr, "checkjson: family %s has no row with nonzero cycles\n", f.Key)
			os.Exit(1)
		}
		if f.Key == "tiered" {
			byID := map[string]uint64{}
			for _, r := range f.Rows {
				byID[r.ID] = r.Cycles
			}
			for _, id := range []string{"E6a", "E6b", "E6d", "E6e"} {
				if _, ok := byID[id]; !ok {
					fmt.Fprintf(os.Stderr, "checkjson: tiered family is missing row %s\n", id)
					os.Exit(1)
				}
			}
			// E6a/E6b cycles are deterministic rewrite work units; the
			// tiered-rewriting acceptance bar is tier-0 at least 3x cheaper.
			if byID["E6b"] < 3*byID["E6a"] {
				fmt.Fprintf(os.Stderr,
					"checkjson: tiered: tier-1 rewrite cost %d is not >= 3x tier-0 cost %d\n",
					byID["E6b"], byID["E6a"])
				os.Exit(1)
			}
			// Promotion must fully recover tier-1 code quality: identical
			// steady-state cycles, not merely close.
			if byID["E6e"] != byID["E6d"] {
				fmt.Fprintf(os.Stderr,
					"checkjson: tiered: post-promotion steady state %d cycles != tier-1 direct %d\n",
					byID["E6e"], byID["E6d"])
				os.Exit(1)
			}
		}
		if f.Key == "polymorph" {
			byID := map[string]uint64{}
			for _, r := range f.Rows {
				byID[r.ID] = r.Cycles
			}
			for _, id := range []string{"E7a", "E7b", "E7c"} {
				if _, ok := byID[id]; !ok {
					fmt.Fprintf(os.Stderr, "checkjson: polymorph family is missing row %s\n", id)
					os.Exit(1)
				}
			}
			// E7a/E7b cycles are deterministic per-caller costs (execution
			// cycles plus rewrite work units over calls); the variant-table
			// acceptance bar is a >= 2x steady-state win per caller.
			if byID["E7a"] < 2*byID["E7b"] {
				fmt.Fprintf(os.Stderr,
					"checkjson: polymorph: single-variant cost %d is not >= 2x variant-table cost %d\n",
					byID["E7a"], byID["E7b"])
				os.Exit(1)
			}
		}
	}
	if rows == 0 {
		fmt.Fprintln(os.Stderr, "checkjson: no rows")
		os.Exit(1)
	}
	fmt.Printf("checkjson: %d families, %d rows OK\n", len(out.Families), rows)
}
