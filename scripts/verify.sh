#!/bin/sh
# Tier-1 verification gate (see ROADMAP.md). Every PR must leave this green.
#
#   scripts/verify.sh          # full gate
#   RACE=0 scripts/verify.sh   # skip the race pass (slow machines)
#   FUZZ=0 scripts/verify.sh   # skip the differential-fuzz smoke
set -eu
cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test ./..."
go test ./...

if [ "${RACE:-1}" = 1 ]; then
    # Short-budget race pass over the packages with real concurrency:
    # RewriteBatch workers, the experiment driver, and the lock-free
    # telemetry registry (full package: it is small and heavily atomic).
    echo "== go test -race (short budget: brew, oracle, telemetry)"
    go test -race -short -run 'TestRewriteBatch|TestGenerated|TestOracle' \
        ./internal/brew/ ./internal/oracle/
    go test -race ./internal/telemetry/
    # The specialization manager and fault injector are concurrency-bearing
    # by design (watchpoint handlers, eviction racing respecialization);
    # run their full suites under the race detector (-short caps the chaos
    # test at 150 injected faults).
    echo "== go test -race (short budget: specmgr, faultinject)"
    go test -race -short ./internal/specmgr/ ./internal/faultinject/
    # The specialization service is concurrency-first (worker pool,
    # singleflight coalescing, sharded cache): full suite under -race,
    # including the 64-goroutine exactly-one-trace test, service chaos,
    # and the tier-promotion suite (hot-swap torn-address readers,
    # per-effort coalescing keys, quick-vs-full cache isolation).
    echo "== go test -race (short budget: brewsvc)"
    go test -race -short ./internal/brewsvc/
    # Lock-free serve path: the counted-mutex build proves warm cache hits
    # take zero service locks, with the sharding/admission suite riding
    # along under the same tag.
    echo "== go test -race (brewsvc, counted mutex)"
    go test -race -short -tags brewsvc_lockstat \
        -run 'TestWarmPathZeroLocks|TestShardRouting|TestCrossShardIsolation|TestSubmitBatch|TestAdmission' \
        ./internal/brewsvc/
    # The observability layer is lock-free by construction (ring-buffer
    # flight recorder, atomic span gating): full suite under -race,
    # including the concurrent ring-wrap writers and the disabled-path
    # zero-allocation tests.
    echo "== go test -race (obs)"
    go test -race ./internal/obs/
    # The persistent rewrite store runs a write-behind remote goroutine
    # with retry/backoff racing Close/Drain: full suite under -race,
    # including the truncate-at-every-offset and bit-flip-every-byte
    # crash-safety tables and the injected-write-fault quarantine tests
    # (-short caps the brewsvc persist chaos at 120 injected faults).
    echo "== go test -race (spstore)"
    go test -race ./internal/spstore/
fi

# API-migration lint: commands and examples must use the unified brew.Do /
# service entry points, not the deprecated wrappers.
echo "== deprecated rewrite API lint (cmd/, examples/)"
if grep -rnE '\.(Rewrite|RewriteBatch|RewriteGuarded|RewriteOrDegrade)\(' cmd/ examples/; then
    echo "verify: FAIL — cmd/ or examples/ call deprecated rewrite entry points (use Do)" >&2
    exit 1
fi
# First-party code opens the service with brewsvc.Open(m, opts...); the
# deprecated brewsvc.New(m, Options{...}) shim exists only for external
# callers mid-migration.
echo "== deprecated brewsvc.New lint (cmd/, examples/, internal/exp)"
if grep -rnE 'brewsvc\.New\(' cmd/ examples/ internal/exp; then
    echo "verify: FAIL — first-party code calls deprecated brewsvc.New (use brewsvc.Open)" >&2
    exit 1
fi

# Fallback-path smoke: fault-injected rewrites must degrade to the
# original function and stay observably equivalent under the oracle.
echo "== brew-verify -faults smoke"
go run ./cmd/brew-verify -seeds 0 -stencil=false -faults 60 -q

# brew-top smoke: the self-contained demo runs a coalesced burst plus a
# tier promotion and renders the dashboard through the HTTP introspection
# listener; the output must carry the stage-quantile table.
echo "== brew-top -demo smoke"
go run ./cmd/brew-top -demo | grep -q 'rewrite' || {
    echo "verify: FAIL — brew-top demo dashboard missing the stage table" >&2
    exit 1
}

# brew-bench smoke: tiny grid, JSON output must parse. The service family
# also enforces the E5 acceptance bar (64-caller burst = exactly 1 trace);
# the tiered family enforces the E6 bars (tier-0 rewrite cost >= 3x below
# tier-1, post-promotion steady state == tier-1 direct); the polymorph
# family enforces the E7 bar (single-variant per-caller cost >= 2x the
# variant table's, generic fallthrough correct); the obs family enforces
# the E8 bars (enabled tracing within 2% wall overhead on the E1c steady
# state, identical steady-state cycles, nonempty reconstructed lifecycle
# trace, traced submit path capped at 3x); the persist family enforces
# the E9 bars (warm boot traces >= 5x below cold, revalidation <= 5% of
# the warm wall, zero persist-oracle divergences). checkjson re-checks
# the E6/E7/E8/E9 bars from the JSON.
echo "== brew-bench -json smoke (tiny grid)"
BENCH_JSON="$(mktemp)"
trap 'rm -f "$BENCH_JSON"' EXIT
go run ./cmd/brew-bench -only stencil,service,tiered,polymorph,obs,persist -xs 16 -ys 12 -iters 1 -json "$BENCH_JSON" > /dev/null
go run ./scripts/checkjson "$BENCH_JSON"

# brew-load smoke: the sharded-service load harness with the counted
# service mutex armed. The harness self-asserts its invariants (clean
# requests never degrade, priority SLOs honored, warm hits lock-free) and
# checkjson re-enforces the E10 bars from the JSON: modeled 8-shard
# speedup >= 4x, warm p999 <= 25ms, zero warm-path lock acquisitions,
# zero high-priority sheds. cmd/brew-load's default is the full
# 1M-request run; verify drives a 20k-request smoke of the same phases.
echo "== brew-load smoke (counted mutex, 8 shards)"
LOAD_JSON="$(mktemp)"
trap 'rm -f "$BENCH_JSON" "$LOAD_JSON"' EXIT
go run -tags brewsvc_lockstat ./cmd/brew-load -requests 20000 -shards 8 -json "$LOAD_JSON" -quiet
go run ./scripts/checkjson "$LOAD_JSON"

# Persist/reload oracle smoke + brew-cache over the store it leaves
# behind: every adopted record must be byte-identical to the fresh
# rewrite, the store must list records, and fsck must find nothing
# corrupt (exit 0).
echo "== brew-verify -persist + brew-cache smoke"
PERSIST_DIR="$(mktemp -d)"
trap 'rm -f "$BENCH_JSON" "$LOAD_JSON"; rm -rf "$PERSIST_DIR"' EXIT
go run ./cmd/brew-verify -seeds 3 -persist -store "$PERSIST_DIR" -q
go run ./cmd/brew-cache -store "$PERSIST_DIR" ls | grep -q 'records, generation' || {
    echo "verify: FAIL — brew-cache ls shows no records from the persist smoke" >&2
    exit 1
}
go run ./cmd/brew-cache -store "$PERSIST_DIR" fsck > /dev/null

if [ "${FUZZ:-1}" = 1 ]; then
    # Differential-execution oracle smoke: rewritten code must be observably
    # equivalent to the original (returns, non-stack stores, memory, faults).
    echo "== FuzzDifferential smoke (10s)"
    go test -fuzz=FuzzDifferential -fuzztime=10s -run '^$' ./internal/brew/
fi

echo "verify: OK"
