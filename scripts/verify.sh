#!/bin/sh
# Tier-1 verification gate (see ROADMAP.md). Every PR must leave this green.
#
#   scripts/verify.sh          # full gate
#   RACE=0 scripts/verify.sh   # skip the race pass (slow machines)
#   FUZZ=0 scripts/verify.sh   # skip the differential-fuzz smoke
set -eu
cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test ./..."
go test ./...

if [ "${RACE:-1}" = 1 ]; then
    # Short-budget race pass over the packages with real concurrency:
    # RewriteBatch workers and the experiment driver. A full -race run of
    # ./... takes several minutes; this keeps the gate under ~2.
    echo "== go test -race (short budget: brew, oracle)"
    go test -race -short -run 'TestRewriteBatch|TestGenerated|TestOracle' \
        ./internal/brew/ ./internal/oracle/
fi

if [ "${FUZZ:-1}" = 1 ]; then
    # Differential-execution oracle smoke: rewritten code must be observably
    # equivalent to the original (returns, non-stack stores, memory, faults).
    echo "== FuzzDifferential smoke (10s)"
    go test -fuzz=FuzzDifferential -fuzztime=10s -run '^$' ./internal/brew/
fi

echo "verify: OK"
