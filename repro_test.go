package repro_test

import (
	"errors"
	"strings"
	"testing"

	"repro"
)

func TestSystemEndToEnd(t *testing.T) {
	sys, err := repro.NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	prog, err := sys.CompileC(`
double scale(double *v, long n, double f) {
    double s = 0.0;
    for (long i = 0; i < n; i++) {
        v[i] = v[i] * f;
        s += v[i];
    }
    return s;
}
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	fn, err := prog.FuncAddr("scale")
	if err != nil {
		t.Fatal(err)
	}
	vec, err := sys.AllocHeap(8 * 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.WriteF64Slice(vec, []float64{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
		t.Fatal(err)
	}

	cfg := repro.NewConfig().SetFloatParam(1, repro.ParamKnown)
	res, err := sys.Rewrite(cfg, fn, nil, []float64{2.0})
	if err != nil {
		t.Fatal(err)
	}
	got, err := sys.CallFloat(res.Addr, []uint64{vec, 8}, []float64{2.0})
	if err != nil {
		t.Fatal(err)
	}
	if got != 2*36 {
		t.Errorf("scaled sum = %g, want 72", got)
	}
	vals, err := sys.ReadF64Slice(vec, 8)
	if err != nil {
		t.Fatal(err)
	}
	if vals[3] != 8 {
		t.Errorf("v[3] = %g, want 8", vals[3])
	}
	dis, err := sys.Disassemble(res.Addr, res.CodeSize)
	if err != nil || !strings.Contains(dis, "ret") {
		t.Errorf("disassembly: %v\n%s", err, dis)
	}
}

func TestSystemAsmPath(t *testing.T) {
	sys, err := repro.NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	im, err := sys.LoadAsm(`
f:
    mov r0, r1
    imuli r0, 3
    ret
`)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sys.Call(im.MustEntry("f"), 14)
	if err != nil || got != 42 {
		t.Errorf("f(14) = %d, %v", got, err)
	}
}

func TestErrorReexports(t *testing.T) {
	sys, err := repro.NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	im, err := sys.LoadAsm("f:\n jmpr r1\n")
	if err != nil {
		t.Fatal(err)
	}
	_, err = sys.Rewrite(repro.NewConfig(), im.MustEntry("f"), nil, nil)
	if !errors.Is(err, repro.ErrIndirectJump) {
		t.Errorf("err = %v", err)
	}
}

func TestRewriteBatchFacade(t *testing.T) {
	sys, err := repro.NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	prog, err := sys.CompileC("long twice(long a, long b) { return a*b*2; }", nil)
	if err != nil {
		t.Fatal(err)
	}
	fn, _ := prog.FuncAddr("twice")
	var reqs []repro.BatchRequest
	for b := uint64(1); b <= 4; b++ {
		reqs = append(reqs, repro.BatchRequest{
			Cfg:  repro.NewConfig().SetParam(2, repro.ParamKnown),
			Fn:   fn,
			Args: []uint64{0, b},
		})
	}
	results, errs := sys.RewriteBatch(reqs)
	for i, e := range errs {
		if e != nil {
			t.Fatalf("req %d: %v", i, e)
		}
		got, err := sys.Call(results[i].Addr, 10, uint64(i+1))
		if err != nil || got != uint64(10*(i+1)*2) {
			t.Errorf("variant %d = %d, %v", i, got, err)
		}
	}
}
