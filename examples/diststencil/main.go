// Distributed stencil: the capstone integration of the paper's Section
// VIII vision. A node computes a 1D stencil over a block of a PGAS array
// it does NOT own (think work stealing after a load imbalance): every
// access through the generic operator[] is a fine-grained remote fetch.
//
// The optimized pipeline is fully automatic:
//
//  1. rewrite the user's stencil kernel with an injected load handler that
//     records which remote addresses the code actually touches
//     ("detect remote memory accesses in arbitrary code"),
//  2. bulk-preload the detected window over simulated RDMA,
//  3. rewrite the kernel a second time against the prefetch-aware access
//     path ("a second rewritten version of the same code which redirects
//     memory access to the local pre-loaded data").
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/brew"
	"repro/internal/minc"
	"repro/internal/pgas"
	"repro/internal/vm"
)

// The user kernel: an ordinary minc function over the PGAS access
// abstraction. It never mentions locality.
const kernelSrc = `
struct GArr;
typedef double (*getter_t)(struct GArr*, long);

double dstencil(struct GArr *a, double *out, long from, long to, getter_t get) {
    double acc = 0.0;
    for (long i = from; i < to; i++) {
        double v = 0.25 * (get(a, i - 1) + get(a, i + 1)) + 0.5 * get(a, i);
        out[i - from] = v;
        acc += v;
    }
    return acc;
}
`

func main() {
	const nodes, bs, me = 4, 512, 1
	m := vm.MustNew()
	s, err := pgas.New(m, nodes, bs, me)
	if err != nil {
		log.Fatal(err)
	}
	if err := s.Fill(func(i int) float64 { return math.Sin(float64(i) * 0.01) }); err != nil {
		log.Fatal(err)
	}

	l, err := minc.CompileAndLink(m, kernelSrc, map[string]uint64{})
	if err != nil {
		log.Fatal(err)
	}
	kernel, _ := l.FuncAddr("dstencil")

	out, err := m.AllocHeap(bs * 8)
	if err != nil {
		log.Fatal(err)
	}

	// Node 2's interior: every access is remote for node 1.
	from, to := 2*bs+1, 3*bs-1
	run := func(name string, fn, getter uint64) float64 {
		c0, r0 := m.Stats.Cycles, s.RemoteAccesses()
		acc, err := m.CallFloat(fn, []uint64{s.Garr, out, uint64(from), uint64(to), getter}, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-34s acc=%-12.6f %9d cycles  %5d fine-grained remote accesses\n",
			name, acc, m.Stats.Cycles-c0, s.RemoteAccesses()-r0)
		return acc
	}

	fmt.Printf("node %d computes the stencil over node 2's block [%d, %d)\n\n", me, from, to)
	want := run("generic operator[] kernel", kernel, s.PgasGet)

	// Step 1: detection run. Same kernel, rewritten with the access
	// handler injected; distribution descriptor and getter folded so the
	// PGAS loads are visible to the handler.
	handler, err := s.DetectionHandler()
	if err != nil {
		log.Fatal(err)
	}
	cfg := brew.NewConfig().
		SetParamPtrToKnown(1, pgas.DescriptorSize).
		SetParam(5, brew.ParamKnown)
	cfg.SetFuncOpts(kernel, brew.FuncOpts{BranchesUnknown: true, ResultsUnknown: true})
	cfg.LoadHandler = handler
	probe, err := brew.Do(m, &brew.Request{
		Config: cfg, Fn: kernel, Args: []uint64{s.Garr, 0, 0, 0, s.PgasGet},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := s.ResetDetection(); err != nil {
		log.Fatal(err)
	}
	got := run("detection run (instrumented)", probe.Addr, s.PgasGet)
	lo, hi, ok, err := s.DetectedWindow()
	if err != nil || !ok {
		log.Fatalf("detection failed: %v ok=%v", err, ok)
	}
	fmt.Printf("\n  -> detected remote window: global indices [%d, %d)\n\n", lo, hi)

	// Steps 2+3: bulk preload and respecialize against the redirected
	// access path.
	if err := s.Preload(lo, hi); err != nil {
		log.Fatal(err)
	}
	cfg2 := brew.NewConfig().
		SetParamPtrToKnown(1, pgas.DescriptorSize).
		SetParam(5, brew.ParamKnown)
	cfg2.SetFuncOpts(kernel, brew.FuncOpts{BranchesUnknown: true, ResultsUnknown: true})
	opt, err := brew.Do(m, &brew.Request{
		Config: cfg2, Fn: kernel, Args: []uint64{s.Garr, 0, 0, 0, s.PgasGetPref},
	})
	if err != nil {
		log.Fatal(err)
	}
	got2 := run("preloaded + respecialized kernel", opt.Addr, s.PgasGetPref)

	if math.Abs(want-got) > 1e-9 || math.Abs(want-got2) > 1e-9 {
		log.Fatalf("results diverge: %g %g %g", want, got, got2)
	}
	fmt.Println("\nall three runs agree; the optimized kernel made zero fine-grained remote accesses.")
}
