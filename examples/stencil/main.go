// Stencil: the paper's Section V "First Experiences" evaluation, end to
// end — generic vs manual vs rewritten stencil kernels, the grouped
// representation, and the whole-sweep rewrite (E1a..E3b per DESIGN.md).
package main

import (
	"fmt"
	"log"

	"repro/internal/exp"
	"repro/internal/stencil"
	"repro/internal/vm"
)

func main() {
	// The specialized kernel listing (the paper's Figure 6).
	w, err := stencil.New(vm.MustNew(), 64, 48)
	if err != nil {
		log.Fatal(err)
	}
	res, err := w.RewriteApply()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("specialized generic apply for the 5-point stencil (cf. paper Figure 6):")
	fmt.Println(res.Listing())

	rows, err := exp.RunStencil(exp.Defaults())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(exp.FormatTable("Section V reproduction (emulated cycles; paper column = reported runtime ratio)", rows))
	fmt.Println("ratios are relative to E1a; see EXPERIMENTS.md for the discussion.")
}
