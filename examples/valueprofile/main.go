// Value profiling + guarded specialization (paper Section III.D): observe
// that a parameter "often is 42", generate a variant specialized for that
// value behind a runtime guard, and fall back to the original otherwise.
// A second phase grows that into a multi-version variant table (Section
// III.F): several specialized bodies behind one inline-cache dispatch
// stub, with full misses falling through to the generic original.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/brew"
	"repro/internal/profile"
	"repro/internal/specmgr"
)

const src = `
long checksum(long *data, long n, long poly) {
    long h = 0;
    for (long i = 0; i < n; i++) {
        h = (h * poly + data[i]) % 1000000007;
    }
    return h;
}
long workload(long *data, long n, long rounds) {
    long acc = 0;
    for (long r = 0; r < rounds; r++) {
        acc += checksum(data, n, 31);     // the dominant call site
    }
    acc += checksum(data, n, 37);         // a rare variant
    return acc;
}
`

func main() {
	sys, err := repro.NewSystem()
	if err != nil {
		log.Fatal(err)
	}
	prog, err := sys.CompileC(src, nil)
	if err != nil {
		log.Fatal(err)
	}
	checksum, _ := prog.FuncAddr("checksum")
	workload, _ := prog.FuncAddr("workload")

	data, err := sys.AllocHeap(64 * 8)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if err := sys.VM.Mem.Write64(data+uint64(8*i), uint64(i*i)); err != nil {
			log.Fatal(err)
		}
	}

	// Phase 1: profile the parameter values.
	col := profile.NewCollector(sys.VM, 64)
	prof := col.Watch(checksum, 3)
	if _, err := sys.Call(workload, data, 64, 20); err != nil {
		log.Fatal(err)
	}
	col.Detach()
	hot, frac := prof.Hot(3)
	fmt.Printf("profiled %d calls: parameter 3 is %d in %.0f%% of them\n",
		prof.Calls, hot.Value, frac*100)

	// Phase 2: guarded specialization for the hot value.
	gout, err := sys.Do(&repro.Request{
		Config: repro.NewConfig(), Fn: checksum,
		Guards: []repro.ParamGuard{{Param: 3, Value: hot.Value}},
	})
	if err != nil {
		log.Fatal(err)
	}
	g := gout.Guarded
	fmt.Printf("dispatcher at 0x%x, specialized body at 0x%x (%d bytes)\n\n",
		g.Addr, g.Specialized, g.Rewrite.CodeSize)

	measure := func(name string, fn uint64, poly uint64) {
		before := sys.VM.Stats.Cycles
		v, err := sys.Call(fn, data, 64, poly)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s h=%-12d %7d cycles\n", name, v, sys.VM.Stats.Cycles-before)
	}
	measure("original, poly=31", checksum, 31)
	measure("guarded hot path, poly=31", g.Addr, 31)
	measure("guarded cold path, poly=37", g.Addr, 37)
	fmt.Println("\ncold calls pay only the guard and run the original function.")

	// Phase 3: both values are hot — keep both specializations live in a
	// variant table behind one inline-cache stub (managed lifecycle:
	// per-variant demotion, LRU eviction, stable entry address).
	mgr := specmgr.New(sys.VM, specmgr.Policy{MaxVariants: 2})
	e, err := mgr.SpecializeGuarded(repro.NewConfig(), checksum,
		[]brew.ParamGuard{{Param: 3, Value: 31}}, []uint64{0, 0, 0}, nil)
	if err != nil || e.Degraded() {
		log.Fatalf("variant 31: %v (degraded=%v)", err, e != nil && e.Degraded())
	}
	vcfg := repro.NewConfig()
	vout, verr := sys.Do(&repro.Request{
		Config: vcfg, Fn: checksum,
		Guards: []repro.ParamGuard{{Param: 3, Value: 37}},
		Args:   []uint64{0, 0, 0}, Mode: repro.ModeDegrade,
	})
	if _, ok := mgr.InstallVariant(e, vcfg,
		[]brew.ParamGuard{{Param: 3, Value: 37}},
		[]uint64{0, 0, 0}, nil, vout, verr); !ok {
		log.Fatal("variant 37: install refused")
	}
	fmt.Printf("\nvariant table at 0x%x: %d live variants behind one stub\n",
		e.Addr(), len(e.Variants()))
	measure("variant table, poly=31", e.Addr(), 31)
	measure("variant table, poly=37", e.Addr(), 37)
	measure("variant table, poly=41", e.Addr(), 41)
	fmt.Println("\nboth hot values run specialized bodies through the same " +
		"address; the\nunspecialized poly=41 falls through the chain to the original.")
	mgr.Release(e)
}
