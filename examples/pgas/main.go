// PGAS: the paper's motivating use case (Sections V and VIII). A
// DASH-like distributed array pays a global-to-local translation and a
// locality check on every access; runtime rewriting folds the
// distribution into the code, and the Section VIII plan — bulk RDMA
// preload plus a respecialized access path — eliminates fine-grained
// remote fetches.
package main

import (
	"fmt"
	"log"

	"repro/internal/exp"
	"repro/internal/pgas"
	"repro/internal/vm"
)

func main() {
	const nodes, bs, me = 4, 1 << 10, 1
	s, err := pgas.New(vm.MustNew(), nodes, bs, me)
	if err != nil {
		log.Fatal(err)
	}
	if err := s.Fill(func(i int) float64 { return float64(i % 9) }); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distributed array: %d nodes x %d elements, executing on node %d\n\n",
		nodes, bs, me)

	res, err := s.SpecializeSum()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("specialized reduction: %d bytes, %d blocks — getter inlined,\n"+
		"descriptor folded, index division strength-reduced.\n\n",
		res.CodeSize, res.Blocks)

	rows, err := exp.RunPgas(exp.Options{PgasNodes: nodes, PgasBS: bs, PgasMe: me})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(exp.FormatTable("X5: PGAS global reduction (emulated cycles)", rows))
}
