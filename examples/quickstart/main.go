// Quickstart: compile a generic function, specialize it at runtime with
// the BREW rewriter, and compare the generated code and instruction
// counts. Mirrors the paper's Figure 2/3 usage pattern.
package main

import (
	"fmt"
	"log"

	"repro"
)

const src = `
// A generic polynomial evaluator: coefficients are runtime data.
double polyval(double *coef, long n, double x) {
    double r = 0.0;
    for (long i = n - 1; i >= 0; i--) {
        r = r * x + coef[i];
    }
    return r;
}
`

func main() {
	sys, err := repro.NewSystem()
	if err != nil {
		log.Fatal(err)
	}
	prog, err := sys.CompileC(src, nil)
	if err != nil {
		log.Fatal(err)
	}
	polyval, err := prog.FuncAddr("polyval")
	if err != nil {
		log.Fatal(err)
	}

	// Runtime data: the polynomial 2x^2 + 3x + 7.
	coef, err := sys.AllocHeap(3 * 8)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.WriteF64Slice(coef, []float64{7, 3, 2}); err != nil {
		log.Fatal(err)
	}

	// brew_setpar(rConf, 1, BREW_PTR_TOKNOWN); brew_setpar(rConf, 2, KNOWN)
	cfg := repro.NewConfig().
		SetParamPtrToKnown(1, 3*8).
		SetParam(2, repro.ParamKnown)
	out, err := sys.Do(&repro.Request{Config: cfg, Fn: polyval, Args: []uint64{coef, 3}})
	if err != nil {
		log.Fatal(err)
	}
	res := out.Result

	fmt.Println("specialized polyval (coefficients folded, loop unrolled):")
	fmt.Println(res.Listing())

	run := func(name string, fn uint64) float64 {
		before := sys.VM.Stats.Instructions
		v, err := sys.CallFloat(fn, []uint64{coef, 3}, []float64{10})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s p(10) = %-8g (%d instructions)\n",
			name, v, sys.VM.Stats.Instructions-before)
		return v
	}
	a := run("original", polyval)
	b := run("rewritten", res.Addr)
	if a != b {
		log.Fatalf("mismatch: %g vs %g", a, b)
	}
	fmt.Println("\nthe rewritten function is a drop-in replacement (same signature).")
}
