// brew-run compiles a minc (C subset) source file, optionally rewrites a
// function with the BREW rewriter, and calls an entry point on the
// simulated machine.
//
//	brew-run -f prog.c -entry main -args 10,20
//	brew-run -f prog.c -entry kernel -args 0,64 -known 2 -dis
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"repro"
)

func main() {
	var (
		file   = flag.String("f", "", "minc source file")
		entry  = flag.String("entry", "main", "function to call")
		argStr = flag.String("args", "", "comma-separated integer arguments")
		fArg   = flag.String("fargs", "", "comma-separated float arguments")
		known  = flag.String("known", "", "comma-separated 1-based parameter indices to specialize on")
		effort = flag.String("effort", "full", "rewrite tier: full (whole pipeline) or quick (trace + constant folding)")
		dis    = flag.Bool("dis", false, "disassemble the (possibly rewritten) entry")
		fres   = flag.Bool("float", false, "print the float result (F0) instead of R0")
		stats  = flag.Bool("stats", true, "print execution statistics")
	)
	flag.Parse()
	if *file == "" {
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(*file)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := repro.NewSystem()
	if err != nil {
		log.Fatal(err)
	}
	prog, err := sys.CompileC(string(src), nil)
	if err != nil {
		log.Fatal(err)
	}
	fn, err := prog.FuncAddr(*entry)
	if err != nil {
		log.Fatal(err)
	}

	args, err := parseInts(*argStr)
	if err != nil {
		log.Fatal(err)
	}
	fargs, err := parseFloats(*fArg)
	if err != nil {
		log.Fatal(err)
	}

	var res *repro.Result
	if *known != "" {
		cfg := repro.NewConfig()
		switch *effort {
		case "full":
		case "quick":
			cfg.Effort = repro.EffortQuick
		default:
			log.Fatalf("-effort: %q (want full or quick)", *effort)
		}
		for _, s := range strings.Split(*known, ",") {
			idx, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				log.Fatalf("-known: %v", err)
			}
			cfg.SetParam(idx, repro.ParamKnown)
		}
		out, err := sys.Do(&repro.Request{Config: cfg, Fn: fn, Args: args, FArgs: fargs})
		if err != nil {
			log.Fatalf("rewrite: %v", err)
		}
		res = out.Result
		fmt.Printf("rewritten %s (%s effort): %d bytes, %d blocks (original kept at 0x%x)\n",
			*entry, res.Report.Effort, res.CodeSize, res.Blocks, fn)
		fn = res.Addr
	}
	if *dis {
		if res != nil {
			fmt.Println(res.Listing())
		} else {
			d, err := prog.Disassemble(*entry)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(d)
		}
	}

	if *fres {
		v, err := sys.CallFloat(fn, args, fargs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s(...) = %g\n", *entry, v)
	} else {
		v, err := sys.Call(fn, args...)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s(...) = %d (0x%x)\n", *entry, int64(v), v)
	}
	if *stats {
		st := sys.VM.Stats
		fmt.Printf("instructions=%d cycles=%d loads=%d stores=%d branches=%d calls=%d\n",
			st.Instructions, st.Cycles, st.Loads, st.Stores, st.Branches, st.Calls)
	}
}

func parseInts(s string) ([]uint64, error) {
	if s == "" {
		return nil, nil
	}
	var out []uint64
	for _, p := range strings.Split(s, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 0, 64)
		if err != nil {
			return nil, fmt.Errorf("-args: %v", err)
		}
		out = append(out, uint64(v))
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	var out []float64
	for _, p := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("-fargs: %v", err)
		}
		out = append(out, v)
	}
	return out, nil
}
