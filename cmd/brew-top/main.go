// brew-top is the live-introspection client for the specialization
// service: it fetches a Service.Inspect() snapshot from a running
// introspection listener (brewsvc.ServeIntrospection) and renders the
// dashboard — queue depths, cache occupancy, per-stage latency quantiles,
// the per-entry variant tables and the flight-recorder tail.
//
//	brew-top -url http://127.0.0.1:9127            one-shot dashboard
//	brew-top -url http://127.0.0.1:9127 -json      raw Inspection JSON
//	brew-top -url http://127.0.0.1:9127 -watch 1s  refresh until interrupted
//	brew-top -demo                                 self-contained demo scenario
//
// -demo needs no server: it runs a coalesced specialization burst plus a
// tier promotion against an in-process service, serves the introspection
// endpoints on an ephemeral port, and renders the resulting dashboard
// through the same HTTP path a live deployment would use.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/brew"
	"repro/internal/brewsvc"
	"repro/internal/obs"
	"repro/internal/stencil"
	"repro/internal/vm"
)

func main() {
	var (
		url     = flag.String("url", "", "introspection listener base URL (e.g. http://127.0.0.1:9127)")
		asJSON  = flag.Bool("json", false, "print the raw /inspect JSON instead of the dashboard")
		watch   = flag.Duration("watch", 0, "refresh interval; 0 = one shot")
		n       = flag.Int("n", 0, "stop after this many refreshes in watch mode (0 = until interrupted)")
		demo    = flag.Bool("demo", false, "run the self-contained demo scenario instead of connecting")
		callers = flag.Int("callers", 64, "demo: concurrent callers in the coalesced burst")
	)
	flag.Parse()

	if *demo {
		if err := runDemo(*callers, *asJSON); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *url == "" {
		fmt.Fprintln(os.Stderr, "brew-top: -url or -demo required")
		flag.Usage()
		os.Exit(2)
	}

	path := "/"
	if *asJSON {
		path = "/inspect"
	}
	base := strings.TrimRight(*url, "/")
	for i := 0; ; i++ {
		body, err := fetch(base + path)
		if err != nil {
			log.Fatal(err)
		}
		if *watch > 0 {
			// ANSI clear + home, like top(1); harmless when redirected.
			fmt.Print("\x1b[2J\x1b[H")
			fmt.Printf("brew-top %s — %s\n\n", base, time.Now().Format(time.TimeOnly))
		}
		fmt.Println(strings.TrimRight(body, "\n"))
		if *watch <= 0 || (*n > 0 && i+1 >= *n) {
			return
		}
		time.Sleep(*watch)
	}
}

func fetch(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return string(body), nil
}

// runDemo exercises the full observability surface in-process: a
// coalesced burst of identical specialization requests (one trace, many
// joiners), hotness-driven promotion of the tier-0 result, and a
// dashboard render fetched through the HTTP introspection listener.
func runDemo(callers int, asJSON bool) error {
	obs.Enable()
	defer obs.Disable()

	m := vm.MustNew()
	w, err := stencil.New(m, 16, 12)
	if err != nil {
		return err
	}
	const after = 8
	svc := brewsvc.Open(m,
		brewsvc.WithWorkers(4),
		brewsvc.WithQueueCap(128),
		brewsvc.WithPromotion(after))
	defer svc.Close()

	tickets := make([]*brewsvc.Ticket, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg, args := w.ApplyConfig()
			cfg.Effort = brew.EffortQuick
			tickets[i] = svc.Submit(&brewsvc.Request{Config: cfg, Fn: w.Apply, Args: args})
		}(i)
	}
	wg.Wait()
	var out brewsvc.Outcome
	for i, tk := range tickets {
		out = tk.Outcome()
		if out.Degraded {
			return fmt.Errorf("caller %d degraded: %s (%v)", i, out.Reason, out.Err)
		}
	}

	// Drive the entry past the hotness threshold and promote it to the
	// optimized tier, so the dashboard shows a full lifecycle.
	cell := w.M1 + uint64((16+1)*8)
	callArgs := []uint64{cell, 16, w.S5}
	want, err := m.CallFloat(w.Apply, callArgs, nil)
	if err != nil {
		return err
	}
	for i := 0; i < after; i++ {
		got, err := out.Entry.CallFloat(callArgs, nil)
		if err != nil {
			return err
		}
		if math.Abs(got-want) > 1e-12 {
			return fmt.Errorf("tier-0 call = %g, want %g", got, want)
		}
	}
	pouts, err := svc.PumpPromotions().AwaitAll(context.Background())
	if err != nil {
		return err
	}
	for _, p := range pouts {
		if p.Degraded {
			return fmt.Errorf("promotion degraded: %s (%v)", p.Reason, p.Err)
		}
	}

	addr, stop, err := svc.ServeIntrospection("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer stop()
	path := "/"
	if asJSON {
		path = "/inspect"
	}
	body, err := fetch("http://" + addr + path)
	if err != nil {
		return err
	}
	fmt.Printf("brew-top demo — %d callers, served from http://%s\n\n", callers, addr)
	fmt.Println(strings.TrimRight(body, "\n"))
	return nil
}
