// brew-bench regenerates the paper's evaluation (Section V, E1a..E3b) and
// the DESIGN.md ablations/use cases (X1..X5) and prints the comparison
// tables EXPERIMENTS.md records.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/exp"
)

func main() {
	var (
		xs       = flag.Int("xs", 0, "stencil matrix width (0 = default)")
		ys       = flag.Int("ys", 0, "stencil matrix height (0 = default)")
		iters    = flag.Int("iters", 0, "stencil sweep iterations (0 = default)")
		nodes    = flag.Int("pgas-nodes", 0, "PGAS node count (0 = default)")
		bs       = flag.Int("pgas-bs", 0, "PGAS block size in elements (0 = default)")
		only     = flag.String("only", "", "comma-separated experiment families: stencil,unroll,inline,variants,guarded,vectorize,cache,pgas,degrade,service,tiered,polymorph,obs,persist,load")
		jsonPath = flag.String("json", "", "also write the result rows as JSON to this path")
	)
	flag.Parse()

	o := exp.Options{XS: *xs, YS: *ys, Iters: *iters, PgasNodes: *nodes, PgasBS: *bs}
	want := map[string]bool{}
	if *only != "" {
		for _, f := range strings.Split(*only, ",") {
			want[strings.TrimSpace(f)] = true
		}
	}
	sel := func(name string) bool { return len(want) == 0 || want[name] }

	type family struct {
		key, title string
		run        func(exp.Options) ([]exp.Row, error)
	}
	families := []family{
		{"stencil", "E1-E3: Section V stencil evaluation (paper column = reported runtime ratio)", exp.RunStencil},
		{"unroll", "X1: loop-unrolling policy (Sections III.F / V.C)", exp.RunUnrolling},
		{"inline", "X2: inlining and register renaming (Sections IV / VIII)", exp.RunInlining},
		{"variants", "X3: variant threshold and state migration (Section III.F; cycles column = code bytes)", exp.RunVariants},
		{"guarded", "X4: value-profile guarded specialization (Section III.D)", exp.RunGuarded},
		{"vectorize", "X6: greedy vectorization pass (Sections IV / V.B, opt-in)", exp.RunVectorize},
		{"cache", "X7: working-set sensitivity (ratio = rewritten/generic; cycles = rewritten cyc/pt)", exp.RunCacheSweep},
		{"pgas", "X5: PGAS global reduction (Sections V / VIII)", exp.RunPgas},
		{"degrade", "E4: graceful degradation and self-healing specialization (Section III.G)", exp.RunDegradation},
		{"service", "E5: concurrent specialization service throughput (cycles = per-caller traced instrs)", exp.RunService},
		{"tiered", "E6: tiered rewriting — quick tier-0 vs full tier-1, hotness-driven promotion (E6a/E6b cycles = rewrite work units)", exp.RunTiered},
		{"polymorph", "E7: multi-version specialization under a polymorphic caller mix (cycles = per-caller cost in work units)", exp.RunPolymorph},
		{"obs", "E8: observability cost (E8a/E8b steady-state wall ns, E8c/E8d deterministic cycles, E8f/E8g submit-path ns) and trace reconstruction", exp.RunObservability},
		{"persist", "E9: persistent rewrite store & warm start (E9a/E9b traces, E9c/E9d wall ns, E9e persist-oracle divergences)", exp.RunPersist},
		{"load", "E10: sharded service load harness (E10a/E10b modeled makespan work units, E10c-E10e warm latency ns, E10f lock acquisitions, E10h req/s; cmd/brew-load drives the full run)", exp.RunLoad},
	}
	type jsonFamily struct {
		Key   string    `json:"key"`
		Title string    `json:"title"`
		Rows  []exp.Row `json:"rows"`
	}
	var out []jsonFamily
	ran := 0
	for _, f := range families {
		if !sel(f.key) {
			continue
		}
		rows, err := f.run(o)
		if err != nil {
			log.Fatalf("%s: %v", f.key, err)
		}
		fmt.Println(exp.FormatTable(f.title, rows))
		out = append(out, jsonFamily{Key: f.key, Title: f.title, Rows: rows})
		ran++
	}
	if ran == 0 {
		fmt.Fprintln(os.Stderr, "no experiment family selected")
		os.Exit(2)
	}
	if *jsonPath != "" {
		b, err := json.MarshalIndent(struct {
			Families []jsonFamily `json:"families"`
		}{out}, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*jsonPath, append(b, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
	}
}
