// Command brew-load drives the sharded rewrite service (internal/brewsvc)
// through a mixed-scenario load run — cold specialization, coalesced
// bursts, fault-injected degradations, a measured warm serve phase, and a
// deterministic admission-control overload phase — and reports the E10
// family: tail latency (p50/p99/p999), throughput, modeled shard speedup,
// warm-path lock acquisitions, and shed accounting.
//
// The harness self-asserts its correctness invariants and exits non-zero
// on any violation. Build with -tags brewsvc_lockstat to arm the counted
// service mutex; the E10f row then proves the warm serve path takes zero
// service locks.
//
// The full acceptance run (writes BENCH_PR9.json):
//
//	go run -tags brewsvc_lockstat ./cmd/brew-load -requests 1000000 -shards 8 -json BENCH_PR9.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/exp"
)

func main() {
	requests := flag.Int("requests", 1_000_000, "total mixed-scenario request count across all phases")
	shards := flag.Int("shards", 8, "service shards")
	workers := flag.Int("workers", 2, "rewrite workers per shard")
	callers := flag.Int("callers", 8, "concurrent submitter goroutines")
	keys := flag.Int("keys", 96, "distinct specialization keys (functions x guard values)")
	seed := flag.Int64("seed", 1, "warm-phase key-order seed")
	jsonPath := flag.String("json", "", "write results as a brew-bench-compatible JSON file")
	quiet := flag.Bool("quiet", false, "suppress the result table")
	flag.Parse()

	rows, err := exp.RunLoadConfig(exp.Options{}, exp.LoadConfig{
		Requests: *requests,
		Shards:   *shards,
		Workers:  *workers,
		Callers:  *callers,
		Keys:     *keys,
		Seed:     *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "brew-load:", err)
		os.Exit(1)
	}

	title := fmt.Sprintf("E10: sharded service load harness (%d requests, %d shards x %d workers, %d callers, %d keys)",
		*requests, *shards, *workers, *callers, *keys)
	if !*quiet {
		fmt.Print(exp.FormatTable(title, rows))
	}

	if *jsonPath != "" {
		type family struct {
			Key   string    `json:"key"`
			Title string    `json:"title"`
			Rows  []exp.Row `json:"rows"`
		}
		doc := struct {
			Families []family `json:"families"`
		}{[]family{{Key: "load", Title: title, Rows: rows}}}
		buf, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "brew-load:", err)
			os.Exit(1)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonPath, buf, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "brew-load:", err)
			os.Exit(1)
		}
		if !*quiet {
			fmt.Printf("wrote %s\n", *jsonPath)
		}
	}
}
