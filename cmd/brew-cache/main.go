// brew-cache is the operator tool for the persistent rewrite store
// (internal/spstore): list the records a store directory holds, verify
// their framing/checksums (optionally quarantining what fails), and
// garbage-collect the quarantine plus the oldest live records down to a
// byte budget.
//
//	brew-cache -store DIR ls            # live + quarantined records
//	brew-cache -store DIR fsck          # verify; exit 1 if anything is corrupt
//	brew-cache -store DIR fsck -repair  # verify and quarantine what fails
//	brew-cache -store DIR gc -max 64M   # drop quarantine, evict LRU over budget
//	brew-cache -store DIR ls -json      # machine-readable listings
//
// fsck exits 1 when corruption is found (repaired or not), so it slots
// into health checks; ls and gc exit 1 only on operational errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/spstore"
)

func main() {
	var (
		dir    = flag.String("store", "", "store directory (required)")
		asJSON = flag.Bool("json", false, "machine-readable output")
		repair = flag.Bool("repair", false, "fsck: quarantine records that fail verification")
		max    = flag.String("max", "", "gc: live-tier byte budget (supports K/M/G suffixes; empty = quarantine sweep only)")
	)
	flag.Parse()

	cmd := flag.Arg(0)
	if cmd != "" {
		// Allow flags after the subcommand too (brew-cache -store DIR gc -max 64M).
		if err := flag.CommandLine.Parse(flag.Args()[1:]); err != nil {
			os.Exit(2)
		}
	}
	if *dir == "" || cmd == "" {
		fmt.Fprintln(os.Stderr, "usage: brew-cache -store DIR [-json] ls|fsck|gc")
		flag.Usage()
		os.Exit(2)
	}
	st, err := spstore.Open(spstore.Options{Dir: *dir})
	if err != nil {
		fatal(err)
	}
	defer st.Close()

	switch cmd {
	case "ls":
		infos, err := st.List()
		if err != nil {
			fatal(err)
		}
		if *asJSON {
			printJSON(infos)
			return
		}
		for _, in := range infos {
			state := "live"
			if in.Quarantined {
				state = "quar"
			}
			fmt.Printf("%-4s %s  %7dB  fn=%#x effort=%s code=%dB guards=%d gen=%d\n",
				state, in.Key, in.Size, in.Fn, in.Effort, in.CodeSize, in.Guards, in.Generation)
		}
		fmt.Printf("%d records, generation %d\n", len(infos), st.Generation())
	case "fsck":
		rep, err := st.Fsck(*repair)
		if err != nil {
			fatal(err)
		}
		if *asJSON {
			printJSON(rep)
		} else {
			for _, bad := range rep.Bad {
				fmt.Printf("corrupt %s: %s\n", bad.Key, bad.Err)
			}
			fmt.Printf("checked %d, corrupt %d, quarantined now %d, in quarantine %d\n",
				rep.Checked, rep.Corrupt, rep.Quarantined, rep.InQuarantine)
		}
		if rep.Corrupt > 0 {
			os.Exit(1)
		}
	case "gc":
		budget, err := parseBytes(*max)
		if err != nil {
			fatal(err)
		}
		rep, err := st.GC(budget)
		if err != nil {
			fatal(err)
		}
		if *asJSON {
			printJSON(rep)
		} else {
			fmt.Printf("dropped %d quarantined + %d live (LRU), freed %dB, %dB live\n",
				rep.QuarantineDropped, rep.LRUDropped, rep.BytesFreed, rep.BytesLive)
		}
	default:
		fatal(fmt.Errorf("unknown command %q (want ls, fsck or gc)", cmd))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "brew-cache:", err)
	os.Exit(1)
}

func printJSON(v any) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fatal(err)
	}
	fmt.Println(string(b))
}

// parseBytes parses "67108864", "64M", "1G", "512K" (binary multiples).
func parseBytes(s string) (int64, error) {
	if s == "" {
		return 0, nil
	}
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "K"), strings.HasSuffix(s, "k"):
		mult, s = 1<<10, s[:len(s)-1]
	case strings.HasSuffix(s, "M"), strings.HasSuffix(s, "m"):
		mult, s = 1<<20, s[:len(s)-1]
	case strings.HasSuffix(s, "G"), strings.HasSuffix(s, "g"):
		mult, s = 1<<30, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad -max %q", s)
	}
	return n * mult, nil
}
