// brew-trace rewrites one stencil kernel (the paper's Section V workload)
// and explains the result: the RewriteReport records, per basic block and
// per optimization pass, what the rewriter kept, elided, folded or inlined
// and the known-world justification, followed by a side-by-side
// disassembly of the original and rewritten code.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/brew"
	"repro/internal/isa"
	"repro/internal/stencil"
	"repro/internal/vm"
)

func main() {
	var (
		kernel   = flag.String("kernel", "apply", "kernel to rewrite: apply (E1c), grouped (E2b), sweep (E3b)")
		xs       = flag.Int("xs", 64, "stencil matrix width")
		ys       = flag.Int("ys", 48, "stencil matrix height")
		asJSON   = flag.Bool("json", false, "emit the RewriteReport as JSON instead of text")
		noDisasm = flag.Bool("no-disasm", false, "suppress the side-by-side disassembly")
	)
	flag.Parse()

	m := vm.MustNew()
	w, err := stencil.New(m, *xs, *ys)
	if err != nil {
		log.Fatal(err)
	}

	var name string
	var res *brew.Result
	switch *kernel {
	case "apply":
		name = "apply"
		res, err = w.RewriteApply()
	case "grouped":
		name = "apply_grouped"
		res, err = w.RewriteApplyGrouped()
	case "sweep":
		name = "sweep"
		res, err = w.RewriteSweep()
	default:
		fmt.Fprintf(os.Stderr, "unknown kernel %q (want apply, grouped or sweep)\n", *kernel)
		os.Exit(2)
	}
	if err != nil {
		log.Fatalf("rewrite %s: %v", name, err)
	}
	rep := res.Report

	if *asJSON {
		b, err := rep.JSON()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(string(b))
		return
	}

	fmt.Print(rep.Text())

	if *noDisasm {
		return
	}
	orig, err := w.L.Disassemble(name)
	if err != nil {
		log.Fatal(err)
	}
	code, err := m.Mem.ReadBytes(res.Addr, res.CodeSize)
	if err != nil {
		log.Fatal(err)
	}
	rewr := isa.Disassemble(code, res.Addr, false)
	fmt.Println()
	fmt.Print(sideBySide("original "+name, orig, "rewritten", rewr))
}

// sideBySide renders two listings in aligned columns.
func sideBySide(lt, left, rt, right string) string {
	ll := strings.Split(strings.TrimRight(left, "\n"), "\n")
	rl := strings.Split(strings.TrimRight(right, "\n"), "\n")
	width := len(lt)
	for _, l := range ll {
		if len(l) > width {
			width = len(l)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-*s | %s\n", width, lt, rt)
	fmt.Fprintf(&b, "%s-+-%s\n", strings.Repeat("-", width), strings.Repeat("-", len(rt)))
	n := len(ll)
	if len(rl) > n {
		n = len(rl)
	}
	for i := 0; i < n; i++ {
		var l, r string
		if i < len(ll) {
			l = ll[i]
		}
		if i < len(rl) {
			r = rl[i]
		}
		fmt.Fprintf(&b, "%-*s | %s\n", width, l, r)
	}
	return b.String()
}
