// brew-asm assembles a VX64 assembly file, optionally disassembles it back
// and runs a label on the simulated machine.
//
//	brew-asm -f prog.s -dis
//	brew-asm -f prog.s -run main -args 1,2
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro"
	"repro/internal/isa"
)

func main() {
	var (
		file   = flag.String("f", "", "assembly source file")
		dis    = flag.Bool("dis", false, "print the disassembled code image")
		run    = flag.String("run", "", "label to call after loading")
		argStr = flag.String("args", "", "comma-separated integer arguments for -run")
		syms   = flag.Bool("syms", false, "print the symbol table")
	)
	flag.Parse()
	if *file == "" {
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(*file)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := repro.NewSystem()
	if err != nil {
		log.Fatal(err)
	}
	im, err := sys.LoadAsm(string(src))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("code: %d bytes at 0x%x; data: %d bytes at 0x%x\n",
		len(im.Code), im.CodeBase, len(im.Data), im.DataBase)
	if *syms {
		names := make([]string, 0, len(im.Labels))
		for n := range im.Labels {
			names = append(names, n)
		}
		sort.Slice(names, func(i, j int) bool { return im.Labels[names[i]] < im.Labels[names[j]] })
		for _, n := range names {
			fmt.Printf("%08x  %s\n", im.Labels[n], n)
		}
	}
	if *dis {
		fmt.Print(isa.Disassemble(im.Code, im.CodeBase, false))
	}
	if *run != "" {
		var args []uint64
		if *argStr != "" {
			for _, p := range strings.Split(*argStr, ",") {
				v, err := strconv.ParseInt(strings.TrimSpace(p), 0, 64)
				if err != nil {
					log.Fatal(err)
				}
				args = append(args, uint64(v))
			}
		}
		addr, err := im.Entry(*run)
		if err != nil {
			log.Fatal(err)
		}
		v, err := sys.Call(addr, args...)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s(...) = %d (0x%x)\n", *run, int64(v), v)
	}
}
