// brew-dis decodes raw VX64 machine code from a binary file (or compiles
// a minc file and disassembles one function), producing an
// address-annotated listing.
//
//	brew-dis -bin code.bin -base 0x10000
//	brew-dis -c prog.c -fn apply
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro"
	"repro/internal/isa"
)

func main() {
	var (
		bin  = flag.String("bin", "", "raw machine-code file")
		base = flag.Uint64("base", 0x10000, "load address for -bin")
		csrc = flag.String("c", "", "minc source file")
		fn   = flag.String("fn", "", "function to disassemble (with -c)")
	)
	flag.Parse()
	switch {
	case *bin != "":
		code, err := os.ReadFile(*bin)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(isa.Disassemble(code, *base, false))
	case *csrc != "" && *fn != "":
		src, err := os.ReadFile(*csrc)
		if err != nil {
			log.Fatal(err)
		}
		sys, err := repro.NewSystem()
		if err != nil {
			log.Fatal(err)
		}
		prog, err := sys.CompileC(string(src), nil)
		if err != nil {
			log.Fatal(err)
		}
		d, err := prog.Disassemble(*fn)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(d)
	default:
		flag.Usage()
		os.Exit(2)
	}
}
