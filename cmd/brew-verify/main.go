// brew-verify runs the differential-execution oracle (internal/oracle): for
// each case it builds two identical machines, rewrites the function under
// test on one, executes both on randomized argument vectors consistent with
// the declared known parameters, and compares return registers, the ordered
// non-stack store journal, final memory and faulting behaviour. Any
// divergence is a rewriter bug and is reported with a minimized argument
// vector and disassembly context.
//
// With -faults n, an additional n fault-injected degrade-mode cases run:
// the rewrite happens under seeded fault injection (internal/faultinject)
// with brew.Do in ModeDegrade, so failures fall back to the original
// function — and the oracle then verifies the fallback is a faithful
// drop-in as well. Divergences under injection are specialization-manager
// or rewriter bugs exactly like ordinary ones.
//
// With -persist, every case additionally runs through the persist/reload
// oracle (oracle.RunPersist): the fresh rewrite is captured into a
// persistent store (internal/spstore), a third identically built machine
// — the simulated restart — adopts it back through full revalidation, and
// the adopted body must be byte-for-byte identical to the fresh rewrite
// AND behaviorally identical to the original. -store keeps the store
// directory for later inspection (brew-cache); the default is a
// throwaway temp dir.
//
//	brew-verify -seeds 200            # 200 random generated programs + stencil kernels
//	brew-verify -seeds 50 -stencil=false -trials 10
//	brew-verify -start 1000 -seeds 64 # a different slice of the program space
//	brew-verify -seeds 0 -stencil=false -faults 60   # fallback-path smoke
//	brew-verify -seeds 200 -persist   # + persist/reload equivalence per case
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/brew"
	"repro/internal/faultinject"
	"repro/internal/oracle"
	"repro/internal/spstore"
)

// armed builds a seeded injector with rates that exercise every point
// within a handful of rewrites (SiteTrace points fire per instruction).
func armed(seed int64) *faultinject.Injector {
	inj := faultinject.New(seed)
	inj.Arm(faultinject.PointOpcode, 0.003*float64(seed%3))
	inj.Arm(faultinject.PointBudget, 0.003*float64((seed/3)%3))
	inj.Arm(faultinject.PointPanic, 0.002*float64((seed/9)%3))
	inj.Arm(faultinject.PointJITAlloc, 0.5*float64(seed%2))
	return inj
}

func main() {
	var (
		seeds   = flag.Int("seeds", 200, "number of random generated-program cases")
		start   = flag.Int64("start", 0, "first generator seed")
		trials  = flag.Int("trials", 0, "argument vectors per case (0 = oracle default)")
		stencil = flag.Bool("stencil", true, "also verify the paper's stencil kernels (E1c, E2b, E3b)")
		xs      = flag.Int("xs", 16, "stencil grid width")
		ys      = flag.Int("ys", 12, "stencil grid height")
		faults  = flag.Int("faults", 0, "fault-injected degrade-mode cases (0 disables)")
		persist = flag.Bool("persist", false, "also run every case through the persist/reload oracle")
		store   = flag.String("store", "", "persist-mode store directory (default: throwaway temp dir)")
		quiet   = flag.Bool("q", false, "only print the summary line")
	)
	flag.Parse()

	var rep oracle.Report
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
		os.Exit(1)
	}

	var st *spstore.Store
	if *persist {
		dir := *store
		if dir == "" {
			tmp, err := os.MkdirTemp("", "brew-verify-store-*")
			if err != nil {
				fail("persist: %v", err)
			}
			defer os.RemoveAll(tmp)
			dir = tmp
		}
		var err error
		if st, err = spstore.Open(spstore.Options{Dir: dir}); err != nil {
			fail("persist: %v", err)
		}
		defer st.Close()
	}

	// runPersist mirrors a case through the persist/reload oracle when
	// -persist is set; mustRewrite marks cases whose refusal is a
	// regression rather than a skip.
	runPersist := func(c oracle.Case, seed int64, mustRewrite bool) {
		if st == nil {
			return
		}
		res, err := oracle.RunPersist(c, seed, st)
		if err != nil {
			fail("%s: persist harness error: %v", c.Name, err)
		}
		if mustRewrite && res.RewriteErr != nil {
			fail("%s: rewrite refused: %v", c.Name, res.RewriteErr)
		}
		rep.Add(res)
		if res.Divergence != nil && !*quiet {
			fmt.Print(res.Divergence.Format())
		}
	}

	// Every generated and stencil case runs at both rewrite tiers: the
	// tier-0 (EffortQuick) pipeline must be exactly as equivalent to the
	// original as the full pipeline is.
	efforts := []struct {
		effort brew.Effort
		suffix string
	}{
		{brew.EffortFull, ""},
		{brew.EffortQuick, "+quick"},
	}

	for seed := *start; seed < *start+int64(*seeds); seed++ {
		for _, e := range efforts {
			c := oracle.Generated(seed)
			c.Name += e.suffix
			c.Trials = *trials
			c.Effort = e.effort
			res, err := oracle.Run(c, seed)
			if err != nil {
				fail("%s: harness error: %v", c.Name, err)
			}
			rep.Add(res)
			if res.Divergence != nil && !*quiet {
				fmt.Print(res.Divergence.Format())
			}
			runPersist(c, seed, false)
		}
	}

	if *stencil {
		for _, e := range efforts {
			cases, err := oracle.StencilCases(*xs, *ys)
			if err != nil {
				fail("stencil: %v", err)
			}
			for i, c := range cases {
				c.Name += e.suffix
				c.Trials = *trials
				c.Effort = e.effort
				res, err := oracle.Run(c, int64(i)+1)
				if err != nil {
					fail("%s: harness error: %v", c.Name, err)
				}
				if res.RewriteErr != nil {
					// The stencil configurations are the paper's experiments;
					// a refusal there is a regression, not a skip.
					fail("%s: rewrite refused: %v", c.Name, res.RewriteErr)
				}
				rep.Add(res)
				if res.Divergence != nil && !*quiet {
					fmt.Print(res.Divergence.Format())
				}
				runPersist(c, int64(i)+1, true)
			}
		}
	}

	// Multi-variant dispatch cases at both tiers: several guarded
	// specializations behind one inline-cache stub, trials hitting every
	// hot class and falling through on the rest.
	for _, e := range efforts {
		for i, c := range oracle.VariantCases() {
			c.Name += e.suffix
			c.Trials = *trials
			c.Effort = e.effort
			res, err := oracle.Run(c, int64(i)+1)
			if err != nil {
				fail("%s: harness error: %v", c.Name, err)
			}
			if res.RewriteErr != nil {
				// The variant installs are deterministic; a refusal is a
				// regression, not a skip.
				fail("%s: variant install refused: %v", c.Name, res.RewriteErr)
			}
			rep.Add(res)
			if res.Divergence != nil && !*quiet {
				fmt.Print(res.Divergence.Format())
			}
		}
	}

	for seed := int64(0); seed < int64(*faults); seed++ {
		c := oracle.Generated(*start + seed)
		c.Name += "+faults"
		c.Trials = *trials
		c.Degrade = true
		c.Inject = armed(seed).Hook()
		res, err := oracle.Run(c, seed)
		if err != nil {
			fail("%s: harness error: %v", c.Name, err)
		}
		rep.Add(res)
		if res.Divergence != nil && !*quiet {
			fmt.Print(res.Divergence.Format())
		}
	}
	if *faults > 0 && *stencil {
		cases, err := oracle.StencilCases(*xs, *ys)
		if err != nil {
			fail("stencil: %v", err)
		}
		for i, c := range cases {
			c.Name += "+faults"
			c.Trials = *trials
			c.Degrade = true
			c.Inject = armed(int64(i) + 1).Hook()
			res, err := oracle.Run(c, int64(i)+1)
			if err != nil {
				fail("%s: harness error: %v", c.Name, err)
			}
			rep.Add(res)
			if res.Divergence != nil && !*quiet {
				fmt.Print(res.Divergence.Format())
			}
		}
	}

	fmt.Println(rep.Summary())
	if !rep.OK() {
		os.Exit(1)
	}
}
