package mem

import (
	"errors"
	"fmt"
	"sort"
)

// ErrNoSpace reports heap exhaustion.
var ErrNoSpace = errors.New("mem: allocator out of space")

// ErrBadFree reports a Free of a pointer that was not allocated.
var ErrBadFree = errors.New("mem: free of unallocated pointer")

// Allocator is a first-fit free-list allocator over one segment. It backs
// the simulated heap (minc programs and library substrates allocate from
// it) and the rewriter's code buffer.
type Allocator struct {
	base, size uint64
	free       []span            // sorted by addr, coalesced
	live       map[uint64]uint64 // addr -> size
	align      uint64
}

type span struct{ addr, size uint64 }

// NewAllocator manages [base, base+size) with the given alignment
// (power of two, at least 1).
func NewAllocator(base, size, align uint64) *Allocator {
	if align == 0 {
		align = 1
	}
	return &Allocator{
		base:  base,
		size:  size,
		free:  []span{{base, size}},
		live:  make(map[uint64]uint64),
		align: align,
	}
}

// Alloc reserves n bytes and returns their address.
func (a *Allocator) Alloc(n uint64) (uint64, error) {
	if n == 0 {
		n = 1
	}
	n = (n + a.align - 1) &^ (a.align - 1)
	for i, f := range a.free {
		start := (f.addr + a.align - 1) &^ (a.align - 1)
		pad := start - f.addr
		if f.size < pad+n {
			continue
		}
		// Shrink or split the span.
		rest := span{start + n, f.size - pad - n}
		switch {
		case pad == 0 && rest.size == 0:
			a.free = append(a.free[:i], a.free[i+1:]...)
		case pad == 0:
			a.free[i] = rest
		case rest.size == 0:
			a.free[i] = span{f.addr, pad}
		default:
			a.free[i] = span{f.addr, pad}
			a.free = append(a.free, span{})
			copy(a.free[i+2:], a.free[i+1:])
			a.free[i+1] = rest
		}
		a.live[start] = n
		return start, nil
	}
	return 0, fmt.Errorf("%w: need %d bytes", ErrNoSpace, n)
}

// Free releases an allocation made by Alloc.
func (a *Allocator) Free(addr uint64) error {
	n, ok := a.live[addr]
	if !ok {
		return fmt.Errorf("%w: 0x%x", ErrBadFree, addr)
	}
	delete(a.live, addr)
	idx := sort.Search(len(a.free), func(i int) bool { return a.free[i].addr >= addr })
	a.free = append(a.free, span{})
	copy(a.free[idx+1:], a.free[idx:])
	a.free[idx] = span{addr, n}
	a.coalesce(idx)
	return nil
}

func (a *Allocator) coalesce(idx int) {
	// Merge with successor, then predecessor.
	if idx+1 < len(a.free) && a.free[idx].addr+a.free[idx].size == a.free[idx+1].addr {
		a.free[idx].size += a.free[idx+1].size
		a.free = append(a.free[:idx+1], a.free[idx+2:]...)
	}
	if idx > 0 && a.free[idx-1].addr+a.free[idx-1].size == a.free[idx].addr {
		a.free[idx-1].size += a.free[idx].size
		a.free = append(a.free[:idx], a.free[idx+1:]...)
	}
}

// LiveBytes returns the sum of live allocation sizes.
func (a *Allocator) LiveBytes() uint64 {
	var t uint64
	for _, n := range a.live {
		t += n
	}
	return t
}

// FreeBytes returns the sum of free span sizes.
func (a *Allocator) FreeBytes() uint64 {
	var t uint64
	for _, f := range a.free {
		t += f.size
	}
	return t
}

// Base returns the managed range start.
func (a *Allocator) Base() uint64 { return a.base }

// Size returns the managed range length.
func (a *Allocator) Size() uint64 { return a.size }
