// Package mem implements the simulated 64-bit address space that the VX64
// emulator, the BREW rewriter and the PGAS substrate operate on. It replaces
// the process address space the paper's prototype patches directly (see
// DESIGN.md, substitution table).
package mem

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// Perm is a segment permission bitmask.
type Perm uint8

// Permission bits.
const (
	PermRead Perm = 1 << iota
	PermWrite
	PermExec
)

// Common permission combinations.
const (
	PermRW  = PermRead | PermWrite
	PermRX  = PermRead | PermExec
	PermRWX = PermRead | PermWrite | PermExec
)

func (p Perm) String() string {
	b := []byte("---")
	if p&PermRead != 0 {
		b[0] = 'r'
	}
	if p&PermWrite != 0 {
		b[1] = 'w'
	}
	if p&PermExec != 0 {
		b[2] = 'x'
	}
	return string(b)
}

// Access faults.
var (
	ErrUnmapped   = errors.New("mem: unmapped address")
	ErrPerm       = errors.New("mem: permission denied")
	ErrOverlap    = errors.New("mem: segment overlap")
	ErrWrap       = errors.New("mem: address range wraps")
	ErrOutOfRange = errors.New("mem: access crosses segment end")
)

// Segment is a contiguous mapped region.
type Segment struct {
	Name string
	Base uint64
	Data []byte
	Perm Perm
}

// End returns the first address past the segment.
func (s *Segment) End() uint64 { return s.Base + uint64(len(s.Data)) }

// Contains reports whether addr falls inside the segment.
func (s *Segment) Contains(addr uint64) bool { return addr >= s.Base && addr < s.End() }

// Memory is a sparse, segmented address space with little-endian accessors.
// The zero value is an empty address space ready for Map calls.
//
// Concurrency: reads may run concurrently (e.g. several rewriter traces
// over the same code); the one-entry lookup cache is atomic. Mapping
// segments or writing memory concurrently with anything else requires
// external synchronization.
type Memory struct {
	segs []*Segment              // sorted by Base
	last atomic.Pointer[Segment] // 1-entry lookup cache
}

// Map creates a segment of the given size. It fails if the range overlaps an
// existing segment or wraps the address space.
func (m *Memory) Map(name string, base, size uint64, perm Perm) (*Segment, error) {
	if size == 0 || base+size < base || base+size > math.MaxInt64 {
		return nil, fmt.Errorf("%w: [0x%x, 0x%x)", ErrWrap, base, base+size)
	}
	idx := sort.Search(len(m.segs), func(i int) bool { return m.segs[i].Base >= base })
	if idx < len(m.segs) && m.segs[idx].Base < base+size {
		return nil, fmt.Errorf("%w: %q at 0x%x collides with %q", ErrOverlap, name, base, m.segs[idx].Name)
	}
	if idx > 0 && m.segs[idx-1].End() > base {
		return nil, fmt.Errorf("%w: %q at 0x%x collides with %q", ErrOverlap, name, base, m.segs[idx-1].Name)
	}
	s := &Segment{Name: name, Base: base, Data: make([]byte, size), Perm: perm}
	m.segs = append(m.segs, nil)
	copy(m.segs[idx+1:], m.segs[idx:])
	m.segs[idx] = s
	return s, nil
}

// Segments returns the mapped segments in address order.
func (m *Memory) Segments() []*Segment { return m.segs }

// Find returns the segment containing addr, or nil.
func (m *Memory) Find(addr uint64) *Segment {
	if s := m.last.Load(); s != nil && s.Contains(addr) {
		return s
	}
	idx := sort.Search(len(m.segs), func(i int) bool { return m.segs[i].End() > addr })
	if idx < len(m.segs) && m.segs[idx].Contains(addr) {
		m.last.Store(m.segs[idx])
		return m.segs[idx]
	}
	return nil
}

// Slice returns a view of n bytes at addr, verifying perm. The returned
// slice aliases segment storage.
func (m *Memory) Slice(addr uint64, n int, perm Perm) ([]byte, error) {
	s := m.Find(addr)
	if s == nil {
		return nil, fmt.Errorf("%w: 0x%x", ErrUnmapped, addr)
	}
	if s.Perm&perm != perm {
		return nil, fmt.Errorf("%w: %v access to %q (0x%x, %v)", ErrPerm, perm, s.Name, addr, s.Perm)
	}
	off := addr - s.Base
	if off+uint64(n) > uint64(len(s.Data)) {
		return nil, fmt.Errorf("%w: 0x%x+%d in %q", ErrOutOfRange, addr, n, s.Name)
	}
	return s.Data[off : off+uint64(n)], nil
}

// ReadN reads an n-byte little-endian unsigned integer (n in 1..8).
func (m *Memory) ReadN(addr uint64, n int) (uint64, error) {
	b, err := m.Slice(addr, n, PermRead)
	if err != nil {
		return 0, err
	}
	var v uint64
	for i := n - 1; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v, nil
}

// WriteN writes an n-byte little-endian integer (n in 1..8).
func (m *Memory) WriteN(addr uint64, v uint64, n int) error {
	b, err := m.Slice(addr, n, PermWrite)
	if err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		b[i] = byte(v)
		v >>= 8
	}
	return nil
}

// Read64 reads a 64-bit value.
func (m *Memory) Read64(addr uint64) (uint64, error) { return m.ReadN(addr, 8) }

// Write64 writes a 64-bit value.
func (m *Memory) Write64(addr uint64, v uint64) error { return m.WriteN(addr, v, 8) }

// Read8 reads a byte.
func (m *Memory) Read8(addr uint64) (byte, error) {
	v, err := m.ReadN(addr, 1)
	return byte(v), err
}

// Write8 writes a byte.
func (m *Memory) Write8(addr uint64, v byte) error { return m.WriteN(addr, uint64(v), 1) }

// ReadF64 reads a float64.
func (m *Memory) ReadF64(addr uint64) (float64, error) {
	v, err := m.Read64(addr)
	return math.Float64frombits(v), err
}

// WriteF64 writes a float64.
func (m *Memory) WriteF64(addr uint64, f float64) error {
	return m.Write64(addr, math.Float64bits(f))
}

// FetchSlice returns executable bytes from addr to the end of the containing
// segment; used by the instruction fetcher and the rewriter's decoder.
func (m *Memory) FetchSlice(addr uint64) ([]byte, error) {
	s := m.Find(addr)
	if s == nil {
		return nil, fmt.Errorf("%w: fetch 0x%x", ErrUnmapped, addr)
	}
	if s.Perm&PermExec == 0 {
		return nil, fmt.Errorf("%w: fetch from non-executable %q (0x%x)", ErrPerm, s.Name, addr)
	}
	return s.Data[addr-s.Base:], nil
}

// WriteBytes copies b into memory at addr (requires write permission).
func (m *Memory) WriteBytes(addr uint64, b []byte) error {
	dst, err := m.Slice(addr, len(b), PermWrite)
	if err != nil {
		return err
	}
	copy(dst, b)
	return nil
}

// ReadBytes copies n bytes from addr.
func (m *Memory) ReadBytes(addr uint64, n int) ([]byte, error) {
	src, err := m.Slice(addr, n, PermRead)
	if err != nil {
		return nil, err
	}
	out := make([]byte, n)
	copy(out, src)
	return out, nil
}
