package mem

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func newTestMem(t *testing.T) *Memory {
	t.Helper()
	m := &Memory{}
	if _, err := m.Map("code", 0x1000, 0x1000, PermRX); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Map("data", 0x4000, 0x1000, PermRW); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMapOverlapRejected(t *testing.T) {
	m := newTestMem(t)
	cases := []struct{ base, size uint64 }{
		{0x1000, 1},      // exact start of code
		{0x1FFF, 2},      // tail of code
		{0x0FFF, 2},      // spans into code
		{0x0, 0x10000},   // covers everything
		{0x4500, 0x1000}, // middle of data onward
	}
	for _, c := range cases {
		if _, err := m.Map("x", c.base, c.size, PermRW); !errors.Is(err, ErrOverlap) {
			t.Errorf("Map(0x%x, 0x%x) = %v, want overlap", c.base, c.size, err)
		}
	}
	// Adjacent mapping is fine.
	if _, err := m.Map("adj", 0x2000, 0x1000, PermRW); err != nil {
		t.Errorf("adjacent map failed: %v", err)
	}
}

func TestMapWrapRejected(t *testing.T) {
	m := &Memory{}
	if _, err := m.Map("w", ^uint64(0)-10, 100, PermRW); !errors.Is(err, ErrWrap) {
		t.Errorf("wrap: %v", err)
	}
	if _, err := m.Map("z", 0x10, 0, PermRW); !errors.Is(err, ErrWrap) {
		t.Errorf("zero size: %v", err)
	}
}

func TestReadWriteWidths(t *testing.T) {
	m := newTestMem(t)
	for _, n := range []int{1, 2, 4, 8} {
		want := uint64(0x1122334455667788) & (1<<(8*n) - 1)
		if n == 8 {
			want = 0x1122334455667788
		}
		if err := m.WriteN(0x4000, want, n); err != nil {
			t.Fatal(err)
		}
		got, err := m.ReadN(0x4000, n)
		if err != nil || got != want {
			t.Errorf("width %d: got 0x%x, %v; want 0x%x", n, got, err, want)
		}
	}
}

func TestLittleEndian(t *testing.T) {
	m := newTestMem(t)
	if err := m.Write64(0x4000, 0x0807060504030201); err != nil {
		t.Fatal(err)
	}
	b, err := m.ReadBytes(0x4000, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range b {
		if v != byte(i+1) {
			t.Fatalf("byte %d = %d, want %d (not little-endian)", i, v, i+1)
		}
	}
}

func TestFloatRoundtrip(t *testing.T) {
	m := newTestMem(t)
	for _, f := range []float64{0, 1.5, -3.25e10, 1e-300} {
		if err := m.WriteF64(0x4010, f); err != nil {
			t.Fatal(err)
		}
		got, err := m.ReadF64(0x4010)
		if err != nil || got != f {
			t.Errorf("float roundtrip: got %g, %v; want %g", got, err, f)
		}
	}
}

func TestPermissionFaults(t *testing.T) {
	m := newTestMem(t)
	if err := m.Write64(0x1000, 1); !errors.Is(err, ErrPerm) {
		t.Errorf("write to rx segment: %v", err)
	}
	if _, err := m.FetchSlice(0x4000); !errors.Is(err, ErrPerm) {
		t.Errorf("fetch from rw segment: %v", err)
	}
	if _, err := m.Read64(0x9000); !errors.Is(err, ErrUnmapped) {
		t.Errorf("unmapped read: %v", err)
	}
	if _, err := m.Read64(0x4FFC); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("straddling read: %v", err)
	}
}

func TestFetchSlice(t *testing.T) {
	m := newTestMem(t)
	s := m.Find(0x1000)
	s.Data[0x10] = 0xAB
	b, err := m.FetchSlice(0x1010)
	if err != nil {
		t.Fatal(err)
	}
	if b[0] != 0xAB || len(b) != 0x1000-0x10 {
		t.Errorf("FetchSlice: b[0]=0x%x len=%d", b[0], len(b))
	}
}

func TestFindCache(t *testing.T) {
	m := newTestMem(t)
	if m.Find(0x1001) == nil || m.Find(0x1001) == nil {
		t.Fatal("Find failed")
	}
	if m.Find(0x4001) == nil { // switch segments; cache must not lie
		t.Fatal("Find after cache switch failed")
	}
	if m.Find(0xFFFF) != nil {
		t.Fatal("Find returned segment for unmapped address")
	}
}

func TestWriteBytesReadBytes(t *testing.T) {
	m := newTestMem(t)
	data := []byte{1, 2, 3, 4, 5}
	if err := m.WriteBytes(0x4100, data); err != nil {
		t.Fatal(err)
	}
	got, err := m.ReadBytes(0x4100, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("byte %d: got %d want %d", i, got[i], data[i])
		}
	}
}

func TestAllocatorBasic(t *testing.T) {
	a := NewAllocator(0x1000, 0x1000, 8)
	p1, err := a.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := a.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if p1%8 != 0 || p2%8 != 0 {
		t.Errorf("misaligned: 0x%x 0x%x", p1, p2)
	}
	if p2 < p1+100 {
		t.Errorf("overlap: p1=0x%x p2=0x%x", p1, p2)
	}
	if err := a.Free(p1); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(p1); !errors.Is(err, ErrBadFree) {
		t.Errorf("double free: %v", err)
	}
	if err := a.Free(0xDEAD); !errors.Is(err, ErrBadFree) {
		t.Errorf("bad free: %v", err)
	}
	// After freeing everything, one coalesced span must remain.
	if err := a.Free(p2); err != nil {
		t.Fatal(err)
	}
	if a.FreeBytes() != 0x1000 || len(a.free) != 1 {
		t.Errorf("not coalesced: free=%d spans=%d", a.FreeBytes(), len(a.free))
	}
}

func TestAllocatorExhaustion(t *testing.T) {
	a := NewAllocator(0, 64, 8)
	if _, err := a.Alloc(65); !errors.Is(err, ErrNoSpace) {
		t.Errorf("oversize alloc: %v", err)
	}
	p, err := a.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc(1); !errors.Is(err, ErrNoSpace) {
		t.Errorf("alloc from full heap: %v", err)
	}
	if err := a.Free(p); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc(64); err != nil {
		t.Errorf("realloc after free: %v", err)
	}
}

// Property: arbitrary alloc/free sequences never hand out overlapping live
// blocks, keep alignment, and conserve bytes.
func TestAllocatorProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		const size = 1 << 14
		a := NewAllocator(0x8000, size, 16)
		type blk struct{ addr, n uint64 }
		var live []blk
		for step := 0; step < 300; step++ {
			if len(live) > 0 && r.Intn(3) == 0 {
				i := r.Intn(len(live))
				if err := a.Free(live[i].addr); err != nil {
					t.Logf("free: %v", err)
					return false
				}
				live = append(live[:i], live[i+1:]...)
				continue
			}
			n := uint64(r.Intn(512) + 1)
			p, err := a.Alloc(n)
			if err != nil {
				continue // exhaustion is fine
			}
			if p%16 != 0 || p < 0x8000 || p+n > 0x8000+size {
				t.Logf("bad block 0x%x+%d", p, n)
				return false
			}
			for _, b := range live {
				if p < b.addr+b.n && b.addr < p+n {
					t.Logf("overlap 0x%x+%d with 0x%x+%d", p, n, b.addr, b.n)
					return false
				}
			}
			live = append(live, blk{p, n})
		}
		return a.LiveBytes()+a.FreeBytes() == size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSegmentsAndPermString(t *testing.T) {
	m := newTestMem(t)
	segs := m.Segments()
	if len(segs) != 2 || segs[0].Name != "code" || segs[1].Name != "data" {
		t.Errorf("segments: %v", segs)
	}
	if PermRWX.String() != "rwx" || PermRX.String() != "r-x" || Perm(0).String() != "---" {
		t.Errorf("perm strings: %s %s %s", PermRWX, PermRX, Perm(0))
	}
	if got := m.Find(0x1000); got == nil || got.Name != "code" {
		t.Errorf("Find base: %v", got)
	}
}

func TestAllocatorBaseSize(t *testing.T) {
	a := NewAllocator(0x100, 0x200, 0)
	if a.Base() != 0x100 || a.Size() != 0x200 {
		t.Errorf("base/size: 0x%x 0x%x", a.Base(), a.Size())
	}
	p, err := a.Alloc(0) // zero-size allocations take one aligned unit
	if err != nil || p < 0x100 {
		t.Errorf("zero alloc: 0x%x, %v", p, err)
	}
}
