// Package telemetry is a process-wide metrics registry for the BREW-Go
// pipeline: counters, gauges and histograms with atomic updates, designed
// so that the disabled path costs one atomic load and zero allocations.
// Instrumented packages (vm, cache, brew, pgas) hold *Counter handles and
// call Add/Inc unconditionally; until Enable() is called every update is a
// no-op, so the emulator hot path and Rewrite stay at their uninstrumented
// cost. Snapshots are deterministic: instruments are reported in sorted
// name order so two identical runs render byte-identical text and JSON.
package telemetry

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// enabled gates every instrument update. Package-level (not per-registry)
// so the hot-path check is a single atomic load with no pointer chase.
var enabled atomic.Bool

// Enable turns on metric collection process-wide.
func Enable() { enabled.Store(true) }

// Disable turns off metric collection. Already-recorded values remain
// readable; new updates are dropped.
func Disable() { enabled.Store(false) }

// Enabled reports whether collection is on.
func Enabled() bool { return enabled.Load() }

// Counter is a monotonically increasing uint64 metric.
type Counter struct {
	name string
	v    atomic.Uint64
}

// Add increments the counter by n. No-op (and allocation-free) when the
// counter is nil or collection is disabled.
func (c *Counter) Add(n uint64) {
	if c == nil || !enabled.Load() {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by 1.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value-wins int64 metric.
type Gauge struct {
	name string
	v    atomic.Int64
}

// Set records the gauge value. No-op when nil or disabled.
func (g *Gauge) Set(v int64) {
	if g == nil || !enabled.Load() {
		return
	}
	g.v.Store(v)
}

// Value returns the last recorded value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed buckets. Bounds are inclusive
// upper limits; one implicit overflow bucket catches everything above the
// last bound.
type Histogram struct {
	name    string
	bounds  []uint64
	buckets []atomic.Uint64 // len(bounds)+1
	count   atomic.Uint64
	sum     atomic.Uint64
}

// Observe records one sample. No-op when nil or disabled.
func (h *Histogram) Observe(v uint64) {
	if h == nil || !enabled.Load() {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Quantile returns the q-th quantile (0 < q <= 1) of the recorded
// samples by exact rank arithmetic over the bucket counts: the rank
// ceil(q*count) sample's bucket is located exactly, and its inclusive
// upper bound is returned (the bucket's resolution is the only
// approximation). The overflow bucket reports the last finite bound.
// Returns 0 with no samples. Allocation-free whether collection is
// enabled or disabled: it reads the live bucket atomics directly and
// never snapshots.
func (h *Histogram) Quantile(q float64) uint64 {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(n))
	if float64(rank) < q*float64(n) || rank == 0 {
		rank++ // ceil, and quantiles are 1-based ranks
	}
	if rank > n {
		rank = n
	}
	var seen uint64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			break
		}
	}
	// Overflow bucket (or racing writers): report the largest finite bound.
	if len(h.bounds) > 0 {
		return h.bounds[len(h.bounds)-1]
	}
	return 0
}

// ExponentialBounds returns count bucket upper bounds for Histogram
// creation: the first is start, each subsequent bound is the previous
// multiplied by factor (rounded, and always strictly increasing).
// ExponentialBounds(100, 2, 8) = 100, 200, 400, ... 12800.
func ExponentialBounds(start uint64, factor float64, count int) []uint64 {
	if start == 0 {
		start = 1
	}
	out := make([]uint64, 0, count)
	cur := start
	for i := 0; i < count; i++ {
		out = append(out, cur)
		next := uint64(float64(cur)*factor + 0.5)
		if next <= cur {
			next = cur + 1
		}
		cur = next
	}
	return out
}

// Sum returns the sum of recorded samples.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Registry owns a namespace of instruments. Instrument lookup/creation
// takes a mutex; the returned handles update lock-free.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Default is the process-wide registry the built-in instrumentation
// (vm, cache, brew, pgas) registers into.
var Default = NewRegistry()

// Counter returns the counter with the given name, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge with the given name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{name: name}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram with the given name, creating it with
// the given bucket upper bounds (sorted ascending) if needed. Bounds are
// fixed at creation; later calls with different bounds return the
// original instrument.
func (r *Registry) Histogram(name string, bounds []uint64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		bs := append([]uint64(nil), bounds...)
		sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
		h = &Histogram{name: name, bounds: bs, buckets: make([]atomic.Uint64, len(bs)+1)}
		r.hists[name] = h
	}
	return h
}

// Reset zeroes every instrument's recorded values. Handles stay valid.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.v.Store(0)
	}
	for _, h := range r.hists {
		for i := range h.buckets {
			h.buckets[i].Store(0)
		}
		h.count.Store(0)
		h.sum.Store(0)
	}
}

// Bucket is one histogram bucket in a snapshot.
type Bucket struct {
	UpperBound uint64 `json:"upper_bound"` // 0 with Overflow=true for the +Inf bucket
	Overflow   bool   `json:"overflow,omitempty"`
	Count      uint64 `json:"count"`
}

// Metric is one instrument's state in a snapshot.
type Metric struct {
	Name    string   `json:"name"`
	Kind    string   `json:"kind"` // "counter" | "gauge" | "histogram"
	Value   uint64   `json:"value,omitempty"`
	Gauge   int64    `json:"gauge,omitempty"`
	Count   uint64   `json:"count,omitempty"`
	Sum     uint64   `json:"sum,omitempty"`
	P50     uint64   `json:"p50,omitempty"`
	P99     uint64   `json:"p99,omitempty"`
	P999    uint64   `json:"p999,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Quantile returns the q-th quantile of a histogram metric by the same
// exact rank arithmetic as Histogram.Quantile, over the snapshot's
// bucket counts (0 for non-histograms or empty histograms).
func (m Metric) Quantile(q float64) uint64 {
	if m.Count == 0 || len(m.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(m.Count))
	if float64(rank) < q*float64(m.Count) || rank == 0 {
		rank++
	}
	if rank > m.Count {
		rank = m.Count
	}
	var seen, lastFinite uint64
	for _, b := range m.Buckets {
		if !b.Overflow {
			lastFinite = b.UpperBound
		}
		seen += b.Count
		if seen >= rank {
			if b.Overflow {
				break
			}
			return b.UpperBound
		}
	}
	return lastFinite
}

// Snapshot is a point-in-time copy of a registry, sorted by metric name
// (counters, gauges and histograms interleaved in one order).
type Snapshot []Metric

// Snapshot copies the registry's current state. The result is
// deterministic: sorted by name, value types fixed per kind.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(Snapshot, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for name, c := range r.counters {
		out = append(out, Metric{Name: name, Kind: "counter", Value: c.v.Load()})
	}
	for name, g := range r.gauges {
		out = append(out, Metric{Name: name, Kind: "gauge", Gauge: g.v.Load()})
	}
	for name, h := range r.hists {
		m := Metric{Name: name, Kind: "histogram", Count: h.count.Load(), Sum: h.sum.Load()}
		for i := range h.buckets {
			b := Bucket{Count: h.buckets[i].Load()}
			if i < len(h.bounds) {
				b.UpperBound = h.bounds[i]
			} else {
				b.Overflow = true
			}
			m.Buckets = append(m.Buckets, b)
		}
		m.P50, m.P99, m.P999 = m.Quantile(0.50), m.Quantile(0.99), m.Quantile(0.999)
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Text renders the snapshot as one "name kind value" line per metric.
func (s Snapshot) Text() string {
	var b strings.Builder
	for _, m := range s {
		switch m.Kind {
		case "counter":
			fmt.Fprintf(&b, "%-44s counter   %d\n", m.Name, m.Value)
		case "gauge":
			fmt.Fprintf(&b, "%-44s gauge     %d\n", m.Name, m.Gauge)
		case "histogram":
			fmt.Fprintf(&b, "%-44s histogram count=%d sum=%d", m.Name, m.Count, m.Sum)
			if m.Count > 0 {
				fmt.Fprintf(&b, " p50=%d p99=%d p999=%d", m.P50, m.P99, m.P999)
			}
			for _, bk := range m.Buckets {
				if bk.Overflow {
					fmt.Fprintf(&b, " le(+inf)=%d", bk.Count)
				} else {
					fmt.Fprintf(&b, " le(%d)=%d", bk.UpperBound, bk.Count)
				}
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// JSON renders the snapshot as indented JSON.
func (s Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}
