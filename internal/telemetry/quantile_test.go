package telemetry

import "testing"

// Histogram.Quantile: rank-exact over bucket counts, allocation-free in
// both enabled and disabled states (the "after" half of the
// before/after allocation contract — the "before" is that Observe
// itself stays allocation-free, covered by TestDisabledPathAllocationFree).
func TestHistogramQuantile(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("q.test", ExponentialBounds(1, 2, 10)) // 1,2,4,...,512
	Enable()
	defer Disable()
	for i := 0; i < 100; i++ {
		h.Observe(uint64(i)) // 0..99
	}
	// Rank 50 of 100 = value 49 -> bucket le=64; rank 99 = value 98 -> le=128.
	if got := h.Quantile(0.50); got != 64 {
		t.Fatalf("p50 = %d, want 64 (rank-50 sample 49 is in the le=64 bucket)", got)
	}
	if got := h.Quantile(0.99); got != 128 {
		t.Fatalf("p99 = %d, want 128", got)
	}
	if got := h.Quantile(1.0); got != 128 {
		t.Fatalf("p100 = %d, want 128", got)
	}

	// Allocation-free with collection enabled...
	if allocs := testing.AllocsPerRun(1000, func() { _ = h.Quantile(0.99) }); allocs != 0 {
		t.Fatalf("enabled Quantile allocates %.1f per op, want 0", allocs)
	}
	// ...and disabled (quantile reads must not regress the disabled path).
	Disable()
	if allocs := testing.AllocsPerRun(1000, func() { _ = h.Quantile(0.99) }); allocs != 0 {
		t.Fatalf("disabled Quantile allocates %.1f per op, want 0", allocs)
	}
	if got := h.Quantile(0.50); got != 64 {
		t.Fatalf("disabled quantile read lost data: p50 = %d, want 64", got)
	}

	// Snapshot carries the same quantiles.
	for _, m := range reg.Snapshot() {
		if m.Name == "q.test" {
			if m.P50 != 64 || m.P99 != 128 || m.P999 != 128 {
				t.Fatalf("snapshot p50=%d p99=%d p999=%d, want 64/128/128", m.P50, m.P99, m.P999)
			}
		}
	}

	// Empty histogram: all quantiles 0, nil histogram too.
	h2 := reg.Histogram("q.empty", []uint64{10})
	if got := h2.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram p50 = %d, want 0", got)
	}
	var hn *Histogram
	if got := hn.Quantile(0.5); got != 0 {
		t.Fatalf("nil histogram p50 = %d, want 0", got)
	}
}

// Single-sample and overflow-bucket edges.
func TestHistogramQuantileEdges(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("q.edge", []uint64{10, 100})
	Enable()
	defer Disable()

	h.Observe(5)
	if got := h.Quantile(0.5); got != 10 {
		t.Fatalf("one-sample p50 = %d, want 10", got)
	}
	// An overflow observation: quantiles that land there report the last
	// finite bound (the histogram cannot see past it).
	h.Observe(1000)
	if got := h.Quantile(1.0); got != 100 {
		t.Fatalf("overflow p100 = %d, want last finite bound 100", got)
	}
}

func TestExponentialBounds(t *testing.T) {
	got := ExponentialBounds(100, 2, 5)
	want := []uint64{100, 200, 400, 800, 1600}
	if len(got) != len(want) {
		t.Fatalf("bounds = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bounds = %v, want %v", got, want)
		}
	}
	// Fractional factors still strictly increase (rounding can stall; the
	// +1 floor must kick in).
	frac := ExponentialBounds(1, 1.1, 20)
	for i := 1; i < len(frac); i++ {
		if frac[i] <= frac[i-1] {
			t.Fatalf("bounds not strictly increasing: %v", frac)
		}
	}
	// Zero start is promoted to 1 so bounds stay usable.
	if z := ExponentialBounds(0, 2, 3); z[0] != 1 {
		t.Fatalf("zero-start bounds = %v, want first bound 1", z)
	}
}
