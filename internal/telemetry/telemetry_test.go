package telemetry

import (
	"bytes"
	"sync"
	"testing"
)

// populate builds the same instrument set in a deliberately shuffled
// creation order and records the same values, so two registries must
// snapshot byte-identically regardless of map iteration order.
func populate(r *Registry, order []string) {
	for _, name := range order {
		r.Counter("c." + name)
	}
	r.Gauge("g.depth")
	r.Histogram("h.lat", []uint64{10, 100, 1000})
	for _, name := range order {
		r.Counter("c." + name).Add(uint64(len(name)))
	}
	r.Gauge("g.depth").Set(-7)
	for _, v := range []uint64{3, 42, 9999, 100} {
		r.Histogram("h.lat", nil).Observe(v)
	}
}

func TestSnapshotDeterminism(t *testing.T) {
	Enable()
	t.Cleanup(Disable)
	a, b := NewRegistry(), NewRegistry()
	populate(a, []string{"vm.cycles", "brew.blocks", "cache.l1.hits", "pgas.remote"})
	populate(b, []string{"pgas.remote", "cache.l1.hits", "brew.blocks", "vm.cycles"})
	for run := 0; run < 4; run++ { // repeat: map order varies per iteration
		at, bt := a.Snapshot().Text(), b.Snapshot().Text()
		if at != bt {
			t.Fatalf("snapshot text differs between identical runs:\n%s\nvs\n%s", at, bt)
		}
		aj, err := a.Snapshot().JSON()
		if err != nil {
			t.Fatal(err)
		}
		bj, err := b.Snapshot().JSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(aj, bj) {
			t.Fatalf("snapshot JSON differs between identical runs:\n%s\nvs\n%s", aj, bj)
		}
	}
}

func TestCounterGaugeHistogramValues(t *testing.T) {
	Enable()
	t.Cleanup(Disable)
	r := NewRegistry()
	c := r.Counter("c")
	c.Add(5)
	c.Inc()
	if got := c.Value(); got != 6 {
		t.Fatalf("counter = %d, want 6", got)
	}
	g := r.Gauge("g")
	g.Set(41)
	g.Set(-2)
	if got := g.Value(); got != -2 {
		t.Fatalf("gauge = %d, want -2", got)
	}
	h := r.Histogram("h", []uint64{10, 100})
	for _, v := range []uint64{1, 10, 11, 1000} {
		h.Observe(v)
	}
	if h.Count() != 4 || h.Sum() != 1022 {
		t.Fatalf("histogram count=%d sum=%d, want 4/1022", h.Count(), h.Sum())
	}
	snap := r.Snapshot()
	var hm *Metric
	for i := range snap {
		if snap[i].Name == "h" {
			hm = &snap[i]
		}
	}
	if hm == nil {
		t.Fatal("histogram missing from snapshot")
	}
	want := []uint64{2, 1, 1} // le(10)=2 {1,10}, le(100)=1 {11}, overflow=1 {1000}
	for i, w := range want {
		if hm.Buckets[i].Count != w {
			t.Fatalf("bucket %d = %d, want %d", i, hm.Buckets[i].Count, w)
		}
	}
	if !hm.Buckets[2].Overflow {
		t.Fatal("last bucket not marked overflow")
	}
}

func TestDisabledDropsUpdates(t *testing.T) {
	Disable()
	r := NewRegistry()
	c := r.Counter("c")
	c.Add(10)
	r.Gauge("g").Set(3)
	r.Histogram("h", []uint64{1}).Observe(5)
	if c.Value() != 0 || r.Gauge("g").Value() != 0 || r.Histogram("h", nil).Count() != 0 {
		t.Fatal("disabled instruments recorded updates")
	}
}

// TestDisabledPathAllocationFree is the ISSUE acceptance check: with
// telemetry off, metric updates on the emulator hot path must not
// allocate. The enabled path is also allocation-free (pure atomics).
func TestDisabledPathAllocationFree(t *testing.T) {
	Disable()
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", []uint64{10, 100})
	var nilC *Counter
	if n := testing.AllocsPerRun(1000, func() {
		c.Add(3)
		g.Set(1)
		h.Observe(7)
		nilC.Add(1)
	}); n != 0 {
		t.Fatalf("disabled metric updates allocated %v times/op, want 0", n)
	}
	Enable()
	t.Cleanup(Disable)
	if n := testing.AllocsPerRun(1000, func() {
		c.Add(3)
		g.Set(1)
		h.Observe(7)
	}); n != 0 {
		t.Fatalf("enabled metric updates allocated %v times/op, want 0", n)
	}
}

func TestConcurrentUpdates(t *testing.T) {
	Enable()
	t.Cleanup(Disable)
	r := NewRegistry()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("shared").Inc()
				r.Histogram("hist", []uint64{500}).Observe(uint64(i))
				r.Gauge("gauge").Set(int64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("hist", nil).Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

func TestResetKeepsHandles(t *testing.T) {
	Enable()
	t.Cleanup(Disable)
	r := NewRegistry()
	c := r.Counter("c")
	c.Add(9)
	h := r.Histogram("h", []uint64{4})
	h.Observe(2)
	r.Reset()
	if c.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("Reset did not zero values")
	}
	c.Add(1)
	if c.Value() != 1 {
		t.Fatal("handle dead after Reset")
	}
}
