package isa

import (
	"fmt"
	"math"
	"strings"
)

// OpKind classifies an Operand.
type OpKind uint8

// Operand kinds.
const (
	KindNone OpKind = iota
	KindReg         // integer register
	KindFReg        // floating-point register
	KindVReg        // vector register
	KindImm         // immediate value (sign-extended int64; FMOVI: raw f64 bits)
	KindMem         // memory reference
)

// MemRef is a memory operand: [base + index*scale + disp]. Base and Index
// are integer registers or RegNone. Scale is 1, 2, 4 or 8. Wide forces a
// 4-byte displacement encoding (see Instr.Wide).
type MemRef struct {
	Base  Reg
	Index Reg
	Scale uint8
	Disp  int32
	Wide  bool
}

// HasBase reports whether the operand uses a base register.
func (m MemRef) HasBase() bool { return m.Base != RegNone }

// HasIndex reports whether the operand uses an index register.
func (m MemRef) HasIndex() bool { return m.Index != RegNone }

// Abs constructs an absolute-address memory operand.
func Abs(addr int32) MemRef { return MemRef{Base: RegNone, Index: RegNone, Scale: 1, Disp: addr} }

// BaseDisp constructs a [base + disp] memory operand.
func BaseDisp(base Reg, disp int32) MemRef {
	return MemRef{Base: base, Index: RegNone, Scale: 1, Disp: disp}
}

// BaseIndex constructs a [base + index*scale + disp] memory operand.
func BaseIndex(base, index Reg, scale uint8, disp int32) MemRef {
	return MemRef{Base: base, Index: index, Scale: scale, Disp: disp}
}

func (m MemRef) String() string {
	var b strings.Builder
	b.WriteByte('[')
	wrote := false
	if m.HasBase() {
		b.WriteString(m.Base.String())
		wrote = true
	}
	if m.HasIndex() {
		if wrote {
			b.WriteByte('+')
		}
		fmt.Fprintf(&b, "%s*%d", m.Index, m.Scale)
		wrote = true
	}
	if m.Disp != 0 || !wrote {
		if wrote {
			if m.Disp < 0 {
				fmt.Fprintf(&b, "-%d", -int64(m.Disp))
			} else {
				fmt.Fprintf(&b, "+%d", m.Disp)
			}
		} else {
			fmt.Fprintf(&b, "0x%x", uint32(m.Disp))
		}
	}
	b.WriteByte(']')
	return b.String()
}

// Operand is one instruction operand.
type Operand struct {
	Kind OpKind
	Reg  Reg
	Imm  int64
	Mem  MemRef
}

// RegOp returns an integer-register operand.
func RegOp(r Reg) Operand { return Operand{Kind: KindReg, Reg: r} }

// FRegOp returns a floating-point-register operand.
func FRegOp(r Reg) Operand { return Operand{Kind: KindFReg, Reg: r} }

// VRegOp returns a vector-register operand.
func VRegOp(r Reg) Operand { return Operand{Kind: KindVReg, Reg: r} }

// ImmOp returns an immediate operand.
func ImmOp(v int64) Operand { return Operand{Kind: KindImm, Imm: v} }

// FImmOp returns an immediate operand holding the raw bits of v.
func FImmOp(v float64) Operand { return Operand{Kind: KindImm, Imm: int64(math.Float64bits(v))} }

// MemOp returns a memory operand.
func MemOp(m MemRef) Operand { return Operand{Kind: KindMem, Mem: m} }

// IsReg reports whether the operand is a register in any file.
func (o Operand) IsReg() bool {
	return o.Kind == KindReg || o.Kind == KindFReg || o.Kind == KindVReg
}

func (o Operand) String() string {
	switch o.Kind {
	case KindNone:
		return ""
	case KindReg:
		return o.Reg.String()
	case KindFReg:
		return o.Reg.FName()
	case KindVReg:
		return o.Reg.VName()
	case KindImm:
		return fmt.Sprintf("%d", o.Imm)
	case KindMem:
		return o.Mem.String()
	}
	return "?"
}

// Instr is one decoded (or to-be-encoded) instruction.
//
// Operand conventions by format:
//
//	FNone:  no operands
//	FR:     Dst = register
//	FRR:    Dst, Src = registers (files per OpInfo)
//	FRI:    Dst = register, Src = immediate
//	FRM:    Dst = register, Src = memory
//	FMR:    Dst = memory, Src = register
//	FRel:   Dst = immediate holding the absolute target address
//	FCC:    CC set, Dst = immediate absolute target address
//	FCCR:   CC set, Dst = register
type Instr struct {
	Op   Opcode
	CC   Cond
	Dst  Operand
	Src  Operand
	Addr uint64 // address the instruction was decoded from (0 if synthetic)
	Len  int    // encoded length in bytes (0 if not yet encoded/decoded)
	// Wide forces a 4-byte immediate (FRI) so that two-pass assemblers can
	// compute instruction sizes before label values are known. It does not
	// survive a decode round trip (the decoder reports the actual size).
	Wide bool
}

// Target returns the absolute branch/call target for FRel/FCC instructions.
func (i Instr) Target() uint64 { return uint64(i.Dst.Imm) }

// String renders the instruction in assembler syntax.
func (i Instr) String() string {
	info := Info(i.Op)
	switch info.Format {
	case FNone:
		return info.Name
	case FR:
		return fmt.Sprintf("%s %s", info.Name, regName(i.Dst.Reg, info.DstFile))
	case FRR:
		return fmt.Sprintf("%s %s, %s", info.Name, regName(i.Dst.Reg, info.DstFile), regName(i.Src.Reg, info.SrcFile))
	case FRI:
		if i.Op == FMOVI {
			return fmt.Sprintf("%s %s, %g", info.Name, i.Dst.Reg.FName(), math.Float64frombits(uint64(i.Src.Imm)))
		}
		return fmt.Sprintf("%s %s, %d", info.Name, regName(i.Dst.Reg, info.DstFile), i.Src.Imm)
	case FRM:
		return fmt.Sprintf("%s %s, %s", info.Name, regName(i.Dst.Reg, info.DstFile), i.Src.Mem)
	case FMR:
		return fmt.Sprintf("%s %s, %s", info.Name, i.Dst.Mem, regName(i.Src.Reg, info.DstFile))
	case FRel:
		return fmt.Sprintf("%s 0x%x", info.Name, i.Target())
	case FCC:
		return fmt.Sprintf("j%s 0x%x", i.CC, i.Target())
	case FCCR:
		return fmt.Sprintf("set%s %s", i.CC, i.Dst.Reg)
	}
	return info.Name + " ???"
}

func regName(r Reg, f RegFile) string {
	switch f {
	case RFFloat:
		return r.FName()
	case RFVec:
		return r.VName()
	default:
		return r.String()
	}
}

// Convenience constructors used heavily by the rewriter and the compiler
// back end.

// MakeNone builds a no-operand instruction.
func MakeNone(op Opcode) Instr { return Instr{Op: op} }

// MakeR builds a single-register instruction.
func MakeR(op Opcode, r Reg) Instr {
	k := KindReg
	if Info(op).DstFile == RFFloat {
		k = KindFReg
	}
	return Instr{Op: op, Dst: Operand{Kind: k, Reg: r}}
}

// MakeRR builds a register-register instruction.
func MakeRR(op Opcode, dst, src Reg) Instr {
	info := Info(op)
	return Instr{
		Op:  op,
		Dst: Operand{Kind: kindFor(info.DstFile), Reg: dst},
		Src: Operand{Kind: kindFor(info.SrcFile), Reg: src},
	}
}

// MakeRI builds a register-immediate instruction.
func MakeRI(op Opcode, dst Reg, imm int64) Instr {
	return Instr{Op: op, Dst: Operand{Kind: kindFor(Info(op).DstFile), Reg: dst}, Src: ImmOp(imm)}
}

// MakeRM builds a register-from-memory instruction.
func MakeRM(op Opcode, dst Reg, m MemRef) Instr {
	return Instr{Op: op, Dst: Operand{Kind: kindFor(Info(op).DstFile), Reg: dst}, Src: MemOp(m)}
}

// MakeMR builds a memory-from-register instruction.
func MakeMR(op Opcode, m MemRef, src Reg) Instr {
	return Instr{Op: op, Dst: MemOp(m), Src: Operand{Kind: kindFor(Info(op).DstFile), Reg: src}}
}

// MakeRel builds a relative branch/call with an absolute target address.
func MakeRel(op Opcode, target uint64) Instr {
	return Instr{Op: op, Dst: ImmOp(int64(target))}
}

// MakeJCC builds a conditional jump with an absolute target address.
func MakeJCC(cc Cond, target uint64) Instr {
	return Instr{Op: JCC, CC: cc, Dst: ImmOp(int64(target))}
}

// MakeSetCC builds a SETCC instruction.
func MakeSetCC(cc Cond, dst Reg) Instr {
	return Instr{Op: SETCC, CC: cc, Dst: RegOp(dst)}
}

func kindFor(f RegFile) OpKind {
	switch f {
	case RFFloat:
		return KindFReg
	case RFVec:
		return KindVReg
	case RFInt:
		return KindReg
	}
	return KindReg
}
