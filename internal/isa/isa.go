// Package isa defines VX64, the simulated 64-bit instruction set used by the
// BREW runtime binary rewriter and its substrates.
//
// VX64 is deliberately x86-64-like where the paper's mechanism depends on it:
// a variable-length binary encoding that must be decoded byte-by-byte,
// condition flags set implicitly by ALU instructions, memory operands of the
// form [base + index*scale + disp], push/pop/call/ret stack semantics, and a
// register-based calling convention (see abi.go). It is simulated because Go
// cannot safely patch native machine code in-process; the substitution is
// documented in DESIGN.md.
package isa

import "fmt"

// Reg names a register. The same index space is used for the integer file
// (R0..R15), the floating-point file (F0..F15) and the vector file (V0..V7);
// an Operand's Kind selects the file.
type Reg uint8

// Integer register names. R15 doubles as the stack pointer (see abi.go).
const (
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15
	// RegNone marks an absent base or index register in a memory operand.
	RegNone Reg = 0xFF
)

// SP is the stack pointer register.
const SP = R15

// NumRegs is the size of the integer and floating-point register files.
const NumRegs = 16

// NumVRegs is the size of the vector register file.
const NumVRegs = 8

// VecLanes is the number of float64 lanes in a vector register.
const VecLanes = 4

// Flags holds the condition flags. ALU instructions set them as on x86:
// Z (zero), S (sign), C (carry/borrow, unsigned overflow), O (signed
// overflow). FCMP sets Z and C like x86 UCOMISD (C = "below").
type Flags struct {
	Z, S, C, O bool
}

// Bits encodes the flags for PUSHF.
func (f Flags) Bits() uint64 {
	var v uint64
	if f.Z {
		v |= 1
	}
	if f.S {
		v |= 2
	}
	if f.C {
		v |= 4
	}
	if f.O {
		v |= 8
	}
	return v
}

// FlagsFromBits decodes a PUSHF image (POPF).
func FlagsFromBits(v uint64) Flags {
	return Flags{Z: v&1 != 0, S: v&2 != 0, C: v&4 != 0, O: v&8 != 0}
}

// Cond is a condition code tested by JCC and SETCC.
type Cond uint8

// Condition codes.
const (
	CondEQ Cond = iota // Z
	CondNE             // !Z
	CondLT             // S != O (signed less)
	CondLE             // Z || S != O
	CondGT             // !Z && S == O
	CondGE             // S == O
	CondB              // C (unsigned below)
	CondBE             // C || Z
	CondA              // !C && !Z
	CondAE             // !C
	CondS              // S
	CondNS             // !S
	CondO              // O
	CondNO             // !O
	numConds
)

var condNames = [numConds]string{
	"eq", "ne", "lt", "le", "gt", "ge", "b", "be", "a", "ae", "s", "ns", "o", "no",
}

func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return fmt.Sprintf("cond(%d)", uint8(c))
}

// Valid reports whether c is a defined condition code.
func (c Cond) Valid() bool { return c < numConds }

// Negate returns the condition with the opposite outcome.
func (c Cond) Negate() Cond {
	// Codes are laid out in true/false pairs except the signed/unsigned
	// relational ones, which we map explicitly.
	switch c {
	case CondEQ:
		return CondNE
	case CondNE:
		return CondEQ
	case CondLT:
		return CondGE
	case CondGE:
		return CondLT
	case CondLE:
		return CondGT
	case CondGT:
		return CondLE
	case CondB:
		return CondAE
	case CondAE:
		return CondB
	case CondBE:
		return CondA
	case CondA:
		return CondBE
	case CondS:
		return CondNS
	case CondNS:
		return CondS
	case CondO:
		return CondNO
	case CondNO:
		return CondO
	}
	return c
}

// Holds reports whether the condition is satisfied by the given flags.
func (c Cond) Holds(f Flags) bool {
	switch c {
	case CondEQ:
		return f.Z
	case CondNE:
		return !f.Z
	case CondLT:
		return f.S != f.O
	case CondLE:
		return f.Z || f.S != f.O
	case CondGT:
		return !f.Z && f.S == f.O
	case CondGE:
		return f.S == f.O
	case CondB:
		return f.C
	case CondBE:
		return f.C || f.Z
	case CondA:
		return !f.C && !f.Z
	case CondAE:
		return !f.C
	case CondS:
		return f.S
	case CondNS:
		return !f.S
	case CondO:
		return f.O
	case CondNO:
		return !f.O
	}
	return false
}

// CondFromName parses a condition-code mnemonic ("eq", "ne", ...).
func CondFromName(s string) (Cond, bool) {
	for i, n := range condNames {
		if n == s {
			return Cond(i), true
		}
	}
	return 0, false
}

func (r Reg) String() string {
	if r == RegNone {
		return "rnone"
	}
	return fmt.Sprintf("r%d", uint8(r))
}

// FName returns the floating-point spelling of the register index.
func (r Reg) FName() string { return fmt.Sprintf("f%d", uint8(r)) }

// VName returns the vector spelling of the register index.
func (r Reg) VName() string { return fmt.Sprintf("v%d", uint8(r)) }
