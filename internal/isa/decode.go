package isa

import (
	"errors"
	"fmt"
)

// ErrTruncated reports that the byte stream ended inside an instruction.
var ErrTruncated = errors.New("isa: truncated instruction")

// ErrUndecodable reports bytes that do not form a valid instruction. The
// rewriter treats this as a non-catastrophic failure: the original function
// keeps being used (paper, Section III.G).
var ErrUndecodable = errors.New("isa: undecodable instruction")

// Decode decodes one instruction from b, which must start at the
// instruction's first byte. addr is the address b[0] is mapped at; it is
// needed to materialize absolute targets of relative branches and is stored
// in the result. Decode fills Instr.Len with the encoded size.
func Decode(b []byte, addr uint64) (Instr, error) {
	if len(b) == 0 {
		return Instr{}, ErrTruncated
	}
	op := Opcode(b[0])
	if !op.Valid() {
		return Instr{}, fmt.Errorf("%w: opcode byte 0x%02x at 0x%x", ErrUndecodable, b[0], addr)
	}
	info := Info(op)
	ins := Instr{Op: op, Addr: addr}
	p := 1 // read cursor

	need := func(n int) error {
		if len(b) < p+n {
			return fmt.Errorf("%w: %s at 0x%x", ErrTruncated, info.Name, addr)
		}
		return nil
	}

	switch info.Format {
	case FNone:

	case FR:
		if err := need(1); err != nil {
			return Instr{}, err
		}
		r := Reg(b[p] & 0x0F)
		p++
		if err := regOK(r, info.DstFile); err != nil {
			return Instr{}, decodeErr(info.Name, addr, err)
		}
		ins.Dst = Operand{Kind: kindFor(info.DstFile), Reg: r}

	case FRR:
		if err := need(1); err != nil {
			return Instr{}, err
		}
		d, s := Reg(b[p]>>4), Reg(b[p]&0x0F)
		p++
		if err := regOK(d, info.DstFile); err != nil {
			return Instr{}, decodeErr(info.Name, addr, err)
		}
		if err := regOK(s, info.SrcFile); err != nil {
			return Instr{}, decodeErr(info.Name, addr, err)
		}
		ins.Dst = Operand{Kind: kindFor(info.DstFile), Reg: d}
		ins.Src = Operand{Kind: kindFor(info.SrcFile), Reg: s}

	case FRI:
		if err := need(1); err != nil {
			return Instr{}, err
		}
		d, sz := Reg(b[p]>>4), int(b[p]&0x03)
		p++
		if err := regOK(d, info.DstFile); err != nil {
			return Instr{}, decodeErr(info.Name, addr, err)
		}
		n := immBytes[sz]
		if err := need(n); err != nil {
			return Instr{}, err
		}
		ins.Dst = Operand{Kind: kindFor(info.DstFile), Reg: d}
		ins.Src = ImmOp(readInt(b[p:p+n], n))
		p += n

	case FRM, FMR:
		if err := need(1); err != nil {
			return Instr{}, err
		}
		r, mode := Reg(b[p]>>4), b[p]&0x0F
		p++
		if err := regOK(r, info.DstFile); err != nil {
			return Instr{}, decodeErr(info.Name, addr, err)
		}
		m := MemRef{Base: RegNone, Index: RegNone, Scale: 1}
		if mode&(memHasBase|memHasIndex) != 0 {
			if err := need(1); err != nil {
				return Instr{}, err
			}
			bx := b[p]
			p++
			if mode&memHasBase != 0 {
				m.Base = Reg(bx >> 4)
			}
			if mode&memHasIndex != 0 {
				m.Index = Reg(bx & 0x0F)
			}
		}
		if mode&memHasIndex != 0 {
			if err := need(1); err != nil {
				return Instr{}, err
			}
			lg := b[p]
			p++
			if lg > 3 {
				return Instr{}, fmt.Errorf("%w: scale log %d in %s at 0x%x", ErrUndecodable, lg, info.Name, addr)
			}
			m.Scale = 1 << lg
		}
		if mode&memHasDisp != 0 {
			n := 1
			if mode&memDisp32 != 0 {
				n = 4
			}
			if err := need(n); err != nil {
				return Instr{}, err
			}
			m.Disp = int32(readInt(b[p:p+n], n))
			p += n
		}
		reg := Operand{Kind: kindFor(info.DstFile), Reg: r}
		if info.Format == FRM {
			ins.Dst, ins.Src = reg, MemOp(m)
		} else {
			ins.Dst, ins.Src = MemOp(m), reg
		}

	case FRel:
		if err := need(4); err != nil {
			return Instr{}, err
		}
		rel := readInt(b[p:p+4], 4)
		p += 4
		ins.Dst = ImmOp(int64(addr) + int64(p) + rel)

	case FCC:
		if err := need(5); err != nil {
			return Instr{}, err
		}
		cc := Cond(b[p])
		p++
		if !cc.Valid() {
			return Instr{}, fmt.Errorf("%w: condition 0x%02x at 0x%x", ErrUndecodable, b[p-1], addr)
		}
		rel := readInt(b[p:p+4], 4)
		p += 4
		ins.CC = cc
		ins.Dst = ImmOp(int64(addr) + int64(p) + rel)

	case FCCR:
		if err := need(1); err != nil {
			return Instr{}, err
		}
		cc, r := Cond(b[p]>>4), Reg(b[p]&0x0F)
		p++
		if !cc.Valid() {
			return Instr{}, fmt.Errorf("%w: condition %d at 0x%x", ErrUndecodable, cc, addr)
		}
		ins.CC = cc
		ins.Dst = RegOp(r)

	default:
		return Instr{}, fmt.Errorf("%w: %s has no format", ErrUndecodable, info.Name)
	}

	ins.Len = p
	return ins, nil
}

func regOK(r Reg, file RegFile) error {
	limit := Reg(NumRegs)
	if file == RFVec {
		limit = NumVRegs
	}
	if r >= limit {
		return fmt.Errorf("%w: %d", ErrBadReg, r)
	}
	return nil
}

func decodeErr(name string, addr uint64, err error) error {
	return fmt.Errorf("%w: %v in %s at 0x%x", ErrUndecodable, err, name, addr)
}

// readInt reads an n-byte little-endian signed integer.
func readInt(b []byte, n int) int64 {
	var u uint64
	for i := 0; i < n; i++ {
		u |= uint64(b[i]) << (8 * i)
	}
	shift := 64 - 8*n
	return int64(u<<shift) >> shift
}
