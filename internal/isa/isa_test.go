package isa

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestCondHoldsTable(t *testing.T) {
	cases := []struct {
		c    Cond
		f    Flags
		want bool
	}{
		{CondEQ, Flags{Z: true}, true},
		{CondEQ, Flags{}, false},
		{CondNE, Flags{}, true},
		{CondLT, Flags{S: true}, true},
		{CondLT, Flags{S: true, O: true}, false},
		{CondLE, Flags{Z: true}, true},
		{CondGT, Flags{}, true},
		{CondGT, Flags{Z: true}, false},
		{CondGE, Flags{S: true, O: true}, true},
		{CondB, Flags{C: true}, true},
		{CondBE, Flags{Z: true}, true},
		{CondA, Flags{}, true},
		{CondA, Flags{C: true}, false},
		{CondAE, Flags{C: true}, false},
		{CondS, Flags{S: true}, true},
		{CondNS, Flags{S: true}, false},
		{CondO, Flags{O: true}, true},
		{CondNO, Flags{O: true}, false},
	}
	for _, c := range cases {
		if got := c.c.Holds(c.f); got != c.want {
			t.Errorf("%v.Holds(%+v) = %v, want %v", c.c, c.f, got, c.want)
		}
	}
}

func TestCondNegateIsInvolution(t *testing.T) {
	for c := Cond(0); c < numConds; c++ {
		if c.Negate().Negate() != c {
			t.Errorf("negate(negate(%v)) = %v", c, c.Negate().Negate())
		}
		// A condition and its negation never both hold.
		for _, f := range allFlagCombos() {
			if c.Holds(f) == c.Negate().Holds(f) {
				t.Errorf("%v and %v agree on %+v", c, c.Negate(), f)
			}
		}
	}
}

func allFlagCombos() []Flags {
	var out []Flags
	for i := 0; i < 16; i++ {
		out = append(out, Flags{Z: i&1 != 0, S: i&2 != 0, C: i&4 != 0, O: i&8 != 0})
	}
	return out
}

func TestCondFromName(t *testing.T) {
	for c := Cond(0); c < numConds; c++ {
		got, ok := CondFromName(c.String())
		if !ok || got != c {
			t.Errorf("CondFromName(%q) = %v, %v", c.String(), got, ok)
		}
	}
	if _, ok := CondFromName("bogus"); ok {
		t.Error("CondFromName accepted bogus name")
	}
}

func TestImmFormRegFormInverse(t *testing.T) {
	for op := Opcode(0); int(op) < NumOpcodes; op++ {
		if ri, ok := ImmForm(op); ok {
			back, ok2 := RegForm(ri)
			if !ok2 || back != op {
				t.Errorf("RegForm(ImmForm(%v)) = %v, %v", op, back, ok2)
			}
		}
	}
}

func TestOpcodeFromName(t *testing.T) {
	for op := Opcode(0); int(op) < NumOpcodes; op++ {
		got, ok := OpcodeFromName(op.String())
		if !ok || got != op {
			t.Errorf("OpcodeFromName(%q) = %v, %v", op.String(), got, ok)
		}
	}
}

func roundtrip(t *testing.T, ins Instr) Instr {
	t.Helper()
	b, err := Encode(ins)
	if err != nil {
		t.Fatalf("encode %v: %v", ins, err)
	}
	got, err := Decode(b, ins.Addr)
	if err != nil {
		t.Fatalf("decode %v (% x): %v", ins, b, err)
	}
	if got.Len != len(b) {
		t.Fatalf("decoded len %d, encoded %d bytes", got.Len, len(b))
	}
	return got
}

func TestEncodeDecodeTable(t *testing.T) {
	cases := []Instr{
		MakeNone(NOP),
		MakeNone(RET),
		MakeNone(HALT),
		MakeR(PUSH, R3),
		MakeR(POP, R14),
		MakeR(NEG, R0),
		MakeR(FNEG, F(7)),
		MakeRR(MOV, R1, R2),
		MakeRR(ADD, R15, R0),
		MakeRR(FADD, F(1), F(2)),
		MakeRR(CVTIF, F(3), R9),
		MakeRR(CVTFI, R9, F(3)),
		MakeRR(VADD, V(1), V(7)),
		MakeRR(VBCAST, V(0), F(15)),
		MakeRR(VHADD, F(2), V(3)),
		MakeRI(MOVI, R1, 0),
		MakeRI(MOVI, R1, 127),
		MakeRI(MOVI, R1, -128),
		MakeRI(MOVI, R1, 128),
		MakeRI(MOVI, R1, -32768),
		MakeRI(MOVI, R1, 1<<31-1),
		MakeRI(MOVI, R1, -1<<31),
		MakeRI(MOVI, R1, 1<<40),
		MakeRI(MOVI, R1, math.MinInt64),
		MakeRI(ADDI, R7, 42),
		MakeRI(CMPI, R2, -1),
		MakeRI(SHLI, R2, 3),
		{Op: FMOVI, Dst: FRegOp(F(1)), Src: FImmOp(3.14159)},
		{Op: FMOVI, Dst: FRegOp(F(0)), Src: FImmOp(0)},
		MakeRM(LOAD, R1, Abs(0x1234)),
		MakeRM(LOAD, R1, BaseDisp(R2, 0)),
		MakeRM(LOAD, R1, BaseDisp(R2, 8)),
		MakeRM(LOAD, R1, BaseDisp(R2, -8)),
		MakeRM(LOAD, R1, BaseDisp(R2, 4096)),
		MakeRM(LOAD, R1, BaseIndex(R2, R3, 8, 16)),
		MakeRM(LOAD, R1, BaseIndex(R2, R3, 1, 0)),
		MakeRM(LOAD, R1, MemRef{Base: RegNone, Index: R3, Scale: 4, Disp: 100}),
		MakeRM(LEA, R4, BaseIndex(SP, R3, 8, -24)),
		MakeRM(FLOAD, F(1), BaseDisp(R2, 24)),
		MakeMR(STORE, BaseDisp(SP, -8), R1),
		MakeMR(FSTORE, Abs(0x7000), F(9)),
		MakeMR(STOREB, BaseDisp(R1, 1), R2),
		MakeRM(LOADB, R2, BaseDisp(R1, 1)),
		MakeRM(VLOAD, V(2), BaseIndex(R1, R2, 8, 0)),
		MakeMR(VSTORE, BaseDisp(R1, 32), V(2)),
		withAddr(MakeRel(JMP, 0x2000), 0x1000),
		withAddr(MakeRel(CALL, 0x10), 0x3000),
		withAddr(MakeJCC(CondLT, 0x1000), 0x1000),
		withAddr(MakeJCC(CondNE, 0x0), 0x5000),
		MakeSetCC(CondGE, R5),
		MakeR(JMPR, R8),
		MakeR(CALLR, R9),
	}
	for _, ins := range cases {
		got := roundtrip(t, ins)
		if got.String() != ins.String() {
			t.Errorf("roundtrip mismatch:\n  in:  %s\n  out: %s", ins, got)
		}
	}
}

func withAddr(i Instr, a uint64) Instr { i.Addr = a; return i }

// F and V make register constants readable in tests.
func F(i int) Reg { return Reg(i) }
func V(i int) Reg { return Reg(i) }

// randInstr generates a random valid instruction for property testing.
func randInstr(r *rand.Rand) Instr {
	for {
		op := Opcode(r.Intn(NumOpcodes))
		if !op.Valid() {
			continue
		}
		info := Info(op)
		reg := func(file RegFile) Reg {
			if file == RFVec {
				return Reg(r.Intn(NumVRegs))
			}
			return Reg(r.Intn(NumRegs))
		}
		mem := func() MemRef {
			m := MemRef{Base: RegNone, Index: RegNone, Scale: 1}
			if r.Intn(4) != 0 {
				m.Base = Reg(r.Intn(NumRegs))
			}
			if r.Intn(3) == 0 {
				m.Index = Reg(r.Intn(NumRegs))
				m.Scale = uint8(1 << r.Intn(4))
			}
			switch r.Intn(3) {
			case 0:
			case 1:
				m.Disp = int32(int8(r.Uint32()))
			case 2:
				m.Disp = int32(r.Uint32())
			}
			return m
		}
		ins := Instr{Op: op, Addr: uint64(r.Intn(1 << 20))}
		switch info.Format {
		case FNone:
		case FR:
			ins.Dst = Operand{Kind: kindFor(info.DstFile), Reg: reg(info.DstFile)}
		case FRR:
			ins.Dst = Operand{Kind: kindFor(info.DstFile), Reg: reg(info.DstFile)}
			ins.Src = Operand{Kind: kindFor(info.SrcFile), Reg: reg(info.SrcFile)}
		case FRI:
			ins.Dst = Operand{Kind: kindFor(info.DstFile), Reg: reg(info.DstFile)}
			ins.Src = ImmOp(int64(r.Uint64()) >> uint(r.Intn(64)))
		case FRM:
			ins.Dst = Operand{Kind: kindFor(info.DstFile), Reg: reg(info.DstFile)}
			ins.Src = MemOp(mem())
		case FMR:
			ins.Dst = MemOp(mem())
			ins.Src = Operand{Kind: kindFor(info.DstFile), Reg: reg(info.DstFile)}
		case FRel:
			ins.Dst = ImmOp(int64(r.Intn(1 << 24)))
		case FCC:
			ins.CC = Cond(r.Intn(int(numConds)))
			ins.Dst = ImmOp(int64(r.Intn(1 << 24)))
		case FCCR:
			ins.CC = Cond(r.Intn(int(numConds)))
			ins.Dst = RegOp(Reg(r.Intn(NumRegs)))
		}
		return ins
	}
}

func TestEncodeDecodeRoundtripProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 5000}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ins := randInstr(r)
		b, err := Encode(ins)
		if err != nil {
			t.Logf("encode %v: %v", ins, err)
			return false
		}
		got, err := Decode(b, ins.Addr)
		if err != nil {
			t.Logf("decode %v: %v", ins, err)
			return false
		}
		return got.String() == ins.String() && got.Len == len(b)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil, 0); !errors.Is(err, ErrTruncated) {
		t.Errorf("empty: %v", err)
	}
	if _, err := Decode([]byte{0xFE}, 0); !errors.Is(err, ErrUndecodable) {
		t.Errorf("bad opcode: %v", err)
	}
	// Truncated MOVI: header says 8-byte immediate, only 2 present.
	if _, err := Decode([]byte{byte(MOVI), 0x13, 1, 2}, 0); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated imm: %v", err)
	}
	// Bad scale in memory operand.
	bad := []byte{byte(LOAD), 0x10 | memHasBase | memHasIndex, 0x23, 9, 0}
	if _, err := Decode(bad, 0); !errors.Is(err, ErrUndecodable) {
		t.Errorf("bad scale: %v", err)
	}
	// Bad condition code in JCC.
	if _, err := Decode([]byte{byte(JCC), 0x3F, 0, 0, 0, 0}, 0); !errors.Is(err, ErrUndecodable) {
		t.Errorf("bad cond: %v", err)
	}
	// Vector register out of range (encoded manually).
	if _, err := Decode([]byte{byte(VADD), 0x9F}, 0); !errors.Is(err, ErrUndecodable) {
		t.Errorf("bad vreg: %v", err)
	}
}

func TestEncodeErrors(t *testing.T) {
	if _, err := Encode(Instr{Op: Opcode(200)}); err == nil {
		t.Error("invalid opcode accepted")
	}
	if _, err := Encode(Instr{Op: ADD, Dst: RegOp(R1), Src: ImmOp(3)}); err == nil {
		t.Error("ADD with immediate accepted")
	}
	if _, err := Encode(MakeRR(VADD, Reg(12), V(1))); err == nil {
		t.Error("vector register 12 accepted")
	}
	far := MakeRel(JMP, 1<<40)
	if _, err := Encode(far); !errors.Is(err, ErrRelRange) {
		t.Errorf("far jump: %v", err)
	}
	if _, err := Encode(MakeRM(LOAD, R1, MemRef{Base: R1, Index: R2, Scale: 3})); !errors.Is(err, ErrBadScale) {
		t.Error("scale 3 accepted")
	}
}

func TestInstrString(t *testing.T) {
	cases := []struct {
		ins  Instr
		want string
	}{
		{MakeNone(RET), "ret"},
		{MakeRR(ADD, R1, R2), "add r1, r2"},
		{MakeRI(MOVI, R3, -7), "movi r3, -7"},
		{Instr{Op: FMOVI, Dst: FRegOp(F(2)), Src: FImmOp(2.5)}, "fmovi f2, 2.5"},
		{MakeRM(LOAD, R1, BaseIndex(R2, R3, 8, 16)), "load r1, [r2+r3*8+16]"},
		{MakeMR(STORE, BaseDisp(SP, -8), R1), "store [r15-8], r1"},
		{MakeRM(LOAD, R0, Abs(0x4000)), "load r0, [0x4000]"},
		{withAddr(MakeJCC(CondLT, 0x1000), 0), "jlt 0x1000"},
		{MakeSetCC(CondEQ, R2), "seteq r2"},
		{MakeRR(VHADD, F(1), V(2)), "vhadd f1, v2"},
	}
	for _, c := range cases {
		if got := c.ins.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestDecodeAllAndDisassemble(t *testing.T) {
	prog := []Instr{
		MakeRI(MOVI, R0, 1),
		MakeRR(ADD, R0, R1),
		MakeNone(RET),
	}
	var buf []byte
	for i := range prog {
		prog[i].Addr = uint64(len(buf)) + 0x100
		var err error
		buf, err = AppendEncode(buf, prog[i])
		if err != nil {
			t.Fatal(err)
		}
	}
	got, err := DecodeAll(buf, 0x100)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("decoded %d instrs, want 3", len(got))
	}
	dis := Disassemble(buf, 0x100, false)
	for _, want := range []string{"movi r0, 1", "add r0, r1", "ret"} {
		if !strings.Contains(dis, want) {
			t.Errorf("disassembly missing %q:\n%s", want, dis)
		}
	}
}

func TestEncodedLenMatchesEncode(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		ins := randInstr(r)
		b, err := Encode(ins)
		if err != nil {
			t.Fatalf("encode %v: %v", ins, err)
		}
		n, err := EncodedLen(ins)
		if err != nil || n != len(b) {
			t.Fatalf("EncodedLen(%v) = %d, %v; encoded %d", ins, n, err, len(b))
		}
	}
}

func TestABISets(t *testing.T) {
	for r := Reg(0); r < NumRegs; r++ {
		if CalleeSavedInt(r) == CallerSavedInt(r) {
			t.Errorf("r%d is both or neither callee/caller saved", r)
		}
		if CalleeSavedFloat(r) == CallerSavedFloat(r) {
			t.Errorf("f%d is both or neither callee/caller saved", r)
		}
	}
	if !CalleeSavedInt(SP) {
		t.Error("SP must be callee-saved")
	}
	for _, r := range IntArgRegs {
		if CalleeSavedInt(r) {
			t.Errorf("arg reg %v must be caller-saved", r)
		}
	}
}

func TestIsTerminatorAndBranch(t *testing.T) {
	for _, op := range []Opcode{JMP, JMPR, JCC, RET, HALT} {
		if !IsTerminator(op) {
			t.Errorf("%v should terminate a block", op)
		}
	}
	for _, op := range []Opcode{CALL, CALLR, ADD, NOP} {
		if IsTerminator(op) {
			t.Errorf("%v should not terminate a block", op)
		}
	}
	if !IsBranch(JCC) || IsBranch(CALL) {
		t.Error("IsBranch misclassification")
	}
}

func TestFlagsBitsRoundtrip(t *testing.T) {
	for _, f := range allFlagCombos() {
		if got := FlagsFromBits(f.Bits()); got != f {
			t.Errorf("roundtrip %+v -> %016x -> %+v", f, f.Bits(), got)
		}
	}
}
