package isa

import (
	"errors"
	"fmt"
	"math"
)

// Encoding errors.
var (
	ErrBadInstr  = errors.New("isa: malformed instruction")
	ErrRelRange  = errors.New("isa: branch target out of rel32 range")
	ErrBadReg    = errors.New("isa: bad register")
	ErrBadScale  = errors.New("isa: bad scale")
	ErrBadFormat = errors.New("isa: operand does not match instruction format")
)

// Memory-operand mode bits (low nibble of the register/mode byte).
const (
	memHasBase  = 1 << 0
	memHasIndex = 1 << 1
	memDisp32   = 1 << 2
	memHasDisp  = 1 << 3
)

func immSize(v int64) int {
	switch {
	case v >= math.MinInt8 && v <= math.MaxInt8:
		return 0 // 1 byte
	case v >= math.MinInt16 && v <= math.MaxInt16:
		return 1 // 2 bytes
	case v >= math.MinInt32 && v <= math.MaxInt32:
		return 2 // 4 bytes
	default:
		return 3 // 8 bytes
	}
}

var immBytes = [4]int{1, 2, 4, 8}

// EncodedLen returns the encoded length of ins in bytes without encoding it.
func EncodedLen(ins Instr) (int, error) {
	info := Info(ins.Op)
	if !ins.Op.Valid() {
		return 0, fmt.Errorf("%w: invalid opcode %d", ErrBadInstr, ins.Op)
	}
	switch info.Format {
	case FNone:
		return 1, nil
	case FR, FRR, FCCR:
		return 2, nil
	case FRI:
		sz, err := friSize(ins)
		if err != nil {
			return 0, err
		}
		return 2 + immBytes[sz], nil
	case FRM:
		n, err := memLen(ins.Src.Mem)
		return 2 + n, err
	case FMR:
		n, err := memLen(ins.Dst.Mem)
		return 2 + n, err
	case FRel:
		return 5, nil
	case FCC:
		return 6, nil
	}
	return 0, ErrBadInstr
}

func memLen(m MemRef) (int, error) {
	if err := checkMem(m); err != nil {
		return 0, err
	}
	n := 0
	if m.HasBase() || m.HasIndex() {
		n++
	}
	if m.HasIndex() {
		n++
	}
	if hasDisp(m) {
		if disp32(m) {
			n += 4
		} else {
			n++
		}
	}
	return n, nil
}

func hasDisp(m MemRef) bool {
	return m.Wide || m.Disp != 0 || (!m.HasBase() && !m.HasIndex())
}

func disp32(m MemRef) bool {
	return m.Wide || m.Disp < math.MinInt8 || m.Disp > math.MaxInt8
}

// friSize picks the immediate width code for an FRI instruction: minimal by
// default, 8 bytes for FMOVI, 4 bytes when Wide is set.
func friSize(ins Instr) (int, error) {
	if ins.Op == FMOVI {
		return 3, nil
	}
	if ins.Wide {
		if ins.Src.Imm < math.MinInt32 || ins.Src.Imm > math.MaxInt32 {
			return 0, fmt.Errorf("%w: wide immediate %d exceeds int32", ErrBadInstr, ins.Src.Imm)
		}
		return 2, nil
	}
	return immSize(ins.Src.Imm), nil
}

func checkMem(m MemRef) error {
	if m.HasBase() && m.Base >= NumRegs {
		return fmt.Errorf("%w: base %d", ErrBadReg, m.Base)
	}
	if m.HasIndex() {
		if m.Index >= NumRegs {
			return fmt.Errorf("%w: index %d", ErrBadReg, m.Index)
		}
		switch m.Scale {
		case 1, 2, 4, 8:
		default:
			return fmt.Errorf("%w: %d", ErrBadScale, m.Scale)
		}
	}
	return nil
}

func checkReg(o Operand, file RegFile) error {
	if !o.IsReg() {
		return fmt.Errorf("%w: expected register, got %v", ErrBadFormat, o.Kind)
	}
	limit := Reg(NumRegs)
	if file == RFVec {
		limit = NumVRegs
	}
	if o.Reg >= limit {
		return fmt.Errorf("%w: %d (limit %d)", ErrBadReg, o.Reg, limit)
	}
	return nil
}

// AppendEncode appends the binary encoding of ins to dst and returns the
// extended slice. ins.Addr must be set for FRel/FCC instructions because the
// branch displacement is relative to the end of the instruction.
func AppendEncode(dst []byte, ins Instr) ([]byte, error) {
	info := Info(ins.Op)
	if !ins.Op.Valid() {
		return dst, fmt.Errorf("%w: invalid opcode %d", ErrBadInstr, ins.Op)
	}
	dst = append(dst, byte(ins.Op))
	switch info.Format {
	case FNone:
		return dst, nil

	case FR:
		if err := checkReg(ins.Dst, info.DstFile); err != nil {
			return dst, err
		}
		return append(dst, byte(ins.Dst.Reg)), nil

	case FRR:
		if err := checkReg(ins.Dst, info.DstFile); err != nil {
			return dst, err
		}
		if err := checkReg(ins.Src, info.SrcFile); err != nil {
			return dst, err
		}
		return append(dst, byte(ins.Dst.Reg)<<4|byte(ins.Src.Reg)), nil

	case FRI:
		if err := checkReg(ins.Dst, info.DstFile); err != nil {
			return dst, err
		}
		if ins.Src.Kind != KindImm {
			return dst, fmt.Errorf("%w: %s needs immediate source", ErrBadFormat, info.Name)
		}
		sz, err := friSize(ins)
		if err != nil {
			return dst, err
		}
		dst = append(dst, byte(ins.Dst.Reg)<<4|byte(sz))
		return appendInt(dst, ins.Src.Imm, immBytes[sz]), nil

	case FRM:
		if err := checkReg(ins.Dst, info.DstFile); err != nil {
			return dst, err
		}
		if ins.Src.Kind != KindMem {
			return dst, fmt.Errorf("%w: %s needs memory source", ErrBadFormat, info.Name)
		}
		return appendMem(dst, ins.Dst.Reg, ins.Src.Mem)

	case FMR:
		if ins.Dst.Kind != KindMem {
			return dst, fmt.Errorf("%w: %s needs memory destination", ErrBadFormat, info.Name)
		}
		if err := checkReg(ins.Src, info.DstFile); err != nil {
			return dst, err
		}
		return appendMem(dst, ins.Src.Reg, ins.Dst.Mem)

	case FRel:
		rel := int64(ins.Target()) - int64(ins.Addr) - 5
		if rel < math.MinInt32 || rel > math.MaxInt32 {
			return dst, ErrRelRange
		}
		return appendInt(dst, rel, 4), nil

	case FCC:
		if !ins.CC.Valid() {
			return dst, fmt.Errorf("%w: condition %d", ErrBadInstr, ins.CC)
		}
		dst = append(dst, byte(ins.CC))
		rel := int64(ins.Target()) - int64(ins.Addr) - 6
		if rel < math.MinInt32 || rel > math.MaxInt32 {
			return dst, ErrRelRange
		}
		return appendInt(dst, rel, 4), nil

	case FCCR:
		if !ins.CC.Valid() {
			return dst, fmt.Errorf("%w: condition %d", ErrBadInstr, ins.CC)
		}
		if err := checkReg(ins.Dst, RFInt); err != nil {
			return dst, err
		}
		return append(dst, byte(ins.CC)<<4|byte(ins.Dst.Reg)), nil
	}
	return dst, ErrBadInstr
}

// Encode returns the binary encoding of ins.
func Encode(ins Instr) ([]byte, error) {
	return AppendEncode(nil, ins)
}

func appendMem(dst []byte, reg Reg, m MemRef) ([]byte, error) {
	if err := checkMem(m); err != nil {
		return dst, err
	}
	var mode byte
	if m.HasBase() {
		mode |= memHasBase
	}
	if m.HasIndex() {
		mode |= memHasIndex
	}
	d32 := disp32(m)
	hd := hasDisp(m)
	if hd {
		mode |= memHasDisp
		if d32 {
			mode |= memDisp32
		}
	}
	dst = append(dst, byte(reg)<<4|mode)
	if m.HasBase() || m.HasIndex() {
		var b, x byte
		if m.HasBase() {
			b = byte(m.Base)
		}
		if m.HasIndex() {
			x = byte(m.Index)
		}
		dst = append(dst, b<<4|x)
	}
	if m.HasIndex() {
		var lg byte
		for s := m.Scale; s > 1; s >>= 1 {
			lg++
		}
		dst = append(dst, lg)
	}
	if hd {
		if d32 {
			dst = appendInt(dst, int64(m.Disp), 4)
		} else {
			dst = appendInt(dst, int64(m.Disp), 1)
		}
	}
	return dst, nil
}

func appendInt(dst []byte, v int64, n int) []byte {
	for i := 0; i < n; i++ {
		dst = append(dst, byte(v))
		v >>= 8
	}
	return dst
}
