package isa

import (
	"fmt"
	"strings"
)

// DecodeAll decodes instructions from b starting at address addr until the
// buffer is exhausted or an instruction fails to decode. It returns the
// instructions decoded so far together with the error, so callers can
// render partial disassembly.
func DecodeAll(b []byte, addr uint64) ([]Instr, error) {
	var out []Instr
	off := 0
	for off < len(b) {
		ins, err := Decode(b[off:], addr+uint64(off))
		if err != nil {
			return out, err
		}
		out = append(out, ins)
		off += ins.Len
	}
	return out, nil
}

// Disassemble renders the instructions in b as an address-annotated listing.
// Decoding stops at the first HALT when stopAtHalt is set, which is how
// function-sized listings are produced from a larger code segment.
func Disassemble(b []byte, addr uint64, stopAtHalt bool) string {
	var sb strings.Builder
	off := 0
	for off < len(b) {
		ins, err := Decode(b[off:], addr+uint64(off))
		if err != nil {
			fmt.Fprintf(&sb, "%08x:  <%v>\n", addr+uint64(off), err)
			break
		}
		fmt.Fprintf(&sb, "%08x:  %s\n", ins.Addr, ins)
		off += ins.Len
		if stopAtHalt && ins.Op == HALT {
			break
		}
	}
	return sb.String()
}
