package isa

import "fmt"

// Opcode identifies a VX64 instruction.
type Opcode uint8

// Instruction opcodes. The numeric values are the first byte of the binary
// encoding and therefore part of the stable "machine" format.
const (
	NOP Opcode = iota
	HALT
	BRK

	// Data movement (integer).
	MOV   // rr: dst = src
	MOVI  // ri: dst = imm
	LOAD  // rm: dst = *(int64*)mem
	STORE // mr: *(int64*)mem = src
	LOADB // rm: dst = zero-extended byte
	STOREB
	LEA // rm: dst = effective address of mem
	PUSH
	POP

	// Integer ALU, register-register. Set Z,S,C,O.
	ADD
	SUB
	IMUL
	IDIV // dst = dst / src (signed, truncating); flags undefined->cleared
	IREM // dst = dst % src
	AND
	OR
	XOR
	SHL
	SHR
	SAR
	CMP  // flags only
	TEST // flags only: AND without result

	// Integer ALU, register-immediate forms.
	ADDI
	SUBI
	IMULI
	ANDI
	ORI
	XORI
	SHLI
	SHRI
	SARI
	CMPI

	// Single-register integer ops.
	NEG
	NOT

	SETCC // cc byte + reg: dst = cond ? 1 : 0

	// Control flow.
	JMP   // rel32
	JMPR  // indirect through integer register
	JCC   // cc byte + rel32
	CALL  // rel32; pushes return address
	CALLR // indirect call through integer register
	RET

	// Floating point (float64).
	FMOV   // ff
	FMOVI  // f + 8-byte immediate (raw IEEE-754 bits)
	FLOAD  // fm
	FSTORE // mf
	FADD
	FSUB
	FMUL
	FDIV
	FNEG
	FSQRT
	FCMP   // sets Z (equal), C (less); clears S,O. Unordered sets Z&C.
	CVTIF  // f = (double) r
	CVTFI  // r = (int64) f, truncating
	FMOVFI // r = raw bits of f
	FMOVIF // f = raw bits of r

	// Vector (4 x float64).
	VLOAD  // vm
	VSTORE // mv
	VADD
	VSUB
	VMUL
	VBCAST // v = broadcast f
	VHADD  // f = horizontal sum of v

	// Flag save/restore (used by injected handler calls to preserve the
	// condition flags across callbacks, like x86 PUSHF/POPF).
	PUSHF
	POPF

	numOpcodes
)

// NumOpcodes is the count of defined opcodes.
const NumOpcodes = int(numOpcodes)

// Format describes the byte layout following the opcode byte.
type Format uint8

// Instruction formats.
const (
	FNone Format = iota // [op]
	FR                  // [op][reg]            single register in low nibble
	FRR                 // [op][dst<<4|src]
	FRI                 // [op][dst<<4|size][imm...]   size: 0=1B 1=2B 2=4B 3=8B, sign-extended
	FRM                 // [op][dst<<4|mode][mem...]   register <- memory
	FMR                 // [op][src<<4|mode][mem...]   memory <- register
	FRel                // [op][rel32]
	FCC                 // [op][cc][rel32]
	FCCR                // [op][cc<<4|reg]
)

// RegFile selects which register file an operand's register indexes.
type RegFile uint8

// Register files.
const (
	RFNone RegFile = iota
	RFInt
	RFFloat
	RFVec
)

// OpInfo is static metadata about an opcode.
type OpInfo struct {
	Name    string
	Format  Format
	DstFile RegFile // file of the register operand named first in asm
	SrcFile RegFile // file of the second register operand (FRR only)
	Cost    int     // base cycle cost, excluding memory hierarchy latency
}

var opInfo = [numOpcodes]OpInfo{
	NOP:  {"nop", FNone, RFNone, RFNone, 1},
	HALT: {"halt", FNone, RFNone, RFNone, 1},
	BRK:  {"brk", FNone, RFNone, RFNone, 1},

	MOV:    {"mov", FRR, RFInt, RFInt, 1},
	MOVI:   {"movi", FRI, RFInt, RFNone, 1},
	LOAD:   {"load", FRM, RFInt, RFNone, 1},
	STORE:  {"store", FMR, RFInt, RFNone, 1},
	LOADB:  {"loadb", FRM, RFInt, RFNone, 1},
	STOREB: {"storeb", FMR, RFInt, RFNone, 1},
	LEA:    {"lea", FRM, RFInt, RFNone, 1},
	PUSH:   {"push", FR, RFInt, RFNone, 1},
	POP:    {"pop", FR, RFInt, RFNone, 1},

	ADD:  {"add", FRR, RFInt, RFInt, 1},
	SUB:  {"sub", FRR, RFInt, RFInt, 1},
	IMUL: {"imul", FRR, RFInt, RFInt, 3},
	IDIV: {"idiv", FRR, RFInt, RFInt, 22},
	IREM: {"irem", FRR, RFInt, RFInt, 22},
	AND:  {"and", FRR, RFInt, RFInt, 1},
	OR:   {"or", FRR, RFInt, RFInt, 1},
	XOR:  {"xor", FRR, RFInt, RFInt, 1},
	SHL:  {"shl", FRR, RFInt, RFInt, 1},
	SHR:  {"shr", FRR, RFInt, RFInt, 1},
	SAR:  {"sar", FRR, RFInt, RFInt, 1},
	CMP:  {"cmp", FRR, RFInt, RFInt, 1},
	TEST: {"test", FRR, RFInt, RFInt, 1},

	ADDI:  {"addi", FRI, RFInt, RFNone, 1},
	SUBI:  {"subi", FRI, RFInt, RFNone, 1},
	IMULI: {"imuli", FRI, RFInt, RFNone, 3},
	ANDI:  {"andi", FRI, RFInt, RFNone, 1},
	ORI:   {"ori", FRI, RFInt, RFNone, 1},
	XORI:  {"xori", FRI, RFInt, RFNone, 1},
	SHLI:  {"shli", FRI, RFInt, RFNone, 1},
	SHRI:  {"shri", FRI, RFInt, RFNone, 1},
	SARI:  {"sari", FRI, RFInt, RFNone, 1},
	CMPI:  {"cmpi", FRI, RFInt, RFNone, 1},

	NEG: {"neg", FR, RFInt, RFNone, 1},
	NOT: {"not", FR, RFInt, RFNone, 1},

	SETCC: {"setcc", FCCR, RFInt, RFNone, 1},

	JMP:   {"jmp", FRel, RFNone, RFNone, 1},
	JMPR:  {"jmpr", FR, RFInt, RFNone, 2},
	JCC:   {"jcc", FCC, RFNone, RFNone, 1},
	CALL:  {"call", FRel, RFNone, RFNone, 2},
	CALLR: {"callr", FR, RFInt, RFNone, 3},
	RET:   {"ret", FNone, RFNone, RFNone, 2},

	FMOV:   {"fmov", FRR, RFFloat, RFFloat, 1},
	FMOVI:  {"fmovi", FRI, RFFloat, RFNone, 1},
	FLOAD:  {"fload", FRM, RFFloat, RFNone, 1},
	FSTORE: {"fstore", FMR, RFFloat, RFNone, 1},
	FADD:   {"fadd", FRR, RFFloat, RFFloat, 3},
	FSUB:   {"fsub", FRR, RFFloat, RFFloat, 3},
	FMUL:   {"fmul", FRR, RFFloat, RFFloat, 4},
	FDIV:   {"fdiv", FRR, RFFloat, RFFloat, 15},
	FNEG:   {"fneg", FR, RFFloat, RFNone, 1},
	FSQRT:  {"fsqrt", FRR, RFFloat, RFFloat, 20},
	FCMP:   {"fcmp", FRR, RFFloat, RFFloat, 2},
	CVTIF:  {"cvtif", FRR, RFFloat, RFInt, 3},
	CVTFI:  {"cvtfi", FRR, RFInt, RFFloat, 3},
	FMOVFI: {"fmovfi", FRR, RFInt, RFFloat, 1},
	FMOVIF: {"fmovif", FRR, RFFloat, RFInt, 1},

	VLOAD:  {"vload", FRM, RFVec, RFNone, 1},
	VSTORE: {"vstore", FMR, RFVec, RFNone, 1},
	VADD:   {"vadd", FRR, RFVec, RFVec, 3},
	VSUB:   {"vsub", FRR, RFVec, RFVec, 3},
	VMUL:   {"vmul", FRR, RFVec, RFVec, 4},
	VBCAST: {"vbcast", FRR, RFVec, RFFloat, 2},
	// VHADD is an ordinary FRR instruction whose destination is a float
	// register and whose source is a vector register.
	VHADD: {"vhadd", FRR, RFFloat, RFVec, 4},

	PUSHF: {"pushf", FNone, RFNone, RFNone, 1},
	POPF:  {"popf", FNone, RFNone, RFNone, 1},
}

// Info returns the static metadata for op.
func Info(op Opcode) OpInfo {
	if int(op) >= NumOpcodes {
		return OpInfo{Name: fmt.Sprintf("op(%d)", uint8(op))}
	}
	return opInfo[op]
}

// Valid reports whether op is a defined opcode.
func (op Opcode) Valid() bool {
	return int(op) < NumOpcodes && opInfo[op].Name != ""
}

func (op Opcode) String() string { return Info(op).Name }

// Cost returns the base cycle cost of op (memory latency excluded).
func (op Opcode) Cost() int { return Info(op).Cost }

// opByName maps mnemonics to opcodes; built once at init.
var opByName = func() map[string]Opcode {
	m := make(map[string]Opcode, NumOpcodes)
	for op := Opcode(0); int(op) < NumOpcodes; op++ {
		if opInfo[op].Name != "" {
			m[opInfo[op].Name] = op
		}
	}
	return m
}()

// OpcodeFromName looks up an opcode by its mnemonic.
func OpcodeFromName(name string) (Opcode, bool) {
	op, ok := opByName[name]
	return op, ok
}

// ImmForm maps a register-register ALU opcode to its register-immediate
// form, enabling the rewriter to fold known source operands into immediates.
func ImmForm(op Opcode) (Opcode, bool) {
	switch op {
	case ADD:
		return ADDI, true
	case SUB:
		return SUBI, true
	case IMUL:
		return IMULI, true
	case AND:
		return ANDI, true
	case OR:
		return ORI, true
	case XOR:
		return XORI, true
	case SHL:
		return SHLI, true
	case SHR:
		return SHRI, true
	case SAR:
		return SARI, true
	case CMP:
		return CMPI, true
	case MOV:
		return MOVI, true
	}
	return 0, false
}

// RegForm is the inverse of ImmForm.
func RegForm(op Opcode) (Opcode, bool) {
	switch op {
	case ADDI:
		return ADD, true
	case SUBI:
		return SUB, true
	case IMULI:
		return IMUL, true
	case ANDI:
		return AND, true
	case ORI:
		return OR, true
	case XORI:
		return XOR, true
	case SHLI:
		return SHL, true
	case SHRI:
		return SHR, true
	case SARI:
		return SAR, true
	case CMPI:
		return CMP, true
	case MOVI:
		return MOV, true
	}
	return 0, false
}

// SetsFlags reports whether op updates the condition flags.
func SetsFlags(op Opcode) bool {
	switch op {
	case ADD, SUB, IMUL, IDIV, IREM, AND, OR, XOR, SHL, SHR, SAR, CMP, TEST,
		ADDI, SUBI, IMULI, ANDI, ORI, XORI, SHLI, SHRI, SARI, CMPI, NEG, FCMP:
		return true
	}
	return false
}

// ReadsFlags reports whether op consumes the condition flags.
func ReadsFlags(op Opcode) bool {
	return op == JCC || op == SETCC
}

// IsBranch reports whether op transfers control (excluding CALL/RET).
func IsBranch(op Opcode) bool {
	switch op {
	case JMP, JMPR, JCC:
		return true
	}
	return false
}

// IsTerminator reports whether op ends a basic block.
func IsTerminator(op Opcode) bool {
	switch op {
	case JMP, JMPR, JCC, RET, HALT:
		return true
	}
	return false
}
