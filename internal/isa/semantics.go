package isa

import (
	"errors"
	"math"
)

// ErrDivideByZero is the arithmetic fault raised by IDIV/IREM with a zero
// divisor.
var ErrDivideByZero = errors.New("isa: integer division by zero")

// EvalALU computes the result and flags of a two-operand integer ALU
// operation. It is the single source of truth for arithmetic semantics: the
// emulator executes with it and the rewriter's tracer evaluates known values
// with it, which is what makes specialization semantics-preserving.
//
// Immediate forms evaluate identically to their register forms. CMP and
// TEST return the untouched a as result. The boolean reports whether the
// destination register is written.
func EvalALU(op Opcode, a, b uint64) (result uint64, fl Flags, writes bool, err error) {
	switch op {
	case ADD, ADDI:
		r := a + b
		return r, addFlags(a, b, r), true, nil
	case SUB, SUBI:
		r := a - b
		return r, subFlags(a, b, r), true, nil
	case CMP, CMPI:
		r := a - b
		return a, subFlags(a, b, r), false, nil
	case IMUL, IMULI:
		r := a * b
		fl := logicFlags(r)
		// Signed overflow detection.
		if a != 0 {
			q := int64(r) / int64(a)
			if int64(a) == -1 && int64(r) == math.MinInt64 {
				// MinInt64 / -1 wraps; the product overflowed iff b != MinInt64.
				if int64(b) != math.MinInt64 {
					fl.C, fl.O = true, true
				}
			} else if q != int64(b) {
				fl.C, fl.O = true, true
			}
		}
		return r, fl, true, nil
	case IDIV:
		if b == 0 {
			return 0, Flags{}, false, ErrDivideByZero
		}
		var r int64
		if int64(b) == -1 {
			r = -int64(a) // wraps at MinInt64 like hardware
		} else {
			r = int64(a) / int64(b)
		}
		return uint64(r), logicFlags(uint64(r)), true, nil
	case IREM:
		if b == 0 {
			return 0, Flags{}, false, ErrDivideByZero
		}
		var r int64
		if int64(b) == -1 {
			r = 0
		} else {
			r = int64(a) % int64(b)
		}
		return uint64(r), logicFlags(uint64(r)), true, nil
	case AND, ANDI:
		r := a & b
		return r, logicFlags(r), true, nil
	case OR, ORI:
		r := a | b
		return r, logicFlags(r), true, nil
	case XOR, XORI:
		r := a ^ b
		return r, logicFlags(r), true, nil
	case TEST:
		r := a & b
		return a, logicFlags(r), false, nil
	case SHL, SHLI:
		r := a << (b & 63)
		return r, logicFlags(r), true, nil
	case SHR, SHRI:
		r := a >> (b & 63)
		return r, logicFlags(r), true, nil
	case SAR, SARI:
		r := uint64(int64(a) >> (b & 63))
		return r, logicFlags(r), true, nil
	case MOV, MOVI:
		return b, Flags{}, true, nil
	}
	return 0, Flags{}, false, errors.New("isa: EvalALU: not an ALU op: " + op.String())
}

// EvalALU1 computes single-operand integer operations (NEG, NOT). The
// boolean reports whether the flags are updated: NEG sets them like
// SUB(0, a); NOT leaves them untouched (as on x86).
func EvalALU1(op Opcode, a uint64) (result uint64, fl Flags, setsFlags bool) {
	switch op {
	case NEG:
		r := -a
		return r, subFlags(0, a, r), true
	case NOT:
		return ^a, Flags{}, false
	}
	return 0, Flags{}, false
}

// EvalFPU computes two-operand floating-point operations. FCMP returns a
// unchanged and only meaningful flags (x86 UCOMISD convention: unordered
// sets Z and C).
func EvalFPU(op Opcode, a, b float64) (result float64, fl Flags, writes bool) {
	switch op {
	case FADD:
		return a + b, Flags{}, true
	case FSUB:
		return a - b, Flags{}, true
	case FMUL:
		return a * b, Flags{}, true
	case FDIV:
		return a / b, Flags{}, true // IEEE semantics: ±Inf / NaN
	case FMOV, FMOVI:
		return b, Flags{}, true
	case FSQRT:
		return math.Sqrt(b), Flags{}, true
	case FCMP:
		var fl Flags
		switch {
		case math.IsNaN(a) || math.IsNaN(b):
			fl.Z, fl.C = true, true
		case a == b:
			fl.Z = true
		case a < b:
			fl.C = true
		}
		return a, fl, false
	}
	return 0, Flags{}, false
}

func addFlags(a, b, r uint64) Flags {
	return Flags{
		Z: r == 0,
		S: int64(r) < 0,
		C: r < a,
		O: (a^r)&(b^r)>>63 != 0,
	}
}

func subFlags(a, b, r uint64) Flags {
	return Flags{
		Z: r == 0,
		S: int64(r) < 0,
		C: a < b,
		O: (a^b)&(a^r)>>63 != 0,
	}
}

func logicFlags(r uint64) Flags {
	return Flags{Z: r == 0, S: int64(r) < 0}
}
