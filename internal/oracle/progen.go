package oracle

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/brew"
	"repro/internal/minc"
	"repro/internal/vm"
)

// Random minc program generator. The hand-written fuzz targets in
// internal/brew stress the tracer with straight-line assembly; the
// generator here goes further and produces whole compiled translation
// units — arithmetic, nested branches, bounded loops, helper calls and
// global-array traffic — so the rewriter sees realistic compiler output
// (frames, spills, call sequences) well beyond the stencil family.
//
// Every generated program terminates: loop bounds are evaluated once into
// read-only temporaries and masked to small ranges, and helpers are
// call-free, so there is no recursion.

const arrayWords = 16

type progGen struct {
	r         *rand.Rand
	sb        strings.Builder
	vars      []string // assignable scalars in scope
	ro        []string // read-only scalars in scope (params, loop state)
	loopID    int
	depth     int
	storesToA bool
	helpers   []string
}

// smallVal biases toward small magnitudes but keeps occasional wide values.
func smallVal(r *rand.Rand) uint64 {
	return r.Uint64() >> uint(16+r.Intn(46))
}

func (g *progGen) anyVar() string {
	all := len(g.vars) + len(g.ro)
	i := g.r.Intn(all)
	if i < len(g.vars) {
		return g.vars[i]
	}
	return g.ro[i-len(g.vars)]
}

func (g *progGen) expr(depth int) string {
	r := g.r
	if depth <= 0 || r.Intn(3) == 0 {
		switch r.Intn(4) {
		case 0:
			return fmt.Sprintf("%d", r.Int63n(2000)-1000)
		case 1:
			return fmt.Sprintf("A[(%s) & %d]", g.anyVar(), arrayWords-1)
		default:
			return g.anyVar()
		}
	}
	a, b := g.expr(depth-1), g.expr(depth-1)
	switch r.Intn(10) {
	case 0:
		return fmt.Sprintf("(%s + %s)", a, b)
	case 1:
		return fmt.Sprintf("(%s - %s)", a, b)
	case 2:
		return fmt.Sprintf("(%s * %s)", a, b)
	case 3:
		return fmt.Sprintf("(%s & %s)", a, b)
	case 4:
		return fmt.Sprintf("(%s | %s)", a, b)
	case 5:
		return fmt.Sprintf("(%s ^ %s)", a, b)
	case 6:
		return fmt.Sprintf("(%s >> %d)", a, r.Intn(8))
	case 7:
		return fmt.Sprintf("(%s << %d)", a, r.Intn(8))
	case 8:
		return fmt.Sprintf("(%s / %d)", a, 1+r.Intn(9))
	default:
		return fmt.Sprintf("(%s %% %d)", a, 1+r.Intn(13))
	}
}

func (g *progGen) cond() string {
	op := []string{"==", "!=", "<", "<=", ">", ">="}[g.r.Intn(6)]
	return fmt.Sprintf("%s %s %s", g.expr(1), op, g.expr(1))
}

func (g *progGen) indent() string { return strings.Repeat("    ", g.depth+1) }

func (g *progGen) stmt(allowCalls bool) {
	r := g.r
	ind := g.indent()
	kind := r.Intn(10)
	if g.depth >= 2 && kind >= 6 {
		kind = r.Intn(6) // no further nesting or stores deep down
	}
	switch kind {
	case 0, 1, 2:
		fmt.Fprintf(&g.sb, "%s%s = %s;\n", ind, g.vars[r.Intn(len(g.vars))], g.expr(2))
	case 3:
		fmt.Fprintf(&g.sb, "%s%s += %s;\n", ind, g.vars[r.Intn(len(g.vars))], g.expr(1))
	case 4:
		if allowCalls && len(g.helpers) > 0 {
			h := g.helpers[r.Intn(len(g.helpers))]
			fmt.Fprintf(&g.sb, "%s%s = %s(%s, %s);\n",
				ind, g.vars[r.Intn(len(g.vars))], h, g.expr(1), g.expr(1))
		} else {
			fmt.Fprintf(&g.sb, "%s%s = %s;\n", ind, g.vars[r.Intn(len(g.vars))], g.expr(2))
		}
	case 5:
		g.storesToA = true
		fmt.Fprintf(&g.sb, "%sA[(%s) & %d] = %s;\n", ind, g.anyVar(), arrayWords-1, g.expr(1))
	case 6, 7:
		fmt.Fprintf(&g.sb, "%sif (%s) {\n", ind, g.cond())
		g.depth++
		for n := 1 + r.Intn(2); n > 0; n-- {
			g.stmt(allowCalls)
		}
		g.depth--
		if r.Intn(2) == 0 {
			fmt.Fprintf(&g.sb, "%s} else {\n", ind)
			g.depth++
			for n := 1 + r.Intn(2); n > 0; n-- {
				g.stmt(allowCalls)
			}
			g.depth--
		}
		fmt.Fprintf(&g.sb, "%s}\n", ind)
	default:
		// Bounded loop: the bound is evaluated once into a read-only
		// temporary so the body cannot extend the iteration space.
		id := g.loopID
		g.loopID++
		fmt.Fprintf(&g.sb, "%slong n%d = ((%s) & 7) + %d;\n", ind, id, g.anyVar(), 1+r.Intn(3))
		fmt.Fprintf(&g.sb, "%sfor (long i%d = 0; i%d < n%d; i%d++) {\n", ind, id, id, id, id)
		g.ro = append(g.ro, fmt.Sprintf("i%d", id))
		g.depth++
		for n := 1 + r.Intn(3); n > 0; n-- {
			g.stmt(allowCalls)
		}
		g.depth--
		g.ro = g.ro[:len(g.ro)-1]
		fmt.Fprintf(&g.sb, "%s}\n", ind)
	}
}

// genFunc renders one function body into sb.
func (g *progGen) genFunc(name string, params []string, nStmts int, allowCalls bool) {
	fmt.Fprintf(&g.sb, "long %s(", name)
	for i, p := range params {
		if i > 0 {
			g.sb.WriteString(", ")
		}
		g.sb.WriteString("long " + p)
	}
	g.sb.WriteString(") {\n")
	g.vars = nil
	g.ro = append([]string(nil), params...)
	for i := range params {
		v := fmt.Sprintf("v%d", i)
		fmt.Fprintf(&g.sb, "    long %s = %s;\n", v, params[i])
		g.vars = append(g.vars, v)
	}
	for i := 0; i < nStmts; i++ {
		g.stmt(allowCalls)
	}
	ret := g.vars[0]
	for _, v := range g.vars[1:] {
		ret += " ^ " + v
	}
	fmt.Fprintf(&g.sb, "    return %s;\n}\n\n", ret)
}

// GenProgram renders a deterministic random translation unit with a global
// array A, up to two call-free helpers, and an entry function f(a,b,c,d).
// It also reports whether the program stores to A (a program that never
// writes A may soundly declare it a known memory range).
func GenProgram(r *rand.Rand) (src string, storesToA bool) {
	g := &progGen{r: r}
	g.sb.WriteString("long A[16] = {")
	for i := 0; i < arrayWords; i++ {
		if i > 0 {
			g.sb.WriteString(", ")
		}
		fmt.Fprintf(&g.sb, "%d", r.Int63n(1000))
	}
	g.sb.WriteString("};\n\n")
	for i := 0; i < 1+r.Intn(2); i++ {
		name := fmt.Sprintf("h%d", i)
		g.genFunc(name, []string{"a", "b"}, 2+r.Intn(3), false)
		g.helpers = append(g.helpers, name)
	}
	g.genFunc("f", []string{"a", "b", "c", "d"}, 4+r.Intn(7), true)
	return g.sb.String(), g.storesToA
}

// Generated builds the differential case for the seed'th random program:
// source, a random known-parameter declaration, random tracing options,
// and an argument generator consistent with all of it.
func Generated(seed int64) Case {
	r := rand.New(rand.NewSource(seed))
	src, storesToA := GenProgram(r)

	var known [4]bool
	var fixed [4]uint64
	for i := range known {
		if r.Intn(3) == 0 {
			known[i] = true
			fixed[i] = smallVal(r)
		}
	}
	declareA := !storesToA && r.Intn(2) == 0
	opts := brew.FuncOpts{
		BranchesUnknown: r.Intn(3) == 0,
		ResultsUnknown:  r.Intn(4) == 0,
	}
	maxVariants := 0
	if r.Intn(2) == 0 {
		maxVariants = 1 + r.Intn(4)
	}

	build := func() (*Instance, error) {
		m, err := vm.New()
		if err != nil {
			return nil, err
		}
		l, err := minc.CompileAndLink(m, src, nil)
		if err != nil {
			return nil, fmt.Errorf("compile: %w\n%s", err, src)
		}
		fn, err := l.FuncAddr("f")
		if err != nil {
			return nil, err
		}
		cfg := brew.NewConfig()
		if maxVariants > 0 {
			cfg.MaxVariantsPerAddr = maxVariants
		}
		args := make([]uint64, 4)
		for i := range known {
			if known[i] {
				cfg.SetParam(i+1, brew.ParamKnown)
				args[i] = fixed[i]
			}
		}
		if declareA {
			a, err := l.GlobalAddr("A")
			if err != nil {
				return nil, err
			}
			cfg.SetMemRange(a, a+arrayWords*8)
		}
		cfg.SetFuncOpts(fn, opts)
		return &Instance{M: m, Fn: fn, Cfg: cfg, Args: args}, nil
	}
	newArgs := func(rr *rand.Rand) ([]uint64, []float64) {
		args := make([]uint64, 4)
		for i := range args {
			if known[i] {
				args[i] = fixed[i]
			} else {
				args[i] = smallVal(rr)
			}
		}
		return args, nil
	}
	return Case{
		Name:    fmt.Sprintf("gen-%d", seed),
		Build:   build,
		NewArgs: newArgs,
	}
}
