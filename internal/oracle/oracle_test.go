package oracle

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/brew"
	"repro/internal/minc"
	"repro/internal/vm"
)

// TestGeneratedProgramsNoDivergence is the oracle's headline property: a
// sweep of random compiled programs under random configurations finds no
// equivalence violation.
func TestGeneratedProgramsNoDivergence(t *testing.T) {
	seeds := 60
	if testing.Short() {
		seeds = 12
	}
	refused := 0
	for seed := 0; seed < seeds; seed++ {
		res, err := Run(Generated(int64(seed)), int64(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.RewriteErr != nil {
			refused++
			continue
		}
		if res.Divergence != nil {
			t.Fatalf("seed %d:\n%s", seed, res.Divergence.Format())
		}
	}
	if refused > seeds/2 {
		t.Fatalf("rewriter refused %d/%d generated programs — generator out of tune", refused, seeds)
	}
}

// TestStencilCasesNoDivergence checks the paper's kernels under their
// experiment configurations (E1c, E2b, E3b).
func TestStencilCasesNoDivergence(t *testing.T) {
	cases, err := StencilCases(16, 12)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cases {
		res, err := Run(c, 1)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		if res.RewriteErr != nil {
			t.Fatalf("%s: rewrite refused: %v", c.Name, res.RewriteErr)
		}
		if res.Divergence != nil {
			t.Fatalf("%s:\n%s", c.Name, res.Divergence.Format())
		}
	}
}

// violatedCase builds a case that deliberately breaks the known-parameter
// contract: parameter 1 is declared known with value kval at rewrite time,
// but argument vectors pass a different value. The specialized code bakes
// in kval, so the oracle must flag the divergence — this is the oracle's
// own smoke detector.
func violatedCase(t *testing.T, src string, kval, badval uint64, float bool) Case {
	t.Helper()
	build := func() (*Instance, error) {
		m, err := vm.New()
		if err != nil {
			return nil, err
		}
		l, err := minc.CompileAndLink(m, src, nil)
		if err != nil {
			return nil, err
		}
		fn, err := l.FuncAddr("f")
		if err != nil {
			return nil, err
		}
		cfg := brew.NewConfig().SetParam(1, brew.ParamKnown)
		return &Instance{M: m, Fn: fn, Cfg: cfg, Args: []uint64{kval}}, nil
	}
	return Case{
		Name:  "contract-violation",
		Float: float,
		Build: build,
		NewArgs: func(rr *rand.Rand) ([]uint64, []float64) {
			return []uint64{badval}, nil
		},
	}
}

func TestOracleDetectsReturnDivergence(t *testing.T) {
	c := violatedCase(t, `long f(long a) { return a * 3 + 1; }`, 7, 1000, false)
	res, err := Run(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Divergence == nil {
		t.Fatal("oracle missed a forced return divergence")
	}
	if res.Divergence.Kind != "return" {
		t.Fatalf("kind = %q, want return", res.Divergence.Kind)
	}
	// The one unknown-free vector cannot be minimized below itself, but the
	// report must carry the argument vector and disassembly context.
	f := res.Divergence.Format()
	for _, want := range []string{"DIVERGENCE", "original code", "rewritten blocks"} {
		if !strings.Contains(f, want) {
			t.Errorf("report lacks %q:\n%s", want, f)
		}
	}
}

func TestOracleDetectsStoreDivergence(t *testing.T) {
	c := violatedCase(t, `
long G[2];
long f(long a) { G[0] = a + 5; return 0; }`, 3, 9, false)
	res, err := Run(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Divergence == nil {
		t.Fatal("oracle missed a forced store divergence")
	}
	if res.Divergence.Kind != "store" && res.Divergence.Kind != "memory" {
		t.Fatalf("kind = %q, want store or memory", res.Divergence.Kind)
	}
}

// TestOracleMinimizesUnknownArgs forces a divergence that depends only on
// one unknown parameter crossing a threshold and checks the minimizer
// shrinks the other unknown to a trivial value.
func TestOracleMinimizesUnknownArgs(t *testing.T) {
	// Param 1 known (violated), params 2 and 3 unknown; the divergence is
	// independent of b and c, so minimization should drive them to 0.
	src := `long f(long a, long b, long c) { return a * 2 + (b - b) + (c - c); }`
	build := func() (*Instance, error) {
		m, err := vm.New()
		if err != nil {
			return nil, err
		}
		l, err := minc.CompileAndLink(m, src, nil)
		if err != nil {
			return nil, err
		}
		fn, err := l.FuncAddr("f")
		if err != nil {
			return nil, err
		}
		cfg := brew.NewConfig().SetParam(1, brew.ParamKnown)
		return &Instance{M: m, Fn: fn, Cfg: cfg, Args: []uint64{5}}, nil
	}
	c := Case{
		Name:  "minimize",
		Build: build,
		NewArgs: func(rr *rand.Rand) ([]uint64, []float64) {
			return []uint64{77, 123456, 987654}, nil
		},
	}
	res, err := Run(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Divergence == nil {
		t.Fatal("expected divergence")
	}
	min := res.Divergence.MinArgs
	if min == nil {
		t.Fatal("minimizer produced nothing")
	}
	if min[0] != 77 {
		t.Errorf("minimizer changed the known parameter: %v", min)
	}
	if min[1] != 0 || min[2] != 0 {
		t.Errorf("unknown parameters not minimized: %v", min)
	}
}

// TestStoreJournalExcludesStack: the oracle must ignore frame traffic —
// a function whose only stores are spills compares store-clean even
// though the rewritten frame differs.
func TestStoreJournalExcludesStack(t *testing.T) {
	// Deep expression pressure forces spills in minc output.
	src := `long f(long a, long b, long c, long d) {
    long x = (a*3 + b*5) * (c*7 + d*11) + (a*13 + c*17) * (b*19 + d*23);
    return x + (a+b)*(c+d);
}`
	build := func() (*Instance, error) {
		m, err := vm.New()
		if err != nil {
			return nil, err
		}
		l, err := minc.CompileAndLink(m, src, nil)
		if err != nil {
			return nil, err
		}
		fn, err := l.FuncAddr("f")
		if err != nil {
			return nil, err
		}
		cfg := brew.NewConfig().SetParam(1, brew.ParamKnown)
		return &Instance{M: m, Fn: fn, Cfg: cfg, Args: []uint64{3}}, nil
	}
	c := Case{
		Name:  "stack-filter",
		Build: build,
		NewArgs: func(rr *rand.Rand) ([]uint64, []float64) {
			return []uint64{3, rr.Uint64() >> 40, rr.Uint64() >> 40, rr.Uint64() >> 40}, nil
		},
	}
	res, err := Run(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.RewriteErr != nil {
		t.Fatalf("rewrite refused: %v", res.RewriteErr)
	}
	if res.Divergence != nil {
		t.Fatalf("false divergence from stack traffic:\n%s", res.Divergence.Format())
	}
}

// TestGenProgramDeterministic: the same seed must render the same source —
// Build determinism depends on it.
func TestGenProgramDeterministic(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		a, sa := GenProgram(rand.New(rand.NewSource(seed)))
		b, sb := GenProgram(rand.New(rand.NewSource(seed)))
		if a != b || sa != sb {
			t.Fatalf("seed %d: nondeterministic generator", seed)
		}
	}
}

// TestGeneratedProgramsCompile: every program in a seed sweep must be
// valid minc — a compile failure is a generator bug, not a refusal.
func TestGeneratedProgramsCompile(t *testing.T) {
	for seed := int64(100); seed < 140; seed++ {
		src, _ := GenProgram(rand.New(rand.NewSource(seed)))
		m := vm.MustNew()
		if _, err := minc.CompileAndLink(m, src, nil); err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
	}
}
