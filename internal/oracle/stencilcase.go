package oracle

import (
	"fmt"
	"math/rand"

	"repro/internal/brew"
	"repro/internal/stencil"
	"repro/internal/vm"
)

// stencilProto builds one workload to learn the deterministic addresses
// (matrices, descriptor globals) the argument generators need.
type stencilProto struct {
	xs, ys int
	m1, m2 uint64
	s5, sg uint64
	apply  uint64
}

func buildStencil(xs, ys int) (*vm.Machine, *stencil.Workload, error) {
	m, err := vm.New()
	if err != nil {
		return nil, nil, err
	}
	w, err := stencil.New(m, xs, ys)
	if err != nil {
		return nil, nil, err
	}
	return m, w, nil
}

// StencilCases returns differential cases for the paper's stencil kernels
// under their experiment configurations: E1c (generic apply, width and
// descriptor known), E2b (grouped apply) and E3b (whole-sweep rewrite).
// The unknown parameters — the matrix pointer for the kernels; the two
// matrix pointers and the row count for the sweep — are randomized over
// valid instantiations.
func StencilCases(xs, ys int) ([]Case, error) {
	if xs < 4 || ys < 4 {
		return nil, fmt.Errorf("oracle: stencil needs xs, ys >= 4 (got %d, %d)", xs, ys)
	}
	_, w, err := buildStencil(xs, ys)
	if err != nil {
		return nil, err
	}
	p := &stencilProto{xs: xs, ys: ys, m1: w.M1, m2: w.M2, s5: w.S5, sg: w.SG5, apply: w.Apply}

	interior := func(rr *rand.Rand) uint64 {
		x := 1 + rr.Intn(p.xs-2)
		y := 1 + rr.Intn(p.ys-2)
		return p.m1 + uint64(8*(y*p.xs+x))
	}

	kernelCase := func(name string, fnOf func(*stencil.Workload) uint64,
		cfgOf func(*stencil.Workload) (*brew.Config, []uint64), desc uint64) Case {
		return Case{
			Name:  name,
			Float: true,
			Build: func() (*Instance, error) {
				m, w, err := buildStencil(xs, ys)
				if err != nil {
					return nil, err
				}
				cfg, args := cfgOf(w)
				return &Instance{M: m, Fn: fnOf(w), Cfg: cfg, Args: args}, nil
			},
			NewArgs: func(rr *rand.Rand) ([]uint64, []float64) {
				return []uint64{interior(rr), uint64(p.xs), desc}, nil
			},
		}
	}

	e1c := kernelCase("E1c-apply",
		func(w *stencil.Workload) uint64 { return w.Apply },
		(*stencil.Workload).ApplyConfig, p.s5)
	e2b := kernelCase("E2b-apply-grouped",
		func(w *stencil.Workload) uint64 { return w.ApplyGrouped },
		(*stencil.Workload).GroupedConfig, p.sg)

	e3b := Case{
		Name:  "E3b-sweep",
		Float: true,
		Build: func() (*Instance, error) {
			m, w, err := buildStencil(xs, ys)
			if err != nil {
				return nil, err
			}
			cfg, args := w.SweepConfig()
			return &Instance{M: m, Fn: w.Sweep, Cfg: cfg, Args: args}, nil
		},
		NewArgs: func(rr *rand.Rand) ([]uint64, []float64) {
			src, dst := p.m1, p.m2
			if rr.Intn(2) == 0 {
				src, dst = dst, src
			}
			rows := 3 + rr.Intn(p.ys-2) // unknown parameter: any valid height
			return []uint64{src, dst, uint64(p.xs), uint64(rows), p.apply, p.s5}, nil
		},
	}
	return []Case{e1c, e2b, e3b}, nil
}
