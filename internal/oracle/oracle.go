// Package oracle implements a differential-execution harness for the BREW
// rewriter: the executable form of the paper's central invariant (DESIGN.md
// §5) that a rewritten function is a drop-in replacement for the original —
// same results, same stores, same faulting behaviour — for every argument
// vector consistent with the declared known values.
//
// A Case describes how to build a machine with the function under test and
// how to generate consistent argument vectors. Run builds two identical
// instances, rewrites the function on one of them, and executes every trial
// on both: the original on the first machine, the rewritten code on the
// second. Both runs start from identical CPU and memory state and record a
// complete store journal through the VM's OnStoreValue hook. The harness
// compares return registers, callee-saved registers, the ordered journal of
// non-stack stores, final memory of all writable regions, and whether the
// run faulted. The first divergence is minimized over the unknown
// parameters and reported with disassembly context.
package oracle

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/brew"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/specmgr"
	"repro/internal/vm"
)

// StoreRec is one journaled store: address, byte size and the stored value
// (low size*8 bits).
type StoreRec struct {
	Addr uint64
	Size int
	Val  uint64
}

func (s StoreRec) String() string {
	return fmt.Sprintf("[0x%x]%d <- 0x%x", s.Addr, s.Size, s.Val)
}

// Instance is one freshly built machine with the function under test and
// its rewrite configuration. Build functions must be deterministic: two
// calls must produce machines with identical memory content and identical
// addresses, so that the original and the rewritten run start from the
// same world.
type Instance struct {
	M     *vm.Machine
	Fn    uint64
	Cfg   *brew.Config
	Args  []uint64  // rewrite-time parameter setting (brew_rewrite args)
	FArgs []float64 // rewrite-time float parameter setting
}

// Case describes one differential check.
type Case struct {
	Name string
	// Build constructs a fresh instance. It is called at least twice per
	// Run (original machine, rewritten machine) and must be deterministic.
	Build func() (*Instance, error)
	// NewArgs generates one argument vector consistent with the declared
	// known parameters (known parameters must carry the rewrite-time
	// values).
	NewArgs func(r *rand.Rand) ([]uint64, []float64)
	// Float selects the float calling convention (CallFloat, compare F0)
	// instead of the integer one (Call, compare R0).
	Float bool
	// Trials is the number of argument vectors to test (default 6).
	Trials int
	// StepLimit bounds each run (default 8M instructions).
	StepLimit int64
	// SkipStoreOrder disables the ordered store-journal comparison and
	// relies on the final-memory comparison only. Needed for rewrites that
	// legitimately restructure stores (e.g. vectorization).
	SkipStoreOrder bool
	// Degrade uses brew.RewriteOrDegrade instead of Rewrite: a rewrite
	// failure is no longer a skip but a degraded result addressing the
	// original function, and the differential check then verifies the
	// degraded path is a faithful drop-in too. Combined with Inject this
	// cross-checks the fault-injected fallback paths.
	Degrade bool
	// Inject, when non-nil, is installed as the rewrite configuration's
	// fault-injection hook (brew.Config.Inject) on the rewritten instance.
	Inject func(site string) error
	// Effort overrides the rewrite tier on the rewritten instance
	// (default EffortFull). Running the same case at brew.EffortQuick
	// checks that the tier-0 pipeline — trace with constant folding, no
	// optimization passes — is observably equivalent too: a quick
	// pipeline must never trade correctness for speed.
	Effort brew.Effort
	// VariantGuards, when non-empty, verifies the multi-version dispatch
	// path instead of a single raw rewrite: each guard set is traced and
	// installed as one variant of a specmgr variant-table entry on the
	// rewritten machine, and every trial calls the entry's stable stub
	// address. Argument vectors matching any variant's guards must be
	// served by that specialized body, and vectors missing them all must
	// fall through the inline-cache chain to the original — both
	// observably equivalent to the original run. Any install failure is a
	// skip (RewriteErr), like a rewriter refusal. Incompatible with
	// Degrade and Inject.
	VariantGuards [][]brew.ParamGuard
}

// CaseResult is the outcome of one differential case.
type CaseResult struct {
	Name   string
	Trials int
	// RewriteErr is set when the rewriter refused the function (a typed,
	// non-catastrophic failure per Section III.G) — the case is skipped,
	// not failed.
	RewriteErr error
	// Degraded reports that a Degrade-mode case fell back to the original
	// function (RewriteErr then holds the cause and the case still ran).
	Degraded bool
	// Divergence is non-nil when the invariant was violated.
	Divergence *Divergence
}

// outcome captures everything observable about one run.
type outcome struct {
	fault     error
	ret       uint64
	fret      uint64 // F0 bits
	calleeInt [6]uint64
	calleeF   [6]uint64
	stores    []StoreRec
}

// dspan is one dirtied byte range.
type dspan struct {
	addr uint64
	size int
}

// machState is one machine plus the bookkeeping to roll it back to its
// post-rewrite state between trials. Rolling back only the bytes the last
// run stored to keeps trials cheap on the ~80 MB simulated address space.
type machState struct {
	inst  *Instance
	snap  map[*mem.Segment][]byte // full copy of writable segments
	dirty []dspan                 // spans stored to since the last rollback
}

// harness pairs the two instances with their post-rewrite snapshots.
type harness struct {
	c          Case
	orig, rewr *machState
	rewrAddr   uint64
	listing    string
	stepLimit  int64
	degraded   bool
	degradeErr error
}

// Run executes one differential case. The returned error reports harness
// failures (nondeterministic Build, execution setup problems); rewriter
// refusals and divergences are reported in the CaseResult.
func Run(c Case, seed int64) (*CaseResult, error) {
	res := &CaseResult{Name: c.Name}
	h, err := newHarness(c)
	if err != nil {
		return nil, err
	}
	if h == nil { // rewriter refused
		res.RewriteErr = hErr(c)
		return res, nil
	}
	if h.degraded {
		res.Degraded = true
		res.RewriteErr = h.degradeErr
	}
	trials := c.Trials
	if trials <= 0 {
		trials = 6
	}
	r := rand.New(rand.NewSource(seed))
	for trial := 0; trial < trials; trial++ {
		args, fargs := c.NewArgs(r)
		d, err := h.diff(args, fargs)
		if err != nil {
			return nil, err
		}
		res.Trials++
		if d != nil {
			h.minimize(d)
			h.decorate(d)
			res.Divergence = d
			return res, nil
		}
	}
	return res, nil
}

// hErr re-runs the rewrite to recover the refusal error (newHarness
// returned nil). Build determinism makes this exact.
func hErr(c Case) error {
	inst, err := c.Build()
	if err != nil {
		return err
	}
	inst.Cfg.Effort = c.Effort
	if len(c.VariantGuards) > 0 {
		_, _, rerr := installVariants(c, inst)
		if rerr == nil {
			rerr = fmt.Errorf("oracle %s: variant install refused", c.Name)
		}
		return rerr
	}
	_, rerr := brew.Do(inst.M, &brew.Request{
		Config: inst.Cfg, Fn: inst.Fn, Args: inst.Args, FArgs: inst.FArgs,
	})
	return rerr
}

// installVariants builds a variant-table entry on inst's machine with one
// variant per guard set in c.VariantGuards. A nil entry with a nil error
// means an install was refused without a cause we can surface (the
// outcome was degraded without an error).
func installVariants(c Case, inst *Instance) (*specmgr.Manager, *specmgr.Entry, error) {
	mgr := specmgr.New(inst.M, specmgr.Policy{})
	e, rerr := mgr.SpecializeGuarded(inst.Cfg, inst.Fn, c.VariantGuards[0], inst.Args, inst.FArgs)
	if rerr != nil || e.Degraded() {
		return nil, nil, rerr
	}
	for _, gs := range c.VariantGuards[1:] {
		out, derr := brew.Do(inst.M, &brew.Request{
			Config: inst.Cfg, Fn: inst.Fn, Guards: gs,
			Args: inst.Args, FArgs: inst.FArgs, Mode: brew.ModeDegrade,
		})
		if _, ok := mgr.InstallVariant(e, inst.Cfg, gs, inst.Args, inst.FArgs, out, derr); !ok {
			return nil, nil, derr
		}
	}
	return mgr, e, nil
}

func newHarness(c Case) (*harness, error) {
	orig, err := c.Build()
	if err != nil {
		return nil, fmt.Errorf("oracle %s: build: %w", c.Name, err)
	}
	rewr, err := c.Build()
	if err != nil {
		return nil, fmt.Errorf("oracle %s: build: %w", c.Name, err)
	}
	if orig.Fn != rewr.Fn {
		return nil, fmt.Errorf("oracle %s: nondeterministic build: fn 0x%x vs 0x%x", c.Name, orig.Fn, rewr.Fn)
	}
	if c.Inject != nil {
		rewr.Cfg.Inject = c.Inject
	}
	rewr.Cfg.Effort = c.Effort
	if len(c.VariantGuards) > 0 {
		// Multi-version path: the trials run through the entry's stub and
		// inline-cache dispatch chain. The snapshots are taken after every
		// install, so trial rollbacks keep the table's code intact (it
		// lives in the excluded jit segment anyway).
		_, e, rerr := installVariants(c, rewr)
		if e == nil {
			_ = rerr
			return nil, nil // refusal; Run re-derives the error
		}
		h := &harness{
			c:        c,
			orig:     &machState{inst: orig, snap: snapshot(orig.M)},
			rewr:     &machState{inst: rewr, snap: snapshot(rewr.M)},
			rewrAddr: e.Addr(),
			listing:  e.Result().Listing(),
		}
		h.stepLimit = c.StepLimit
		if h.stepLimit <= 0 {
			h.stepLimit = 8 << 20
		}
		return h, nil
	}
	req := &brew.Request{Config: rewr.Cfg, Fn: rewr.Fn, Args: rewr.Args, FArgs: rewr.FArgs}
	if c.Degrade {
		// Never a skip: a failed rewrite degrades to the original entry,
		// and the differential check runs against that fallback.
		req.Mode = brew.ModeDegrade
	}
	out, rerr := brew.Do(rewr.M, req)
	if !c.Degrade && rerr != nil {
		return nil, nil // refusal; Run re-derives the error
	}
	res := out.Result
	h := &harness{
		c:        c,
		orig:     &machState{inst: orig, snap: snapshot(orig.M)},
		rewr:     &machState{inst: rewr, snap: snapshot(rewr.M)},
		rewrAddr: res.Addr,
		listing:  res.Listing(),
		degraded: res.Degraded,
	}
	if res.Degraded {
		h.degradeErr = rerr
	}
	h.stepLimit = c.StepLimit
	if h.stepLimit <= 0 {
		h.stepLimit = 8 << 20
	}
	return h, nil
}

// snapshot copies every writable segment's content.
func snapshot(m *vm.Machine) map[*mem.Segment][]byte {
	out := make(map[*mem.Segment][]byte)
	for _, s := range m.Mem.Segments() {
		if s.Perm&mem.PermWrite == 0 {
			continue
		}
		cp := make([]byte, len(s.Data))
		copy(cp, s.Data)
		out[s] = cp
	}
	return out
}

// rollback undoes every store of the previous run by copying the dirtied
// spans back from the snapshot.
func (ms *machState) rollback() {
	m := ms.inst.M.Mem
	for _, d := range ms.dirty {
		s := m.Find(d.addr)
		if s == nil {
			continue
		}
		ref, ok := ms.snap[s]
		if !ok {
			continue
		}
		off := d.addr - s.Base
		end := off + uint64(d.size)
		if end > uint64(len(s.Data)) {
			end = uint64(len(s.Data))
		}
		copy(s.Data[off:end], ref[off:end])
	}
	ms.dirty = ms.dirty[:0]
}

// resetCPU puts the register file into the canonical pre-call state both
// machines started from.
func resetCPU(m *vm.Machine) {
	m.CPU = vm.CPU{}
	m.CPU.R[isa.SP] = vm.StackTop - 64
}

// inStack reports whether addr falls into the simulated stack segment.
// Stack traffic is excluded from the equivalence contract: the rewriter is
// free to lay out private frames differently (dead frame stores, frame
// shrinking, inlining).
func inStack(addr uint64) bool {
	return addr >= vm.StackTop-vm.StackSize && addr < vm.StackTop
}

// runOne executes fn on ms's machine with the canonical initial state and
// captures the outcome.
func (h *harness) runOne(ms *machState, fn uint64, args []uint64, fargs []float64) outcome {
	m := ms.inst.M
	ms.rollback()
	resetCPU(m)
	m.UserStepLimit = h.stepLimit
	var o outcome
	m.OnStoreValue = func(addr uint64, size int, val uint64) {
		ms.dirty = append(ms.dirty, dspan{addr, size})
		if !inStack(addr) {
			o.stores = append(o.stores, StoreRec{addr, size, val})
		}
	}
	if h.c.Float {
		_, o.fault = m.CallFloat(fn, args, fargs)
	} else {
		_, o.fault = m.Call(fn, args...)
	}
	m.OnStoreValue = nil
	o.ret = m.CPU.R[isa.IntRet]
	o.fret = math.Float64bits(m.CPU.F[0])
	for i, r := range []isa.Reg{isa.R10, isa.R11, isa.R12, isa.R13, isa.R14, isa.SP} {
		o.calleeInt[i] = m.CPU.R[r]
	}
	for i := 0; i < 6; i++ {
		o.calleeF[i] = math.Float64bits(m.CPU.F[10+i])
	}
	return o
}

// diff runs one argument vector on both machines and compares the
// outcomes. A nil Divergence means the runs were equivalent.
func (h *harness) diff(args []uint64, fargs []float64) (*Divergence, error) {
	oo := h.runOne(h.orig, h.orig.inst.Fn, args, fargs)
	or := h.runOne(h.rewr, h.rewrAddr, args, fargs)
	d := h.compare(&oo, &or)
	if d != nil {
		d.Case = h.c.Name
		d.Args = append([]uint64(nil), args...)
		d.FArgs = append([]float64(nil), fargs...)
	}
	return d, nil
}

func (h *harness) compare(oo, or *outcome) *Divergence {
	if (oo.fault == nil) != (or.fault == nil) {
		return &Divergence{Kind: "fault",
			Detail: fmt.Sprintf("original fault: %v, rewritten fault: %v", oo.fault, or.fault)}
	}
	if oo.fault != nil {
		// Both faulted: the contract only requires matching faulting
		// behaviour, not matching partial progress.
		return nil
	}
	if !h.c.Float && oo.ret != or.ret {
		return &Divergence{Kind: "return",
			Detail: fmt.Sprintf("R0: original 0x%x (%d), rewritten 0x%x (%d)", oo.ret, int64(oo.ret), or.ret, int64(or.ret))}
	}
	if h.c.Float && oo.fret != or.fret {
		return &Divergence{Kind: "float-return",
			Detail: fmt.Sprintf("F0: original %g (0x%x), rewritten %g (0x%x)",
				math.Float64frombits(oo.fret), oo.fret, math.Float64frombits(or.fret), or.fret)}
	}
	if oo.calleeInt != or.calleeInt || oo.calleeF != or.calleeF {
		return &Divergence{Kind: "callee-saved",
			Detail: fmt.Sprintf("callee-saved state: original R10-R14/SP %v F10-F15 %v, rewritten %v / %v",
				oo.calleeInt, oo.calleeF, or.calleeInt, or.calleeF)}
	}
	if !h.c.SkipStoreOrder {
		if d := compareStores(oo.stores, or.stores); d != nil {
			return d
		}
	}
	return h.compareMemory()
}

// compareStores matches the two journals element by element.
func compareStores(a, b []StoreRec) *Divergence {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return &Divergence{Kind: "store",
				Detail: fmt.Sprintf("store #%d: original %v, rewritten %v\n%s",
					i, a[i], b[i], journalContext(a, b, i))}
		}
	}
	if len(a) != len(b) {
		return &Divergence{Kind: "store-count",
			Detail: fmt.Sprintf("original performed %d non-stack stores, rewritten %d\n%s",
				len(a), len(b), journalContext(a, b, n))}
	}
	return nil
}

// journalContext renders a few entries around the first mismatch.
func journalContext(a, b []StoreRec, at int) string {
	lo := at - 2
	if lo < 0 {
		lo = 0
	}
	out := "journal context (original | rewritten):\n"
	for i := lo; i <= at+2; i++ {
		l, r := "-", "-"
		if i < len(a) {
			l = a[i].String()
		}
		if i < len(b) {
			r = b[i].String()
		}
		mark := "  "
		if i == at {
			mark = "->"
		}
		out += fmt.Sprintf("  %s #%d: %-32s | %s\n", mark, i, l, r)
	}
	return out
}

// compareMemory diffs final memory of all writable regions, excluding the
// stack (private frames differ by design) and the JIT segment (it holds
// the rewritten code itself on one side).
func (h *harness) compareMemory() *Divergence {
	segsO := h.orig.inst.M.Mem.Segments()
	segsR := h.rewr.inst.M.Mem.Segments()
	for i, so := range segsO {
		if so.Perm&mem.PermWrite == 0 || so.Name == "stack" || so.Name == "jit" {
			continue
		}
		sr := segsR[i]
		if bytes.Equal(so.Data, sr.Data) {
			continue
		}
		for off := range so.Data {
			if so.Data[off] != sr.Data[off] {
				addr := so.Base + uint64(off)
				vo, _ := h.orig.inst.M.Mem.Read64(addr &^ 7)
				vr, _ := h.rewr.inst.M.Mem.Read64(addr &^ 7)
				return &Divergence{Kind: "memory",
					Detail: fmt.Sprintf("final memory differs in %q at 0x%x: original word 0x%x, rewritten 0x%x",
						so.Name, addr, vo, vr)}
			}
		}
	}
	return nil
}

// minimize shrinks the diverging argument vector: every parameter not
// declared known is driven toward small values while the divergence
// persists. Known parameters are pinned — changing them would violate the
// contract under test.
func (h *harness) minimize(d *Divergence) {
	diverges := func(args []uint64, fargs []float64) bool {
		dd, err := h.diff(args, fargs)
		return err == nil && dd != nil && dd.Kind == d.Kind
	}
	args := append([]uint64(nil), d.Args...)
	fargs := append([]float64(nil), d.FArgs...)
	for i := range args {
		if cls, _ := h.orig.inst.Cfg.IntParamClass(i + 1); cls != brew.ParamUnknown {
			continue
		}
		// Simplest first; keep the first replacement that still diverges.
		keep := args[i]
		for _, cand := range []uint64{0, 1, 2, keep >> 32, keep & 0xff, keep & 0xffff, keep / 2} {
			if cand == keep {
				continue
			}
			args[i] = cand
			if diverges(args, fargs) {
				keep = cand
				break
			}
		}
		args[i] = keep
	}
	for i := range fargs {
		if h.orig.inst.Cfg.FloatParamClass(i+1) != brew.ParamUnknown {
			continue
		}
		keep := fargs[i]
		for _, cand := range []float64{0, 1} {
			if cand == keep {
				continue
			}
			fargs[i] = cand
			if diverges(args, fargs) {
				keep = cand
				break
			}
		}
		fargs[i] = keep
	}
	if diverges(args, fargs) {
		d.MinArgs = args
		d.MinFArgs = fargs
	}
}

// decorate attaches disassembly context: a window of the original function
// and the rewriter's block listing.
func (h *harness) decorate(d *Divergence) {
	const window = 160
	fn := h.orig.inst.Fn
	if b, err := h.orig.inst.M.Mem.ReadBytes(fn, window); err == nil {
		d.OrigDisasm = isa.Disassemble(b, fn, true)
	}
	d.RewrListing = h.listing
}
