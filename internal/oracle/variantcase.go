package oracle

import (
	"math/rand"

	"repro/internal/brew"
	"repro/internal/minc"
	"repro/internal/vm"
)

// The polymorphic kernel the variant cases dispatch on: the loop bound k
// (and for the two-guard case also x) selects the specialized body.
const variantPolySrc = `
long poly(long x, long k) {
    long r = 1;
    for (long i = 0; i < k; i++) { r = r * x + i; }
    return r;
}
`

func buildPoly() (*Instance, error) {
	m, err := vm.New()
	if err != nil {
		return nil, err
	}
	l, err := minc.CompileAndLink(m, variantPolySrc, nil)
	if err != nil {
		return nil, err
	}
	fn, err := l.FuncAddr("poly")
	if err != nil {
		return nil, err
	}
	return &Instance{M: m, Fn: fn, Cfg: brew.NewConfig(), Args: []uint64{0, 0}}, nil
}

// VariantCases returns deterministic multi-variant dispatch cases: a
// variant-table entry with several guarded specializations behind one
// inline-cache stub, driven with argument vectors that hit every hot
// class, miss them all (generic fallthrough), and — for the two-guard
// case — match one guard of a set but not the other (partial miss).
func VariantCases() []Case {
	single := Case{
		Name:  "V1-poly-variants",
		Build: buildPoly,
		VariantGuards: [][]brew.ParamGuard{
			{{Param: 2, Value: 3}},
			{{Param: 2, Value: 5}},
			{{Param: 2, Value: 9}},
		},
		NewArgs: func(r *rand.Rand) ([]uint64, []float64) {
			// Hot classes, unspecialized values and the k=0 edge, in a mix.
			ks := []uint64{3, 5, 9, 0, 4, 7, 16}
			return []uint64{r.Uint64() % 1000, ks[r.Intn(len(ks))]}, nil
		},
		Trials: 12,
	}
	double := Case{
		Name:  "V2-poly-two-guards",
		Build: buildPoly,
		VariantGuards: [][]brew.ParamGuard{
			{{Param: 1, Value: 2}, {Param: 2, Value: 5}},
			{{Param: 1, Value: 3}, {Param: 2, Value: 7}},
		},
		NewArgs: func(r *rand.Rand) ([]uint64, []float64) {
			// Full matches, full misses, and partial matches (one guard of
			// a set satisfied): partial matches must fall through.
			xs := []uint64{2, 3, 4}
			ks := []uint64{5, 7, 6}
			return []uint64{xs[r.Intn(len(xs))], ks[r.Intn(len(ks))]}, nil
		},
		Trials: 12,
	}
	return []Case{single, double}
}
