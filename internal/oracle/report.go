package oracle

import (
	"fmt"
	"strings"
)

// Divergence describes one violated equivalence, with enough context to
// reproduce and debug it: the argument vector, a minimized variant, and
// disassembly of both sides.
type Divergence struct {
	Case  string
	Kind  string // "return", "float-return", "fault", "store", "store-count", "memory", "callee-saved"
	Args  []uint64
	FArgs []float64
	// MinArgs/MinFArgs is the minimized argument vector (nil when
	// minimization could not reproduce the divergence).
	MinArgs  []uint64
	MinFArgs []float64
	Detail   string
	// OrigDisasm is a disassembly window of the original function.
	OrigDisasm string
	// RewrListing is the rewriter's captured-block listing.
	RewrListing string
}

// Format renders the divergence as a multi-line report.
func (d *Divergence) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "DIVERGENCE [%s] in case %s\n", d.Kind, d.Case)
	fmt.Fprintf(&sb, "  args:  %v", d.Args)
	if len(d.FArgs) > 0 {
		fmt.Fprintf(&sb, "  fargs: %v", d.FArgs)
	}
	sb.WriteByte('\n')
	if d.MinArgs != nil {
		fmt.Fprintf(&sb, "  minimized: %v", d.MinArgs)
		if len(d.MinFArgs) > 0 {
			fmt.Fprintf(&sb, "  fargs: %v", d.MinFArgs)
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "  %s\n", strings.ReplaceAll(d.Detail, "\n", "\n  "))
	if d.OrigDisasm != "" {
		sb.WriteString("  original code (window):\n")
		writeIndented(&sb, d.OrigDisasm)
	}
	if d.RewrListing != "" {
		sb.WriteString("  rewritten blocks:\n")
		writeIndented(&sb, d.RewrListing)
	}
	return sb.String()
}

func writeIndented(sb *strings.Builder, text string) {
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		sb.WriteString("    ")
		sb.WriteString(line)
		sb.WriteByte('\n')
	}
}

// Report aggregates the outcome of a batch of cases (cmd/brew-verify).
type Report struct {
	Cases       int
	Trials      int
	Refused     int
	Degraded    int
	Divergences []*Divergence
}

// Add folds one case result into the report.
func (r *Report) Add(res *CaseResult) {
	r.Cases++
	r.Trials += res.Trials
	if res.Degraded {
		r.Degraded++ // ran against the original-function fallback
	} else if res.RewriteErr != nil {
		r.Refused++
	}
	if res.Divergence != nil {
		r.Divergences = append(r.Divergences, res.Divergence)
	}
}

// OK reports whether no divergence was found.
func (r *Report) OK() bool { return len(r.Divergences) == 0 }

// Summary renders the one-line verdict.
func (r *Report) Summary() string {
	verdict := "PASS"
	if !r.OK() {
		verdict = "FAIL"
	}
	return fmt.Sprintf("%s: %d cases, %d trials, %d rewrite-refused, %d degraded, %d divergences",
		verdict, r.Cases, r.Trials, r.Refused, r.Degraded, len(r.Divergences))
}
