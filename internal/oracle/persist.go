package oracle

import (
	"bytes"
	"fmt"
	"math/rand"

	"repro/internal/brew"
	"repro/internal/spstore"
)

// RunPersist is the persist/reload differential mode behind brew-verify
// -persist: it proves a specialization served from the persistent store
// across a simulated restart is exactly the specialization a fresh
// rewrite would have produced.
//
// Three identically built instances participate:
//
//   - the original machine (the differential baseline, as in Run);
//   - a "first boot" machine that rewrites fresh, then captures and
//     persists the outcome into st;
//   - a "restart" machine that never traces — it must find the record
//     by content address, pass full revalidation, and re-install it.
//
// The adopted body must match the fresh rewrite byte-for-byte at the
// same JIT address (any mismatch is a reported Divergence, kind
// "persist-addr"/"persist-bytes"), and then the adopted code runs the
// standard differential trial loop against the original machine — so
// "cached" is proven both bit- and behavior-identical to "fresh".
//
// Degrade, Inject and VariantGuards cases are out of scope (the store
// only ever persists clean, unconditional or guarded single rewrites
// through the service; the fault-path equivalences have their own
// modes) and return an error.
func RunPersist(c Case, seed int64, st *spstore.Store) (*CaseResult, error) {
	if c.Degrade || c.Inject != nil || len(c.VariantGuards) > 0 {
		return nil, fmt.Errorf("oracle %s: persist mode is incompatible with Degrade/Inject/VariantGuards", c.Name)
	}
	res := &CaseResult{Name: c.Name + "+persist"}

	orig, err := c.Build()
	if err != nil {
		return nil, fmt.Errorf("oracle %s: build: %w", c.Name, err)
	}
	fresh, err := c.Build()
	if err != nil {
		return nil, fmt.Errorf("oracle %s: build: %w", c.Name, err)
	}
	fresh.Cfg.Effort = c.Effort
	out, rerr := brew.Do(fresh.M, &brew.Request{
		Config: fresh.Cfg, Fn: fresh.Fn, Args: fresh.Args, FArgs: fresh.FArgs,
	})
	if rerr != nil {
		res.RewriteErr = rerr // rewriter refusal: a skip, as in Run
		return res, nil
	}
	rec, err := st.CapturePut(fresh.M, fresh.Cfg, fresh.Fn, fresh.Args, fresh.FArgs, nil, out)
	if err != nil {
		return nil, fmt.Errorf("oracle %s: persist: %w", c.Name, err)
	}

	// Simulated restart: an identically built machine adopts from the
	// store. Build determinism (the Instance contract) makes the content
	// address and the JIT allocation sequence reproduce exactly, so a
	// miss or a revalidation failure here is a real defect, not noise.
	restart, err := c.Build()
	if err != nil {
		return nil, fmt.Errorf("oracle %s: build: %w", c.Name, err)
	}
	restart.Cfg.Effort = c.Effort
	aout, arec, aerr := st.Adopt(restart.M, restart.Cfg, restart.Fn, restart.Args, restart.FArgs, nil)
	if aerr != nil {
		return nil, fmt.Errorf("oracle %s: warm adoption failed: %w", c.Name, aerr)
	}
	if aout == nil {
		return nil, fmt.Errorf("oracle %s: warm lookup missed the just-persisted record %s", c.Name, rec.Key)
	}
	if arec.Key != rec.Key {
		return nil, fmt.Errorf("oracle %s: adopted record %s, persisted %s", c.Name, arec.Key, rec.Key)
	}

	// Byte-for-byte: the adopted body at the adopted address must equal
	// the fresh rewrite at the fresh address.
	if aout.Result.Addr != out.Result.Addr || aout.Result.CodeSize != out.Result.CodeSize {
		res.Divergence = &Divergence{
			Case: res.Name, Kind: "persist-addr",
			Detail: fmt.Sprintf("fresh body %d bytes at %#x, adopted body %d bytes at %#x",
				out.Result.CodeSize, out.Result.Addr, aout.Result.CodeSize, aout.Result.Addr),
		}
		return res, nil
	}
	freshCode, err := fresh.M.Mem.ReadBytes(out.Result.Addr, out.Result.CodeSize)
	if err != nil {
		return nil, fmt.Errorf("oracle %s: read fresh body: %w", c.Name, err)
	}
	warmCode, err := restart.M.Mem.ReadBytes(aout.Result.Addr, aout.Result.CodeSize)
	if err != nil {
		return nil, fmt.Errorf("oracle %s: read adopted body: %w", c.Name, err)
	}
	if !bytes.Equal(freshCode, warmCode) {
		d := 0
		for d < len(freshCode) && freshCode[d] == warmCode[d] {
			d++
		}
		res.Divergence = &Divergence{
			Case: res.Name, Kind: "persist-bytes",
			Detail: fmt.Sprintf("adopted body differs from fresh rewrite at byte %d of %d (addr %#x)",
				d, len(freshCode), out.Result.Addr+uint64(d)),
			RewrListing: out.Result.Listing(),
		}
		return res, nil
	}

	// Behavior: the standard differential trial loop, original machine
	// vs the restart machine running the adopted body.
	h := &harness{
		c:        c,
		orig:     &machState{inst: orig, snap: snapshot(orig.M)},
		rewr:     &machState{inst: restart, snap: snapshot(restart.M)},
		rewrAddr: aout.Result.Addr,
		listing:  out.Result.Listing(),
	}
	h.stepLimit = c.StepLimit
	if h.stepLimit <= 0 {
		h.stepLimit = 8 << 20
	}
	trials := c.Trials
	if trials <= 0 {
		trials = 6
	}
	r := rand.New(rand.NewSource(seed))
	for trial := 0; trial < trials; trial++ {
		args, fargs := c.NewArgs(r)
		d, err := h.diff(args, fargs)
		if err != nil {
			return nil, err
		}
		res.Trials++
		if d != nil {
			h.minimize(d)
			h.decorate(d)
			res.Divergence = d
			return res, nil
		}
	}
	return res, nil
}
