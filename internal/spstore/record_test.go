package spstore

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/brew"
	"repro/internal/stencil"
	"repro/internal/vm"
)

const gridXS, gridYS = 16, 12

func newStencil(t *testing.T) (*vm.Machine, *stencil.Workload) {
	t.Helper()
	m := vm.MustNew()
	w, err := stencil.New(m, gridXS, gridYS)
	if err != nil {
		t.Fatal(err)
	}
	return m, w
}

// testRecord fabricates a small but fully populated record (the code
// bytes need not be valid VX64 — encode/decode never interprets them).
func testRecord() *Record {
	k := Key{Hi: 0xdeadbeefcafef00d, Lo: 0x0123456789abcdef}
	code := make([]byte, 64)
	for i := range code {
		code[i] = byte(i * 7)
	}
	return &Record{
		Key:          k.String(),
		Fn:           0x4000,
		OrigLen:      128,
		OrigHash:     0x1111222233334444,
		Fingerprint:  0x5555666677778888,
		Effort:       "full",
		Guards:       []brew.ParamGuard{{Param: 2, Value: 16}},
		Args:         []uint64{0, 16, 0x9000},
		FArgs:        []float64{1.5},
		Frozen:       []FrozenDigest{{Start: 0x9000, End: 0x9010, Hash: 0xaaaa}},
		CodeAddr:     0x200000,
		CodeSize:     len(code),
		Code:         code,
		Blocks:       3,
		TracedInstrs: 41,
		Report:       json.RawMessage(`{"note":"test"}`),
		Generation:   7,
	}
}

func TestRecordRoundtrip(t *testing.T) {
	rec := testRecord()
	enc, err := rec.encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeRecord(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rec) {
		t.Fatalf("roundtrip mismatch:\n got %+v\nwant %+v", got, rec)
	}
}

// TestRecordTruncateEveryOffset is the crash-safety table test: a record
// cut at ANY byte offset — simulating a torn write or truncated file at
// every possible tear point — must be rejected before its body is ever
// decoded.
func TestRecordTruncateEveryOffset(t *testing.T) {
	enc, err := testRecord().encode()
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(enc); cut++ {
		if _, derr := decodeRecord(enc[:cut]); derr == nil {
			t.Fatalf("record truncated to %d of %d bytes decoded cleanly", cut, len(enc))
		}
	}
	if _, derr := decodeRecord(enc); derr != nil {
		t.Fatalf("untruncated record failed to decode: %v", derr)
	}
}

// TestRecordBitFlipEveryByte proves single-bit corruption anywhere in the
// encoding — magic, length, body, checksum — is detected.
func TestRecordBitFlipEveryByte(t *testing.T) {
	enc, err := testRecord().encode()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(enc); i++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), enc...)
			mut[i] ^= 1 << bit
			if _, derr := decodeRecord(mut); derr == nil {
				t.Fatalf("bit %d of byte %d flipped, record decoded cleanly", bit, i)
			}
		}
	}
}

// TestKeyDeterminism: the content address is a pure function of the
// request and the live machine state.
func TestKeyDeterminism(t *testing.T) {
	m, w := newStencil(t)
	cfg, args := w.ApplyConfig()
	k1, err := KeyFor(m, cfg, w.Apply, args, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := KeyFor(m, cfg, w.Apply, args, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatalf("same request keyed %s then %s", k1, k2)
	}
	if k1.IsZero() {
		t.Fatal("key is zero")
	}

	// A second, identically built world derives the identical key — the
	// property warm start depends on.
	m2, w2 := newStencil(t)
	cfg2, args2 := w2.ApplyConfig()
	k3, err := KeyFor(m2, cfg2, w2.Apply, args2, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if k3 != k1 {
		t.Fatalf("identically built machine keyed %s, want %s", k3, k1)
	}
}

// TestKeySensitivity: every input the rewrite depends on — the function,
// the config (incl. effort tier), a known argument, the guard set, and
// the contents of a frozen region — perturbs the key. A changed world is
// a clean MISS, never a stale hit.
func TestKeySensitivity(t *testing.T) {
	m, w := newStencil(t)
	cfg, args := w.ApplyConfig()
	base, err := KeyFor(m, cfg, w.Apply, args, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	keyOrFatal := func(cfg *brew.Config, fn uint64, args []uint64, guards []brew.ParamGuard) Key {
		t.Helper()
		k, err := KeyFor(m, cfg, fn, args, nil, guards)
		if err != nil {
			t.Fatal(err)
		}
		return k
	}

	if k := keyOrFatal(cfg, w.ApplyGrouped, args, nil); k == base {
		t.Fatal("different fn, same key")
	}
	qcfg, qargs := w.ApplyConfig()
	qcfg.Effort = brew.EffortQuick
	if k := keyOrFatal(qcfg, w.Apply, qargs, nil); k == base {
		t.Fatal("different effort tier, same key")
	}
	wide := append([]uint64(nil), args...)
	wide[1]++ // param 2 is ParamKnown: its value is a rewrite assumption
	if k := keyOrFatal(cfg, w.Apply, wide, nil); k == base {
		t.Fatal("different known argument, same key")
	}
	if k := keyOrFatal(cfg, w.Apply, args, []brew.ParamGuard{{Param: 1, Value: 3}}); k == base {
		t.Fatal("different guard set, same key")
	}

	// Mutate one byte inside the frozen stencil descriptor: the frozen
	// digest — and therefore the key — must change.
	b, err := m.Mem.ReadBytes(w.S5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Mem.WriteBytes(w.S5, []byte{b[0] ^ 1}); err != nil {
		t.Fatal(err)
	}
	if k := keyOrFatal(cfg, w.Apply, args, nil); k == base {
		t.Fatal("frozen region contents changed, same key")
	}
	if err := m.Mem.WriteBytes(w.S5, b); err != nil {
		t.Fatal(err)
	}
	if k := keyOrFatal(cfg, w.Apply, args, nil); k != base {
		t.Fatal("restored world did not restore the key")
	}
}

// TestKeyGuardOrderCanonical: guard sets are order-independent.
func TestKeyGuardOrderCanonical(t *testing.T) {
	m, w := newStencil(t)
	cfg, args := w.ApplyConfig()
	g1 := []brew.ParamGuard{{Param: 1, Value: 2}, {Param: 4, Value: 9}}
	g2 := []brew.ParamGuard{{Param: 4, Value: 9}, {Param: 1, Value: 2}}
	k1, err := KeyFor(m, cfg, w.Apply, args, nil, g1)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := KeyFor(m, cfg, w.Apply, args, nil, g2)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatalf("guard order split the key: %s vs %s", k1, k2)
	}
}
