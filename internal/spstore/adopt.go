package spstore

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/brew"
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/vm"
)

// Capture snapshots a successful rewrite outcome as a Record: the code
// bytes are read back from the machine's JIT segment and the full
// assumption set (original-code digest, frozen-region digests, known
// argument values, guard set, effort tier) is digested against the live
// machine — the same derivation Adopt revalidates against later.
func Capture(m *vm.Machine, cfg *brew.Config, fn uint64, args []uint64, fargs []float64, guards []brew.ParamGuard, out *brew.Outcome) (*Record, error) {
	if out == nil || out.Degraded || out.Result == nil || out.Result.Degraded {
		return nil, fmt.Errorf("spstore: refusing to capture a degraded outcome")
	}
	res := out.Result
	if res.CodeSize <= 0 {
		return nil, fmt.Errorf("spstore: outcome has no code (size %d)", res.CodeSize)
	}
	code, err := m.Mem.ReadBytes(res.Addr, res.CodeSize)
	if err != nil {
		return nil, fmt.Errorf("spstore: read body at %#x: %w", res.Addr, err)
	}
	a, err := digestAssumptions(m, cfg, fn, args)
	if err != nil {
		return nil, err
	}
	k := keyFrom(a, cfg, fn, args, fargs, guards)
	rec := &Record{
		Key:          k.String(),
		Fn:           fn,
		OrigLen:      a.origLen,
		OrigHash:     a.origHash,
		Fingerprint:  cfg.Fingerprint(),
		Effort:       cfg.Effort.String(),
		Guards:       normalizeGuards(guards),
		Args:         append([]uint64(nil), args...),
		FArgs:        append([]float64(nil), fargs...),
		Frozen:       a.frozen,
		CodeAddr:     res.Addr,
		CodeSize:     res.CodeSize,
		Code:         append([]byte(nil), code...),
		Blocks:       res.Blocks,
		TracedInstrs: res.TracedInstrs,
	}
	if res.Report != nil {
		if b, jerr := res.Report.JSON(); jerr == nil {
			rec.Report = json.RawMessage(b)
		}
	}
	return rec, nil
}

// CapturePut is Capture followed by Put; the common write-behind call
// the service makes after a successful install.
func (s *Store) CapturePut(m *vm.Machine, cfg *brew.Config, fn uint64, args []uint64, fargs []float64, guards []brew.ParamGuard, out *brew.Outcome) (*Record, error) {
	rec, err := Capture(m, cfg, fn, args, fargs, guards, out)
	if err != nil {
		return nil, err
	}
	if err := s.Put(rec); err != nil {
		return nil, err
	}
	return rec, nil
}

// normalizeGuards returns a sorted copy (order-independent guard keys,
// mirroring specmgr's variant keying).
func normalizeGuards(gs []brew.ParamGuard) []brew.ParamGuard {
	if len(gs) == 0 {
		return nil
	}
	out := append([]brew.ParamGuard(nil), gs...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Param != out[j].Param {
			return out[i].Param < out[j].Param
		}
		return out[i].Value < out[j].Value
	})
	return out
}

// revalErr is a revalidation failure: the record is internally
// consistent (checksum passed) but its assumptions do not hold on the
// live machine, or its body cannot be re-installed faithfully.
type revalErr struct {
	step string // short reason for counters/events
	err  error
}

func (e *revalErr) Error() string {
	return "spstore: revalidation failed (" + e.step + "): " + e.err.Error()
}
func (e *revalErr) Unwrap() error { return e.err }

// Adopt is the warm-start path: look the request's content address up
// and — never blindly — revalidate the hit against the live machine
// before installing it. The checks, in order:
//
//  1. record identity: fn, Config fingerprint and effort tier match;
//  2. original code: the window at fn re-hashes to the recorded digest;
//  3. frozen regions: every assumed-constant range re-digests to the
//     recorded value (the live contents still satisfy the assumptions);
//  4. guard set: the request's guards equal the recorded set;
//  5. body integrity: the code bytes decode-walk as valid VX64;
//  6. placement: the JIT allocator reproduces the recorded install
//     address exactly (the body is position-dependent).
//
// A clean miss returns (nil, nil, nil). A record failing any check is
// quarantined — with a flight-recorder event and counter — and an error
// describing the failed step is returned; the caller re-traces fresh.
// On success the returned Outcome is indistinguishable from a fresh
// brew.Do result: installing it through specmgr re-arms the assumption
// watchpoints exactly like a fresh rewrite.
func (s *Store) Adopt(m *vm.Machine, cfg *brew.Config, fn uint64, args []uint64, fargs []float64, guards []brew.ParamGuard) (*brew.Outcome, *Record, error) {
	if cfg == nil {
		return nil, nil, fmt.Errorf("spstore: nil config")
	}
	t0 := time.Now()
	a, err := digestAssumptions(m, cfg, fn, args)
	if err != nil {
		return nil, nil, err
	}
	k := keyFrom(a, cfg, fn, args, fargs, guards)
	rec, ok := s.Get(k)
	if !ok {
		s.st.revalNS.Add(int64(time.Since(t0)))
		return nil, nil, nil
	}
	out, rerr := s.adoptRecord(m, cfg, fn, args, a, guards, rec)
	s.st.revalNS.Add(int64(time.Since(t0)))
	if rerr != nil {
		step := "revalidate"
		var re *revalErr
		if errors.As(rerr, &re) {
			step = re.step
		}
		s.st.revalFails.Add(1)
		mRevalFails.Inc()
		s.Quarantine(k, step)
		emitPersist(obs.Event{Kind: obs.KindPersist, Fn: fn, Reason: "reval-fail: " + step})
		return nil, rec, rerr
	}
	s.st.warmHits.Add(1)
	mWarmHits.Inc()
	emitPersist(obs.Event{Kind: obs.KindPersist, Fn: fn, Addr: out.Addr, Reason: "warm-adopt"})
	return out, rec, nil
}

func (s *Store) adoptRecord(m *vm.Machine, cfg *brew.Config, fn uint64, args []uint64, a *assumptions, guards []brew.ParamGuard, rec *Record) (*brew.Outcome, error) {
	// 1. Identity.
	if rec.Fn != fn {
		return nil, &revalErr{"fn-mismatch", fmt.Errorf("record fn %#x, request fn %#x", rec.Fn, fn)}
	}
	if fp := cfg.Fingerprint(); rec.Fingerprint != fp {
		return nil, &revalErr{"fingerprint-mismatch", fmt.Errorf("record %016x, request %016x", rec.Fingerprint, fp)}
	}
	if rec.Effort != cfg.Effort.String() {
		return nil, &revalErr{"effort-mismatch", fmt.Errorf("record %q, request %q", rec.Effort, cfg.Effort)}
	}
	// 2. Original code window.
	if rec.OrigLen != a.origLen || rec.OrigHash != a.origHash {
		return nil, &revalErr{"orig-code-changed",
			fmt.Errorf("recorded %d bytes %016x, live %d bytes %016x", rec.OrigLen, rec.OrigHash, a.origLen, a.origHash)}
	}
	// 3. Frozen regions against the live machine.
	if len(rec.Frozen) != len(a.frozen) {
		return nil, &revalErr{"frozen-set-changed",
			fmt.Errorf("recorded %d ranges, live config declares %d", len(rec.Frozen), len(a.frozen))}
	}
	for i, fr := range rec.Frozen {
		if fr != a.frozen[i] {
			return nil, &revalErr{"frozen-digest-mismatch",
				fmt.Errorf("range [%#x,%#x): recorded %016x, live %016x (live range [%#x,%#x))",
					fr.Start, fr.End, fr.Hash, a.frozen[i].Hash, a.frozen[i].Start, a.frozen[i].End)}
		}
	}
	// 4. Guard set.
	want := normalizeGuards(guards)
	if len(want) != len(rec.Guards) {
		return nil, &revalErr{"guard-set-changed", fmt.Errorf("recorded %d guards, request has %d", len(rec.Guards), len(want))}
	}
	for i := range want {
		if want[i] != rec.Guards[i] {
			return nil, &revalErr{"guard-set-changed",
				fmt.Errorf("guard %d: recorded %+v, request %+v", i, rec.Guards[i], want[i])}
		}
	}
	// 5. Body integrity: the bytes must decode as VX64 end to end.
	if rec.CodeSize <= 0 || len(rec.Code) != rec.CodeSize {
		return nil, &revalErr{"body-size", fmt.Errorf("code size %d, %d bytes", rec.CodeSize, len(rec.Code))}
	}
	if _, derr := isa.DecodeAll(rec.Code, rec.CodeAddr); derr != nil {
		return nil, &revalErr{"body-undecodable", derr}
	}
	// 6. Placement: the body is position-dependent (intra-body branch
	// targets are absolute), so the allocator must reproduce the recorded
	// address; InstallJIT rolls its reservation back when gen errors.
	addr, ierr := m.InstallJIT(rec.CodeSize, func(at uint64) ([]byte, error) {
		if at != rec.CodeAddr {
			return nil, fmt.Errorf("recorded at %#x, allocator offers %#x", rec.CodeAddr, at)
		}
		return rec.Code, nil
	})
	if ierr != nil {
		return nil, &revalErr{"relocation", ierr}
	}
	if addr != rec.CodeAddr || !s.verifyInstalled(m, rec) {
		_ = m.FreeJIT(addr)
		return nil, &revalErr{"install-verify", fmt.Errorf("installed body does not match record at %#x", addr)}
	}
	res := &brew.Result{
		Addr:         addr,
		CodeSize:     rec.CodeSize,
		Blocks:       rec.Blocks,
		TracedInstrs: rec.TracedInstrs,
	}
	if len(rec.Report) > 0 {
		var rep brew.RewriteReport
		if json.Unmarshal(rec.Report, &rep) == nil {
			res.Report = &rep
		}
	}
	out := &brew.Outcome{Addr: addr, Result: res}
	if len(rec.Guards) > 0 {
		// Mirror brew.Do's guarded shape. The dispatcher brew would have
		// built is not persisted (specmgr frees it at install and rebuilds
		// its own inline-cache chain); Addr 0 marks "no dispatcher code".
		out.Guarded = &brew.GuardedResult{
			Specialized: addr,
			Rewrite:     res,
			Guards:      append([]brew.ParamGuard(nil), rec.Guards...),
		}
	}
	return out, nil
}

// verifyInstalled reads the just-installed body back and compares it to
// the record — a final paranoia check that the write really landed.
func (s *Store) verifyInstalled(m *vm.Machine, rec *Record) bool {
	got, err := m.Mem.ReadBytes(rec.CodeAddr, rec.CodeSize)
	return err == nil && bytes.Equal(got, rec.Code)
}
