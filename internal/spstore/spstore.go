package spstore

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Options configures a Store. Only Dir is required; a nil Remote runs
// the store local-only.
type Options struct {
	// Dir is the store directory (created if missing; quarantined records
	// live in Dir/quarantine).
	Dir string
	// Remote is the optional second tier. Gets are best-effort behind the
	// local miss path (bounded by RemoteTimeout); puts are write-behind
	// on a background goroutine — the serve path never blocks on it.
	Remote Remote
	// RemoteTimeout bounds every remote operation (default 250ms).
	RemoteTimeout time.Duration
	// RemoteRetries caps the attempts per write-behind put (default 4),
	// spaced by capped exponential backoff with jitter.
	RemoteRetries int
	// BreakerThreshold consecutive remote failures open the circuit
	// breaker: the store degrades to local-only until BreakerCooldown
	// elapses, then probes half-open (defaults 5 and 2s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Inject is the fault-injection seam (internal/faultinject's
	// StoreHook): called with a store fault-point name, a true return
	// makes the store simulate that fault (torn write, truncated record,
	// bit-flip, stale assumption digest, remote timeout/error). Nil in
	// production.
	Inject func(point string) bool
}

func (o Options) withDefaults() Options {
	if o.RemoteTimeout <= 0 {
		o.RemoteTimeout = 250 * time.Millisecond
	}
	if o.RemoteRetries <= 0 {
		o.RemoteRetries = 4
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 5
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 2 * time.Second
	}
	return o
}

// Store fault-point names (mirrored by internal/faultinject's store
// points; spstore takes them as strings to stay decoupled).
const (
	InjectTornWrite     = "store-torn-write"
	InjectTruncate      = "store-truncate"
	InjectBitFlip       = "store-bit-flip"
	InjectStaleAssume   = "store-stale-assume"
	InjectRemoteTimeout = "store-remote-timeout"
	InjectRemoteErr     = "store-remote-err"
)

// Stats is a point-in-time snapshot of the store counters (all lifetime
// totals for this Store instance except the two gauges).
type Stats struct {
	Puts         uint64 `json:"puts"`
	LocalHits    uint64 `json:"local_hits"`
	LocalMisses  uint64 `json:"local_misses"`
	WarmHits     uint64 `json:"warm_hits"`
	RevalFails   uint64 `json:"warm_revalidation_failures"`
	Quarantined  uint64 `json:"quarantined"`
	RemoteHits   uint64 `json:"remote_hits"`
	RemotePuts   uint64 `json:"remote_puts"`
	RemoteTOs    uint64 `json:"remote_timeouts"`
	RemoteErrs   uint64 `json:"remote_errors"`
	RemoteDrops  uint64 `json:"remote_drops"`
	BreakerOpens uint64 `json:"breaker_opens"`
	BreakerOpen  bool   `json:"breaker_open"` // gauge: open right now
	RemoteQueue  int    `json:"remote_queue"` // gauge: write-behind backlog
	RevalNS      int64  `json:"revalidation_ns"`
	Generation   uint64 `json:"generation"`
}

// Store is a crash-safe persistent rewrite store over one directory.
// All methods are safe for concurrent use; the write path is atomic
// (unique temp + fsync + rename) so concurrent writers — or a writer
// dying mid-put — can never leave a half-record under a live key.
type Store struct {
	dir string
	opt Options

	mu     sync.Mutex // manifest writes + put sequencing
	putSeq uint64
	gen    atomic.Uint64

	st     counters
	remote *remoteTier // nil when Options.Remote is nil
	closed atomic.Bool
}

type counters struct {
	puts, localHits, localMisses      atomic.Uint64
	warmHits, revalFails, quarantined atomic.Uint64
	remoteHits, remotePuts, remoteTOs atomic.Uint64
	remoteErrs, remoteDrops, brkOpens atomic.Uint64
	revalNS                           atomic.Int64
}

const (
	recordExt     = ".rec"
	tmpSuffix     = ".tmp"
	manifestName  = "manifest.json"
	quarantineDir = "quarantine"
)

// manifest is the store's advisory generation counter. It is written
// atomically after every put; when it is missing or torn (a crash
// between record rename and manifest rename), Open rebuilds it from a
// directory scan — the records themselves are the source of truth.
type manifest struct {
	Generation uint64 `json:"generation"`
}

// Open opens (creating if needed) the store at opts.Dir: ensures the
// directory layout, sweeps stray temp files from crashed writers,
// loads or rebuilds the manifest, and starts the remote write-behind
// worker when a Remote is configured.
func Open(opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, errors.New("spstore: Options.Dir is required")
	}
	if err := os.MkdirAll(filepath.Join(opts.Dir, quarantineDir), 0o755); err != nil {
		return nil, fmt.Errorf("spstore: %w", err)
	}
	s := &Store{dir: opts.Dir, opt: opts}

	// A crashed writer leaves only uniquely-named temp files; they were
	// never renamed into place, so removing them is always safe.
	ents, err := os.ReadDir(opts.Dir)
	if err != nil {
		return nil, fmt.Errorf("spstore: %w", err)
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), tmpSuffix) {
			_ = os.Remove(filepath.Join(opts.Dir, e.Name()))
		}
	}

	if b, err := os.ReadFile(filepath.Join(opts.Dir, manifestName)); err == nil {
		var m manifest
		if json.Unmarshal(b, &m) == nil {
			s.gen.Store(m.Generation)
		} else {
			// Torn manifest rename: rebuild from the record count. The
			// generation is advisory (a writer-epoch diagnostic), so any
			// value at least as large as the record population is sound.
			s.gen.Store(uint64(s.countRecords()))
		}
	} else if !errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("spstore: %w", err)
	} else {
		s.gen.Store(uint64(s.countRecords()))
	}

	if opts.Remote != nil {
		s.remote = newRemoteTier(s, opts)
	}
	return s, nil
}

func (s *Store) countRecords() int {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), recordExt) {
			n++
		}
	}
	return n
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// Generation returns the current manifest generation.
func (s *Store) Generation() uint64 { return s.gen.Load() }

func (s *Store) pathFor(k Key) string {
	return filepath.Join(s.dir, k.String()+recordExt)
}

func (s *Store) inject(point string) bool {
	return s.opt.Inject != nil && s.opt.Inject(point)
}

// Put writes rec under its key: atomic local write (temp + fsync +
// rename) plus a manifest generation bump, then hands the encoded bytes
// to the remote tier write-behind (never blocking). The injected
// corruption modes deliberately write a *bad* final file through the
// same rename path — simulating a crash mid-write on a filesystem
// without atomic rename, a torn sector, or silent media corruption —
// precisely so the read path has real faults to catch.
func (s *Store) Put(rec *Record) error {
	if s.closed.Load() {
		return errors.New("spstore: store is closed")
	}
	var k Key
	if _, err := fmt.Sscanf(rec.Key, "%16x%16x", &k.Hi, &k.Lo); err != nil {
		return fmt.Errorf("spstore: record key %q: %w", rec.Key, err)
	}

	s.mu.Lock()
	s.putSeq++
	seq := s.putSeq
	rec.Generation = s.gen.Load() + 1
	s.mu.Unlock()

	if s.inject(InjectStaleAssume) {
		// Persist a record whose assumption digests lie: flip one frozen
		// digest (or the original-code digest) before encoding. Checksum
		// and decode stay valid — only revalidation can reject this one.
		r := *rec
		if len(r.Frozen) > 0 {
			fr := append([]FrozenDigest(nil), r.Frozen...)
			fr[int(seq)%len(fr)].Hash ^= 1 << (seq % 64)
			r.Frozen = fr
		} else {
			r.OrigHash ^= 1 << (seq % 64)
		}
		rec = &r
	}

	enc, err := rec.encode()
	if err != nil {
		return err
	}

	switch {
	case s.inject(InjectTornWrite):
		// Torn write: roughly half the encoding lands under the live
		// name. Framing/checksum verification rejects it on read.
		enc = enc[:len(recordMagic)+8+(len(enc)-len(recordMagic)-16)/2]
	case s.inject(InjectTruncate):
		// Truncated record: the trailing checksum (and possibly body
		// bytes) are missing.
		cut := int(seq%16) + 1
		if cut > len(enc) {
			cut = len(enc)
		}
		enc = enc[:len(enc)-cut]
	case s.inject(InjectBitFlip):
		// Silent media corruption: one bit flips after the checksum was
		// computed. Target the back half so the flip tends to land in
		// the code bytes.
		enc = append([]byte(nil), enc...)
		bit := seq % uint64(len(enc)*4)
		idx := len(enc)/2 + int(bit/8)%(len(enc)-len(enc)/2)
		enc[idx] ^= 1 << (bit % 8)
	}

	if err := s.writeAtomic(s.pathFor(k), enc); err != nil {
		return err
	}
	s.bumpGeneration()
	s.st.puts.Add(1)
	mPuts.Inc()
	if s.remote != nil {
		s.remote.enqueuePut(rec.Key, enc)
	}
	return nil
}

// writeAtomic writes data to path via a uniquely-named temp file in the
// same directory, fsyncs it, and renames it into place.
func (s *Store) writeAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".*"+tmpSuffix)
	if err != nil {
		return fmt.Errorf("spstore: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("spstore: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("spstore: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("spstore: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("spstore: %w", err)
	}
	return nil
}

func (s *Store) bumpGeneration() {
	s.mu.Lock()
	defer s.mu.Unlock()
	g := s.gen.Add(1)
	b, _ := json.Marshal(manifest{Generation: g})
	_ = s.writeAtomic(filepath.Join(s.dir, manifestName), b)
}

// Get looks the key up: local tier first, then (on a local miss, when
// the breaker allows) a timeout-bounded remote fetch with write-through
// to local. A local file that fails framing, checksum or decode is
// quarantined and reported as a miss — corrupt bytes are never returned.
func (s *Store) Get(k Key) (*Record, bool) {
	path := s.pathFor(k)
	if b, err := os.ReadFile(path); err == nil {
		rec, derr := decodeRecord(b)
		if derr == nil && rec.Key == k.String() {
			s.st.localHits.Add(1)
			mLocalHits.Inc()
			return rec, true
		}
		reason := "key mismatch"
		if derr != nil {
			reason = derr.Error()
		}
		s.Quarantine(k, reason)
	}
	s.st.localMisses.Add(1)
	mLocalMisses.Inc()
	if s.remote == nil {
		return nil, false
	}
	b, ok := s.remote.get(k.String())
	if !ok {
		return nil, false
	}
	rec, derr := decodeRecord(b)
	if derr != nil || rec.Key != k.String() {
		// A corrupt remote copy is dropped, not quarantined (there is no
		// local file to move); the counter still records the event.
		s.st.quarantined.Add(1)
		mQuarantined.Inc()
		emitPersist(obs.Event{Kind: obs.KindPersist, Reason: "remote-corrupt"})
		return nil, false
	}
	s.st.remoteHits.Add(1)
	mRemoteHits.Inc()
	if err := s.writeAtomic(path, b); err == nil {
		s.bumpGeneration()
	}
	return rec, true
}

// Quarantine moves the key's record file into the quarantine directory
// (suffixed with the current generation so repeat offenders under the
// same key never collide) and emits the flight-recorder event. Missing
// files are a no-op.
func (s *Store) Quarantine(k Key, reason string) {
	src := s.pathFor(k)
	dst := filepath.Join(s.dir, quarantineDir,
		fmt.Sprintf("%s.g%d%s", k.String(), s.gen.Load(), recordExt))
	if err := os.Rename(src, dst); err != nil {
		return
	}
	s.st.quarantined.Add(1)
	mQuarantined.Inc()
	emitPersist(obs.Event{Kind: obs.KindPersist, Reason: "quarantine: " + reason})
}

// Info summarizes one stored record for ls/fsck listings.
type Info struct {
	Key         string    `json:"key"`
	File        string    `json:"file"`
	Size        int64     `json:"size"`
	ModTime     time.Time `json:"mod_time"`
	Fn          uint64    `json:"fn,omitempty"`
	Effort      string    `json:"effort,omitempty"`
	CodeSize    int       `json:"code_size,omitempty"`
	Guards      int       `json:"guards,omitempty"`
	Generation  uint64    `json:"generation,omitempty"`
	Quarantined bool      `json:"quarantined,omitempty"`
	// Err is set by Fsck when the record fails verification.
	Err string `json:"err,omitempty"`
}

// List returns every record in the store (live tier and quarantine),
// sorted by file name, with a best-effort decoded summary for live
// records.
func (s *Store) List() ([]Info, error) {
	var out []Info
	for _, sub := range []struct {
		dir        string
		quarantine bool
	}{{s.dir, false}, {filepath.Join(s.dir, quarantineDir), true}} {
		ents, err := os.ReadDir(sub.dir)
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				continue
			}
			return nil, fmt.Errorf("spstore: %w", err)
		}
		for _, e := range ents {
			if e.IsDir() || !strings.HasSuffix(e.Name(), recordExt) {
				continue
			}
			fi, err := e.Info()
			if err != nil {
				continue
			}
			in := Info{
				Key:         strings.TrimSuffix(e.Name(), recordExt),
				File:        filepath.Join(sub.dir, e.Name()),
				Size:        fi.Size(),
				ModTime:     fi.ModTime(),
				Quarantined: sub.quarantine,
			}
			if !sub.quarantine {
				if b, err := os.ReadFile(in.File); err == nil {
					if rec, derr := decodeRecord(b); derr == nil {
						in.Fn, in.Effort = rec.Fn, rec.Effort
						in.CodeSize, in.Guards = rec.CodeSize, len(rec.Guards)
						in.Generation = rec.Generation
					}
				}
			}
			out = append(out, in)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].File < out[j].File })
	return out, nil
}

// FsckReport summarizes a store verification pass.
type FsckReport struct {
	Checked      int    `json:"checked"`
	Corrupt      int    `json:"corrupt"`
	Quarantined  int    `json:"quarantined_now"`
	InQuarantine int    `json:"in_quarantine"`
	Bad          []Info `json:"bad,omitempty"`
}

// Fsck verifies the framing, checksum and decode of every live record.
// With quarantine=true, corrupt records are moved to the quarantine
// directory; otherwise they are only reported.
func (s *Store) Fsck(quarantine bool) (*FsckReport, error) {
	rep := &FsckReport{}
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("spstore: %w", err)
	}
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), recordExt) {
			continue
		}
		path := filepath.Join(s.dir, e.Name())
		name := strings.TrimSuffix(e.Name(), recordExt)
		rep.Checked++
		b, err := os.ReadFile(path)
		var derr error
		if err != nil {
			derr = err
		} else {
			var rec *Record
			if rec, derr = decodeRecord(b); derr == nil && rec.Key != name {
				derr = fmt.Errorf("key mismatch: record says %s, file says %s", rec.Key, name)
			}
		}
		if derr == nil {
			continue
		}
		rep.Corrupt++
		rep.Bad = append(rep.Bad, Info{Key: name, File: path, Err: derr.Error()})
		if quarantine {
			var k Key
			if _, serr := fmt.Sscanf(name, "%16x%16x", &k.Hi, &k.Lo); serr == nil {
				s.Quarantine(k, "fsck: "+derr.Error())
			} else {
				// Not even a valid key name: move it verbatim.
				_ = os.Rename(path, filepath.Join(s.dir, quarantineDir, e.Name()))
				s.st.quarantined.Add(1)
				mQuarantined.Inc()
			}
			rep.Quarantined++
		}
	}
	if qents, err := os.ReadDir(filepath.Join(s.dir, quarantineDir)); err == nil {
		for _, e := range qents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), recordExt) {
				rep.InQuarantine++
			}
		}
	}
	return rep, nil
}

// GCReport summarizes a garbage-collection pass.
type GCReport struct {
	QuarantineDropped int   `json:"quarantine_dropped"`
	LRUDropped        int   `json:"lru_dropped"`
	BytesFreed        int64 `json:"bytes_freed"`
	BytesLive         int64 `json:"bytes_live"`
}

// GC drops every quarantined record, then — when maxBytes > 0 — evicts
// live records oldest-first until the live tier fits the budget.
func (s *Store) GC(maxBytes int64) (*GCReport, error) {
	rep := &GCReport{}
	qdir := filepath.Join(s.dir, quarantineDir)
	if ents, err := os.ReadDir(qdir); err == nil {
		for _, e := range ents {
			if e.IsDir() {
				continue
			}
			if fi, err := e.Info(); err == nil {
				rep.BytesFreed += fi.Size()
			}
			if os.Remove(filepath.Join(qdir, e.Name())) == nil {
				rep.QuarantineDropped++
			}
		}
	}
	infos, err := s.List()
	if err != nil {
		return nil, err
	}
	var live []Info
	for _, in := range infos {
		if !in.Quarantined {
			live = append(live, in)
			rep.BytesLive += in.Size
		}
	}
	if maxBytes > 0 && rep.BytesLive > maxBytes {
		sort.Slice(live, func(i, j int) bool { return live[i].ModTime.Before(live[j].ModTime) })
		for _, in := range live {
			if rep.BytesLive <= maxBytes {
				break
			}
			if os.Remove(in.File) == nil {
				rep.LRUDropped++
				rep.BytesFreed += in.Size
				rep.BytesLive -= in.Size
			}
		}
	}
	if rep.QuarantineDropped+rep.LRUDropped > 0 {
		s.bumpGeneration()
	}
	return rep, nil
}

// Stats returns a snapshot of the store counters.
func (s *Store) Stats() Stats {
	st := Stats{
		Puts:         s.st.puts.Load(),
		LocalHits:    s.st.localHits.Load(),
		LocalMisses:  s.st.localMisses.Load(),
		WarmHits:     s.st.warmHits.Load(),
		RevalFails:   s.st.revalFails.Load(),
		Quarantined:  s.st.quarantined.Load(),
		RemoteHits:   s.st.remoteHits.Load(),
		RemotePuts:   s.st.remotePuts.Load(),
		RemoteTOs:    s.st.remoteTOs.Load(),
		RemoteErrs:   s.st.remoteErrs.Load(),
		RemoteDrops:  s.st.remoteDrops.Load(),
		BreakerOpens: s.st.brkOpens.Load(),
		RevalNS:      s.st.revalNS.Load(),
		Generation:   s.gen.Load(),
	}
	if s.remote != nil {
		st.BreakerOpen = s.remote.breakerOpen()
		st.RemoteQueue = int(s.remote.pending.Load())
	}
	return st
}

// Drain waits up to timeout for the remote write-behind queue to empty.
// It returns true when the queue drained, false on timeout — it never
// waits longer than the deadline, even with a put stuck in backoff.
func (s *Store) Drain(timeout time.Duration) bool {
	if s.remote == nil {
		return true
	}
	return s.remote.drain(timeout)
}

// Close stops the remote write-behind worker (aborting any in-flight
// backoff sleep) and marks the store closed. Waiting for the queue to
// flush first is the caller's choice via Drain.
func (s *Store) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	if s.remote != nil {
		s.remote.close()
	}
	return nil
}
