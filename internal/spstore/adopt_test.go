package spstore

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/brew"
)

const sweepIters = 6

// TestCaptureAdoptRoundtrip is the core warm-start equivalence: a record
// captured on one machine is adopted by an identically built "restarted"
// machine at the same address with byte-identical code, and the adopted
// kernel computes the same checksums as the golden reference.
func TestCaptureAdoptRoundtrip(t *testing.T) {
	s := openStore(t, Options{})

	// First boot: trace fresh, persist.
	m1, w1 := newStencil(t)
	cfg1, args1 := w1.ApplyConfig()
	out, err := brew.Do(m1, &brew.Request{Config: cfg1, Fn: w1.Apply, Args: args1})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := s.CapturePut(m1, cfg1, w1.Apply, args1, nil, nil, out)
	if err != nil {
		t.Fatal(err)
	}

	// Restart: identical machine, no tracing — adopt from the store.
	m2, w2 := newStencil(t)
	cfg2, args2 := w2.ApplyConfig()
	aout, arec, aerr := s.Adopt(m2, cfg2, w2.Apply, args2, nil, nil)
	if aerr != nil {
		t.Fatalf("adopt: %v", aerr)
	}
	if aout == nil {
		t.Fatal("adopt missed the just-persisted record")
	}
	if arec.Key != rec.Key {
		t.Fatalf("adopted %s, persisted %s", arec.Key, rec.Key)
	}
	if aout.Result.Addr != out.Result.Addr {
		t.Fatalf("adopted at %#x, fresh rewrite at %#x", aout.Result.Addr, out.Result.Addr)
	}
	fresh, err := m1.Mem.ReadBytes(out.Result.Addr, out.Result.CodeSize)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := m2.Mem.ReadBytes(aout.Result.Addr, aout.Result.CodeSize)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fresh, warm) {
		t.Fatal("adopted body differs from the fresh rewrite")
	}

	// Behavior: the adopted kernel reproduces the golden checksum.
	if err := w2.ResetMatrices(); err != nil {
		t.Fatal(err)
	}
	got, err := w2.RunSweeps(aout.Result.Addr, false, sweepIters)
	if err != nil {
		t.Fatal(err)
	}
	want := w2.Golden(sweepIters)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("adopted kernel checksum %g, golden %g", got, want)
	}

	st := s.Stats()
	if st.WarmHits != 1 || st.RevalFails != 0 || st.Quarantined != 0 {
		t.Fatalf("stats = %+v, want exactly 1 warm hit", st)
	}
}

// TestAdoptChangedWorldIsCleanMiss: when an assumed-frozen region holds
// different bytes, the content address itself changes — the stale record
// is simply never found (no revalidation failure, no quarantine).
func TestAdoptChangedWorldIsCleanMiss(t *testing.T) {
	s := openStore(t, Options{})
	m1, w1 := newStencil(t)
	cfg1, args1 := w1.ApplyConfig()
	out, err := brew.Do(m1, &brew.Request{Config: cfg1, Fn: w1.Apply, Args: args1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CapturePut(m1, cfg1, w1.Apply, args1, nil, nil, out); err != nil {
		t.Fatal(err)
	}

	m2, w2 := newStencil(t)
	// The restarted world runs a different stencil: one descriptor weight
	// differs, so the frozen digest — and the key — differ.
	b, err := m2.Mem.ReadBytes(w2.S5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.Mem.WriteBytes(w2.S5, []byte{b[0] ^ 0x01}); err != nil {
		t.Fatal(err)
	}
	cfg2, args2 := w2.ApplyConfig()
	aout, arec, aerr := s.Adopt(m2, cfg2, w2.Apply, args2, nil, nil)
	if aerr != nil || aout != nil || arec != nil {
		t.Fatalf("changed world: got (%v, %v, %v), want clean miss", aout, arec, aerr)
	}
	st := s.Stats()
	if st.RevalFails != 0 || st.Quarantined != 0 || st.LocalMisses != 1 {
		t.Fatalf("stats = %+v, want one clean miss", st)
	}
}

// TestAdoptStaleAssumptionQuarantined: a checksum-valid record whose
// recorded digests lie (the stale-assume fault: content address and
// framing both check out) is caught by revalidation, quarantined, and
// never installed — zero JIT bytes leak.
func TestAdoptStaleAssumptionQuarantined(t *testing.T) {
	armed := true
	s := openStore(t, Options{Inject: func(p string) bool {
		return armed && p == InjectStaleAssume
	}})
	m1, w1 := newStencil(t)
	cfg1, args1 := w1.ApplyConfig()
	out, err := brew.Do(m1, &brew.Request{Config: cfg1, Fn: w1.Apply, Args: args1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CapturePut(m1, cfg1, w1.Apply, args1, nil, nil, out); err != nil {
		t.Fatal(err)
	}
	armed = false

	m2, w2 := newStencil(t)
	baseline := m2.JITFreeBytes()
	cfg2, args2 := w2.ApplyConfig()
	aout, arec, aerr := s.Adopt(m2, cfg2, w2.Apply, args2, nil, nil)
	if aerr == nil || aout != nil {
		t.Fatalf("lying record adopted: (%v, %v, %v)", aout, arec, aerr)
	}
	if arec == nil {
		t.Fatal("revalidation failure should surface the rejected record")
	}
	if m2.JITFreeBytes() != baseline {
		t.Fatalf("rejected adoption leaked JIT bytes: %d -> %d", baseline, m2.JITFreeBytes())
	}
	st := s.Stats()
	if st.RevalFails != 1 || st.Quarantined != 1 || st.WarmHits != 0 {
		t.Fatalf("stats = %+v, want 1 reval failure + 1 quarantine", st)
	}
	// The record is gone: the next lookup is a clean miss, so the caller
	// re-traces fresh rather than fighting the same corpse forever.
	if aout, _, aerr := s.Adopt(m2, cfg2, w2.Apply, args2, nil, nil); aout != nil || aerr != nil {
		t.Fatalf("quarantined record resurrected: (%v, %v)", aout, aerr)
	}
}

// TestAdoptPlacementMismatchRefused: the rewritten body is position-
// dependent; when the restarted machine's allocator cannot reproduce the
// recorded address (here: something else grabbed JIT space first), the
// store refuses conservatively and rolls the reservation back.
func TestAdoptPlacementMismatchRefused(t *testing.T) {
	s := openStore(t, Options{})
	m1, w1 := newStencil(t)
	cfg1, args1 := w1.ApplyConfig()
	out, err := brew.Do(m1, &brew.Request{Config: cfg1, Fn: w1.Apply, Args: args1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CapturePut(m1, cfg1, w1.Apply, args1, nil, nil, out); err != nil {
		t.Fatal(err)
	}

	m2, w2 := newStencil(t)
	// Perturb the allocator: park a small allocation where the record's
	// body would go.
	if _, err := m2.InstallJIT(32, func(at uint64) ([]byte, error) {
		return make([]byte, 32), nil
	}); err != nil {
		t.Fatal(err)
	}
	baseline := m2.JITFreeBytes()
	cfg2, args2 := w2.ApplyConfig()
	aout, _, aerr := s.Adopt(m2, cfg2, w2.Apply, args2, nil, nil)
	if aerr == nil || aout != nil {
		t.Fatalf("misplaced adoption served: (%v, %v)", aout, aerr)
	}
	if m2.JITFreeBytes() != baseline {
		t.Fatalf("refused adoption leaked JIT bytes: %d -> %d", baseline, m2.JITFreeBytes())
	}
}

// TestCaptureRefusesDegraded: degraded outcomes never enter the store.
func TestCaptureRefusesDegraded(t *testing.T) {
	m, w := newStencil(t)
	cfg, args := w.ApplyConfig()
	if _, err := Capture(m, cfg, w.Apply, args, nil, nil, &brew.Outcome{
		Addr: w.Apply, Degraded: true, Reason: "test",
		Result: &brew.Result{Addr: w.Apply, Degraded: true},
	}); err == nil {
		t.Fatal("degraded outcome captured")
	}
}
