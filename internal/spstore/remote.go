package spstore

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Remote is the pluggable second tier: a shared blob store keyed by the
// record's content address, holding encoded record bytes (the same
// framed+checksummed encoding the local tier writes, so a corrupt remote
// copy is caught by the same verification).
//
// Implementations may block; the Store wraps every call with a per-op
// timeout, retries puts with capped exponential backoff, and opens a
// circuit breaker after repeated failures — an unreliable Remote can
// slow the background worker, never the serve path.
type Remote interface {
	// Get returns the encoded record for key, or ErrNotFound.
	Get(key string) ([]byte, error)
	// Put stores the encoded record under key.
	Put(key string, data []byte) error
}

// ErrNotFound is the Remote miss sentinel.
var ErrNotFound = errors.New("spstore: not found")

// errInjectedTimeout / errInjectedRemote simulate the two remote failure
// classes (a deadline expiry and a 5xx-equivalent server error).
var (
	errInjectedTimeout = errors.New("spstore: injected remote timeout")
	errInjectedRemote  = errors.New("spstore: injected remote error")
)

// putJob is one write-behind unit.
type putJob struct {
	key  string
	data []byte
}

// remoteTier wraps Options.Remote with the unreliable-network policy:
// per-op timeouts, capped exponential backoff with jitter on the
// write-behind path, and a circuit breaker that degrades the store to
// local-only while the remote is down.
type remoteTier struct {
	s   *Store
	r   Remote
	opt Options

	jobs    chan putJob
	pending atomic.Int64 // enqueued but not yet finished jobs
	stop    chan struct{}
	stopped sync.Once
	done    chan struct{}

	mu        sync.Mutex
	rng       *rand.Rand
	consec    int       // consecutive failures
	openUntil time.Time // breaker open until (zero = closed)
	halfOpen  bool      // one probe allowed after cooldown
}

const remoteQueueCap = 256

func newRemoteTier(s *Store, opt Options) *remoteTier {
	t := &remoteTier{
		s:    s,
		r:    opt.Remote,
		opt:  opt,
		jobs: make(chan putJob, remoteQueueCap),
		stop: make(chan struct{}),
		done: make(chan struct{}),
		rng:  rand.New(rand.NewSource(1)), // jitter only; determinism irrelevant
	}
	go t.loop()
	return t
}

// call runs fn under the per-op timeout. The Remote interface is
// synchronous, so a timed-out call's goroutine is left to finish into a
// buffered channel — the caller moves on immediately.
func (t *remoteTier) call(fn func() error) error {
	ch := make(chan error, 1)
	go func() { ch <- fn() }()
	select {
	case err := <-ch:
		return err
	case <-time.After(t.opt.RemoteTimeout):
		return errInjectedTimeout
	case <-t.stop:
		return errors.New("spstore: store closed")
	}
}

// allow consults the circuit breaker. While open, all remote traffic is
// skipped (the store serves local-only); after the cooldown one probe is
// let through half-open — success closes the breaker, failure re-opens.
func (t *remoteTier) allow() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.openUntil.IsZero() {
		return true
	}
	if time.Now().Before(t.openUntil) {
		return false
	}
	if t.halfOpen {
		return false // a probe is already out
	}
	t.halfOpen = true
	return true
}

func (t *remoteTier) breakerOpen() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return !t.openUntil.IsZero() && time.Now().Before(t.openUntil)
}

func (t *remoteTier) noteResult(err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.halfOpen = false
	if err == nil || errors.Is(err, ErrNotFound) {
		t.consec = 0
		t.openUntil = time.Time{}
		return
	}
	t.consec++
	if t.consec >= t.opt.BreakerThreshold {
		wasOpen := !t.openUntil.IsZero() && time.Now().Before(t.openUntil)
		t.openUntil = time.Now().Add(t.opt.BreakerCooldown)
		if !wasOpen {
			t.s.st.brkOpens.Add(1)
			mBreakerOpen.Inc()
			emitPersist(obs.Event{Kind: obs.KindPersist, Reason: "breaker-open"})
		}
	}
}

// get fetches key from the remote tier, best-effort: breaker-gated and
// timeout-bounded; any failure is a miss.
func (t *remoteTier) get(key string) ([]byte, bool) {
	if !t.allow() {
		return nil, false
	}
	var data []byte
	err := t.call(func() error {
		if t.s.inject(InjectRemoteTimeout) {
			time.Sleep(t.opt.RemoteTimeout) // hold the line past the deadline
			return errInjectedTimeout
		}
		if t.s.inject(InjectRemoteErr) {
			return errInjectedRemote
		}
		b, err := t.r.Get(key)
		data = b
		return err
	})
	t.noteResult(err)
	switch {
	case err == nil:
		return data, true
	case errors.Is(err, ErrNotFound):
		return nil, false
	case errors.Is(err, errInjectedTimeout):
		t.s.st.remoteTOs.Add(1)
		mRemoteTimeouts.Inc()
		return nil, false
	default:
		t.s.st.remoteErrs.Add(1)
		mRemoteErrors.Inc()
		return nil, false
	}
}

// enqueuePut hands a write-behind put to the background worker. A full
// queue drops the job (the record is safe in the local tier; the remote
// copy is an optimization) — the serve path never blocks here.
func (t *remoteTier) enqueuePut(key string, data []byte) {
	t.pending.Add(1)
	select {
	case t.jobs <- putJob{key: key, data: data}:
	default:
		t.pending.Add(-1)
		t.s.st.remoteDrops.Add(1)
		mRemoteDrops.Inc()
	}
}

func (t *remoteTier) loop() {
	defer close(t.done)
	for {
		select {
		case <-t.stop:
			// Drain the queue as dropped so pending reaches zero and a
			// concurrent Drain observes completion.
			for {
				select {
				case <-t.jobs:
					t.pending.Add(-1)
					t.s.st.remoteDrops.Add(1)
					mRemoteDrops.Inc()
				default:
					return
				}
			}
		case j := <-t.jobs:
			t.runPut(j)
			t.pending.Add(-1)
		}
	}
}

// runPut attempts one write-behind put with capped exponential backoff
// and jitter. Backoff sleeps select on the stop channel, so Close (and
// therefore brewsvc.Close) never waits out a backoff schedule.
func (t *remoteTier) runPut(j putJob) {
	const (
		baseBackoff = 10 * time.Millisecond
		maxBackoff  = 500 * time.Millisecond
	)
	backoff := baseBackoff
	for attempt := 0; attempt < t.opt.RemoteRetries; attempt++ {
		if attempt > 0 {
			t.mu.Lock()
			// Full jitter over [backoff/2, backoff): spreads retry storms
			// without ever collapsing the wait to zero.
			d := backoff/2 + time.Duration(t.rng.Int63n(int64(backoff/2)))
			t.mu.Unlock()
			select {
			case <-time.After(d):
			case <-t.stop:
				t.s.st.remoteDrops.Add(1)
				mRemoteDrops.Inc()
				return
			}
			if backoff *= 2; backoff > maxBackoff {
				backoff = maxBackoff
			}
		}
		if !t.allow() {
			continue // breaker open: burn the attempt, retry after backoff
		}
		err := t.call(func() error {
			if t.s.inject(InjectRemoteTimeout) {
				time.Sleep(t.opt.RemoteTimeout)
				return errInjectedTimeout
			}
			if t.s.inject(InjectRemoteErr) {
				return errInjectedRemote
			}
			return t.r.Put(j.key, j.data)
		})
		t.noteResult(err)
		switch {
		case err == nil:
			t.s.st.remotePuts.Add(1)
			mRemotePuts.Inc()
			return
		case errors.Is(err, errInjectedTimeout):
			t.s.st.remoteTOs.Add(1)
			mRemoteTimeouts.Inc()
		default:
			t.s.st.remoteErrs.Add(1)
			mRemoteErrors.Inc()
		}
	}
	t.s.st.remoteDrops.Add(1)
	mRemoteDrops.Inc()
	emitPersist(obs.Event{Kind: obs.KindPersist, Reason: "remote-put-abandoned"})
}

// drain waits (bounded) for the write-behind backlog to reach zero.
func (t *remoteTier) drain(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for t.pending.Load() > 0 {
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(2 * time.Millisecond)
	}
	return true
}

func (t *remoteTier) close() {
	t.stopped.Do(func() { close(t.stop) })
	<-t.done
}

// MemRemote is an in-memory Remote for tests and examples: a map behind
// a mutex, with optional per-call failure hooks.
type MemRemote struct {
	mu sync.Mutex
	m  map[string][]byte

	// FailGet/FailPut, when non-nil, run before each op; a non-nil error
	// return is the op's result (simulating network/server failures).
	FailGet func(key string) error
	FailPut func(key string) error

	gets, puts atomic.Uint64
}

// NewMemRemote returns an empty in-memory remote tier.
func NewMemRemote() *MemRemote { return &MemRemote{m: map[string][]byte{}} }

// Get implements Remote.
func (r *MemRemote) Get(key string) ([]byte, error) {
	r.gets.Add(1)
	if r.FailGet != nil {
		if err := r.FailGet(key); err != nil {
			return nil, err
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	b, ok := r.m[key]
	if !ok {
		return nil, ErrNotFound
	}
	return append([]byte(nil), b...), nil
}

// Put implements Remote.
func (r *MemRemote) Put(key string, data []byte) error {
	r.puts.Add(1)
	if r.FailPut != nil {
		if err := r.FailPut(key); err != nil {
			return err
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.m[key] = append([]byte(nil), data...)
	return nil
}

// Len returns the number of stored blobs.
func (r *MemRemote) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.m)
}

// Ops returns the lifetime get/put call counts (including failed ones).
func (r *MemRemote) Ops() (gets, puts uint64) { return r.gets.Load(), r.puts.Load() }

// Corrupt flips one bit in the stored blob for key (test helper for the
// remote-corruption path). It reports whether the key existed.
func (r *MemRemote) Corrupt(key string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	b, ok := r.m[key]
	if !ok || len(b) == 0 {
		return false
	}
	b = append([]byte(nil), b...)
	b[len(b)/2] ^= 0x10
	r.m[key] = b
	return true
}
