package spstore

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func openStore(t *testing.T, opts Options) *Store {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func keyOf(t *testing.T, rec *Record) Key {
	t.Helper()
	var k Key
	if _, err := fmt.Sscanf(rec.Key, "%16x%16x", &k.Hi, &k.Lo); err != nil {
		t.Fatal(err)
	}
	return k
}

func TestStorePutGet(t *testing.T) {
	s := openStore(t, Options{})
	rec := testRecord()
	if err := s.Put(rec); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(keyOf(t, rec))
	if !ok {
		t.Fatal("just-put record missed")
	}
	if got.Key != rec.Key || got.CodeAddr != rec.CodeAddr || len(got.Code) != len(rec.Code) {
		t.Fatalf("got %+v, want %+v", got, rec)
	}
	if got.Generation == 0 {
		t.Fatal("record generation not stamped")
	}
	if s.Generation() == 0 {
		t.Fatal("manifest generation not bumped")
	}
	st := s.Stats()
	if st.Puts != 1 || st.LocalHits != 1 {
		t.Fatalf("stats = %+v, want 1 put / 1 local hit", st)
	}
}

func TestStoreMissIsClean(t *testing.T) {
	s := openStore(t, Options{})
	if _, ok := s.Get(Key{Hi: 1, Lo: 2}); ok {
		t.Fatal("empty store returned a hit")
	}
	if st := s.Stats(); st.LocalMisses != 1 || st.Quarantined != 0 {
		t.Fatalf("stats = %+v, want 1 clean miss", st)
	}
}

// TestStoreQuarantineOnCorrupt: a record corrupted on disk is never
// returned — it is moved to quarantine and reported as a miss; a repeat
// lookup is a clean miss (the bad file is gone, not retried forever).
func TestStoreQuarantineOnCorrupt(t *testing.T) {
	s := openStore(t, Options{})
	rec := testRecord()
	if err := s.Put(rec); err != nil {
		t.Fatal(err)
	}
	k := keyOf(t, rec)
	path := s.pathFor(k)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0x40
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(k); ok {
		t.Fatal("corrupt record was served")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt record still under its live name")
	}
	qents, err := os.ReadDir(filepath.Join(s.Dir(), quarantineDir))
	if err != nil || len(qents) != 1 {
		t.Fatalf("quarantine holds %d files (err %v), want 1", len(qents), err)
	}
	if st := s.Stats(); st.Quarantined != 1 {
		t.Fatalf("quarantined counter = %d, want 1", st.Quarantined)
	}
	if _, ok := s.Get(k); ok {
		t.Fatal("quarantined record resurrected")
	}
}

// TestStoreOpenSweepsTemps: stray temp files from a crashed writer are
// removed at Open; they were never renamed into place so no record is
// lost.
func TestStoreOpenSweepsTemps(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, Options{Dir: dir})
	rec := testRecord()
	if err := s.Put(rec); err != nil {
		t.Fatal(err)
	}
	s.Close()

	stray := filepath.Join(dir, "0123.rec.42"+tmpSuffix)
	if err := os.WriteFile(stray, []byte("half a record"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := openStore(t, Options{Dir: dir})
	if _, err := os.Stat(stray); !os.IsNotExist(err) {
		t.Fatal("stray temp file survived Open")
	}
	if _, ok := s2.Get(keyOf(t, rec)); !ok {
		t.Fatal("real record lost across reopen")
	}
}

// TestStoreManifestTornRecovery: a torn manifest (crash between record
// rename and manifest rename) does not take the store down — Open
// rebuilds the generation from the records themselves.
func TestStoreManifestTornRecovery(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, Options{Dir: dir})
	rec := testRecord()
	if err := s.Put(rec); err != nil {
		t.Fatal(err)
	}
	s.Close()

	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte(`{"generation": 12`), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := openStore(t, Options{Dir: dir})
	if g := s2.Generation(); g != 1 {
		t.Fatalf("generation rebuilt as %d, want 1 (one record on disk)", g)
	}
	if _, ok := s2.Get(keyOf(t, rec)); !ok {
		t.Fatal("record lost after manifest recovery")
	}

	// Missing manifest entirely: same recovery.
	s2.Close()
	if err := os.Remove(filepath.Join(dir, manifestName)); err != nil {
		t.Fatal(err)
	}
	s3 := openStore(t, Options{Dir: dir})
	if g := s3.Generation(); g != 1 {
		t.Fatalf("generation after manifest loss = %d, want 1", g)
	}
}

// TestStoreInjectedWriteFaults drives each write-path fault point and
// proves the read path catches every one: the bad bytes land under the
// live name (through the same atomic rename) and are quarantined on first
// read, never decoded into a record.
func TestStoreInjectedWriteFaults(t *testing.T) {
	for _, point := range []string{InjectTornWrite, InjectTruncate, InjectBitFlip} {
		t.Run(point, func(t *testing.T) {
			armed := true
			s := openStore(t, Options{Inject: func(p string) bool {
				return armed && p == point
			}})
			rec := testRecord()
			if err := s.Put(rec); err != nil {
				t.Fatal(err)
			}
			armed = false
			k := keyOf(t, rec)
			if _, ok := s.Get(k); ok {
				t.Fatalf("%s: corrupt record served", point)
			}
			if st := s.Stats(); st.Quarantined != 1 {
				t.Fatalf("%s: quarantined = %d, want 1", point, st.Quarantined)
			}
			// The store self-heals: a fresh clean put under the same key
			// works and is served.
			if err := s.Put(rec); err != nil {
				t.Fatal(err)
			}
			if _, ok := s.Get(k); !ok {
				t.Fatalf("%s: clean re-put not served", point)
			}
		})
	}
}

// TestStoreInjectedStaleAssume: the stale-assumption fault writes a
// checksum-VALID record whose digests lie. The framing layer must accept
// it (that is the point — only revalidation can catch it).
func TestStoreInjectedStaleAssume(t *testing.T) {
	armed := true
	s := openStore(t, Options{Inject: func(p string) bool {
		return armed && p == InjectStaleAssume
	}})
	rec := testRecord()
	orig := rec.Frozen[0].Hash
	if err := s.Put(rec); err != nil {
		t.Fatal(err)
	}
	armed = false
	got, ok := s.Get(keyOf(t, rec))
	if !ok {
		t.Fatal("stale-assume record must pass framing checks")
	}
	if got.Frozen[0].Hash == orig && got.OrigHash == rec.OrigHash {
		t.Fatal("stale-assume injection did not perturb any digest")
	}
	if rec.Frozen[0].Hash != orig {
		t.Fatal("injection mutated the caller's record")
	}
}

func TestStoreFsck(t *testing.T) {
	s := openStore(t, Options{})
	good, bad := testRecord(), testRecord()
	bad.Key = Key{Hi: 7, Lo: 7}.String()
	for _, r := range []*Record{good, bad} {
		if err := s.Put(r); err != nil {
			t.Fatal(err)
		}
	}
	// Corrupt one on disk behind the store's back.
	path := s.pathFor(keyOf(t, bad))
	b, _ := os.ReadFile(path)
	if err := os.WriteFile(path, b[:len(b)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err := s.Fsck(false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Checked != 2 || rep.Corrupt != 1 || rep.Quarantined != 0 {
		t.Fatalf("fsck report = %+v, want 2 checked / 1 corrupt / 0 quarantined", rep)
	}
	if len(rep.Bad) != 1 || !strings.Contains(rep.Bad[0].Err, "length mismatch") {
		t.Fatalf("bad list = %+v", rep.Bad)
	}

	rep, err = s.Fsck(true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Corrupt != 1 || rep.Quarantined != 1 || rep.InQuarantine != 1 {
		t.Fatalf("fsck(quarantine) report = %+v", rep)
	}
	rep, err = s.Fsck(true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Checked != 1 || rep.Corrupt != 0 {
		t.Fatalf("post-quarantine fsck = %+v, want 1 clean record", rep)
	}
}

func TestStoreGC(t *testing.T) {
	s := openStore(t, Options{})
	var recs []*Record
	for i := 0; i < 4; i++ {
		r := testRecord()
		r.Key = Key{Hi: uint64(i + 1), Lo: uint64(i + 1)}.String()
		recs = append(recs, r)
		if err := s.Put(r); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond) // distinct mod times for the LRU order
	}
	s.Quarantine(keyOf(t, recs[0]), "test")
	infos, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 4 {
		t.Fatalf("list has %d entries, want 4 (3 live + 1 quarantined)", len(infos))
	}

	var liveBytes int64
	for _, in := range infos {
		if !in.Quarantined {
			liveBytes += in.Size
		}
	}
	// Budget for two records: the quarantined one is dropped outright and
	// the oldest live record evicted.
	rep, err := s.GC(liveBytes * 2 / 3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.QuarantineDropped != 1 {
		t.Fatalf("gc dropped %d quarantined, want 1", rep.QuarantineDropped)
	}
	if rep.LRUDropped < 1 || rep.BytesLive > liveBytes*2/3 {
		t.Fatalf("gc report = %+v, want live bytes under budget", rep)
	}
	infos, err = s.List()
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range infos {
		if in.Quarantined {
			t.Fatal("quarantined record survived GC")
		}
	}
	// The newest record is the last one GC would evict.
	if _, ok := s.Get(keyOf(t, recs[3])); !ok {
		t.Fatal("newest record evicted before older ones")
	}
}

func TestStoreClosedPutRefused(t *testing.T) {
	s := openStore(t, Options{})
	s.Close()
	if err := s.Put(testRecord()); err == nil {
		t.Fatal("put after Close succeeded")
	}
}
