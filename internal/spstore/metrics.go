package spstore

import (
	"repro/internal/obs"
	"repro/internal/telemetry"
)

// Store telemetry: registered once, zero-cost while telemetry is
// disabled. The spstore.* names are the satellite contract surfaced by
// Service.Inspect() and /metrics.
var (
	mPuts           = telemetry.Default.Counter("spstore.puts")
	mLocalHits      = telemetry.Default.Counter("spstore.local_hits")
	mLocalMisses    = telemetry.Default.Counter("spstore.local_misses")
	mWarmHits       = telemetry.Default.Counter("spstore.warm_hits")
	mRevalFails     = telemetry.Default.Counter("spstore.warm_revalidation_failures")
	mQuarantined    = telemetry.Default.Counter("spstore.quarantined")
	mRemoteHits     = telemetry.Default.Counter("spstore.remote_hits")
	mRemotePuts     = telemetry.Default.Counter("spstore.remote_puts")
	mRemoteTimeouts = telemetry.Default.Counter("spstore.remote_timeouts")
	mRemoteErrors   = telemetry.Default.Counter("spstore.remote_errors")
	mRemoteDrops    = telemetry.Default.Counter("spstore.remote_drops")
	mBreakerOpen    = telemetry.Default.Counter("spstore.breaker_open")
)

// emitPersist records a KindPersist flight-recorder event when the
// tracer is enabled (the Kind is pre-set by callers; Reason carries the
// specific lifecycle step).
func emitPersist(e obs.Event) {
	if !obs.Enabled() {
		return
	}
	e.Tier = obs.TierNone
	obs.Emit(e)
}
