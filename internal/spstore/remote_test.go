package spstore

import (
	"os"
	"sync/atomic"
	"testing"
	"time"
)

// TestRemoteWriteBehind: a put lands in the remote tier asynchronously;
// Drain bounds the wait.
func TestRemoteWriteBehind(t *testing.T) {
	r := NewMemRemote()
	s := openStore(t, Options{Remote: r})
	rec := testRecord()
	if err := s.Put(rec); err != nil {
		t.Fatal(err)
	}
	if !s.Drain(2 * time.Second) {
		t.Fatal("drain timed out")
	}
	if r.Len() != 1 {
		t.Fatalf("remote holds %d blobs, want 1", r.Len())
	}
	if st := s.Stats(); st.RemotePuts != 1 || st.RemoteQueue != 0 {
		t.Fatalf("stats = %+v, want 1 remote put, empty queue", st)
	}
}

// TestRemoteGetWriteThrough: a local miss is served from the remote tier
// and written through to local, so the next lookup is a local hit.
func TestRemoteGetWriteThrough(t *testing.T) {
	r := NewMemRemote()
	rec := testRecord()
	enc, err := rec.encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Put(rec.Key, enc); err != nil {
		t.Fatal(err)
	}
	s := openStore(t, Options{Remote: r})
	k := keyOf(t, rec)
	got, ok := s.Get(k)
	if !ok || got.Key != rec.Key {
		t.Fatalf("remote record not served (ok=%v)", ok)
	}
	if st := s.Stats(); st.RemoteHits != 1 {
		t.Fatalf("remote hits = %d, want 1", st.RemoteHits)
	}
	if _, err := os.Stat(s.pathFor(k)); err != nil {
		t.Fatalf("write-through missing: %v", err)
	}
	s.Get(k)
	if st := s.Stats(); st.LocalHits != 1 {
		t.Fatalf("second lookup local hits = %d, want 1", st.LocalHits)
	}
}

// TestRemoteCorruptDropped: a corrupt remote blob is never decoded into a
// record and never written through.
func TestRemoteCorruptDropped(t *testing.T) {
	r := NewMemRemote()
	rec := testRecord()
	enc, _ := rec.encode()
	if err := r.Put(rec.Key, enc); err != nil {
		t.Fatal(err)
	}
	if !r.Corrupt(rec.Key) {
		t.Fatal("corrupt helper missed the key")
	}
	s := openStore(t, Options{Remote: r})
	k := keyOf(t, rec)
	if _, ok := s.Get(k); ok {
		t.Fatal("corrupt remote blob served")
	}
	if _, err := os.Stat(s.pathFor(k)); !os.IsNotExist(err) {
		t.Fatal("corrupt remote blob written through to local")
	}
	if st := s.Stats(); st.Quarantined != 1 {
		t.Fatalf("quarantined counter = %d, want 1 (remote-corrupt)", st.Quarantined)
	}
}

// TestRemoteGetTimeoutBounded: a hung remote Get costs at most the per-op
// timeout on the miss path, is counted, and degrades to a miss.
func TestRemoteGetTimeoutBounded(t *testing.T) {
	r := NewMemRemote()
	r.FailGet = func(string) error { time.Sleep(time.Second); return nil }
	s := openStore(t, Options{Remote: r, RemoteTimeout: 20 * time.Millisecond})
	t0 := time.Now()
	_, ok := s.Get(Key{Hi: 1, Lo: 1})
	if ok {
		t.Fatal("hung remote produced a hit")
	}
	if el := time.Since(t0); el > 300*time.Millisecond {
		t.Fatalf("miss path blocked %v on a hung remote", el)
	}
	if st := s.Stats(); st.RemoteTOs != 1 {
		t.Fatalf("remote timeouts = %d, want 1", st.RemoteTOs)
	}
}

// TestRemoteBreaker: consecutive failures open the breaker (remote
// traffic stops, store serves local-only); after the cooldown a half-open
// probe succeeds and closes it again.
func TestRemoteBreaker(t *testing.T) {
	r := NewMemRemote()
	var failing atomic.Bool
	failing.Store(true)
	r.FailGet = func(string) error {
		if failing.Load() {
			return errInjectedRemote
		}
		return nil
	}
	s := openStore(t, Options{
		Remote:           r,
		BreakerThreshold: 3,
		BreakerCooldown:  50 * time.Millisecond,
	})
	for i := 0; i < 3; i++ {
		s.Get(Key{Hi: 9, Lo: uint64(i)})
	}
	st := s.Stats()
	if !st.BreakerOpen || st.BreakerOpens != 1 || st.RemoteErrs != 3 {
		t.Fatalf("after 3 failures: %+v, want breaker open", st)
	}

	// Open breaker: the remote is not consulted at all.
	gets, _ := r.Ops()
	s.Get(Key{Hi: 9, Lo: 99})
	if g, _ := r.Ops(); g != gets {
		t.Fatal("open breaker let a remote call through")
	}

	// After the cooldown, a healthy probe closes the breaker.
	failing.Store(false)
	time.Sleep(60 * time.Millisecond)
	s.Get(Key{Hi: 9, Lo: 100}) // half-open probe (miss, but healthy)
	if st := s.Stats(); st.BreakerOpen {
		t.Fatalf("breaker still open after healthy probe: %+v", st)
	}
}

// TestRemotePutRetriesThenDrops: a persistently failing put is retried
// with backoff and finally dropped — bounded work, local tier unaffected.
func TestRemotePutRetriesThenDrops(t *testing.T) {
	r := NewMemRemote()
	r.FailPut = func(string) error { return errInjectedRemote }
	s := openStore(t, Options{
		Remote:           r,
		RemoteRetries:    3,
		BreakerThreshold: 100, // keep the breaker out of this test
	})
	rec := testRecord()
	if err := s.Put(rec); err != nil {
		t.Fatal(err)
	}
	if !s.Drain(5 * time.Second) {
		t.Fatal("drain timed out")
	}
	st := s.Stats()
	if st.RemoteErrs != 3 || st.RemoteDrops != 1 || st.RemotePuts != 0 {
		t.Fatalf("stats = %+v, want 3 errors then 1 drop", st)
	}
	if _, ok := s.Get(keyOf(t, rec)); !ok {
		t.Fatal("local tier lost the record")
	}
}

// TestCloseDuringBackoff is the regression test for Close racing a
// remote-put backoff schedule: with a put stuck retrying, Close must
// return promptly (the backoff sleep selects on the stop channel), and
// Drain must never wait past its deadline.
func TestCloseDuringBackoff(t *testing.T) {
	r := NewMemRemote()
	r.FailPut = func(string) error { return errInjectedRemote }
	s, err := Open(Options{
		Dir:              t.TempDir(),
		Remote:           r,
		RemoteRetries:    1000, // hours of backoff schedule if not aborted
		BreakerThreshold: 1 << 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		rec := testRecord()
		rec.Key = Key{Hi: uint64(i + 1), Lo: 0xbeef}.String()
		if err := s.Put(rec); err != nil {
			t.Fatal(err)
		}
	}
	t0 := time.Now()
	if s.Drain(30 * time.Millisecond) {
		t.Fatal("drain reported success with a wedged remote")
	}
	if el := time.Since(t0); el > 500*time.Millisecond {
		t.Fatalf("drain overstayed its deadline: %v", el)
	}

	done := make(chan struct{})
	go func() { s.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Close hung on a put stuck in backoff")
	}
	if pending := s.Stats().RemoteQueue; pending != 0 {
		t.Fatalf("queue not drained on Close: %d pending", pending)
	}
}
