// Package spstore is the crash-safe persistent rewrite store: a
// content-addressed, two-level (local disk + pluggable remote) cache of
// promoted specializations, so a brewsvc restart does not re-trace the
// world (ROADMAP item 2; modeled on Bhojpur GoRPA's local+remote build
// cache with source-dependent versions).
//
// The robustness stakes are higher than a build cache's: adopting a stale
// or corrupt specialized body is a silent miscompile. Three disciplines
// keep the store "never wrong":
//
//   - Content-addressed keys. A record is keyed by the hash of the
//     original code bytes + Config.Fingerprint() + the canonical
//     assumption set (frozen-region digests, known/guarded argument
//     values, effort tier). Change any input and the key changes — a
//     stale record is simply never found.
//   - Revalidate before adopt. A hit is never served blindly: the record
//     checksum, the original code window, every frozen-region digest and
//     the guard set are re-checked against the live machine, the body is
//     decode-walked, and the JIT install address must reproduce exactly.
//     Any failure quarantines the record and falls back to a fresh trace.
//   - Crash-safe writes. Records are written atomically (unique temp
//     file, fsync, rename) under a manifest generation counter; a torn
//     or truncated record fails its whole-record checksum on read and is
//     quarantined, never decoded.
package spstore

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"repro/internal/brew"
	"repro/internal/isa"
	"repro/internal/vm"
)

func floatBits(f float64) uint64 { return math.Float64bits(f) }

// FNV-1a/64, hand-rolled like internal/brewsvc's key mixer so the store
// has no hash-package dependency and the constants are auditable.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvMix(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= (v >> (8 * i)) & 0xff
		h *= fnvPrime64
	}
	return h
}

func fnvBytes(h uint64, b []byte) uint64 {
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return h
}

// Key is the 128-bit content address of a record: two independent FNV-1a
// streams over the same canonical input (different offset bases), wide
// enough that distinct assumption sets never collide in practice.
type Key struct{ Hi, Lo uint64 }

// String renders the key as 32 hex digits — also the record's file name
// stem inside the store directory.
func (k Key) String() string { return fmt.Sprintf("%016x%016x", k.Hi, k.Lo) }

// IsZero reports whether the key is the zero value (no valid key).
func (k Key) IsZero() bool { return k == Key{} }

// FrozenDigest is the recorded digest of one frozen memory range the
// rewrite assumed constant (Config.FrozenRanges at capture time).
// Revalidation re-reads [Start,End) from the live machine and compares.
type FrozenDigest struct {
	Start uint64 `json:"start"`
	End   uint64 `json:"end"`
	Hash  uint64 `json:"hash"`
}

// Record is one persisted specialization. Everything needed to revalidate
// the assumptions and re-install the body travels with the code bytes;
// the whole encoded record is covered by a trailing checksum.
type Record struct {
	// Key is the content address (hex), duplicated inside the record so a
	// renamed or misfiled record self-identifies.
	Key string `json:"key"`
	// Fn is the original function's entry address.
	Fn uint64 `json:"fn"`
	// OrigLen/OrigHash digest the original code window starting at Fn —
	// the "hash of the original code bytes" half of the content address.
	OrigLen  int    `json:"orig_len"`
	OrigHash uint64 `json:"orig_hash"`
	// Fingerprint is Config.Fingerprint() at capture time.
	Fingerprint uint64 `json:"fingerprint"`
	// Effort is the rewrite tier ("full"/"quick") the body was built at.
	Effort string `json:"effort"`
	// Guards is the sorted guard set the body was specialized under.
	Guards []brew.ParamGuard `json:"guards,omitempty"`
	// Args/FArgs are the capture-time argument vectors (the known-class
	// params are rewrite assumptions; the rest travel for diagnostics).
	Args  []uint64  `json:"args,omitempty"`
	FArgs []float64 `json:"fargs,omitempty"`
	// Frozen digests every memory range the rewrite assumed constant.
	Frozen []FrozenDigest `json:"frozen,omitempty"`
	// CodeAddr/CodeSize/Code are the rewritten VX64 body and the JIT
	// address it was installed at. The layout is position-dependent, so
	// adoption must reproduce CodeAddr exactly or refuse.
	CodeAddr uint64 `json:"code_addr"`
	CodeSize int    `json:"code_size"`
	Code     []byte `json:"code"`
	// Blocks/TracedInstrs/Report mirror the brew.Result bookkeeping so a
	// warm adoption synthesizes an outcome indistinguishable from a fresh
	// rewrite (inspection, promotion accounting, brew-trace).
	Blocks       int             `json:"blocks"`
	TracedInstrs int             `json:"traced_instrs"`
	Report       json.RawMessage `json:"report,omitempty"`
	// Generation is the store manifest generation the record was written
	// under (diagnostic: which writer epoch produced it).
	Generation uint64 `json:"generation"`
}

// recordMagic leads every record file; a file without it is garbage (or a
// torn write that never got past the header) and quarantines on read.
const recordMagic = "SPSTORE1"

// encode renders the record as magic + 8-byte LE body length + JSON body
// + 8-byte LE FNV-1a checksum of the body. Truncation at any offset
// breaks either the length or the checksum; a bit-flip breaks the
// checksum; both are detected before the JSON is ever decoded.
func (r *Record) encode() ([]byte, error) {
	body, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("spstore: encode record: %w", err)
	}
	out := make([]byte, 0, len(recordMagic)+16+len(body))
	out = append(out, recordMagic...)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(body)))
	out = append(out, body...)
	out = binary.LittleEndian.AppendUint64(out, fnvBytes(fnvOffset64, body))
	return out, nil
}

// decodeRecord verifies the framing and checksum and unmarshals the body.
// Every failure mode returns a distinct error string (the quarantine
// reason recorded in the flight recorder).
func decodeRecord(b []byte) (*Record, error) {
	if len(b) < len(recordMagic)+16 {
		return nil, fmt.Errorf("truncated header (%d bytes)", len(b))
	}
	if string(b[:len(recordMagic)]) != recordMagic {
		return nil, fmt.Errorf("bad magic %q", b[:len(recordMagic)])
	}
	n := binary.LittleEndian.Uint64(b[len(recordMagic):])
	rest := b[len(recordMagic)+8:]
	if uint64(len(rest)) != n+8 {
		return nil, fmt.Errorf("length mismatch: header says %d body bytes, file has %d", n, len(rest))
	}
	body, sum := rest[:n], binary.LittleEndian.Uint64(rest[n:])
	if got := fnvBytes(fnvOffset64, body); got != sum {
		return nil, fmt.Errorf("checksum mismatch: computed %016x, recorded %016x", got, sum)
	}
	var r Record
	if err := json.Unmarshal(body, &r); err != nil {
		return nil, fmt.Errorf("undecodable body: %v", err)
	}
	if r.CodeSize != len(r.Code) {
		return nil, fmt.Errorf("code size %d != %d code bytes", r.CodeSize, len(r.Code))
	}
	return &r, nil
}

// origWindowCap bounds the original-code digest window: enough to cover
// any function the rewriter traces, without hashing whole segments.
const origWindowCap = 16 << 10

// origWindow reads the original code bytes starting at fn, up to the cap
// or the end of fn's segment.
func origWindow(m *vm.Machine, fn uint64) ([]byte, error) {
	seg := m.Mem.Find(fn)
	if seg == nil {
		return nil, fmt.Errorf("spstore: fn %#x is unmapped", fn)
	}
	n := seg.End() - fn
	if n > origWindowCap {
		n = origWindowCap
	}
	return m.Mem.ReadBytes(fn, int(n))
}

// assumptions is the canonical assumption set shared by key derivation,
// capture and revalidation: the original-code digest plus the digest of
// every frozen range, computed against a live machine.
type assumptions struct {
	origLen  int
	origHash uint64
	frozen   []FrozenDigest
}

func digestAssumptions(m *vm.Machine, cfg *brew.Config, fn uint64, args []uint64) (*assumptions, error) {
	w, err := origWindow(m, fn)
	if err != nil {
		return nil, err
	}
	a := &assumptions{origLen: len(w), origHash: fnvBytes(fnvOffset64, w)}
	ranges := cfg.FrozenRanges(args)
	sort.Slice(ranges, func(i, j int) bool {
		if ranges[i].Start != ranges[j].Start {
			return ranges[i].Start < ranges[j].Start
		}
		return ranges[i].End < ranges[j].End
	})
	var prev brew.MemRange
	for i, r := range ranges {
		if i > 0 && r == prev {
			continue
		}
		prev = r
		if r.End <= r.Start {
			continue
		}
		b, err := m.Mem.ReadBytes(r.Start, int(r.End-r.Start))
		if err != nil {
			return nil, fmt.Errorf("spstore: frozen range [%#x,%#x): %w", r.Start, r.End, err)
		}
		a.frozen = append(a.frozen, FrozenDigest{Start: r.Start, End: r.End, Hash: fnvBytes(fnvOffset64, b)})
	}
	return a, nil
}

// mixKey folds the canonical record identity into one FNV stream. The
// known-argument mixing mirrors internal/brewsvc's cache key (only
// params the fingerprinted Config classes as known contribute), so the
// store's content address and the service's in-memory coalescing key
// agree about what "the same request" means.
func mixKey(h uint64, a *assumptions, cfg *brew.Config, fn uint64, args []uint64, fargs []float64, guards []brew.ParamGuard) uint64 {
	h = fnvMix(h, fn)
	h = fnvMix(h, uint64(a.origLen))
	h = fnvMix(h, a.origHash)
	h = fnvMix(h, cfg.Fingerprint())
	for _, fr := range a.frozen {
		h = fnvMix(h, fr.Start)
		h = fnvMix(h, fr.End)
		h = fnvMix(h, fr.Hash)
	}
	for i := 1; i <= len(isa.IntArgRegs); i++ {
		class, _ := cfg.IntParamClass(i)
		if class == brew.ParamUnknown {
			continue
		}
		var v uint64
		if i-1 < len(args) {
			v = args[i-1]
		}
		h = fnvMix(h, uint64(i))
		h = fnvMix(h, v)
	}
	for i := 1; i <= len(isa.FloatArgRegs); i++ {
		if cfg.FloatParamClass(i) == brew.ParamUnknown {
			continue
		}
		var v float64
		if i-1 < len(fargs) {
			v = fargs[i-1]
		}
		h = fnvMix(h, uint64(i)|1<<32)
		h = fnvMix(h, floatBits(v))
	}
	sorted := append([]brew.ParamGuard(nil), guards...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Param != sorted[j].Param {
			return sorted[i].Param < sorted[j].Param
		}
		return sorted[i].Value < sorted[j].Value
	})
	h = fnvMix(h, uint64(len(sorted))|1<<33)
	for _, g := range sorted {
		h = fnvMix(h, uint64(g.Param))
		h = fnvMix(h, g.Value)
	}
	return h
}

// KeyFor derives the content address for (fn, cfg, args, fargs, guards)
// against the live machine — the same derivation capture uses, so a warm
// lookup finds exactly the records whose assumptions match the current
// world.
func KeyFor(m *vm.Machine, cfg *brew.Config, fn uint64, args []uint64, fargs []float64, guards []brew.ParamGuard) (Key, error) {
	if cfg == nil {
		return Key{}, fmt.Errorf("spstore: nil config")
	}
	a, err := digestAssumptions(m, cfg, fn, args)
	if err != nil {
		return Key{}, err
	}
	return keyFrom(a, cfg, fn, args, fargs, guards), nil
}

func keyFrom(a *assumptions, cfg *brew.Config, fn uint64, args []uint64, fargs []float64, guards []brew.ParamGuard) Key {
	// Two streams with distinct offset bases; the second additionally
	// perturbs the basis so the streams do not collapse onto each other.
	lo := mixKey(fnvOffset64, a, cfg, fn, args, fargs, guards)
	hi := mixKey(fnvMix(fnvOffset64, 0x9e3779b97f4a7c15), a, cfg, fn, args, fargs, guards)
	return Key{Hi: hi, Lo: lo}
}
