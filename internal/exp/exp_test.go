package exp

import "testing"

// Small sizing keeps the full experiment matrix fast in CI while still
// exercising every code path end to end.
func small() Options {
	return Options{XS: 20, YS: 12, Iters: 2, PgasNodes: 4, PgasBS: 64, PgasMe: 1}
}

func TestRunStencilShape(t *testing.T) {
	rows, err := RunStencil(small())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d", len(rows))
	}
	byID := map[string]Row{}
	for _, r := range rows {
		byID[r.ID] = r
		if r.Cycles == 0 {
			t.Errorf("%s has no cycles", r.ID)
		}
	}
	// The paper's qualitative ordering.
	if !(byID["E1c"].Ratio < byID["E1a"].Ratio) {
		t.Errorf("rewritten (%.2f) must beat generic (1.0)", byID["E1c"].Ratio)
	}
	if !(byID["E1b"].Ratio < byID["E1a"].Ratio) {
		t.Errorf("manual (%.2f) must beat generic", byID["E1b"].Ratio)
	}
	if !(byID["E2a"].Ratio > 1.0) {
		t.Errorf("grouped generic (%.2f) must be slower than generic", byID["E2a"].Ratio)
	}
	if !(byID["E2b"].Ratio < byID["E1c"].Ratio*1.05) {
		t.Errorf("grouped rewrite (%.2f) must be at least as good as plain rewrite (%.2f)",
			byID["E2b"].Ratio, byID["E1c"].Ratio)
	}
	if !(byID["E3a"].Ratio < byID["E1b"].Ratio) {
		t.Errorf("same-unit manual (%.2f) must beat separate-unit manual (%.2f)",
			byID["E3a"].Ratio, byID["E1b"].Ratio)
	}
	out := FormatTable("stencil", rows)
	if len(out) == 0 {
		t.Error("empty table")
	}
}

func TestRunUnrolling(t *testing.T) {
	rows, err := RunUnrolling(small())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Both must work; the unrolled variant should not be slower.
	if rows[0].Cycles > rows[1].Cycles {
		t.Errorf("full unroll (%d) slower than no-unroll (%d)", rows[0].Cycles, rows[1].Cycles)
	}
}

func TestRunInlining(t *testing.T) {
	rows, err := RunInlining(small())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if !(rows[2].Cycles < rows[1].Cycles) {
		t.Errorf("inlined (%d) must beat kept calls (%d)", rows[2].Cycles, rows[1].Cycles)
	}
	if !(rows[2].Cycles < rows[0].Cycles) {
		t.Errorf("inlined (%d) must beat original (%d)", rows[2].Cycles, rows[0].Cycles)
	}
}

func TestRunVariants(t *testing.T) {
	rows, err := RunVariants(small())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Higher thresholds admit more specialized variants: code grows.
	if !(rows[0].Cycles <= rows[2].Cycles) {
		t.Errorf("threshold 2 code (%d B) bigger than threshold 64 (%d B)", rows[0].Cycles, rows[2].Cycles)
	}
}

func TestRunGuarded(t *testing.T) {
	rows, err := RunGuarded(small())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if !(rows[1].Cycles < rows[0].Cycles) {
		t.Errorf("hot path (%d) must beat original (%d)", rows[1].Cycles, rows[0].Cycles)
	}
	if rows[2].Cycles < rows[0].Cycles {
		t.Logf("cold path unexpectedly fast: %d vs %d", rows[2].Cycles, rows[0].Cycles)
	}
}

func TestRunPgas(t *testing.T) {
	rows, err := RunPgas(small())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	if !(rows[1].Cycles < rows[0].Cycles) {
		t.Errorf("specialized local (%d) must beat generic local (%d)", rows[1].Cycles, rows[0].Cycles)
	}
	if !(rows[3].Cycles < rows[2].Cycles) {
		t.Errorf("preload (%d) must beat fine-grained remote (%d)", rows[3].Cycles, rows[2].Cycles)
	}
}

func TestRunVectorize(t *testing.T) {
	rows, err := RunVectorize(small())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if !(rows[1].Cycles < rows[0].Cycles) {
		t.Errorf("vectorized (%d) must beat scalar (%d)", rows[1].Cycles, rows[0].Cycles)
	}
}

func TestRunCacheSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-megabyte grids")
	}
	rows, err := RunCacheSweep(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Cycles per point grow with the working set, and the specialization
	// advantage narrows (ratio toward 1) once L3 capacity is exceeded.
	if !(rows[2].Cycles > rows[0].Cycles) {
		t.Errorf("cyc/pt did not grow: %d -> %d", rows[0].Cycles, rows[2].Cycles)
	}
	if !(rows[2].Ratio > rows[0].Ratio) {
		t.Errorf("ratio did not narrow: %.3f -> %.3f", rows[0].Ratio, rows[2].Ratio)
	}
}
