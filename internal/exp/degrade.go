package exp

import (
	"fmt"
	"math"

	"repro/internal/brew"
	"repro/internal/minc"
	"repro/internal/specmgr"
	"repro/internal/stencil"
)

// RunDegradation is experiment E4: graceful degradation and self-healing
// specialization (Section III.G's "failure is never catastrophic" made
// measurable). It compares the generic kernel against a managed
// specialization with assumption watchpoints armed, a full
// deopt-and-respecialize cycle triggered by a store into the frozen
// stencil descriptor, and a fault-injected rewrite that degrades to the
// original. Every row must produce the golden checksum: robustness costs
// speed, never correctness.
func RunDegradation(o Options) ([]Row, error) {
	o = o.fill()
	// The sweep count is split around the mid-run descriptor store in E4c;
	// the first batch must be even so the source/destination swap chain
	// stays intact across the split.
	h1 := o.Iters - 1
	if h1%2 == 1 {
		h1--
	}
	if h1 < 0 {
		h1 = 0
	}
	h2 := o.Iters - h1

	type entry struct {
		id, name string
		note     string
		run      func(w *stencil.Workload) (float64, error)
	}
	entries := []entry{
		{"E4a", "generic apply (no manager)", "baseline", func(w *stencil.Workload) (float64, error) {
			return w.RunSweeps(w.Apply, false, o.Iters)
		}},
		{"E4b", "managed specialization, watchpoints armed", "deopt-check overhead vs E1c", func(w *stencil.Workload) (float64, error) {
			mgr := specmgr.New(w.M, specmgr.Policy{})
			cfg, args := w.ApplyConfig()
			e, err := mgr.Specialize(cfg, w.Apply, args, nil)
			if err != nil {
				return 0, err
			}
			return w.RunSweeps(e.Addr(), false, o.Iters)
		}},
		{"E4c", "deopt mid-run + lazy respecialize", "store into frozen descriptor", func(w *stencil.Workload) (float64, error) {
			poke, err := pokeFn(w)
			if err != nil {
				return 0, err
			}
			mgr := specmgr.New(w.M, specmgr.Policy{Respecialize: true})
			cfg, args := w.ApplyConfig()
			e, err := mgr.Specialize(cfg, w.Apply, args, nil)
			if err != nil {
				return 0, err
			}
			if h1 > 0 {
				if _, err := w.RunSweeps(e.Addr(), false, h1); err != nil {
					return 0, err
				}
			}
			// Store the coefficient's existing value: semantically a no-op,
			// but a store into a frozen region all the same — the watchdog
			// must deoptimize, and the checksum must stay golden.
			if _, err := w.M.CallFloat(poke, []uint64{w.S5 + 8}, []float64{-1.0}); err != nil {
				return 0, err
			}
			if d, _ := e.Deopted(); !d {
				return 0, fmt.Errorf("frozen store did not deoptimize")
			}
			// One managed call re-specializes against current memory.
			cell := w.M1 + uint64((w.XS+1)*8)
			if _, err := e.CallFloat([]uint64{cell, uint64(w.XS), w.S5}, nil); err != nil {
				return 0, err
			}
			if d, _ := e.Deopted(); d {
				return 0, fmt.Errorf("respecialization did not happen")
			}
			return w.RunSweeps(e.Addr(), false, h2)
		}},
		{"E4d", "fault-injected rewrite, degraded", "runs original at generic speed", func(w *stencil.Workload) (float64, error) {
			cfg, args := w.ApplyConfig()
			cfg.Inject = func(site string) error {
				if site == brew.SiteInstall {
					return fmt.Errorf("%w: injected", brew.ErrCodeBufferFull)
				}
				return nil
			}
			mgr := specmgr.New(w.M, specmgr.Policy{})
			e, err := mgr.Specialize(cfg, w.Apply, args, nil)
			if e == nil {
				return 0, err
			}
			if !e.Degraded() {
				return 0, fmt.Errorf("injected install fault did not degrade")
			}
			return w.RunSweeps(e.Addr(), false, o.Iters)
		}},
	}

	var rows []Row
	var golden float64
	var base uint64
	for i, e := range entries {
		row, sum, err := measureStencil(o, e.run)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", e.id, err)
		}
		if i == 0 {
			golden = sum
			base = row.Cycles
		} else if math.Abs(sum-golden) > 1e-6 {
			return nil, fmt.Errorf("%s: checksum %g deviates from generic %g", e.id, sum, golden)
		}
		row.ID, row.Name, row.Note = e.id, e.name, e.note
		row.Ratio = float64(row.Cycles) / float64(base)
		rows = append(rows, row)
	}
	return rows, nil
}

// pokeFn compiles an emulated single-store helper into the workload's
// machine (a host-side write would bypass the watchpointed store path).
func pokeFn(w *stencil.Workload) (uint64, error) {
	l, err := minc.CompileAndLink(w.M, `
double poke(double *p, double v) { p[0] = v; return v; }
`, nil)
	if err != nil {
		return 0, err
	}
	return l.FuncAddr("poke")
}
