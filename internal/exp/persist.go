package exp

import (
	"fmt"
	"math"
	"os"
	"time"

	"repro/internal/brew"
	"repro/internal/brewsvc"
	"repro/internal/oracle"
	"repro/internal/spstore"
	"repro/internal/stencil"
	"repro/internal/vm"
)

// RunPersist is E9: the persistent rewrite store and warm start. A cold
// "boot" specializes the three stencil kernels at both effort tiers
// through the service (six traces) with a store attached; an identically
// built second boot sharing the store directory must serve every request
// by warm adoption — revalidated, never re-traced. Rows:
//
//	E9a  cold-boot traces (baseline; the re-trace work a restart costs
//	     without the store)
//	E9b  warm-boot traces (want 0: every request adopted from the store)
//	E9c  warm-boot revalidation cost, ns (digest + checksum + re-install
//	     verification — the integrity tax on adoption)
//	E9d  warm-boot wall ns (all six requests served plus one steady-state
//	     sweep per kernel, checksum-verified against the golden)
//	E9e  persist-oracle divergences (oracle.RunPersist over the stencil
//	     cases at both tiers: cached must equal fresh byte-for-byte and
//	     behave identically; want 0)
//
// Wall-clock rows vary run to run; the structural rows (E9a, E9b, E9e)
// are deterministic and checkjson enforces them.
func RunPersist(o Options) ([]Row, error) {
	o = o.fill()
	dir, err := os.MkdirTemp("", "brew-e9-store-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	// boot builds a fresh machine + service over the shared store
	// directory, submits the six specialization requests sequentially,
	// verifies one steady-state sweep per kernel against the golden
	// reference, and reports the service/store stats plus the wall time.
	boot := func() (traces, warm uint64, revalNS int64, wall time.Duration, err error) {
		m := vm.MustNew()
		w, werr := stencil.New(m, o.XS, o.YS)
		if werr != nil {
			return 0, 0, 0, 0, werr
		}
		st, serr := spstore.Open(spstore.Options{Dir: dir})
		if serr != nil {
			return 0, 0, 0, 0, serr
		}
		defer st.Close()
		svc := brewsvc.Open(m, brewsvc.WithWorkers(1), brewsvc.WithStore(st))
		defer svc.Close()

		type kernel struct {
			cfg  *brew.Config
			fn   uint64
			args []uint64
			run  func(addr uint64) (float64, error)
		}
		mk := func() []kernel {
			aCfg, aArgs := w.ApplyConfig()
			gCfg, gArgs := w.GroupedConfig()
			sCfg, sArgs := w.SweepConfig()
			return []kernel{
				{aCfg, w.Apply, aArgs, func(a uint64) (float64, error) { return w.RunSweeps(a, false, o.Iters) }},
				{gCfg, w.ApplyGrouped, gArgs, func(a uint64) (float64, error) { return w.RunSweeps(a, true, o.Iters) }},
				{sCfg, w.Sweep, sArgs, func(a uint64) (float64, error) { return w.RunRewrittenSweeps(a, o.Iters) }},
			}
		}

		t0 := time.Now()
		for _, effort := range []brew.Effort{brew.EffortFull, brew.EffortQuick} {
			for i, k := range mk() {
				k.cfg.Effort = effort
				out := svc.Do(&brewsvc.Request{Config: k.cfg, Fn: k.fn, Args: k.args})
				if out.Degraded {
					return 0, 0, 0, 0, fmt.Errorf("E9 kernel %d (%s) degraded: %s (%v)", i, effort, out.Reason, out.Err)
				}
				if effort != brew.EffortFull {
					continue
				}
				if rerr := w.ResetMatrices(); rerr != nil {
					return 0, 0, 0, 0, rerr
				}
				got, rerr := k.run(out.Addr)
				if rerr != nil {
					return 0, 0, 0, 0, rerr
				}
				if want := w.Golden(o.Iters); math.Abs(got-want) > 1e-9 {
					return 0, 0, 0, 0, fmt.Errorf("E9 kernel %d checksum %g, want %g", i, got, want)
				}
			}
		}
		wall = time.Since(t0)
		sst := svc.Stats()
		return sst.Traces, sst.WarmHits, st.Stats().RevalNS, wall, nil
	}

	coldTraces, coldWarm, _, _, err := boot()
	if err != nil {
		return nil, fmt.Errorf("cold boot: %w", err)
	}
	if coldWarm != 0 {
		return nil, fmt.Errorf("cold boot served %d warm hits from an empty store", coldWarm)
	}
	warmTraces, warmHits, revalNS, warmWall, err := boot()
	if err != nil {
		return nil, fmt.Errorf("warm boot: %w", err)
	}
	if warmHits+warmTraces < coldTraces {
		return nil, fmt.Errorf("warm boot lost requests: %d warm + %d traces < %d", warmHits, warmTraces, coldTraces)
	}

	// E9e: the persist/reload oracle over the same kernels at both tiers,
	// against its own store (so the differential machines' addresses are
	// not entangled with the service boots above).
	divergences := uint64(0)
	odir, err := os.MkdirTemp("", "brew-e9-oracle-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(odir)
	ost, err := spstore.Open(spstore.Options{Dir: odir})
	if err != nil {
		return nil, err
	}
	defer ost.Close()
	for _, effort := range []brew.Effort{brew.EffortFull, brew.EffortQuick} {
		cases, cerr := oracle.StencilCases(o.XS, o.YS)
		if cerr != nil {
			return nil, cerr
		}
		for i, c := range cases {
			c.Effort = effort
			res, rerr := oracle.RunPersist(c, int64(i)+1, ost)
			if rerr != nil {
				return nil, fmt.Errorf("E9e %s: %w", c.Name, rerr)
			}
			if res.RewriteErr != nil {
				return nil, fmt.Errorf("E9e %s: rewrite refused: %w", c.Name, res.RewriteErr)
			}
			if res.Divergence != nil {
				divergences++
			}
		}
	}

	ratio := func(n uint64) float64 {
		if coldTraces == 0 {
			return 0
		}
		return float64(n) / float64(coldTraces)
	}
	return []Row{
		{ID: "E9a", Name: "cold boot: traces paid", Cycles: coldTraces, Ratio: 1.0,
			Note: "3 kernels x 2 effort tiers, no store state"},
		{ID: "E9b", Name: "warm boot: traces paid", Cycles: warmTraces, Ratio: ratio(warmTraces),
			Note: fmt.Sprintf("%d requests served by store adoption", warmHits)},
		{ID: "E9c", Name: "warm boot: revalidation ns", Cycles: uint64(revalNS),
			Note: "digests + checksum + install verification"},
		{ID: "E9d", Name: "warm boot: wall ns", Cycles: uint64(warmWall),
			Note: "6 requests + checksum-verified steady sweeps"},
		{ID: "E9e", Name: "persist-oracle divergences", Cycles: divergences,
			Note: "cached vs fresh: byte + behavior equality"},
	}, nil
}
