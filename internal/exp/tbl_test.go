package exp

import (
	"fmt"
	"testing"
)

func TestPrintFull(t *testing.T) {
	rows, err := RunStencil(Defaults())
	if err != nil {
		t.Fatal(err)
	}
	fmt.Println(FormatTable("stencil (default sizing)", rows))
}
