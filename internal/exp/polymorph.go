package exp

import (
	"fmt"

	"repro/internal/brew"
	"repro/internal/brewsvc"
	"repro/internal/minc"
	"repro/internal/specmgr"
	"repro/internal/vm"
)

// RunPolymorph is E7: multi-version value-profiled specialization under a
// polymorphic caller mix. A call site cycles through several hot argument
// classes in blocks; each class is requested from the service as a
// guarded specialization. With a variant table (Policy.MaxVariants >=
// number of classes) every class is traced once and the inline-cache
// dispatch stub routes each block to its resident body. With the
// single-variant baseline (MaxVariants = 1) every class switch evicts the
// previous body, so the returning class re-traces — the cache's dead-slot
// liveness check forbids serving a slot whose variant was evicted.
//
// The deterministic cost model charges one work unit per traced original
// instruction and optimization-pass scan (as in E6) plus one per executed
// cycle; the per-caller cost is that total over the number of calls.
//
//   - E7a: single-variant baseline per-caller cost. The acceptance bar is
//     at least 2x the variant-table cost (checkjson re-checks
//     E7a >= 2*E7b from the JSON).
//   - E7b: variant-table per-caller cost (the family baseline; exactly
//     one trace per class over the whole mix).
//   - E7c: inline-cache full miss — an unspecialized class through the
//     stub falls through the chain to the generic original, same result,
//     dispatch-compare overhead only.
func RunPolymorph(o Options) ([]Row, error) {
	o = o.fill()
	const src = `
long poly(long x, long k) {
    long r = 1;
    for (long i = 0; i < k; i++) { r = r * x + i; }
    return r;
}
`
	classes := []uint64{3, 5, 9}
	const rounds, block = 10, 2

	polyRef := func(x, k uint64) uint64 {
		r := uint64(1)
		for i := uint64(0); i < k; i++ {
			r = r*x + i
		}
		return r
	}

	// Deterministic per-trace rewrite cost, probed once on a twin machine.
	mt := vm.MustNew()
	lt, err := minc.CompileAndLink(mt, src, nil)
	if err != nil {
		return nil, err
	}
	fnT, err := lt.FuncAddr("poly")
	if err != nil {
		return nil, err
	}
	outT, err := brew.Do(mt, &brew.Request{
		Config: brew.NewConfig(), Fn: fnT,
		Guards: []brew.ParamGuard{{Param: 2, Value: classes[0]}},
		Args:   []uint64{0, 0},
	})
	if err != nil {
		return nil, fmt.Errorf("E7: probe rewrite: %w", err)
	}
	rep := outT.Result.Report
	work := uint64(rep.TracedInstrs + rep.PassWork)

	type mixResult struct {
		traces, cycles, calls uint64
		m                     *vm.Machine
		fn, addr              uint64
		svc                   *brewsvc.Service
	}
	runMix := func(maxVariants int) (*mixResult, error) {
		m := vm.MustNew()
		l, err := minc.CompileAndLink(m, src, nil)
		if err != nil {
			return nil, err
		}
		fn, err := l.FuncAddr("poly")
		if err != nil {
			return nil, err
		}
		svc := brewsvc.Open(m,
			brewsvc.WithWorkers(1),
			brewsvc.WithPolicy(specmgr.Policy{MaxVariants: maxVariants}))
		r := &mixResult{m: m, fn: fn, svc: svc}
		for round := 0; round < rounds; round++ {
			for _, k := range classes {
				out := svc.Do(&brewsvc.Request{
					Config: brew.NewConfig(), Fn: fn,
					Guards: []brew.ParamGuard{{Param: 2, Value: k}},
					Args:   []uint64{0, 0},
				})
				if out.Degraded {
					svc.Close()
					return nil, fmt.Errorf("E7: class %d degraded: %s (%v)", k, out.Reason, out.Err)
				}
				r.addr = out.Addr
				c0 := m.Stats.Cycles
				for j := 0; j < block; j++ {
					x := uint64(round+j) % 7
					got, err := m.Call(out.Addr, x, k)
					if err != nil {
						svc.Close()
						return nil, err
					}
					if want := polyRef(x, k); got != want {
						svc.Close()
						return nil, fmt.Errorf("E7: poly(%d,%d) = %d, want %d", x, k, got, want)
					}
					r.calls++
				}
				r.cycles += m.Stats.Cycles - c0
			}
		}
		r.traces = svc.Stats().Traces
		return r, nil
	}

	rA, err := runMix(1) // single-variant baseline
	if err != nil {
		return nil, err
	}
	rA.svc.Close()
	rB, err := runMix(len(classes)) // full variant table
	if err != nil {
		return nil, err
	}
	defer rB.svc.Close()

	if rB.traces != uint64(len(classes)) {
		return nil, fmt.Errorf("E7b: %d traces for %d classes, want one per class",
			rB.traces, len(classes))
	}
	if rA.traces <= rB.traces {
		return nil, fmt.Errorf("E7a: baseline traced %d times, not more than the table's %d",
			rA.traces, rB.traces)
	}

	perA := (rA.cycles + rA.traces*work) / rA.calls
	perB := (rB.cycles + rB.traces*work) / rB.calls
	if perA < 2*perB {
		return nil, fmt.Errorf("E7: single-variant per-caller cost %d is not >= 2x variant-table cost %d",
			perA, perB)
	}

	// E7c: a class no variant covers, through the stub. The chain must
	// fall through to the generic original — same result, never wrong.
	const missK = 7
	c0 := rB.m.Stats.Cycles
	gotStub, err := rB.m.Call(rB.addr, 4, missK)
	if err != nil {
		return nil, fmt.Errorf("E7c: stub call: %w", err)
	}
	cycStub := rB.m.Stats.Cycles - c0
	c0 = rB.m.Stats.Cycles
	gotOrig, err := rB.m.Call(rB.fn, 4, missK)
	if err != nil {
		return nil, fmt.Errorf("E7c: original call: %w", err)
	}
	cycOrig := rB.m.Stats.Cycles - c0
	if gotStub != gotOrig || gotStub != polyRef(4, missK) {
		return nil, fmt.Errorf("E7c: fallthrough result %d, original %d, want %d",
			gotStub, gotOrig, polyRef(4, missK))
	}
	if cycStub < cycOrig {
		return nil, fmt.Errorf("E7c: stub path %d cycles below the original's %d", cycStub, cycOrig)
	}

	ratio := func(c uint64) float64 { return float64(c) / float64(perB) }
	return []Row{
		{
			ID: "E7a", Name: "single-variant baseline per-caller cost",
			Cycles: perA, Ratio: ratio(perA),
			Note: fmt.Sprintf("%d traces over %d calls: every class switch re-traces (bar: >= 2x E7b)",
				rA.traces, rA.calls),
		},
		{
			ID: "E7b", Name: "variant-table per-caller cost",
			Cycles: perB, Ratio: 1.0,
			Note: fmt.Sprintf("%d traces over %d calls: one per hot class, inline-cache dispatch",
				rB.traces, rB.calls),
		},
		{
			ID: "E7c", Name: "inline-cache full miss fallthrough",
			Cycles: cycStub, Ratio: float64(cycStub) / float64(cycOrig),
			Note: fmt.Sprintf("unspecialized k=%d through the stub = original result; +%d dispatch cycles",
				missK, cycStub-cycOrig),
		},
	}, nil
}
