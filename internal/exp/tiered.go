package exp

import (
	"context"
	"fmt"
	"math"

	"repro/internal/brew"
	"repro/internal/brewsvc"
	"repro/internal/stencil"
	"repro/internal/vm"
)

// RunTiered is E6: tiered rewriting on the E1 stencil kernel. Tier-0
// (brew.EffortQuick) trades code quality for rewrite latency; hotness-
// driven promotion through the service recovers full-effort steady-state
// performance in the background.
//
// The deterministic rewrite-cost metric is work units: traced original
// instructions plus the optimization pass stack's instruction scans
// (RewriteReport.PassWork) — wall-clock under emulation measures the host
// scheduler, not the rewriter. Steady-state cycles use one protocol for
// every tier: reset matrices, one warm sweep, then o.Iters measured
// sweeps, calling the specialized body directly.
//
//   - E6a: tier-0 rewrite cost (trace only; the pass stack is skipped).
//   - E6b: tier-1 rewrite cost (trace + fixpoint pass sweeps). The
//     acceptance bar is at least 3x the tier-0 cost — equivalently,
//     tier-0 rewrite latency at least 3x below tier-1.
//   - E6c: tier-0 code steady-state sweep cycles.
//   - E6d: tier-1 code steady-state sweep cycles (the E1c pipeline).
//   - E6e: steady-state sweep cycles after hotness-driven promotion
//     (tier-0 installed via the service, profiler-fed hotness crosses
//     Options.PromoteAfter, background worker re-rewrites at EffortFull,
//     specmgr.Repromote hot-swaps). Must equal E6d exactly.
//
// Ratios: E6b is relative to E6a (work units); E6c and E6e are relative
// to E6d (cycles).
func RunTiered(o Options) ([]Row, error) {
	o = o.fill()

	// Steady-state measurement protocol, identical for every tier: the
	// matrices are reset, one unmeasured sweep warms the data cache, and
	// o.Iters sweeps are measured. The checksum after warm+measured
	// sweeps must match the host-computed golden reference.
	steady := func(w *stencil.Workload, kernel uint64) (uint64, error) {
		if err := w.ResetMatrices(); err != nil {
			return 0, err
		}
		if _, err := w.RunSweeps(kernel, false, 1); err != nil {
			return 0, err
		}
		c0 := w.M.Stats.Cycles
		sum, err := w.RunSweeps(kernel, false, o.Iters)
		if err != nil {
			return 0, err
		}
		cycles := w.M.Stats.Cycles - c0
		// Each RunSweeps call restarts from (M1, M2), so the measured
		// checksum is the o.Iters golden value; the warm sweep only
		// touches cache state.
		if want := w.Golden(o.Iters); math.Abs(sum-want) > 1e-9 {
			return 0, fmt.Errorf("steady-state checksum %g, want %g", sum, want)
		}
		return cycles, nil
	}

	// E6a: tier-0 rewrite on a fresh machine.
	wq, err := stencil.New(vm.MustNew(), o.XS, o.YS)
	if err != nil {
		return nil, err
	}
	cfgQ, argsQ := wq.ApplyConfig()
	cfgQ.Effort = brew.EffortQuick
	outQ, err := brew.Do(wq.M, &brew.Request{Config: cfgQ, Fn: wq.Apply, Args: argsQ})
	if err != nil {
		return nil, fmt.Errorf("E6a quick rewrite: %w", err)
	}
	repQ := outQ.Result.Report
	if repQ.PassWork != 0 {
		return nil, fmt.Errorf("E6a: tier-0 ran optimization passes (pass work %d)", repQ.PassWork)
	}
	workQ := uint64(repQ.TracedInstrs + repQ.PassWork)

	// E6b: tier-1 rewrite on a fresh machine.
	wf, err := stencil.New(vm.MustNew(), o.XS, o.YS)
	if err != nil {
		return nil, err
	}
	cfgF, argsF := wf.ApplyConfig()
	outF, err := brew.Do(wf.M, &brew.Request{Config: cfgF, Fn: wf.Apply, Args: argsF})
	if err != nil {
		return nil, fmt.Errorf("E6b full rewrite: %w", err)
	}
	repF := outF.Result.Report
	workF := uint64(repF.TracedInstrs + repF.PassWork)
	if workF < 3*workQ {
		return nil, fmt.Errorf("E6: tier-1 rewrite cost %d work units is not >= 3x tier-0 cost %d",
			workF, workQ)
	}

	// E6c / E6d: steady-state cycles of the two code tiers.
	cycQ, err := steady(wq, outQ.Result.Addr)
	if err != nil {
		return nil, fmt.Errorf("E6c: %w", err)
	}
	cycF, err := steady(wf, outF.Result.Addr)
	if err != nil {
		return nil, fmt.Errorf("E6d: %w", err)
	}

	// E6e: the promotion path. Tier-0 installs through the service, the
	// sampling profiler feeds hotness until the threshold trips, and a
	// background worker hot-swaps the EffortFull body.
	ws, err := stencil.New(vm.MustNew(), o.XS, o.YS)
	if err != nil {
		return nil, err
	}
	const promoteAfter = 32
	svc := brewsvc.Open(ws.M, brewsvc.WithWorkers(2), brewsvc.WithPromotion(promoteAfter))
	defer svc.Close()

	cfgS, argsS := ws.ApplyConfig()
	cfgS.Effort = brew.EffortQuick
	out := svc.Do(&brewsvc.Request{Config: cfgS, Fn: ws.Apply, Args: argsS})
	if out.Degraded {
		return nil, fmt.Errorf("E6e: tier-0 submit degraded: %s (%v)", out.Reason, out.Err)
	}
	if got := out.Entry.Tier(); got != brew.EffortQuick {
		return nil, fmt.Errorf("E6e: installed tier %s, want quick", got)
	}

	// Drive one sweep through the entry's stub with the sampling profiler
	// attached: samples landing in the tier-0 body accumulate hotness.
	prof := vm.NewProfiler(128, nil)
	ws.M.AttachProfiler(prof)
	svc.AttachHotness(prof)
	if err := ws.ResetMatrices(); err != nil {
		return nil, err
	}
	if _, err := ws.RunSweeps(out.Addr, false, 1); err != nil {
		return nil, fmt.Errorf("E6e: hotness-driving sweep: %w", err)
	}
	ws.M.AttachProfiler(nil)
	calls, samples := out.Entry.Hotness()
	if calls+samples < promoteAfter {
		return nil, fmt.Errorf("E6e: hotness %d calls + %d samples below threshold %d after a full sweep",
			calls, samples, promoteAfter)
	}

	batch := svc.PumpPromotions()
	if batch.Len() != 1 {
		return nil, fmt.Errorf("E6e: %d promotions enqueued, want 1", batch.Len())
	}
	pouts, err := batch.AwaitAll(context.Background())
	if err != nil {
		return nil, fmt.Errorf("E6e: %w", err)
	}
	pout := pouts[0]
	if pout.Degraded {
		return nil, fmt.Errorf("E6e: promotion degraded: %s (%v)", pout.Reason, pout.Err)
	}
	if got := out.Entry.Tier(); got != brew.EffortFull {
		return nil, fmt.Errorf("E6e: post-promotion tier %s, want full", got)
	}
	st := svc.Stats()
	if st.TierPromotions != 1 || st.TierDemotions != 0 {
		return nil, fmt.Errorf("E6e: promotion stats %d/%d, want 1/0", st.TierPromotions, st.TierDemotions)
	}

	cycP, err := steady(ws, out.Entry.Result().Addr)
	if err != nil {
		return nil, fmt.Errorf("E6e: %w", err)
	}
	if cycP != cycF {
		return nil, fmt.Errorf("E6e: post-promotion steady state %d cycles != tier-1 direct %d cycles",
			cycP, cycF)
	}

	workRatio := func(c uint64) float64 { return float64(c) / float64(workQ) }
	cycRatio := func(c uint64) float64 { return float64(c) / float64(cycF) }
	return []Row{
		{
			ID: "E6a", Name: "tier-0 (quick) rewrite cost",
			Cycles: workQ, Instrs: uint64(repQ.TracedInstrs), Ratio: 1.0,
			Note: "work units = traced instrs; pass stack skipped",
		},
		{
			ID: "E6b", Name: "tier-1 (full) rewrite cost",
			Cycles: workF, Instrs: uint64(repF.TracedInstrs), Ratio: workRatio(workF),
			Note: fmt.Sprintf("traced + %d pass-scan work units over %d fixpoint sweeps (bar: >= 3x E6a)",
				repF.PassWork, len(repF.OptSweeps)),
		},
		{
			ID: "E6c", Name: "tier-0 code steady state",
			Cycles: cycQ, Ratio: cycRatio(cycQ),
			Note: fmt.Sprintf("%d warm+%d measured sweeps, unoptimized body", 1, o.Iters),
		},
		{
			ID: "E6d", Name: "tier-1 code steady state (E1c pipeline)",
			Cycles: cycF, Ratio: 1.0,
			Note: "same protocol, full-effort body",
		},
		{
			ID: "E6e", Name: "post-promotion steady state",
			Cycles: cycP, Ratio: cycRatio(cycP),
			Note: fmt.Sprintf("hot-swapped after %d calls + %d profiler samples (bar: == E6d exactly)",
				calls, samples),
		},
	}, nil
}
