package exp

import (
	"fmt"
	"sync"

	"repro/internal/brew"
	"repro/internal/brewsvc"
	"repro/internal/stencil"
	"repro/internal/vm"
)

// RunService is E5: amortized specialization cost through the concurrent
// service (internal/brewsvc). The deterministic cost metric is traced
// original instructions per caller — the dominant rewrite cost, and exact
// under emulation (wall-clock would measure the host scheduler).
//
//   - E5a: 64 independent brew.Do calls, each paying a full trace
//     (the pre-service baseline; per-caller cost = one trace).
//   - E5b: a 64-goroutine burst through the service — singleflight
//     coalescing runs exactly one trace, so the per-caller cost is 1/64 of
//     a trace.
//   - E5c: the same burst repeated against the warm cache — zero traces.
//
// The Ratio column is per-caller cost relative to E5a; the service
// acceptance bar is E5b at least 10x below the baseline.
func RunService(o Options) ([]Row, error) {
	o = o.fill()
	const callers = 64

	w, err := stencil.New(vm.MustNew(), o.XS, o.YS)
	if err != nil {
		return nil, err
	}
	m := w.M

	// E5a: independent rewrites, sequential (the RewriteBatch contract
	// forbids concurrent rewrites sharing a machine without the service's
	// coordination; independence is the point of the baseline). Each
	// result is released so the code buffer does not distort later runs.
	var baselineTraced uint64
	for i := 0; i < callers; i++ {
		cfg, args := w.ApplyConfig()
		out, err := brew.Do(m, &brew.Request{Config: cfg, Fn: w.Apply, Args: args})
		if err != nil {
			return nil, fmt.Errorf("E5a caller %d: %w", i, err)
		}
		baselineTraced += uint64(out.Result.TracedInstrs)
		if err := m.FreeJIT(out.Result.Addr); err != nil {
			return nil, fmt.Errorf("E5a caller %d: free: %w", i, err)
		}
	}
	perCallerA := baselineTraced / callers

	// E5b: one concurrent burst through the service. All 64 requests carry
	// the same assumptions, so they coalesce onto a single trace.
	svc := brewsvc.Open(m, brewsvc.WithWorkers(4), brewsvc.WithQueueCap(callers*2))
	defer svc.Close()

	outs := make([]brewsvc.Outcome, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg, args := w.ApplyConfig()
			outs[i] = svc.Do(&brewsvc.Request{Config: cfg, Fn: w.Apply, Args: args})
		}(i)
	}
	wg.Wait()
	for i, out := range outs {
		if out.Degraded {
			return nil, fmt.Errorf("E5b caller %d degraded: %s (%v)", i, out.Reason, out.Err)
		}
	}
	st := svc.Stats()
	if st.Traces != 1 {
		return nil, fmt.Errorf("E5b: %d traces for one coalesced burst, want 1", st.Traces)
	}
	burstTraced := uint64(outs[0].Entry.Result().TracedInstrs)
	perCallerB := burstTraced / callers

	// E5c: the warm-cache burst — every caller hits the shared cache.
	for i := 0; i < callers; i++ {
		cfg, args := w.ApplyConfig()
		out := svc.Do(&brewsvc.Request{Config: cfg, Fn: w.Apply, Args: args})
		if out.Degraded || !out.CacheHit {
			return nil, fmt.Errorf("E5c caller %d: degraded=%v cacheHit=%v", i, out.Degraded, out.CacheHit)
		}
	}
	st2 := svc.Stats()
	if st2.Traces != 1 {
		return nil, fmt.Errorf("E5c: warm burst re-traced (%d traces)", st2.Traces)
	}

	ratio := func(c uint64) float64 { return float64(c) / float64(perCallerA) }
	return []Row{
		{
			ID: "E5a", Name: fmt.Sprintf("%d independent rewrites", callers),
			Cycles: perCallerA, Instrs: baselineTraced, Ratio: 1.0,
			Note: "per-caller traced instrs; full trace each",
		},
		{
			ID: "E5b", Name: fmt.Sprintf("%d-goroutine burst, coalesced", callers),
			Cycles: perCallerB, Instrs: burstTraced, Ratio: ratio(perCallerB),
			Note: fmt.Sprintf("1 trace shared by %d callers (%d coalesce + %d cache hits)",
				callers, st.CoalesceHits, st.CacheHits),
		},
		{
			ID: "E5c", Name: fmt.Sprintf("%d-caller warm-cache burst", callers),
			Cycles: 0, Instrs: 0, Ratio: 0,
			Note: fmt.Sprintf("0 traces; %d cache hits", st2.CacheHits-st.CacheHits),
		},
	}, nil
}
