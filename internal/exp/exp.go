// Package exp drives the reproduction experiments: one entry per
// evaluation result in the paper (E1a..E3b, Section V) plus the ablations
// and use-case studies DESIGN.md defines (X1..X5). cmd/brew-bench and the
// top-level benchmarks are thin wrappers around it.
package exp

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/asm"
	"repro/internal/brew"
	"repro/internal/minc"
	"repro/internal/pgas"
	"repro/internal/profile"
	"repro/internal/stencil"
	"repro/internal/vm"
)

// loadAsm assembles the X3 micro-program and returns its entry.
func loadAsm(m *vm.Machine, src string) (uint64, error) {
	im, err := asm.Load(m, src)
	if err != nil {
		return 0, err
	}
	return im.Entry("sum")
}

// Row is one experiment measurement.
type Row struct {
	ID     string `json:"id"`
	Name   string `json:"name"`
	Cycles uint64 `json:"cycles"`
	Instrs uint64 `json:"instrs,omitempty"`
	// Ratio is Cycles relative to the experiment family's baseline row.
	Ratio float64 `json:"ratio"`
	// PaperRatio is the paper's reported runtime relative to the same
	// baseline (0 when the paper gives no number).
	PaperRatio float64 `json:"paper_ratio,omitempty"`
	Note       string  `json:"note,omitempty"`
}

// Options sizes the workloads. The paper uses 500x500 matrices and 1000
// iterations on real hardware; the emulated default is scaled down while
// keeping every working set relation intact.
type Options struct {
	XS, YS int
	Iters  int

	PgasNodes, PgasBS, PgasMe int
}

// Defaults returns the standard reproduction sizing.
func Defaults() Options {
	return Options{XS: 64, YS: 48, Iters: 3, PgasNodes: 4, PgasBS: 1 << 10, PgasMe: 1}
}

func (o Options) fill() Options {
	d := Defaults()
	if o.XS == 0 {
		o.XS = d.XS
	}
	if o.YS == 0 {
		o.YS = d.YS
	}
	if o.Iters == 0 {
		o.Iters = d.Iters
	}
	if o.PgasNodes == 0 {
		o.PgasNodes = d.PgasNodes
	}
	if o.PgasBS == 0 {
		o.PgasBS = d.PgasBS
	}
	if o.PgasMe == 0 {
		o.PgasMe = d.PgasMe
	}
	return o
}

// measure runs f on a fresh stencil workload and returns the consumed
// cycles/instructions plus the checksum for validation.
func measureStencil(o Options, f func(w *stencil.Workload) (float64, error)) (Row, float64, error) {
	w, err := stencil.New(vm.MustNew(), o.XS, o.YS)
	if err != nil {
		return Row{}, 0, err
	}
	c0, i0 := w.M.Stats.Cycles, w.M.Stats.Instructions
	sum, err := f(w)
	if err != nil {
		return Row{}, 0, err
	}
	return Row{
		Cycles: w.M.Stats.Cycles - c0,
		Instrs: w.M.Stats.Instructions - i0,
	}, sum, nil
}

// RunStencil reproduces the paper's Section V measurements.
func RunStencil(o Options) ([]Row, error) {
	o = o.fill()
	type entry struct {
		id, name   string
		paperRatio float64
		note       string
		run        func(w *stencil.Workload) (float64, error)
	}
	entries := []entry{
		{"E1a", "generic apply via fn ptr", 1.00, "paper: 2.00 s", func(w *stencil.Workload) (float64, error) {
			return w.RunSweeps(w.Apply, false, o.Iters)
		}},
		{"E1b", "manual kernel via fn ptr", 0.37, "paper: 0.74 s", func(w *stencil.Workload) (float64, error) {
			return w.RunSweeps(w.ApplyManual, false, o.Iters)
		}},
		{"E1c", "BREW-rewritten apply", 0.44, "paper: 0.88 s", func(w *stencil.Workload) (float64, error) {
			res, err := w.RewriteApply()
			if err != nil {
				return 0, err
			}
			return w.RunSweeps(res.Addr, false, o.Iters)
		}},
		{"E2a", "grouped generic apply", 1.10, "paper: 2.21 s", func(w *stencil.Workload) (float64, error) {
			return w.RunSweeps(w.ApplyGrouped, true, o.Iters)
		}},
		{"E2b", "BREW-rewritten grouped", 0.37, "paper: 0.74 s", func(w *stencil.Workload) (float64, error) {
			res, err := w.RewriteApplyGrouped()
			if err != nil {
				return 0, err
			}
			return w.RunSweeps(res.Addr, true, o.Iters)
		}},
		{"E3a", "manual, same compilation unit", 0.24, "paper: 0.48 s", func(w *stencil.Workload) (float64, error) {
			return w.RunSweepsInlined(w.SweepInlined, o.Iters)
		}},
		{"E3b", "BREW-rewritten whole sweep", 0, "paper projects ~E3a", func(w *stencil.Workload) (float64, error) {
			res, err := w.RewriteSweep()
			if err != nil {
				return 0, err
			}
			return w.RunRewrittenSweeps(res.Addr, o.Iters)
		}},
	}
	var rows []Row
	var golden float64
	var base uint64
	for i, e := range entries {
		row, sum, err := measureStencil(o, e.run)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", e.id, err)
		}
		if i == 0 {
			golden = sum
			base = row.Cycles
		} else if math.Abs(sum-golden) > 1e-6 {
			return nil, fmt.Errorf("%s: checksum %g deviates from generic %g", e.id, sum, golden)
		}
		row.ID, row.Name, row.PaperRatio, row.Note = e.id, e.name, e.paperRatio, e.note
		row.Ratio = float64(row.Cycles) / float64(base)
		rows = append(rows, row)
	}
	return rows, nil
}

// RunUnrolling is ablation X1: loop-unrolling policy on the generic apply
// kernel (full unroll vs forced-unknown branches, Section III.F/V.C).
func RunUnrolling(o Options) ([]Row, error) {
	o = o.fill()
	variants := []struct {
		id, name string
		opts     brew.FuncOpts
	}{
		{"X1-full", "specialize, full unroll (default)", brew.FuncOpts{}},
		{"X1-nounroll", "specialize, branches+results unknown", brew.FuncOpts{BranchesUnknown: true, ResultsUnknown: true}},
	}
	var rows []Row
	var base uint64
	for i, v := range variants {
		w, err := stencil.New(vm.MustNew(), o.XS, o.YS)
		if err != nil {
			return nil, err
		}
		cfg := brew.NewConfig().
			SetParam(2, brew.ParamKnown).
			SetParamPtrToKnown(3, stencil.StructSSize)
		cfg.SetFuncOpts(w.Apply, v.opts)
		out, err := brew.Do(w.M, &brew.Request{
			Config: cfg, Fn: w.Apply, Args: []uint64{0, uint64(w.XS), w.S5},
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", v.id, err)
		}
		res := out.Result
		c0 := w.M.Stats.Cycles
		if _, err := w.RunSweeps(res.Addr, false, o.Iters); err != nil {
			return nil, err
		}
		row := Row{
			ID:     v.id,
			Name:   v.name,
			Cycles: w.M.Stats.Cycles - c0,
			Note:   fmt.Sprintf("%d bytes, %d blocks", res.CodeSize, res.Blocks),
		}
		if i == 0 {
			base = row.Cycles
		}
		row.Ratio = float64(row.Cycles) / float64(base)
		rows = append(rows, row)
	}
	return rows, nil
}

const chainSrc = `
double leaf(double x, double y) { return x * y + 1.0; }
double mid(double x, double y) { return leaf(x, y) + leaf(y, x); }
double chain(double *a, long n) {
    double s = 0.0;
    for (long i = 0; i < n; i++) {
        s += mid(a[i], s);
    }
    return s;
}
`

// RunInlining is ablation X2: kept calls vs inlining (+ renaming) on a
// small-function call chain (Sections IV and VIII).
func RunInlining(o Options) ([]Row, error) {
	o = o.fill()
	const n = 512
	build := func() (*vm.Machine, *minc.Linked, uint64, error) {
		m := vm.MustNew()
		l, err := minc.CompileAndLink(m, chainSrc, nil)
		if err != nil {
			return nil, nil, 0, err
		}
		arr, err := m.AllocHeap(n * 8)
		if err != nil {
			return nil, nil, 0, err
		}
		for i := 0; i < n; i++ {
			if err := m.Mem.WriteF64(arr+uint64(8*i), float64(i%7)*0.25); err != nil {
				return nil, nil, 0, err
			}
		}
		return m, l, arr, nil
	}
	type variant struct {
		id, name string
		rewrite  bool
		noInline bool
	}
	variants := []variant{
		{"X2-orig", "original call chain", false, false},
		{"X2-keep", "rewritten, calls kept (NoInline)", true, true},
		{"X2-inline", "rewritten, calls inlined + renamed", true, false},
	}
	var rows []Row
	var base uint64
	var golden float64
	for i, v := range variants {
		m, l, arr, err := build()
		if err != nil {
			return nil, err
		}
		fn, _ := l.FuncAddr("chain")
		mid, _ := l.FuncAddr("mid")
		leaf, _ := l.FuncAddr("leaf")
		entry := fn
		if v.rewrite {
			cfg := brew.NewConfig()
			cfg.SetFuncOpts(fn, brew.FuncOpts{BranchesUnknown: true, ResultsUnknown: true})
			if v.noInline {
				cfg.SetFuncOpts(mid, brew.FuncOpts{NoInline: true})
				cfg.SetFuncOpts(leaf, brew.FuncOpts{NoInline: true})
			}
			out, err := brew.Do(m, &brew.Request{Config: cfg, Fn: fn})
			if err != nil {
				return nil, fmt.Errorf("%s: %w", v.id, err)
			}
			entry = out.Addr
		}
		c0 := m.Stats.Cycles
		sum, err := m.CallFloat(entry, []uint64{arr, n}, nil)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			golden = sum
		} else if math.Abs(sum-golden) > 1e-9 {
			return nil, fmt.Errorf("%s: checksum %g != %g", v.id, sum, golden)
		}
		row := Row{ID: v.id, Name: v.name, Cycles: m.Stats.Cycles - c0}
		if i == 0 {
			base = row.Cycles
		}
		row.Ratio = float64(row.Cycles) / float64(base)
		rows = append(rows, row)
	}
	return rows, nil
}

// RunVariants is ablation X3: the per-address variant threshold and
// known-world-state migration (Section III.F). A loop whose body keeps a
// known value that changes every iteration explodes into per-iteration
// variants until the threshold forces migration to a generalized state.
func RunVariants(o Options) ([]Row, error) {
	o = o.fill()
	const src = `
sum:
    movi r0, 0
    movi r3, 0      ; known counter that diverges per iteration
loop:
    add  r0, r1
    addi r3, 1
    subi r1, 1
    jne  loop
    ret
`
	var rows []Row
	for _, thr := range []int{2, 4, 64} {
		m := vm.MustNew()
		im, err := loadAsm(m, src)
		if err != nil {
			return nil, err
		}
		fn := im
		cfg := brew.NewConfig()
		cfg.MaxVariantsPerAddr = thr
		cfg.SetFuncOpts(fn, brew.FuncOpts{BranchesUnknown: true})
		out, err := brew.Do(m, &brew.Request{Config: cfg, Fn: fn})
		if err != nil {
			return nil, fmt.Errorf("threshold %d: %w", thr, err)
		}
		got, err := m.Call(out.Addr, 100)
		if err != nil || got != 5050 {
			return nil, fmt.Errorf("threshold %d: sum=%d err=%v", thr, got, err)
		}
		rows = append(rows, Row{
			ID:     fmt.Sprintf("X3-t%d", thr),
			Name:   fmt.Sprintf("variant threshold %d", thr),
			Cycles: uint64(out.Result.CodeSize),
			Note:   fmt.Sprintf("%d blocks, %d bytes", out.Result.Blocks, out.Result.CodeSize),
		})
	}
	return rows, nil
}

// RunGuarded is ablation X4: value-profile-guided guarded specialization
// (Section III.D).
func RunGuarded(o Options) ([]Row, error) {
	o = o.fill()
	const src = `
long poly(long x, long k) {
    long r = 1;
    for (long i = 0; i < k; i++) { r = r * x + i; }
    return r;
}
long driver(long n, long hot) {
    long acc = 0;
    for (long j = 0; j < n; j++) { acc += poly(j, hot); }
    return acc;
}
`
	m := vm.MustNew()
	l, err := minc.CompileAndLink(m, src, nil)
	if err != nil {
		return nil, err
	}
	poly, _ := l.FuncAddr("poly")

	// Profile.
	col := profile.NewCollector(m, 64)
	prof := col.Watch(poly, 2)
	driver, _ := l.FuncAddr("driver")
	if _, err := m.Call(driver, 64, 12); err != nil {
		return nil, err
	}
	col.Detach()
	hot, frac := prof.Hot(2)
	if frac < 0.9 {
		return nil, fmt.Errorf("profile unstable: %v %f", hot, frac)
	}
	gout, err := brew.Do(m, &brew.Request{
		Config: brew.NewConfig(), Fn: poly,
		Guards: []brew.ParamGuard{{Param: 2, Value: hot.Value}},
	})
	if err != nil {
		return nil, err
	}
	g := gout.Guarded

	run := func(fn uint64, k uint64) (uint64, error) {
		c0 := m.Stats.Cycles
		for x := uint64(0); x < 64; x++ {
			var err error
			if fn == g.Addr {
				// Dispatcher calls go through GuardedResult.Call so guard
				// hit/miss telemetry is recorded.
				_, err = g.Call(m, x, k)
			} else {
				_, err = m.Call(fn, x, k)
			}
			if err != nil {
				return 0, err
			}
		}
		return m.Stats.Cycles - c0, nil
	}
	orig, err := run(poly, hot.Value)
	if err != nil {
		return nil, err
	}
	hotC, err := run(g.Addr, hot.Value)
	if err != nil {
		return nil, err
	}
	coldC, err := run(g.Addr, hot.Value+1)
	if err != nil {
		return nil, err
	}
	return []Row{
		{ID: "X4-orig", Name: "original poly(x, k)", Cycles: orig, Ratio: 1,
			Note: fmt.Sprintf("profiled hot k=%d (%.0f%%)", hot.Value, frac*100)},
		{ID: "X4-hot", Name: "guarded, hot path (k matches)", Cycles: hotC,
			Ratio: float64(hotC) / float64(orig)},
		{ID: "X4-cold", Name: "guarded, cold path (fallback)", Cycles: coldC,
			Ratio: float64(coldC) / float64(orig), Note: "guard + original"},
	}, nil
}

// RunVectorize is extension X6: the paper's planned greedy vectorization
// pass (Sections IV / V.B) on a fully unrolled reduction.
func RunVectorize(o Options) ([]Row, error) {
	o = o.fill()
	const n = 256
	const src = `
double vsum(double *a, long n) {
    double s = 0.0;
    for (long i = 0; i < n; i++) { s += a[i]; }
    return s;
}
`
	build := func(vectorize bool) (uint64, *vm.Machine, uint64, error) {
		m := vm.MustNew()
		l, err := minc.CompileAndLink(m, src, nil)
		if err != nil {
			return 0, nil, 0, err
		}
		arr, err := m.AllocHeap(n * 8)
		if err != nil {
			return 0, nil, 0, err
		}
		for i := 0; i < n; i++ {
			if err := m.Mem.WriteF64(arr+uint64(8*i), float64(i%9)*0.5); err != nil {
				return 0, nil, 0, err
			}
		}
		fn, _ := l.FuncAddr("vsum")
		cfg := brew.NewConfig().SetParam(2, brew.ParamKnown)
		cfg.MaxCodeBytes = 1 << 20
		cfg.Vectorize = vectorize
		out, err := brew.Do(m, &brew.Request{Config: cfg, Fn: fn, Args: []uint64{0, n}})
		if err != nil {
			return 0, nil, 0, err
		}
		return out.Addr, m, arr, nil
	}
	var rows []Row
	var base uint64
	var golden float64
	for i, v := range []struct {
		id, name  string
		vectorize bool
	}{
		{"X6-scalar", "unrolled reduction, scalar", false},
		{"X6-vector", "unrolled reduction, vectorized", true},
	} {
		fn, m, arr, err := build(v.vectorize)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", v.id, err)
		}
		// Warm the cache so the measurement compares compute, not the
		// shared cold-miss cost.
		if _, err := m.CallFloat(fn, []uint64{arr, n}, nil); err != nil {
			return nil, err
		}
		c0 := m.Stats.Cycles
		sum, err := m.CallFloat(fn, []uint64{arr, n}, nil)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			golden = sum
		} else if math.Abs(sum-golden) > 1e-9 {
			return nil, fmt.Errorf("%s: checksum %g != %g", v.id, sum, golden)
		}
		row := Row{ID: v.id, Name: v.name, Cycles: m.Stats.Cycles - c0}
		if i == 0 {
			base = row.Cycles
		}
		row.Ratio = float64(row.Cycles) / float64(base)
		if v.vectorize {
			row.Note = "reassociates FP adds (opt-in)"
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RunCacheSweep is ablation X7: the working-set sensitivity the paper's
// Section V notes in passing ("the space traversed for the 2 matrices is
// 4 MB, fitting into L3"). With repeated sweeps, grids whose two matrices
// fit in a cache level re-hit it and the computation is compute-bound —
// specialization pays fully. Past L3 capacity every sweep re-misses and
// the generic/rewritten gap narrows.
func RunCacheSweep(o Options) ([]Row, error) {
	o = o.fill()
	type size struct {
		xs, ys int
		label  string
	}
	sizes := []size{
		{64, 48, "2x24 KiB (fits L2)"},
		{320, 192, "2x480 KiB (fits L3)"},
		{1024, 512, "2x4 MiB (exceeds L3)"},
	}
	var rows []Row
	for _, sz := range sizes {
		w, err := stencil.New(vm.MustNew(), sz.xs, sz.ys)
		if err != nil {
			return nil, err
		}
		res, err := w.RewriteApply()
		if err != nil {
			return nil, err
		}
		points := uint64((sz.xs - 2) * (sz.ys - 2) * 2)
		measure := func(kernel uint64) (uint64, error) {
			// Warm pass, then measure two sweeps: capacity misses (not
			// cold misses) dominate the steady state.
			if _, err := w.RunSweeps(kernel, false, 1); err != nil {
				return 0, err
			}
			c0 := w.M.Stats.Cycles
			if _, err := w.RunSweeps(kernel, false, 2); err != nil {
				return 0, err
			}
			return w.M.Stats.Cycles - c0, nil
		}
		gen, err := measure(w.Apply)
		if err != nil {
			return nil, err
		}
		spec, err := measure(res.Addr)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Row{
			ID:     fmt.Sprintf("X7-%dx%d", sz.xs, sz.ys),
			Name:   sz.label,
			Cycles: spec / points,
			Ratio:  float64(spec) / float64(gen),
			Note: fmt.Sprintf("generic %d cyc/pt, rewritten %d cyc/pt",
				gen/points, spec/points),
		})
	}
	return rows, nil
}

// RunPgas is use case X5 (Sections V and VIII).
func RunPgas(o Options) ([]Row, error) {
	o = o.fill()
	newSys := func() (*pgas.System, error) {
		s, err := pgas.New(vm.MustNew(), o.PgasNodes, o.PgasBS, o.PgasMe)
		if err != nil {
			return nil, err
		}
		return s, s.Fill(func(i int) float64 { return float64(i%17) * 0.25 })
	}
	localLo, localHi := o.PgasMe*o.PgasBS, (o.PgasMe+1)*o.PgasBS
	remoteLo := ((o.PgasMe + 1) % o.PgasNodes) * o.PgasBS
	remoteHi := remoteLo + o.PgasBS

	var rows []Row
	add := func(id, name, note string, cycles uint64) {
		rows = append(rows, Row{ID: id, Name: name, Cycles: cycles, Note: note})
	}

	// Local range.
	s, err := newSys()
	if err != nil {
		return nil, err
	}
	golden, err := s.Golden(localLo, localHi)
	if err != nil {
		return nil, err
	}
	c0 := s.M.Stats.Cycles
	got, err := s.Sum(localLo, localHi)
	if err != nil {
		return nil, err
	}
	if math.Abs(got-golden) > 1e-9 {
		return nil, fmt.Errorf("pgas local generic checksum")
	}
	add("X5-loc-gen", "local range, generic operator[]", "per-element translation + check", s.M.Stats.Cycles-c0)
	localGen := rows[len(rows)-1].Cycles

	res, err := s.SpecializeSum()
	if err != nil {
		return nil, err
	}
	c0 = s.M.Stats.Cycles
	got, err = s.SumWith(res.Addr, s.PgasGet, localLo, localHi)
	if err != nil {
		return nil, err
	}
	if math.Abs(got-golden) > 1e-9 {
		return nil, fmt.Errorf("pgas local specialized checksum")
	}
	add("X5-loc-spec", "local range, BREW-specialized", "descriptor folded, idiv strength-reduced", s.M.Stats.Cycles-c0)

	// Remote range.
	s, err = newSys()
	if err != nil {
		return nil, err
	}
	golden, err = s.Golden(remoteLo, remoteHi)
	if err != nil {
		return nil, err
	}
	c0 = s.M.Stats.Cycles
	got, err = s.Sum(remoteLo, remoteHi)
	if err != nil {
		return nil, err
	}
	if math.Abs(got-golden) > 1e-9 {
		return nil, fmt.Errorf("pgas remote generic checksum")
	}
	add("X5-rem-gen", "remote range, generic operator[]", "fine-grained RDMA per element", s.M.Stats.Cycles-c0)

	c0 = s.M.Stats.Cycles
	if err := s.Preload(remoteLo, remoteHi); err != nil {
		return nil, err
	}
	res, err = s.SpecializeSumPrefetched()
	if err != nil {
		return nil, err
	}
	got, err = s.SumWith(res.Addr, s.PgasGetPref, remoteLo, remoteHi)
	if err != nil {
		return nil, err
	}
	if math.Abs(got-golden) > 1e-9 {
		return nil, fmt.Errorf("pgas prefetch checksum")
	}
	add("X5-rem-pref", "remote range, preload + respecialize", "bulk RDMA + local buffer redirect (incl. transfer)", s.M.Stats.Cycles-c0)

	for i := range rows {
		base := localGen
		if strings.HasPrefix(rows[i].ID, "X5-rem") {
			base = rows[2].Cycles
		}
		rows[i].Ratio = float64(rows[i].Cycles) / float64(base)
	}
	return rows, nil
}

// FormatTable renders rows as an aligned text table.
func FormatTable(title string, rows []Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	fmt.Fprintf(&sb, "%-12s %-42s %14s %10s %10s  %s\n", "id", "variant", "cycles", "ratio", "paper", "note")
	for _, r := range rows {
		paper := "-"
		if r.PaperRatio > 0 {
			paper = fmt.Sprintf("%.2f", r.PaperRatio)
		}
		fmt.Fprintf(&sb, "%-12s %-42s %14d %10.2f %10s  %s\n",
			r.ID, r.Name, r.Cycles, r.Ratio, paper, r.Note)
	}
	return sb.String()
}
