package exp

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/brew"
	"repro/internal/brewsvc"
	"repro/internal/obs"
	"repro/internal/stencil"
	"repro/internal/vm"
)

// RunObservability is E8: the cost of the request-lifecycle tracer and
// flight recorder, plus the trace-reconstruction acceptance scenario.
//
// Observation instruments only the host-side service control plane
// (submit, queue, rewrite, install, promotion), never the emulated data
// plane, so the family measures the cost at three distinct points:
//
//   - E8a/E8b: the E1c steady state in wall-clock nanoseconds — the
//     specialized stencil sweep, minimum over several interleaved
//     repetitions, with observation disabled (E8a) and fully enabled
//     (E8b). No span fires inside the sweep, so this is the acceptance
//     bar from the issue: enabled within 2% of disabled
//     (scripts/checkjson allows an absolute noise floor on top). E8a
//     additionally asserts the disabled-path primitives (StartTrace,
//     Now, EndSpan, Emit) allocate nothing.
//   - E8c/E8d: the same steady-state runs in deterministic emulated
//     cycles, so the bar is exact equality: tracing must cost the data
//     plane zero cycles, not merely under 2%.
//   - E8f/E8g: the submit path itself — a calibrated batch of cache-hit
//     submissions (config fingerprint + cache lookup + ticket), where
//     every operation starts a trace and ends two spans. These rows are
//     the honest per-request price of full tracing (the note carries the
//     ns/submit overhead); the cache-hit fast path is ~1-2µs, so two
//     recorded spans show up as a real double-digit percentage there.
//   - E8e: the coalesced-burst lifecycle. 64 concurrent callers coalesce
//     onto one flight; the tier-0 result is driven hot and promoted. The
//     flight's trace must reconstruct the full lifecycle — its rewrite,
//     install and queue spans, every coalesced caller's join span, and
//     the promotion linked back across the asynchronous boundary. The
//     cycles column is the reconstructed event count.
func RunObservability(o Options) ([]Row, error) {
	o = o.fill()
	obs.Disable()
	obs.Reset()
	defer func() {
		obs.Disable()
		obs.Reset()
	}()

	// E8a's zero-allocation guarantee: with observation disabled, the
	// instrumentation primitives on the submit path must not allocate.
	if allocs := testing.AllocsPerRun(200, func() {
		tid := obs.StartTrace()
		start := obs.Now()
		obs.EndSpan(tid, obs.StageSubmit, obs.TierNone, start, 0x1234, 0)
		obs.Emit(obs.Event{Kind: obs.KindDegrade, Reason: "e8"})
	}); allocs != 0 {
		return nil, fmt.Errorf("E8a: disabled-path primitives allocate %.1f objects/op, want 0", allocs)
	}

	w, err := stencil.New(vm.MustNew(), o.XS, o.YS)
	if err != nil {
		return nil, err
	}
	svc := brewsvc.Open(w.M, brewsvc.WithWorkers(2))
	defer svc.Close()
	cfg0, args0 := w.ApplyConfig()
	out := svc.Do(&brewsvc.Request{Config: cfg0, Fn: w.Apply, Args: args0})
	if out.Degraded {
		return nil, fmt.Errorf("E8: seed submit degraded: %s (%v)", out.Reason, out.Err)
	}

	// One steady-state run: warm sweep, then o.Iters measured sweeps of
	// the specialized code, returning both wall time and emulated cycles
	// for the measured portion.
	steady := func() (time.Duration, uint64, error) {
		if err := w.ResetMatrices(); err != nil {
			return 0, 0, err
		}
		if _, err := w.RunSweeps(out.Addr, false, 1); err != nil {
			return 0, 0, err
		}
		c0 := w.M.Stats.Cycles
		start := time.Now()
		sum, err := w.RunSweeps(out.Addr, false, o.Iters)
		d := time.Since(start)
		if err != nil {
			return 0, 0, err
		}
		if want := w.Golden(o.Iters); math.Abs(sum-want) > 1e-9 {
			return 0, 0, fmt.Errorf("steady-state checksum %g, want %g", sum, want)
		}
		return d, w.M.Stats.Cycles - c0, nil
	}
	// The very first measured run is a few thousand cycles hotter while
	// the dispatch path finishes settling (independent of observation);
	// discard one run so every measured run compares settled state to
	// settled state. Then interleave the two modes — each rep runs a
	// disabled and an enabled steady state back to back, so host drift
	// (GC, scheduler, frequency) hits both sides alike — and keep the
	// minimum wall time per mode.
	const reps = 7
	obs.Disable()
	if _, _, err := steady(); err != nil {
		return nil, fmt.Errorf("E8a settle: %w", err)
	}
	wallDis := time.Duration(math.MaxInt64)
	wallEn := time.Duration(math.MaxInt64)
	var cycDis, cycEn uint64
	for r := 0; r < reps; r++ {
		obs.Disable()
		d, c, err := steady()
		if err != nil {
			return nil, fmt.Errorf("E8a: %w", err)
		}
		if d < wallDis {
			wallDis = d
		}
		if cycDis == 0 {
			cycDis = c
		} else if c != cycDis {
			return nil, fmt.Errorf("E8c: disabled steady state not settled: %d cycles then %d", cycDis, c)
		}
		obs.Enable()
		d, c, err = steady()
		if err != nil {
			return nil, fmt.Errorf("E8b: %w", err)
		}
		if d < wallEn {
			wallEn = d
		}
		if cycEn == 0 {
			cycEn = c
		} else if c != cycEn {
			return nil, fmt.Errorf("E8d: enabled steady state not settled: %d cycles then %d", cycEn, c)
		}
	}
	if cycEn != cycDis {
		return nil, fmt.Errorf("E8d: enabled steady state %d cycles != disabled %d — tracing leaked into the data plane",
			cycEn, cycDis)
	}

	// E8f/E8g: the submit path. One operation builds the config
	// (fingerprinting is part of the path callers pay), submits, and
	// awaits the cache-hit outcome.
	batch := func(n int) (time.Duration, error) {
		start := time.Now()
		for i := 0; i < n; i++ {
			cfg, args := w.ApplyConfig()
			if o := svc.Do(&brewsvc.Request{Config: cfg, Fn: w.Apply, Args: args}); o.Degraded {
				return 0, fmt.Errorf("cache-hit submit degraded: %s (%v)", o.Reason, o.Err)
			}
		}
		return time.Since(start), nil
	}
	// Calibrate the batch so one repetition is comfortably above timer
	// and scheduler noise.
	obs.Disable()
	n := 1 << 10
	for n < 1<<18 {
		d, err := batch(n)
		if err != nil {
			return nil, fmt.Errorf("E8f: %w", err)
		}
		if d >= 10*time.Millisecond {
			break
		}
		n *= 2
	}
	// Warm the enabled path once (the tracer's sample buffers grow on
	// first use), then measure the two modes interleaved, min per mode.
	obs.Enable()
	obs.Reset()
	if _, err := batch(n); err != nil {
		return nil, fmt.Errorf("E8g warmup: %w", err)
	}
	nsDis := time.Duration(math.MaxInt64)
	nsEn := time.Duration(math.MaxInt64)
	for r := 0; r < reps; r++ {
		obs.Disable()
		d, err := batch(n)
		if err != nil {
			return nil, fmt.Errorf("E8f: %w", err)
		}
		if d < nsDis {
			nsDis = d
		}
		obs.Enable()
		d, err = batch(n)
		if err != nil {
			return nil, fmt.Errorf("E8g: %w", err)
		}
		if d < nsEn {
			nsEn = d
		}
	}
	perSubmitNS := (nsEn.Nanoseconds() - nsDis.Nanoseconds()) / int64(n)

	// E8e: the coalesced-burst lifecycle on a fresh service.
	linked, joiners, err := traceReconstruction(o)
	if err != nil {
		return nil, fmt.Errorf("E8e: %w", err)
	}

	return []Row{
		{
			ID: "E8a", Name: "steady state wall, observation disabled",
			Cycles: uint64(wallDis), Ratio: 1.0,
			Note: fmt.Sprintf("wall ns for %d measured sweeps, min of %d reps; disabled primitives allocate 0", o.Iters, reps),
		},
		{
			ID: "E8b", Name: "steady state wall, full tracing enabled",
			Cycles: uint64(wallEn), Ratio: float64(wallEn) / float64(wallDis),
			Note: "same sweeps with tracing live (bar: <= 1.02x E8a, noise floor aside — no span fires in the data plane)",
		},
		{
			ID: "E8c", Name: "steady state cycles, observation disabled",
			Cycles: cycDis, Ratio: 1.0,
			Note: fmt.Sprintf("emulated cycles over the same %d measured sweeps", o.Iters),
		},
		{
			ID: "E8d", Name: "steady state cycles, full tracing enabled",
			Cycles: cycEn, Ratio: float64(cycEn) / float64(cycDis),
			Note: "same protocol (bar: == E8c exactly — zero data-plane cost)",
		},
		{
			ID: "E8e", Name: "coalesced-burst trace reconstruction",
			Cycles: linked, Ratio: 1.0,
			Note: fmt.Sprintf("lifecycle events linked into one flight trace (%d coalesced joiners, promotion linked)", joiners),
		},
		{
			ID: "E8f", Name: "submit path wall, observation disabled",
			Cycles: uint64(nsDis), Ratio: 1.0,
			Note: fmt.Sprintf("wall ns for %d cache-hit submits, min of %d reps", n, reps),
		},
		{
			ID: "E8g", Name: "submit path wall, full tracing enabled",
			Cycles: uint64(nsEn), Ratio: float64(nsEn) / float64(nsDis),
			Note: fmt.Sprintf("same batch; one trace + two recorded spans per submit costs ~%d ns on the ~µs cache-hit fast path (diagnostic)", perSubmitNS),
		},
	}, nil
}

// traceReconstruction runs the E8e scenario: a 64-caller coalesced burst
// at tier-0 followed by a hotness-driven promotion, all under full
// tracing. It returns the number of events the flight's trace links
// together and the coalesced-joiner count, after asserting the lifecycle
// is complete.
func traceReconstruction(o Options) (uint64, uint64, error) {
	obs.Enable()
	obs.Reset()
	w, err := stencil.New(vm.MustNew(), o.XS, o.YS)
	if err != nil {
		return 0, 0, err
	}
	const after = 8
	svc := brewsvc.Open(w.M,
		brewsvc.WithWorkers(1),
		brewsvc.WithQueueCap(128),
		brewsvc.WithPromotion(after))
	defer svc.Close()

	// Deterministic coalescing, independent of scheduler timing: an
	// uncacheable decoy (Inject hook → private flight) blocks inside its
	// rewrite and parks the single worker. The burst creator's flight
	// then waits in the queue — still in the inflight table — while the
	// 63 joiners submit, so every one of them coalesces onto it. Only
	// then is the decoy released.
	const callers = 64
	block := make(chan struct{})
	dcfg, dargs := w.ApplyConfig()
	dcfg.Inject = func(string) error { <-block; return nil }
	decoy := svc.Submit(&brewsvc.Request{Config: dcfg, Fn: w.Apply, Args: dargs})

	cfg0, args0 := w.ApplyConfig()
	cfg0.Effort = brew.EffortQuick
	tickets := make([]*brewsvc.Ticket, callers)
	tickets[0] = svc.Submit(&brewsvc.Request{Config: cfg0, Fn: w.Apply, Args: args0})

	var wg sync.WaitGroup
	for i := 1; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg, args := w.ApplyConfig()
			cfg.Effort = brew.EffortQuick
			tickets[i] = svc.Submit(&brewsvc.Request{Config: cfg, Fn: w.Apply, Args: args})
		}(i)
	}
	wg.Wait()
	close(block)
	if d := decoy.Outcome(); d.Degraded {
		return 0, 0, fmt.Errorf("decoy degraded: %s (%v)", d.Reason, d.Err)
	}
	var out brewsvc.Outcome
	for i, tk := range tickets {
		out = tk.Outcome()
		if out.Degraded {
			return 0, 0, fmt.Errorf("caller %d degraded: %s (%v)", i, out.Reason, out.Err)
		}
	}
	st := svc.Stats()
	if st.Traces != 2 {
		return 0, 0, fmt.Errorf("traces = %d, want 2 (decoy + one coalesced burst)", st.Traces)
	}
	if st.CoalesceHits != callers-1 {
		return 0, 0, fmt.Errorf("%d callers coalesced onto the burst flight, want %d", st.CoalesceHits, callers-1)
	}

	// Drive the tier-0 entry hot and promote it.
	cell := w.M1 + uint64((o.XS+1)*8)
	callArgs := []uint64{cell, uint64(o.XS), w.S5}
	want, err := w.M.CallFloat(w.Apply, callArgs, nil)
	if err != nil {
		return 0, 0, err
	}
	for i := 0; i < after; i++ {
		got, err := out.Entry.CallFloat(callArgs, nil)
		if err != nil {
			return 0, 0, err
		}
		if math.Abs(got-want) > 1e-12 {
			return 0, 0, fmt.Errorf("tier-0 call = %g, want %g", got, want)
		}
	}
	batch := svc.PumpPromotions()
	if batch.Len() != 1 {
		return 0, 0, fmt.Errorf("%d promotions pumped, want 1", batch.Len())
	}
	pouts, err := batch.AwaitAll(context.Background())
	if err != nil {
		return 0, 0, err
	}
	if p := pouts[0]; p.Degraded {
		return 0, 0, fmt.Errorf("promotion degraded: %s (%v)", p.Reason, p.Err)
	}

	var flight obs.TraceID
	for _, e := range obs.Events() {
		if e.Kind == obs.KindSpan && e.Stage == obs.StageRewrite && e.Tier == obs.TierQuick {
			flight = e.Trace
		}
	}
	if flight == 0 {
		return 0, 0, fmt.Errorf("no tier-0 rewrite span recorded")
	}
	evs := obs.TraceEvents(flight)
	count := func(k obs.Kind, s obs.Stage) int {
		c := 0
		for _, e := range evs {
			if e.Kind == k && (k != obs.KindSpan || e.Stage == s) {
				c++
			}
		}
		return c
	}
	if got := count(obs.KindSpan, obs.StageCoalesce); got != int(st.CoalesceHits) {
		return 0, 0, fmt.Errorf("trace links %d coalesce spans, want %d", got, st.CoalesceHits)
	}
	for _, wantSpan := range []obs.Stage{obs.StageQueue, obs.StageRewrite, obs.StageInstall} {
		if got := count(obs.KindSpan, wantSpan); got < 1 {
			return 0, 0, fmt.Errorf("trace has no %s span", wantSpan)
		}
	}
	if count(obs.KindSpan, obs.StagePromotion) != 1 || count(obs.KindPromoteOK, 0) != 1 {
		return 0, 0, fmt.Errorf("promotion is not linked into the flight trace")
	}
	return uint64(len(evs)), st.CoalesceHits, nil
}
