package exp

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/brew"
	"repro/internal/brewsvc"
	"repro/internal/minc"
	"repro/internal/vm"
)

// LoadConfig sizes the E10 service load harness.
type LoadConfig struct {
	// Requests is the total mixed-scenario request count across all
	// phases; the warm serve phase gets whatever the cold/burst/fault/
	// overload phases do not consume.
	Requests int
	// Shards and Workers shape the measured service (brewsvc.WithShards /
	// WithWorkers).
	Shards  int
	Workers int
	// Callers is the number of concurrent submitter goroutines in the
	// burst and warm phases.
	Callers int
	// Keys is the number of distinct specialization keys (functions x
	// guard values) the workload cycles through.
	Keys int
	// Seed varies the warm phase's per-caller key order.
	Seed int64
}

// fillLoad applies the brew-load defaults to unset fields.
func (lc LoadConfig) fill() LoadConfig {
	if lc.Requests == 0 {
		lc.Requests = 20000
	}
	if lc.Shards == 0 {
		lc.Shards = 8
	}
	if lc.Workers == 0 {
		lc.Workers = 2
	}
	if lc.Callers == 0 {
		lc.Callers = 8
	}
	if lc.Keys == 0 {
		lc.Keys = 96
	}
	if lc.Seed == 0 {
		lc.Seed = 1
	}
	return lc
}

// loadKey is one distinct specialization key of the workload: a function
// plus a guard value (the key space is fns x guard values).
type loadKey struct {
	fn  uint64
	fni int
	val uint64
}

func (k loadKey) request(prio brewsvc.Priority) *brewsvc.Request {
	return &brewsvc.Request{
		Config:   brew.NewConfig(),
		Fn:       k.fn,
		Guards:   []brew.ParamGuard{{Param: 2, Value: k.val}},
		Args:     []uint64{0, 0},
		Priority: prio,
	}
}

// loadFleetSrc generates n distinct small functions; distinct function
// addresses mean distinct entry keys, so the service spreads them across
// shards. The loop bound is a fixed constant — NOT the guarded param — so
// every key costs the same trace work regardless of its guard value, and
// the modeled makespan rows measure shard balance, not workload skew.
func loadFleetSrc(n int) string {
	var src strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&src, `
long load%d(long x, long k) {
    long r = %d;
    for (long i = 0; i < 8; i++) { r = r + x + k + i; }
    return r;
}`, i, i+1)
	}
	return src.String()
}

// RunLoadConfig is E10: the sharded-service load harness behind
// cmd/brew-load. It drives a mixed scenario — cold specialization of
// every key, coalesced bursts, fault-injected degradations, a measured
// warm serve phase, and a deterministic admission-control overload phase
// — and reports tail latency, throughput, modeled shard speedup, warm-
// path lock acquisitions, and shed accounting. The harness self-asserts
// its correctness invariants (clean requests never degrade, warm hits
// are cache hits, priority SLOs are honored) and returns an error on any
// violation; scripts/checkjson re-enforces the E10 bars from the JSON.
//
// Throughput note: the host is time-shared and possibly single-core, so
// the scaling row is a deterministic modeled makespan over rewrite work
// units (brew.Result.TracedInstrs, accumulated per shard): E10a is the
// makespan with every trace serialized through one shard's worker pool,
// E10b the max per-shard work with the measured shard count. Their ratio
// is the structural speedup sharding buys — shard count times balance —
// independent of host scheduling noise.
func RunLoadConfig(o Options, lc LoadConfig) ([]Row, error) {
	o = o.fill()
	lc = lc.fill()
	// Shard routing is per entry key — function plus guard param SET, not
	// guard values — so sibling guard values of one function share a shard
	// by design (they share a variant table). Shard balance therefore
	// needs many distinct functions, not just many guard values.
	fleetFns := lc.Keys / 2
	if fleetFns < 12 {
		fleetFns = 12
	}
	if fleetFns > 64 {
		fleetFns = 64
	}
	if lc.Keys < fleetFns {
		lc.Keys = fleetFns
	}

	m := vm.MustNew()
	l, err := minc.CompileAndLink(m, loadFleetSrc(fleetFns), nil)
	if err != nil {
		return nil, fmt.Errorf("E10: fleet compile: %w", err)
	}
	fns := make([]uint64, fleetFns)
	for i := range fns {
		if fns[i], err = l.FuncAddr(fmt.Sprintf("load%d", i)); err != nil {
			return nil, err
		}
	}
	keys := make([]loadKey, lc.Keys)
	for i := range keys {
		keys[i] = loadKey{fn: fns[i%fleetFns], fni: i % fleetFns, val: uint64(3 + i/fleetFns)}
	}

	// Admission control: only the Low class carries an SLO, and the
	// deterministic Inject seam sheds it only while the overload phase
	// arms it — so every other phase is exempt by class and the shed
	// counts are exact, not timing-dependent.
	var overloadArmed atomic.Bool
	svc := brewsvc.Open(m,
		brewsvc.WithShards(lc.Shards),
		brewsvc.WithWorkers(lc.Workers),
		brewsvc.WithQueueCap(256),
		brewsvc.WithCache(8, 64),
		brewsvc.WithAdmission(brewsvc.Admission{
			SLO:    [3]time.Duration{brewsvc.PriorityLow: time.Millisecond},
			Inject: func() bool { return overloadArmed.Load() },
		}))
	defer svc.Close()

	submitted := 0

	// Phase 1 — cold: one batch specializes every key (one queue
	// transaction per shard). Nothing may degrade; every key traces once.
	coldReqs := make([]*brewsvc.Request, len(keys))
	for i, k := range keys {
		coldReqs[i] = k.request(brewsvc.PriorityNormal)
	}
	coldOuts := make([]brewsvc.Outcome, len(keys))
	for i, tk := range svc.SubmitBatch(coldReqs) {
		coldOuts[i] = tk.Outcome()
		if coldOuts[i].Degraded {
			return nil, fmt.Errorf("E10 cold: key %d degraded: %s (%v)",
				i, coldOuts[i].Reason, coldOuts[i].Err)
		}
	}
	submitted += len(keys)
	if st := svc.Stats(); st.Traces != uint64(len(keys)) {
		return nil, fmt.Errorf("E10 cold: %d traces for %d keys", st.Traces, len(keys))
	}

	// Correctness probe (machine idle, no flights in flight): specialized
	// code must compute the reference result.
	for _, i := range []int{0, len(keys) / 2, len(keys) - 1} {
		k := keys[i]
		got, cerr := m.Call(coldOuts[i].Addr, 7, k.val)
		if cerr != nil {
			return nil, fmt.Errorf("E10 probe key %d: %w", i, cerr)
		}
		// r = fni+1, then 8 iterations of r += x + k + j (j = 0..7).
		want := uint64(k.fni+1) + 8*7 + 8*k.val + 28
		if got != want {
			return nil, fmt.Errorf("E10 probe key %d: got %d, want %d", i, got, want)
		}
	}

	// Phase 2 — coalesced bursts: fresh keys, Callers concurrent
	// submitters per key; each burst runs exactly one trace.
	const burstRounds = 4
	tracesBefore := svc.Stats().Traces
	for r := 0; r < burstRounds; r++ {
		bk := loadKey{fn: fns[r%fleetFns], fni: r % fleetFns, val: uint64(1000 + r)}
		tks := make([]*brewsvc.Ticket, lc.Callers)
		var wg sync.WaitGroup
		for c := 0; c < lc.Callers; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				prio := brewsvc.PriorityNormal
				if c%2 == 1 {
					prio = brewsvc.PriorityHigh
				}
				tks[c] = svc.Submit(bk.request(prio))
			}(c)
		}
		wg.Wait()
		for c, tk := range tks {
			if out := tk.Outcome(); out.Degraded {
				return nil, fmt.Errorf("E10 burst %d caller %d degraded: %s (%v)", r, c, out.Reason, out.Err)
			}
		}
		submitted += lc.Callers
	}
	if got := svc.Stats().Traces - tracesBefore; got != burstRounds {
		return nil, fmt.Errorf("E10 burst: %d traces across %d bursts, want one each", got, burstRounds)
	}

	// Phase 3 — fault storm: injected faults degrade only their own
	// (uncacheable) requests; the service stays healthy.
	const faulty = 32
	stormErr := errors.New("injected load-harness fault")
	for i := 0; i < faulty; i++ {
		cfg := brew.NewConfig()
		cfg.Inject = func(site string) error { return stormErr }
		out := svc.Do(&brewsvc.Request{Config: cfg, Fn: fns[i%fleetFns], Args: []uint64{1, 4}})
		if !out.Degraded {
			return nil, fmt.Errorf("E10 fault %d: injected fault did not degrade", i)
		}
	}
	submitted += faulty

	// Phase 4 — warm serve (the measured phase). Quiesce first so worker
	// wind-down lock traffic cannot be attributed to the serve path.
	const overloadLow, overloadHigh = 64, 16
	warmN := lc.Requests - submitted - overloadLow - overloadHigh
	if min := lc.Callers * 10; warmN < min {
		warmN = min
	}
	time.Sleep(200 * time.Millisecond)
	locksBefore, lockstat := brewsvc.LockAcquisitions()

	perCaller := warmN / lc.Callers
	warmN = perCaller * lc.Callers
	lats := make([][]int64, lc.Callers)
	warmErrs := make([]error, lc.Callers)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < lc.Callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(lc.Seed + int64(c)))
			my := make([]int64, perCaller)
			for i := 0; i < perCaller; i++ {
				k := keys[rng.Intn(len(keys))]
				prio := brewsvc.PriorityNormal
				if i%4 == 3 {
					prio = brewsvc.PriorityHigh
				}
				t0 := time.Now()
				out := svc.Do(k.request(prio))
				my[i] = time.Since(t0).Nanoseconds()
				if out.Degraded {
					warmErrs[c] = fmt.Errorf("caller %d op %d degraded: %s (%v)", c, i, out.Reason, out.Err)
					return
				}
				if !out.CacheHit {
					warmErrs[c] = fmt.Errorf("caller %d op %d missed the cache", c, i)
					return
				}
			}
			lats[c] = my
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, werr := range warmErrs {
		if werr != nil {
			return nil, fmt.Errorf("E10 warm: %w", werr)
		}
	}
	submitted += warmN
	locksAfter, _ := brewsvc.LockAcquisitions()
	lockDelta := locksAfter - locksBefore
	if lockstat && lockDelta != 0 {
		return nil, fmt.Errorf("E10 warm: serve path acquired %d service locks over %d hits, want 0",
			lockDelta, warmN)
	}

	all := make([]int64, 0, warmN)
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) uint64 {
		i := int(p * float64(len(all)))
		if i >= len(all) {
			i = len(all) - 1
		}
		return uint64(all[i])
	}
	p50, p99, p999 := pct(0.50), pct(0.99), pct(0.999)
	rps := float64(warmN) / elapsed.Seconds()

	// Phase 5 — overload: the armed admission seam sheds every Low-class
	// arrival; High-class requests (fresh keys, real traces) ride through
	// untouched. Counts are exact by construction.
	shedsBefore := svc.Stats().Sheds
	overloadArmed.Store(true)
	for i := 0; i < overloadLow; i++ {
		k := loadKey{fn: fns[i%fleetFns], fni: i % fleetFns, val: uint64(2000 + i)}
		out := svc.Do(k.request(brewsvc.PriorityLow))
		if !out.Degraded || !errors.Is(out.Err, brewsvc.ErrOverload) {
			return nil, fmt.Errorf("E10 overload: low-priority request %d not shed (degraded=%v err=%v)",
				i, out.Degraded, out.Err)
		}
	}
	highTks := make([]*brewsvc.Ticket, overloadHigh)
	for i := range highTks {
		k := loadKey{fn: fns[i%fleetFns], fni: i % fleetFns, val: uint64(3000 + i)}
		highTks[i] = svc.Submit(k.request(brewsvc.PriorityHigh))
	}
	for i, tk := range highTks {
		if out := tk.Outcome(); out.Degraded {
			return nil, fmt.Errorf("E10 overload: high-priority request %d degraded: %s (%v)",
				i, out.Reason, out.Err)
		}
	}
	overloadArmed.Store(false)
	submitted += overloadLow + overloadHigh

	st := svc.Stats()
	lowSheds := st.Sheds[brewsvc.PriorityLow] - shedsBefore[brewsvc.PriorityLow]
	highSheds := st.Sheds[brewsvc.PriorityHigh] - shedsBefore[brewsvc.PriorityHigh]
	if lowSheds != overloadLow {
		return nil, fmt.Errorf("E10 overload: %d low-class sheds, want %d", lowSheds, overloadLow)
	}
	if highSheds != 0 {
		return nil, fmt.Errorf("E10 overload: %d high-class sheds, want 0 (SLO-exempt)", highSheds)
	}
	if st.Submitted != uint64(submitted) {
		return nil, fmt.Errorf("E10: service counted %d submissions, harness drove %d", st.Submitted, submitted)
	}

	// Modeled makespan: total rewrite work serialized through one shard's
	// worker pool vs the hottest shard's share at the measured shard
	// count. Work units are deterministic (traced instructions), so the
	// ratio is shard count x balance, free of host scheduling noise.
	per := svc.ShardStats()
	var totalWork, maxWork uint64
	for _, s := range per {
		totalWork += s.TraceWork
		if s.TraceWork > maxWork {
			maxWork = s.TraceWork
		}
	}
	if totalWork == 0 || maxWork == 0 {
		return nil, fmt.Errorf("E10: no trace work recorded")
	}
	workers := uint64(lc.Workers)
	mk1 := totalWork / workers
	mkN := maxWork / workers
	speedup := float64(mk1) / float64(mkN)

	lockNote := "lock accounting disabled (build with -tags brewsvc_lockstat to count)"
	if lockstat {
		lockNote = fmt.Sprintf("counted mutex armed; %d warm hits took 0 service locks", warmN)
	}
	return []Row{
		{
			ID: "E10a", Name: "modeled makespan, 1 shard",
			Cycles: mk1, Ratio: speedup,
			Note: fmt.Sprintf("all %d work units through one %d-worker pool (bar: >= 4x E10b at 8 shards)",
				totalWork, lc.Workers),
		},
		{
			ID: "E10b", Name: fmt.Sprintf("modeled makespan, %d shards", lc.Shards),
			Cycles: mkN, Ratio: 1.0,
			Note: fmt.Sprintf("hottest shard holds %d of %d work units (%.1fx structural speedup)",
				maxWork, totalWork, speedup),
		},
		{
			ID: "E10c", Name: "warm serve p50 latency",
			Cycles: p50, Ratio: 1.0,
			Note: fmt.Sprintf("ns/request over %d cache-hit requests from %d callers", warmN, lc.Callers),
		},
		{
			ID: "E10d", Name: "warm serve p99 latency",
			Cycles: p99, Ratio: float64(p99) / float64(p50),
			Note: "ns/request",
		},
		{
			ID: "E10e", Name: "warm serve p999 latency",
			Cycles: p999, Ratio: float64(p999) / float64(p50),
			Note: "ns/request (bar: <= 25ms)",
		},
		{
			ID: "E10f", Name: "warm serve lock acquisitions",
			Cycles: lockDelta, Ratio: 0,
			Note: lockNote,
		},
		{
			ID: "E10g", Name: "high-priority overload sheds",
			Cycles: highSheds, Ratio: 0,
			Note: fmt.Sprintf("bar: 0; %d low-priority arrivals shed by the armed admission seam", lowSheds),
		},
		{
			ID: "E10h", Name: "warm serve throughput",
			Cycles: uint64(rps), Ratio: 0,
			Note: fmt.Sprintf("requests/s: %d warm requests in %v", warmN, elapsed.Round(time.Millisecond)),
		},
	}, nil
}

// RunLoad is the brew-bench entry for the E10 family: the full harness
// at a smoke-sized request count (cmd/brew-load drives the >= 1M-request
// version with flag control).
func RunLoad(o Options) ([]Row, error) {
	return RunLoadConfig(o, LoadConfig{})
}
