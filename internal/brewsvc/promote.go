package brewsvc

import (
	"repro/internal/brew"
	"repro/internal/specmgr"
	"repro/internal/vm"
)

// Tiered promotion: a cacheable tier-0 (brew.EffortQuick) specialization
// installs immediately, then accumulates hotness — managed calls counted
// by the specmgr entry's cheap stub-side counter plus sampling-profiler
// hits landing in its code (NoteSample / AttachHotness). Once the
// combined count reaches Options.PromoteAfter, the entry is due: the next
// pump point (a Submit admission, or an explicit PumpPromotions call)
// enqueues a low-priority background flight that re-rewrites the function
// at brew.EffortFull and hot-swaps the optimized body through
// specmgr.Repromote. Cold functions never pay the optimization pass
// stack; hot functions converge to full-effort steady-state code.
//
// Promotion flights ride the ordinary worker pool and queue, so they
// obey the same contract as every rewrite: the machine must not execute
// emulated code while they are in flight. Hotness accumulation itself is
// execution-side and lock-cheap by design; the slow rewrite is only ever
// started from a pump point.

// hotTrack is the service-side record of one promotable tier-0 entry.
type hotTrack struct {
	req    *brew.Request // the service-owned tier-0 request it was built from
	k      cacheKey
	lo, hi uint64 // specialized-code range for profiler-sample attribution
	queued bool   // promotion flight enqueued (one shot per entry)
}

// track registers a freshly promoted tier-0 entry for hotness-driven
// promotion (Service.mu held).
func (s *Service) trackLocked(f *flight, res *brew.Result) {
	if s.tracked == nil {
		s.tracked = make(map[*specmgr.Entry]*hotTrack)
	}
	s.tracked[f.entry] = &hotTrack{
		req: f.req, k: f.k,
		lo: res.Addr, hi: res.Addr + uint64(res.CodeSize),
	}
}

// untrack drops an entry from promotion tracking (on eviction, release,
// or promotion completion).
func (s *Service) untrack(e *specmgr.Entry) {
	s.mu.Lock()
	delete(s.tracked, e)
	s.mu.Unlock()
}

// NoteSample attributes one sampling-profiler hit to whichever tracked
// tier-0 entry's specialized code contains pc (no-op otherwise). It is
// safe to call from the emulation goroutine mid-execution: it only bumps
// an atomic counter under the service lock, never starts a rewrite.
func (s *Service) NoteSample(pc uint64) {
	s.mu.Lock()
	for e, tr := range s.tracked {
		if pc >= tr.lo && pc < tr.hi {
			s.mu.Unlock()
			e.NoteSample()
			return
		}
	}
	s.mu.Unlock()
}

// AttachHotness wires the machine's sampling profiler into the service's
// hotness accounting: every sample PC is offered to NoteSample. This is
// the profiler half of the promotion signal; the other half is the
// stub-side call counter specmgr entries maintain.
func (s *Service) AttachHotness(p *vm.Profiler) {
	p.OnSample = s.NoteSample
}

// PumpPromotions evaluates every tracked tier-0 entry against the
// PromoteAfter threshold and enqueues a background EffortFull re-rewrite
// for those due. It returns a ticket per enqueued promotion (callers that
// do not care may discard them; the flights complete regardless). A full
// queue defers the due entries to the next pump rather than rejecting
// them. Submit pumps automatically on every admission, so explicit calls
// are only needed when hotness accrues without new submissions.
func (s *Service) PumpPromotions() []*Ticket {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pumpLocked()
}

func (s *Service) pumpLocked() []*Ticket {
	if s.opt.PromoteAfter <= 0 || len(s.tracked) == 0 || s.closed.Load() {
		return nil
	}
	var tickets []*Ticket
	for e, tr := range s.tracked {
		if tr.queued || s.q.full() {
			continue
		}
		calls, samples := e.Hotness()
		if calls+samples < uint64(s.opt.PromoteAfter) {
			continue
		}
		cfg := tr.req.Config.Clone()
		cfg.Effort = brew.EffortFull
		f := &flight{
			k: tr.k, promo: true, prio: PriorityLow,
			req: &brew.Request{
				Config: cfg, Fn: tr.req.Fn,
				Args: tr.req.Args, FArgs: tr.req.FArgs, Guards: tr.req.Guards,
				Mode: brew.ModeDegrade,
			},
			entry: e,
		}
		t := &Ticket{addr: e.Addr(), done: make(chan struct{})}
		f.tickets = []*Ticket{t}
		tr.queued = true
		s.q.push(f)
		mQueueDepth.Set(int64(s.q.len()))
		s.cond.Signal()
		tickets = append(tickets, t)
	}
	return tickets
}

// completePromotion finishes a tier-promotion flight: hot-swap on
// success, demotion accounting on failure (the entry keeps serving its
// tier-0 code — a failed promotion is never worse than no promotion).
func (s *Service) completePromotion(f *flight, out *brew.Outcome, rerr error) {
	ok := s.mgr.Repromote(f.entry, f.req.Config, out, rerr)
	res := Outcome{Entry: f.entry, Addr: f.entry.Addr()}
	if ok {
		s.st.tierPromoted.Add(1)
		mTierPromotions.Inc()
	} else {
		s.st.tierDemoted.Add(1)
		mTierDemotions.Inc()
		res.Degraded = true
		res.Err = rerr
		if out != nil {
			res.Reason = out.Reason
		}
	}

	s.mu.Lock()
	delete(s.tracked, f.entry) // one shot: promoted, or permanently demoted
	tickets := f.tickets
	f.tickets = nil
	for _, t := range tickets {
		t.complete(res)
	}
	s.mu.Unlock()
}
