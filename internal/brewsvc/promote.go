package brewsvc

import (
	"sort"

	"repro/internal/brew"
	"repro/internal/specmgr"
	"repro/internal/vm"
)

// Tiered promotion: a cacheable tier-0 (brew.EffortQuick) specialization
// installs immediately, then accumulates hotness — managed calls counted
// by the specmgr entry's cheap stub-side counter plus sampling-profiler
// hits landing in its code (NoteSample / AttachHotness). Once the
// combined count reaches Options.PromoteAfter, the entry is due: an
// explicit PumpPromotions call enqueues a low-priority background flight
// that re-rewrites the function at brew.EffortFull and hot-swaps the
// optimized body through specmgr.Repromote. Cold functions never pay the
// optimization pass stack; hot functions converge to full-effort
// steady-state code.
//
// Promotion flights ride the ordinary worker pool and queue, so they
// obey the same contract as every rewrite: the machine must not execute
// emulated code while they are in flight. That is why promotion is
// pumped only explicitly — PumpPromotions is called by the host at a
// point where it knows the machine is idle, and the host must await the
// returned tickets before resuming emulated execution. Hotness
// accumulation itself is execution-side and lock-free by design; the
// slow rewrite is never started from the profiler hook.

// hotTrack is the service-side record of one promotable tier-0 entry.
type hotTrack struct {
	req    *brew.Request // the service-owned tier-0 request it was built from
	k      cacheKey
	lo, hi uint64 // specialized-code range for profiler-sample attribution
	queued bool   // promotion flight enqueued (one shot per entry)
}

// hotRange is one entry of the immutable sample-attribution index: the
// tracked entries' code ranges, sorted by lo. JIT code ranges are
// disjoint, so at most one range can contain a given pc.
type hotRange struct {
	lo, hi uint64
	e      *specmgr.Entry
}

// rebuildHotIndexLocked publishes a fresh immutable index of the tracked
// code ranges for the lock-free NoteSample path (Service.mu held). Track
// and untrack are rare (one per install/eviction/promotion), so an O(n
// log n) rebuild here buys an O(log n) lock-free sample path.
func (s *Service) rebuildHotIndexLocked() {
	if len(s.tracked) == 0 {
		s.hotIndex.Store(nil)
		return
	}
	idx := make([]hotRange, 0, len(s.tracked))
	for e, tr := range s.tracked {
		idx = append(idx, hotRange{lo: tr.lo, hi: tr.hi, e: e})
	}
	sort.Slice(idx, func(i, j int) bool { return idx[i].lo < idx[j].lo })
	s.hotIndex.Store(&idx)
}

// track registers a freshly promoted tier-0 entry for hotness-driven
// promotion (Service.mu held).
func (s *Service) trackLocked(f *flight, res *brew.Result) {
	if s.tracked == nil {
		s.tracked = make(map[*specmgr.Entry]*hotTrack)
	}
	s.tracked[f.entry] = &hotTrack{
		req: f.req, k: f.k,
		lo: res.Addr, hi: res.Addr + uint64(res.CodeSize),
	}
	s.rebuildHotIndexLocked()
}

// untrack drops an entry from promotion tracking (on eviction, release,
// or promotion completion).
func (s *Service) untrack(e *specmgr.Entry) {
	s.mu.Lock()
	if _, ok := s.tracked[e]; ok {
		delete(s.tracked, e)
		s.rebuildHotIndexLocked()
	}
	s.mu.Unlock()
}

// NoteSample attributes one sampling-profiler hit to whichever tracked
// tier-0 entry's specialized code contains pc (no-op otherwise). It is
// safe to call from the emulation goroutine mid-execution and stays off
// every service lock: it binary-searches an immutable snapshot of the
// tracked ranges and bumps the entry's atomic counter, never starting a
// rewrite. A sample racing an eviction may land on a just-released
// entry's counter; the entry object outlives its code, so the bump is
// harmless and simply never feeds a promotion.
func (s *Service) NoteSample(pc uint64) {
	idx := s.hotIndex.Load()
	if idx == nil {
		return
	}
	ranges := *idx
	i := sort.Search(len(ranges), func(i int) bool { return ranges[i].hi > pc })
	if i < len(ranges) && pc >= ranges[i].lo {
		ranges[i].e.NoteSample()
	}
}

// AttachHotness wires the machine's sampling profiler into the service's
// hotness accounting: every sample PC is offered to NoteSample. This is
// the profiler half of the promotion signal; the other half is the
// stub-side call counter specmgr entries maintain.
func (s *Service) AttachHotness(p *vm.Profiler) {
	p.OnSample = s.NoteSample
}

// PumpPromotions evaluates every tracked tier-0 entry against the
// PromoteAfter threshold and enqueues a background EffortFull re-rewrite
// for those due, returning a ticket per enqueued promotion. This is the
// ONLY place promotion flights start, and the rewrite contract makes the
// tickets mandatory: call PumpPromotions while the machine is idle and
// await every returned ticket (Ticket.Outcome) before resuming emulated
// execution — the re-rewrite traces machine memory, and the hot-swap
// frees the tier-0 body the machine would otherwise still be executing.
// A full queue defers the due entries to the next pump rather than
// rejecting them.
func (s *Service) PumpPromotions() []*Ticket {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.opt.PromoteAfter <= 0 || len(s.tracked) == 0 || s.closed.Load() {
		return nil
	}
	var tickets []*Ticket
	for e, tr := range s.tracked {
		if tr.queued || s.q.full() {
			continue
		}
		calls, samples := e.Hotness()
		if calls+samples < uint64(s.opt.PromoteAfter) {
			continue
		}
		cfg := tr.req.Config.Clone()
		cfg.Effort = brew.EffortFull
		f := &flight{
			k: tr.k, promo: true, prio: PriorityLow,
			req: &brew.Request{
				Config: cfg, Fn: tr.req.Fn,
				Args: tr.req.Args, FArgs: tr.req.FArgs, Guards: tr.req.Guards,
				Mode: brew.ModeDegrade,
			},
			entry: e,
		}
		t := &Ticket{addr: e.Addr(), done: make(chan struct{})}
		f.tickets = []*Ticket{t}
		tr.queued = true
		s.q.push(f)
		mQueueDepth.Set(int64(s.q.len()))
		s.cond.Signal()
		tickets = append(tickets, t)
	}
	return tickets
}

// completePromotion finishes a tier-promotion flight: hot-swap on
// success, demotion accounting on failure (the entry keeps serving its
// tier-0 code — a failed promotion is never worse than no promotion).
func (s *Service) completePromotion(f *flight, out *brew.Outcome, rerr error) {
	ok := s.mgr.Repromote(f.entry, f.req.Config, out, rerr)
	res := Outcome{Entry: f.entry, Addr: f.entry.Addr()}
	if ok {
		s.st.tierPromoted.Add(1)
		mTierPromotions.Inc()
	} else {
		s.st.tierDemoted.Add(1)
		mTierDemotions.Inc()
		res.Degraded = true
		res.Err = rerr
		if out != nil {
			res.Reason = out.Reason
		}
	}

	s.mu.Lock()
	delete(s.tracked, f.entry) // one shot: promoted, or permanently demoted
	s.rebuildHotIndexLocked()
	tickets := f.tickets
	f.tickets = nil
	for _, t := range tickets {
		t.complete(res)
	}
	s.mu.Unlock()
}
