package brewsvc

import (
	"context"
	"sort"

	"repro/internal/brew"
	"repro/internal/obs"
	"repro/internal/specmgr"
	"repro/internal/vm"
)

// Tiered promotion: a cacheable tier-0 (brew.EffortQuick) variant
// installs immediately, then accumulates hotness — managed calls counted
// by the specmgr entry's cheap stub-side counter (attributed to the
// variant by the dispatch accounting) plus sampling-profiler hits landing
// in its code (NoteSample / AttachHotness). Once the combined count
// reaches the WithPromotion threshold, the variant is due: an explicit
// PumpPromotions call enqueues a low-priority background flight that
// re-rewrites the function at brew.EffortFull and hot-swaps the optimized
// body through specmgr.RepromoteVariant — only that variant; its siblings
// in the table keep their own tiers. Cold variants never pay the
// optimization pass stack; hot variants converge to full-effort
// steady-state code.
//
// Promotion flights ride the ordinary worker pool and queue of the shard
// that owns the variant, so they obey the same contract as every rewrite:
// the machine must not execute emulated code while they are in flight.
// That is why promotion is pumped only explicitly — PumpPromotions is
// called by the host at a point where it knows the machine is idle, and
// the host must await the returned PromotionBatch before resuming
// emulated execution. Hotness accumulation itself is execution-side and
// lock-free by design; the slow rewrite is never started from the
// profiler hook.

// hotTrack is the service-side record of one promotable tier-0 variant.
type hotTrack struct {
	req    *brew.Request // the service-owned tier-0 request it was built from
	k      cacheKey
	ek     entryKey
	e      *specmgr.Entry
	v      *specmgr.Variant
	lo, hi uint64      // specialized-body range for profiler-sample attribution
	trace  obs.TraceID // the request trace that installed the tier-0 variant
	queued bool        // promotion flight enqueued (one shot per variant)
}

// hotRange is one entry of the immutable sample-attribution index, sorted
// by lo. JIT code ranges are disjoint, so at most one range can contain a
// given pc. Body ranges carry the variant (samples bump variant and
// entry); dispatch-chain ranges carry v == nil — a guarded tier-0
// entry's dispatcher cycles are real execution cost of that entry, so
// they count toward its promotion signal instead of vanishing.
type hotRange struct {
	lo, hi uint64
	e      *specmgr.Entry
	v      *specmgr.Variant
}

// rebuildHotIndexLocked publishes a fresh immutable index of this shard's
// tracked code ranges for the lock-free NoteSample path (shard mu held).
// Track and untrack are rare (one per install/eviction/promotion), so an
// O(n log n) rebuild here buys an O(log n) lock-free sample path.
func (sh *shard) rebuildHotIndexLocked() {
	if len(sh.tracked) == 0 {
		sh.hotIndex.Store(nil)
		return
	}
	idx := make([]hotRange, 0, 2*len(sh.tracked))
	seen := make(map[*specmgr.Entry]bool)
	for v, tr := range sh.tracked {
		idx = append(idx, hotRange{lo: tr.lo, hi: tr.hi, e: tr.e, v: v})
		if !seen[tr.e] {
			seen[tr.e] = true
			// Nested shard.mu -> Manager.mu, the established lock order.
			if lo, hi := tr.e.DispatchRange(); hi > lo {
				idx = append(idx, hotRange{lo: lo, hi: hi, e: tr.e})
			}
		}
	}
	sort.Slice(idx, func(i, j int) bool { return idx[i].lo < idx[j].lo })
	sh.hotIndex.Store(&idx)
}

// trackLocked registers a freshly installed tier-0 variant for
// hotness-driven promotion (shard mu held).
func (sh *shard) trackLocked(f *flight, v *specmgr.Variant, res *brew.Result) {
	if sh.tracked == nil {
		sh.tracked = make(map[*specmgr.Variant]*hotTrack)
	}
	sh.tracked[v] = &hotTrack{
		req: f.req, k: f.k, ek: f.ek, e: f.entry, v: v,
		lo: res.Addr, hi: res.Addr + uint64(res.CodeSize),
		trace: f.trace,
	}
	sh.rebuildHotIndexLocked()
}

// untrack drops a variant from this shard's promotion tracking (on
// eviction, release, or promotion completion).
func (sh *shard) untrack(v *specmgr.Variant) {
	sh.mu.Lock()
	if _, ok := sh.tracked[v]; ok {
		delete(sh.tracked, v)
		sh.rebuildHotIndexLocked()
	}
	sh.mu.Unlock()
}

// NoteSample attributes one sampling-profiler hit to whichever tracked
// tier-0 variant's specialized body — or tracked entry's dispatch chain —
// contains pc (no-op otherwise). It is safe to call from the emulation
// goroutine mid-execution and stays off every service lock: it
// binary-searches the immutable per-shard snapshots of the tracked
// ranges and bumps atomic counters, never starting a rewrite. A sample
// racing an eviction may land on a just-released variant's counter; the
// objects outlive their code, so the bump is harmless and simply never
// feeds a promotion.
func (s *Service) NoteSample(pc uint64) {
	for _, sh := range s.shards {
		idx := sh.hotIndex.Load()
		if idx == nil {
			continue
		}
		ranges := *idx
		i := sort.Search(len(ranges), func(i int) bool { return ranges[i].hi > pc })
		if i < len(ranges) && pc >= ranges[i].lo {
			ranges[i].e.NoteSample()
			if ranges[i].v != nil {
				ranges[i].v.NoteSample()
			}
			return
		}
	}
}

// AttachHotness wires the machine's sampling profiler into the service's
// hotness accounting: every sample PC is offered to NoteSample. This is
// the profiler half of the promotion signal; the other half is the
// stub-side call counter specmgr entries maintain.
func (s *Service) AttachHotness(p *vm.Profiler) {
	p.OnSample = s.NoteSample
}

// PromotionBatch is the set of promotion flights one PumpPromotions call
// enqueued. The pump-and-await contract lives in this type: await the
// batch (AwaitAll) before resuming emulated execution — the re-rewrites
// trace machine memory, and each hot-swap frees a tier-0 body the
// machine could otherwise still be executing. A nil batch is valid and
// empty.
type PromotionBatch struct {
	tickets []*Ticket
}

// Len returns the number of promotion flights in the batch.
func (b *PromotionBatch) Len() int {
	if b == nil {
		return 0
	}
	return len(b.tickets)
}

// Tickets returns the batch's tickets (shared, do not mutate).
func (b *PromotionBatch) Tickets() []*Ticket {
	if b == nil {
		return nil
	}
	return b.tickets
}

// AwaitAll blocks until every promotion in the batch completes (or ctx is
// done) and returns the outcomes in batch order. On context error the
// partial outcomes collected so far are returned alongside it; the
// remaining promotions still run — cancelling the wait does not cancel
// the rewrites, so the machine must still not execute emulated code
// until the service quiesces.
func (b *PromotionBatch) AwaitAll(ctx context.Context) ([]Outcome, error) {
	if b.Len() == 0 {
		return nil, nil
	}
	outs := make([]Outcome, 0, len(b.tickets))
	for _, t := range b.tickets {
		o, err := t.Wait(ctx)
		if err != nil {
			return outs, err
		}
		outs = append(outs, o)
	}
	return outs, nil
}

// PumpPromotions evaluates every tracked tier-0 variant against the
// promotion threshold and enqueues a background EffortFull re-rewrite on
// the owning shard for those due, returning the batch of enqueued
// promotions. This is the ONLY place promotion flights start, and the
// rewrite contract makes the batch mandatory: call PumpPromotions while
// the machine is idle and await the batch (PromotionBatch.AwaitAll)
// before resuming emulated execution. A full shard queue defers that
// shard's due variants to the next pump rather than rejecting them.
func (s *Service) PumpPromotions() *PromotionBatch {
	batch := &PromotionBatch{}
	if s.cfg.promoteAfter <= 0 || s.closed.Load() {
		return batch
	}
	for _, sh := range s.shards {
		sh.mu.Lock()
		batch.tickets = append(batch.tickets, sh.pumpLocked()...)
		sh.mu.Unlock()
	}
	return batch
}

// pumpLocked runs one shard's promotion pump (shard mu held).
func (sh *shard) pumpLocked() []*Ticket {
	s := sh.s
	if len(sh.tracked) == 0 {
		return nil
	}
	// A variant demoted or evicted since it was tracked can no longer be
	// promoted; drop it here rather than burning a flight on a refusal.
	perEntry := make(map[*specmgr.Entry]int)
	dropped := false
	for v, tr := range sh.tracked {
		if !v.Live() { // nested shard.mu -> Manager.mu
			delete(sh.tracked, v)
			dropped = true
			continue
		}
		perEntry[tr.e]++
	}
	if dropped {
		sh.rebuildHotIndexLocked()
	}
	var tickets []*Ticket
	for v, tr := range sh.tracked {
		if tr.queued || sh.q.full() {
			continue
		}
		vc, vs := v.Hotness()
		due := vc+vs >= uint64(s.cfg.promoteAfter)
		if !due && perEntry[tr.e] == 1 {
			// Sole tracked variant of its entry: entry-level hotness (raw
			// stub calls, samples attributed to the dispatch chain) is
			// unambiguously its signal too.
			ec, es := tr.e.Hotness()
			due = ec+es >= uint64(s.cfg.promoteAfter)
		}
		if !due {
			continue
		}
		cfg := tr.req.Config.Clone()
		cfg.Effort = brew.EffortFull
		// The promotion is its own trace, linked back to the request that
		// installed the tier-0 variant so TraceEvents reassembles the full
		// lifecycle across the asynchronous boundary.
		f := &flight{
			k: tr.k, ek: tr.ek, promo: true, prio: PriorityLow,
			req: &brew.Request{
				Config: cfg, Fn: tr.req.Fn,
				Args: tr.req.Args, FArgs: tr.req.FArgs, Guards: tr.req.Guards,
				Mode: brew.ModeDegrade,
			},
			entry:   tr.e,
			variant: v,
			trace:   obs.StartTrace(),
			link:    tr.trace,
			enqNS:   obs.Now(),
		}
		t := &Ticket{addr: tr.e.Addr(), done: make(chan struct{})}
		f.tickets = []*Ticket{t}
		tr.queued = true
		sh.q.push(f)
		sh.depth.Set(int64(sh.q.len()))
		sh.cond.Signal()
		tickets = append(tickets, t)
	}
	return tickets
}

// completePromotion finishes a tier-promotion flight: hot-swap on
// success, demotion accounting on failure (the variant keeps serving its
// tier-0 code — a failed promotion is never worse than no promotion).
func (sh *shard) completePromotion(f *flight, out *brew.Outcome, rerr error) {
	s := sh.s
	ok := s.mgr.RepromoteVariant(f.entry, f.variant, f.req.Config, out, rerr)
	res := Outcome{Entry: f.entry, Addr: f.entry.Addr(), Variant: f.variant}
	if ok {
		sh.st.tierPromoted.Add(1)
		mTierPromotions.Inc()
		// Persist the optimized body under its (EffortFull) content
		// address: a warm start then adopts straight at tier-1.
		if s.cfg.store != nil {
			s.persist(f, out)
		}
	} else {
		sh.st.tierDemoted.Add(1)
		mTierDemotions.Inc()
		res.Degraded = true
		res.Err = rerr
		if out != nil {
			res.Reason = out.Reason
		}
	}
	// The promotion span covers the whole background lifecycle: queue
	// wait, re-rewrite, and hot swap, linked to the originating request.
	obs.EndSpanOn(sh.id, f.trace, obs.StagePromotion, obs.TierFull, f.enqNS, f.req.Fn, f.link)
	if f.trace != 0 {
		kind := obs.KindPromoteOK
		if !ok {
			kind = obs.KindPromoteFail
		}
		obs.Emit(obs.Event{Kind: kind, Trace: f.trace, Link: f.link,
			Fn: f.req.Fn, Addr: f.entry.Addr(), Tier: obs.TierFull, Reason: res.Reason,
			Shard: int32(sh.id) + 1})
	}

	sh.mu.Lock()
	delete(sh.tracked, f.variant) // one shot: promoted, or permanently demoted
	sh.rebuildHotIndexLocked()
	tickets := f.tickets
	f.tickets = nil
	for _, t := range tickets {
		t.complete(res)
	}
	sh.mu.Unlock()
}
