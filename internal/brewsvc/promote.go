package brewsvc

import (
	"sort"

	"repro/internal/brew"
	"repro/internal/obs"
	"repro/internal/specmgr"
	"repro/internal/vm"
)

// Tiered promotion: a cacheable tier-0 (brew.EffortQuick) variant
// installs immediately, then accumulates hotness — managed calls counted
// by the specmgr entry's cheap stub-side counter (attributed to the
// variant by the dispatch accounting) plus sampling-profiler hits landing
// in its code (NoteSample / AttachHotness). Once the combined count
// reaches Options.PromoteAfter, the variant is due: an explicit
// PumpPromotions call enqueues a low-priority background flight that
// re-rewrites the function at brew.EffortFull and hot-swaps the optimized
// body through specmgr.RepromoteVariant — only that variant; its siblings
// in the table keep their own tiers. Cold variants never pay the
// optimization pass stack; hot variants converge to full-effort
// steady-state code.
//
// Promotion flights ride the ordinary worker pool and queue, so they
// obey the same contract as every rewrite: the machine must not execute
// emulated code while they are in flight. That is why promotion is
// pumped only explicitly — PumpPromotions is called by the host at a
// point where it knows the machine is idle, and the host must await the
// returned tickets before resuming emulated execution. Hotness
// accumulation itself is execution-side and lock-free by design; the
// slow rewrite is never started from the profiler hook.

// hotTrack is the service-side record of one promotable tier-0 variant.
type hotTrack struct {
	req    *brew.Request // the service-owned tier-0 request it was built from
	k      cacheKey
	ek     entryKey
	e      *specmgr.Entry
	v      *specmgr.Variant
	lo, hi uint64      // specialized-body range for profiler-sample attribution
	trace  obs.TraceID // the request trace that installed the tier-0 variant
	queued bool        // promotion flight enqueued (one shot per variant)
}

// hotRange is one entry of the immutable sample-attribution index, sorted
// by lo. JIT code ranges are disjoint, so at most one range can contain a
// given pc. Body ranges carry the variant (samples bump variant and
// entry); dispatch-chain ranges carry v == nil — a guarded tier-0
// entry's dispatcher cycles are real execution cost of that entry, so
// they count toward its promotion signal instead of vanishing.
type hotRange struct {
	lo, hi uint64
	e      *specmgr.Entry
	v      *specmgr.Variant
}

// rebuildHotIndexLocked publishes a fresh immutable index of the tracked
// code ranges for the lock-free NoteSample path (Service.mu held). Track
// and untrack are rare (one per install/eviction/promotion), so an O(n
// log n) rebuild here buys an O(log n) lock-free sample path.
func (s *Service) rebuildHotIndexLocked() {
	if len(s.tracked) == 0 {
		s.hotIndex.Store(nil)
		return
	}
	idx := make([]hotRange, 0, 2*len(s.tracked))
	seen := make(map[*specmgr.Entry]bool)
	for v, tr := range s.tracked {
		idx = append(idx, hotRange{lo: tr.lo, hi: tr.hi, e: tr.e, v: v})
		if !seen[tr.e] {
			seen[tr.e] = true
			// Nested Service.mu -> Manager.mu, the established lock order.
			if lo, hi := tr.e.DispatchRange(); hi > lo {
				idx = append(idx, hotRange{lo: lo, hi: hi, e: tr.e})
			}
		}
	}
	sort.Slice(idx, func(i, j int) bool { return idx[i].lo < idx[j].lo })
	s.hotIndex.Store(&idx)
}

// trackLocked registers a freshly installed tier-0 variant for
// hotness-driven promotion (Service.mu held).
func (s *Service) trackLocked(f *flight, v *specmgr.Variant, res *brew.Result) {
	if s.tracked == nil {
		s.tracked = make(map[*specmgr.Variant]*hotTrack)
	}
	s.tracked[v] = &hotTrack{
		req: f.req, k: f.k, ek: f.ek, e: f.entry, v: v,
		lo: res.Addr, hi: res.Addr + uint64(res.CodeSize),
		trace: f.trace,
	}
	s.rebuildHotIndexLocked()
}

// untrack drops a variant from promotion tracking (on eviction, release,
// or promotion completion).
func (s *Service) untrack(v *specmgr.Variant) {
	s.mu.Lock()
	if _, ok := s.tracked[v]; ok {
		delete(s.tracked, v)
		s.rebuildHotIndexLocked()
	}
	s.mu.Unlock()
}

// NoteSample attributes one sampling-profiler hit to whichever tracked
// tier-0 variant's specialized body — or tracked entry's dispatch chain —
// contains pc (no-op otherwise). It is safe to call from the emulation
// goroutine mid-execution and stays off every service lock: it
// binary-searches an immutable snapshot of the tracked ranges and bumps
// atomic counters, never starting a rewrite. A sample racing an eviction
// may land on a just-released variant's counter; the objects outlive
// their code, so the bump is harmless and simply never feeds a promotion.
func (s *Service) NoteSample(pc uint64) {
	idx := s.hotIndex.Load()
	if idx == nil {
		return
	}
	ranges := *idx
	i := sort.Search(len(ranges), func(i int) bool { return ranges[i].hi > pc })
	if i < len(ranges) && pc >= ranges[i].lo {
		ranges[i].e.NoteSample()
		if ranges[i].v != nil {
			ranges[i].v.NoteSample()
		}
	}
}

// AttachHotness wires the machine's sampling profiler into the service's
// hotness accounting: every sample PC is offered to NoteSample. This is
// the profiler half of the promotion signal; the other half is the
// stub-side call counter specmgr entries maintain.
func (s *Service) AttachHotness(p *vm.Profiler) {
	p.OnSample = s.NoteSample
}

// PumpPromotions evaluates every tracked tier-0 variant against the
// PromoteAfter threshold and enqueues a background EffortFull re-rewrite
// for those due, returning a ticket per enqueued promotion. This is the
// ONLY place promotion flights start, and the rewrite contract makes the
// tickets mandatory: call PumpPromotions while the machine is idle and
// await every returned ticket (Ticket.Outcome) before resuming emulated
// execution — the re-rewrite traces machine memory, and the hot-swap
// frees the tier-0 body the machine would otherwise still be executing.
// A full queue defers the due variants to the next pump rather than
// rejecting them.
func (s *Service) PumpPromotions() []*Ticket {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.opt.PromoteAfter <= 0 || len(s.tracked) == 0 || s.closed.Load() {
		return nil
	}
	// A variant demoted or evicted since it was tracked can no longer be
	// promoted; drop it here rather than burning a flight on a refusal.
	perEntry := make(map[*specmgr.Entry]int)
	dropped := false
	for v, tr := range s.tracked {
		if !v.Live() { // nested Service.mu -> Manager.mu
			delete(s.tracked, v)
			dropped = true
			continue
		}
		perEntry[tr.e]++
	}
	if dropped {
		s.rebuildHotIndexLocked()
	}
	var tickets []*Ticket
	for v, tr := range s.tracked {
		if tr.queued || s.q.full() {
			continue
		}
		vc, vs := v.Hotness()
		due := vc+vs >= uint64(s.opt.PromoteAfter)
		if !due && perEntry[tr.e] == 1 {
			// Sole tracked variant of its entry: entry-level hotness (raw
			// stub calls, samples attributed to the dispatch chain) is
			// unambiguously its signal too.
			ec, es := tr.e.Hotness()
			due = ec+es >= uint64(s.opt.PromoteAfter)
		}
		if !due {
			continue
		}
		cfg := tr.req.Config.Clone()
		cfg.Effort = brew.EffortFull
		// The promotion is its own trace, linked back to the request that
		// installed the tier-0 variant so TraceEvents reassembles the full
		// lifecycle across the asynchronous boundary.
		f := &flight{
			k: tr.k, ek: tr.ek, promo: true, prio: PriorityLow,
			req: &brew.Request{
				Config: cfg, Fn: tr.req.Fn,
				Args: tr.req.Args, FArgs: tr.req.FArgs, Guards: tr.req.Guards,
				Mode: brew.ModeDegrade,
			},
			entry:   tr.e,
			variant: v,
			trace:   obs.StartTrace(),
			link:    tr.trace,
			enqNS:   obs.Now(),
		}
		t := &Ticket{addr: tr.e.Addr(), done: make(chan struct{})}
		f.tickets = []*Ticket{t}
		tr.queued = true
		s.q.push(f)
		mQueueDepth.Set(int64(s.q.len()))
		s.cond.Signal()
		tickets = append(tickets, t)
	}
	return tickets
}

// completePromotion finishes a tier-promotion flight: hot-swap on
// success, demotion accounting on failure (the variant keeps serving its
// tier-0 code — a failed promotion is never worse than no promotion).
func (s *Service) completePromotion(f *flight, out *brew.Outcome, rerr error) {
	ok := s.mgr.RepromoteVariant(f.entry, f.variant, f.req.Config, out, rerr)
	res := Outcome{Entry: f.entry, Addr: f.entry.Addr(), Variant: f.variant}
	if ok {
		s.st.tierPromoted.Add(1)
		mTierPromotions.Inc()
		// Persist the optimized body under its (EffortFull) content
		// address: a warm start then adopts straight at tier-1.
		if s.opt.Store != nil {
			s.persist(f, out)
		}
	} else {
		s.st.tierDemoted.Add(1)
		mTierDemotions.Inc()
		res.Degraded = true
		res.Err = rerr
		if out != nil {
			res.Reason = out.Reason
		}
	}
	// The promotion span covers the whole background lifecycle: queue
	// wait, re-rewrite, and hot swap, linked to the originating request.
	obs.EndSpan(f.trace, obs.StagePromotion, obs.TierFull, f.enqNS, f.req.Fn, f.link)
	if f.trace != 0 {
		kind := obs.KindPromoteOK
		if !ok {
			kind = obs.KindPromoteFail
		}
		obs.Emit(obs.Event{Kind: kind, Trace: f.trace, Link: f.link,
			Fn: f.req.Fn, Addr: f.entry.Addr(), Tier: obs.TierFull, Reason: res.Reason})
	}

	s.mu.Lock()
	delete(s.tracked, f.variant) // one shot: promoted, or permanently demoted
	s.rebuildHotIndexLocked()
	tickets := f.tickets
	f.tickets = nil
	for _, t := range tickets {
		t.complete(res)
	}
	s.mu.Unlock()
}
