package brewsvc_test

import (
	"testing"

	"repro/internal/brew"
	"repro/internal/brewsvc"
	"repro/internal/minc"
	"repro/internal/specmgr"
	"repro/internal/vm"
)

const polySrc = `
long poly(long x, long k) {
    long r = 1;
    for (long i = 0; i < k; i++) { r = r * x + i; }
    return r;
}
`

func loadPoly(t *testing.T, m *vm.Machine) uint64 {
	t.Helper()
	l, err := minc.CompileAndLink(m, polySrc, nil)
	if err != nil {
		t.Fatal(err)
	}
	fn, err := l.FuncAddr("poly")
	if err != nil {
		t.Fatal(err)
	}
	return fn
}

func polyRef(x, k uint64) uint64 {
	r := uint64(1)
	for i := uint64(0); i < k; i++ {
		r = r*x + i
	}
	return r
}

// TestSiblingVariantsShareEntry: requests differing only in guard values
// land in one variant-table entry — one stable stub address dispatching
// every hot class, with unspecialized values falling through to the
// original.
func TestSiblingVariantsShareEntry(t *testing.T) {
	m := vm.MustNew()
	fn := loadPoly(t, m)
	svc := brewsvc.New(m, brewsvc.Options{Workers: 2})
	defer svc.Close()

	guard := func(k uint64) []brew.ParamGuard {
		return []brew.ParamGuard{{Param: 2, Value: k}}
	}
	var outs []brewsvc.Outcome
	for _, k := range []uint64{3, 5, 9} {
		out := svc.Do(&brewsvc.Request{
			Config: brew.NewConfig(), Fn: fn, Guards: guard(k),
			Args: []uint64{0, 0},
		})
		if out.Degraded {
			t.Fatalf("k=%d degraded: %s (%v)", k, out.Reason, out.Err)
		}
		outs = append(outs, out)
	}

	e := outs[0].Entry
	for i, out := range outs {
		if out.Entry != e {
			t.Fatalf("request %d got entry %p, want shared %p", i, out.Entry, e)
		}
		if out.Addr != e.Addr() {
			t.Fatalf("request %d addr %#x, want stable %#x", i, out.Addr, e.Addr())
		}
		if out.Variant == nil || !out.Variant.Live() {
			t.Fatalf("request %d has no live variant", i)
		}
		for j := 0; j < i; j++ {
			if out.Variant == outs[j].Variant {
				t.Fatalf("requests %d and %d share a variant", i, j)
			}
		}
	}
	if n := len(e.Variants()); n != 3 {
		t.Fatalf("variant table size = %d, want 3", n)
	}
	if st := svc.Stats(); st.Traces != 3 {
		t.Fatalf("traces = %d, want 3 (one per guard value)", st.Traces)
	}

	// A repeated request is a cache hit on the same variant.
	again := svc.Do(&brewsvc.Request{
		Config: brew.NewConfig(), Fn: fn, Guards: guard(5),
		Args: []uint64{0, 0},
	})
	if !again.CacheHit || again.Variant != outs[1].Variant {
		t.Fatalf("repeat k=5: cacheHit=%v variant=%p, want hit on %p",
			again.CacheHit, again.Variant, outs[1].Variant)
	}

	// Dispatch correctness through the shared stub, misses included.
	for _, x := range []uint64{0, 2, 7} {
		for _, k := range []uint64{0, 3, 5, 7, 9, 12} {
			got, err := m.Call(e.Addr(), x, k)
			if err != nil {
				t.Fatal(err)
			}
			if want := polyRef(x, k); got != want {
				t.Fatalf("poly(%d,%d) = %d, want %d", x, k, got, want)
			}
		}
	}
}

// TestVariantTableLimitEvictsSibling: with Policy.MaxVariants = 1 a new
// guard class evicts its sibling from the table; the cache's hit-path
// liveness check then notices the dead variant and re-traces instead of
// serving a slot that falls through to the generic original.
func TestVariantTableLimitEvictsSibling(t *testing.T) {
	m := vm.MustNew()
	fn := loadPoly(t, m)
	svc := brewsvc.New(m, brewsvc.Options{
		Workers: 1, Policy: specmgr.Policy{MaxVariants: 1},
	})
	defer svc.Close()

	req := func(k uint64) *brewsvc.Request {
		return &brewsvc.Request{
			Config: brew.NewConfig(), Fn: fn,
			Guards: []brew.ParamGuard{{Param: 2, Value: k}},
			Args:   []uint64{0, 0},
		}
	}
	out3 := svc.Do(req(3))
	if out3.Degraded {
		t.Fatalf("k=3 degraded: %v", out3.Err)
	}
	out5 := svc.Do(req(5))
	if out5.Degraded {
		t.Fatalf("k=5 degraded: %v", out5.Err)
	}
	if out5.Entry != out3.Entry {
		t.Fatalf("siblings split entries: %p vs %p", out5.Entry, out3.Entry)
	}
	if out3.Variant.Live() {
		t.Fatal("k=3 variant survived a MaxVariants=1 table")
	}
	if n := len(out3.Entry.Variants()); n != 1 {
		t.Fatalf("variant table size = %d, want 1", n)
	}

	// The k=3 slot is dead: the next k=3 request must not be served from
	// the cache, and its re-trace evicts k=5 in turn.
	traces0 := svc.Stats().Traces
	out3b := svc.Do(req(3))
	if out3b.Degraded {
		t.Fatalf("k=3 re-request degraded: %v", out3b.Err)
	}
	if out3b.CacheHit {
		t.Fatal("dead variant served from the cache")
	}
	if d := svc.Stats().Traces - traces0; d != 1 {
		t.Fatalf("re-request traced %d times, want 1", d)
	}
	if !out3b.Variant.Live() || out3b.Variant == out3.Variant {
		t.Fatal("re-request did not install a fresh variant")
	}

	// Correctness throughout: the surviving class is specialized, the
	// evicted one falls through to the original.
	for _, k := range []uint64{3, 5, 7} {
		got, err := m.Call(out3b.Entry.Addr(), 2, k)
		if err != nil {
			t.Fatal(err)
		}
		if want := polyRef(2, k); got != want {
			t.Fatalf("poly(2,%d) = %d, want %d", k, got, want)
		}
	}
}

// TestDispatchSampleAttribution: profiler samples landing in the entry's
// inline-cache dispatch chain count toward the entry's promotion signal
// (regression: the sample index used to cover only variant bodies, so
// dispatch-heavy guarded entries never got hot).
func TestDispatchSampleAttribution(t *testing.T) {
	m := vm.MustNew()
	fn := loadPoly(t, m)
	const after = 4
	svc := brewsvc.New(m, brewsvc.Options{Workers: 1, PromoteAfter: after})
	defer svc.Close()

	qcfg := brew.NewConfig()
	qcfg.Effort = brew.EffortQuick
	out := svc.Do(&brewsvc.Request{
		Config: qcfg, Fn: fn,
		Guards: []brew.ParamGuard{{Param: 2, Value: 5}},
		Args:   []uint64{0, 0},
	})
	if out.Degraded {
		t.Fatalf("tier-0 submit degraded: %s (%v)", out.Reason, out.Err)
	}
	e, v := out.Entry, out.Variant
	if got := v.Tier(); got != brew.EffortQuick {
		t.Fatalf("installed tier %s, want quick", got)
	}
	lo, hi := e.DispatchRange()
	if hi <= lo {
		t.Fatal("guarded entry has no dispatch chain")
	}

	// Samples on the chain: entry hotness, not any one variant's.
	for i := 0; i < after; i++ {
		svc.NoteSample(lo)
	}
	if _, samples := e.Hotness(); samples != after {
		t.Fatalf("entry samples = %d, want %d", samples, after)
	}
	if _, samples := v.Hotness(); samples != 0 {
		t.Fatalf("variant samples = %d, want 0 (pc was in the chain)", samples)
	}

	// The sole tracked variant of the entry inherits the entry-level
	// signal and promotes.
	tks := svc.PumpPromotions()
	if tks.Len() != 1 {
		t.Fatalf("%d promotions enqueued, want 1", tks.Len())
	}
	if p := tks.Tickets()[0].Outcome(); p.Degraded {
		t.Fatalf("promotion degraded: %s (%v)", p.Reason, p.Err)
	}
	if got := v.Tier(); got != brew.EffortFull {
		t.Fatalf("post-promotion tier %s, want full", got)
	}
	got, err := m.Call(e.Addr(), 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if want := polyRef(3, 5); got != want {
		t.Fatalf("promoted poly(3,5) = %d, want %d", got, want)
	}
}
