package brewsvc

import (
	"errors"
	"time"
)

// Admission control (WithAdmission): per-priority queue-wait SLOs with
// deadline-aware shedding and an explicit overload decision per class,
// replacing the blanket degrade-on-full default.
//
// The mechanism is an estimate-then-enforce loop per shard:
//
//   - Each shard maintains an EWMA of its recent rewrite latency. At
//     admission, the estimated wait for an arriving request is the number
//     of queued flights at its priority or higher times that EWMA,
//     divided by the shard's worker count.
//   - A request whose class has an SLO and whose estimated wait exceeds
//     it is shed at admission: completed degraded with ReasonOverload and
//     ErrOverload, never enqueued. Shedding at the door beats queueing
//     work that is already doomed to miss its deadline.
//   - A full queue consults the class's OverloadDecision: ShedDegrade
//     sheds the arriving request; ShedEvictLower evicts the oldest queued
//     flight of a strictly lower priority class (completing it degraded
//     with ReasonOverload) and admits the arrival in its place. Promotion
//     flights are never evicted — they were promised to an awaiter.
//   - At dequeue, a flight that has already waited past its class SLO is
//     shed (ReasonDeadline) instead of tracing: the worker's time goes to
//     requests that can still meet their deadline.
//
// Classes without an SLO (zero duration) keep the legacy behavior
// exactly: admitted whenever the queue has room, rejected with
// ReasonQueueFull/ErrQueueFull when it does not, never deadline-shed.

// Service-level degradation reasons for admission control, extending the
// ReasonQueueFull/ReasonShutdown vocabulary.
const (
	// ReasonOverload: admission control shed the request (estimated or
	// actual queue wait over the class SLO, or an eviction victim).
	ReasonOverload = "overload"
	// ReasonDeadline: the request was admitted but waited past its class
	// SLO before a worker reached it, and was shed at dequeue.
	ReasonDeadline = "deadline"
)

// ErrOverload reports an admission-control shed: the request was degraded
// to the original function because its class SLO could not be met.
var ErrOverload = errors.New("brewsvc: admission control shed request")

// OverloadDecision selects what a priority class does when its request
// arrives at a full queue.
type OverloadDecision uint8

const (
	// ShedDegrade (the default) sheds the arriving request: it completes
	// degraded with ReasonOverload and ErrOverload.
	ShedDegrade OverloadDecision = iota
	// ShedEvictLower evicts the oldest queued flight of a strictly lower
	// priority class to make room (the victim completes degraded with
	// ReasonOverload); with no lower-priority victim available the
	// arriving request is shed as in ShedDegrade.
	ShedEvictLower
)

// Admission is the per-priority admission-control policy (WithAdmission).
type Admission struct {
	// SLO is the maximum tolerable queue wait per priority class, indexed
	// by Priority. Zero disables admission control for that class (legacy
	// queue-full behavior, no deadline shedding).
	SLO [3]time.Duration
	// OnOverload is each class's decision when its request arrives at a
	// full queue. Ignored for classes without an SLO.
	OnOverload [3]OverloadDecision
	// Inject, when non-nil, is the fault-injection seam (see
	// faultinject.AdmissionHook): returning true force-sheds the arriving
	// admission-controlled request as if its wait estimate were over SLO.
	Inject func() bool
}

// rewriteEWMADivisor sets the exponential decay of the per-shard rewrite
// latency average: each observation contributes 1/8 of its value.
const rewriteEWMADivisor = 8

// observeRewriteNS folds one rewrite latency into the shard's EWMA.
func (sh *shard) observeRewriteNS(ns uint64) {
	for {
		old := sh.ewmaNS.Load()
		var next uint64
		if old == 0 {
			next = ns
		} else {
			next = old - old/rewriteEWMADivisor + ns/rewriteEWMADivisor
		}
		if sh.ewmaNS.CompareAndSwap(old, next) {
			return
		}
	}
}

// estimatedWaitLocked returns the expected queue wait for a request
// arriving at priority p: the flights it must wait behind, spread over
// the shard's workers, at the observed rewrite latency. Shard mu held.
func (sh *shard) estimatedWaitLocked(p Priority) time.Duration {
	ahead := sh.q.depthAtOrAbove(p)
	if ahead == 0 {
		return 0
	}
	return time.Duration(uint64(ahead) * sh.ewmaNS.Load() / uint64(sh.s.cfg.workers))
}
