package brewsvc

import (
	"sync"
	"testing"

	"repro/internal/brew"
	"repro/internal/minc"
	"repro/internal/specmgr"
	"repro/internal/vm"
)

// TestCachePutSameKeyCollision: a same-key put returns the displaced slot
// as a victim and the slot serves the new variant afterwards; LRU
// eviction never selects the just-inserted variant; remove only drops a
// slot that still serves the given variant.
func TestCachePutSameKeyCollision(t *testing.T) {
	c := newCache(1, 2)
	e := new(specmgr.Entry)
	v1, v2, v3 := new(specmgr.Variant), new(specmgr.Variant), new(specmgr.Variant)
	k1 := cacheKey{fn: 1, cfg: 2, vals: 3}
	k2 := cacheKey{fn: 1, cfg: 2, vals: 4}
	k3 := cacheKey{fn: 1, cfg: 2, vals: 5}

	if ev := c.put(k1, cacheVal{e: e, v: v1}); len(ev) != 0 {
		t.Fatalf("fresh put evicted %d slots", len(ev))
	}
	ev := c.put(k1, cacheVal{e: e, v: v2})
	if len(ev) != 1 || ev[0].v != v1 {
		t.Fatalf("same-key put victims = %v, want the displaced v1 slot", ev)
	}
	got, ok := c.get(k1)
	if !ok || got.v != v2 {
		t.Fatalf("slot serves %p, want the newer v2 %p", got.v, v2)
	}
	if c.len() != 1 {
		t.Fatalf("len = %d, want 1", c.len())
	}

	if c.remove(k1, v1) {
		t.Error("remove dropped a slot serving a newer variant")
	}
	if !c.remove(k1, v2) {
		t.Error("remove failed on the slot's current variant")
	}
	if c.len() != 0 {
		t.Fatalf("len = %d after remove, want 0", c.len())
	}

	// Over capacity, the LRU victim goes — never the just-inserted one.
	c.put(k1, cacheVal{e: e, v: v1})
	c.put(k2, cacheVal{e: e, v: v2})
	c.get(k1) // touch k1 so k2 is the LRU slot
	ev = c.put(k3, cacheVal{e: e, v: v3})
	if len(ev) != 1 || ev[0].v != v2 {
		t.Fatalf("capacity victims = %v, want the LRU v2 slot", ev)
	}
	if got, ok := c.get(k3); !ok || got.v != v3 {
		t.Fatal("just-inserted slot missing after LRU eviction")
	}
}

const racePolySrc = `
long poly(long x, long k) {
    long r = 1;
    for (long i = 0; i < k; i++) { r = r * x + i; }
    return r;
}
`

// TestPumpVsEvictionRace runs PumpPromotions concurrently with
// Submit-driven cache eviction of the variants being promoted (a
// one-slot cache and distinct guard values force continual eviction).
// Run under -race. The invariants: everything completes (no deadlock on
// the Service.mu -> Manager.mu order), no tracked variant is left with a
// stuck queued flag, and Close returns every JIT byte.
func TestPumpVsEvictionRace(t *testing.T) {
	m := vm.MustNew()
	l, err := minc.CompileAndLink(m, racePolySrc, nil)
	if err != nil {
		t.Fatal(err)
	}
	fn, err := l.FuncAddr("poly")
	if err != nil {
		t.Fatal(err)
	}
	base := m.JITFreeBytes()

	s := New(m, Options{Workers: 2, Shards: 1, PerShard: 1, PromoteAfter: 1})

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			cfg := brew.NewConfig()
			cfg.Effort = brew.EffortQuick
			tk := s.Submit(&Request{
				Config: cfg, Fn: fn,
				Guards: []brew.ParamGuard{{Param: 2, Value: uint64(i % 6)}},
				Args:   []uint64{0, 0},
			})
			out := tk.Outcome()
			if out.Variant != nil {
				out.Variant.NoteSample() // immediately due for promotion
			}
		}
	}()
	go func() {
		defer wg.Done()
		for j := 0; j < 200; j++ {
			for _, tk := range s.PumpPromotions().Tickets() {
				tk.Outcome()
			}
		}
	}()
	wg.Wait()

	// Drain stragglers that became due after the pump goroutine's last
	// round, then check the tracking set's integrity.
	for _, tk := range s.PumpPromotions().Tickets() {
		tk.Outcome()
	}
	for _, sh := range s.shards {
		sh.mu.Lock()
		for v, tr := range sh.tracked {
			if tr.queued {
				t.Errorf("tracked variant %p left with a stuck queued flag", v)
			}
			if !v.Live() {
				t.Errorf("dead variant %p still tracked", v)
			}
		}
		sh.mu.Unlock()
	}

	s.Close()
	if free := m.JITFreeBytes(); free != base {
		t.Fatalf("leaked JIT bytes after Close: free %d, baseline %d", free, base)
	}
}
