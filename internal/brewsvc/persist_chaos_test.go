package brewsvc_test

import (
	"math"
	"testing"
	"time"

	"repro/internal/brewsvc"
	"repro/internal/faultinject"
	"repro/internal/spstore"
)

// TestPersistChaosStoreFaultsNeverWrong drives seed-varied store fault
// injection — torn writes, truncated records, bit flips, checksum-valid
// stale assumption digests, remote timeouts and remote errors — through
// repeated simulated restarts sharing one store directory, until at
// least 500 store faults have fired (about 120 under -short). The
// invariant, every round:
//
//   - zero wrong executions: every outcome is callable and its sweep
//     checksum matches the golden reference, whether it was traced
//     fresh, adopted warm, or re-traced after a quarantine;
//   - zero adopted corrupt bodies: a warm hit only ever serves a record
//     that passed checksum + revalidation (checked indirectly by the
//     checksums above, and directly by the store never counting a warm
//     hit in a round whose writes were all corrupted);
//   - zero leaked JIT bytes: after Close the code buffer returns to the
//     round's baseline even when adoptions were refused mid-install;
//   - convergence: two clean rounds at the end serve everything from the
//     store (first one re-traces whatever the chaos rounds left corrupt,
//     the second runs 100% warm).
//
// Requests run sequentially on one worker: warm adoption reproduces the
// recorded JIT addresses only when the allocation order is reproducible,
// which is exactly the restart scenario being modeled.
func TestPersistChaosStoreFaultsNeverWrong(t *testing.T) {
	dumpRecorderOnFailure(t)
	dir := t.TempDir()
	const iters = 3

	target := uint64(500)
	if testing.Short() {
		target = 120
	}

	// round boots a fresh, identically built machine+service against the
	// shared store directory, runs the three kernels, checks every
	// checksum, closes, and checks the JIT accounting.
	round := func(seed int64, inj *faultinject.Injector) (warm, traces uint64) {
		m, w := newStencil(t)
		baseline := m.JITFreeBytes()

		opts := spstore.Options{
			Dir:              dir,
			Remote:           spstore.NewMemRemote(),
			RemoteTimeout:    2 * time.Millisecond,
			RemoteRetries:    2,
			BreakerThreshold: 3,
			BreakerCooldown:  5 * time.Millisecond,
		}
		if inj != nil {
			opts.Inject = inj.StoreHook()
		}
		st, err := spstore.Open(opts)
		if err != nil {
			t.Fatalf("seed %d: open store: %v", seed, err)
		}
		if inj != nil {
			// Churn: evict roughly half the live tier (oldest first),
			// modeling GC pressure between restarts. Without it the store
			// converges to all-warm after a few rounds and the write-path
			// fault points are never consulted again.
			infos, err := st.List()
			if err != nil {
				t.Fatalf("seed %d: list: %v", seed, err)
			}
			var live int64
			for _, in := range infos {
				if !in.Quarantined {
					live += in.Size
				}
			}
			if live > 0 {
				if _, err := st.GC(live / 2); err != nil {
					t.Fatalf("seed %d: gc: %v", seed, err)
				}
			}
		}
		svc := brewsvc.New(m, brewsvc.Options{
			Workers:             1,
			Store:               st,
			PersistDrainTimeout: 100 * time.Millisecond,
		})

		type kernel struct {
			name string
			req  *brewsvc.Request
			run  func(addr uint64) (float64, error)
		}
		applyCfg, applyArgs := w.ApplyConfig()
		groupCfg, groupArgs := w.GroupedConfig()
		sweepCfg, sweepArgs := w.SweepConfig()
		kernels := []kernel{
			{"apply", &brewsvc.Request{Config: applyCfg, Fn: w.Apply, Args: applyArgs},
				func(a uint64) (float64, error) { return w.RunSweeps(a, false, iters) }},
			{"grouped", &brewsvc.Request{Config: groupCfg, Fn: w.ApplyGrouped, Args: groupArgs},
				func(a uint64) (float64, error) { return w.RunSweeps(a, true, iters) }},
			{"sweep", &brewsvc.Request{Config: sweepCfg, Fn: w.Sweep, Args: sweepArgs},
				func(a uint64) (float64, error) { return w.RunRewrittenSweeps(a, iters) }},
		}

		want := w.Golden(iters)
		for _, k := range kernels {
			out := svc.Do(k.req)
			if out.Degraded {
				t.Fatalf("seed %d: %s degraded: %s (%v) — store faults must never degrade a request",
					seed, k.name, out.Reason, out.Err)
			}
			if out.Addr == 0 {
				t.Fatalf("seed %d: %s has no callable address", seed, k.name)
			}
			if err := w.ResetMatrices(); err != nil {
				t.Fatal(err)
			}
			got, err := k.run(out.Addr)
			if err != nil {
				t.Fatalf("seed %d: %s run: %v", seed, k.name, err)
			}
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("seed %d: %s WRONG EXECUTION: checksum %g, want %g", seed, k.name, got, want)
			}
		}

		stats := svc.Stats()
		sst := st.Stats()
		svc.Close()
		st.Close()
		if got := m.JITFreeBytes(); got != baseline {
			t.Fatalf("seed %d: leaked JIT bytes: %d free, baseline %d", seed, got, baseline)
		}
		if stats.WarmHits+stats.Traces < 3 {
			t.Fatalf("seed %d: %d warm + %d traces < 3 kernels", seed, stats.WarmHits, stats.Traces)
		}
		// A warm hit must never coexist with a revalidation bypass: every
		// served record passed the full check chain or was quarantined.
		if sst.WarmHits != stats.WarmHits {
			t.Fatalf("seed %d: store warm hits %d != service warm hits %d", seed, sst.WarmHits, stats.WarmHits)
		}
		return stats.WarmHits, stats.Traces
	}

	// Chaos rounds: every boot re-arms a fresh injector over the shared
	// directory, so corrupt records written by one round ambush the next
	// round's warm start.
	var fired uint64
	rounds := 0
	for seed := int64(1); fired < target; seed++ {
		rounds++
		inj := faultinject.New(seed)
		// Vary the mix: some rounds lean on write corruption, some on the
		// lying-digest record, some on remote misbehavior.
		inj.Arm(faultinject.PointStoreTornWrite, 0.3*float64(seed%2))
		inj.Arm(faultinject.PointStoreTruncate, 0.3*float64((seed/2)%2))
		inj.Arm(faultinject.PointStoreBitFlip, 0.3*float64((seed/4)%2))
		inj.Arm(faultinject.PointStoreStaleAssume, 0.25*float64((seed/3)%2))
		inj.Arm(faultinject.PointStoreRemoteTimeout, 0.2*float64((seed/5)%2))
		inj.Arm(faultinject.PointStoreRemoteErr, 0.2)
		round(seed, inj)
		fired += inj.TotalFired()
	}

	// Convergence: the first clean round re-traces whatever the last
	// chaos round corrupted and rewrites it; the second must then run
	// fully warm.
	round(-1, nil)
	warm, traces := round(-2, nil)
	if traces != 0 || warm != 3 {
		t.Fatalf("no convergence: final clean round ran %d warm / %d traces, want 3/0", warm, traces)
	}
	t.Logf("persist chaos: %d rounds, %d injected store faults, converged", rounds, fired)
}
