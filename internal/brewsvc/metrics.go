package brewsvc

import "repro/internal/telemetry"

// Service metrics, mirroring the unconditional Stats counters into the
// process-wide registry. Updates are no-ops while telemetry is disabled.
var (
	mSubmitted      = telemetry.Default.Counter("brewsvc.submitted")
	mCoalesceHits   = telemetry.Default.Counter("brewsvc.coalesce_hits")
	mCacheHits      = telemetry.Default.Counter("brewsvc.cache_hits")
	mCacheMisses    = telemetry.Default.Counter("brewsvc.cache_misses")
	mCacheEvictions = telemetry.Default.Counter("brewsvc.cache_evictions")
	mRejected       = telemetry.Default.Counter("brewsvc.rejected")
	mTraces         = telemetry.Default.Counter("brewsvc.traces")
	mPromotions     = telemetry.Default.Counter("brewsvc.promotions")
	mDegraded       = telemetry.Default.Counter("brewsvc.degraded")

	mQueueDepth = telemetry.Default.Gauge("brewsvc.queue_depth")

	// Worker-observed rewrite latency in microseconds.
	mLatencyUS = telemetry.Default.Histogram("brewsvc.rewrite_latency_us",
		[]uint64{100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000})
)
