package brewsvc

import "repro/internal/telemetry"

// Service metrics, mirroring the unconditional Stats counters into the
// process-wide registry. Updates are no-ops while telemetry is disabled.
var (
	mSubmitted      = telemetry.Default.Counter("brewsvc.submitted")
	mCoalesceHits   = telemetry.Default.Counter("brewsvc.coalesce_hits")
	mCacheHits      = telemetry.Default.Counter("brewsvc.cache_hits")
	mCacheMisses    = telemetry.Default.Counter("brewsvc.cache_misses")
	mCacheEvictions = telemetry.Default.Counter("brewsvc.cache_evictions")
	mRejected       = telemetry.Default.Counter("brewsvc.rejected")
	mTraces         = telemetry.Default.Counter("brewsvc.traces")
	mWarmHits       = telemetry.Default.Counter("brewsvc.warm_hits")
	mPromotions     = telemetry.Default.Counter("brewsvc.promotions")
	mDegraded       = telemetry.Default.Counter("brewsvc.degraded")

	// Tiered rewriting (promote.go): successful tier-0 -> tier-1 hot
	// swaps, and promotion attempts that failed (the entry stays tier-0).
	mTierPromotions = telemetry.Default.Counter("brewsvc.tier_promotions")
	mTierDemotions  = telemetry.Default.Counter("brewsvc.tier_demotions")

	// Admission control (admission.go): overload and deadline sheds across
	// all shards and priority classes (per-class splits live in Stats).
	// Queue depth is per shard: brewsvc.queue_depth.s<id>, created at Open.
	mSheds = telemetry.Default.Counter("brewsvc.sheds")

	// Worker-observed rewrite latency in microseconds: all rewrites, plus
	// per-tier splits (the E6 wall-clock companion to the deterministic
	// work-unit metric).
	mLatencyUS = telemetry.Default.Histogram("brewsvc.rewrite_latency_us",
		[]uint64{100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000})
	mLatencyQuickUS = telemetry.Default.Histogram("brewsvc.rewrite_latency_quick_us",
		[]uint64{100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000})
	mLatencyFullUS = telemetry.Default.Histogram("brewsvc.rewrite_latency_full_us",
		[]uint64{100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000})
)
