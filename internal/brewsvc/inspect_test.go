package brewsvc_test

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"

	"repro/internal/brew"
	"repro/internal/brewsvc"
	"repro/internal/obs"
)

// withObs enables observation for the test and restores the disabled,
// empty state afterwards.
func withObs(t *testing.T) {
	t.Helper()
	obs.Reset()
	obs.Enable()
	t.Cleanup(func() {
		obs.Disable()
		obs.Reset()
	})
}

// TestTraceReconstructionCoalescedBurst is the acceptance scenario for
// request-lifecycle tracing: a 64-caller coalesced burst yields exactly
// one flight trace whose events reconstruct the full lifecycle — the
// creator's submit and cache-lookup spans, the queue wait, the rewrite
// and install, every coalesced caller's join span linked to the flight,
// and later the asynchronous promotion linked back to the originating
// trace.
func TestTraceReconstructionCoalescedBurst(t *testing.T) {
	withObs(t)
	m, w := newStencil(t)
	const after = 4
	svc := brewsvc.New(m, brewsvc.Options{Workers: 1, QueueCap: 128, PromoteAfter: after})
	defer svc.Close()

	// Deterministic coalescing, independent of scheduler timing: an
	// uncacheable decoy whose Inject hook blocks parks the single worker
	// inside its rewrite. The burst creator's flight then waits in the
	// queue — still in the inflight table — while the 63 joiners submit,
	// so every one of them coalesces onto it. Only then is the decoy
	// released.
	const n = 64
	block := make(chan struct{})
	dcfg, dargs := w.ApplyConfig()
	dcfg.Inject = func(string) error { <-block; return nil }
	decoy := svc.Submit(&brewsvc.Request{Config: dcfg, Fn: w.Apply, Args: dargs})

	cfg0, args0 := applyVariant(w, 0)
	cfg0.Effort = brew.EffortQuick
	tickets := make([]*brewsvc.Ticket, n)
	tickets[0] = svc.Submit(&brewsvc.Request{Config: cfg0, Fn: w.Apply, Args: args0})

	var wg sync.WaitGroup
	for i := 1; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg, args := applyVariant(w, i)
			cfg.Effort = brew.EffortQuick
			tickets[i] = svc.Submit(&brewsvc.Request{Config: cfg, Fn: w.Apply, Args: args})
		}(i)
	}
	wg.Wait()
	close(block)
	if d := decoy.Outcome(); d.Degraded {
		t.Fatalf("decoy degraded: %s (%v)", d.Reason, d.Err)
	}
	var out brewsvc.Outcome
	for i, tk := range tickets {
		out = tk.Outcome()
		if out.Degraded {
			t.Fatalf("caller %d degraded: %s (%v)", i, out.Reason, out.Err)
		}
	}
	st := svc.Stats()
	if st.Traces != 2 {
		t.Fatalf("traces = %d, want 2 (decoy + one coalesced burst)", st.Traces)
	}
	if st.CoalesceHits != n-1 {
		t.Fatalf("coalesce hits = %d, want %d (stats %+v)", st.CoalesceHits, n-1, st)
	}

	// The tier-0 rewrite span identifies the burst's flight trace (the
	// decoys rewrote at full effort).
	var flight obs.TraceID
	rewrites := 0
	for _, e := range obs.Events() {
		if e.Kind == obs.KindSpan && e.Stage == obs.StageRewrite && e.Tier == obs.TierQuick {
			flight, rewrites = e.Trace, rewrites+1
		}
	}
	if rewrites != 1 || flight == 0 {
		t.Fatalf("%d tier-0 rewrite spans (flight trace %#x), want exactly 1", rewrites, flight)
	}

	stageCount := func(evs []obs.Event, s obs.Stage) int {
		c := 0
		for _, e := range evs {
			if e.Kind == obs.KindSpan && e.Stage == s {
				c++
			}
		}
		return c
	}
	evs := obs.TraceEvents(flight)
	for _, want := range []struct {
		stage obs.Stage
		n     int
	}{
		{obs.StageSubmit, 1},      // the creator's submit span carries the flight trace
		{obs.StageCacheLookup, 1}, // ditto its miss lookup
		{obs.StageQueue, 1},
		{obs.StageRewrite, 1},
		{obs.StageInstall, 1},
		{obs.StageCoalesce, int(st.CoalesceHits)}, // every joiner linked to the flight
	} {
		if got := stageCount(evs, want.stage); got != want.n {
			t.Errorf("trace has %d %s spans, want %d", got, want.stage, want.n)
		}
	}
	for _, e := range evs {
		if e.Fn != w.Apply {
			t.Fatalf("trace event %s has fn %#x, want %#x", e.Format(), e.Fn, w.Apply)
		}
	}

	// Drive the entry hot and pump: the promotion runs under its own
	// trace but links back to the flight that installed tier-0.
	cell := w.M1 + uint64((gridXS+1)*8)
	callArgs := []uint64{cell, gridXS, w.S5}
	want, err := m.CallFloat(w.Apply, callArgs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < after; i++ {
		got, err := out.Entry.CallFloat(callArgs, nil)
		if err != nil || math.Abs(got-want) > 1e-12 {
			t.Fatalf("tier-0 call %d = %g, %v; want %g", i, got, err, want)
		}
	}
	tks := svc.PumpPromotions()
	if tks.Len() != 1 {
		t.Fatalf("%d promotions pumped, want 1", tks.Len())
	}
	if p := tks.Tickets()[0].Outcome(); p.Degraded {
		t.Fatalf("promotion degraded: %s (%v)", p.Reason, p.Err)
	}

	evs = obs.TraceEvents(flight)
	promoSpans, promoOK := 0, 0
	for _, e := range evs {
		switch {
		case e.Kind == obs.KindSpan && e.Stage == obs.StagePromotion:
			promoSpans++
			if e.Trace == flight || e.Link != flight {
				t.Fatalf("promotion span %s: want own trace linked to %#x", e.Format(), flight)
			}
		case e.Kind == obs.KindPromoteOK:
			promoOK++
		}
	}
	if promoSpans != 1 || promoOK != 1 {
		t.Fatalf("trace has %d promotion spans and %d promote-ok events, want 1 and 1", promoSpans, promoOK)
	}

	// The stage aggregates saw every span the trace did.
	quantOK := false
	for _, sq := range obs.StageSnapshot() {
		if sq.StageS == "rewrite" && sq.TierS == "quick" && sq.Count == 1 && sq.P50NS > 0 {
			quantOK = true
		}
	}
	if !quantOK {
		t.Fatalf("stage snapshot missing rewrite/quick cell: %+v", obs.StageSnapshot())
	}
}

// TestInspectSnapshot exercises the structured live-introspection
// surface: queue shape, cache occupancy, the per-entry variant table and
// the observation tail, plus the rendered dashboard.
func TestInspectSnapshot(t *testing.T) {
	withObs(t)
	m, w := newStencil(t)
	svc := brewsvc.New(m, brewsvc.Options{Workers: 2, QueueCap: 32})
	defer svc.Close()

	cfg, args := applyVariant(w, 0)
	out := svc.Do(&brewsvc.Request{Config: cfg, Fn: w.Apply, Args: args})
	if out.Degraded {
		t.Fatalf("submit degraded: %s (%v)", out.Reason, out.Err)
	}

	ins := svc.Inspect()
	if ins.QueueCap != 32 || ins.Workers != 2 || ins.Closed {
		t.Fatalf("queue cap %d workers %d closed %v, want 32/2/false", ins.QueueCap, ins.Workers, ins.Closed)
	}
	if ins.QueueLen != 0 || ins.QueueDepths != [3]int{} {
		t.Fatalf("idle service has queued flights: %+v", ins.QueueDepths)
	}
	if ins.CacheLen != 1 {
		t.Fatalf("cache len = %d, want 1", ins.CacheLen)
	}
	sum := 0
	for _, nsh := range ins.CacheShards {
		sum += nsh
	}
	if sum != ins.CacheLen {
		t.Fatalf("shard occupancy %v sums to %d, want %d", ins.CacheShards, sum, ins.CacheLen)
	}
	if ins.Stats.Traces != 1 || ins.Stats.Promoted != 1 {
		t.Fatalf("stats traces=%d promoted=%d, want 1/1", ins.Stats.Traces, ins.Stats.Promoted)
	}
	if len(ins.Entries) != 1 {
		t.Fatalf("%d entries, want 1", len(ins.Entries))
	}
	e := ins.Entries[0]
	if e.Fn != w.Apply || e.Addr == 0 || e.Refs < 1 {
		t.Fatalf("entry fn=%#x addr=%#x refs=%d", e.Fn, e.Addr, e.Refs)
	}
	if len(e.Variants) != 1 || !e.Variants[0].Live || e.Variants[0].Addr == 0 || e.Variants[0].CodeSize == 0 {
		t.Fatalf("variant table %+v, want one live variant with code", e.Variants)
	}
	if e.Tier != e.Variants[0].Tier {
		t.Fatalf("entry tier %q != variant tier %q", e.Tier, e.Variants[0].Tier)
	}
	if len(ins.Stages) == 0 || len(ins.Events) == 0 {
		t.Fatalf("enabled inspection missing stages (%d) or events (%d)", len(ins.Stages), len(ins.Events))
	}

	text := ins.Render()
	for _, wantSub := range []string{
		"service   running, 2 workers",
		"queue     0/32",
		"cache     1 slots",
		"stage", "rewrite", "install",
		"flight recorder",
	} {
		if !strings.Contains(text, wantSub) {
			t.Fatalf("rendered dashboard missing %q:\n%s", wantSub, text)
		}
	}

	// Disabled observation degrades the snapshot gracefully: structure
	// stays, stage quantiles and the event tail disappear.
	obs.Disable()
	ins = svc.Inspect()
	if len(ins.Stages) != 0 || len(ins.Events) != 0 {
		t.Fatalf("disabled inspection still carries %d stages / %d events", len(ins.Stages), len(ins.Events))
	}
	if len(ins.Entries) != 1 || ins.CacheLen != 1 {
		t.Fatal("disabling observation lost structural state")
	}
}

// TestServeIntrospection smoke-tests the opt-in HTTP listener: metrics
// exposition, JSON snapshot, JSON event dump and the text dashboard.
func TestServeIntrospection(t *testing.T) {
	withObs(t)
	m, w := newStencil(t)
	svc := brewsvc.New(m, brewsvc.Options{Workers: 2, QueueCap: 32})
	defer svc.Close()

	cfg, args := applyVariant(w, 1)
	if out := svc.Do(&brewsvc.Request{Config: cfg, Fn: w.Apply, Args: args}); out.Degraded {
		t.Fatalf("submit degraded: %s (%v)", out.Reason, out.Err)
	}

	addr, stop, err := svc.ServeIntrospection("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		return string(body)
	}

	metrics := get("/metrics")
	for _, wantSub := range []string{"brew_span_ns", "brew_flight_recorder_seq", `stage="rewrite"`} {
		if !strings.Contains(metrics, wantSub) {
			t.Fatalf("/metrics missing %q:\n%s", wantSub, metrics)
		}
	}

	var ins brewsvc.Inspection
	if err := json.Unmarshal([]byte(get("/inspect")), &ins); err != nil {
		t.Fatalf("/inspect is not JSON: %v", err)
	}
	if ins.QueueCap != 32 || len(ins.Entries) != 1 || len(ins.Events) == 0 {
		t.Fatalf("/inspect snapshot off: cap=%d entries=%d events=%d", ins.QueueCap, len(ins.Entries), len(ins.Events))
	}

	var evs []obs.Event
	if err := json.Unmarshal([]byte(get("/events")), &evs); err != nil {
		t.Fatalf("/events is not JSON: %v", err)
	}
	if len(evs) == 0 {
		t.Fatal("/events is empty after a completed flight")
	}

	if dash := get("/"); !strings.Contains(dash, "service   running") {
		t.Fatalf("dashboard endpoint off:\n%s", dash)
	}
	if resp, err := http.Get("http://" + addr + "/nope"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET /nope: %s, want 404", resp.Status)
		}
	}

	stop()
	stop() // idempotent
}
