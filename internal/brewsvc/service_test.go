package brewsvc_test

import (
	"bytes"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/brew"
	"repro/internal/brewsvc"
	"repro/internal/stencil"
	"repro/internal/telemetry"
	"repro/internal/vm"
)

const gridXS, gridYS = 16, 12

func newStencil(t *testing.T) (*vm.Machine, *stencil.Workload) {
	t.Helper()
	m := vm.MustNew()
	w, err := stencil.New(m, gridXS, gridYS)
	if err != nil {
		t.Fatal(err)
	}
	return m, w
}

// applyVariant builds the E1c apply configuration with a call order varied
// by seed: semantically identical configs must fingerprint — and therefore
// coalesce — identically regardless of construction order.
func applyVariant(w *stencil.Workload, seed int) (*brew.Config, []uint64) {
	cfg := brew.NewConfig()
	lo := brew.MemRange{Start: w.S5, End: w.S5 + 8}
	hi := brew.MemRange{Start: w.S5 + 8, End: w.S5 + 16}
	switch seed % 4 {
	case 0:
		cfg.SetParam(2, brew.ParamKnown).SetParamPtrToKnown(3, stencil.StructSSize)
		cfg.SetMemRange(lo.Start, lo.End).SetMemRange(hi.Start, hi.End)
	case 1:
		cfg.SetParamPtrToKnown(3, stencil.StructSSize).SetParam(2, brew.ParamKnown)
		cfg.SetMemRange(hi.Start, hi.End).SetMemRange(lo.Start, lo.End)
	case 2:
		cfg.SetMemRange(lo.Start, lo.End)
		cfg.SetParamPtrToKnown(3, stencil.StructSSize)
		cfg.SetMemRange(hi.Start, hi.End)
		cfg.SetParam(2, brew.ParamKnown)
	default:
		cfg.SetMemRange(hi.Start, hi.End).SetMemRange(lo.Start, lo.End)
		// Duplicate declaration: adds no assumption, must not split the key.
		cfg.SetMemRange(hi.Start, hi.End)
		cfg.SetParam(2, brew.ParamKnown).SetParamPtrToKnown(3, stencil.StructSSize)
	}
	return cfg, []uint64{0, uint64(w.XS), w.S5}
}

// TestCoalescing64 is the tentpole acceptance test: 64 goroutines
// requesting the same specialization (configs built in different call
// orders) trigger exactly one trace; every caller lands on the same
// specialized code and the bytes are identical for all of them.
func TestCoalescing64(t *testing.T) {
	telemetry.Default.Reset()
	telemetry.Enable()
	defer telemetry.Disable()

	m, w := newStencil(t)
	baseline := m.JITFreeBytes()
	svc := brewsvc.New(m, brewsvc.Options{Workers: 4, QueueCap: 128})

	const n = 64
	tickets := make([]*brewsvc.Ticket, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg, args := applyVariant(w, i)
			tickets[i] = svc.Submit(&brewsvc.Request{Config: cfg, Fn: w.Apply, Args: args})
		}(i)
	}
	wg.Wait()

	outs := make([]brewsvc.Outcome, n)
	for i, tk := range tickets {
		outs[i] = tk.Outcome()
		if outs[i].Degraded {
			t.Fatalf("caller %d degraded: %s (%v)", i, outs[i].Reason, outs[i].Err)
		}
	}

	st := svc.Stats()
	if st.Traces != 1 {
		t.Fatalf("traces = %d, want exactly 1 (coalescing failed)", st.Traces)
	}
	if got := telemetry.Default.Counter("brewsvc.traces").Value(); got != 1 {
		t.Fatalf("telemetry brewsvc.traces = %d, want 1", got)
	}
	if shared := st.CoalesceHits + st.CacheHits; shared != n-1 {
		t.Fatalf("coalesce (%d) + cache (%d) hits = %d, want %d",
			st.CoalesceHits, st.CacheHits, shared, n-1)
	}
	if got := telemetry.Default.Counter("brew.rewrites").Value(); got != 1 {
		t.Fatalf("telemetry brew.rewrites = %d, want 1", got)
	}

	// Identical code for every caller: same entry, same address, same
	// bytes read back from the machine.
	first := outs[0]
	code0, err := m.Mem.ReadBytes(first.Entry.Result().Addr, first.Entry.Result().CodeSize)
	if err != nil {
		t.Fatal(err)
	}
	if len(code0) == 0 {
		t.Fatal("specialized code is empty")
	}
	creators := 0
	for i, o := range outs {
		if o.Entry != first.Entry || o.Addr != first.Addr {
			t.Fatalf("caller %d got entry %p addr %#x, want %p %#x",
				i, o.Entry, o.Addr, first.Entry, first.Addr)
		}
		code, err := m.Mem.ReadBytes(o.Entry.Result().Addr, o.Entry.Result().CodeSize)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(code, code0) {
			t.Fatalf("caller %d observes different code bytes", i)
		}
		if !o.Coalesced && !o.CacheHit {
			creators++ // the one caller whose Submit started the flight
		}
	}
	if creators != 1 {
		t.Fatalf("%d callers started a flight, want exactly 1", creators)
	}

	// The shared specialization computes the right cells.
	cell := w.M1 + uint64((gridXS+1)*8)
	want, err := m.CallFloat(w.Apply, []uint64{cell, gridXS, w.S5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.CallFloat(first.Addr, []uint64{cell, gridXS, w.S5}, nil)
	if err != nil || math.Abs(got-want) > 1e-12 {
		t.Fatalf("specialized cell = %g, %v; want %g", got, err, want)
	}

	// A follow-up burst is served entirely from the cache: zero traces.
	for i := 0; i < n; i++ {
		cfg, args := applyVariant(w, i)
		out := svc.Do(&brewsvc.Request{Config: cfg, Fn: w.Apply, Args: args})
		if !out.CacheHit || out.Entry != first.Entry {
			t.Fatalf("repeat %d: cacheHit=%v entry=%p", i, out.CacheHit, out.Entry)
		}
	}
	if st := svc.Stats(); st.Traces != 1 {
		t.Fatalf("repeat burst re-traced: %d", st.Traces)
	}

	svc.Close()
	if got := m.JITFreeBytes(); got != baseline {
		t.Fatalf("leaked JIT bytes after Close: free %d, baseline %d", got, baseline)
	}
}

// TestQueueFullDegrades: a full queue degrades the overflow request to the
// original function immediately — no deadlock, no blocking.
func TestQueueFullDegrades(t *testing.T) {
	m, w := newStencil(t)
	svc := brewsvc.New(m, brewsvc.Options{Workers: 1, QueueCap: 2})
	defer svc.Close()

	// Wedge the single worker: an Inject hook blocking at SiteTrace (the
	// hook also makes the request uncoalescable, so it owns the worker).
	block := make(chan struct{})
	blocked := make(chan struct{})
	var once sync.Once
	wedgeCfg, args := w.ApplyConfig()
	wedgeCfg.Inject = func(site string) error {
		if site == brew.SiteTrace {
			once.Do(func() { close(blocked) })
			<-block
		}
		return nil
	}
	wedge := svc.Submit(&brewsvc.Request{Config: wedgeCfg, Fn: w.Apply, Args: args})
	<-blocked // the worker is now inside the wedged rewrite

	// Fill the queue with distinct-key requests.
	fillers := make([]*brewsvc.Ticket, 2)
	for i := range fillers {
		cfg, args := w.ApplyConfig()
		cfg.MaxCodeBytes = (256 << 10) + (i+1)*16 // distinct fingerprints
		fillers[i] = svc.Submit(&brewsvc.Request{Config: cfg, Fn: w.Apply, Args: args})
	}

	// Overflow: must complete synchronously, degraded, queue-full.
	cfg, args2 := w.ApplyConfig()
	cfg.MaxCodeBytes = (256 << 10) + 1024
	over := svc.Submit(&brewsvc.Request{Config: cfg, Fn: w.Apply, Args: args2})
	out, ready := over.TryOutcome()
	if !ready {
		t.Fatal("overflow submit did not complete immediately")
	}
	if !out.Degraded || out.Reason != brewsvc.ReasonQueueFull || !errors.Is(out.Err, brewsvc.ErrQueueFull) {
		t.Fatalf("overflow outcome = %+v, want queue-full degrade", out)
	}
	if out.Addr != w.Apply {
		t.Fatalf("overflow Addr = %#x, want original %#x", out.Addr, w.Apply)
	}
	if st := svc.Stats(); st.Rejected != 1 {
		t.Fatalf("Rejected = %d, want 1", st.Rejected)
	}

	// Unblock; everything drains within the test timeout (no wedged queue).
	close(block)
	deadline := time.After(30 * time.Second)
	for i, tk := range append(fillers, wedge) {
		select {
		case <-tk.Done():
		case <-deadline:
			t.Fatalf("ticket %d never completed after unblock", i)
		}
	}
}

// TestPriorityOrder: with one worker, queued requests run high before
// normal before low regardless of submission order.
func TestPriorityOrder(t *testing.T) {
	m, w := newStencil(t)
	svc := brewsvc.New(m, brewsvc.Options{Workers: 1, QueueCap: 16})
	defer svc.Close()

	block := make(chan struct{})
	blocked := make(chan struct{})
	var once sync.Once
	wedgeCfg, args := w.ApplyConfig()
	wedgeCfg.Inject = func(site string) error {
		if site == brew.SiteTrace {
			once.Do(func() { close(blocked) })
			<-block
		}
		return nil
	}
	wedge := svc.Submit(&brewsvc.Request{Config: wedgeCfg, Fn: w.Apply, Args: args})
	<-blocked

	// Submission order low, normal, high; expected run order reversed.
	var mu sync.Mutex
	var order []brewsvc.Priority
	mk := func(p brewsvc.Priority) *brewsvc.Ticket {
		cfg, args := w.ApplyConfig()
		var once sync.Once
		cfg.Inject = func(site string) error {
			if site == brew.SiteTrace {
				once.Do(func() {
					mu.Lock()
					order = append(order, p)
					mu.Unlock()
				})
			}
			return nil
		}
		return svc.Submit(&brewsvc.Request{Config: cfg, Fn: w.Apply, Args: args, Priority: p})
	}
	tickets := []*brewsvc.Ticket{
		mk(brewsvc.PriorityLow), mk(brewsvc.PriorityNormal), mk(brewsvc.PriorityHigh),
	}
	close(block)
	for _, tk := range tickets {
		if out := tk.Outcome(); out.Degraded {
			t.Fatalf("degraded: %s (%v)", out.Reason, out.Err)
		}
	}
	<-wedge.Done()

	mu.Lock()
	defer mu.Unlock()
	want := []brewsvc.Priority{brewsvc.PriorityHigh, brewsvc.PriorityNormal, brewsvc.PriorityLow}
	if len(order) != len(want) {
		t.Fatalf("ran %d requests, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("run order %v, want %v", order, want)
		}
	}
}

// TestBudgetIsolation: a budget-exhausted request degrades without
// poisoning the cache — the same assumptions under an adequate budget
// still specialize, and a degraded key retries on the next submit.
func TestBudgetIsolation(t *testing.T) {
	m, w := newStencil(t)
	baseline := m.JITFreeBytes()
	svc := brewsvc.New(m, brewsvc.Options{Workers: 2})

	tiny, args := w.ApplyConfig()
	tiny.Budget = &brew.Budget{MaxTracedInstrs: 8}
	out := svc.Do(&brewsvc.Request{Config: tiny, Fn: w.Apply, Args: args})
	if !out.Degraded || out.Reason != brew.ReasonTraceBudget {
		t.Fatalf("tiny budget outcome = %+v, want trace-budget degrade", out)
	}
	if !errors.Is(out.Err, brew.ErrDegraded) || !errors.Is(out.Err, brew.ErrTraceTooLong) {
		t.Fatalf("tiny budget err = %v", out.Err)
	}

	// Same assumptions, no budget: distinct fingerprint, full success.
	ok, args2 := w.ApplyConfig()
	res := svc.Do(&brewsvc.Request{Config: ok, Fn: w.Apply, Args: args2})
	if res.Degraded || res.CacheHit {
		t.Fatalf("unbudgeted outcome = %+v", res)
	}

	// The degraded key was not cached: re-submitting it traces again.
	before := svc.Stats().Traces
	tiny2, args3 := w.ApplyConfig()
	tiny2.Budget = &brew.Budget{MaxTracedInstrs: 8}
	out2 := svc.Do(&brewsvc.Request{Config: tiny2, Fn: w.Apply, Args: args3})
	if !out2.Degraded || out2.CacheHit {
		t.Fatalf("degraded retry outcome = %+v", out2)
	}
	if got := svc.Stats().Traces; got != before+1 {
		t.Fatalf("degraded key did not re-trace: %d -> %d", before, got)
	}

	svc.Close()
	if got := m.JITFreeBytes(); got != baseline {
		t.Fatalf("leaked JIT bytes: free %d, baseline %d", got, baseline)
	}
}

// TestRewriteBehind: Submit hands back a callable address before the
// rewrite completes (the stub routes to the original function), and the
// same address runs the specialization afterwards.
func TestRewriteBehind(t *testing.T) {
	m, w := newStencil(t)
	svc := brewsvc.New(m, brewsvc.Options{Workers: 1})
	defer svc.Close()

	block := make(chan struct{})
	blocked := make(chan struct{})
	var once sync.Once
	cfg, args := w.ApplyConfig()
	cfg.Inject = func(site string) error {
		if site == brew.SiteTrace {
			once.Do(func() { close(blocked) })
			<-block
		}
		return nil
	}
	tk := svc.Submit(&brewsvc.Request{Config: cfg, Fn: w.Apply, Args: args})
	<-blocked

	if _, ready := tk.TryOutcome(); ready {
		t.Fatal("outcome ready while the rewrite is still blocked")
	}
	if tk.Addr() == 0 {
		t.Fatal("no immediately callable address")
	}
	if tk.Addr() == w.Apply {
		t.Fatal("expected a patchable stub, got the raw original")
	}

	close(block)
	out := tk.Outcome()
	if out.Degraded {
		t.Fatalf("degraded: %s (%v)", out.Reason, out.Err)
	}
	if out.Addr != tk.Addr() {
		t.Fatalf("address changed across promotion: %#x -> %#x", tk.Addr(), out.Addr)
	}
	// The promoted address computes the right cell.
	cell := w.M1 + uint64((gridXS+1)*8)
	want, err := m.CallFloat(w.Apply, []uint64{cell, gridXS, w.S5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.CallFloat(tk.Addr(), []uint64{cell, gridXS, w.S5}, nil)
	if err != nil || math.Abs(got-want) > 1e-12 {
		t.Fatalf("promoted cell = %g, %v; want %g", got, err, want)
	}
}

// TestCacheEviction: over-capacity inserts evict LRU entries and release
// their code; nothing leaks at Close.
func TestCacheEviction(t *testing.T) {
	m, w := newStencil(t)
	baseline := m.JITFreeBytes()
	svc := brewsvc.New(m, brewsvc.Options{Workers: 1, Shards: 1, PerShard: 1})

	mkCfg := func(i int) (*brew.Config, []uint64) {
		cfg, args := w.ApplyConfig()
		cfg.MaxCodeBytes = (256 << 10) + i*16 // distinct keys
		return cfg, args
	}
	cfg1, args := mkCfg(1)
	first := svc.Do(&brewsvc.Request{Config: cfg1, Fn: w.Apply, Args: args})
	if first.Degraded {
		t.Fatalf("first: %+v", first)
	}
	cfg2, args2 := mkCfg(2)
	second := svc.Do(&brewsvc.Request{Config: cfg2, Fn: w.Apply, Args: args2})
	if second.Degraded {
		t.Fatalf("second: %+v", second)
	}
	if st := svc.Stats(); st.Evictions != 1 {
		t.Fatalf("Evictions = %d, want 1", st.Evictions)
	}
	// The evicted key re-traces on resubmit.
	before := svc.Stats().Traces
	cfg1b, args1b := mkCfg(1)
	if out := svc.Do(&brewsvc.Request{Config: cfg1b, Fn: w.Apply, Args: args1b}); out.CacheHit {
		t.Fatalf("evicted key served from cache: %+v", out)
	}
	if got := svc.Stats().Traces; got != before+1 {
		t.Fatalf("evicted key did not re-trace")
	}

	svc.Close()
	if got := m.JITFreeBytes(); got != baseline {
		t.Fatalf("leaked JIT bytes: free %d, baseline %d", got, baseline)
	}
}

// TestShutdown: Close completes queued requests as degraded shutdowns,
// reclaims all code, and later Submits degrade instead of wedging.
func TestShutdown(t *testing.T) {
	m, w := newStencil(t)
	baseline := m.JITFreeBytes()
	svc := brewsvc.New(m, brewsvc.Options{Workers: 1, QueueCap: 8})

	block := make(chan struct{})
	blocked := make(chan struct{})
	var once sync.Once
	wedgeCfg, args := w.ApplyConfig()
	wedgeCfg.Inject = func(site string) error {
		if site == brew.SiteTrace {
			once.Do(func() { close(blocked) })
			<-block
		}
		return nil
	}
	wedge := svc.Submit(&brewsvc.Request{Config: wedgeCfg, Fn: w.Apply, Args: args})
	<-blocked

	queuedCfg, args2 := w.ApplyConfig()
	queued := svc.Submit(&brewsvc.Request{Config: queuedCfg, Fn: w.Apply, Args: args2})

	done := make(chan struct{})
	go func() {
		defer close(done)
		close(block) // let the in-flight rewrite finish while Close waits
		svc.Close()
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Close wedged")
	}

	// The queued request either drained as a shutdown degrade or was picked
	// up by the worker before Close acquired the queue; both are legal.
	qo := queued.Outcome()
	switch {
	case qo.Degraded && qo.Reason == brewsvc.ReasonShutdown && errors.Is(qo.Err, brewsvc.ErrClosed):
	case !qo.Degraded && qo.Entry != nil:
	default:
		t.Fatalf("queued outcome = %+v", qo)
	}
	<-wedge.Done()

	post := svc.Submit(&brewsvc.Request{Config: brew.NewConfig(), Fn: w.Apply})
	if out := post.Outcome(); !out.Degraded || out.Reason != brewsvc.ReasonShutdown || !errors.Is(out.Err, brewsvc.ErrClosed) {
		t.Fatalf("post-close outcome = %+v", out)
	}
	if got := m.JITFreeBytes(); got != baseline {
		t.Fatalf("leaked JIT bytes after Close: free %d, baseline %d", got, baseline)
	}
}

// TestUncacheableIsolation: Inject-bearing requests neither coalesce nor
// cache — each one runs its own trace.
func TestUncacheableIsolation(t *testing.T) {
	m, w := newStencil(t)
	svc := brewsvc.New(m, brewsvc.Options{Workers: 2})
	defer svc.Close()

	mk := func() *brewsvc.Request {
		cfg, args := w.ApplyConfig()
		cfg.Inject = func(string) error { return nil }
		return &brewsvc.Request{Config: cfg, Fn: w.Apply, Args: args}
	}
	const n = 4
	tickets := make([]*brewsvc.Ticket, n)
	for i := range tickets {
		tickets[i] = svc.Submit(mk())
	}
	for i, tk := range tickets {
		if out := tk.Outcome(); out.Degraded || out.Coalesced || out.CacheHit {
			t.Fatalf("request %d: %+v", i, out)
		}
	}
	if st := svc.Stats(); st.Traces != n || st.CoalesceHits != 0 || st.CacheHits != 0 {
		t.Fatalf("stats = %+v, want %d isolated traces", st, n)
	}
}
