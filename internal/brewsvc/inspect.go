package brewsvc

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/brew"
	"repro/internal/obs"
	"repro/internal/specmgr"
	"repro/internal/spstore"
)

// VariantInspect is one table variant's state in an inspection snapshot.
type VariantInspect struct {
	// Guards is the variant's guard key (empty = unconditional variant).
	Guards []brew.ParamGuard `json:"guards,omitempty"`
	// Tier is the rewrite effort the served body was built at.
	Tier string `json:"tier"`
	// Live reports whether the variant is still dispatched to.
	Live bool `json:"live"`
	// Addr and CodeSize describe the specialized body.
	Addr     uint64 `json:"addr"`
	CodeSize int    `json:"code_size"`
	// HotCalls and HotSamples are the promotion-hotness counters.
	HotCalls   uint64 `json:"hot_calls"`
	HotSamples uint64 `json:"hot_samples"`
	// GuardHits/GuardMisses/MissStreak are the guard accounting feeding
	// the storm policy (zero for the unconditional variant).
	GuardHits   uint64 `json:"guard_hits,omitempty"`
	GuardMisses uint64 `json:"guard_misses,omitempty"`
	MissStreak  uint64 `json:"miss_streak,omitempty"`
}

// EntryInspect is one managed entry's state in an inspection snapshot.
type EntryInspect struct {
	// Fn is the original function; Addr what callers are routed to now.
	Fn   uint64 `json:"fn"`
	Addr uint64 `json:"addr"`
	// Tier is the effort tier of the code actually served (brew.Effort
	// string; "-" when the entry serves the generic original).
	Tier     string `json:"tier"`
	Pending  bool   `json:"pending,omitempty"`
	Degraded bool   `json:"degraded,omitempty"`
	Deopted  bool   `json:"deopted,omitempty"`
	// Reason is the degrade/deopt reason, when any.
	Reason string `json:"reason,omitempty"`
	// HotCalls and HotSamples are the entry-level (stub-side) hotness.
	HotCalls   uint64 `json:"hot_calls"`
	HotSamples uint64 `json:"hot_samples"`
	// Refs counts the service references (flights + cache slots) keeping
	// the entry alive.
	Refs int `json:"refs"`
	// Shard is the service shard that owns the entry.
	Shard int `json:"shard"`
	// Variants is the live variant table.
	Variants []VariantInspect `json:"variants,omitempty"`
}

// ShardInspect is one service shard's state in an inspection snapshot.
type ShardInspect struct {
	// QueueDepths is the shard's queued-flight count per priority (low,
	// normal, high); QueueLen their sum, QueueCap the shard's admission
	// bound.
	QueueDepths [3]int `json:"queue_depths"`
	QueueLen    int    `json:"queue_len"`
	QueueCap    int    `json:"queue_cap"`
	// TrackedPromotions counts tier-0 variants this shard tracks.
	TrackedPromotions int `json:"tracked_promotions"`
	// EwmaRewriteNS is the shard's observed rewrite latency average,
	// feeding its admission-control wait estimate.
	EwmaRewriteNS uint64 `json:"ewma_rewrite_ns"`
	// Stats is the shard's own counter snapshot.
	Stats Stats `json:"stats"`
}

// Inspection is a structured point-in-time snapshot of the service: the
// live-introspection surface behind brew-top and the /inspect endpoint.
// The top-level queue and worker fields aggregate across shards; Shards
// carries the per-shard breakdown.
type Inspection struct {
	// QueueDepths is the queued-flight count per priority (low, normal,
	// high) summed across shards; QueueLen their sum, QueueCap the total
	// admission bound (per-shard cap times shard count).
	QueueDepths [3]int `json:"queue_depths"`
	QueueLen    int    `json:"queue_len"`
	QueueCap    int    `json:"queue_cap"`
	// Workers is the total rewriter goroutine count (all shards).
	Workers int  `json:"workers"`
	Closed  bool `json:"closed,omitempty"`
	// Stats is the unconditional service counter snapshot (all shards).
	Stats Stats `json:"stats"`
	// Shards is the per-shard breakdown, indexed by shard ID.
	Shards []ShardInspect `json:"shards"`
	// CacheLen is the total cached slots; CacheShards the per-shard
	// occupancy (skew here is a hash-quality signal).
	CacheLen    int   `json:"cache_len"`
	CacheShards []int `json:"cache_shards"`
	// TrackedPromotions counts tier-0 variants tracked for promotion
	// across all shards.
	TrackedPromotions int `json:"tracked_promotions"`
	// Entries are the shared variant-table entries, sorted by Fn.
	Entries []EntryInspect `json:"entries"`
	// Persist is the persistent rewrite store's counter snapshot (nil
	// when the service runs without a store).
	Persist *spstore.Stats `json:"persist,omitempty"`
	// Stages is the tracer's per-stage/per-tier quantile snapshot (empty
	// while observation is disabled).
	Stages []obs.StageQuantiles `json:"stages,omitempty"`
	// Events is the flight recorder's newest tail (empty while
	// observation is disabled).
	Events []obs.Event `json:"events,omitempty"`
}

// inspectEventTail bounds the flight-recorder tail an Inspection carries.
const inspectEventTail = 32

// Inspect assembles a structured snapshot of the service's live state:
// per-shard queue depths and counters, per-entry variant tables with
// tiers, hotness and guard hit/miss accounting, cache shard occupancy,
// stage quantiles and the flight-recorder tail. Safe for concurrent use;
// the snapshot is internally consistent per subsystem but not a global
// atomic cut (shards, queue and cache are sampled in sequence).
func (s *Service) Inspect() Inspection {
	ins := Inspection{
		Workers: len(s.shards) * s.cfg.workers,
		Closed:  s.closed.Load(),
		Shards:  make([]ShardInspect, len(s.shards)),
	}
	type entRef struct {
		e     *specmgr.Entry
		refs  int
		shard int
	}
	var ents []entRef
	for i, sh := range s.shards {
		sh.mu.Lock()
		si := ShardInspect{
			QueueDepths:       sh.q.depths(),
			QueueLen:          sh.q.len(),
			QueueCap:          s.cfg.queueCap,
			TrackedPromotions: len(sh.tracked),
		}
		for _, se := range sh.byFn {
			ents = append(ents, entRef{e: se.e, refs: se.refs, shard: i})
		}
		sh.mu.Unlock()
		si.EwmaRewriteNS = sh.ewmaNS.Load()
		si.Stats = sh.st.snapshot()
		ins.Shards[i] = si

		for p, d := range si.QueueDepths {
			ins.QueueDepths[p] += d
		}
		ins.QueueLen += si.QueueLen
		ins.QueueCap += si.QueueCap
		ins.TrackedPromotions += si.TrackedPromotions
		ins.Stats.add(si.Stats)
	}

	if s.cfg.store != nil {
		st := s.cfg.store.Stats()
		ins.Persist = &st
	}
	ins.CacheShards = s.cache.shardLens()
	for _, n := range ins.CacheShards {
		ins.CacheLen += n
	}
	for _, er := range ents {
		ei := inspectEntry(er.e, er.refs)
		ei.Shard = er.shard
		ins.Entries = append(ins.Entries, ei)
	}
	sort.Slice(ins.Entries, func(i, j int) bool { return ins.Entries[i].Fn < ins.Entries[j].Fn })
	if obs.Enabled() {
		ins.Stages = obs.StageSnapshot()
		ins.Events = obs.TailEvents(inspectEventTail)
	}
	return ins
}

func inspectEntry(e *specmgr.Entry, refs int) EntryInspect {
	calls, samples := e.Hotness()
	ei := EntryInspect{
		Fn: e.Fn(), Addr: e.Addr(),
		Pending: e.Pending(), Degraded: e.Degraded(),
		HotCalls: calls, HotSamples: samples,
		Refs: refs,
	}
	if deopted, reason := e.Deopted(); deopted {
		ei.Deopted, ei.Reason = true, reason
	}
	// The served tier is only meaningful when specialized code is live.
	if vs := e.Variants(); len(vs) > 0 {
		ei.Tier = e.Tier().String()
		for _, v := range vs {
			vi := VariantInspect{
				Guards: v.Key(),
				Tier:   v.Tier().String(),
				Live:   v.Live(),
			}
			vi.HotCalls, vi.HotSamples = v.Hotness()
			if res := v.Result(); res != nil {
				vi.Addr, vi.CodeSize = res.Addr, res.CodeSize
			}
			if gr := v.Guarded(); gr != nil {
				vi.GuardHits, vi.GuardMisses, vi.MissStreak = gr.Hits(), gr.Misses(), gr.MissStreak()
			}
			ei.Variants = append(ei.Variants, vi)
		}
		sort.Slice(ei.Variants, func(i, j int) bool {
			return fmt.Sprint(ei.Variants[i].Guards) < fmt.Sprint(ei.Variants[j].Guards)
		})
	} else {
		ei.Tier = "-"
	}
	return ei
}

// Render formats the inspection as the human-readable dashboard brew-top
// prints: service counters, queue/cache occupancy, per-shard lines, stage
// quantiles, the entry/variant tables and the flight-recorder tail.
func (i Inspection) Render() string {
	var b strings.Builder
	state := "running"
	if i.Closed {
		state = "closed"
	}
	fmt.Fprintf(&b, "service   %s, %d workers", state, i.Workers)
	if len(i.Shards) > 1 {
		fmt.Fprintf(&b, " across %d shards", len(i.Shards))
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "queue     %d/%d (high=%d normal=%d low=%d)\n",
		i.QueueLen, i.QueueCap, i.QueueDepths[PriorityHigh], i.QueueDepths[PriorityNormal], i.QueueDepths[PriorityLow])
	fmt.Fprintf(&b, "cache     %d slots, shards %v\n", i.CacheLen, i.CacheShards)
	st := i.Stats
	fmt.Fprintf(&b, "requests  submitted=%d coalesced=%d cache_hit=%d cache_miss=%d rejected=%d\n",
		st.Submitted, st.CoalesceHits, st.CacheHits, st.CacheMisses, st.Rejected)
	fmt.Fprintf(&b, "rewrites  traces=%d installed=%d degraded=%d evictions=%d\n",
		st.Traces, st.Promoted, st.Degraded, st.Evictions)
	if sheds := st.Sheds[0] + st.Sheds[1] + st.Sheds[2]; sheds > 0 || st.DeadlineSheds > 0 {
		fmt.Fprintf(&b, "admission sheds=%d (high=%d normal=%d low=%d) deadline=%d\n",
			sheds, st.Sheds[PriorityHigh], st.Sheds[PriorityNormal], st.Sheds[PriorityLow],
			st.DeadlineSheds)
	}
	if p := i.Persist; p != nil {
		fmt.Fprintf(&b, "persist   warm_hits=%d reval_fails=%d quarantined=%d puts=%d gen=%d remote[hits=%d puts=%d timeouts=%d errs=%d queue=%d] breaker_open=%v\n",
			p.WarmHits, p.RevalFails, p.Quarantined, p.Puts, p.Generation,
			p.RemoteHits, p.RemotePuts, p.RemoteTOs, p.RemoteErrs, p.RemoteQueue, p.BreakerOpen)
	}
	fmt.Fprintf(&b, "tiering   tracked=%d promoted=%d failed=%d\n",
		i.TrackedPromotions, st.TierPromotions, st.TierDemotions)

	if len(i.Shards) > 1 {
		fmt.Fprintf(&b, "\n%-6s %9s %9s %9s %9s %9s %9s %12s\n",
			"shard", "queue", "submitted", "hits", "traces", "sheds", "tracked", "ewma")
		for id, sh := range i.Shards {
			ss := sh.Stats
			fmt.Fprintf(&b, "s%-5d %4d/%-4d %9d %9d %9d %9d %9d %12s\n",
				id, sh.QueueLen, sh.QueueCap, ss.Submitted, ss.CacheHits, ss.Traces,
				ss.Sheds[0]+ss.Sheds[1]+ss.Sheds[2], sh.TrackedPromotions,
				fmtNS(int64(sh.EwmaRewriteNS)))
		}
	}

	if len(i.Stages) > 0 {
		fmt.Fprintf(&b, "\n%-12s %-5s %9s %12s %12s %12s %12s\n",
			"stage", "tier", "count", "p50", "p99", "p999", "max")
		for _, sq := range i.Stages {
			fmt.Fprintf(&b, "%-12s %-5s %9d %12s %12s %12s %12s\n",
				sq.StageS, sq.TierS, sq.Count,
				fmtNS(sq.P50NS), fmtNS(sq.P99NS), fmtNS(sq.P999NS), fmtNS(sq.MaxNS))
		}
	}

	if len(i.Entries) > 0 {
		fmt.Fprintf(&b, "\n%-12s %-12s %-5s %-8s %9s %9s %5s  %s\n",
			"fn", "addr", "tier", "state", "calls", "samples", "refs", "variants")
		for _, e := range i.Entries {
			state := "live"
			switch {
			case e.Pending:
				state = "pending"
			case e.Deopted:
				state = "deopted"
			case e.Degraded:
				state = "degraded"
			}
			if e.Reason != "" {
				state += "(" + e.Reason + ")"
			}
			fmt.Fprintf(&b, "0x%-10x 0x%-10x %-5s %-8s %9d %9d %5d  %d\n",
				e.Fn, e.Addr, e.Tier, state, e.HotCalls, e.HotSamples, e.Refs, len(e.Variants))
			for _, v := range e.Variants {
				live := "live"
				if !v.Live {
					live = "dead"
				}
				guards := "unconditional"
				if len(v.Guards) > 0 {
					parts := make([]string, len(v.Guards))
					for gi, g := range v.Guards {
						parts[gi] = fmt.Sprintf("a%d=%d", g.Param, g.Value)
					}
					guards = strings.Join(parts, ",")
				}
				fmt.Fprintf(&b, "  · %-24s %-5s %-4s 0x%-10x %5dB calls=%d samples=%d",
					guards, v.Tier, live, v.Addr, v.CodeSize, v.HotCalls, v.HotSamples)
				if v.GuardHits+v.GuardMisses > 0 {
					fmt.Fprintf(&b, " hit=%d miss=%d streak=%d", v.GuardHits, v.GuardMisses, v.MissStreak)
				}
				b.WriteByte('\n')
			}
		}
	}

	if len(i.Events) > 0 {
		fmt.Fprintf(&b, "\nflight recorder (newest %d):\n%s", len(i.Events), obs.FormatEvents(i.Events))
	}
	return b.String()
}

func fmtNS(ns int64) string {
	switch {
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}
