// Package brewsvc is the concurrent specialization service: a long-lived
// layer above brew.Do that lets many goroutines request specializations
// without each paying the multi-millisecond trace cost. It owns
//
//   - a worker pool of rewriter goroutines draining
//   - a bounded three-level priority queue with backpressure (a full queue
//     rejects the request, degrading it to the original function — never
//     blocking or deadlocking the submitter), and
//   - singleflight coalescing: N concurrent callers asking for the same
//     (fn, Config fingerprint, known argument/guard values) trigger exactly
//     one trace and share the resulting JIT code, landing in
//   - a sharded specialized-code cache (config-fingerprint keyed, LRU per
//     shard, reclaimed through the specialization manager on eviction).
//
// Multi-version specialization: guarded requests that differ only in
// their guard values share one specmgr entry (keyed by entryKey — the
// guard param set, not the values) and install as sibling variants of its
// table, dispatched by the entry's inline-cache chain. Each cache slot
// remembers the specific variant its guard values route to; a hit on a
// slot whose variant was demoted (guard-miss storm, assumption
// violation) or evicted drops the slot and re-traces, so the cache never
// serves a dead variant.
//
// Completed rewrites are hot-installed through specmgr jump stubs
// ("rewrite-behind"): Submit returns a Ticket whose Addr is callable
// immediately — it routes to the original function until the worker
// promotes the specialization, so the hot path never blocks on a trace.
//
// Failure isolation follows the repo invariant: an injected fault, budget
// exhaustion, or rewriter panic degrades that one request to the original
// function; it never poisons the cache (degraded outcomes are not cached)
// and never wedges the queue. Requests carrying a Config.Inject hook are
// neither coalesced nor cached — the hook is per-request runtime behavior,
// invisible to the fingerprint by design.
//
// Tiered rewriting: requests carrying brew.EffortQuick install cheap
// tier-0 code (trace + constant folding, no optimization passes) and,
// when Options.PromoteAfter is set, accumulate hotness until an explicit
// PumpPromotions call hands them to a background worker that re-rewrites
// at brew.EffortFull and hot-swaps the optimized body (promote.go).
// Promotion rewrites start ONLY from PumpPromotions — call it while the
// machine is idle and await the returned tickets before resuming
// emulated execution. The effort tier is part of the Config fingerprint,
// so tier-0 and tier-1 requests never coalesce onto one flight or share
// a cache slot — an explicit EffortFull request can never be served
// tier-0 code.
package brewsvc

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/brew"
	"repro/internal/obs"
	"repro/internal/specmgr"
	"repro/internal/spstore"
	"repro/internal/vm"
)

// Service-level degradation reasons, extending the brew.Reason* vocabulary.
const (
	// ReasonQueueFull: the bounded queue rejected the request.
	ReasonQueueFull = "queue-full"
	// ReasonShutdown: the service was closed before the request ran.
	ReasonShutdown = "shutdown"
)

// Service-level errors.
var (
	// ErrQueueFull reports backpressure: the request was degraded to the
	// original function without being enqueued.
	ErrQueueFull = errors.New("brewsvc: request queue full")
	// ErrClosed reports a request submitted to (or drained by) a closed
	// service.
	ErrClosed = errors.New("brewsvc: service closed")
)

// Priority orders queued requests. Within a level the queue is FIFO.
type Priority uint8

// Queue priorities.
const (
	PriorityLow Priority = iota
	PriorityNormal
	PriorityHigh
)

// Request is one service specialization request. The brew.Request fields
// keep their Do semantics; Mode is owned by the service (every rewrite runs
// under ModeDegrade — the service never fails a caller, it degrades).
type Request struct {
	// Config declares the rewrite assumptions. The service clones it at
	// admission, so the caller may reuse or mutate it afterwards.
	Config *brew.Config
	// Fn is the function to specialize.
	Fn uint64
	// Args and FArgs supply the rewrite-time parameter setting.
	Args  []uint64
	FArgs []float64
	// Guards, when non-empty, request a guarded specialization.
	Guards []brew.ParamGuard
	// Priority orders the request in the bounded queue.
	Priority Priority
}

// Outcome is the completed state of a request.
type Outcome struct {
	// Entry is the managed specialization entry (nil when no entry was
	// created: rejected, shut down, or invalid requests). Its Addr stays
	// valid until the entry is evicted from the cache or the service
	// closes.
	Entry *specmgr.Entry
	// Addr is always callable: specialized code, a guard dispatcher, or —
	// degraded — the original function.
	Addr uint64
	// Variant is the table variant this request's guard values route to
	// (nil for degraded, rejected, and uncacheable outcomes).
	Variant *specmgr.Variant
	// Degraded marks an outcome running the original function; Reason
	// holds the brew.Reason* / Reason* vocabulary label and Err the cause.
	Degraded bool
	Reason   string
	Err      error
	// Coalesced marks a caller that shared another caller's in-flight
	// trace; CacheHit marks a caller served from the specialized-code
	// cache. Both are false for the caller that triggered the trace.
	Coalesced bool
	CacheHit  bool
}

// Ticket is the handle Submit returns. Addr is callable immediately
// (rewrite-behind); Outcome blocks until the request completes.
type Ticket struct {
	addr      uint64
	coalesced bool
	cacheHit  bool
	done      chan struct{}
	out       Outcome

	// Lifecycle tracing (zero when untraced): a coalesced caller's span
	// runs from its Submit to the shared completion and links to the
	// flight's trace.
	trace     obs.TraceID
	spanStart int64
	fn        uint64
	link      obs.TraceID
}

// Addr returns the immediately callable address: cached specialized code,
// the entry's patchable stub (routing to the original function until the
// rewrite lands), or the original function itself.
func (t *Ticket) Addr() uint64 { return t.addr }

// Done returns a channel closed when the outcome is available.
func (t *Ticket) Done() <-chan struct{} { return t.done }

// Outcome blocks until the request completes and returns its outcome.
func (t *Ticket) Outcome() Outcome {
	<-t.done
	return t.out
}

// TryOutcome returns the outcome if the request already completed.
func (t *Ticket) TryOutcome() (Outcome, bool) {
	select {
	case <-t.done:
		return t.out, true
	default:
		return Outcome{}, false
	}
}

// complete publishes the outcome (exactly once per ticket) and merges the
// per-caller admission flags.
func (t *Ticket) complete(o Outcome) {
	o.Coalesced = t.coalesced
	o.CacheHit = t.cacheHit
	t.out = o
	close(t.done)
	if t.link != 0 {
		obs.EndSpan(t.trace, obs.StageCoalesce, obs.TierNone, t.spanStart, t.fn, t.link)
	}
}

// doneTicket returns an already-completed ticket.
func doneTicket(o Outcome) *Ticket {
	t := &Ticket{addr: o.Addr, done: make(chan struct{}), cacheHit: o.CacheHit}
	o.CacheHit = false // complete re-merges the flag
	t.complete(o)
	return t
}

// Options configures a Service. Zero fields take the documented defaults.
type Options struct {
	// Workers is the rewriter goroutine count (default 4).
	Workers int
	// QueueCap bounds the total queued (not yet running) requests across
	// all priority levels; a full queue rejects with ErrQueueFull
	// (default 64).
	QueueCap int
	// Shards is the specialized-code cache shard count (default 8);
	// PerShard the LRU capacity of each shard (default 32). Size the cache
	// generously: eviction releases the entry's code, so an evicted
	// entry's Addr must no longer be used (the specmgr.Release contract).
	Shards   int
	PerShard int
	// Manager, when non-nil, is the externally owned specialization
	// manager to install through; otherwise the service creates one with
	// Policy.
	Manager *specmgr.Manager
	// Policy configures the internally created manager (ignored when
	// Manager is set). Detached service entries are exempt from MaxLive.
	Policy specmgr.Policy
	// PromoteAfter is the tiered-rewriting hotness threshold: a cached
	// tier-0 (brew.EffortQuick) entry whose hotness — managed calls plus
	// profiler samples attributed by NoteSample — reaches this value
	// becomes due for promotion. The EffortFull re-rewrite and hot-swap
	// start only from an explicit PumpPromotions call, whose tickets the
	// host must await before resuming emulated execution (see
	// promote.go). Zero or negative disables promotion.
	PromoteAfter int
	// Store, when non-nil, is the persistent rewrite store (warm start):
	// workers consult it before tracing a cacheable request — a record
	// passing full revalidation (persist.go) is adopted instead of
	// re-traced — and persist every successful install write-behind.
	Store *spstore.Store
	// PersistDrainTimeout bounds Close's wait for the store's remote
	// write-behind queue (default 2s; only used when Store is set). Close
	// never hangs on a remote put stuck in backoff.
	PersistDrainTimeout time.Duration
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.QueueCap <= 0 {
		o.QueueCap = 64
	}
	if o.Shards <= 0 {
		o.Shards = 8
	}
	if o.PerShard <= 0 {
		o.PerShard = 32
	}
	return o
}

// Stats is a point-in-time snapshot of the service counters (collected
// unconditionally; the telemetry mirrors are gated on telemetry.Enable).
type Stats struct {
	Submitted    uint64 // Submit calls
	CoalesceHits uint64 // callers that joined an in-flight trace
	CacheHits    uint64 // callers served from the specialized-code cache
	CacheMisses  uint64 // cacheable requests that started a new flight
	Rejected     uint64 // backpressure rejections (queue full)
	Traces       uint64 // rewrites actually run by workers
	WarmHits     uint64 // flights served by persistent-store adoption (no trace)
	Promoted     uint64 // successful hot-installs
	Degraded     uint64 // worker rewrites that degraded to the original
	Evictions    uint64 // cache LRU evictions

	// Tiered rewriting (promote.go).
	TierPromotions uint64 // hot tier-0 entries hot-swapped to EffortFull code
	TierDemotions  uint64 // promotion attempts that failed (entry stays tier-0)
}

type stats struct {
	submitted, coalesced, cacheHits, cacheMisses atomic.Uint64
	rejected, traces, promoted, degraded         atomic.Uint64
	evictions, tierPromoted, tierDemoted         atomic.Uint64
	warmHits                                     atomic.Uint64
}

// Service is the concurrent specialization service. Create with New, stop
// with Close. All methods are safe for concurrent use; the machine must
// not execute emulated code while rewrites are in flight (the RewriteBatch
// contract, inherited from the tracer reading machine memory).
type Service struct {
	m   *vm.Machine
	mgr *specmgr.Manager
	opt Options

	closed atomic.Bool

	mu       sync.Mutex
	cond     *sync.Cond
	q        *queue
	inflight map[cacheKey]*flight
	byFn     map[entryKey]*sharedEnt        // variant-table entries shared across guard values
	orphans  []*specmgr.Entry               // promoted-but-uncacheable or degraded entries, released at Close
	tracked  map[*specmgr.Variant]*hotTrack // tier-0 variants eligible for promotion
	hotIndex atomic.Pointer[[]hotRange]     // immutable sorted snapshot of tracked code ranges (NoteSample)

	cache *cache
	wg    sync.WaitGroup
	st    stats
}

// sharedEnt is the service-side ownership record of one variant-table
// entry: refs counts the flights and cache slots pointing at it; at zero
// the entry leaves the table and is released (or orphaned, when its
// address was handed out degraded). Guarded by Service.mu.
type sharedEnt struct {
	e    *specmgr.Entry
	refs int
}

// flight is one in-progress specialization shared by every coalesced
// caller. A promo flight re-rewrites an already-live tier-0 variant at
// EffortFull and completes through specmgr.RepromoteVariant instead of
// InstallVariant.
type flight struct {
	k         cacheKey
	ek        entryKey
	cacheable bool
	promo     bool
	req       *brew.Request // service-owned copy (config cloned, slices copied)
	entry     *specmgr.Entry
	variant   *specmgr.Variant // promo flights: the variant being re-tiered
	prio      Priority
	tickets   []*Ticket // guarded by Service.mu

	// Lifecycle tracing (zero when untraced): trace is the creator's
	// request trace (promo flights get their own, linked to the request
	// that installed the tier-0 variant); enqNS anchors the queue-wait
	// span.
	trace obs.TraceID
	link  obs.TraceID
	enqNS int64
}

// tierOf maps a rewrite effort to its span tier label.
func tierOf(eff brew.Effort) obs.Tier {
	if eff == brew.EffortQuick {
		return obs.TierQuick
	}
	return obs.TierFull
}

// New starts a service over machine m. The returned service owns its
// worker goroutines until Close.
func New(m *vm.Machine, opt Options) *Service {
	opt = opt.withDefaults()
	mgr := opt.Manager
	if mgr == nil {
		mgr = specmgr.New(m, opt.Policy)
	}
	s := &Service{
		m:        m,
		mgr:      mgr,
		opt:      opt,
		q:        newQueue(opt.QueueCap),
		inflight: make(map[cacheKey]*flight),
		byFn:     make(map[entryKey]*sharedEnt),
		cache:    newCache(opt.Shards, opt.PerShard),
	}
	s.cond = sync.NewCond(&s.mu)
	s.wg.Add(opt.Workers)
	for i := 0; i < opt.Workers; i++ {
		go s.worker()
	}
	return s
}

// Manager returns the specialization manager the service installs through.
func (s *Service) Manager() *specmgr.Manager { return s.mgr }

// Stats returns a snapshot of the service counters.
func (s *Service) Stats() Stats {
	return Stats{
		Submitted:    s.st.submitted.Load(),
		CoalesceHits: s.st.coalesced.Load(),
		CacheHits:    s.st.cacheHits.Load(),
		CacheMisses:  s.st.cacheMisses.Load(),
		Rejected:     s.st.rejected.Load(),
		Traces:       s.st.traces.Load(),
		WarmHits:     s.st.warmHits.Load(),
		Promoted:     s.st.promoted.Load(),
		Degraded:     s.st.degraded.Load(),
		Evictions:    s.st.evictions.Load(),

		TierPromotions: s.st.tierPromoted.Load(),
		TierDemotions:  s.st.tierDemoted.Load(),
	}
}

// Submit admits one request and returns its ticket without ever blocking
// on a trace: the ticket's Addr is callable immediately. Admission order:
// cache hit (shared specialized code), coalesce (join the in-flight trace
// for the same key), enqueue (backpressure-checked), reject.
func (s *Service) Submit(req *Request) *Ticket {
	s.st.submitted.Add(1)
	mSubmitted.Inc()
	if req == nil {
		return doneTicket(Outcome{
			Degraded: true, Reason: brew.ReasonBadConfig,
			Err: fmt.Errorf("%w: nil request", brew.ErrBadConfig),
		})
	}
	if req.Config == nil {
		return doneTicket(Outcome{
			Addr: req.Fn, Degraded: true, Reason: brew.ReasonBadConfig,
			Err: fmt.Errorf("%w: nil configuration", brew.ErrBadConfig),
		})
	}
	if s.closed.Load() {
		return s.shutdownTicket(req.Fn)
	}

	// Lifecycle tracing: one trace per admitted request, spans gated to
	// no-ops (tid == 0) while observation is disabled.
	tid := obs.StartTrace()
	subStart := obs.Now()

	// The fault-injection seam is per-request runtime behavior outside the
	// fingerprint: such requests must not share traces or cache slots.
	cacheable := req.Config.Inject == nil
	var k cacheKey
	var ek entryKey
	if cacheable {
		k = keyOf(req)
		ek = entryKeyOf(req)
		lookStart := obs.Now()
		cv, ok := s.cache.get(k)
		obs.EndSpan(tid, obs.StageCacheLookup, obs.TierNone, lookStart, req.Fn, 0)
		if ok {
			if cv.v.Live() {
				s.st.cacheHits.Add(1)
				mCacheHits.Inc()
				obs.EndSpan(tid, obs.StageSubmit, obs.TierNone, subStart, req.Fn, 0)
				return doneTicket(Outcome{Entry: cv.e, Addr: cv.e.Addr(), Variant: cv.v, CacheHit: true})
			}
			// The slot's variant was demoted (guard-miss storm, assumption
			// violation) since it was cached: serving it would route this
			// caller to the generic original forever. Drop the slot and
			// fall through to a fresh trace.
			s.dropDeadSlot(k, cv)
		}
	}

	s.mu.Lock()
	if s.closed.Load() {
		s.mu.Unlock()
		obs.EndSpan(tid, obs.StageSubmit, obs.TierNone, subStart, req.Fn, 0)
		return s.shutdownTicket(req.Fn)
	}
	if cacheable {
		if f := s.inflight[k]; f != nil {
			t := &Ticket{addr: f.entry.Addr(), coalesced: true, done: make(chan struct{}),
				trace: tid, spanStart: subStart, fn: req.Fn, link: f.trace}
			f.tickets = append(f.tickets, t)
			s.st.coalesced.Add(1)
			mCoalesceHits.Inc()
			s.mu.Unlock()
			obs.EndSpan(tid, obs.StageSubmit, obs.TierNone, subStart, req.Fn, 0)
			return t
		}
		s.st.cacheMisses.Add(1)
		mCacheMisses.Inc()
	}
	if s.q.full() {
		s.st.rejected.Add(1)
		mRejected.Inc()
		s.mu.Unlock()
		if tid != 0 {
			obs.Emit(obs.Event{Kind: obs.KindDegrade, Trace: tid, Fn: req.Fn,
				Tier: obs.TierNone, Reason: ReasonQueueFull})
			obs.EndSpan(tid, obs.StageSubmit, obs.TierNone, subStart, req.Fn, 0)
		}
		return doneTicket(Outcome{
			Addr: req.Fn, Degraded: true, Reason: ReasonQueueFull, Err: ErrQueueFull,
		})
	}

	// Admit: take ownership of the request (the caller may mutate its
	// Config or reuse its slices after Submit returns) and hand out the
	// rewrite-behind stub. Cacheable requests share the variant-table
	// entry for their entry key; uncacheable ones get a private entry.
	own := &brew.Request{
		Config: req.Config.Clone(),
		Fn:     req.Fn,
		Args:   append([]uint64(nil), req.Args...),
		FArgs:  append([]float64(nil), req.FArgs...),
		Guards: append([]brew.ParamGuard(nil), req.Guards...),
		Mode:   brew.ModeDegrade,
	}
	var entry *specmgr.Entry
	if cacheable {
		se := s.byFn[ek]
		if se == nil {
			se = &sharedEnt{e: s.mgr.AdoptPending(own.Config, own.Fn, own.Args, own.FArgs, own.Guards)}
			s.byFn[ek] = se
		}
		se.refs++ // the flight's reference; transfers to the cache slot on success
		entry = se.e
	} else {
		entry = s.mgr.AdoptPending(own.Config, own.Fn, own.Args, own.FArgs, own.Guards)
	}
	f := &flight{k: k, ek: ek, cacheable: cacheable, req: own, entry: entry, prio: req.Priority,
		trace: tid, enqNS: obs.Now()}
	t := &Ticket{addr: entry.Addr(), done: make(chan struct{})}
	f.tickets = []*Ticket{t}
	s.q.push(f)
	mQueueDepth.Set(int64(s.q.len()))
	if cacheable {
		s.inflight[k] = f
	}
	s.cond.Signal()
	s.mu.Unlock()
	obs.EndSpan(tid, obs.StageSubmit, obs.TierNone, subStart, req.Fn, 0)
	return t
}

// dropDeadSlot removes a cache slot whose variant died and drops the
// reference the slot held. Safe against racing submitters: only the one
// whose remove actually hit the slot adjusts the refcount.
func (s *Service) dropDeadSlot(k cacheKey, cv cacheVal) {
	if !s.cache.remove(k, cv.v) {
		return
	}
	s.st.evictions.Add(1)
	mCacheEvictions.Inc()
	s.untrack(cv.v)
	s.mu.Lock()
	release := s.derefEntryLocked(cv.ek, cv.e)
	s.mu.Unlock()
	if release {
		s.mgr.Release(cv.e)
	}
}

// derefEntryLocked drops one reference on ek's shared entry and reports
// whether the caller must release it (last reference gone). Service.mu
// held.
func (s *Service) derefEntryLocked(ek entryKey, e *specmgr.Entry) bool {
	se := s.byFn[ek]
	if se == nil || se.e != e {
		return false
	}
	se.refs--
	if se.refs > 0 {
		return false
	}
	delete(s.byFn, ek)
	return true
}

// Do is the blocking convenience form: Submit then wait for the outcome.
func (s *Service) Do(req *Request) Outcome {
	return s.Submit(req).Outcome()
}

func (s *Service) shutdownTicket(fn uint64) *Ticket {
	return doneTicket(Outcome{Addr: fn, Degraded: true, Reason: ReasonShutdown, Err: ErrClosed})
}

// worker drains the queue: trace, promote, cache, complete.
func (s *Service) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for s.q.empty() && !s.closed.Load() {
			s.cond.Wait()
		}
		f := s.q.pop()
		if f == nil { // closed, queue drained
			s.mu.Unlock()
			return
		}
		mQueueDepth.Set(int64(s.q.len()))
		s.mu.Unlock()

		tier := tierOf(f.req.Config.Effort)
		obs.EndSpan(f.trace, obs.StageQueue, tier, f.enqNS, f.req.Fn, f.link)

		// Warm start: before paying a trace, a cacheable flight consults
		// the persistent store. Adoption never happens blindly — the
		// record is fully revalidated against the live machine (checksum,
		// original code, frozen-region digests, guard set, placement; see
		// spstore.Adopt) and any failure quarantines it and falls through
		// to a fresh trace.
		var out *brew.Outcome
		var rerr error
		warm := false
		if s.opt.Store != nil && f.cacheable && !f.promo {
			out = s.warmAdopt(f)
			warm = out != nil
		}
		if warm {
			s.st.warmHits.Add(1)
			mWarmHits.Inc()
		} else {
			s.st.traces.Add(1)
			mTraces.Inc()
			rwStart := obs.Now()
			start := time.Now()
			out, rerr = brew.Do(s.m, f.req)
			us := uint64(time.Since(start).Microseconds())
			obs.EndSpan(f.trace, obs.StageRewrite, tier, rwStart, f.req.Fn, f.link)
			mLatencyUS.Observe(us)
			if f.req.Config.Effort == brew.EffortQuick {
				mLatencyQuickUS.Observe(us)
			} else {
				mLatencyFullUS.Observe(us)
			}
		}

		if f.promo {
			s.completePromotion(f, out, rerr)
			continue
		}

		var res Outcome
		if f.cacheable {
			res = s.completeCacheable(f, out, rerr, warm)
		} else {
			res = s.completeUncacheable(f, out, rerr)
		}

		s.mu.Lock()
		if f.cacheable {
			delete(s.inflight, f.k)
		}
		tickets := f.tickets
		f.tickets = nil
		for _, t := range tickets {
			t.complete(res)
		}
		s.mu.Unlock()
	}
}

// completeCacheable installs a finished cacheable rewrite as a variant of
// the shared entry and publishes it to the cache.
func (s *Service) completeCacheable(f *flight, out *brew.Outcome, rerr error, warm bool) Outcome {
	instStart := obs.Now()
	v, ok := s.mgr.InstallVariant(f.entry, f.req.Config, f.req.Guards, f.req.Args, f.req.FArgs, out, rerr)
	obs.EndSpan(f.trace, obs.StageInstall, tierOf(f.req.Config.Effort), instStart, f.req.Fn, 0)
	res := Outcome{Entry: f.entry, Addr: f.entry.Addr(), Variant: v}
	if !ok {
		// Degraded: the variant was not installed and the key is NOT
		// cached — a later Submit with the same key retries the
		// specialization from scratch. The entry itself survives as long
		// as siblings or slots reference it; the last reference orphans it
		// (its handed-out Addr stays callable until Close).
		s.st.degraded.Add(1)
		mDegraded.Inc()
		res.Degraded = true
		res.Err = rerr
		if out != nil {
			res.Reason = out.Reason
		}
		s.mu.Lock()
		removed := s.derefEntryLocked(f.ek, f.entry)
		s.mu.Unlock()
		if removed {
			s.trackOrphan(f.entry)
		}
		return res
	}
	s.st.promoted.Add(1)
	mPromotions.Inc()
	// Track BEFORE publishing to the cache: the moment the variant is
	// visible there, a racing put can evict and remove it, and that
	// eviction's untrack must find the registration — a track added after
	// the removal would pin a stale code range in the sample index and
	// leak the dead record in s.tracked.
	if s.opt.PromoteAfter > 0 && f.req.Config.Effort == brew.EffortQuick &&
		out != nil && out.Result != nil && !out.Result.Degraded {
		s.mu.Lock()
		s.trackLocked(f, v, out.Result)
		s.mu.Unlock()
	}
	// Insert before dropping the inflight slot so a racing Submit sees
	// either the flight or the cache, never a gap that would duplicate
	// the trace. The flight's entry reference transfers to the slot.
	for _, victim := range s.cache.put(f.k, cacheVal{e: f.entry, v: v, ek: f.ek}) {
		s.evictVictim(victim, v)
	}
	// Persist freshly traced installs (a warm adoption would re-write the
	// identical record). The local write is synchronous on this worker —
	// off the serve path — and the remote copy is write-behind.
	if s.opt.Store != nil && !warm {
		s.persist(f, out)
	}
	return res
}

// evictVictim reclaims one displaced cache slot: the variant it served is
// removed from its table (unless it IS the just-installed variant — a
// same-key collision replaced the slot, and the new slot carries the
// reference for the same code) and the slot's entry reference is dropped,
// releasing the entry when it was the last.
func (s *Service) evictVictim(victim cacheVal, justInstalled *specmgr.Variant) {
	s.st.evictions.Add(1)
	mCacheEvictions.Inc()
	if victim.v != justInstalled {
		s.untrack(victim.v)
		s.mgr.RemoveVariant(victim.e, victim.v)
	}
	s.mu.Lock()
	release := s.derefEntryLocked(victim.ek, victim.e)
	s.mu.Unlock()
	if release {
		s.mgr.Release(victim.e)
	}
}

// completeUncacheable finishes a private-entry flight (Config.Inject set:
// no coalescing, no cache, legacy whole-entry promotion).
func (s *Service) completeUncacheable(f *flight, out *brew.Outcome, rerr error) Outcome {
	instStart := obs.Now()
	promoted := s.mgr.Promote(f.entry, out, rerr)
	obs.EndSpan(f.trace, obs.StageInstall, tierOf(f.req.Config.Effort), instStart, f.req.Fn, 0)
	res := Outcome{Entry: f.entry, Addr: f.entry.Addr()}
	if promoted {
		s.st.promoted.Add(1)
		mPromotions.Inc()
	} else {
		s.st.degraded.Add(1)
		mDegraded.Inc()
		res.Degraded = true
		res.Err = rerr
		if out != nil {
			res.Reason = out.Reason
		}
	}
	s.trackOrphan(f.entry)
	return res
}

func (s *Service) trackOrphan(e *specmgr.Entry) {
	s.mu.Lock()
	s.orphans = append(s.orphans, e)
	s.mu.Unlock()
}

// Close stops the service: queued (not yet running) requests complete
// degraded with ReasonShutdown, in-flight rewrites finish, and every entry
// the service owns — queued, cached, and orphaned — is released, returning
// all JIT code-buffer space. Outcome addresses must no longer be used
// afterwards. Close is idempotent; concurrent Submits complete degraded.
func (s *Service) Close() {
	if s.closed.Swap(true) {
		s.wg.Wait()
		return
	}
	s.mu.Lock()
	var drained []*flight
	for f := s.q.pop(); f != nil; f = s.q.pop() {
		drained = append(drained, f)
	}
	mQueueDepth.Set(0)
	var unref []*specmgr.Entry
	for _, f := range drained {
		if f.cacheable {
			delete(s.inflight, f.k)
			if s.derefEntryLocked(f.ek, f.entry) {
				// Last reference: the entry just left byFn, so the sweep
				// below cannot reach it anymore.
				unref = append(unref, f.entry)
			}
		}
		for _, t := range f.tickets {
			t.complete(Outcome{Addr: f.req.Fn, Degraded: true, Reason: ReasonShutdown, Err: ErrClosed})
		}
	}
	s.cond.Broadcast()
	s.mu.Unlock()

	// Private entries of drained flights are owned by nobody else; shared
	// (cacheable) entries still referenced are swept via byFn/cache below.
	for _, e := range unref {
		s.mgr.Release(e)
	}
	for _, f := range drained {
		if !f.cacheable && !f.promo {
			s.mgr.Release(f.entry)
		}
	}
	s.wg.Wait()

	s.mu.Lock()
	orphans := s.orphans
	s.orphans = nil
	shared := make([]*specmgr.Entry, 0, len(s.byFn))
	for ek, se := range s.byFn {
		shared = append(shared, se.e)
		delete(s.byFn, ek)
	}
	s.mu.Unlock()
	for _, e := range orphans {
		s.mgr.Release(e)
	}
	for _, e := range shared {
		s.mgr.Release(e)
	}
	// Release is idempotent: slots whose entries were just swept via byFn
	// are harmless repeats.
	for _, cv := range s.cache.drain() {
		s.mgr.Release(cv.e)
	}
	// Bounded persist-queue drain: give the store's remote write-behind a
	// chance to flush, but never hang on a put stuck in retry backoff
	// (the local tier already has every record).
	if s.opt.Store != nil {
		d := s.opt.PersistDrainTimeout
		if d <= 0 {
			d = 2 * time.Second
		}
		s.opt.Store.Drain(d)
	}
}
