// Package brewsvc is the concurrent specialization service: a long-lived
// layer above brew.Do that lets many goroutines request specializations
// without each paying the multi-millisecond trace cost. It owns
//
//   - service shards partitioned by entry key (function, Config
//     fingerprint, known values, guard param set — see WithShards), each
//     with its own admission lock, worker pool of rewriter goroutines,
//     bounded three-level priority queue, and promotion pump state, so
//     unrelated fingerprints never contend on one mutex;
//   - backpressure per shard: a full queue rejects the request, degrading
//     it to the original function — never blocking or deadlocking the
//     submitter — and WithAdmission upgrades this to per-priority SLOs
//     with deadline-aware shedding (admission.go);
//   - singleflight coalescing: N concurrent callers asking for the same
//     (fn, Config fingerprint, known argument/guard values) trigger exactly
//     one trace and share the resulting JIT code, landing in
//   - a sharded specialized-code cache (config-fingerprint keyed, LRU per
//     shard, reclaimed through the specialization manager on eviction)
//     whose hit path is lock-free: readers walk an immutable map snapshot
//     behind an atomic pointer, so a warm hit takes zero service locks
//     end to end (verified by the brewsvc_lockstat build, lockstat.go).
//
// Multi-version specialization: guarded requests that differ only in
// their guard values share one specmgr entry (keyed by entryKey — the
// guard param set, not the values) and install as sibling variants of its
// table, dispatched by the entry's inline-cache chain. Each cache slot
// remembers the specific variant its guard values route to; a hit on a
// slot whose variant was demoted (guard-miss storm, assumption
// violation) or evicted drops the slot and re-traces, so the cache never
// serves a dead variant. Shard selection uses the entry key, so sibling
// variants always share a shard and a variant table.
//
// Completed rewrites are hot-installed through specmgr jump stubs
// ("rewrite-behind"): Submit returns a Ticket whose Addr is callable
// immediately — it routes to the original function until the worker
// promotes the specialization, so the hot path never blocks on a trace.
//
// Failure isolation follows the repo invariant: an injected fault, budget
// exhaustion, or rewriter panic degrades that one request to the original
// function; it never poisons the cache (degraded outcomes are not cached)
// and never wedges the queue. Requests carrying a Config.Inject hook are
// neither coalesced nor cached — the hook is per-request runtime behavior,
// invisible to the fingerprint by design.
//
// Tiered rewriting: requests carrying brew.EffortQuick install cheap
// tier-0 code (trace + constant folding, no optimization passes) and,
// when promotion is enabled (WithPromotion), accumulate hotness until an
// explicit PumpPromotions call hands them to a background worker that
// re-rewrites at brew.EffortFull and hot-swaps the optimized body
// (promote.go). Promotion rewrites start ONLY from PumpPromotions — call
// it while the machine is idle and await the returned batch before
// resuming emulated execution. The effort tier is part of the Config
// fingerprint, so tier-0 and tier-1 requests never coalesce onto one
// flight or share a cache slot — an explicit EffortFull request can never
// be served tier-0 code.
//
// Lock order: shard.mu -> Manager.mu. Shard locks are never held while
// acquiring another shard's lock; the cache writer locks are leaves.
package brewsvc

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/brew"
	"repro/internal/obs"
	"repro/internal/specmgr"
	"repro/internal/telemetry"
	"repro/internal/vm"
)

// Service-level degradation reasons, extending the brew.Reason* vocabulary
// (admission.go adds ReasonOverload and ReasonDeadline).
const (
	// ReasonQueueFull: the bounded queue rejected the request.
	ReasonQueueFull = "queue-full"
	// ReasonShutdown: the service was closed before the request ran.
	ReasonShutdown = "shutdown"
)

// Service-level errors (admission.go adds ErrOverload).
var (
	// ErrQueueFull reports backpressure: the request was degraded to the
	// original function without being enqueued.
	ErrQueueFull = errors.New("brewsvc: request queue full")
	// ErrClosed reports a request submitted to (or drained by) a closed
	// service.
	ErrClosed = errors.New("brewsvc: service closed")
)

// Priority orders queued requests. Within a level the queue is FIFO.
type Priority uint8

// Queue priorities.
const (
	PriorityLow Priority = iota
	PriorityNormal
	PriorityHigh
)

// Request is one service specialization request. The brew.Request fields
// keep their Do semantics; Mode is owned by the service (every rewrite runs
// under ModeDegrade — the service never fails a caller, it degrades).
type Request struct {
	// Config declares the rewrite assumptions. The service clones it at
	// admission, so the caller may reuse or mutate it afterwards.
	Config *brew.Config
	// Fn is the function to specialize.
	Fn uint64
	// Args and FArgs supply the rewrite-time parameter setting.
	Args  []uint64
	FArgs []float64
	// Guards, when non-empty, request a guarded specialization.
	Guards []brew.ParamGuard
	// Priority orders the request in the bounded queue.
	Priority Priority
}

// Outcome is the completed state of a request.
type Outcome struct {
	// Entry is the managed specialization entry (nil when no entry was
	// created: rejected, shut down, or invalid requests). Its Addr stays
	// valid until the entry is evicted from the cache or the service
	// closes.
	Entry *specmgr.Entry
	// Addr is always callable: specialized code, a guard dispatcher, or —
	// degraded — the original function.
	Addr uint64
	// Variant is the table variant this request's guard values route to
	// (nil for degraded, rejected, and uncacheable outcomes).
	Variant *specmgr.Variant
	// Degraded marks an outcome running the original function; Reason
	// holds the brew.Reason* / Reason* vocabulary label and Err the cause.
	Degraded bool
	Reason   string
	Err      error
	// Coalesced marks a caller that shared another caller's in-flight
	// trace; CacheHit marks a caller served from the specialized-code
	// cache. Both are false for the caller that triggered the trace.
	Coalesced bool
	CacheHit  bool
}

// Ticket is the handle Submit returns. Addr is callable immediately
// (rewrite-behind); Outcome or Wait block until the request completes.
type Ticket struct {
	addr      uint64
	coalesced bool
	cacheHit  bool
	done      chan struct{}
	out       Outcome

	// Lifecycle tracing (zero when untraced): a coalesced caller's span
	// runs from its Submit to the shared completion and links to the
	// flight's trace.
	trace     obs.TraceID
	spanStart int64
	fn        uint64
	link      obs.TraceID
}

// Addr returns the immediately callable address: cached specialized code,
// the entry's patchable stub (routing to the original function until the
// rewrite lands), or the original function itself.
func (t *Ticket) Addr() uint64 { return t.addr }

// Done returns a channel closed when the outcome is available.
func (t *Ticket) Done() <-chan struct{} { return t.done }

// Outcome blocks until the request completes and returns its outcome.
func (t *Ticket) Outcome() Outcome {
	<-t.done
	return t.out
}

// Wait blocks until the request completes or ctx is done, returning the
// outcome or the context error. The request itself is not cancelled — a
// coalesced trace may be serving other callers; abandon the ticket and
// the flight completes without you.
func (t *Ticket) Wait(ctx context.Context) (Outcome, error) {
	select {
	case <-t.done:
		return t.out, nil
	case <-ctx.Done():
		return Outcome{}, ctx.Err()
	}
}

// TryOutcome returns the outcome if the request already completed.
func (t *Ticket) TryOutcome() (Outcome, bool) {
	select {
	case <-t.done:
		return t.out, true
	default:
		return Outcome{}, false
	}
}

// complete publishes the outcome (exactly once per ticket) and merges the
// per-caller admission flags.
func (t *Ticket) complete(o Outcome) {
	o.Coalesced = t.coalesced
	o.CacheHit = t.cacheHit
	t.out = o
	close(t.done)
	if t.link != 0 {
		obs.EndSpan(t.trace, obs.StageCoalesce, obs.TierNone, t.spanStart, t.fn, t.link)
	}
}

// closedCh is the shared pre-closed channel behind every already-complete
// ticket: the warm hit path allocates one Ticket and nothing else — no
// channel, no close, no locks.
var closedCh = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// doneTicket returns an already-completed ticket carrying o verbatim.
func doneTicket(o Outcome) *Ticket {
	return &Ticket{addr: o.Addr, coalesced: o.Coalesced, cacheHit: o.CacheHit, done: closedCh, out: o}
}

// Stats is a point-in-time snapshot of the service counters (collected
// unconditionally; the telemetry mirrors are gated on telemetry.Enable).
// Service.Stats sums across shards; ShardStats exposes each shard.
type Stats struct {
	Submitted    uint64 // Submit calls
	CoalesceHits uint64 // callers that joined an in-flight trace
	CacheHits    uint64 // callers served from the specialized-code cache
	CacheMisses  uint64 // cacheable requests that started a new flight
	Rejected     uint64 // backpressure rejections (queue full, no SLO)
	Traces       uint64 // rewrites actually run by workers
	WarmHits     uint64 // flights served by persistent-store adoption (no trace)
	Promoted     uint64 // successful hot-installs
	Degraded     uint64 // worker rewrites that degraded to the original
	Evictions    uint64 // cache LRU evictions

	// Tiered rewriting (promote.go).
	TierPromotions uint64 // hot tier-0 entries hot-swapped to EffortFull code
	TierDemotions  uint64 // promotion attempts that failed (entry stays tier-0)

	// Admission control (admission.go).
	Sheds         [3]uint64 // overload sheds by priority class (arrivals, eviction victims, deadline)
	DeadlineSheds uint64    // flights shed at dequeue after waiting past their class SLO

	// TraceWork accumulates brew.Result.TracedInstrs over this scope's
	// fresh traces: the deterministic rewrite-work unit behind the E10
	// modeled-makespan rows (total work vs the hottest shard's share).
	TraceWork uint64
}

// stats is the per-shard atomic counter block. Every mutation is a single
// atomic add on the owning shard — Stats readers aggregate without
// touching any lock a worker could hold.
type stats struct {
	submitted, coalesced, cacheHits, cacheMisses atomic.Uint64
	rejected, traces, promoted, degraded         atomic.Uint64
	evictions, tierPromoted, tierDemoted         atomic.Uint64
	warmHits                                     atomic.Uint64
	sheds                                        [3]atomic.Uint64
	deadlineSheds                                atomic.Uint64
	traceWork                                    atomic.Uint64
}

// snapshot reads the counter block into the exported form.
func (st *stats) snapshot() Stats {
	return Stats{
		Submitted:    st.submitted.Load(),
		CoalesceHits: st.coalesced.Load(),
		CacheHits:    st.cacheHits.Load(),
		CacheMisses:  st.cacheMisses.Load(),
		Rejected:     st.rejected.Load(),
		Traces:       st.traces.Load(),
		WarmHits:     st.warmHits.Load(),
		Promoted:     st.promoted.Load(),
		Degraded:     st.degraded.Load(),
		Evictions:    st.evictions.Load(),

		TierPromotions: st.tierPromoted.Load(),
		TierDemotions:  st.tierDemoted.Load(),

		Sheds: [3]uint64{
			st.sheds[0].Load(), st.sheds[1].Load(), st.sheds[2].Load(),
		},
		DeadlineSheds: st.deadlineSheds.Load(),
		TraceWork:     st.traceWork.Load(),
	}
}

// add folds o into s (Stats aggregation across shards).
func (s *Stats) add(o Stats) {
	s.Submitted += o.Submitted
	s.CoalesceHits += o.CoalesceHits
	s.CacheHits += o.CacheHits
	s.CacheMisses += o.CacheMisses
	s.Rejected += o.Rejected
	s.Traces += o.Traces
	s.WarmHits += o.WarmHits
	s.Promoted += o.Promoted
	s.Degraded += o.Degraded
	s.Evictions += o.Evictions
	s.TierPromotions += o.TierPromotions
	s.TierDemotions += o.TierDemotions
	for i := range s.Sheds {
		s.Sheds[i] += o.Sheds[i]
	}
	s.DeadlineSheds += o.DeadlineSheds
	s.TraceWork += o.TraceWork
}

// Service is the concurrent specialization service. Create with Open (or
// the deprecated New), stop with Close. All methods are safe for
// concurrent use; the machine must not execute emulated code while
// rewrites are in flight (the RewriteBatch contract, inherited from the
// tracer reading machine memory).
type Service struct {
	m   *vm.Machine
	mgr *specmgr.Manager
	cfg svcConfig

	closed atomic.Bool

	shards []*shard
	cache  *cache // global: cache keys and service shards partition independently
	wg     sync.WaitGroup
}

// shard is one independent slice of the service: its own admission lock,
// bounded priority queue, worker pool, singleflight table, entry
// ownership map and promotion pump state. Everything below mu is guarded
// by it; st and ewmaNS are atomics readable without it.
type shard struct {
	s  *Service
	id int

	mu       svcMutex
	cond     *sync.Cond
	q        *queue
	inflight map[cacheKey]*flight
	byFn     map[entryKey]*sharedEnt        // variant-table entries shared across guard values
	orphans  []*specmgr.Entry               // promoted-but-uncacheable or degraded entries, released at Close
	tracked  map[*specmgr.Variant]*hotTrack // tier-0 variants eligible for promotion
	hotIndex atomic.Pointer[[]hotRange]     // immutable sorted snapshot of tracked code ranges (NoteSample)

	// ewmaNS is the shard's exponentially weighted rewrite latency in
	// nanoseconds, feeding the admission-control wait estimate.
	ewmaNS atomic.Uint64

	depth *telemetry.Gauge // queued flights (brewsvc.queue_depth.s<id>)
	st    stats
}

// sharedEnt is the service-side ownership record of one variant-table
// entry: refs counts the flights and cache slots pointing at it; at zero
// the entry leaves the table and is released (or orphaned, when its
// address was handed out degraded). Guarded by the owning shard's mu.
type sharedEnt struct {
	e    *specmgr.Entry
	refs int
}

// flight is one in-progress specialization shared by every coalesced
// caller. A promo flight re-rewrites an already-live tier-0 variant at
// EffortFull and completes through specmgr.RepromoteVariant instead of
// InstallVariant.
type flight struct {
	k         cacheKey
	ek        entryKey
	cacheable bool
	promo     bool
	req       *brew.Request // service-owned copy (config cloned, slices copied)
	entry     *specmgr.Entry
	variant   *specmgr.Variant // promo flights: the variant being re-tiered
	prio      Priority
	tickets   []*Ticket // guarded by the owning shard's mu

	// Admission control: slo is the class SLO this flight was admitted
	// under (0 = exempt: no SLO class, or a promotion flight) and enqWall
	// the admission wall clock for the dequeue deadline check.
	slo     time.Duration
	enqWall time.Time

	// Lifecycle tracing (zero when untraced): trace is the creator's
	// request trace (promo flights get their own, linked to the request
	// that installed the tier-0 variant); enqNS anchors the queue-wait
	// span.
	trace obs.TraceID
	link  obs.TraceID
	enqNS int64
}

// tierOf maps a rewrite effort to its span tier label.
func tierOf(eff brew.Effort) obs.Tier {
	if eff == brew.EffortQuick {
		return obs.TierQuick
	}
	return obs.TierFull
}

// open builds and starts the service from a resolved configuration
// (constructors live in options.go).
func open(m *vm.Machine, cfg svcConfig) *Service {
	mgr := cfg.manager
	if mgr == nil {
		mgr = specmgr.New(m, cfg.policy)
	}
	s := &Service{
		m:      m,
		mgr:    mgr,
		cfg:    cfg,
		cache:  newCache(cfg.cacheShards, cfg.cachePerShard),
		shards: make([]*shard, cfg.shards),
	}
	for i := range s.shards {
		sh := &shard{
			s:        s,
			id:       i,
			q:        newQueue(cfg.queueCap),
			inflight: make(map[cacheKey]*flight),
			byFn:     make(map[entryKey]*sharedEnt),
			depth:    telemetry.Default.Gauge(fmt.Sprintf("brewsvc.queue_depth.s%d", i)),
		}
		sh.cond = sync.NewCond(&sh.mu)
		s.shards[i] = sh
	}
	s.wg.Add(cfg.shards * cfg.workers)
	for _, sh := range s.shards {
		for i := 0; i < cfg.workers; i++ {
			go sh.worker()
		}
	}
	return s
}

// Manager returns the specialization manager the service installs through.
func (s *Service) Manager() *specmgr.Manager { return s.mgr }

// ShardCount returns the number of service shards.
func (s *Service) ShardCount() int { return len(s.shards) }

// shardOf maps an entry key to its owning shard.
func (s *Service) shardOf(ek entryKey) *shard {
	if len(s.shards) == 1 {
		return s.shards[0]
	}
	return s.shards[ek.hash()%uint64(len(s.shards))]
}

// Stats returns a snapshot of the service counters summed across shards.
// The read is lock-free: per-shard atomics aggregated here, so frequent
// pollers (brew-top -watch) can never stall a worker.
func (s *Service) Stats() Stats {
	var agg Stats
	for _, sh := range s.shards {
		agg.add(sh.st.snapshot())
	}
	return agg
}

// ShardStats returns each shard's counter snapshot, indexed by shard ID.
// Lock-free, like Stats.
func (s *Service) ShardStats() []Stats {
	out := make([]Stats, len(s.shards))
	for i, sh := range s.shards {
		out[i] = sh.st.snapshot()
	}
	return out
}

// Submit admits one request and returns its ticket without ever blocking
// on a trace: the ticket's Addr is callable immediately. Admission order:
// cache hit (shared specialized code, lock-free), coalesce (join the
// in-flight trace for the same key), enqueue (admission-controlled), shed.
func (s *Service) Submit(req *Request) *Ticket {
	mSubmitted.Inc()
	if req == nil {
		s.shards[0].st.submitted.Add(1)
		return doneTicket(Outcome{
			Degraded: true, Reason: brew.ReasonBadConfig,
			Err: fmt.Errorf("%w: nil request", brew.ErrBadConfig),
		})
	}
	if req.Config == nil {
		s.shards[0].st.submitted.Add(1)
		return doneTicket(Outcome{
			Addr: req.Fn, Degraded: true, Reason: brew.ReasonBadConfig,
			Err: fmt.Errorf("%w: nil configuration", brew.ErrBadConfig),
		})
	}
	// Shard by entry key so sibling guard-value variants (which share a
	// variant-table entry) land on one shard; uncacheable requests are
	// partitioned the same way — entryKeyOf never reads Inject.
	ek := entryKeyOf(req)
	sh := s.shardOf(ek)
	sh.st.submitted.Add(1)
	if s.closed.Load() {
		return shutdownTicket(req.Fn)
	}

	// Lifecycle tracing: one trace per admitted request, spans gated to
	// no-ops (tid == 0) while observation is disabled.
	tid := obs.StartTrace()
	subStart := obs.Now()

	// The fault-injection seam is per-request runtime behavior outside the
	// fingerprint: such requests must not share traces or cache slots.
	cacheable := req.Config.Inject == nil
	var k cacheKey
	if cacheable {
		k = keyOf(req)
		lookStart := obs.Now()
		cv, ok := s.cache.get(k)
		obs.EndSpanOn(sh.id, tid, obs.StageCacheLookup, obs.TierNone, lookStart, req.Fn, 0)
		if ok {
			if cv.v.Live() {
				// The warm path: snapshot read, atomic counters, one Ticket
				// allocation over the shared pre-closed channel. No service
				// lock is acquired anywhere on this path (E10f).
				sh.st.cacheHits.Add(1)
				mCacheHits.Inc()
				obs.EndSpanOn(sh.id, tid, obs.StageSubmit, obs.TierNone, subStart, req.Fn, 0)
				return doneTicket(Outcome{Entry: cv.e, Addr: cv.e.Addr(), Variant: cv.v, CacheHit: true})
			}
			// The slot's variant was demoted (guard-miss storm, assumption
			// violation) since it was cached: serving it would route this
			// caller to the generic original forever. Drop the slot and
			// fall through to a fresh trace.
			s.dropDeadSlot(k, cv)
		}
	}

	sh.mu.Lock()
	t := sh.admitLocked(req, k, ek, cacheable, tid, subStart)
	sh.mu.Unlock()
	obs.EndSpanOn(sh.id, tid, obs.StageSubmit, obs.TierNone, subStart, req.Fn, 0)
	return t
}

// admitLocked runs the locked half of admission on this shard: closed
// recheck, singleflight coalesce, admission control, enqueue. Shard mu
// held. Ticket completions for shed flows happen inline (complete never
// blocks).
func (sh *shard) admitLocked(req *Request, k cacheKey, ek entryKey, cacheable bool, tid obs.TraceID, subStart int64) *Ticket {
	s := sh.s
	if s.closed.Load() {
		return shutdownTicket(req.Fn)
	}
	if cacheable {
		if f := sh.inflight[k]; f != nil {
			t := &Ticket{addr: f.entry.Addr(), coalesced: true, done: make(chan struct{}),
				trace: tid, spanStart: subStart, fn: req.Fn, link: f.trace}
			f.tickets = append(f.tickets, t)
			sh.st.coalesced.Add(1)
			mCoalesceHits.Inc()
			return t
		}
		sh.st.cacheMisses.Add(1)
		mCacheMisses.Inc()
	}

	prio := req.Priority
	if prio > PriorityHigh {
		prio = PriorityHigh
	}
	var slo time.Duration
	if a := s.cfg.admission; a != nil {
		slo = a.SLO[prio]
	}
	if slo > 0 {
		a := s.cfg.admission
		// Estimated-wait shed: a request whose class SLO the queue ahead
		// of it already exceeds is doomed — shed it at the door. The
		// Inject seam force-trips the same decision deterministically.
		over := a.Inject != nil && a.Inject()
		if !over && sh.estimatedWaitLocked(prio) > slo {
			over = true
		}
		if over {
			return sh.shedArrivalLocked(req.Fn, prio, tid)
		}
		if sh.q.full() {
			if a.OnOverload[prio] == ShedEvictLower {
				victim := sh.q.evictLowestBelow(prio)
				if victim == nil {
					return sh.shedArrivalLocked(req.Fn, prio, tid)
				}
				sh.depth.Set(int64(sh.q.len()))
				sh.shedFlightLocked(victim, ReasonOverload, ErrOverload)
				// Room made; fall through to admit the arrival.
			} else {
				return sh.shedArrivalLocked(req.Fn, prio, tid)
			}
		}
	} else if sh.q.full() {
		// Legacy backpressure for classes outside admission control.
		sh.st.rejected.Add(1)
		mRejected.Inc()
		if tid != 0 {
			obs.Emit(obs.Event{Kind: obs.KindDegrade, Trace: tid, Fn: req.Fn,
				Tier: obs.TierNone, Reason: ReasonQueueFull, Shard: int32(sh.id) + 1})
		}
		return doneTicket(Outcome{
			Addr: req.Fn, Degraded: true, Reason: ReasonQueueFull, Err: ErrQueueFull,
		})
	}

	// Admit: take ownership of the request (the caller may mutate its
	// Config or reuse its slices after Submit returns) and hand out the
	// rewrite-behind stub. Cacheable requests share the variant-table
	// entry for their entry key; uncacheable ones get a private entry.
	own := &brew.Request{
		Config: req.Config.Clone(),
		Fn:     req.Fn,
		Args:   append([]uint64(nil), req.Args...),
		FArgs:  append([]float64(nil), req.FArgs...),
		Guards: append([]brew.ParamGuard(nil), req.Guards...),
		Mode:   brew.ModeDegrade,
	}
	var entry *specmgr.Entry
	if cacheable {
		se := sh.byFn[ek]
		if se == nil {
			se = &sharedEnt{e: s.mgr.AdoptPending(own.Config, own.Fn, own.Args, own.FArgs, own.Guards)}
			sh.byFn[ek] = se
		}
		se.refs++ // the flight's reference; transfers to the cache slot on success
		entry = se.e
	} else {
		entry = s.mgr.AdoptPending(own.Config, own.Fn, own.Args, own.FArgs, own.Guards)
	}
	f := &flight{k: k, ek: ek, cacheable: cacheable, req: own, entry: entry, prio: prio,
		slo: slo, trace: tid, enqNS: obs.Now()}
	if slo > 0 {
		f.enqWall = time.Now()
	}
	t := &Ticket{addr: entry.Addr(), done: make(chan struct{})}
	f.tickets = []*Ticket{t}
	sh.q.push(f)
	sh.depth.Set(int64(sh.q.len()))
	if cacheable {
		sh.inflight[k] = f
	}
	sh.cond.Signal()
	return t
}

// shedArrivalLocked sheds an arriving admission-controlled request:
// completed degraded with ReasonOverload, never enqueued. Shard mu held.
func (sh *shard) shedArrivalLocked(fn uint64, prio Priority, tid obs.TraceID) *Ticket {
	sh.st.sheds[prio].Add(1)
	mSheds.Inc()
	if tid != 0 {
		obs.Emit(obs.Event{Kind: obs.KindDegrade, Trace: tid, Fn: fn,
			Tier: obs.TierNone, Reason: ReasonOverload, Shard: int32(sh.id) + 1})
	}
	return doneTicket(Outcome{Addr: fn, Degraded: true, Reason: ReasonOverload, Err: ErrOverload})
}

// shedFlightLocked completes an already-queued flight degraded (overload
// eviction victim, or deadline shed at dequeue) and drops its ownership:
// the singleflight slot is vacated and the entry reference moves to the
// orphan list rather than being released — the flight's tickets already
// handed out the entry's stub address, which must stay callable until
// Close. Shard mu held.
func (sh *shard) shedFlightLocked(f *flight, reason string, err error) {
	sh.st.sheds[f.prio].Add(1)
	mSheds.Inc()
	if f.cacheable {
		delete(sh.inflight, f.k)
		if sh.derefEntryLocked(f.ek, f.entry) {
			sh.orphans = append(sh.orphans, f.entry)
		}
	} else {
		sh.orphans = append(sh.orphans, f.entry)
	}
	if f.trace != 0 {
		obs.Emit(obs.Event{Kind: obs.KindDegrade, Trace: f.trace, Fn: f.req.Fn,
			Tier: obs.TierNone, Reason: reason, Shard: int32(sh.id) + 1})
	}
	res := Outcome{Addr: f.req.Fn, Degraded: true, Reason: reason, Err: err}
	tickets := f.tickets
	f.tickets = nil
	for _, t := range tickets {
		t.complete(res)
	}
}

// dropDeadSlot removes a cache slot whose variant died and drops the
// reference the slot held. Safe against racing submitters: only the one
// whose remove actually hit the slot adjusts the refcount.
func (s *Service) dropDeadSlot(k cacheKey, cv cacheVal) {
	if !s.cache.remove(k, cv.v) {
		return
	}
	owner := s.shardOf(cv.ek)
	owner.st.evictions.Add(1)
	mCacheEvictions.Inc()
	owner.untrack(cv.v)
	owner.mu.Lock()
	release := owner.derefEntryLocked(cv.ek, cv.e)
	owner.mu.Unlock()
	if release {
		s.mgr.Release(cv.e)
	}
}

// derefEntryLocked drops one reference on ek's shared entry and reports
// whether the caller must release it (last reference gone). Shard mu
// held.
func (sh *shard) derefEntryLocked(ek entryKey, e *specmgr.Entry) bool {
	se := sh.byFn[ek]
	if se == nil || se.e != e {
		return false
	}
	se.refs--
	if se.refs > 0 {
		return false
	}
	delete(sh.byFn, ek)
	return true
}

// Do is the blocking convenience form: Submit then wait for the outcome.
func (s *Service) Do(req *Request) Outcome {
	return s.Submit(req).Outcome()
}

func shutdownTicket(fn uint64) *Ticket {
	return doneTicket(Outcome{Addr: fn, Degraded: true, Reason: ReasonShutdown, Err: ErrClosed})
}

// worker drains this shard's queue: trace, promote, cache, complete.
func (sh *shard) worker() {
	s := sh.s
	defer s.wg.Done()
	for {
		sh.mu.Lock()
		var f *flight
		for {
			for sh.q.empty() && !s.closed.Load() {
				sh.cond.Wait()
			}
			f = sh.q.pop()
			if f == nil { // closed, queue drained
				sh.mu.Unlock()
				return
			}
			sh.depth.Set(int64(sh.q.len()))
			// Deadline shed: a flight that already waited past its class
			// SLO is completed degraded instead of traced — the worker's
			// time goes to requests that can still meet their deadline.
			if f.slo > 0 && time.Since(f.enqWall) > f.slo {
				sh.st.deadlineSheds.Add(1)
				sh.shedFlightLocked(f, ReasonDeadline, ErrOverload)
				continue
			}
			break
		}
		sh.mu.Unlock()

		tier := tierOf(f.req.Config.Effort)
		obs.EndSpanOn(sh.id, f.trace, obs.StageQueue, tier, f.enqNS, f.req.Fn, f.link)

		// Warm start: before paying a trace, a cacheable flight consults
		// the persistent store. Adoption never happens blindly — the
		// record is fully revalidated against the live machine (checksum,
		// original code, frozen-region digests, guard set, placement; see
		// spstore.Adopt) and any failure quarantines it and falls through
		// to a fresh trace.
		var out *brew.Outcome
		var rerr error
		warm := false
		if s.cfg.store != nil && f.cacheable && !f.promo {
			out = s.warmAdopt(f)
			warm = out != nil
		}
		if warm {
			sh.st.warmHits.Add(1)
			mWarmHits.Inc()
		} else {
			sh.st.traces.Add(1)
			mTraces.Inc()
			rwStart := obs.Now()
			start := time.Now()
			out, rerr = brew.Do(s.m, f.req)
			elapsed := time.Since(start)
			obs.EndSpanOn(sh.id, f.trace, obs.StageRewrite, tier, rwStart, f.req.Fn, f.link)
			sh.observeRewriteNS(uint64(elapsed.Nanoseconds()))
			if out != nil && out.Result != nil {
				sh.st.traceWork.Add(uint64(out.Result.TracedInstrs))
			}
			us := uint64(elapsed.Microseconds())
			mLatencyUS.Observe(us)
			if f.req.Config.Effort == brew.EffortQuick {
				mLatencyQuickUS.Observe(us)
			} else {
				mLatencyFullUS.Observe(us)
			}
		}

		if f.promo {
			sh.completePromotion(f, out, rerr)
			continue
		}

		var res Outcome
		if f.cacheable {
			res = sh.completeCacheable(f, out, rerr, warm)
		} else {
			res = sh.completeUncacheable(f, out, rerr)
		}

		sh.mu.Lock()
		if f.cacheable {
			delete(sh.inflight, f.k)
		}
		tickets := f.tickets
		f.tickets = nil
		for _, t := range tickets {
			t.complete(res)
		}
		sh.mu.Unlock()
	}
}

// completeCacheable installs a finished cacheable rewrite as a variant of
// the shared entry and publishes it to the cache.
func (sh *shard) completeCacheable(f *flight, out *brew.Outcome, rerr error, warm bool) Outcome {
	s := sh.s
	instStart := obs.Now()
	v, ok := s.mgr.InstallVariant(f.entry, f.req.Config, f.req.Guards, f.req.Args, f.req.FArgs, out, rerr)
	obs.EndSpanOn(sh.id, f.trace, obs.StageInstall, tierOf(f.req.Config.Effort), instStart, f.req.Fn, 0)
	res := Outcome{Entry: f.entry, Addr: f.entry.Addr(), Variant: v}
	if !ok {
		// Degraded: the variant was not installed and the key is NOT
		// cached — a later Submit with the same key retries the
		// specialization from scratch. The entry itself survives as long
		// as siblings or slots reference it; the last reference orphans it
		// (its handed-out Addr stays callable until Close).
		sh.st.degraded.Add(1)
		mDegraded.Inc()
		res.Degraded = true
		res.Err = rerr
		if out != nil {
			res.Reason = out.Reason
		}
		sh.mu.Lock()
		removed := sh.derefEntryLocked(f.ek, f.entry)
		if removed {
			sh.orphans = append(sh.orphans, f.entry)
		}
		sh.mu.Unlock()
		return res
	}
	sh.st.promoted.Add(1)
	mPromotions.Inc()
	// Track BEFORE publishing to the cache: the moment the variant is
	// visible there, a racing put can evict and remove it, and that
	// eviction's untrack must find the registration — a track added after
	// the removal would pin a stale code range in the sample index and
	// leak the dead record in sh.tracked.
	if s.cfg.promoteAfter > 0 && f.req.Config.Effort == brew.EffortQuick &&
		out != nil && out.Result != nil && !out.Result.Degraded {
		sh.mu.Lock()
		sh.trackLocked(f, v, out.Result)
		sh.mu.Unlock()
	}
	// Insert before dropping the inflight slot so a racing Submit sees
	// either the flight or the cache, never a gap that would duplicate
	// the trace. The flight's entry reference transfers to the slot.
	for _, victim := range s.cache.put(f.k, cacheVal{e: f.entry, v: v, ek: f.ek}) {
		s.evictVictim(victim, v)
	}
	// Persist freshly traced installs (a warm adoption would re-write the
	// identical record). The local write is synchronous on this worker —
	// off the serve path — and the remote copy is write-behind.
	if s.cfg.store != nil && !warm {
		s.persist(f, out)
	}
	return res
}

// evictVictim reclaims one displaced cache slot: the variant it served is
// removed from its table (unless it IS the just-installed variant — a
// same-key collision replaced the slot, and the new slot carries the
// reference for the same code) and the slot's entry reference is dropped,
// releasing the entry when it was the last. The victim may belong to any
// service shard (the cache partitions independently), so the bookkeeping
// routes to the owner via its entry key.
func (s *Service) evictVictim(victim cacheVal, justInstalled *specmgr.Variant) {
	owner := s.shardOf(victim.ek)
	owner.st.evictions.Add(1)
	mCacheEvictions.Inc()
	if victim.v != justInstalled {
		owner.untrack(victim.v)
		s.mgr.RemoveVariant(victim.e, victim.v)
	}
	owner.mu.Lock()
	release := owner.derefEntryLocked(victim.ek, victim.e)
	owner.mu.Unlock()
	if release {
		s.mgr.Release(victim.e)
	}
}

// completeUncacheable finishes a private-entry flight (Config.Inject set:
// no coalescing, no cache, legacy whole-entry promotion).
func (sh *shard) completeUncacheable(f *flight, out *brew.Outcome, rerr error) Outcome {
	s := sh.s
	instStart := obs.Now()
	promoted := s.mgr.Promote(f.entry, out, rerr)
	obs.EndSpanOn(sh.id, f.trace, obs.StageInstall, tierOf(f.req.Config.Effort), instStart, f.req.Fn, 0)
	res := Outcome{Entry: f.entry, Addr: f.entry.Addr()}
	if promoted {
		sh.st.promoted.Add(1)
		mPromotions.Inc()
	} else {
		sh.st.degraded.Add(1)
		mDegraded.Inc()
		res.Degraded = true
		res.Err = rerr
		if out != nil {
			res.Reason = out.Reason
		}
	}
	sh.mu.Lock()
	sh.orphans = append(sh.orphans, f.entry)
	sh.mu.Unlock()
	return res
}

// Close stops the service: queued (not yet running) requests complete
// degraded with ReasonShutdown, in-flight rewrites finish, and every entry
// the service owns — queued, cached, and orphaned — is released, returning
// all JIT code-buffer space. Outcome addresses must no longer be used
// afterwards. Close is idempotent; concurrent Submits complete degraded.
func (s *Service) Close() {
	if s.closed.Swap(true) {
		s.wg.Wait()
		return
	}
	for _, sh := range s.shards {
		sh.mu.Lock()
		var drained []*flight
		for f := sh.q.pop(); f != nil; f = sh.q.pop() {
			drained = append(drained, f)
		}
		sh.depth.Set(0)
		var unref []*specmgr.Entry
		for _, f := range drained {
			if f.cacheable {
				delete(sh.inflight, f.k)
				if sh.derefEntryLocked(f.ek, f.entry) {
					// Last reference: the entry just left byFn, so the sweep
					// below cannot reach it anymore.
					unref = append(unref, f.entry)
				}
			}
			for _, t := range f.tickets {
				t.complete(Outcome{Addr: f.req.Fn, Degraded: true, Reason: ReasonShutdown, Err: ErrClosed})
			}
		}
		sh.cond.Broadcast()
		sh.mu.Unlock()

		// Private entries of drained flights are owned by nobody else;
		// shared (cacheable) entries still referenced are swept via
		// byFn/cache below.
		for _, e := range unref {
			s.mgr.Release(e)
		}
		for _, f := range drained {
			if !f.cacheable && !f.promo {
				s.mgr.Release(f.entry)
			}
		}
	}
	s.wg.Wait()

	for _, sh := range s.shards {
		sh.mu.Lock()
		orphans := sh.orphans
		sh.orphans = nil
		shared := make([]*specmgr.Entry, 0, len(sh.byFn))
		for ek, se := range sh.byFn {
			shared = append(shared, se.e)
			delete(sh.byFn, ek)
		}
		sh.mu.Unlock()
		for _, e := range orphans {
			s.mgr.Release(e)
		}
		for _, e := range shared {
			s.mgr.Release(e)
		}
	}
	// Release is idempotent: slots whose entries were just swept via byFn
	// are harmless repeats.
	for _, cv := range s.cache.drain() {
		s.mgr.Release(cv.e)
	}
	// Bounded persist-queue drain: give the store's remote write-behind a
	// chance to flush, but never hang on a put stuck in retry backoff
	// (the local tier already has every record).
	if s.cfg.store != nil {
		d := s.cfg.drainTimeout
		if d <= 0 {
			d = 2 * time.Second
		}
		s.cfg.store.Drain(d)
	}
}
