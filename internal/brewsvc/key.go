package brewsvc

import (
	"math"
	"sort"

	"repro/internal/brew"
	"repro/internal/isa"
)

// cacheKey identifies one specialization: the function, the canonical
// configuration fingerprint, and the values the specialization was built
// for. Two requests with the same key produce interchangeable code, so
// they may share a trace (coalescing) and a cache slot.
type cacheKey struct {
	fn   uint64
	cfg  uint64 // brew.Config.Fingerprint()
	vals uint64 // hash of known-parameter values and guard values
}

// FNV-1a/64, matching the Config.Fingerprint construction.
const (
	keyOffset64 uint64 = 14695981039346656037
	keyPrime64  uint64 = 1099511628211
)

func keyMix(h, v uint64) uint64 {
	for i := 0; i < 64; i += 8 {
		h = (h ^ uint64(byte(v>>i))) * keyPrime64
	}
	return h
}

// mixKnownParams folds the known-parameter values into h: only parameters
// the Config declares known contribute their argument values, so callers
// differing in unknown-parameter values request the same specialization.
func mixKnownParams(h uint64, req *Request) uint64 {
	for i := 1; i <= len(isa.IntArgRegs); i++ {
		class, _ := req.Config.IntParamClass(i)
		if class == brew.ParamUnknown {
			continue
		}
		h = keyMix(h, uint64(i))
		if i <= len(req.Args) {
			h = keyMix(h, req.Args[i-1])
		}
	}
	for i := 1; i <= len(isa.FloatArgRegs); i++ {
		if req.Config.FloatParamClass(i) == brew.ParamUnknown {
			continue
		}
		h = keyMix(h, uint64(i)|1<<32)
		if i <= len(req.FArgs) {
			h = keyMix(h, math.Float64bits(req.FArgs[i-1]))
		}
	}
	return h
}

// keyOf computes the request's cache key. Guards contribute
// order-independently.
func keyOf(req *Request) cacheKey {
	h := mixKnownParams(keyOffset64, req)
	if len(req.Guards) > 0 {
		gs := append([]brew.ParamGuard(nil), req.Guards...)
		sort.Slice(gs, func(i, j int) bool {
			if gs[i].Param != gs[j].Param {
				return gs[i].Param < gs[j].Param
			}
			return gs[i].Value < gs[j].Value
		})
		h = keyMix(h, uint64(len(gs))|1<<33)
		for _, g := range gs {
			h = keyMix(h, uint64(g.Param))
			h = keyMix(h, g.Value)
		}
	}
	return cacheKey{fn: req.Fn, cfg: req.Config.Fingerprint(), vals: h}
}

// entryKey identifies one variant-table entry: the function, the
// configuration fingerprint (which includes the effort tier), the known
// non-guard parameter values, and the SET of guarded parameters — but not
// the guard values. Requests differing only in guard values map to the
// same entry and become sibling variants behind its inline-cache dispatch
// stub; requests differing in anything else need distinct stubs (the
// chain can only distinguish callers by the guarded registers).
type entryKey struct {
	fn   uint64
	cfg  uint64 // brew.Config.Fingerprint()
	vals uint64 // hash of known-parameter values and the guard param set
}

// entryKeyOf computes the request's entry key. Unguarded requests get one
// entry per cache key, the pre-variant behavior.
func entryKeyOf(req *Request) entryKey {
	h := mixKnownParams(keyOffset64, req)
	if len(req.Guards) > 0 {
		params := make([]int, 0, len(req.Guards))
		for _, g := range req.Guards {
			params = append(params, g.Param)
		}
		sort.Ints(params)
		h = keyMix(h, uint64(len(params))|1<<34)
		for _, p := range params {
			h = keyMix(h, uint64(p))
		}
	}
	return entryKey{fn: req.Fn, cfg: req.Config.Fingerprint(), vals: h}
}

// hash folds the key into one word for shard selection.
func (k cacheKey) hash() uint64 {
	h := keyOffset64
	h = keyMix(h, k.fn)
	h = keyMix(h, k.cfg)
	h = keyMix(h, k.vals)
	return h
}

// hash folds the entry key into one word for service-shard selection.
// Partitioning the service by entry key (not cache key) keeps sibling
// guard-value variants — which share a variant-table entry — on one shard,
// while unrelated fingerprints land on different shards and never contend.
func (k entryKey) hash() uint64 {
	h := keyOffset64
	h = keyMix(h, k.fn)
	h = keyMix(h, k.cfg)
	h = keyMix(h, k.vals)
	return h
}
