package brewsvc

import (
	"fmt"

	"repro/internal/brew"
	"repro/internal/obs"
)

// SubmitBatch admits a burst of requests in one pass and returns one
// ticket per request, in input order. Semantically it is exactly N
// Submit calls — same admission order, same coalescing, same admission
// control — but the queue transactions collapse: the batch is grouped by
// service shard after the lock-free cache pre-pass, and each shard's
// group is admitted under ONE acquisition of that shard's lock instead
// of one per request. Requests inside the batch that share a key
// singleflight against each other (the first becomes the flight, the
// rest coalesce onto it), exactly as concurrent Submits would.
//
// Like Submit, SubmitBatch never blocks on a trace: every returned
// ticket's Addr is callable immediately.
func (s *Service) SubmitBatch(reqs []*Request) []*Ticket {
	tickets := make([]*Ticket, len(reqs))

	// admit collects the per-shard groups that survive the lock-free
	// pre-pass (validation, shutdown, cache hits), in input order.
	type pending struct {
		i         int // index into reqs/tickets
		k         cacheKey
		ek        entryKey
		cacheable bool
		tid       obs.TraceID
		subStart  int64
	}
	perShard := make(map[*shard][]pending)

	closed := s.closed.Load()
	for i, req := range reqs {
		mSubmitted.Inc()
		if req == nil {
			s.shards[0].st.submitted.Add(1)
			tickets[i] = doneTicket(Outcome{
				Degraded: true, Reason: brew.ReasonBadConfig,
				Err: fmt.Errorf("%w: nil request", brew.ErrBadConfig),
			})
			continue
		}
		if req.Config == nil {
			s.shards[0].st.submitted.Add(1)
			tickets[i] = doneTicket(Outcome{
				Addr: req.Fn, Degraded: true, Reason: brew.ReasonBadConfig,
				Err: fmt.Errorf("%w: nil configuration", brew.ErrBadConfig),
			})
			continue
		}
		ek := entryKeyOf(req)
		sh := s.shardOf(ek)
		sh.st.submitted.Add(1)
		if closed {
			tickets[i] = shutdownTicket(req.Fn)
			continue
		}
		tid := obs.StartTrace()
		subStart := obs.Now()
		cacheable := req.Config.Inject == nil
		var k cacheKey
		if cacheable {
			k = keyOf(req)
			lookStart := obs.Now()
			cv, ok := s.cache.get(k)
			obs.EndSpanOn(sh.id, tid, obs.StageCacheLookup, obs.TierNone, lookStart, req.Fn, 0)
			if ok {
				if cv.v.Live() {
					sh.st.cacheHits.Add(1)
					mCacheHits.Inc()
					obs.EndSpanOn(sh.id, tid, obs.StageSubmit, obs.TierNone, subStart, req.Fn, 0)
					tickets[i] = doneTicket(Outcome{Entry: cv.e, Addr: cv.e.Addr(), Variant: cv.v, CacheHit: true})
					continue
				}
				s.dropDeadSlot(k, cv)
			}
		}
		perShard[sh] = append(perShard[sh], pending{
			i: i, k: k, ek: ek, cacheable: cacheable, tid: tid, subStart: subStart,
		})
	}

	// One lock transaction per shard. Within the group, admission runs in
	// input order, so batch-internal duplicates coalesce onto the first
	// occurrence's flight via the inflight table — the singleflight
	// machinery needs no special casing for batches.
	for sh, group := range perShard {
		sh.mu.Lock()
		for _, p := range group {
			tickets[p.i] = sh.admitLocked(reqs[p.i], p.k, p.ek, p.cacheable, p.tid, p.subStart)
		}
		sh.mu.Unlock()
		for _, p := range group {
			obs.EndSpanOn(sh.id, p.tid, obs.StageSubmit, obs.TierNone, p.subStart, reqs[p.i].Fn, 0)
		}
	}
	return tickets
}
