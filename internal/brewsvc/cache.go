package brewsvc

import (
	"sync"

	"repro/internal/specmgr"
)

// cache is the sharded specialized-code cache: key-partitioned shards,
// each an independently locked LRU over promoted entries. Shard locks are
// leaves (nothing is acquired under them), so lookups from many submitters
// and inserts from many workers never serialize on one mutex. Eviction
// returns the victims to the caller, which releases them through the
// specialization manager (FreeJIT reclamation) outside the shard lock.
type cache struct {
	shards []cacheShard
}

type cacheShard struct {
	mu       sync.Mutex
	perShard int
	ents     map[cacheKey]*cacheEnt
	clock    uint64
}

type cacheEnt struct {
	e       *specmgr.Entry
	lastUse uint64
}

func newCache(shards, perShard int) *cache {
	c := &cache{shards: make([]cacheShard, shards)}
	for i := range c.shards {
		c.shards[i].perShard = perShard
		c.shards[i].ents = make(map[cacheKey]*cacheEnt)
	}
	return c
}

func (c *cache) shardFor(k cacheKey) *cacheShard {
	return &c.shards[k.hash()%uint64(len(c.shards))]
}

// get returns the cached entry for k (touching its LRU slot), or nil.
func (c *cache) get(k cacheKey) *specmgr.Entry {
	s := c.shardFor(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	ent := s.ents[k]
	if ent == nil {
		return nil
	}
	s.clock++
	ent.lastUse = s.clock
	return ent.e
}

// put inserts a promoted entry and returns the entries evicted to make
// room (the displaced slot on key collision plus LRU victims over
// capacity). The caller releases them outside the shard lock.
func (c *cache) put(k cacheKey, e *specmgr.Entry) []*specmgr.Entry {
	s := c.shardFor(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	var evicted []*specmgr.Entry
	if old := s.ents[k]; old != nil {
		// Singleflight admission makes a same-key race impossible, but a
		// re-trace after an external Release could land here; keep the
		// newer code.
		evicted = append(evicted, old.e)
	}
	s.clock++
	s.ents[k] = &cacheEnt{e: e, lastUse: s.clock}
	for len(s.ents) > s.perShard {
		var victimKey cacheKey
		var victim *cacheEnt
		for vk, ve := range s.ents {
			if ve.e == e {
				continue // never evict the just-inserted entry
			}
			if victim == nil || ve.lastUse < victim.lastUse {
				victimKey, victim = vk, ve
			}
		}
		if victim == nil {
			break
		}
		delete(s.ents, victimKey)
		evicted = append(evicted, victim.e)
	}
	return evicted
}

// drain empties every shard and returns all entries (Close reclamation).
func (c *cache) drain() []*specmgr.Entry {
	var out []*specmgr.Entry
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for _, ent := range s.ents {
			out = append(out, ent.e)
		}
		s.ents = make(map[cacheKey]*cacheEnt)
		s.mu.Unlock()
	}
	return out
}

// len counts cached entries across shards (tests and metrics).
func (c *cache) len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.ents)
		s.mu.Unlock()
	}
	return n
}
