package brewsvc

import (
	"sync/atomic"

	"repro/internal/specmgr"
)

// cacheVal is what a cache slot serves: the shared variant-table entry,
// the specific variant this key's guard values route to (for the
// liveness check on hit), and the entry key whose reference the slot
// holds.
type cacheVal struct {
	e  *specmgr.Entry
	v  *specmgr.Variant
	ek entryKey
}

// cache is the sharded specialized-code cache: key-partitioned shards,
// each an LRU over installed variants published as an immutable map
// snapshot behind an atomic pointer. The hit path is LOCK-FREE: get
// loads the snapshot, looks the key up, and bumps two atomics (the shard
// clock and the slot's last-use stamp) — it never acquires a mutex, so a
// warm hit takes zero service locks (the E10f bar, lockstat.go). Writers
// (put, remove, drain) serialize on the shard's svcMutex and publish a
// fresh copied map; shards hold at most perShard entries, so the
// copy-on-write cost is small and off the serve path (put follows a
// multi-millisecond trace). Writer locks are leaves: nothing is acquired
// under them, and eviction victims are returned to the caller for
// reclamation outside the lock.
type cache struct {
	shards []cacheShard
}

type cacheShard struct {
	mu       svcMutex // writers only; readers go through snap
	perShard int
	snap     atomic.Pointer[map[cacheKey]*cacheEnt]
	clock    atomic.Uint64
}

// cacheEnt is one published slot. val is immutable after publication;
// lastUse is the only mutable field and is written lock-free by readers.
type cacheEnt struct {
	val     cacheVal
	lastUse atomic.Uint64
}

func newCache(shards, perShard int) *cache {
	c := &cache{shards: make([]cacheShard, shards)}
	for i := range c.shards {
		c.shards[i].perShard = perShard
		m := make(map[cacheKey]*cacheEnt)
		c.shards[i].snap.Store(&m)
	}
	return c
}

func (c *cache) shardFor(k cacheKey) *cacheShard {
	return &c.shards[k.hash()%uint64(len(c.shards))]
}

// get returns the cached value for k, touching its LRU stamp. Lock-free:
// snapshot load, map read, two atomic bumps. A get racing a put may miss
// a just-published slot or touch a just-evicted one — both are benign
// (the former re-traces through singleflight, the latter is a harmless
// stamp on a dead object).
func (c *cache) get(k cacheKey) (cacheVal, bool) {
	s := c.shardFor(k)
	ent := (*s.snap.Load())[k]
	if ent == nil {
		return cacheVal{}, false
	}
	ent.lastUse.Store(s.clock.Add(1))
	return ent.val, true
}

// cloneEnts copies the snapshot map for a writer about to publish.
func cloneEnts(old map[cacheKey]*cacheEnt) map[cacheKey]*cacheEnt {
	m := make(map[cacheKey]*cacheEnt, len(old)+1)
	for k, v := range old {
		m[k] = v
	}
	return m
}

// put inserts an installed variant and returns the values evicted to make
// room (the displaced slot on key collision plus LRU victims over
// capacity). The caller reclaims them outside the shard lock.
func (c *cache) put(k cacheKey, val cacheVal) []cacheVal {
	s := c.shardFor(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	ents := cloneEnts(*s.snap.Load())
	var evicted []cacheVal
	if old := ents[k]; old != nil {
		// Singleflight admission makes a same-key race impossible, but a
		// re-trace after a demotion or an external Release lands here; keep
		// the newer code.
		evicted = append(evicted, old.val)
	}
	ent := &cacheEnt{val: val}
	ent.lastUse.Store(s.clock.Add(1))
	ents[k] = ent
	for len(ents) > s.perShard {
		var victimKey cacheKey
		var victim *cacheEnt
		var victimUse uint64
		for vk, ve := range ents {
			if ve.val.v == val.v {
				continue // never evict the just-inserted variant
			}
			use := ve.lastUse.Load()
			if victim == nil || use < victimUse {
				victimKey, victim, victimUse = vk, ve, use
			}
		}
		if victim == nil {
			break
		}
		delete(ents, victimKey)
		evicted = append(evicted, victim.val)
	}
	s.snap.Store(&ents)
	return evicted
}

// remove drops the slot for k if it still serves the same variant (a
// racing put may have replaced it) and reports whether it did. Used by
// the hit path when it finds the slot's variant demoted.
func (c *cache) remove(k cacheKey, v *specmgr.Variant) bool {
	s := c.shardFor(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	old := *s.snap.Load()
	ent := old[k]
	if ent == nil || ent.val.v != v {
		return false
	}
	ents := cloneEnts(old)
	delete(ents, k)
	s.snap.Store(&ents)
	return true
}

// drain empties every shard and returns all values (Close reclamation).
func (c *cache) drain() []cacheVal {
	var out []cacheVal
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for _, ent := range *s.snap.Load() {
			out = append(out, ent.val)
		}
		empty := make(map[cacheKey]*cacheEnt)
		s.snap.Store(&empty)
		s.mu.Unlock()
	}
	return out
}

// shardLens reports each shard's slot count (introspection: occupancy
// skew across shards is a hash-quality signal).
func (c *cache) shardLens() []int {
	out := make([]int, len(c.shards))
	for i := range c.shards {
		out[i] = len(*c.shards[i].snap.Load())
	}
	return out
}

// len counts cached slots across shards (tests and metrics).
func (c *cache) len() int {
	n := 0
	for i := range c.shards {
		n += len(*c.shards[i].snap.Load())
	}
	return n
}
