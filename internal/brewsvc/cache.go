package brewsvc

import (
	"sync"

	"repro/internal/specmgr"
)

// cacheVal is what a cache slot serves: the shared variant-table entry,
// the specific variant this key's guard values route to (for the
// liveness check on hit), and the entry key whose reference the slot
// holds.
type cacheVal struct {
	e  *specmgr.Entry
	v  *specmgr.Variant
	ek entryKey
}

// cache is the sharded specialized-code cache: key-partitioned shards,
// each an independently locked LRU over installed variants. Shard locks
// are leaves (nothing is acquired under them), so lookups from many
// submitters and inserts from many workers never serialize on one mutex.
// Eviction returns the victims to the caller, which removes the variants
// and drops the entry references outside the shard lock.
type cache struct {
	shards []cacheShard
}

type cacheShard struct {
	mu       sync.Mutex
	perShard int
	ents     map[cacheKey]*cacheEnt
	clock    uint64
}

type cacheEnt struct {
	val     cacheVal
	lastUse uint64
}

func newCache(shards, perShard int) *cache {
	c := &cache{shards: make([]cacheShard, shards)}
	for i := range c.shards {
		c.shards[i].perShard = perShard
		c.shards[i].ents = make(map[cacheKey]*cacheEnt)
	}
	return c
}

func (c *cache) shardFor(k cacheKey) *cacheShard {
	return &c.shards[k.hash()%uint64(len(c.shards))]
}

// get returns the cached value for k (touching its LRU slot).
func (c *cache) get(k cacheKey) (cacheVal, bool) {
	s := c.shardFor(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	ent := s.ents[k]
	if ent == nil {
		return cacheVal{}, false
	}
	s.clock++
	ent.lastUse = s.clock
	return ent.val, true
}

// put inserts an installed variant and returns the values evicted to make
// room (the displaced slot on key collision plus LRU victims over
// capacity). The caller reclaims them outside the shard lock.
func (c *cache) put(k cacheKey, val cacheVal) []cacheVal {
	s := c.shardFor(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	var evicted []cacheVal
	if old := s.ents[k]; old != nil {
		// Singleflight admission makes a same-key race impossible, but a
		// re-trace after a demotion or an external Release lands here; keep
		// the newer code.
		evicted = append(evicted, old.val)
	}
	s.clock++
	s.ents[k] = &cacheEnt{val: val, lastUse: s.clock}
	for len(s.ents) > s.perShard {
		var victimKey cacheKey
		var victim *cacheEnt
		for vk, ve := range s.ents {
			if ve.val.v == val.v {
				continue // never evict the just-inserted variant
			}
			if victim == nil || ve.lastUse < victim.lastUse {
				victimKey, victim = vk, ve
			}
		}
		if victim == nil {
			break
		}
		delete(s.ents, victimKey)
		evicted = append(evicted, victim.val)
	}
	return evicted
}

// remove drops the slot for k if it still serves the same variant (a
// racing put may have replaced it) and reports whether it did. Used by
// the hit path when it finds the slot's variant demoted.
func (c *cache) remove(k cacheKey, v *specmgr.Variant) bool {
	s := c.shardFor(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	ent := s.ents[k]
	if ent == nil || ent.val.v != v {
		return false
	}
	delete(s.ents, k)
	return true
}

// drain empties every shard and returns all values (Close reclamation).
func (c *cache) drain() []cacheVal {
	var out []cacheVal
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for _, ent := range s.ents {
			out = append(out, ent.val)
		}
		s.ents = make(map[cacheKey]*cacheEnt)
		s.mu.Unlock()
	}
	return out
}

// shardLens reports each shard's slot count (introspection: occupancy
// skew across shards is a hash-quality signal).
func (c *cache) shardLens() []int {
	out := make([]int, len(c.shards))
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		out[i] = len(s.ents)
		s.mu.Unlock()
	}
	return out
}

// len counts cached slots across shards (tests and metrics).
func (c *cache) len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.ents)
		s.mu.Unlock()
	}
	return n
}
