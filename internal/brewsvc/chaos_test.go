package brewsvc_test

import (
	"math"
	"sync"
	"testing"

	"repro/internal/brew"
	"repro/internal/brewsvc"
	"repro/internal/faultinject"
	"repro/internal/obs"
)

// chaosPoints are the injection points the chaos tests arm; the
// fault→event correspondence check iterates them.
var chaosPoints = []faultinject.Point{
	faultinject.PointOpcode, faultinject.PointBudget, faultinject.PointPanic,
	faultinject.PointJITAlloc, faultinject.PointDispatch,
}

// faultEventsSince counts the flight recorder's KindFault events recorded
// at or after seq, keyed by injection point.
func faultEventsSince(seq uint64) map[string]uint64 {
	counts := make(map[string]uint64)
	for _, e := range obs.Events() {
		if e.Seq >= seq && e.Kind == obs.KindFault {
			counts[e.Reason]++
		}
	}
	return counts
}

// dumpRecorderOnFailure snapshots the flight-recorder tail into the test
// log if the test fails, so a chaos failure ships its own lifecycle
// evidence.
func dumpRecorderOnFailure(t *testing.T) {
	t.Helper()
	t.Cleanup(func() {
		if t.Failed() {
			t.Logf("flight recorder tail:\n%s", obs.FormatEvents(obs.TailEvents(64)))
		}
	})
}

// TestChaosServiceNeverWrongNeverLeaks drives seed-varied fault injection
// through the concurrent service until at least 500 faults have fired
// (about 100 under -short) and asserts the service-level robustness
// invariant on every round:
//
//   - a fault degrades only the request carrying the injector — the clean
//     requests submitted concurrently in the same round always specialize
//     (the cache is never poisoned, the queue never wedges);
//   - every outcome is callable and the sweep checksum always matches the
//     golden reference, specialized or degraded;
//   - after Close the code-buffer accounting returns to the baseline, so
//     chaos cannot leak JIT space through the cache, the orphan list, or
//     the queue;
//   - every injected fault leaves a matching KindFault event in the
//     flight recorder (checked per round against the injectors' fired
//     counts, per injection point), and a failing round dumps the
//     recorder tail into the test log.
//
// Execution happens strictly after all of a round's outcomes are in — the
// machine must not run emulated code while rewrites are in flight.
func TestChaosServiceNeverWrongNeverLeaks(t *testing.T) {
	withObs(t)
	dumpRecorderOnFailure(t)
	m, w := newStencil(t)
	baseline := m.JITFreeBytes()

	svc := brewsvc.New(m, brewsvc.Options{Workers: 4, QueueCap: 32, Shards: 2, PerShard: 4})

	const iters = 3
	target := uint64(500)
	if testing.Short() {
		target = 100
	}

	var fired uint64
	rounds, degradedReqs := 0, 0
	for seed := int64(1); fired < target; seed++ {
		rounds++
		seqBefore := obs.Default.Recorder.Seq()

		// Per-round requests: three fault-injected (each with its own
		// injector — Inject-bearing requests are isolated by design) and
		// one clean cacheable request racing them through the same queue.
		injs := make([]*faultinject.Injector, 3)
		reqs := make([]*brewsvc.Request, 0, 4)
		for i := range injs {
			s := seed + int64(i)
			inj := faultinject.New(s)
			inj.Arm(faultinject.PointOpcode, 0.002*float64(s%3))
			inj.Arm(faultinject.PointBudget, 0.002*float64((s/3)%3))
			inj.Arm(faultinject.PointPanic, 0.001*float64((s/9)%3))
			inj.Arm(faultinject.PointJITAlloc, 0.5*float64(s%2))
			inj.Arm(faultinject.PointDispatch, 0.5*float64((s/2)%2))
			injs[i] = inj

			cfg, args := w.ApplyConfig()
			cfg.Inject = inj.Hook()
			if s%5 == 0 {
				// Genuine (non-injected) per-request budget exhaustion.
				cfg.Budget = &brew.Budget{MaxTracedInstrs: int(10 + s%200)}
			}
			req := &brewsvc.Request{Config: cfg, Fn: w.Apply, Args: args}
			if s%4 == 0 {
				req.Guards = []brew.ParamGuard{{Param: 2, Value: gridXS}}
			}
			reqs = append(reqs, req)
		}
		cleanCfg, cleanArgs := w.ApplyConfig()
		reqs = append(reqs, &brewsvc.Request{Config: cleanCfg, Fn: w.Apply, Args: cleanArgs})

		outs := make([]brewsvc.Outcome, len(reqs))
		var wg sync.WaitGroup
		for i, req := range reqs {
			wg.Add(1)
			go func(i int, req *brewsvc.Request) {
				defer wg.Done()
				outs[i] = svc.Do(req)
			}(i, req)
		}
		wg.Wait()

		clean := outs[len(outs)-1]
		if clean.Degraded {
			t.Fatalf("seed %d: clean request degraded: %s (%v) — fault leaked across requests",
				seed, clean.Reason, clean.Err)
		}
		for i, out := range outs {
			if out.Addr == 0 {
				t.Fatalf("seed %d: request %d has no callable address", seed, i)
			}
			if out.Degraded {
				degradedReqs++
			}

			// The checksum matches the golden reference whether the
			// outcome is specialized or degraded.
			if err := w.ResetMatrices(); err != nil {
				t.Fatal(err)
			}
			got, err := w.RunSweeps(out.Addr, false, iters)
			if err != nil {
				t.Fatalf("seed %d: request %d sweep: %v", seed, i, err)
			}
			if want := w.Golden(iters); math.Abs(got-want) > 1e-9 {
				t.Fatalf("seed %d: request %d wrong result %g, want %g (degraded=%v)",
					seed, i, got, want, out.Degraded)
			}
		}

		// Fault→event correspondence: every fault the round's injectors
		// fired must have left a recorded KindFault event at this point.
		recorded := faultEventsSince(seqBefore)
		for _, p := range chaosPoints {
			var want uint64
			for _, inj := range injs {
				want += inj.Fired(p)
			}
			if got := recorded[string(p)]; got != want {
				t.Fatalf("seed %d: %d recorded %s fault events, injectors fired %d",
					seed, got, p, want)
			}
		}

		for _, inj := range injs {
			fired += inj.TotalFired()
		}
	}

	st := svc.Stats()
	svc.Close()
	if got := m.JITFreeBytes(); got != baseline {
		t.Errorf("chaos leaked code-buffer space: %d free, baseline %d", got, baseline)
	}
	t.Logf("chaos: %d rounds, %d injected faults, %d degraded requests, stats %+v",
		rounds, fired, degradedReqs, st)
}
