package brewsvc

// queue is the bounded three-level priority queue. All methods require
// Service.mu; the bound applies to the total across levels so low-priority
// floods exert backpressure on everyone (admission control happens before
// priorities — a full queue is a full queue).
type queue struct {
	capacity int
	levels   [3][]*flight // indexed by Priority, FIFO within a level
	n        int
}

func newQueue(capacity int) *queue {
	return &queue{capacity: capacity}
}

func (q *queue) empty() bool { return q.n == 0 }
func (q *queue) full() bool  { return q.n >= q.capacity }
func (q *queue) len() int    { return q.n }

// depths reports the queued flights per priority level (introspection).
func (q *queue) depths() [3]int {
	var d [3]int
	for p := range q.levels {
		d[p] = len(q.levels[p])
	}
	return d
}

// push appends the flight to its priority level. The caller has already
// checked full(); push panics on overflow to catch admission bugs.
func (q *queue) push(f *flight) {
	if q.full() {
		panic("brewsvc: queue overflow past admission check")
	}
	p := f.prio
	if p > PriorityHigh {
		p = PriorityHigh
	}
	q.levels[p] = append(q.levels[p], f)
	q.n++
}

// depthAtOrAbove counts queued flights at priority p or higher: the work
// an arriving request at p must wait behind (admission-control wait
// estimation).
func (q *queue) depthAtOrAbove(p Priority) int {
	if p > PriorityHigh {
		p = PriorityHigh
	}
	n := 0
	for l := int(p); l <= int(PriorityHigh); l++ {
		n += len(q.levels[l])
	}
	return n
}

// evictLowestBelow removes and returns the oldest queued flight of the
// lowest non-empty priority level strictly below p, skipping promotion
// flights (a pumped promotion was promised to its awaiter and frees a
// tier-0 body — shedding one would break the pump-and-await contract).
// Returns nil when no evictable flight exists.
func (q *queue) evictLowestBelow(p Priority) *flight {
	if p > PriorityHigh {
		p = PriorityHigh
	}
	for l := int(PriorityLow); l < int(p); l++ {
		for i, f := range q.levels[l] {
			if f.promo {
				continue
			}
			q.levels[l] = append(q.levels[l][:i], q.levels[l][i+1:]...)
			if len(q.levels[l]) == 0 {
				q.levels[l] = nil
			}
			q.n--
			return f
		}
	}
	return nil
}

// pop removes the oldest flight of the highest non-empty level, or nil.
func (q *queue) pop() *flight {
	for p := int(PriorityHigh); p >= int(PriorityLow); p-- {
		l := q.levels[p]
		if len(l) == 0 {
			continue
		}
		f := l[0]
		l[0] = nil // release the reference; the backing array is reused
		q.levels[p] = l[1:]
		if len(q.levels[p]) == 0 {
			q.levels[p] = nil // reset so the backing array can be collected
		}
		q.n--
		return f
	}
	return nil
}
