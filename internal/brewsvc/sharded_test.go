package brewsvc_test

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/brew"
	"repro/internal/brewsvc"
	"repro/internal/minc"
	"repro/internal/vm"
)

// loadFleet compiles n small distinct functions and returns their
// addresses. Distinct function addresses mean distinct entry keys, so a
// multi-shard service spreads them across shards.
func loadFleet(t *testing.T, m *vm.Machine, n int) []uint64 {
	t.Helper()
	var src strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&src, `
long fleet%d(long x, long k) {
    long r = %d;
    for (long i = 0; i < k; i++) { r = r + x + %d; }
    return r;
}`, i, i+1, i)
	}
	l, err := minc.CompileAndLink(m, src.String(), nil)
	if err != nil {
		t.Fatal(err)
	}
	fns := make([]uint64, n)
	for i := 0; i < n; i++ {
		fns[i], err = l.FuncAddr(fmt.Sprintf("fleet%d", i))
		if err != nil {
			t.Fatal(err)
		}
	}
	return fns
}

// TestShardRouting: entry-key routing is deterministic, sibling guard
// values share a shard, and a multi-function fleet actually spreads
// across shards (the partitioning is not degenerate).
func TestShardRouting(t *testing.T) {
	m := vm.MustNew()
	fns := loadFleet(t, m, 8)
	svc := brewsvc.Open(m, brewsvc.WithShards(4), brewsvc.WithWorkers(1))
	defer svc.Close()

	if got := svc.ShardCount(); got != 4 {
		t.Fatalf("ShardCount = %d, want 4", got)
	}
	used := make(map[int]bool)
	for _, fn := range fns {
		req := &brewsvc.Request{Config: brew.NewConfig(), Fn: fn}
		idx := svc.ShardIndexOf(req)
		if idx < 0 || idx >= 4 {
			t.Fatalf("shard index %d out of range", idx)
		}
		if again := svc.ShardIndexOf(req); again != idx {
			t.Fatalf("routing not deterministic: %d then %d", idx, again)
		}
		// Sibling guard values share the variant table (the entry key
		// carries the guard param SET, not the values), so they must all
		// route to one shard — though not necessarily the unguarded
		// base's, whose param set is empty.
		base := svc.ShardIndexOf(&brewsvc.Request{Config: brew.NewConfig(), Fn: fn,
			Guards: []brew.ParamGuard{{Param: 2, Value: 3}}})
		for _, k := range []uint64{5, 9} {
			g := &brewsvc.Request{Config: brew.NewConfig(), Fn: fn,
				Guards: []brew.ParamGuard{{Param: 2, Value: k}}}
			if gi := svc.ShardIndexOf(g); gi != base {
				t.Fatalf("guard value %d routed to shard %d, sibling value 3 to %d", k, gi, base)
			}
		}
		used[idx] = true
	}
	if len(used) < 2 {
		t.Fatalf("8 functions all routed to one shard: partitioning is degenerate (%v)", used)
	}
}

// TestCrossShardIsolation: a fault storm on one shard's function never
// degrades concurrent clean requests owned by another shard, and the
// per-shard stats attribute the damage to the stormed shard only.
func TestCrossShardIsolation(t *testing.T) {
	m := vm.MustNew()
	fns := loadFleet(t, m, 8)
	svc := brewsvc.Open(m, brewsvc.WithShards(4), brewsvc.WithWorkers(2))
	defer svc.Close()

	// Pick two functions whose request shapes land on different shards.
	// Routing uses the entry key — fn plus config fingerprint plus guard
	// param set — so shards are computed from the exact shapes submitted
	// below: unguarded storm requests vs guarded clean requests.
	stormFn, cleanFn := fns[0], uint64(0)
	stormShard := svc.ShardIndexOf(&brewsvc.Request{Config: brew.NewConfig(), Fn: stormFn})
	cleanShard := -1
	for _, fn := range fns[1:] {
		idx := svc.ShardIndexOf(&brewsvc.Request{Config: brew.NewConfig(), Fn: fn,
			Guards: []brew.ParamGuard{{Param: 2, Value: 0}}})
		if idx != stormShard {
			cleanFn, cleanShard = fn, idx
			break
		}
	}
	if cleanShard < 0 {
		t.Fatal("no request shape found on a second shard")
	}

	const rounds = 24
	stormErr := errors.New("injected storm fault")
	var wg sync.WaitGroup
	stormOuts := make([]brewsvc.Outcome, rounds)
	cleanOuts := make([]brewsvc.Outcome, rounds)
	for i := 0; i < rounds; i++ {
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			cfg := brew.NewConfig()
			cfg.Inject = func(site string) error { return stormErr }
			stormOuts[i] = svc.Do(&brewsvc.Request{Config: cfg, Fn: stormFn, Args: []uint64{1, 4}})
		}(i)
		go func(i int) {
			defer wg.Done()
			// A fresh guard value per round forces a fresh trace (no cache
			// hit), so every round exercises the clean shard's full path.
			cleanOuts[i] = svc.Do(&brewsvc.Request{
				Config: brew.NewConfig(), Fn: cleanFn,
				Guards: []brew.ParamGuard{{Param: 2, Value: uint64(i)}},
				Args:   []uint64{0, 0},
			})
		}(i)
	}
	wg.Wait()

	for i, out := range stormOuts {
		if !out.Degraded {
			t.Fatalf("storm round %d: injected fault did not degrade", i)
		}
		if out.Addr == 0 {
			t.Fatalf("storm round %d: degraded outcome has no callable address", i)
		}
	}
	for i, out := range cleanOuts {
		if out.Degraded {
			t.Fatalf("clean round %d degraded: %s (%v) — fault leaked across shards", i, out.Reason, out.Err)
		}
	}

	per := svc.ShardStats()
	if got := per[stormShard].Degraded; got != rounds {
		t.Errorf("storm shard %d degraded = %d, want %d", stormShard, got, rounds)
	}
	if got := per[cleanShard].Degraded; got != 0 {
		t.Errorf("clean shard %d degraded = %d, want 0", cleanShard, got)
	}
	if got := per[cleanShard].Traces; got != rounds {
		t.Errorf("clean shard %d traces = %d, want %d", cleanShard, got, rounds)
	}
	agg := svc.Stats()
	var sum brewsvc.Stats
	for _, st := range per {
		sum.Submitted += st.Submitted
		sum.Traces += st.Traces
		sum.Degraded += st.Degraded
	}
	if agg.Submitted != sum.Submitted || agg.Traces != sum.Traces || agg.Degraded != sum.Degraded {
		t.Errorf("Stats() aggregate %+v does not sum ShardStats %+v", agg, sum)
	}
}

// TestSubmitBatchJoinsSingleflight: duplicates inside one batch coalesce
// onto one flight per distinct key — a batch of 4 distinct keys x 3
// duplicates runs exactly 4 traces, exactly as 12 concurrent Submits
// would.
func TestSubmitBatchJoinsSingleflight(t *testing.T) {
	m := vm.MustNew()
	fn := loadPoly(t, m)
	svc := brewsvc.Open(m, brewsvc.WithWorkers(2), brewsvc.WithQueueCap(32))
	defer svc.Close()

	const keys, dups = 4, 3
	var reqs []*brewsvc.Request
	for d := 0; d < dups; d++ {
		for k := 0; k < keys; k++ {
			reqs = append(reqs, &brewsvc.Request{
				Config: brew.NewConfig(), Fn: fn,
				Guards: []brew.ParamGuard{{Param: 2, Value: uint64(3 + k)}},
				Args:   []uint64{0, 0},
			})
		}
	}
	tickets := svc.SubmitBatch(reqs)
	if len(tickets) != len(reqs) {
		t.Fatalf("%d tickets for %d requests", len(tickets), len(reqs))
	}
	for i, tk := range tickets {
		out := tk.Outcome()
		if out.Degraded {
			t.Fatalf("request %d degraded: %s (%v)", i, out.Reason, out.Err)
		}
		if out.Addr != tk.Addr() {
			t.Fatalf("request %d outcome addr %#x != ticket addr %#x", i, out.Addr, tk.Addr())
		}
	}

	st := svc.Stats()
	if st.Traces != keys {
		t.Fatalf("traces = %d, want %d (batch duplicates must singleflight)", st.Traces, keys)
	}
	if shared := st.CoalesceHits + st.CacheHits; shared != keys*(dups-1) {
		t.Fatalf("coalesce (%d) + cache (%d) = %d shared, want %d",
			st.CoalesceHits, st.CacheHits, shared, keys*(dups-1))
	}
	if st.Submitted != keys*dups {
		t.Fatalf("submitted = %d, want %d", st.Submitted, keys*dups)
	}

	// A second identical batch is all warm: zero new traces.
	for i, tk := range svc.SubmitBatch(reqs) {
		out := tk.Outcome()
		if out.Degraded {
			t.Fatalf("warm request %d degraded: %s (%v)", i, out.Reason, out.Err)
		}
		if !out.CacheHit {
			t.Fatalf("warm request %d not a cache hit", i)
		}
	}
	if st := svc.Stats(); st.Traces != keys {
		t.Fatalf("warm batch ran %d extra traces", st.Traces-keys)
	}
}

// TestSubmitBatchAcrossShards: one batch spanning every shard completes
// fully — the per-shard lock transactions are independent and the
// tickets come back in input order.
func TestSubmitBatchAcrossShards(t *testing.T) {
	m := vm.MustNew()
	fns := loadFleet(t, m, 8)
	svc := brewsvc.Open(m, brewsvc.WithShards(4), brewsvc.WithWorkers(2))
	defer svc.Close()

	var reqs []*brewsvc.Request
	for _, fn := range fns {
		reqs = append(reqs, &brewsvc.Request{Config: brew.NewConfig(), Fn: fn, Args: []uint64{2, 5}})
	}
	// Invalid requests keep their input slots without disturbing the rest.
	reqs = append(reqs, nil, &brewsvc.Request{Config: nil, Fn: fns[0]})

	tickets := svc.SubmitBatch(reqs)
	for i := 0; i < len(fns); i++ {
		out := tickets[i].Outcome()
		if out.Degraded {
			t.Fatalf("fn %d degraded: %s (%v)", i, out.Reason, out.Err)
		}
	}
	for i := len(fns); i < len(reqs); i++ {
		out := tickets[i].Outcome()
		if !out.Degraded || out.Reason != brew.ReasonBadConfig {
			t.Fatalf("invalid request %d: degraded=%v reason=%q, want bad-config", i, out.Degraded, out.Reason)
		}
	}
	if st := svc.Stats(); st.Traces != uint64(len(fns)) {
		t.Fatalf("traces = %d, want %d", st.Traces, len(fns))
	}
}
