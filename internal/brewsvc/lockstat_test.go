package brewsvc_test

import (
	"testing"

	"repro/internal/brewsvc"
)

// TestWarmPathZeroLocks is the lock-free serve-path acceptance test: once
// a key is cached, Submit serves it from the immutable cache snapshot
// without acquiring ANY service lock. It needs the counted-mutex build —
// run with
//
//	go test -tags brewsvc_lockstat ./internal/brewsvc/
//
// and is skipped otherwise (the default build's mutex is a plain
// sync.Mutex with no counter).
func TestWarmPathZeroLocks(t *testing.T) {
	if _, ok := brewsvc.LockAcquisitions(); !ok {
		t.Skip("lock accounting disabled; build with -tags brewsvc_lockstat")
	}

	m, w := newStencil(t)
	svc := brewsvc.Open(m, brewsvc.WithWorkers(2))
	defer svc.Close()

	cfg, args := w.ApplyConfig()
	seed := svc.Do(&brewsvc.Request{Config: cfg, Fn: w.Apply, Args: args})
	if seed.Degraded {
		t.Fatalf("seed trace degraded: %s (%v)", seed.Reason, seed.Err)
	}

	// Settle: one warm hit, then snapshot the global acquisition counter.
	cfg, args = w.ApplyConfig()
	if out := svc.Do(&brewsvc.Request{Config: cfg, Fn: w.Apply, Args: args}); !out.CacheHit {
		t.Fatal("second submit missed the cache")
	}
	before, _ := brewsvc.LockAcquisitions()

	const hits = 1000
	for i := 0; i < hits; i++ {
		cfg, args := w.ApplyConfig()
		out := svc.Do(&brewsvc.Request{Config: cfg, Fn: w.Apply, Args: args})
		if out.Degraded {
			t.Fatalf("hit %d degraded: %s (%v)", i, out.Reason, out.Err)
		}
		if !out.CacheHit {
			t.Fatalf("hit %d was not served from the cache", i)
		}
	}

	after, _ := brewsvc.LockAcquisitions()
	if after != before {
		t.Fatalf("warm serve path acquired %d service locks over %d hits, want 0", after-before, hits)
	}
}
