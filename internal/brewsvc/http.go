package brewsvc

import (
	"encoding/json"
	"net"
	"net/http"

	"repro/internal/obs"
)

// ServeIntrospection starts the opt-in HTTP introspection listener on
// addr (e.g. "127.0.0.1:0" to bind an ephemeral port) and returns the
// bound address plus a stop function. Endpoints:
//
//	/metrics  Prometheus text exposition: every telemetry instrument
//	          plus the per-stage/per-tier span summaries (obs.WriteProm)
//	/inspect  the Inspection snapshot as JSON
//	/events   the full flight-recorder dump as JSON
//	/         the rendered Inspection (the brew-top dashboard as text)
//
// The listener is plain HTTP with no auth — bind it to localhost. It is
// read-only: no endpoint mutates service state. Stop is idempotent and
// does not close the service itself.
func (s *Service) ServeIntrospection(addr string) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = obs.Default.WriteProm(w)
	})
	mux.HandleFunc("/inspect", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(s.Inspect())
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(obs.Events())
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte(s.Inspect().Render()))
	})
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	stop := func() { _ = srv.Close() }
	return ln.Addr().String(), stop, nil
}
