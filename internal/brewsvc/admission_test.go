package brewsvc_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/brew"
	"repro/internal/brewsvc"
	"repro/internal/faultinject"
	"repro/internal/vm"
)

// wedgeWorker submits an uncacheable request whose Inject hook blocks the
// (single) rewrite worker inside brew.Do, so everything submitted
// afterwards stays queued deterministically. It returns after the worker
// is provably wedged; the returned release function unblocks it.
func wedgeWorker(t *testing.T, svc *brewsvc.Service, fn uint64) (*brewsvc.Ticket, func()) {
	t.Helper()
	entered := make(chan struct{})
	block := make(chan struct{})
	cfg := brew.NewConfig()
	first := true
	cfg.Inject = func(site string) error {
		if first {
			first = false
			close(entered)
			<-block
		}
		return nil
	}
	tk := svc.Submit(&brewsvc.Request{
		Config: cfg, Fn: fn, Args: []uint64{1, 4},
		Priority: brewsvc.PriorityHigh,
	})
	select {
	case <-entered:
	case <-time.After(10 * time.Second):
		t.Fatal("worker never picked up the wedge request")
	}
	var once bool
	return tk, func() {
		if !once {
			once = true
			close(block)
		}
	}
}

// TestAdmissionInjectSheds: the deterministic admission seam — an
// Admission.Inject hook that reports overload sheds every arriving
// request in a class with an SLO, while classes without an SLO pass
// untouched.
func TestAdmissionInjectSheds(t *testing.T) {
	m := vm.MustNew()
	fn := loadPoly(t, m)
	svc := brewsvc.Open(m,
		brewsvc.WithWorkers(1),
		brewsvc.WithAdmission(brewsvc.Admission{
			SLO:    [3]time.Duration{brewsvc.PriorityLow: time.Second},
			Inject: func() bool { return true },
		}))
	defer svc.Close()

	low := svc.Do(&brewsvc.Request{
		Config: brew.NewConfig(), Fn: fn, Args: []uint64{2, 3},
		Priority: brewsvc.PriorityLow,
	})
	if !low.Degraded || low.Reason != brewsvc.ReasonOverload {
		t.Fatalf("low-priority outcome degraded=%v reason=%q, want overload shed", low.Degraded, low.Reason)
	}
	if !errors.Is(low.Err, brewsvc.ErrOverload) {
		t.Fatalf("low-priority err = %v, want ErrOverload", low.Err)
	}
	if low.Addr != fn {
		t.Fatalf("shed outcome addr %#x, want original %#x (never enqueued)", low.Addr, fn)
	}

	normal := svc.Do(&brewsvc.Request{
		Config: brew.NewConfig(), Fn: fn, Args: []uint64{2, 3},
		Priority: brewsvc.PriorityNormal,
	})
	if normal.Degraded {
		t.Fatalf("SLO-exempt normal request degraded: %s (%v)", normal.Reason, normal.Err)
	}

	st := svc.Stats()
	if st.Sheds[brewsvc.PriorityLow] != 1 {
		t.Fatalf("low sheds = %d, want 1", st.Sheds[brewsvc.PriorityLow])
	}
	if st.Sheds[brewsvc.PriorityNormal] != 0 || st.Sheds[brewsvc.PriorityHigh] != 0 {
		t.Fatalf("SLO-exempt classes shed: %v", st.Sheds)
	}
	if st.Rejected != 0 {
		t.Fatalf("admission sheds counted as legacy rejections: %d", st.Rejected)
	}
}

// TestAdmissionFaultinjectSeam: the faultinject registry drives the same
// decision through AdmissionHook, so chaos configs can storm admission
// without touching rewrite-pipeline points.
func TestAdmissionFaultinjectSeam(t *testing.T) {
	m := vm.MustNew()
	fn := loadPoly(t, m)
	inj := faultinject.New(7)
	inj.Arm(faultinject.PointAdmission, 1.0)
	svc := brewsvc.Open(m,
		brewsvc.WithWorkers(1),
		brewsvc.WithAdmission(brewsvc.Admission{
			SLO:    [3]time.Duration{brewsvc.PriorityNormal: time.Second},
			Inject: inj.AdmissionHook(),
		}))
	defer svc.Close()

	out := svc.Do(&brewsvc.Request{Config: brew.NewConfig(), Fn: fn, Args: []uint64{2, 3},
		Priority: brewsvc.PriorityNormal})
	if !out.Degraded || !errors.Is(out.Err, brewsvc.ErrOverload) {
		t.Fatalf("armed admission point did not shed: degraded=%v err=%v", out.Degraded, out.Err)
	}
	if inj.Fired(faultinject.PointAdmission) == 0 {
		t.Fatal("injector did not record the admission fault")
	}
}

// TestAdmissionEvictLower: when a High-priority arrival finds the queue
// full and its class decision is ShedEvictLower, the oldest strictly
// lower-priority queued flight is evicted (completing degraded with
// ReasonOverload) and the arrival is admitted in its place. With no
// lower-priority victim left, the arrival itself sheds.
func TestAdmissionEvictLower(t *testing.T) {
	m := vm.MustNew()
	fn := loadPoly(t, m)
	var decisions [3]brewsvc.OverloadDecision
	decisions[brewsvc.PriorityHigh] = brewsvc.ShedEvictLower
	svc := brewsvc.Open(m,
		brewsvc.WithWorkers(1),
		brewsvc.WithQueueCap(2),
		brewsvc.WithAdmission(brewsvc.Admission{
			SLO: [3]time.Duration{
				brewsvc.PriorityLow:    10 * time.Second,
				brewsvc.PriorityNormal: 10 * time.Second,
				brewsvc.PriorityHigh:   10 * time.Second,
			},
			OnOverload: decisions,
		}))
	defer svc.Close()

	_, release := wedgeWorker(t, svc, fn)
	defer release()

	submit := func(k uint64, p brewsvc.Priority) *brewsvc.Ticket {
		return svc.Submit(&brewsvc.Request{
			Config: brew.NewConfig(), Fn: fn,
			Guards:   []brew.ParamGuard{{Param: 2, Value: k}},
			Args:     []uint64{0, 0},
			Priority: p,
		})
	}
	lowA := submit(3, brewsvc.PriorityLow)   // queue 1/2
	lowB := submit(5, brewsvc.PriorityLow)   // queue 2/2
	highC := submit(7, brewsvc.PriorityHigh) // full: evicts lowA, admits C

	// The victim completes degraded immediately, before the worker runs.
	outA := lowA.Outcome()
	if !outA.Degraded || outA.Reason != brewsvc.ReasonOverload || !errors.Is(outA.Err, brewsvc.ErrOverload) {
		t.Fatalf("evicted flight: degraded=%v reason=%q err=%v, want overload", outA.Degraded, outA.Reason, outA.Err)
	}

	// Queue is full again with {lowB, highC}. Another High arrival evicts
	// lowB; the one after finds only High flights — no victim — and sheds
	// itself.
	highD := submit(9, brewsvc.PriorityHigh)
	outB := lowB.Outcome()
	if !outB.Degraded || outB.Reason != brewsvc.ReasonOverload {
		t.Fatalf("second victim: degraded=%v reason=%q, want overload", outB.Degraded, outB.Reason)
	}
	highE := submit(11, brewsvc.PriorityHigh)
	outE := highE.Outcome()
	if !outE.Degraded || outE.Reason != brewsvc.ReasonOverload {
		t.Fatalf("victimless high arrival: degraded=%v reason=%q, want shed arrival", outE.Degraded, outE.Reason)
	}
	if outE.Addr != fn {
		t.Fatalf("shed arrival addr %#x, want original %#x", outE.Addr, fn)
	}

	release()
	for name, tk := range map[string]*brewsvc.Ticket{"highC": highC, "highD": highD} {
		if out := tk.Outcome(); out.Degraded {
			t.Fatalf("%s degraded after release: %s (%v)", name, out.Reason, out.Err)
		}
	}

	st := svc.Stats()
	if st.Sheds[brewsvc.PriorityLow] != 2 {
		t.Errorf("low sheds = %d, want 2 (two eviction victims)", st.Sheds[brewsvc.PriorityLow])
	}
	if st.Sheds[brewsvc.PriorityHigh] != 1 {
		t.Errorf("high sheds = %d, want 1 (the victimless arrival)", st.Sheds[brewsvc.PriorityHigh])
	}
	if st.Rejected != 0 {
		t.Errorf("admission-controlled overload counted as legacy rejection: %d", st.Rejected)
	}
	if st.DeadlineSheds != 0 {
		t.Errorf("unexpected deadline sheds: %d", st.DeadlineSheds)
	}
}

// TestAdmissionDeadlineShed: a flight that waited past its class SLO is
// shed at dequeue — the worker never wastes a trace on a request that
// already missed its deadline.
func TestAdmissionDeadlineShed(t *testing.T) {
	m := vm.MustNew()
	fn := loadPoly(t, m)
	svc := brewsvc.Open(m,
		brewsvc.WithWorkers(1),
		brewsvc.WithQueueCap(8),
		brewsvc.WithAdmission(brewsvc.Admission{
			SLO: [3]time.Duration{brewsvc.PriorityNormal: time.Millisecond},
		}))
	defer svc.Close()

	wedgeTk, release := wedgeWorker(t, svc, fn)
	defer release()

	tk := svc.Submit(&brewsvc.Request{
		Config: brew.NewConfig(), Fn: fn,
		Guards:   []brew.ParamGuard{{Param: 2, Value: 4}},
		Args:     []uint64{0, 0},
		Priority: brewsvc.PriorityNormal,
	})
	time.Sleep(5 * time.Millisecond) // guarantee the SLO is blown while queued
	release()

	out := tk.Outcome()
	if !out.Degraded || out.Reason != brewsvc.ReasonDeadline {
		t.Fatalf("overdue flight: degraded=%v reason=%q, want deadline shed", out.Degraded, out.Reason)
	}
	if !errors.Is(out.Err, brewsvc.ErrOverload) {
		t.Fatalf("deadline shed err = %v, want ErrOverload", out.Err)
	}
	if wedge := wedgeTk.Outcome(); wedge.Degraded {
		t.Fatalf("wedge request degraded: %s (%v)", wedge.Reason, wedge.Err)
	}

	st := svc.Stats()
	if st.DeadlineSheds != 1 {
		t.Errorf("deadline sheds = %d, want 1", st.DeadlineSheds)
	}
	if st.Sheds[brewsvc.PriorityNormal] != 1 {
		t.Errorf("normal-class sheds = %d, want 1 (deadline sheds count against the class)", st.Sheds[brewsvc.PriorityNormal])
	}

	// The service is healthy afterwards: the same key specializes fine.
	again := svc.Do(&brewsvc.Request{
		Config: brew.NewConfig(), Fn: fn,
		Guards:   []brew.ParamGuard{{Param: 2, Value: 4}},
		Args:     []uint64{0, 0},
		Priority: brewsvc.PriorityNormal,
	})
	if again.Degraded {
		t.Fatalf("post-shed retry degraded: %s (%v)", again.Reason, again.Err)
	}
}

// TestTicketWaitContext: Wait honors context cancellation without
// cancelling the flight, and returns the outcome once it lands.
func TestTicketWaitContext(t *testing.T) {
	m := vm.MustNew()
	fn := loadPoly(t, m)
	svc := brewsvc.Open(m, brewsvc.WithWorkers(1))
	defer svc.Close()

	_, release := wedgeWorker(t, svc, fn)
	defer release()

	tk := svc.Submit(&brewsvc.Request{
		Config: brew.NewConfig(), Fn: fn,
		Guards: []brew.ParamGuard{{Param: 2, Value: 6}},
		Args:   []uint64{0, 0},
	})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := tk.Wait(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait on cancelled ctx = %v, want context.Canceled", err)
	}
	select {
	case <-tk.Done():
		t.Fatal("abandoned wait completed the ticket")
	default:
	}

	release()
	out, err := tk.Wait(context.Background())
	if err != nil {
		t.Fatalf("Wait after release: %v", err)
	}
	if out.Degraded {
		t.Fatalf("flight degraded: %s (%v)", out.Reason, out.Err)
	}
	if got := tk.Outcome(); got.Addr != out.Addr {
		t.Fatalf("Outcome addr %#x != Wait addr %#x", got.Addr, out.Addr)
	}
}

// TestPromotionBatchAwaitAll: the empty batch is awaitable, and AwaitAll
// surfaces context cancellation while leaving the promotions running.
func TestPromotionBatchAwaitAll(t *testing.T) {
	m := vm.MustNew()
	fn := loadPoly(t, m)
	svc := brewsvc.Open(m, brewsvc.WithWorkers(1), brewsvc.WithPromotion(4))
	defer svc.Close()

	batch := svc.PumpPromotions()
	if batch == nil {
		t.Fatal("PumpPromotions returned nil batch")
	}
	if batch.Len() != 0 {
		t.Fatalf("idle pump enqueued %d promotions", batch.Len())
	}
	outs, err := batch.AwaitAll(context.Background())
	if err != nil || len(outs) != 0 {
		t.Fatalf("empty AwaitAll = %v outcomes, err %v", outs, err)
	}

	// Install a tier-0 variant, make it hot, then pump while the worker
	// is wedged: the promotion flight cannot complete, so awaiting under
	// a cancelled context deterministically returns the context error.
	cfg := brew.NewConfig()
	cfg.Effort = brew.EffortQuick
	out := svc.Do(&brewsvc.Request{Config: cfg, Fn: fn,
		Guards: []brew.ParamGuard{{Param: 2, Value: 5}}, Args: []uint64{0, 0}})
	if out.Degraded {
		t.Fatalf("tier-0 install degraded: %s (%v)", out.Reason, out.Err)
	}
	for i := 0; i < 4; i++ {
		out.Variant.NoteSample()
	}
	_, release := wedgeWorker(t, svc, fn)
	defer release()
	batch = svc.PumpPromotions()
	if batch.Len() != 1 {
		t.Fatalf("%d promotions pumped, want 1", batch.Len())
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := batch.AwaitAll(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("AwaitAll on cancelled ctx = %v, want context.Canceled", err)
	}
	release()
	pouts, err := batch.AwaitAll(context.Background())
	if err != nil {
		t.Fatalf("AwaitAll: %v", err)
	}
	if len(pouts) != 1 || pouts[0].Degraded {
		t.Fatalf("promotion outcomes %+v, want one success", pouts)
	}
	if got := svc.Stats().TierPromotions; got != 1 {
		t.Fatalf("tier promotions = %d, want 1", got)
	}
}
