package brewsvc

// Warm start and write-behind persistence (WithStore). The worker
// consults the persistent rewrite store before tracing a cacheable
// flight and persists every successful install; the revalidate-before-
// adopt discipline lives in spstore.Adopt, the watchpoint re-arming in
// specmgr.InstallVariant (a warm outcome flows through the exact same
// install path as a fresh rewrite, so the frozen-range watches are
// re-armed against the live machine like any other install).

import (
	"repro/internal/brew"
)

// warmAdopt tries to serve f from the persistent store. It returns a
// fully revalidated, freshly installed outcome — indistinguishable from
// a brew.Do result — or nil (clean miss, or a revalidation failure that
// quarantined the record; either way the caller traces fresh). The
// store's counters and flight-recorder events account for both paths.
func (s *Service) warmAdopt(f *flight) *brew.Outcome {
	out, _, err := s.cfg.store.Adopt(s.m, f.req.Config, f.req.Fn, f.req.Args, f.req.FArgs, f.req.Guards)
	if err != nil || out == nil {
		return nil
	}
	return out
}

// persist captures a successful install into the store: the local write
// is synchronous on the worker (which just paid a multi-millisecond
// trace — the serve path is not here), the remote copy write-behind
// inside the store. Persistence is an optimization: a failure to
// capture or write is dropped, never surfaced to the caller.
func (s *Service) persist(f *flight, out *brew.Outcome) {
	_, _ = s.cfg.store.CapturePut(s.m, f.req.Config, f.req.Fn, f.req.Args, f.req.FArgs, f.req.Guards, out)
}
