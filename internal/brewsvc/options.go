package brewsvc

import (
	"time"

	"repro/internal/specmgr"
	"repro/internal/spstore"
	"repro/internal/vm"
)

// svcConfig is the resolved service configuration Open builds from its
// functional options. All sizes are per service shard unless noted.
type svcConfig struct {
	shards   int // service shards (queue + worker pool + promotion pump each)
	workers  int // rewriter goroutines per shard
	queueCap int // bounded-queue capacity per shard

	cacheShards   int // specialized-code cache shards (global across service shards)
	cachePerShard int // LRU capacity per cache shard

	manager      *specmgr.Manager
	policy       specmgr.Policy
	promoteAfter int
	store        *spstore.Store
	drainTimeout time.Duration
	admission    *Admission
}

func defaultConfig() svcConfig {
	return svcConfig{
		shards:        1,
		workers:       4,
		queueCap:      64,
		cacheShards:   8,
		cachePerShard: 32,
	}
}

// Option configures a Service at Open.
type Option func(*svcConfig)

// WithShards sets the service shard count (default 1). Requests are
// partitioned by their entry key — the function, the Config fingerprint,
// the known-parameter values and the guard parameter set — so sibling
// guard values share a shard (and a variant table) while unrelated
// fingerprints never contend: each shard owns its own admission lock,
// bounded priority queue, worker pool and promotion pump.
func WithShards(n int) Option {
	return func(c *svcConfig) {
		if n > 0 {
			c.shards = n
		}
	}
}

// WithWorkers sets the rewriter goroutine count per shard (default 4).
func WithWorkers(n int) Option {
	return func(c *svcConfig) {
		if n > 0 {
			c.workers = n
		}
	}
}

// WithQueueCap bounds each shard's queued (not yet running) requests
// across all priority levels (default 64).
func WithQueueCap(n int) Option {
	return func(c *svcConfig) {
		if n > 0 {
			c.queueCap = n
		}
	}
}

// WithCache sets the specialized-code cache geometry: shard count and LRU
// capacity per shard (defaults 8 and 32). The cache is global across
// service shards and its serve path is lock-free; size it generously —
// eviction releases the entry's code, so an evicted entry's Addr must no
// longer be used (the specmgr.Release contract).
func WithCache(shards, perShard int) Option {
	return func(c *svcConfig) {
		if shards > 0 {
			c.cacheShards = shards
		}
		if perShard > 0 {
			c.cachePerShard = perShard
		}
	}
}

// WithManager installs through an externally owned specialization manager
// instead of creating one.
func WithManager(m *specmgr.Manager) Option {
	return func(c *svcConfig) { c.manager = m }
}

// WithPolicy configures the internally created manager (ignored with
// WithManager). Detached service entries are exempt from MaxLive.
func WithPolicy(p specmgr.Policy) Option {
	return func(c *svcConfig) { c.policy = p }
}

// WithPromotion sets the tiered-rewriting hotness threshold: a cached
// tier-0 (brew.EffortQuick) variant whose hotness — managed calls plus
// profiler samples attributed by NoteSample — reaches after becomes due
// for promotion. The EffortFull re-rewrite and hot-swap start only from
// an explicit PumpPromotions call, whose PromotionBatch the host must
// await before resuming emulated execution (promote.go). Zero or
// negative disables promotion.
func WithPromotion(after int) Option {
	return func(c *svcConfig) { c.promoteAfter = after }
}

// WithStore attaches the persistent rewrite store (warm start): workers
// consult it before tracing a cacheable request — a record passing full
// revalidation (persist.go) is adopted instead of re-traced — and persist
// every successful install write-behind.
func WithStore(st *spstore.Store) Option {
	return func(c *svcConfig) { c.store = st }
}

// WithPersistDrainTimeout bounds Close's wait for the store's remote
// write-behind queue (default 2s; only used with WithStore). Close never
// hangs on a remote put stuck in backoff.
func WithPersistDrainTimeout(d time.Duration) Option {
	return func(c *svcConfig) { c.drainTimeout = d }
}

// WithAdmission enables real admission control: per-priority queue-wait
// SLOs with deadline-aware shedding and an explicit per-class overload
// decision, replacing the blanket degrade-on-full default (see
// admission.go). The Admission value is copied at Open.
func WithAdmission(a Admission) Option {
	return func(c *svcConfig) { c.admission = &a }
}

// Open starts a specialization service over machine m. The returned
// service owns its worker goroutines until Close.
//
//	svc := brewsvc.Open(m, brewsvc.WithShards(8), brewsvc.WithWorkers(2))
//
// With no options the service runs one shard with four workers, a
// 64-deep queue and an 8x32 cache — the legacy New defaults.
func Open(m *vm.Machine, opts ...Option) *Service {
	cfg := defaultConfig()
	for _, o := range opts {
		if o != nil {
			o(&cfg)
		}
	}
	return open(m, cfg)
}

// Options configures a Service for the legacy New constructor. Zero
// fields take the documented defaults.
//
// Deprecated: use Open with functional options (WithShards, WithWorkers,
// WithQueueCap, WithCache, WithManager, WithPolicy, WithPromotion,
// WithStore, WithPersistDrainTimeout, WithAdmission).
type Options struct {
	// Workers is the rewriter goroutine count (default 4).
	Workers int
	// QueueCap bounds the total queued (not yet running) requests across
	// all priority levels; a full queue rejects with ErrQueueFull
	// (default 64).
	QueueCap int
	// Shards is the specialized-code cache shard count (default 8);
	// PerShard the LRU capacity of each shard (default 32).
	Shards   int
	PerShard int
	// Manager, when non-nil, is the externally owned specialization
	// manager to install through; otherwise the service creates one with
	// Policy.
	Manager *specmgr.Manager
	// Policy configures the internally created manager (ignored when
	// Manager is set).
	Policy specmgr.Policy
	// PromoteAfter is the tiered-rewriting hotness threshold (see
	// WithPromotion). Zero or negative disables promotion.
	PromoteAfter int
	// Store, when non-nil, is the persistent rewrite store (see
	// WithStore).
	Store *spstore.Store
	// PersistDrainTimeout bounds Close's wait for the store's remote
	// write-behind queue (default 2s; only used when Store is set).
	PersistDrainTimeout time.Duration
}

// New starts a single-shard service over machine m with the legacy
// Options surface. It is an exact-compatibility shim: one service shard,
// so Workers and QueueCap mean what they always did, and Shards/PerShard
// remain the cache geometry.
//
// Deprecated: use Open with functional options.
func New(m *vm.Machine, opt Options) *Service {
	cfg := defaultConfig()
	if opt.Workers > 0 {
		cfg.workers = opt.Workers
	}
	if opt.QueueCap > 0 {
		cfg.queueCap = opt.QueueCap
	}
	if opt.Shards > 0 {
		cfg.cacheShards = opt.Shards
	}
	if opt.PerShard > 0 {
		cfg.cachePerShard = opt.PerShard
	}
	cfg.manager = opt.Manager
	cfg.policy = opt.Policy
	cfg.promoteAfter = opt.PromoteAfter
	cfg.store = opt.Store
	cfg.drainTimeout = opt.PersistDrainTimeout
	return open(m, cfg)
}
