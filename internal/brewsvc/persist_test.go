package brewsvc_test

import (
	"errors"
	"math"
	"runtime"
	"testing"
	"time"

	"repro/internal/brewsvc"
	"repro/internal/spstore"
)

func openStoreDir(t *testing.T, dir string, opts spstore.Options) *spstore.Store {
	t.Helper()
	opts.Dir = dir
	st, err := spstore.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// TestWarmStartAcrossRestart is the warm-start acceptance test at the
// service level: a first "boot" traces and persists; an identically
// built second boot sharing the store directory serves the same request
// without tracing at all — same address, correct checksum, WarmHits
// counted instead of Traces — and the persist stats surface in Inspect.
func TestWarmStartAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	const iters = 3

	boot := func(warmExpected bool) (addr uint64, sum float64) {
		m, w := newStencil(t)
		st := openStoreDir(t, dir, spstore.Options{})
		svc := brewsvc.New(m, brewsvc.Options{Workers: 1, Store: st})
		defer svc.Close()
		cfg, args := w.ApplyConfig()
		out := svc.Do(&brewsvc.Request{Config: cfg, Fn: w.Apply, Args: args})
		if out.Degraded {
			t.Fatalf("degraded: %s (%v)", out.Reason, out.Err)
		}
		stats := svc.Stats()
		if warmExpected {
			if stats.Traces != 0 || stats.WarmHits != 1 {
				t.Fatalf("warm boot stats = %+v, want 0 traces / 1 warm hit", stats)
			}
			insp := svc.Inspect()
			if insp.Persist == nil || insp.Persist.WarmHits != 1 {
				t.Fatalf("Inspect().Persist = %+v, want 1 warm hit", insp.Persist)
			}
		} else if stats.Traces != 1 || stats.WarmHits != 0 {
			t.Fatalf("cold boot stats = %+v, want 1 trace / 0 warm hits", stats)
		}
		if err := w.ResetMatrices(); err != nil {
			t.Fatal(err)
		}
		v, err := w.RunSweeps(out.Addr, false, iters)
		if err != nil {
			t.Fatal(err)
		}
		if want := w.Golden(iters); math.Abs(v-want) > 1e-9 {
			t.Fatalf("checksum %g, want %g", v, want)
		}
		return out.Addr, v
	}

	coldAddr, coldSum := boot(false)
	warmAddr, warmSum := boot(true)
	if warmAddr != coldAddr || warmSum != coldSum {
		t.Fatalf("warm boot served %#x/%g, cold boot %#x/%g", warmAddr, warmSum, coldAddr, coldSum)
	}
}

// TestWarmHitNotCached: a warm adoption still populates the in-memory
// cache, so subsequent same-process requests are cache hits, not repeat
// store lookups.
func TestWarmAdoptionPopulatesCache(t *testing.T) {
	dir := t.TempDir()
	{
		m, w := newStencil(t)
		st := openStoreDir(t, dir, spstore.Options{})
		svc := brewsvc.New(m, brewsvc.Options{Workers: 1, Store: st})
		cfg, args := w.ApplyConfig()
		svc.Do(&brewsvc.Request{Config: cfg, Fn: w.Apply, Args: args})
		svc.Close()
	}
	m, w := newStencil(t)
	st := openStoreDir(t, dir, spstore.Options{})
	svc := brewsvc.New(m, brewsvc.Options{Workers: 1, Store: st})
	defer svc.Close()
	for i := 0; i < 3; i++ {
		cfg, args := w.ApplyConfig()
		if out := svc.Do(&brewsvc.Request{Config: cfg, Fn: w.Apply, Args: args}); out.Degraded {
			t.Fatalf("request %d degraded", i)
		}
	}
	stats := svc.Stats()
	if stats.WarmHits != 1 || stats.CacheHits != 2 || stats.Traces != 0 {
		t.Fatalf("stats = %+v, want 1 warm hit + 2 cache hits + 0 traces", stats)
	}
	if sst := st.Stats(); sst.LocalHits != 1 {
		t.Fatalf("store stats = %+v, want exactly 1 local hit", sst)
	}
}

// TestCloseRacingRemoteBackoff is the regression test for the Close /
// write-behind race: with the remote tier wedged (every put erroring
// into a long retry schedule), Service.Close must drain within its
// bounded deadline and return promptly — and shutting the store down
// afterwards must leave no goroutine behind.
func TestCloseRacingRemoteBackoff(t *testing.T) {
	before := runtime.NumGoroutine()

	r := spstore.NewMemRemote()
	remoteDown := errors.New("remote down")
	r.FailPut = func(string) error { return remoteDown }
	m, w := newStencil(t)
	st := openStoreDir(t, t.TempDir(), spstore.Options{
		Remote:           r,
		RemoteRetries:    1000,
		RemoteTimeout:    10 * time.Millisecond,
		BreakerThreshold: 1 << 30,
	})
	svc := brewsvc.New(m, brewsvc.Options{
		Workers:             1,
		Store:               st,
		PersistDrainTimeout: 50 * time.Millisecond,
	})
	cfg, args := w.ApplyConfig()
	if out := svc.Do(&brewsvc.Request{Config: cfg, Fn: w.Apply, Args: args}); out.Degraded {
		t.Fatalf("degraded: %s", out.Reason)
	}

	done := make(chan struct{})
	go func() { svc.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		t.Fatal("Service.Close hung on a remote put stuck in backoff")
	}
	st.Close()

	// The write-behind worker and any timed-out call goroutines must wind
	// down; poll briefly rather than demanding an instant exact count.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Fatalf("goroutines leaked across Close: %d before, %d after", before, n)
	}
}
