//go:build brewsvc_lockstat

package brewsvc

import (
	"sync"
	"sync/atomic"
)

// Lock-acquisition accounting for the "warm serve path takes zero service
// locks" acceptance bar. Built only under the brewsvc_lockstat tag so the
// default build pays nothing: svcMutex is then a plain sync.Mutex
// (lockstat_off.go) and LockAcquisitions reports counting disabled.
//
// Every service-owned mutex — the per-shard admission locks and the cache
// writer locks — is a svcMutex, so the counter covers the complete set of
// locks a Submit could possibly touch. cmd/brew-load snapshots the
// counter around its quiesced warm phase and emits the delta as the E10f
// row; scripts/checkjson requires it to be exactly zero.

// lockAcqs counts every svcMutex.Lock call process-wide.
var lockAcqs atomic.Uint64

// svcMutex is a counted mutex: Lock bumps the process-wide acquisition
// counter before acquiring. It implements sync.Locker, so sync.NewCond
// accepts it; Cond.Wait re-acquisitions are counted too (they are real
// lock traffic).
type svcMutex struct {
	mu sync.Mutex
}

func (m *svcMutex) Lock() {
	lockAcqs.Add(1)
	m.mu.Lock()
}

func (m *svcMutex) Unlock() { m.mu.Unlock() }

// LockAcquisitions returns the number of service lock acquisitions since
// process start and true. In default builds (no brewsvc_lockstat tag) it
// returns 0, false.
func LockAcquisitions() (uint64, bool) { return lockAcqs.Load(), true }
