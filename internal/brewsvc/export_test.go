package brewsvc

// ShardIndexOf exposes the admission routing decision: the index of the
// shard that owns req's entry key. Tests use it to place requests on
// specific shards (cross-shard isolation) and to predict ShardStats
// attribution.
func (s *Service) ShardIndexOf(req *Request) int {
	return s.shardOf(entryKeyOf(req)).id
}
