package brewsvc_test

import (
	"math"
	"sync"
	"testing"

	"repro/internal/brew"
	"repro/internal/brewsvc"
)

// TestPromotionHotSwapViaCalls drives the stub-side half of the hotness
// signal: managed calls through a tier-0 entry accumulate hotness, the
// threshold makes the entry due, and the next pump hot-swaps a full-effort
// body behind the same stable address.
func TestPromotionHotSwapViaCalls(t *testing.T) {
	m, w := newStencil(t)
	const after = 8
	svc := brewsvc.New(m, brewsvc.Options{Workers: 2, PromoteAfter: after})
	defer svc.Close()

	cfg, args := w.ApplyConfig()
	cfg.Effort = brew.EffortQuick
	out := svc.Do(&brewsvc.Request{Config: cfg, Fn: w.Apply, Args: args})
	if out.Degraded {
		t.Fatalf("tier-0 submit degraded: %s (%v)", out.Reason, out.Err)
	}
	e := out.Entry
	if got := e.Tier(); got != brew.EffortQuick {
		t.Fatalf("installed tier %s, want quick", got)
	}
	quickAddr := e.Result().Addr

	cell := w.M1 + uint64((gridXS+1)*8)
	callArgs := []uint64{cell, gridXS, w.S5}
	want, err := m.CallFloat(w.Apply, callArgs, nil)
	if err != nil {
		t.Fatal(err)
	}

	// One call short of the threshold: a pump must not promote.
	for i := 0; i < after-1; i++ {
		got, err := e.CallFloat(callArgs, nil)
		if err != nil || math.Abs(got-want) > 1e-12 {
			t.Fatalf("tier-0 call %d = %g, %v; want %g", i, got, err, want)
		}
	}
	if tks := svc.PumpPromotions(); tks.Len() != 0 {
		t.Fatalf("promoted after %d calls, threshold is %d", after-1, after)
	}

	// The call crossing the threshold makes the entry due.
	if _, err := e.CallFloat(callArgs, nil); err != nil {
		t.Fatal(err)
	}
	if calls, samples := e.Hotness(); calls != after || samples != 0 {
		t.Fatalf("hotness = %d calls + %d samples, want %d + 0", calls, samples, after)
	}
	tks := svc.PumpPromotions()
	if tks.Len() != 1 {
		t.Fatalf("%d promotions enqueued, want 1", tks.Len())
	}
	if p := tks.Tickets()[0].Outcome(); p.Degraded {
		t.Fatalf("promotion degraded: %s (%v)", p.Reason, p.Err)
	}
	if got := e.Tier(); got != brew.EffortFull {
		t.Fatalf("post-promotion tier %s, want full", got)
	}
	if e.Result().Addr == quickAddr {
		t.Fatal("promotion completed without installing a new body")
	}
	if st := svc.Stats(); st.TierPromotions != 1 || st.TierDemotions != 0 {
		t.Fatalf("promotion stats %d/%d, want 1/0", st.TierPromotions, st.TierDemotions)
	}

	// One shot: the entry left the tracking set, further pumps are no-ops.
	if tks := svc.PumpPromotions(); tks.Len() != 0 {
		t.Fatalf("entry promoted twice")
	}

	// The stable address callers hold now runs the optimized body.
	got, err := m.CallFloat(out.Addr, callArgs, nil)
	if err != nil || math.Abs(got-want) > 1e-12 {
		t.Fatalf("promoted call = %g, %v; want %g", got, err, want)
	}
}

// TestSubmitDoesNotAutoPromote: a due tier-0 entry must NOT be promoted
// behind a submitter's back — admissions never start promotion flights,
// because nobody could await them and the host might resume emulated
// execution while the background re-rewrite traces machine memory. Only
// an explicit PumpPromotions (whose tickets the host awaits) may start
// the flight.
func TestSubmitDoesNotAutoPromote(t *testing.T) {
	m, w := newStencil(t)
	svc := brewsvc.New(m, brewsvc.Options{Workers: 1, PromoteAfter: 1})
	defer svc.Close()

	qcfg, qargs := w.ApplyConfig()
	qcfg.Effort = brew.EffortQuick
	qout := svc.Do(&brewsvc.Request{Config: qcfg, Fn: w.Apply, Args: qargs})
	if qout.Degraded {
		t.Fatalf("tier-0 submit degraded: %s (%v)", qout.Reason, qout.Err)
	}
	qout.Entry.NoteSample() // the entry is now due for promotion

	// An unrelated admission runs to completion without touching it.
	fcfg, fargs := w.ApplyConfig()
	if fout := svc.Do(&brewsvc.Request{Config: fcfg, Fn: w.Apply, Args: fargs}); fout.Degraded {
		t.Fatalf("full submit degraded: %s (%v)", fout.Reason, fout.Err)
	}

	// The entry must still be unqueued: the explicit pump — and only it —
	// enqueues the flight. Had Submit auto-pumped, the one-shot queued
	// flag would already be set and this pump would return nothing.
	tks := svc.PumpPromotions()
	if tks.Len() != 1 {
		t.Fatalf("%d promotions from the explicit pump, want 1 (a Submit started the flight)", tks.Len())
	}
	if p := tks.Tickets()[0].Outcome(); p.Degraded {
		t.Fatalf("promotion degraded: %s (%v)", p.Reason, p.Err)
	}
	if got := qout.Entry.Tier(); got != brew.EffortFull {
		t.Fatalf("post-promotion tier %s, want full", got)
	}
}

// TestNoteSampleAttribution drives the lock-free sample index directly:
// PCs inside a tracked tier-0 body land on that entry's sample counter,
// PCs on either side of the range do not.
func TestNoteSampleAttribution(t *testing.T) {
	m, w := newStencil(t)
	svc := brewsvc.New(m, brewsvc.Options{Workers: 1, PromoteAfter: 1 << 20})
	defer svc.Close()

	cfg, args := w.ApplyConfig()
	cfg.Effort = brew.EffortQuick
	out := svc.Do(&brewsvc.Request{Config: cfg, Fn: w.Apply, Args: args})
	if out.Degraded {
		t.Fatalf("tier-0 submit degraded: %s (%v)", out.Reason, out.Err)
	}
	res := out.Entry.Result()
	lo, hi := res.Addr, res.Addr+uint64(res.CodeSize)

	svc.NoteSample(lo)     // first byte: hit
	svc.NoteSample(hi - 1) // last byte: hit
	svc.NoteSample(hi)     // one past the end: miss
	svc.NoteSample(lo - 1) // just before: miss
	if _, samples := out.Entry.Hotness(); samples != 2 {
		t.Fatalf("attributed %d samples, want 2", samples)
	}
}

// TestPromotionNoTornAddress hammers the entry's read API from many
// goroutines while a promotion hot-swaps the body underneath: no reader
// may ever observe a torn or intermediate specialized address (only the
// tier-0 body or the tier-1 body), and the entry's stable address must
// not move. Run under -race this also validates the locking on the
// Repromote swap path.
func TestPromotionNoTornAddress(t *testing.T) {
	m, w := newStencil(t)
	const after = 2
	svc := brewsvc.New(m, brewsvc.Options{Workers: 2, PromoteAfter: after})
	defer svc.Close()

	cfg, args := w.ApplyConfig()
	cfg.Effort = brew.EffortQuick
	out := svc.Do(&brewsvc.Request{Config: cfg, Fn: w.Apply, Args: args})
	if out.Degraded {
		t.Fatalf("tier-0 submit degraded: %s (%v)", out.Reason, out.Err)
	}
	e := out.Entry
	quickAddr := e.Result().Addr
	stub := out.Addr
	for i := 0; i < after; i++ {
		e.NoteSample()
	}

	const readers = 8
	stop := make(chan struct{})
	bodies := make([]map[uint64]bool, readers)
	stubs := make([]map[uint64]bool, readers)
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		bodies[r], stubs[r] = map[uint64]bool{}, map[uint64]bool{}
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				bodies[r][e.Result().Addr] = true
				stubs[r][e.Addr()] = true
				_ = e.Tier()
				_, _ = e.Hotness()
			}
		}(r)
	}

	tks := svc.PumpPromotions()
	if tks.Len() != 1 {
		close(stop)
		wg.Wait()
		t.Fatalf("%d promotions enqueued, want 1", tks.Len())
	}
	pout := tks.Tickets()[0].Outcome() // blocks until the hot-swap happened
	close(stop)
	wg.Wait()

	if pout.Degraded {
		t.Fatalf("promotion degraded: %s (%v)", pout.Reason, pout.Err)
	}
	fullAddr := e.Result().Addr
	if fullAddr == quickAddr {
		t.Fatal("promotion completed without installing a new body")
	}
	for r := 0; r < readers; r++ {
		for a := range bodies[r] {
			if a != quickAddr && a != fullAddr {
				t.Fatalf("reader %d observed torn body address %#x (tier-0 %#x, tier-1 %#x)",
					r, a, quickAddr, fullAddr)
			}
		}
		for a := range stubs[r] {
			if a != stub {
				t.Fatalf("reader %d observed moved stable address %#x, want %#x", r, a, stub)
			}
		}
	}
}

// TestPromotionDistinctEffortKeys: identical assumptions requested at two
// efforts are two distinct coalescing keys — a mixed concurrent burst
// collapses to exactly one flight per effort, never one shared flight.
func TestPromotionDistinctEffortKeys(t *testing.T) {
	m, w := newStencil(t)
	svc := brewsvc.New(m, brewsvc.Options{Workers: 4})
	defer svc.Close()

	const n = 32
	outs := make([]brewsvc.Outcome, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg, args := applyVariant(w, i)
			if i%2 == 1 {
				cfg.Effort = brew.EffortQuick
			}
			outs[i] = svc.Do(&brewsvc.Request{Config: cfg, Fn: w.Apply, Args: args})
		}(i)
	}
	wg.Wait()

	for i, o := range outs {
		if o.Degraded {
			t.Fatalf("caller %d degraded: %s (%v)", i, o.Reason, o.Err)
		}
	}
	if st := svc.Stats(); st.Traces != 2 {
		t.Fatalf("traces = %d, want exactly 2 (one per effort)", st.Traces)
	}
	fullE, quickE := outs[0].Entry, outs[1].Entry
	if fullE == quickE {
		t.Fatal("efforts coalesced onto one entry")
	}
	if got := fullE.Tier(); got != brew.EffortFull {
		t.Fatalf("full-effort entry tier %s", got)
	}
	if got := quickE.Tier(); got != brew.EffortQuick {
		t.Fatalf("quick-effort entry tier %s", got)
	}
	for i, o := range outs {
		want := fullE
		if i%2 == 1 {
			want = quickE
		}
		if o.Entry != want {
			t.Fatalf("caller %d landed on the wrong effort's entry", i)
		}
	}
}

// TestCacheNeverServesQuickToFull: an explicit EffortFull request must
// never be answered with cached tier-0 code; and after promotion, the
// tier-0 cache slot holding tier-1 code is an upgrade for quick callers,
// not a second full-effort slot.
func TestCacheNeverServesQuickToFull(t *testing.T) {
	m, w := newStencil(t)
	const after = 4
	svc := brewsvc.New(m, brewsvc.Options{Workers: 1, PromoteAfter: after})
	defer svc.Close()

	qcfg, qargs := w.ApplyConfig()
	qcfg.Effort = brew.EffortQuick
	qout := svc.Do(&brewsvc.Request{Config: qcfg, Fn: w.Apply, Args: qargs})
	if qout.Degraded || qout.CacheHit {
		t.Fatalf("tier-0 prime: degraded=%v cacheHit=%v", qout.Degraded, qout.CacheHit)
	}

	fcfg, fargs := w.ApplyConfig()
	fout := svc.Do(&brewsvc.Request{Config: fcfg, Fn: w.Apply, Args: fargs})
	if fout.Degraded {
		t.Fatalf("full request degraded: %s (%v)", fout.Reason, fout.Err)
	}
	if fout.CacheHit || fout.Coalesced {
		t.Fatalf("EffortFull request served from the tier-0 cache/flight (cacheHit=%v coalesced=%v)",
			fout.CacheHit, fout.Coalesced)
	}
	if fout.Entry == qout.Entry {
		t.Fatal("EffortFull request landed on the tier-0 entry")
	}
	if got := fout.Entry.Tier(); got != brew.EffortFull {
		t.Fatalf("full request got tier %s code", got)
	}
	if st := svc.Stats(); st.Traces != 2 {
		t.Fatalf("traces = %d, want 2", st.Traces)
	}

	// Promote the tier-0 entry via the sample-side counter.
	for i := 0; i < after; i++ {
		qout.Entry.NoteSample()
	}
	tks := svc.PumpPromotions()
	if tks.Len() != 1 {
		t.Fatalf("%d promotions enqueued, want 1", tks.Len())
	}
	if p := tks.Tickets()[0].Outcome(); p.Degraded {
		t.Fatalf("promotion degraded: %s (%v)", p.Reason, p.Err)
	}
	if got := qout.Entry.Tier(); got != brew.EffortFull {
		t.Fatalf("post-promotion tier %s, want full", got)
	}

	// Repeat requests at each effort hit their own cache slots: the quick
	// key now serves the promoted (tier-1) body, the full key its own.
	q2 := svc.Do(&brewsvc.Request{Config: qcfg, Fn: w.Apply, Args: qargs})
	if !q2.CacheHit || q2.Entry != qout.Entry {
		t.Fatalf("quick repeat: cacheHit=%v entry match=%v", q2.CacheHit, q2.Entry == qout.Entry)
	}
	f2 := svc.Do(&brewsvc.Request{Config: fcfg, Fn: w.Apply, Args: fargs})
	if !f2.CacheHit || f2.Entry != fout.Entry {
		t.Fatalf("full repeat: cacheHit=%v entry match=%v", f2.CacheHit, f2.Entry == fout.Entry)
	}
	// 2 demand traces + 1 background promotion re-rewrite; the repeat
	// requests added none.
	if st := svc.Stats(); st.Traces != 3 {
		t.Fatalf("traces = %d after repeats, want 3", st.Traces)
	}
}
