//go:build !brewsvc_lockstat

package brewsvc

import "sync"

// Default build: svcMutex is a plain sync.Mutex and lock-acquisition
// counting is unavailable. See lockstat.go (brewsvc_lockstat tag) for the
// counted variant behind the E10f zero-lock acceptance bar.
type svcMutex = sync.Mutex

// LockAcquisitions reports that lock counting is disabled in this build.
// Build with -tags brewsvc_lockstat to enable it.
func LockAcquisitions() (uint64, bool) { return 0, false }
