package brew_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/brew"
	"repro/internal/vm"
)

// The rewriter's central invariant, checked on randomly generated
// programs: for any function that rewrites successfully and any arguments
// consistent with the declared known values, the rewritten function
// computes exactly what the original computes.
//
// Programs are straight-line ALU code over r1..r5 with forward-only
// conditional branches (guaranteeing termination) and a result that mixes
// all registers into r0.

type progGen struct {
	r  *rand.Rand
	sb strings.Builder
	n  int // emitted ops
}

func genProgram(r *rand.Rand) string {
	g := &progGen{r: r}
	g.sb.WriteString("f:\n")
	nOps := 6 + r.Intn(20)
	pendingLabels := []string{}
	for i := 0; i < nOps; i++ {
		// Close a pending branch target occasionally.
		if len(pendingLabels) > 0 && r.Intn(3) == 0 {
			g.sb.WriteString(pendingLabels[0] + ":\n")
			pendingLabels = pendingLabels[1:]
		}
		g.op(i)
		// Open a forward branch occasionally.
		if r.Intn(6) == 0 && len(pendingLabels) < 2 {
			lbl := fmt.Sprintf("l%d_%d", i, r.Intn(1000))
			cc := []string{"eq", "ne", "lt", "ge", "b", "ae"}[r.Intn(6)]
			fmt.Fprintf(&g.sb, "    cmp r%d, r%d\n", 1+r.Intn(5), 1+r.Intn(5))
			fmt.Fprintf(&g.sb, "    j%s %s\n", cc, lbl)
			pendingLabels = append(pendingLabels, lbl)
		}
	}
	for _, l := range pendingLabels {
		g.sb.WriteString(l + ":\n")
	}
	// Fold every register into the result.
	g.sb.WriteString("    mov r0, r1\n")
	for i := 2; i <= 5; i++ {
		fmt.Fprintf(&g.sb, "    xor r0, r%d\n", i)
	}
	g.sb.WriteString("    ret\n")
	return g.sb.String()
}

func (g *progGen) op(i int) {
	r := g.r
	dst := 1 + r.Intn(5)
	src := 1 + r.Intn(5)
	switch r.Intn(12) {
	case 0:
		fmt.Fprintf(&g.sb, "    mov r%d, r%d\n", dst, src)
	case 1:
		fmt.Fprintf(&g.sb, "    movi r%d, %d\n", dst, r.Int63n(1<<20)-1<<19)
	case 2:
		fmt.Fprintf(&g.sb, "    add r%d, r%d\n", dst, src)
	case 3:
		fmt.Fprintf(&g.sb, "    sub r%d, r%d\n", dst, src)
	case 4:
		fmt.Fprintf(&g.sb, "    imul r%d, r%d\n", dst, src)
	case 5:
		fmt.Fprintf(&g.sb, "    and r%d, r%d\n", dst, src)
	case 6:
		fmt.Fprintf(&g.sb, "    or r%d, r%d\n", dst, src)
	case 7:
		fmt.Fprintf(&g.sb, "    xor r%d, r%d\n", dst, src)
	case 8:
		fmt.Fprintf(&g.sb, "    addi r%d, %d\n", dst, r.Int63n(1<<16)-1<<15)
	case 9:
		fmt.Fprintf(&g.sb, "    shli r%d, %d\n", dst, r.Intn(8))
	case 10:
		fmt.Fprintf(&g.sb, "    sari r%d, %d\n", dst, r.Intn(8))
	case 11:
		fmt.Fprintf(&g.sb, "    neg r%d\n", dst)
	}
}

func TestFuzzEquivalence(t *testing.T) {
	seeds := 200
	if testing.Short() {
		seeds = 40
	}
	for seed := 0; seed < seeds; seed++ {
		r := rand.New(rand.NewSource(int64(seed)))
		src := genProgram(r)
		m := vm.MustNew()
		im, err := asm.Load(m, src)
		if err != nil {
			t.Fatalf("seed %d: assemble: %v\n%s", seed, err, src)
		}
		fn := im.MustEntry("f")

		// Random subset of parameters declared known.
		cfg := brew.NewConfig()
		fixed := make([]uint64, 5)
		known := make([]bool, 5)
		for p := 0; p < 5; p++ {
			if r.Intn(3) == 0 {
				known[p] = true
				fixed[p] = r.Uint64() >> uint(r.Intn(60))
				cfg.SetParam(p+1, brew.ParamKnown)
			}
		}
		res, err := brew.Rewrite(m, cfg, fn, fixed, nil)
		if err != nil {
			t.Fatalf("seed %d: rewrite: %v\n%s", seed, err, src)
		}

		for trial := 0; trial < 20; trial++ {
			args := make([]uint64, 5)
			for p := 0; p < 5; p++ {
				if known[p] {
					args[p] = fixed[p]
				} else {
					args[p] = r.Uint64() >> uint(r.Intn(60))
				}
			}
			want, err1 := m.Call(fn, args...)
			got, err2 := m.Call(res.Addr, args...)
			if err1 != nil || err2 != nil {
				t.Fatalf("seed %d: exec: %v / %v\n%s", seed, err1, err2, src)
			}
			if got != want {
				t.Fatalf("seed %d trial %d: original %d, rewritten %d\nargs=%v known=%v\n%s\nlisting:\n%s",
					seed, trial, want, got, args, known, src, res.Listing())
			}
		}
	}
}

// TestFuzzEquivalenceUnrollModes repeats the fuzz with the unrolling
// controls active, exercising variant thresholds and migrations.
func TestFuzzEquivalenceUnrollModes(t *testing.T) {
	seeds := 100
	if testing.Short() {
		seeds = 20
	}
	for seed := 0; seed < seeds; seed++ {
		r := rand.New(rand.NewSource(int64(1_000_000 + seed)))
		src := genProgram(r)
		m := vm.MustNew()
		im, err := asm.Load(m, src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		fn := im.MustEntry("f")
		cfg := brew.NewConfig()
		cfg.MaxVariantsPerAddr = 1 + r.Intn(4)
		cfg.SetFuncOpts(fn, brew.FuncOpts{
			BranchesUnknown: r.Intn(2) == 0,
			ResultsUnknown:  r.Intn(2) == 0,
		})
		var fixed []uint64
		if r.Intn(2) == 0 {
			cfg.SetParam(1, brew.ParamKnown)
			fixed = []uint64{r.Uint64() >> 40}
		}
		res, err := brew.Rewrite(m, cfg, fn, fixed, nil)
		if err != nil {
			t.Fatalf("seed %d: rewrite: %v\n%s", seed, err, src)
		}
		for trial := 0; trial < 10; trial++ {
			args := make([]uint64, 5)
			for p := range args {
				args[p] = r.Uint64() >> uint(r.Intn(60))
			}
			if len(fixed) > 0 {
				args[0] = fixed[0]
			}
			want, err1 := m.Call(fn, args...)
			got, err2 := m.Call(res.Addr, args...)
			if err1 != nil || err2 != nil {
				t.Fatalf("seed %d: exec: %v / %v", seed, err1, err2)
			}
			if got != want {
				t.Fatalf("seed %d trial %d: original %d, rewritten %d\n%s\nlisting:\n%s",
					seed, trial, want, got, src, res.Listing())
			}
		}
	}
}

// TestFuzzMemoryEquivalence exercises the memory overlay: random programs
// with loads and stores into a scratch buffer, optionally declared known.
// Memory is snapshotted and compared after original and rewritten runs.
func TestFuzzMemoryEquivalence(t *testing.T) {
	seeds := 120
	if testing.Short() {
		seeds = 30
	}
	const bufWords = 8
	for seed := 0; seed < seeds; seed++ {
		r := rand.New(rand.NewSource(int64(9_000_000 + seed)))
		var sb strings.Builder
		sb.WriteString("f:\n") // r1 = buffer base (param), r2..r4 scratch
		n := 5 + r.Intn(14)
		for i := 0; i < n; i++ {
			d := 2 + r.Intn(3)
			off := 8 * r.Intn(bufWords)
			switch r.Intn(6) {
			case 0:
				fmt.Fprintf(&sb, "    load r%d, [r1+%d]\n", d, off)
			case 1:
				fmt.Fprintf(&sb, "    store [r1+%d], r%d\n", off, d)
			case 2:
				fmt.Fprintf(&sb, "    movi r%d, %d\n", d, r.Intn(1000))
			case 3:
				fmt.Fprintf(&sb, "    add r%d, r%d\n", d, 2+r.Intn(3))
			case 4:
				fmt.Fprintf(&sb, "    imuli r%d, %d\n", d, 1+r.Intn(5))
			case 5:
				fmt.Fprintf(&sb, "    storeb [r1+%d], r%d\n", off, d)
			}
		}
		sb.WriteString("    mov r0, r2\n    add r0, r3\n    add r0, r4\n    ret\n")
		src := sb.String()

		m := vm.MustNew()
		im, err := asm.Load(m, src)
		if err != nil {
			t.Fatal(err)
		}
		fn := im.MustEntry("f")
		buf, err := m.AllocHeap(bufWords * 8)
		if err != nil {
			t.Fatal(err)
		}
		initial := make([]int64, bufWords)
		for i := range initial {
			initial[i] = int64(r.Intn(500))
		}
		reset := func() {
			if err := m.WriteI64Slice(buf, initial); err != nil {
				t.Fatal(err)
			}
		}

		cfg := brew.NewConfig().SetParam(1, brew.ParamKnown)
		if r.Intn(2) == 0 {
			// Declaring the buffer known is only sound when its contents
			// are what they were at rewrite time; reset() restores that
			// before every run.
			cfg.SetParamPtrToKnown(1, bufWords*8)
		}
		reset()
		res, err := brew.Rewrite(m, cfg, fn, []uint64{buf}, nil)
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}

		snapshot := func() []float64 {
			out := make([]float64, bufWords)
			for i := range out {
				v, _ := m.Mem.Read64(buf + uint64(8*i))
				out[i] = float64(int64(v))
			}
			return out
		}
		for trial := 0; trial < 6; trial++ {
			// r2..r4 are live inputs of the generated program.
			a2, a3, a4 := uint64(r.Intn(900)), uint64(r.Intn(900)), uint64(r.Intn(900))
			reset()
			want, err1 := m.Call(fn, buf, a2, a3, a4)
			memWant := snapshot()
			reset()
			got, err2 := m.Call(res.Addr, buf, a2, a3, a4)
			memGot := snapshot()
			if err1 != nil || err2 != nil {
				t.Fatalf("seed %d: %v / %v", seed, err1, err2)
			}
			if got != want {
				t.Fatalf("seed %d: result %d != %d\n%s\n%s", seed, got, want, src, res.Listing())
			}
			for i := range memWant {
				if memWant[i] != memGot[i] {
					t.Fatalf("seed %d: buf[%d] %g != %g\n%s\n%s", seed, i, memGot[i], memWant[i], src, res.Listing())
				}
			}
		}
	}
}
