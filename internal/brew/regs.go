package brew

import "repro/internal/isa"

// regRef names a register in a specific file.
type regRef struct {
	file isa.RegFile
	reg  isa.Reg
}

// readsDstALU reports whether an integer two-operand opcode reads its
// destination.
func readsDstALU(op isa.Opcode) bool {
	return op != isa.MOV && op != isa.MOVI
}

// insUses returns the registers an emitted instruction reads.
func insUses(ins isa.Instr) []regRef {
	var out []regRef
	add := func(file isa.RegFile, r isa.Reg) {
		out = append(out, regRef{file, r})
	}
	addMem := func(m isa.MemRef) {
		if m.HasBase() {
			add(isa.RFInt, m.Base)
		}
		if m.HasIndex() {
			add(isa.RFInt, m.Index)
		}
	}
	info := isa.Info(ins.Op)
	switch info.Format {
	case isa.FNone:
		// RET reads the stack; handled as a barrier by passes.
	case isa.FR:
		switch ins.Op {
		case isa.PUSH, isa.JMPR, isa.CALLR:
			add(isa.RFInt, ins.Dst.Reg)
		case isa.NEG, isa.NOT:
			add(isa.RFInt, ins.Dst.Reg)
		case isa.FNEG:
			add(isa.RFFloat, ins.Dst.Reg)
		case isa.POP:
		}
		if ins.Op == isa.PUSH || ins.Op == isa.POP {
			add(isa.RFInt, isa.SP)
		}
	case isa.FRR:
		add(info.SrcFile, ins.Src.Reg)
		if info.DstFile == isa.RFInt && readsDstALU(ins.Op) {
			add(info.DstFile, ins.Dst.Reg)
		}
		if info.DstFile == isa.RFFloat && ins.Op != isa.FMOV && ins.Op != isa.FSQRT &&
			ins.Op != isa.CVTIF && ins.Op != isa.FMOVIF {
			add(info.DstFile, ins.Dst.Reg)
		}
		if info.DstFile == isa.RFVec && ins.Op != isa.VBCAST {
			add(info.DstFile, ins.Dst.Reg)
		}
	case isa.FRI:
		if readsDstALU(ins.Op) && ins.Op != isa.FMOVI {
			add(info.DstFile, ins.Dst.Reg)
		}
	case isa.FRM:
		addMem(ins.Src.Mem)
	case isa.FMR:
		add(info.DstFile, ins.Src.Reg)
		addMem(ins.Dst.Mem)
	case isa.FRel, isa.FCC, isa.FCCR:
	}
	return out
}

// insDefs returns the registers an emitted instruction writes.
func insDefs(ins isa.Instr) []regRef {
	info := isa.Info(ins.Op)
	switch ins.Op {
	case isa.CMP, isa.CMPI, isa.TEST, isa.FCMP, isa.STORE, isa.STOREB,
		isa.FSTORE, isa.VSTORE, isa.JMP, isa.JMPR, isa.JCC, isa.RET,
		isa.NOP, isa.HALT, isa.BRK:
		return nil
	case isa.PUSH:
		return []regRef{{isa.RFInt, isa.SP}}
	case isa.POP:
		return []regRef{{info.DstFile, ins.Dst.Reg}, {isa.RFInt, isa.SP}}
	case isa.CALL, isa.CALLR:
		// Calls clobber all caller-saved registers; passes treat them as
		// barriers instead of enumerating defs.
		return nil
	}
	switch info.Format {
	case isa.FR, isa.FRR, isa.FRI, isa.FRM, isa.FCCR:
		return []regRef{{info.DstFile, ins.Dst.Reg}}
	}
	return nil
}

// isBarrier reports whether an instruction must not be reordered or
// analyzed across by local passes (calls, returns, indirect jumps).
func isBarrier(op isa.Opcode) bool {
	switch op {
	case isa.CALL, isa.CALLR, isa.RET, isa.JMP, isa.JMPR, isa.JCC, isa.HALT, isa.BRK:
		return true
	}
	return false
}
