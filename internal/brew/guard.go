package brew

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/telemetry"
	"repro/internal/vm"
)

// ParamGuard is one equality condition on an integer parameter (1-based,
// ABI register).
type ParamGuard struct {
	Param int
	Value uint64
}

// GuardedResult describes a guarded specialization.
type GuardedResult struct {
	// Addr is the dispatcher entry: it checks the guards and jumps to the
	// specialized version on match, else to the original function.
	Addr uint64
	// Specialized is the unconditional specialized entry.
	Specialized uint64
	// Rewrite carries the underlying specialization result.
	Rewrite *Result
	// Guards are the equality conditions the dispatcher checks.
	Guards []ParamGuard
}

// Matches reports whether args satisfy every guard, i.e. whether the
// dispatcher would take the specialized path.
func (g *GuardedResult) Matches(args []uint64) bool {
	for _, gd := range g.Guards {
		if gd.Param > len(args) || args[gd.Param-1] != gd.Value {
			return false
		}
	}
	return true
}

// Call invokes the dispatcher and records guard hit/miss telemetry, the
// observability hook for the paper's "check for the parameter actually
// being 42" dispatch.
func (g *GuardedResult) Call(m *vm.Machine, args ...uint64) (uint64, error) {
	if telemetry.Enabled() {
		if g.Matches(args) {
			mGuardHits.Inc()
		} else {
			mGuardMisses.Inc()
		}
	}
	return m.Call(g.Addr, args...)
}

// RewriteGuarded implements the paper's profile-driven specialization
// (Section III.D): "it may be observed that a parameter to a function
// often is 42. In this case, a specific variant can be generated which is
// called after a check for the parameter actually being 42. Otherwise, the
// original function should be executed."
//
// The cfg is augmented with ParamKnown for each guarded parameter; args
// must carry the guard values in the corresponding positions. The returned
// dispatcher is a drop-in replacement for fn.
func RewriteGuarded(m *vm.Machine, cfg *Config, fn uint64, guards []ParamGuard, args []uint64, fargs []float64) (*GuardedResult, error) {
	if len(guards) == 0 {
		return nil, fmt.Errorf("%w: no guards", ErrBadConfig)
	}
	nargs := append([]uint64(nil), args...)
	for _, g := range guards {
		if g.Param < 1 || g.Param > len(isa.IntArgRegs) {
			return nil, fmt.Errorf("%w: guard on parameter %d", ErrBadConfig, g.Param)
		}
		cfg.SetParam(g.Param, ParamKnown)
		for len(nargs) < g.Param {
			nargs = append(nargs, 0)
		}
		nargs[g.Param-1] = g.Value
	}
	res, err := Rewrite(m, cfg, fn, nargs, fargs)
	if err != nil {
		return nil, err
	}

	// Dispatcher: cmpi argN, value; jne original; ... jmp specialized.
	var ins []isa.Instr
	for _, g := range guards {
		ins = append(ins,
			isa.MakeRI(isa.CMPI, isa.IntArgRegs[g.Param-1], int64(g.Value)),
			isa.MakeJCC(isa.CondNE, fn),
		)
	}
	ins = append(ins, isa.MakeRel(isa.JMP, res.Addr))

	size := 0
	for _, in := range ins {
		n, err := isa.EncodedLen(in)
		if err != nil {
			return nil, err
		}
		size += n
	}
	addr, err := m.JITAlloc.Alloc(uint64(size))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCodeBufferFull, err)
	}
	var code []byte
	for _, in := range ins {
		in.Addr = addr + uint64(len(code))
		code, err = isa.AppendEncode(code, in)
		if err != nil {
			return nil, err
		}
	}
	if err := m.WriteJIT(addr, code); err != nil {
		return nil, err
	}
	return &GuardedResult{
		Addr:        addr,
		Specialized: res.Addr,
		Rewrite:     res,
		Guards:      append([]ParamGuard(nil), guards...),
	}, nil
}
