package brew

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/telemetry"
	"repro/internal/vm"
)

// ParamGuard is one equality condition on an integer parameter (1-based,
// ABI register).
type ParamGuard struct {
	Param int
	Value uint64
}

// GuardedResult describes a guarded specialization.
type GuardedResult struct {
	// Addr is the dispatcher entry: it checks the guards and jumps to the
	// specialized version on match, else to the original function.
	Addr uint64
	// Specialized is the unconditional specialized entry.
	Specialized uint64
	// Rewrite carries the underlying specialization result.
	Rewrite *Result
	// Guards are the equality conditions the dispatcher checks.
	Guards []ParamGuard
	// DispatchSize is the dispatcher code size in bytes (the owner of the
	// JIT allocation at Addr needs it for accounting).
	DispatchSize int

	// Guard accounting is unconditional (cheap atomics) so the adaptive
	// deoptimization policy (internal/specmgr: deopt after N consecutive
	// misses) works with telemetry disabled; only the telemetry
	// publication is gated on Enabled.
	hits    atomic.Uint64
	misses  atomic.Uint64
	mStreak atomic.Uint64
}

// Matches reports whether args satisfy every guard, i.e. whether the
// dispatcher would take the specialized path.
func (g *GuardedResult) Matches(args []uint64) bool {
	for _, gd := range g.Guards {
		if gd.Param > len(args) || args[gd.Param-1] != gd.Value {
			return false
		}
	}
	return true
}

// Hits returns the number of observed guard-matching calls.
func (g *GuardedResult) Hits() uint64 { return g.hits.Load() }

// Misses returns the number of observed guard-missing calls.
func (g *GuardedResult) Misses() uint64 { return g.misses.Load() }

// MissStreak returns the current run of consecutive guard misses; a hit
// resets it. The deopt policy reads this.
func (g *GuardedResult) MissStreak() uint64 { return g.mStreak.Load() }

// Note records one dispatch outcome observed by an external dispatcher:
// hosts that route calls through their own inline-cache code (e.g. the
// specmgr variant chain) instead of the built-in dispatcher at Addr call
// Note to keep the hit/miss/streak accounting — and through it the
// guard-miss-storm deopt policy — working.
func (g *GuardedResult) Note(hit bool) { g.note(hit) }

// note records one dispatch outcome.
func (g *GuardedResult) note(hit bool) {
	if hit {
		g.hits.Add(1)
		g.mStreak.Store(0)
	} else {
		g.misses.Add(1)
		g.mStreak.Add(1)
	}
	if telemetry.Enabled() {
		if hit {
			mGuardHits.Inc()
		} else {
			mGuardMisses.Inc()
		}
	}
}

// Call invokes the dispatcher and records guard hit/miss accounting, the
// observability hook for the paper's "check for the parameter actually
// being 42" dispatch.
func (g *GuardedResult) Call(m *vm.Machine, args ...uint64) (uint64, error) {
	g.note(g.Matches(args))
	return m.Call(g.Addr, args...)
}

// CallFloat is Call for kernels returning a floating-point result.
func (g *GuardedResult) CallFloat(m *vm.Machine, intArgs []uint64, fArgs []float64) (float64, error) {
	g.note(g.Matches(intArgs))
	return m.CallFloat(g.Addr, intArgs, fArgs)
}

// RewriteGuarded implements the paper's profile-driven specialization
// (Section III.D): "it may be observed that a parameter to a function
// often is 42. In this case, a specific variant can be generated which is
// called after a check for the parameter actually being 42. Otherwise, the
// original function should be executed."
//
// The guarded parameters are declared ParamKnown on an internal clone of
// cfg with the guard values as the rewrite-time setting; the returned
// dispatcher is a drop-in replacement for fn.
//
// Deprecated: use Do with Request.Guards.
func RewriteGuarded(m *vm.Machine, cfg *Config, fn uint64, guards []ParamGuard, args []uint64, fargs []float64) (*GuardedResult, error) {
	if len(guards) == 0 {
		return nil, fmt.Errorf("%w: no guards", ErrBadConfig)
	}
	out, err := Do(m, &Request{Config: cfg, Fn: fn, Args: args, FArgs: fargs, Guards: guards})
	if err != nil {
		return nil, err
	}
	return out.Guarded, nil
}

// guardedRewrite builds a guarded specialization: the specialized body for
// the guard values plus a dispatcher checking the guards and falling back
// to the original function. It runs under Do's recovery barrier and owns
// cfg (a clone), which it augments with ParamKnown per guarded parameter.
// On any failure after the specialized body was generated, its code-buffer
// space is released again — a failing dispatcher install must not leak JIT
// memory.
func guardedRewrite(m *vm.Machine, cfg *Config, fn uint64, guards []ParamGuard, args []uint64, fargs []float64) (*GuardedResult, error) {
	nargs := append([]uint64(nil), args...)
	for _, g := range guards {
		if g.Param < 1 || g.Param > len(isa.IntArgRegs) {
			return nil, fmt.Errorf("%w: guard on parameter %d", ErrBadConfig, g.Param)
		}
		cfg.SetParam(g.Param, ParamKnown)
		for len(nargs) < g.Param {
			nargs = append(nargs, 0)
		}
		nargs[g.Param-1] = g.Value
	}
	res, err := rewrite(m, cfg, fn, nargs, fargs)
	if err != nil {
		return nil, err
	}
	// From here on the specialized body at res.Addr is allocated; give it
	// back on every subsequent failure path.
	installed := false
	defer func() {
		if !installed {
			_ = m.FreeJIT(res.Addr)
		}
	}()

	if err := injectAt(cfg, SiteDispatch); err != nil {
		return nil, err
	}

	// Dispatcher: cmpi argN, value; jne original; ... jmp specialized.
	var ins []isa.Instr
	for _, g := range guards {
		ins = append(ins,
			isa.MakeRI(isa.CMPI, isa.IntArgRegs[g.Param-1], int64(g.Value)),
			isa.MakeJCC(isa.CondNE, fn),
		)
	}
	ins = append(ins, isa.MakeRel(isa.JMP, res.Addr))

	// Size probe: encoded lengths are position-independent (branches are
	// fixed-size rel32), so the final relocated code has the same size.
	size := 0
	for _, in := range ins {
		n, err := isa.EncodedLen(in)
		if err != nil {
			return nil, err
		}
		size += n
	}
	// InstallJIT serializes allocation+installation with concurrent
	// rewrites and releases the reservation itself when encoding fails.
	addr, err := m.InstallJIT(size, func(at uint64) ([]byte, error) {
		var code []byte
		for _, in := range ins {
			in.Addr = at + uint64(len(code))
			var eerr error
			code, eerr = isa.AppendEncode(code, in)
			if eerr != nil {
				return nil, eerr
			}
		}
		return code, nil
	})
	if err != nil {
		if errors.Is(err, mem.ErrNoSpace) {
			return nil, fmt.Errorf("%w: %v", ErrCodeBufferFull, err)
		}
		return nil, err
	}
	installed = true
	return &GuardedResult{
		Addr:         addr,
		Specialized:  res.Addr,
		Rewrite:      res,
		Guards:       append([]ParamGuard(nil), guards...),
		DispatchSize: size,
	}, nil
}
