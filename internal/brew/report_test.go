package brew_test

import (
	"bytes"
	"testing"

	"repro/internal/brew"
	"repro/internal/minc"
	"repro/internal/stencil"
	"repro/internal/telemetry"
	"repro/internal/vm"
)

func rewriteApply(t *testing.T) *brew.Result {
	t.Helper()
	w, err := stencil.New(vm.MustNew(), 32, 24)
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.RewriteApply()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestReportClassTotals checks the accounting invariant on the E1c rewrite:
// every traced instruction lands in exactly one class, at the report level,
// per block and per PC.
func TestReportClassTotals(t *testing.T) {
	rep := rewriteApply(t).Report
	if rep == nil {
		t.Fatal("Result.Report is nil")
	}
	if rep.TracedInstrs == 0 || rep.Elided == 0 {
		t.Fatalf("degenerate report: traced=%d elided=%d", rep.TracedInstrs, rep.Elided)
	}
	if got := rep.ClassTotal(); got != rep.TracedInstrs {
		t.Errorf("kept+elided+folded+inlined = %d, want traced = %d", got, rep.TracedInstrs)
	}
	var traced, classed, emitted int
	for _, b := range rep.Blocks {
		traced += b.Traced
		classed += b.Kept + b.Elided + b.Folded + b.Inlined
		emitted += b.Emitted
		if b.Traced != b.Kept+b.Elided+b.Folded+b.Inlined {
			t.Errorf("block B%d: traced=%d but classes sum to %d", b.ID, b.Traced,
				b.Kept+b.Elided+b.Folded+b.Inlined)
		}
	}
	if traced != rep.TracedInstrs {
		t.Errorf("block traced sum = %d, want %d", traced, rep.TracedInstrs)
	}
	if emitted != rep.EmittedFinal {
		t.Errorf("block emitted sum = %d, want EmittedFinal = %d", emitted, rep.EmittedFinal)
	}
	var count int
	for _, d := range rep.Decisions {
		if d.Count != d.Kept+d.Elided+d.Folded+d.Inlined {
			t.Errorf("decision 0x%x: count=%d but classes sum to %d", d.PC, d.Count,
				d.Kept+d.Elided+d.Folded+d.Inlined)
		}
		count += d.Count
	}
	if count != rep.TracedInstrs {
		t.Errorf("decision count sum = %d, want %d", count, rep.TracedInstrs)
	}
}

// TestReportDeterminism renders the same rewrite from identical fresh
// machines and requires byte-identical text and JSON output (guards the
// map-iteration-order bug class).
func TestReportDeterminism(t *testing.T) {
	render := func() ([]byte, []byte) {
		rep := rewriteApply(t).Report
		j, err := rep.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return []byte(rep.Text()), j
	}
	txt0, json0 := render()
	for i := 0; i < 3; i++ {
		txt, js := render()
		if !bytes.Equal(txt, txt0) {
			t.Fatalf("run %d: text rendering differs", i+1)
		}
		if !bytes.Equal(js, json0) {
			t.Fatalf("run %d: JSON rendering differs", i+1)
		}
	}
}

// TestGuardedCallTelemetry checks GuardedResult.Matches/Call and the guard
// hit/miss counters.
func TestGuardedCallTelemetry(t *testing.T) {
	telemetry.Default.Reset()
	telemetry.Enable()
	t.Cleanup(telemetry.Disable)

	m := vm.MustNew()
	l, err := minc.CompileAndLink(m, `long f(long x, long k) { return x * k + 1; }`, nil)
	if err != nil {
		t.Fatal(err)
	}
	fn, err := l.FuncAddr("f")
	if err != nil {
		t.Fatal(err)
	}
	g, err := brew.RewriteGuarded(m, brew.NewConfig(), fn,
		[]brew.ParamGuard{{Param: 2, Value: 3}}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Matches([]uint64{5, 3}) || g.Matches([]uint64{5, 4}) || g.Matches([]uint64{5}) {
		t.Error("Matches misjudges guard satisfaction")
	}
	if v, err := g.Call(m, 5, 3); err != nil || v != 16 {
		t.Fatalf("hot path: got %d, %v", v, err)
	}
	if v, err := g.Call(m, 5, 4); err != nil || v != 21 {
		t.Fatalf("cold path: got %d, %v", v, err)
	}
	var hits, misses uint64
	for _, mt := range telemetry.Default.Snapshot() {
		switch mt.Name {
		case "brew.guard_hits":
			hits = mt.Value
		case "brew.guard_misses":
			misses = mt.Value
		}
	}
	if hits != 1 || misses != 1 {
		t.Errorf("guard hits=%d misses=%d, want 1/1", hits, misses)
	}
}
