package brew

import (
	"fmt"

	"repro/internal/vm"
)

// Mode selects Do's failure semantics.
type Mode uint8

const (
	// ModeSpecialize fails the request on any pipeline error; the caller
	// keeps using the original function (the legacy Rewrite contract).
	ModeSpecialize Mode = iota
	// ModeDegrade never fails: every pipeline error — budget or buffer
	// exhaustion, unsupported constructs, injected faults, internal panics —
	// converts into a degraded Outcome addressing the original function,
	// with the cause wrapped in ErrDegraded (the legacy RewriteOrDegrade
	// contract applied uniformly, including to guarded requests).
	ModeDegrade
)

// Request is one specialization request: the single input shape of the
// unified rewrite entry point Do. The legacy entry points (Rewrite,
// RewriteBatch, RewriteGuarded, RewriteOrDegrade) are thin wrappers over
// it.
type Request struct {
	// Config declares the rewrite assumptions (NewConfig). Do never
	// mutates it: guarded requests operate on an internal Clone, so a
	// Request is safe to re-submit and to fingerprint for caching.
	Config *Config
	// Fn is the address of the function to specialize.
	Fn uint64
	// Args and FArgs supply the emulated call's parameter setting; only
	// parameters declared known in Config are consulted.
	Args  []uint64
	FArgs []float64
	// Guards, when non-empty, request a guarded specialization: the
	// produced entry is a dispatcher that checks the parameter equalities
	// and falls back to the original function on mismatch (Section III.D).
	// Guarded parameters are implicitly declared ParamKnown with the guard
	// values as the rewrite-time setting.
	Guards []ParamGuard
	// Mode selects the failure semantics (see Mode).
	Mode Mode
}

// Outcome is the single result shape of Do: a successful specialization
// (Result), a guarded dispatcher (Guarded non-nil), or a degraded fallback
// to the original function (Degraded with Reason).
type Outcome struct {
	// Addr is the address to call: the specialized body, the guard
	// dispatcher, or — degraded — the original function. It is always a
	// drop-in replacement for the requested function.
	Addr uint64
	// Result carries the rewrite result. For degraded outcomes it
	// addresses the original function (Result.Degraded set).
	Result *Result
	// Guarded is the dispatcher description for guarded requests (nil for
	// plain or degraded outcomes).
	Guarded *GuardedResult
	// Degraded marks a ModeDegrade fallback; Reason holds the closed-
	// vocabulary degradation reason (degrade.go).
	Degraded bool
	Reason   string
}

// Do is the unified rewrite entry point: one call shape for plain,
// guarded, and never-fails specialization requests. It subsumes the four
// legacy entry points so every caller shares one pipeline, one failure
// model, and one cacheable request shape (Config.Fingerprint plus the
// known-argument values identify the specialization).
//
// An internal rewriter panic is recovered and reported as ErrRewritePanic
// (or converted to a degraded outcome under ModeDegrade) — it can never
// take the host down. On error under ModeSpecialize the outcome is nil and
// the original function remains valid.
func Do(m *vm.Machine, req *Request) (*Outcome, error) {
	if req == nil {
		return nil, fmt.Errorf("%w: nil request", ErrBadConfig)
	}
	var out *Outcome
	var err error
	if req.Config == nil {
		err = fmt.Errorf("%w: nil configuration", ErrBadConfig)
	} else {
		out, err = attempt(m, req)
	}
	if err == nil {
		return out, nil
	}
	if req.Mode != ModeDegrade {
		return nil, err
	}
	reason := DegradeReason(err)
	publishDegradeTelemetry(reason)
	return &Outcome{
		Addr:     req.Fn,
		Result:   &Result{Addr: req.Fn, Degraded: true},
		Degraded: true,
		Reason:   reason,
	}, fmt.Errorf("%w (%s): %w", ErrDegraded, reason, err)
}

// attempt runs one pipeline pass under the panic-recovery barrier.
func attempt(m *vm.Machine, req *Request) (out *Outcome, err error) {
	defer func() {
		if p := recover(); p != nil {
			out, err = nil, fmt.Errorf("%w: %v", ErrRewritePanic, p)
		}
	}()
	if len(req.Guards) > 0 {
		// The guard augmentation (ParamKnown per guarded parameter) works
		// on a clone so the caller's Config stays untouched.
		gr, gerr := guardedRewrite(m, req.Config.Clone(), req.Fn, req.Guards, req.Args, req.FArgs)
		if gerr != nil {
			return nil, gerr
		}
		return &Outcome{Addr: gr.Addr, Result: gr.Rewrite, Guarded: gr}, nil
	}
	res, rerr := rewrite(m, req.Config, req.Fn, req.Args, req.FArgs)
	if rerr != nil {
		return nil, rerr
	}
	return &Outcome{Addr: res.Addr, Result: res}, nil
}
