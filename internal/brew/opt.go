package brew

import "repro/internal/isa"

// optimize runs local passes over the captured blocks. The paper's
// prototype ships without optimization passes ("there currently are no
// optimization passes implemented") but names the needed ones explicitly:
// removing redundant loads (Section V.B), avoiding register spills to the
// stack "when free register space becomes available due to specialization"
// (Section IV), and register renaming (Section VIII). The passes here
// implement exactly that profile:
//
//   - store-to-load forwarding and dead store elimination on the private
//     frame (spill traffic left behind by folding)
//   - copy-dance coalescing (two-address copy churn)
//   - liveness-based dead code elimination (ABI-dead registers at return)
//   - duplicate load elimination
//   - dead callee-saved save/restore removal with frame shrinking
//
// frameSafe is true when every emitted stack access was precisely
// attributed and no frame address escaped, which licenses treating the
// private frame (deltas below the entry SP) as invisible memory.
//
// rep, when non-nil, records each pass run and how many instructions it
// removed (negative for passes that add code, e.g. vectorize prologues).
func optimize(blocks []*eblock, frameSafe, vectorizeOpt bool, rep *reportBuilder) {
	count := func() int {
		n := 0
		for _, b := range blocks {
			n += len(b.ins)
		}
		return n
	}
	run := func(name string, f func()) {
		before := count()
		f()
		if rep != nil {
			rep.pass(name, before, before-count())
		}
	}
	// The core local passes run to a fixpoint: stop after the first full
	// sweep that removes nothing, so already-clean code pays for exactly
	// one verification sweep instead of a fixed pass budget. maxOptSweeps
	// bounds pathological ping-ponging; in practice the loop converges
	// within a few sweeps.
	const maxOptSweeps = 8
	for sweep := 0; sweep < maxOptSweeps; sweep++ {
		start := count()
		if frameSafe {
			run("forwardFrameStores", func() {
				for _, b := range blocks {
					forwardFrameStores(b)
				}
			})
			run("deadFrameStores", func() { deadFrameStores(blocks) })
		}
		run("copyDance", func() {
			for _, b := range blocks {
				copyDance(b)
			}
		})
		run("addrFold", func() {
			for _, b := range blocks {
				addrFold(b)
			}
		})
		run("deadCode", func() { deadCodeGlobal(blocks) })
		run("redundantLoads", func() {
			for _, b := range blocks {
				redundantLoads(b)
			}
		})
		removed := start - count()
		if rep != nil {
			rep.sweep(removed)
		}
		if removed == 0 {
			break
		}
	}
	if frameSafe {
		run("renameCalleeSaved", func() { renameCalleeSaved(blocks) })
		run("removeDeadSaves", func() { removeDeadSaves(blocks) })
		run("deadCode", func() { deadCodeGlobal(blocks) })
		run("removeDeadSaves", func() { removeDeadSaves(blocks) })
	}
	if vectorizeOpt {
		run("vectorize", func() { vectorize(blocks) })
		run("deadCode", func() { deadCodeGlobal(blocks) })
	}
}

// --- addressing-chain folding ---

// addrFold folds register copy/add chains into memory operands:
//
//	mov r8, r2 ; addi r8, C ; fload f, [r8+D]  ->  fload f, [r2+C+D]
//
// The mov/addi become dead and are removed by deadCode. A tiny local value
// numbering with generation counters keeps the rewrite sound.
func addrFold(b *eblock) {
	type expr struct {
		valid   bool
		hasBase bool
		base    isa.Reg
		baseGen int
		off     int64
	}
	var exprs [isa.NumRegs]expr
	var gen [isa.NumRegs]int
	kill := func(r isa.Reg) {
		gen[r]++
		exprs[r] = expr{}
	}
	record := func(dst isa.Reg, e expr) {
		gen[dst]++
		exprs[dst] = e
	}
	fold := func(m *isa.MemRef) {
		if !m.HasBase() || m.Base == isa.SP {
			return
		}
		e := exprs[m.Base]
		if !e.valid {
			return
		}
		nd := int64(m.Disp) + e.off
		if nd < -1<<31 || nd >= 1<<31 {
			return
		}
		if e.hasBase {
			if gen[e.base] != e.baseGen || e.base == m.Index {
				return
			}
			m.Base = e.base
			m.Disp = int32(nd)
			return
		}
		// Constant address.
		if m.HasIndex() || nd < 0 {
			return
		}
		*m = isa.Abs(int32(nd))
	}
	for i := range b.ins {
		in := &b.ins[i]
		// Fold the memory operand first (uses pre-instruction state).
		switch isa.Info(in.Op).Format {
		case isa.FRM:
			if in.Op != isa.LEA { // LEA result tracking handled below
				fold(&in.Src.Mem)
			}
		case isa.FMR:
			fold(&in.Dst.Mem)
		}
		// Update tracked expressions.
		switch in.Op {
		case isa.MOVI:
			record(in.Dst.Reg, expr{valid: true, off: in.Src.Imm})
		case isa.MOV:
			src := in.Src.Reg
			if e := exprs[src]; e.valid {
				ne := e
				if ne.hasBase && gen[ne.base] != ne.baseGen {
					ne = expr{valid: true, hasBase: true, base: src, baseGen: gen[src]}
				}
				record(in.Dst.Reg, ne)
			} else {
				record(in.Dst.Reg, expr{valid: true, hasBase: true, base: src, baseGen: gen[src]})
			}
		case isa.ADDI, isa.SUBI:
			d := in.Dst.Reg
			delta := in.Src.Imm
			if in.Op == isa.SUBI {
				delta = -delta
			}
			if e := exprs[d]; e.valid && (!e.hasBase || gen[e.base] == e.baseGen) {
				e.off += delta
				record(d, e)
			} else {
				kill(d)
			}
		default:
			for _, dreg := range insDefs(*in) {
				if dreg.file == isa.RFInt {
					kill(dreg.reg)
				}
			}
			if isBarrier(in.Op) {
				for r := range exprs {
					kill(isa.Reg(r))
				}
			}
		}
	}
}

// --- register renaming ---

// renameCalleeSaved renames callee-saved registers that generated code
// still uses to unused caller-saved registers, making their save/restore
// sequences dead (the paper's Section VIII "register renaming" next step).
// Only valid when the code contains no calls (a call would clobber the
// caller-saved replacement).
func renameCalleeSaved(blocks []*eblock) {
	for _, b := range blocks {
		for _, in := range b.ins {
			if in.Op == isa.CALL || in.Op == isa.CALLR {
				return
			}
		}
	}
	usedInt := map[isa.Reg]bool{}
	usedFloat := map[isa.Reg]bool{}
	for _, b := range blocks {
		for _, in := range b.ins {
			for _, u := range insUses(in) {
				markUsed(u, usedInt, usedFloat)
			}
			for _, d := range insDefs(in) {
				markUsed(d, usedInt, usedFloat)
			}
		}
	}
	freeFloat := func() (isa.Reg, bool) {
		for r := isa.Reg(1); r < isa.NumRegs; r++ {
			if isa.CallerSavedFloat(r) && !usedFloat[r] {
				usedFloat[r] = true
				return r, true
			}
		}
		return 0, false
	}
	freeInt := func() (isa.Reg, bool) {
		for r := isa.Reg(1); r < isa.NumRegs; r++ {
			if r != isa.SP && isa.CallerSavedInt(r) && !usedInt[r] {
				usedInt[r] = true
				return r, true
			}
		}
		return 0, false
	}

	// Float save/restore pairs: FSTORE [sp+X], fR early in the entry
	// block (before any other use of fR), FLOAD fR, [sp+X] in every RET
	// block with no later use of fR. Process one pair at a time because
	// deleting instructions shifts indices.
	entry := blocks[0]
	for {
		renamed := false
		for _, cand := range floatSaves(entry) {
			fR, disp := cand.reg, cand.disp
			restores := map[*eblock]int{}
			ok := true
			for _, b := range blocks {
				if len(b.ins) == 0 || b.ins[len(b.ins)-1].Op != isa.RET {
					continue
				}
				idx := -1
				for i, in := range b.ins {
					if in.Op == isa.FLOAD && in.Dst.Reg == fR &&
						in.Src.Mem.Base == isa.SP && !in.Src.Mem.HasIndex() && in.Src.Mem.Disp == disp {
						idx = i
					}
				}
				if idx < 0 {
					ok = false
					break
				}
				for i := idx + 1; i < len(b.ins); i++ {
					for _, u := range insUses(b.ins[i]) {
						if u == (regRef{isa.RFFloat, fR}) {
							ok = false
						}
					}
				}
				restores[b] = idx
			}
			if !ok || len(restores) == 0 {
				continue
			}
			// The body must never read the *incoming* value of fR:
			// renaming would then read garbage.
			skip := func(b *eblock, i int) bool {
				if b == entry && i == cand.idx {
					return true
				}
				ri, isR := restores[b]
				return isR && i == ri
			}
			if readsIncoming(blocks, regRef{isa.RFFloat, fR}, skip) {
				continue
			}
			nr, found := freeFloat()
			if !found {
				continue
			}
			for _, b := range blocks {
				dead := make([]bool, len(b.ins))
				for i := range b.ins {
					if skip(b, i) {
						dead[i] = true
						continue
					}
					renameFloatReg(&b.ins[i], fR, nr)
				}
				compactBlock(b, dead)
			}
			renamed = true
			break
		}
		if !renamed {
			break
		}
	}

	// Integer callee-saved registers: rename body occurrences, leaving
	// the PUSH/POP save/restore pairs for removeDeadSaves to collect.
	//
	// Only the function's own prologue pushes and epilogue pops may be
	// exempted from renaming. Inlined callees contribute further PUSH/POP
	// pairs mid-block, and body uses of the register between such a pair
	// are scratch uses protected by it: renaming them to a caller-saved
	// register (while the pair keeps saving the old one) would let the
	// scratch writes clobber the outer live value. A register with any
	// PUSH/POP occurrence outside the prologue/epilogue is therefore not
	// a rename candidate.
	var pushedOrder []isa.Reg
	start := 0
	for start < len(entry.ins) && entry.ins[start].Op == isa.CALL {
		start++
	}
	for i := start; i < len(entry.ins) && entry.ins[i].Op == isa.PUSH; i++ {
		pushedOrder = append(pushedOrder, entry.ins[i].Dst.Reg)
	}
	saveRestore := map[*eblock]map[int]bool{entry: {}}
	for i := start; i < len(entry.ins) && entry.ins[i].Op == isa.PUSH; i++ {
		saveRestore[entry][i] = true
	}
	for _, b := range blocks {
		if len(b.ins) == 0 || b.ins[len(b.ins)-1].Op != isa.RET {
			continue
		}
		end := len(b.ins) - 1
		for end > 0 && b.ins[end-1].Op == isa.CALL {
			end-- // exit-handler call between pops and RET
		}
		if saveRestore[b] == nil {
			saveRestore[b] = map[int]bool{}
		}
		for i := end - 1; i >= 0 && b.ins[i].Op == isa.POP; i-- {
			saveRestore[b][i] = true
		}
	}
	skipSaveRestore := func(b *eblock, i int) bool {
		return saveRestore[b] != nil && saveRestore[b][i]
	}
	innerPushPop := func(r isa.Reg) bool {
		for _, b := range blocks {
			for i, in := range b.ins {
				if (in.Op == isa.PUSH || in.Op == isa.POP) && in.Dst.Reg == r &&
					!skipSaveRestore(b, i) {
					return true
				}
			}
		}
		return false
	}
	for _, r := range pushedOrder {
		if !isa.CalleeSavedInt(r) || innerPushPop(r) {
			continue
		}
		if readsIncoming(blocks, regRef{isa.RFInt, r}, skipSaveRestore) {
			continue
		}
		nr, found := freeInt()
		if !found {
			continue
		}
		for _, b := range blocks {
			for i := range b.ins {
				if skipSaveRestore(b, i) {
					continue
				}
				renameIntReg(&b.ins[i], r, nr)
			}
		}
	}
}

// readsIncoming reports whether any execution path from the entry may read
// register r before writing it (ignoring instructions skip selects, such
// as save/restore pairs). Backward may-analysis over the block graph.
func readsIncoming(blocks []*eblock, r regRef, skip func(*eblock, int) bool) bool {
	// needIn[b]: executing from b's start may read r before writing it.
	needIn := make([]bool, len(blocks))
	localNeed := make([]int, len(blocks)) // 1 reads-first, -1 writes-first, 0 transparent
	for bi, b := range blocks {
	scan:
		for i, in := range b.ins {
			if skip != nil && skip(b, i) {
				continue
			}
			for _, u := range insUses(in) {
				if u == r {
					localNeed[bi] = 1
					break scan
				}
			}
			for _, d := range insDefs(in) {
				if d == r {
					localNeed[bi] = -1
					break scan
				}
			}
		}
	}
	changed := true
	for changed {
		changed = false
		for bi, b := range blocks {
			if needIn[bi] || localNeed[bi] == -1 {
				continue
			}
			v := localNeed[bi] == 1
			if !v && localNeed[bi] == 0 {
				if b.term == termFall && b.succ >= 0 {
					v = needIn[b.succ]
				}
				if b.term == termJcc {
					v = (b.succ >= 0 && needIn[b.succ]) || (b.jcc >= 0 && needIn[b.jcc])
				}
			}
			if v && !needIn[bi] {
				needIn[bi] = true
				changed = true
			}
		}
	}
	return needIn[0]
}

type floatSave struct {
	idx  int
	reg  isa.Reg
	disp int32
}

// floatSaves finds prologue FSTOREs of callee-saved float registers that
// occur before any other use or definition of the register.
func floatSaves(entry *eblock) []floatSave {
	var out []floatSave
	seen := map[isa.Reg]bool{}
	for i, in := range entry.ins {
		if in.Op == isa.FSTORE && in.Dst.Mem.Base == isa.SP && !in.Dst.Mem.HasIndex() &&
			isa.CalleeSavedFloat(in.Src.Reg) && !seen[in.Src.Reg] {
			out = append(out, floatSave{idx: i, reg: in.Src.Reg, disp: in.Dst.Mem.Disp})
			seen[in.Src.Reg] = true
			continue
		}
		for _, u := range insUses(in) {
			if u.file == isa.RFFloat {
				seen[u.reg] = true
			}
		}
		for _, d := range insDefs(in) {
			if d.file == isa.RFFloat {
				seen[d.reg] = true
			}
		}
	}
	return out
}

func markUsed(r regRef, ints, floats map[isa.Reg]bool) {
	switch r.file {
	case isa.RFInt:
		ints[r.reg] = true
	case isa.RFFloat:
		floats[r.reg] = true
	}
}

func renameFloatReg(in *isa.Instr, from, to isa.Reg) {
	if in.Dst.Kind == isa.KindFReg && in.Dst.Reg == from {
		in.Dst.Reg = to
	}
	if in.Src.Kind == isa.KindFReg && in.Src.Reg == from {
		in.Src.Reg = to
	}
}

func renameIntReg(in *isa.Instr, from, to isa.Reg) {
	if in.Dst.Kind == isa.KindReg && in.Dst.Reg == from {
		in.Dst.Reg = to
	}
	if in.Src.Kind == isa.KindReg && in.Src.Reg == from {
		in.Src.Reg = to
	}
	if in.Dst.Kind == isa.KindMem {
		if in.Dst.Mem.HasBase() && in.Dst.Mem.Base == from {
			in.Dst.Mem.Base = to
		}
		if in.Dst.Mem.HasIndex() && in.Dst.Mem.Index == from {
			in.Dst.Mem.Index = to
		}
	}
	if in.Src.Kind == isa.KindMem {
		if in.Src.Mem.HasBase() && in.Src.Mem.Base == from {
			in.Src.Mem.Base = to
		}
		if in.Src.Mem.HasIndex() && in.Src.Mem.Index == from {
			in.Src.Mem.Index = to
		}
	}
}

// --- store-to-load forwarding (frame slots) ---

// forwardFrameStores replaces a load from a frame slot with a register
// move (or nothing) when the slot was just stored from a register that
// still holds the value. Only SP-based, index-free accesses participate;
// with frameSafe, non-frame stores cannot alias them.
func forwardFrameStores(b *eblock) {
	type fwd struct {
		reg   isa.Reg
		float bool
		ok    bool
	}
	avail := map[int32]fwd{} // keyed by SP displacement
	dead := make([]bool, len(b.ins))
	invalidateReg := func(r regRef) {
		for k, f := range avail {
			if f.ok && f.reg == r.reg && (f.float == (r.file == isa.RFFloat)) {
				delete(avail, k)
			}
		}
	}
	for i := range b.ins {
		ins := &b.ins[i]
		switch ins.Op {
		case isa.STORE, isa.FSTORE:
			m := ins.Dst.Mem
			if m.Base == isa.SP && !m.HasIndex() {
				// Overlapping slots are invalidated.
				for k := range avail {
					if k > m.Disp-8 && k < m.Disp+8 {
						delete(avail, k)
					}
				}
				avail[m.Disp] = fwd{reg: ins.Src.Reg, float: ins.Op == isa.FSTORE, ok: true}
				continue
			}
			// Non-frame store: cannot alias the private frame (frameSafe).
			continue
		case isa.STOREB, isa.VSTORE:
			m := ins.Dst.Mem
			if m.Base == isa.SP && !m.HasIndex() {
				for k := range avail {
					if k > m.Disp-int32(8*isa.VecLanes) && k < m.Disp+int32(8*isa.VecLanes) {
						delete(avail, k)
					}
				}
			}
			continue
		case isa.LOAD, isa.FLOAD:
			m := ins.Src.Mem
			if m.Base == isa.SP && !m.HasIndex() {
				if f, ok := avail[m.Disp]; ok && f.ok && f.float == (ins.Op == isa.FLOAD) {
					if f.reg == ins.Dst.Reg {
						dead[i] = true
					} else {
						op := isa.MOV
						if ins.Op == isa.FLOAD {
							op = isa.FMOV
						}
						*ins = isa.MakeRR(op, ins.Dst.Reg, f.reg)
						b.meta[i] = insMeta{}
						invalidateReg(regRef{fileOf(ins.Op), ins.Dst.Reg})
						avail[m.Disp] = f // still valid
					}
					continue
				}
			}
		case isa.PUSH, isa.POP:
			// SP changes: displacement keys are relative to SP, so all
			// tracked slots shift meaning.
			avail = map[int32]fwd{}
		}
		if isBarrier(ins.Op) {
			avail = map[int32]fwd{}
		}
		for _, d := range insDefs(b.ins[i]) {
			if d.reg == isa.SP && d.file == isa.RFInt {
				avail = map[int32]fwd{}
				break
			}
			invalidateReg(d)
		}
	}
	compactBlock(b, dead)
}

func fileOf(op isa.Opcode) isa.RegFile {
	if op == isa.FLOAD || op == isa.FMOV {
		return isa.RFFloat
	}
	return isa.RFInt
}

// --- dead frame stores ---

// deadFrameStores removes plain stores into private frame slots (delta
// below the entry SP) that no emitted load ever reads.
func deadFrameStores(blocks []*eblock) {
	type span struct{ lo, hi int64 }
	var loads []span
	for _, b := range blocks {
		for i := range b.meta {
			if m := b.meta[i]; m.frameLoad {
				loads = append(loads, span{m.delta, m.delta + m.size})
			}
		}
	}
	overlapsLoad := func(lo, hi int64) bool {
		for _, l := range loads {
			if lo < l.hi && l.lo < hi {
				return true
			}
		}
		return false
	}
	for _, b := range blocks {
		dead := make([]bool, len(b.ins))
		for i := range b.ins {
			if i >= len(b.meta) {
				break
			}
			m := b.meta[i]
			if !m.frameStore || m.delta >= 0 {
				continue
			}
			switch b.ins[i].Op {
			case isa.STORE, isa.STOREB, isa.FSTORE, isa.VSTORE:
				if !overlapsLoad(m.delta, m.delta+m.size) {
					dead[i] = true
				}
			}
			// PUSH also stores, but carries an SP side effect; dead
			// save/restore pairs are removed by removeDeadSaves.
		}
		compactBlock(b, dead)
	}
}

// --- copy-dance coalescing ---

// copyDance rewrites the two-address copy pattern compilers emit for
// "a = a op b":
//
//	mov t, a ; op t, b ; mov a, t   ->   op a, b
//
// when t is not read again before being overwritten in the block.
func copyDance(b *eblock) {
	dead := make([]bool, len(b.ins))
	for i := 0; i+2 < len(b.ins); i++ {
		c1, c2, c3 := b.ins[i], b.ins[i+1], b.ins[i+2]
		if dead[i] || dead[i+1] || dead[i+2] {
			continue
		}
		isCopy := func(in isa.Instr) bool { return in.Op == isa.MOV || in.Op == isa.FMOV }
		if !isCopy(c1) || !isCopy(c3) || c1.Op != c3.Op {
			continue
		}
		t, a := c1.Dst.Reg, c1.Src.Reg
		if c3.Dst.Reg != a || c3.Src.Reg != t || t == a {
			continue
		}
		info := isa.Info(c2.Op)
		if info.Format != isa.FRR && info.Format != isa.FRI {
			continue
		}
		if !isALUish(c2.Op) || c2.Dst.Reg != t {
			continue
		}
		wantFile := isa.RFInt
		if c1.Op == isa.FMOV {
			wantFile = isa.RFFloat
		}
		if info.DstFile != wantFile {
			continue
		}
		if info.Format == isa.FRR && c2.Src.Reg == a && info.SrcFile == wantFile {
			continue // op reads a: rewriting would read the new a mid-op
		}
		// t must not be read later before being redefined.
		if regReadBeforeRedefined(b, i+3, regRef{wantFile, t}) {
			continue
		}
		n2 := c2
		n2.Dst.Reg = a
		if info.Format == isa.FRR && c2.Src.Reg == t && info.SrcFile == wantFile {
			n2.Src.Reg = a
		}
		b.ins[i+1] = n2
		dead[i], dead[i+2] = true, true
	}
	compactBlock(b, dead)
}

func isALUish(op isa.Opcode) bool {
	switch op {
	case isa.ADD, isa.SUB, isa.IMUL, isa.IDIV, isa.IREM, isa.AND, isa.OR,
		isa.XOR, isa.SHL, isa.SHR, isa.SAR,
		isa.ADDI, isa.SUBI, isa.IMULI, isa.ANDI, isa.ORI, isa.XORI,
		isa.SHLI, isa.SHRI, isa.SARI,
		isa.FADD, isa.FSUB, isa.FMUL, isa.FDIV:
		return true
	}
	return false
}

// regReadBeforeRedefined reports whether r is read at or after index from,
// before being written, within the block (conservatively true when the
// block ends without redefinition, unless it ends in RET and r is
// ABI-dead there).
func regReadBeforeRedefined(b *eblock, from int, r regRef) bool {
	for j := from; j < len(b.ins); j++ {
		in := b.ins[j]
		if isBarrier(in.Op) && in.Op != isa.RET {
			return true // call may consume anything
		}
		for _, u := range insUses(in) {
			if u == r {
				return true
			}
		}
		if in.Op == isa.RET {
			return !abiDeadAtReturn(r)
		}
		for _, d := range insDefs(in) {
			if d == r {
				return false
			}
		}
	}
	return true // live out of the block (conservative)
}

func abiDeadAtReturn(r regRef) bool {
	if r.file == isa.RFVec {
		return true
	}
	if r.reg == 0 {
		return false // return registers R0/F0
	}
	if r.file == isa.RFInt {
		return isa.CallerSavedInt(r.reg)
	}
	return isa.CallerSavedFloat(r.reg)
}

// --- liveness-based dead code elimination ---

// liveSet is a register set with an "everything" top element (used around
// calls, whose callees may read any register).
type liveSet struct {
	all  bool
	regs map[regRef]bool
	flag bool // condition flags live
}

func (s *liveSet) has(r regRef) bool { return s.all || s.regs[r] }

func (s *liveSet) clone() *liveSet {
	n := &liveSet{all: s.all, flag: s.flag, regs: make(map[regRef]bool, len(s.regs))}
	for k := range s.regs {
		n.regs[k] = true
	}
	return n
}

func (s *liveSet) union(o *liveSet) bool {
	changed := false
	if o.all && !s.all {
		s.all = true
		changed = true
	}
	if o.flag && !s.flag {
		s.flag = true
		changed = true
	}
	for k := range o.regs {
		if !s.regs[k] {
			s.regs[k] = true
			changed = true
		}
	}
	return changed
}

// abiReturnLive is the live-out set of a returning block: the return
// registers, SP, and everything callee-saved.
func abiReturnLive() *liveSet {
	s := &liveSet{regs: map[regRef]bool{}}
	s.regs[regRef{isa.RFInt, isa.R0}] = true
	s.regs[regRef{isa.RFFloat, 0}] = true
	s.regs[regRef{isa.RFInt, isa.SP}] = true
	for r := isa.Reg(0); r < isa.NumRegs; r++ {
		if isa.CalleeSavedInt(r) {
			s.regs[regRef{isa.RFInt, r}] = true
		}
		if isa.CalleeSavedFloat(r) {
			s.regs[regRef{isa.RFFloat, r}] = true
		}
	}
	return s
}

// scanBackward walks a block from its live-out to its live-in, optionally
// marking removable pure instructions in dead.
func scanBackward(b *eblock, out *liveSet, dead []bool) *liveSet {
	live := out.clone()
	for i := len(b.ins) - 1; i >= 0; i-- {
		in := b.ins[i]
		defs := insDefs(in)
		if dead != nil && isPure(in.Op) && len(defs) > 0 && !live.all {
			needed := false
			for _, d := range defs {
				if live.has(d) {
					needed = true
					break
				}
			}
			if isa.SetsFlags(in.Op) && live.flag {
				needed = true
			}
			if !needed {
				dead[i] = true
				continue
			}
		}
		if in.Op == isa.CALL || in.Op == isa.CALLR {
			live.all = true
			live.flag = false
		}
		if isa.ReadsFlags(in.Op) {
			live.flag = true
		} else if isa.SetsFlags(in.Op) {
			live.flag = false
		}
		for _, d := range defs {
			delete(live.regs, d)
		}
		for _, u := range insUses(in) {
			live.regs[u] = true
		}
	}
	return live
}

// deadCodeGlobal removes pure instructions whose results are never used,
// using liveness computed across the whole block graph. Returning blocks
// end with the ABI live set (caller-saved registers other than the return
// registers are dead); the flags are live into a conditional terminator.
func deadCodeGlobal(blocks []*eblock) {
	n := len(blocks)
	liveIn := make([]*liveSet, n)
	liveOut := make([]*liveSet, n)
	for i, b := range blocks {
		switch {
		case b.term == termEnd && len(b.ins) > 0 && b.ins[len(b.ins)-1].Op == isa.RET:
			liveOut[i] = abiReturnLive()
		case b.term == termEnd:
			// HALT or failure tail: nothing provably read afterwards,
			// but stay conservative.
			liveOut[i] = &liveSet{all: true, regs: map[regRef]bool{}}
		default:
			liveOut[i] = &liveSet{regs: map[regRef]bool{}, flag: b.term == termJcc}
		}
		liveIn[i] = &liveSet{regs: map[regRef]bool{}}
	}
	changed := true
	for changed {
		changed = false
		for i := n - 1; i >= 0; i-- {
			b := blocks[i]
			if b.term == termFall && b.succ >= 0 {
				if liveOut[i].union(liveIn[b.succ]) {
					changed = true
				}
			}
			if b.term == termJcc {
				if b.succ >= 0 && liveOut[i].union(liveIn[b.succ]) {
					changed = true
				}
				if b.jcc >= 0 && liveOut[i].union(liveIn[b.jcc]) {
					changed = true
				}
				liveOut[i].flag = true
			}
			in := scanBackward(b, liveOut[i], nil)
			if liveIn[i].union(in) {
				changed = true
			}
		}
	}
	for i, b := range blocks {
		dead := make([]bool, len(b.ins))
		scanBackward(b, liveOut[i], dead)
		compactBlock(b, dead)
	}
}

// isPure reports whether an instruction only writes registers (and flags):
// no memory effects, no control transfer.
func isPure(op isa.Opcode) bool {
	switch op {
	case isa.MOV, isa.MOVI, isa.LEA, isa.ADD, isa.SUB, isa.IMUL, isa.AND,
		isa.OR, isa.XOR, isa.SHL, isa.SHR, isa.SAR, isa.ADDI, isa.SUBI,
		isa.IMULI, isa.ANDI, isa.ORI, isa.XORI, isa.SHLI, isa.SHRI,
		isa.SARI, isa.NEG, isa.NOT, isa.SETCC, isa.FMOV, isa.FMOVI,
		isa.FADD, isa.FSUB, isa.FMUL, isa.FNEG, isa.FSQRT, isa.CVTIF,
		isa.CVTFI, isa.FMOVFI, isa.FMOVIF, isa.VADD, isa.VSUB, isa.VMUL,
		isa.VBCAST, isa.VHADD, isa.NOP:
		// Note: IDIV/IREM/FDIV excluded (fault/IEEE side conditions kept).
		return true
	}
	return false
}

// --- duplicate loads ---

// redundantLoads removes a LOAD/FLOAD whose exact memory operand was
// loaded into the same register immediately before, with no intervening
// stores, calls or writes to the operand's registers (Section V.B:
// "instruction reordering removing redundant loads").
func redundantLoads(b *eblock) {
	n := len(b.ins)
	dead := make([]bool, n)
	type lastLoad struct {
		op  isa.Opcode
		mem isa.MemRef
		ok  bool
	}
	var last [isa.NumRegs]lastLoad  // integer file
	var lastF [isa.NumRegs]lastLoad // float file
	invalidateAll := func() {
		for i := range last {
			last[i].ok = false
			lastF[i].ok = false
		}
	}
	invalidateReg := func(r regRef) {
		switch r.file {
		case isa.RFInt:
			last[r.reg].ok = false
			for i := range last {
				if last[i].ok && memUsesReg(last[i].mem, r.reg) {
					last[i].ok = false
				}
				if lastF[i].ok && memUsesReg(lastF[i].mem, r.reg) {
					lastF[i].ok = false
				}
			}
		case isa.RFFloat:
			lastF[r.reg].ok = false
		}
	}
	for i := 0; i < n; i++ {
		ins := b.ins[i]
		switch ins.Op {
		case isa.LOAD:
			if l := last[ins.Dst.Reg]; l.ok && l.op == isa.LOAD && l.mem == ins.Src.Mem {
				dead[i] = true
				continue
			}
			for _, d := range insDefs(ins) {
				invalidateReg(d)
			}
			if !memUsesReg(ins.Src.Mem, ins.Dst.Reg) {
				last[ins.Dst.Reg] = lastLoad{isa.LOAD, ins.Src.Mem, true}
			}
			continue
		case isa.FLOAD:
			if l := lastF[ins.Dst.Reg]; l.ok && l.op == isa.FLOAD && l.mem == ins.Src.Mem {
				dead[i] = true
				continue
			}
			lastF[ins.Dst.Reg] = lastLoad{isa.FLOAD, ins.Src.Mem, true}
			continue
		case isa.STORE, isa.STOREB, isa.FSTORE, isa.VSTORE, isa.PUSH, isa.POP:
			invalidateAll()
		}
		if isBarrier(ins.Op) {
			invalidateAll()
		}
		for _, d := range insDefs(ins) {
			invalidateReg(d)
		}
	}
	compactBlock(b, dead)
}

func memUsesReg(m isa.MemRef, r isa.Reg) bool {
	return (m.HasBase() && m.Base == r) || (m.HasIndex() && m.Index == r)
}

// --- dead callee-saved saves and frame shrinking ---

// removeDeadSaves drops PUSH/POP pairs of callee-saved registers the
// generated code never uses (specialization freed them), and removes the
// frame allocation entirely when no stack slot remains. All SP-relative
// displacements are rebased accordingly. This is the payoff the paper
// sketches as "register renaming ... avoiding register spills to the
// stack" (Sections IV and VIII).
func removeDeadSaves(blocks []*eblock) {
	if len(blocks) == 0 {
		return
	}
	// Removing prologue pushes shifts the private frame up uniformly.
	// That is invisible as long as every remaining SP-relative access
	// targets the private region (delta < 0): sp-relative addressing
	// moves with the frame. Accesses into the caller region (delta >= 0)
	// would land 8 bytes off per removed push, so their presence blocks
	// the pass.
	for _, b := range blocks {
		for i, in := range b.ins {
			if !usesSPMem(in) {
				continue
			}
			if i >= len(b.meta) {
				return
			}
			m := b.meta[i]
			if !(m.frameLoad || m.frameStore) || m.delta >= 0 {
				return
			}
		}
	}
	entry := blocks[0]
	// Locate the prologue push run (allowing a leading handler call).
	start := 0
	for start < len(entry.ins) && entry.ins[start].Op == isa.CALL {
		start++
	}
	var pushes []int // indices in entry.ins
	for i := start; i < len(entry.ins) && entry.ins[i].Op == isa.PUSH; i++ {
		pushes = append(pushes, i)
	}
	if len(pushes) == 0 {
		shrinkFrame(blocks)
		return
	}
	// No SP-relative accesses may precede the push run.
	for i := 0; i < pushes[0]; i++ {
		if usesSPMem(entry.ins[i]) {
			return
		}
	}
	// Every RET block must end with the mirrored pop run.
	type retBlock struct {
		b    *eblock
		pops []int // indices, aligned with pushes reversed
	}
	var rets []retBlock
	for _, b := range blocks {
		if len(b.ins) == 0 || b.ins[len(b.ins)-1].Op != isa.RET {
			continue
		}
		// Allow an exit-handler CALL between pops and RET.
		end := len(b.ins) - 1
		for end > 0 && b.ins[end-1].Op == isa.CALL {
			end--
		}
		if end < len(pushes) {
			return
		}
		pops := make([]int, len(pushes))
		for k := range pushes {
			idx := end - 1 - k
			in := b.ins[idx]
			if in.Op != isa.POP || in.Dst.Reg != entry.ins[pushes[k]].Dst.Reg {
				return
			}
			pops[k] = idx
		}
		rets = append(rets, retBlock{b: b, pops: pops})
	}
	if len(rets) == 0 {
		return
	}
	// Which saved registers are actually used elsewhere?
	used := map[isa.Reg]bool{}
	skip := map[*eblock]map[int]bool{entry: {}}
	for _, r := range rets {
		if skip[r.b] == nil {
			skip[r.b] = map[int]bool{}
		}
		for _, idx := range r.pops {
			skip[r.b][idx] = true
		}
	}
	for _, idx := range pushes {
		skip[entry][idx] = true
	}
	for _, b := range blocks {
		for i, in := range b.ins {
			if skip[b] != nil && skip[b][i] {
				continue
			}
			for _, u := range insUses(in) {
				if u.file == isa.RFInt {
					used[u.reg] = true
				}
			}
			for _, d := range insDefs(in) {
				if d.file == isa.RFInt {
					used[d.reg] = true
				}
			}
		}
	}
	// Remove unused pairs.
	removed := 0
	deadEntry := make([]bool, len(entry.ins))
	deadRet := map[*eblock][]bool{}
	for _, r := range rets {
		deadRet[r.b] = make([]bool, len(r.b.ins))
	}
	for k, idx := range pushes {
		reg := entry.ins[idx].Dst.Reg
		if used[reg] {
			continue
		}
		deadEntry[idx] = true
		for _, r := range rets {
			deadRet[r.b][r.pops[k]] = true
		}
		removed++
	}
	if removed > 0 {
		// Entry may itself be a RET block: merge the masks.
		for _, r := range rets {
			if r.b == entry {
				for i, d := range deadRet[r.b] {
					if d {
						deadEntry[i] = true
					}
				}
				deadRet[r.b] = nil
			}
		}
		compactBlock(entry, deadEntry)
		for _, r := range rets {
			if r.b != entry && deadRet[r.b] != nil {
				compactBlock(r.b, deadRet[r.b])
			}
		}
	}
	shrinkFrame(blocks)
}

// usesSPMem reports whether the instruction has an SP-based memory
// operand.
func usesSPMem(in isa.Instr) bool {
	m, ok := memOperand(in)
	return ok && ((m.HasBase() && m.Base == isa.SP) || (m.HasIndex() && m.Index == isa.SP))
}

func memOperand(in isa.Instr) (isa.MemRef, bool) {
	switch isa.Info(in.Op).Format {
	case isa.FRM:
		return in.Src.Mem, true
	case isa.FMR:
		return in.Dst.Mem, true
	}
	return isa.MemRef{}, false
}

// shrinkFrame removes a "subi sp, K" / "addi sp, K" frame allocation when
// no SP-relative memory access remains anywhere in the generated code.
func shrinkFrame(blocks []*eblock) {
	if len(blocks) == 0 {
		return
	}
	for _, b := range blocks {
		for _, in := range b.ins {
			if usesSPMem(in) {
				return
			}
		}
	}
	entry := blocks[0]
	subIdx := -1
	var k int64
	for i, in := range entry.ins {
		if in.Op == isa.SUBI && in.Dst.Reg == isa.SP {
			subIdx, k = i, in.Src.Imm
			break
		}
		if in.Op == isa.PUSH || in.Op == isa.CALL || in.Op == isa.MOVI || in.Op == isa.NOP {
			continue
		}
		break
	}
	if subIdx < 0 {
		return
	}
	// Flags from the SUBI must be dead: another setter must follow in the
	// entry block before any reader, or no reader may exist at all.
	if flagsReadBeforeSet(entry, subIdx+1) {
		return
	}
	// Every RET block needs the matching ADDI with no flag reader after.
	type hit struct {
		b   *eblock
		idx int
	}
	var hits []hit
	for _, b := range blocks {
		if len(b.ins) == 0 || b.ins[len(b.ins)-1].Op != isa.RET {
			continue
		}
		found := -1
		for i := len(b.ins) - 1; i >= 0; i-- {
			in := b.ins[i]
			if in.Op == isa.ADDI && in.Dst.Reg == isa.SP && in.Src.Imm == k {
				found = i
				break
			}
			if in.Op == isa.POP || in.Op == isa.RET || in.Op == isa.CALL || in.Op == isa.FMOV || in.Op == isa.MOV {
				continue
			}
			break
		}
		if found < 0 || flagsReadBeforeSet(b, found+1) {
			return
		}
		hits = append(hits, hit{b, found})
	}
	if len(hits) == 0 {
		return
	}
	dead := make([]bool, len(entry.ins))
	dead[subIdx] = true
	compactBlock(entry, dead)
	for _, h := range hits {
		d := make([]bool, len(h.b.ins))
		idx := h.idx
		if h.b == entry && idx > subIdx {
			idx--
		}
		d[idx] = true
		compactBlock(h.b, d)
	}
}

// flagsReadBeforeSet reports whether, scanning forward from index i, a
// flag reader appears before the next flag setter (conservatively true at
// block end unless the block returns).
func flagsReadBeforeSet(b *eblock, i int) bool {
	for ; i < len(b.ins); i++ {
		in := b.ins[i]
		if isa.ReadsFlags(in.Op) {
			return true
		}
		if isa.SetsFlags(in.Op) {
			return false
		}
		if in.Op == isa.RET {
			return false
		}
	}
	return b.term == termJcc || b.term == termFall
}

// compactBlock drops marked instructions and fixes the size accounting,
// keeping the metadata aligned.
func compactBlock(b *eblock, dead []bool) {
	out := b.ins[:0]
	meta := b.meta[:0]
	bytes := 0
	for i, ins := range b.ins {
		if dead[i] {
			continue
		}
		out = append(out, ins)
		if i < len(b.meta) {
			meta = append(meta, b.meta[i])
		} else {
			meta = append(meta, insMeta{})
		}
		if n, err := isa.EncodedLen(ins); err == nil {
			bytes += n
		}
	}
	b.ins = out
	b.meta = meta
	b.bytes = bytes
}
