package brew

import (
	"fmt"
	"strings"

	"repro/internal/isa"
)

// termKind describes how an emitted block ends.
type termKind uint8

const (
	// termFall: control continues in block succ (a JMP is emitted unless
	// the layout places succ immediately after).
	termFall termKind = iota
	// termJcc: conditional jump to jccTarget, else fall through to succ.
	termJcc
	// termEnd: the body's last instruction leaves the function (RET or
	// HALT); no successors.
	termEnd
)

// eblock is one captured (generated) basic block. Captured instructions are
// kept in decoded form until final code generation (paper, Section III.G).
type eblock struct {
	id     int
	addr   uint64 // original address (0 for compensation trampolines)
	fnAddr uint64 // function the original address belongs to
	ins    []isa.Instr
	meta   []insMeta // parallel to ins: frame-access annotations
	term   termKind
	cc     isa.Cond
	succ   int // fallthrough successor block id
	jcc    int // taken successor block id (termJcc)

	// entry world snapshot (owned); nil once the block has been traced and
	// is no longer needed for compatibility checks... kept for migration.
	world  *world
	frames []frame
	bytes  int // encoded size of ins (maintained incrementally)
}

// frame is one shadow-stack entry for an inlined call (paper, Section
// III.E: "we maintain a shadow stack remembering traced call instructions
// and corresponding return addresses").
type frame struct {
	retAddr uint64 // where tracing continues after the callee returns
	fn      uint64 // inlined callee start address
	delta   int64  // symbolic SP offset at the call site
	opts    FuncOpts
}

func framesKey(frames []frame) uint64 {
	var h uint64 = 1469598103934665603 // FNV offset basis
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	for _, f := range frames {
		mix(f.retAddr)
		mix(f.fn)
		mix(uint64(f.delta))
	}
	return h
}

// blockKey identifies a translation: same original start address but
// different known-world state (or inline context) is a different block
// (paper, Section III.F).
type blockKey struct {
	addr uint64
	wkey uint64
	fkey uint64
}

// variantSite groups translations of the same original address in the same
// inline context, for the variant threshold.
type variantSite struct {
	addr uint64
	fkey uint64
}

// layout orders the blocks, fixes jump forms, encodes everything and
// returns the final image based at base.
func layoutAndEncode(blocks []*eblock, base uint64, maxBytes int) ([]byte, error) {
	if len(blocks) == 0 {
		return nil, fmt.Errorf("%w: no blocks generated", ErrUnsupported)
	}
	order := blockOrder(blocks)

	// Pass 1: assign addresses. Jump encodings are fixed-width, so sizes
	// are final before targets are known (paper: "Do relocation of all
	// needed jumps, given start addresses from the previous step").
	pos := make([]uint64, len(blocks))
	addr := base
	next := make([]int, len(blocks)) // block physically following, -1 at end
	for i, id := range order {
		if i+1 < len(order) {
			next[id] = order[i+1]
		} else {
			next[id] = -1
		}
	}
	for _, id := range order {
		b := blocks[id]
		pos[id] = addr
		addr += uint64(b.bytes)
		addr += uint64(termSize(b, next[id]))
	}
	if int(addr-base) > maxBytes {
		return nil, fmt.Errorf("%w: %d bytes > limit %d", ErrCodeBufferFull, addr-base, maxBytes)
	}

	// Pass 2: encode.
	out := make([]byte, 0, addr-base)
	for _, id := range order {
		b := blocks[id]
		blockStart := base + uint64(len(out))
		if blockStart != pos[id] {
			return nil, fmt.Errorf("%w: layout desync at block %d", ErrUnsupported, id)
		}
		var err error
		for _, ins := range b.ins {
			ins.Addr = base + uint64(len(out))
			out, err = isa.AppendEncode(out, ins)
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrUnsupported, err)
			}
		}
		switch b.term {
		case termEnd:
		case termFall:
			if b.succ != next[id] {
				j := isa.MakeRel(isa.JMP, pos[b.succ])
				j.Addr = base + uint64(len(out))
				out, err = isa.AppendEncode(out, j)
				if err != nil {
					return nil, err
				}
			}
		case termJcc:
			j := isa.MakeJCC(b.cc, pos[b.jcc])
			j.Addr = base + uint64(len(out))
			out, err = isa.AppendEncode(out, j)
			if err != nil {
				return nil, err
			}
			if b.succ != next[id] {
				j2 := isa.MakeRel(isa.JMP, pos[b.succ])
				j2.Addr = base + uint64(len(out))
				out, err = isa.AppendEncode(out, j2)
				if err != nil {
					return nil, err
				}
			}
		}
	}
	return out, nil
}

// termSize returns the encoded size of the block terminator given the
// physically following block.
func termSize(b *eblock, next int) int {
	const jmpLen, jccLen = 5, 6
	switch b.term {
	case termEnd:
		return 0
	case termFall:
		if b.succ == next {
			return 0
		}
		return jmpLen
	case termJcc:
		n := jccLen
		if b.succ != next {
			n += jmpLen
		}
		return n
	}
	return 0
}

// blockOrder determines the final order of generated blocks, preferring
// fallthrough chains (paper: "Determination of the best order of generated
// blocks for the final rewritten code").
func blockOrder(blocks []*eblock) []int {
	seen := make([]bool, len(blocks))
	var order []int
	var chain func(id int)
	chain = func(id int) {
		for id >= 0 && !seen[id] {
			seen[id] = true
			order = append(order, id)
			b := blocks[id]
			switch b.term {
			case termFall:
				id = b.succ
			case termJcc:
				id = b.succ // prefer the fallthrough path
			default:
				id = -1
			}
		}
	}
	chain(0)
	// Remaining blocks: chase taken edges and anything unvisited.
	for id := 0; id < len(blocks); id++ {
		if seen[id] {
			if blocks[id].term == termJcc && !seen[blocks[id].jcc] {
				chain(blocks[id].jcc)
			}
			continue
		}
		chain(id)
	}
	// A second sweep for jcc targets discovered late.
	for id := 0; id < len(blocks); id++ {
		if blocks[id].term == termJcc && !seen[blocks[id].jcc] {
			chain(blocks[id].jcc)
		}
		if blocks[id].term == termFall && !seen[blocks[id].succ] {
			chain(blocks[id].succ)
		}
	}
	return order
}

// dump renders the captured blocks for debugging and the paper's Figure 6
// style listings.
func dumpBlocks(blocks []*eblock) string {
	var sb strings.Builder
	for _, b := range blocks {
		fmt.Fprintf(&sb, "block %d (orig 0x%x):\n", b.id, b.addr)
		for _, ins := range b.ins {
			fmt.Fprintf(&sb, "    %s\n", ins)
		}
		switch b.term {
		case termFall:
			fmt.Fprintf(&sb, "    -> b%d\n", b.succ)
		case termJcc:
			fmt.Fprintf(&sb, "    j%s -> b%d else b%d\n", b.cc, b.jcc, b.succ)
		}
	}
	return sb.String()
}
