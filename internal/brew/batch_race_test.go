package brew_test

import (
	"testing"

	"repro/internal/brew"
	"repro/internal/minc"
	"repro/internal/vm"
)

// TestRewriteBatchSameFunction hammers the concurrency contract from the
// worst angle: many simultaneous rewrites of the *same* function. Every
// tracer reads the same code bytes and every completion races into
// InstallJIT and the icache invalidation on the shared machine. Run under
// -race this exercises the serialization that RewriteBatch documents;
// functionally it checks that no variant's code was corrupted by a
// concurrent installation.
func TestRewriteBatchSameFunction(t *testing.T) {
	m := vm.MustNew()
	l, err := minc.CompileAndLink(m, `
long A[8] = {3, 1, 4, 1, 5, 9, 2, 6};
long walk(long n, long s) {
    long acc = s;
    for (long i = 0; i < n; i++) {
        acc = acc * 3 + A[(acc + i) & 7];
    }
    return acc;
}
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	fn, err := l.FuncAddr("walk")
	if err != nil {
		t.Fatal(err)
	}

	const variants = 16
	reqs := make([]brew.BatchRequest, variants)
	for i := range reqs {
		cfg := brew.NewConfig().SetParam(1, brew.ParamKnown)
		if i%2 == 1 {
			cfg.SetParam(2, brew.ParamKnown)
		}
		reqs[i] = brew.BatchRequest{Cfg: cfg, Fn: fn, Args: []uint64{uint64(i), uint64(100 + i)}}
	}
	results, errs := brew.RewriteBatch(m, reqs)
	for i, rerr := range errs {
		if rerr != nil {
			t.Fatalf("variant %d: %v", i, rerr)
		}
	}
	for i, res := range results {
		n, s := uint64(i), uint64(100+i)
		want, err := m.Call(fn, n, s)
		if err != nil {
			t.Fatalf("original walk(%d,%d): %v", n, s, err)
		}
		got, err := m.Call(res.Addr, n, s)
		if err != nil || got != want {
			t.Errorf("variant %d: walk(%d,%d) = %d, %v; want %d", i, n, s, got, err, want)
		}
	}
}

// TestRewriteBatchPositionalErrors checks the batch failure model: one
// failed request must leave the other requests' results intact and land its
// error at its own position.
func TestRewriteBatchPositionalErrors(t *testing.T) {
	m := vm.MustNew()
	l, err := minc.CompileAndLink(m, `
long id(long x) { return x; }
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	fn, _ := l.FuncAddr("id")
	reqs := []brew.BatchRequest{
		{Cfg: brew.NewConfig(), Fn: fn},
		{Cfg: brew.NewConfig(), Fn: 0xdead}, // not executable: must fail alone
		{Cfg: brew.NewConfig().SetParam(1, brew.ParamKnown), Fn: fn, Args: []uint64{7}},
	}
	results, errs := brew.RewriteBatch(m, reqs)
	if errs[0] != nil || results[0] == nil {
		t.Errorf("request 0 should succeed: %v", errs[0])
	}
	if errs[1] == nil {
		t.Errorf("request 1 should fail")
	}
	if errs[2] != nil || results[2] == nil {
		t.Errorf("request 2 should succeed: %v", errs[2])
	}
	for _, i := range []int{0, 2} {
		if results[i] == nil {
			continue
		}
		got, err := m.Call(results[i].Addr, 7)
		if err != nil || got != 7 {
			t.Errorf("request %d: id(7) = %d, %v", i, got, err)
		}
	}
}
