package brew

import (
	"hash/fnv"
	"math"
	"sort"

	"repro/internal/isa"
)

// vKind classifies a tracked integer value.
type vKind uint8

const (
	// vUnknown: a runtime value; the register holds it in generated code.
	vUnknown vKind = iota
	// vConst: a compile-time (rewrite-time) constant.
	vConst
	// vStackRel: entrySP + delta, where entrySP is the runtime stack
	// pointer at entry of the rewritten function. Stack-relative values
	// keep frame addressing correct in generated code even though the
	// runtime stack position is unknown at rewrite time.
	vStackRel
)

// ival is the tracked state of one integer register or stack slot. mat
// ("materialized") records whether the generated code, at this program
// point, holds the value in the corresponding register; known values start
// unmaterialized and are materialized lazily when an emitted instruction
// needs them (the paper's compensation code).
type ival struct {
	kind vKind
	val  uint64 // constant, or stack delta (as uint64 bit pattern of int64)
	mat  bool
}

func unknown() ival          { return ival{kind: vUnknown} }
func konst(v uint64) ival    { return ival{kind: vConst, val: v} }
func stackRel(d int64) ival  { return ival{kind: vStackRel, val: uint64(d)} }
func (v ival) isConst() bool { return v.kind == vConst }
func (v ival) isKnown() bool { return v.kind != vUnknown }
func (v ival) delta() int64  { return int64(v.val) }

// fval is the tracked state of one floating-point register.
type fval struct {
	known bool
	val   float64
	mat   bool
}

// flagval is the tracked state of the condition flags.
type flagval struct {
	known bool
	fl    isa.Flags
}

// stackSlot is a traced stack-memory cell keyed by its delta from entry SP.
type stackSlot struct {
	size uint8 // 1 or 8
	v    ival  // float bits are stored as vConst raw bits
}

// memByte is one byte of the traced-writes overlay on top of declared-known
// memory.
type memByte struct {
	known bool
	b     byte
}

// world is the known-world state (paper, Section III.F): for every value
// location, whether its content is known, and if so what it is.
type world struct {
	r     [isa.NumRegs]ival
	f     [isa.NumRegs]fval
	flags flagval
	// fdirty records that the runtime condition flags may differ from the
	// traced ones because a flag-setting instruction was evaluated
	// silently. Generated code must not read the runtime flags while
	// dirty; an emitted flag-setting instruction cleans them.
	fdirty bool
	// escaped records that a frame address was observed flowing into a
	// general register (LEA of a stack slot, SP copy, reload of a spilled
	// frame pointer). Until then, the frame below the entry SP is private
	// to the traced function (C forbids callers from aliasing it), so
	// stores through unknown pointers cannot touch tracked slots below
	// the entry SP.
	escaped bool
	stack   map[int64]stackSlot
	mem     map[uint64]memByte
}

func newWorld() *world {
	w := &world{
		stack: make(map[int64]stackSlot),
		mem:   make(map[uint64]memByte),
	}
	w.r[isa.SP] = ival{kind: vStackRel, val: 0, mat: true}
	return w
}

func (w *world) clone() *world {
	nw := &world{r: w.r, f: w.f, flags: w.flags, fdirty: w.fdirty, escaped: w.escaped}
	nw.stack = make(map[int64]stackSlot, len(w.stack))
	for k, v := range w.stack {
		nw.stack[k] = v
	}
	nw.mem = make(map[uint64]memByte, len(w.mem))
	for k, v := range w.mem {
		nw.mem[k] = v
	}
	return nw
}

// spDelta returns the current symbolic stack-pointer offset from entry SP.
// ok is false when the traced code moved SP to a non-stack-relative value.
func (w *world) spDelta() (int64, bool) {
	sp := w.r[isa.SP]
	if sp.kind != vStackRel {
		return 0, false
	}
	return sp.delta(), true
}

// writeStack records a traced stack store, invalidating overlapping slots.
func (w *world) writeStack(delta int64, size uint8, v ival) {
	for off := delta - 7; off < delta+int64(size); off++ {
		if s, ok := w.stack[off]; ok {
			if off+int64(s.size) > delta && off < delta+int64(size) {
				delete(w.stack, off)
			}
		}
	}
	w.stack[delta] = stackSlot{size: size, v: v}
}

// readStack returns the traced content of a stack slot, if exactly tracked.
func (w *world) readStack(delta int64, size uint8) (ival, bool) {
	s, ok := w.stack[delta]
	if !ok || s.size != size {
		return ival{}, false
	}
	return s.v, true
}

// clearStack forgets all traced stack contents (conservative treatment of
// emitted calls: the callee may overwrite the frame through escaped
// pointers and certainly overwrites memory below SP).
func (w *world) clearStack() {
	for k := range w.stack {
		delete(w.stack, k)
	}
}

// clearStackCallerVisible drops tracked slots at or above the entry SP
// (delta >= 0): that region belongs to the caller and may legally be
// aliased by pointers the traced function received.
func (w *world) clearStackCallerVisible() {
	for k := range w.stack {
		if k >= 0 {
			delete(w.stack, k)
		}
	}
}

// clearStackBelow drops tracked slots strictly below the given delta: dead
// space a callee is free to clobber.
func (w *world) clearStackBelow(delta int64) {
	for k := range w.stack {
		if k < delta {
			delete(w.stack, k)
		}
	}
}

// clearMem forgets the traced-writes overlay.
func (w *world) clearMem() {
	for k := range w.mem {
		delete(w.mem, k)
	}
}

// poisonMem marks size bytes at addr as runtime-valued, shadowing any
// declared-known range.
func (w *world) poisonMem(addr uint64, size int) {
	for i := 0; i < size; i++ {
		w.mem[addr+uint64(i)] = memByte{known: false}
	}
}

// overlayWrite records a traced write of a known value to known memory.
func (w *world) overlayWrite(addr uint64, v uint64, size int) {
	for i := 0; i < size; i++ {
		w.mem[addr+uint64(i)] = memByte{known: true, b: byte(v)}
		v >>= 8
	}
}

// key produces a collision-resistant-enough identity of the world for
// block keying: FNV-1a over a canonical serialization. Blocks starting at
// the same original address are different translations when their
// known-world state differs (paper, Section III.F).
func (w *world) key() uint64 {
	h := fnv.New64a()
	buf := make([]byte, 0, 512)
	put := func(v uint64) {
		buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
			byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
	}
	for i := range w.r {
		put(uint64(w.r[i].kind) | boolBit(w.r[i].mat)<<8)
		if w.r[i].isKnown() {
			put(w.r[i].val)
		}
	}
	for i := range w.f {
		put(boolBit(w.f[i].known) | boolBit(w.f[i].mat)<<1)
		if w.f[i].known {
			put(math.Float64bits(w.f[i].val))
		}
	}
	put(boolBit(w.flags.known) | boolBit(w.flags.fl.Z)<<1 | boolBit(w.flags.fl.S)<<2 |
		boolBit(w.flags.fl.C)<<3 | boolBit(w.flags.fl.O)<<4 | boolBit(w.fdirty)<<5 |
		boolBit(w.escaped)<<6)

	stackKeys := make([]int64, 0, len(w.stack))
	for k := range w.stack {
		stackKeys = append(stackKeys, k)
	}
	sort.Slice(stackKeys, func(i, j int) bool { return stackKeys[i] < stackKeys[j] })
	for _, k := range stackKeys {
		s := w.stack[k]
		put(uint64(k))
		put(uint64(s.size) | uint64(s.v.kind)<<8)
		put(s.v.val)
	}

	memKeys := make([]uint64, 0, len(w.mem))
	for k := range w.mem {
		memKeys = append(memKeys, k)
	}
	sort.Slice(memKeys, func(i, j int) bool { return memKeys[i] < memKeys[j] })
	for _, k := range memKeys {
		mb := w.mem[k]
		put(k)
		put(boolBit(mb.known) | uint64(mb.b)<<8)
	}

	h.Write(buf)
	return h.Sum64()
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// compat reports whether control flow in state w may jump into a block
// traced with entry state t, and if so which registers need materializing
// compensation first (paper: "we can produce compensation code for
// migrating between world states as long as there are only values changing
// from known to unknown").
//
// Requirements:
//   - wherever t assumes a known value, w must know the same value;
//   - flags known in t must be known and equal in w (flags cannot be
//     re-materialized);
//   - stack slots and memory overlay entries known in t must match in w
//     (the runtime always holds the true values because stores are always
//     emitted; known-ness only licenses folding in t's code);
//   - registers that t's code reads from the machine (t unknown, or t
//     materialized) must actually hold their value at runtime: w-known
//     unmaterialized registers migrating to such a spot need
//     materialization.
func compat(w, t *world) (intComp []isa.Reg, fComp []isa.Reg, ok bool) {
	for i := range w.r {
		wv, tv := w.r[i], t.r[i]
		if tv.isKnown() {
			if wv.kind != tv.kind || wv.val != tv.val {
				return nil, nil, false
			}
			if tv.mat && !wv.mat {
				intComp = append(intComp, isa.Reg(i))
			}
		} else if wv.isKnown() && !wv.mat {
			intComp = append(intComp, isa.Reg(i))
		}
	}
	for i := range w.f {
		wv, tv := w.f[i], t.f[i]
		if tv.known {
			if !wv.known || math.Float64bits(wv.val) != math.Float64bits(tv.val) {
				return nil, nil, false
			}
			if tv.mat && !wv.mat {
				fComp = append(fComp, isa.Reg(i))
			}
		} else if wv.known && !wv.mat {
			fComp = append(fComp, isa.Reg(i))
		}
	}
	if t.flags.known {
		if !w.flags.known || w.flags.fl != t.flags.fl {
			return nil, nil, false
		}
	} else if !t.fdirty {
		// t's code may read the runtime flags, which it assumed were
		// produced by the original flag-setter sequence; w must arrive
		// with clean runtime flags and no silently-tracked state.
		if w.flags.known || w.fdirty {
			return nil, nil, false
		}
	}
	// t traced without frame escape may fold slots across unknown stores;
	// arriving with an escaped frame would make those folds stale.
	if w.escaped && !t.escaped {
		return nil, nil, false
	}
	for k, ts := range t.stack {
		ws, okk := w.stack[k]
		if ts.v.isKnown() {
			if !okk || ws.size != ts.size || ws.v.kind != ts.v.kind || ws.v.val != ts.v.val {
				return nil, nil, false
			}
		}
	}
	for k, tb := range t.mem {
		wb, okk := w.mem[k]
		if tb.known {
			if !okk || !wb.known || wb.b != tb.b {
				return nil, nil, false
			}
		}
		// t poisoned (unknown) entries are fine: t's code treats those
		// bytes as runtime memory, which always holds the truth.
	}
	return intComp, fComp, true
}

// generalize returns a copy of w with every location that is not known
// identically in all of the given worlds made unknown. Migrating to the
// generalized world always terminates at all-unknown (paper, Section
// III.F).
func generalize(w *world, others []*world) *world {
	g := w.clone()
	for i := range g.r {
		if i == int(isa.SP) {
			continue // SP stays symbolic
		}
		for _, o := range others {
			if o.r[i].kind != g.r[i].kind || o.r[i].val != g.r[i].val {
				g.r[i] = unknown()
				break
			}
		}
	}
	for i := range g.f {
		for _, o := range others {
			if o.f[i].known != g.f[i].known ||
				(g.f[i].known && math.Float64bits(o.f[i].val) != math.Float64bits(g.f[i].val)) {
				g.f[i] = fval{}
				break
			}
		}
	}
	g.flags = flagval{}
	g.fdirty = true  // incoming runtime flags are arbitrary
	g.escaped = true // most conservative: accept any incoming frame state
	// Keep only stack slots agreeing across all worlds.
	for k, s := range g.stack {
		for _, o := range others {
			os, ok := o.stack[k]
			if !ok || os != s {
				delete(g.stack, k)
				break
			}
		}
	}
	for k, b := range g.mem {
		for _, o := range others {
			ob, ok := o.mem[k]
			if !ok || ob != b {
				g.mem[k] = memByte{known: false}
				break
			}
		}
	}
	return g
}
