package brew

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/vm"
)

// injectAt consults the fault-injection hook at a pipeline site.
func injectAt(cfg *Config, site string) error {
	if cfg.Inject == nil {
		return nil
	}
	return cfg.Inject(site)
}

// Result describes a successful rewrite.
type Result struct {
	// Addr is the entry point of the generated function: a drop-in
	// replacement with the original's signature (paper, Section III.E).
	Addr uint64
	// CodeSize is the generated code size in bytes.
	CodeSize int
	// Blocks is the number of captured basic blocks (including
	// compensation trampolines).
	Blocks int
	// TracedInstrs counts original instructions visited during tracing.
	TracedInstrs int
	// Report explains, per basic block and per optimization pass, what the
	// rewriter kept, elided, folded or inlined and why.
	Report *RewriteReport

	// Degraded marks a RewriteOrDegrade fallback: Addr is the original
	// function, not specialized code, and the other fields are zero.
	Degraded bool

	listing string
}

// Listing returns a human-readable dump of the captured blocks (the
// reproduction of the paper's Figure 6).
func (r *Result) Listing() string { return r.listing }

// Rewrite generates a specialized drop-in replacement for the function at
// fn, the analogue of the paper's
//
//	newfunc = brew_rewrite(rConf, func, arg1, arg2, ...);
//
// args and fargs supply the emulated call's parameter setting (Section
// III.B: "The rewriting process essentially emulates a call to the
// function. This requires that a parameter setting is provided."); only
// parameters declared known in cfg are consulted.
//
// On error the original function remains valid; rewriting failure is not
// catastrophic (Section III.G). An internal rewriter panic is recovered and
// reported as ErrRewritePanic — it can never take the host down.
//
// Deprecated: use Do.
func Rewrite(m *vm.Machine, cfg *Config, fn uint64, args []uint64, fargs []float64) (*Result, error) {
	out, err := Do(m, &Request{Config: cfg, Fn: fn, Args: args, FArgs: fargs})
	if err != nil {
		return nil, err
	}
	return out.Result, nil
}

func rewrite(m *vm.Machine, cfg *Config, fn uint64, args []uint64, fargs []float64) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	budget := cfg.Budget
	cfg = cfg.withBudget()
	t := newTracer(m, cfg)
	if budget != nil && budget.Deadline > 0 {
		t.deadline = time.Now().Add(budget.Deadline)
	}

	// Declared-known memory: explicit ranges plus pointer parameters
	// (the same ranges specmgr freezes under watchpoints).
	t.ranges = append(t.ranges, cfg.FrozenRanges(args)...)

	w0 := newWorld()
	for i, spec := range cfg.intParams {
		if spec.class == ParamUnknown {
			continue
		}
		if i >= len(args) {
			return nil, fmt.Errorf("%w: parameter %d declared known but only %d arguments given", ErrBadConfig, i+1, len(args))
		}
		w0.r[isa.IntArgRegs[i]] = konst(args[i])
	}
	for i, class := range cfg.floatParams {
		if class == ParamUnknown {
			continue
		}
		if i >= len(fargs) {
			return nil, fmt.Errorf("%w: float parameter %d declared known but only %d float arguments given", ErrBadConfig, i+1, len(fargs))
		}
		w0.f[isa.FloatArgRegs[i]] = fval{known: true, val: fargs[i]}
	}

	if err := t.run(fn, w0); err != nil {
		return nil, err
	}

	// Optimization passes over the captured blocks (Section III.G: "we run
	// optimization passes over the newly generated, captured blocks").
	// Tier-0 (EffortQuick) skips the whole pass stack, vectorization
	// included: the trace's constant folding is the entire pipeline, so
	// the SiteOptimize injection point does not exist at this tier.
	if cfg.Effort != EffortQuick {
		if err := injectAt(cfg, SiteOptimize); err != nil {
			return nil, err
		}
		optimize(t.blocks, !t.escapedEver && !t.frameOpaque, cfg.Vectorize, t.rep)
	}

	// Size probe at base 0, then allocation and final relocation under
	// the machine's JIT lock (several rewrites may run concurrently).
	if err := injectAt(cfg, SiteLayout); err != nil {
		return nil, err
	}
	probe, err := layoutAndEncode(t.blocks, 0, cfg.MaxCodeBytes)
	if err != nil {
		return nil, err
	}
	if err := injectAt(cfg, SiteInstall); err != nil {
		return nil, err
	}
	addr, err := m.InstallJIT(len(probe), func(at uint64) ([]byte, error) {
		return layoutAndEncode(t.blocks, at, cfg.MaxCodeBytes)
	})
	if err != nil {
		if errors.Is(err, mem.ErrNoSpace) {
			return nil, fmt.Errorf("%w: %v", ErrCodeBufferFull, err)
		}
		return nil, err
	}
	code := probe // size bookkeeping only; the installed bytes are relocated
	res := &Result{
		Addr:         addr,
		CodeSize:     len(code),
		Blocks:       len(t.blocks),
		TracedInstrs: t.tracedN,
		listing:      dumpBlocks(t.blocks),
	}
	res.Report = t.rep.build(fn, res, t.blocks)
	res.Report.Effort = cfg.Effort.String()
	publishRewriteTelemetry(res.Report)
	return res, nil
}

// BatchRequest is one rewrite in a RewriteBatch call.
type BatchRequest struct {
	Cfg   *Config
	Fn    uint64
	Args  []uint64
	FArgs []float64
}

// RewriteBatch performs several rewrites concurrently. Tracing only reads
// machine memory and code installation is serialized internally, so the
// requests are independent; the machine must not execute code while the
// batch runs. Results and errors are positional: a failed request leaves
// its Result nil and the other requests unaffected (the paper's
// incremental-failure model, per function).
//
// Deprecated: use Do per request, or internal/brewsvc for a managed worker
// pool with coalescing and caching.
func RewriteBatch(m *vm.Machine, reqs []BatchRequest) ([]*Result, []error) {
	results := make([]*Result, len(reqs))
	errs := make([]error, len(reqs))
	var wg sync.WaitGroup
	for i := range reqs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := reqs[i]
			out, err := Do(m, &Request{Config: r.Cfg, Fn: r.Fn, Args: r.Args, FArgs: r.FArgs})
			if err != nil {
				errs[i] = err
				return
			}
			results[i] = out.Result
		}(i)
	}
	wg.Wait()
	return results, errs
}
