package brew

import (
	"fmt"
	"math"

	"repro/internal/isa"
)

// addrState is the tracked state of an effective address.
type addrState struct {
	kind vKind
	val  uint64 // constant address, or delta from entry SP
}

func (a addrState) delta() int64 { return int64(a.val) }

// insMeta annotates one emitted instruction with its statically known
// frame access (delta relative to the entry SP), enabling the dead
// frame-store elimination pass.
type insMeta struct {
	frameStore bool
	frameLoad  bool
	delta      int64
	size       int64
}

// emit appends one captured instruction to the current block, accounting
// its encoded size against the code budget and annotating frame accesses.
func (t *tracer) emit(ins isa.Instr) error {
	ins.Addr = 0
	ins.Wide = false
	n, err := isa.EncodedLen(ins)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrUnsupported, err)
	}
	t.cur.ins = append(t.cur.ins, ins)
	t.cur.meta = append(t.cur.meta, t.frameMeta(ins))
	t.cur.bytes += n
	t.codeBytes += n
	t.rep.emitN++
	if t.codeBytes > t.cfg.MaxCodeBytes {
		return ErrCodeBufferFull
	}
	return nil
}

// frameMeta classifies an emitted instruction's stack-frame access. When
// an access cannot be attributed precisely, the whole frame is marked
// opaque, disabling dead-store elimination.
func (t *tracer) frameMeta(ins isa.Instr) insMeta {
	var m isa.MemRef
	var isStore, isLoad bool
	var size int64 = 8
	switch ins.Op {
	case isa.STORE, isa.FSTORE:
		m, isStore = ins.Dst.Mem, true
	case isa.STOREB:
		m, isStore, size = ins.Dst.Mem, true, 1
	case isa.VSTORE:
		m, isStore, size = ins.Dst.Mem, true, 8*isa.VecLanes
	case isa.LOAD, isa.FLOAD:
		m, isLoad = ins.Src.Mem, true
	case isa.LOADB:
		m, isLoad, size = ins.Src.Mem, true, 1
	case isa.VLOAD:
		m, isLoad, size = ins.Src.Mem, true, 8*isa.VecLanes
	case isa.PUSH, isa.PUSHF:
		delta, ok := t.w.spDelta()
		if !ok {
			t.frameOpaque = true
			return insMeta{}
		}
		return insMeta{frameStore: true, delta: delta - 8, size: 8}
	case isa.POP, isa.POPF:
		delta, ok := t.w.spDelta()
		if !ok {
			t.frameOpaque = true
			return insMeta{}
		}
		return insMeta{frameLoad: true, delta: delta, size: 8}
	default:
		return insMeta{}
	}
	usesSP := (m.HasBase() && m.Base == isa.SP) || (m.HasIndex() && m.Index == isa.SP)
	if !usesSP {
		return insMeta{}
	}
	delta, ok := t.w.spDelta()
	if !ok || m.HasIndex() || m.Base != isa.SP {
		t.frameOpaque = true
		return insMeta{}
	}
	return insMeta{frameStore: isStore, frameLoad: isLoad, delta: delta + int64(m.Disp), size: size}
}

// matInt makes the generated code hold register r's known value at runtime
// (the paper's compensation: "generate code to load the corresponding
// locations with their known values"). No-op for unknown or already
// materialized registers.
func (t *tracer) matInt(r isa.Reg) error {
	v := t.w.r[r]
	if !v.isKnown() || v.mat {
		return nil
	}
	switch v.kind {
	case vConst:
		if err := t.emit(isa.MakeRI(isa.MOVI, r, int64(v.val))); err != nil {
			return err
		}
		t.rep.overhead.Materializations++
	case vStackRel:
		delta, ok := t.w.spDelta()
		if !ok {
			return fmt.Errorf("%w: materializing stack-relative value with untracked SP", ErrUnsupported)
		}
		off := v.delta() - delta
		if off < math.MinInt32 || off > math.MaxInt32 {
			return fmt.Errorf("%w: stack offset %d out of range", ErrUnsupported, off)
		}
		if err := t.emit(isa.MakeRM(isa.LEA, r, isa.BaseDisp(isa.SP, int32(off)))); err != nil {
			return err
		}
		t.rep.overhead.Materializations++
	}
	v.mat = true
	t.w.r[r] = v
	return nil
}

// matFloat is matInt for the floating-point file.
func (t *tracer) matFloat(r isa.Reg) error {
	f := t.w.f[r]
	if !f.known || f.mat {
		return nil
	}
	ins := isa.Instr{Op: isa.FMOVI, Dst: isa.FRegOp(r), Src: isa.FImmOp(f.val)}
	if err := t.emit(ins); err != nil {
		return err
	}
	t.rep.overhead.Materializations++
	f.mat = true
	t.w.f[r] = f
	return nil
}

// inKnown reports whether [addr, addr+size) lies inside declared-known
// memory.
func (t *tracer) inKnown(addr uint64, size int) bool {
	end := addr + uint64(size)
	for _, r := range t.ranges {
		if addr >= r.Start && end <= r.End {
			return true
		}
	}
	return false
}

// readKnownMem returns the little-endian value of size bytes at a constant
// address if every byte is known: either a traced overlay write or
// declared-known memory read from the machine.
func (t *tracer) readKnownMem(addr uint64, size int) (uint64, bool) {
	var v uint64
	for i := size - 1; i >= 0; i-- {
		a := addr + uint64(i)
		if mb, ok := t.w.mem[a]; ok {
			if !mb.known {
				return 0, false
			}
			v = v<<8 | uint64(mb.b)
			continue
		}
		if !t.inKnown(a, 1) {
			return 0, false
		}
		b, err := t.m.Mem.Read8(a)
		if err != nil {
			return 0, false
		}
		v = v<<8 | uint64(b)
	}
	return v, true
}

// memAddr computes the tracked state of a memory operand's effective
// address.
func (t *tracer) memAddr(m isa.MemRef) addrState {
	acc := addrState{kind: vConst, val: uint64(int64(m.Disp))}
	if m.HasBase() {
		acc = addCombine(acc, t.w.r[m.Base], 1)
	}
	if m.HasIndex() {
		acc = addCombine(acc, t.w.r[m.Index], uint64(m.Scale))
	}
	return acc
}

func addCombine(a addrState, v ival, scale uint64) addrState {
	if a.kind == vUnknown {
		return a
	}
	switch v.kind {
	case vConst:
		a.val += v.val * scale
		return a
	case vStackRel:
		if scale == 1 && a.kind == vConst {
			return addrState{kind: vStackRel, val: uint64(v.delta() + int64(a.val))}
		}
		return addrState{kind: vUnknown}
	default:
		return addrState{kind: vUnknown}
	}
}

// foldMem rewrites a memory operand for emission, folding known registers
// into the displacement. Remaining registers hold runtime values (unknown)
// or are materialized.
func (t *tracer) foldMem(m isa.MemRef, st addrState) (isa.MemRef, error) {
	spDelta, spOK := t.w.spDelta()
	switch st.kind {
	case vConst:
		if st.val <= math.MaxInt32 {
			return isa.Abs(int32(st.val)), nil
		}
		return isa.MemRef{}, fmt.Errorf("%w: absolute address 0x%x out of range", ErrUnsupported, st.val)
	case vStackRel:
		if spOK {
			off := st.delta() - spDelta
			if off >= math.MinInt32 && off <= math.MaxInt32 {
				return isa.BaseDisp(isa.SP, int32(off)), nil
			}
		}
	}
	// Partial fold.
	nm := m
	nm.Wide = false
	disp := int64(m.Disp)
	if m.HasBase() {
		switch bv := t.w.r[m.Base]; bv.kind {
		case vConst:
			disp += int64(bv.val)
			nm.Base = isa.RegNone
		case vStackRel:
			if spOK {
				disp += bv.delta() - spDelta
				nm.Base = isa.SP
			} else {
				if err := t.matInt(m.Base); err != nil {
					return isa.MemRef{}, err
				}
			}
		}
	}
	if m.HasIndex() {
		switch iv := t.w.r[m.Index]; iv.kind {
		case vConst:
			disp += int64(iv.val) * int64(m.Scale)
			nm.Index = isa.RegNone
			nm.Scale = 1
		case vStackRel:
			if err := t.matInt(m.Index); err != nil {
				return isa.MemRef{}, err
			}
		}
	}
	if disp < math.MinInt32 || disp > math.MaxInt32 {
		return isa.MemRef{}, fmt.Errorf("%w: folded displacement %d out of range", ErrUnsupported, disp)
	}
	nm.Disp = int32(disp)
	return nm, nil
}

// emitMemHandler injects a callback before an emitted memory access
// (Section III.D): the effective address is delivered in R9, the
// condition flags are preserved via PUSHF/POPF, and R9's previous runtime
// value is saved and restored. The handler must preserve every register
// (R9 included) and may clobber only the flags, which the bracket
// restores anyway.
func (t *tracer) emitMemHandler(handler uint64, m isa.MemRef) error {
	if handler == 0 {
		return nil
	}
	savedR9 := t.w.r[isa.R9]
	savedFlags := t.w.flags
	savedDirty := t.w.fdirty

	delta, tracked := t.w.spDelta()
	adjust := func(nd int64) {
		if tracked {
			t.setInt(isa.SP, ival{kind: vStackRel, val: uint64(nd), mat: true})
		}
	}
	if err := t.emit(isa.MakeR(isa.PUSH, isa.R9)); err != nil {
		return err
	}
	adjust(delta - 8)
	if err := t.emit(isa.MakeNone(isa.PUSHF)); err != nil {
		return err
	}
	adjust(delta - 16)
	// The operand was folded against the pre-bracket SP; two pushes later
	// an SP-relative address needs +16.
	lm := m
	if lm.HasBase() && lm.Base == isa.SP {
		nd := int64(lm.Disp) + 16
		if nd > math.MaxInt32 {
			return fmt.Errorf("%w: handler operand displacement overflow", ErrUnsupported)
		}
		lm.Disp = int32(nd)
	}
	if err := t.emit(isa.MakeRM(isa.LEA, isa.R9, lm)); err != nil {
		return err
	}
	if err := t.emit(isa.MakeRel(isa.CALL, handler)); err != nil {
		return err
	}
	if err := t.emit(isa.MakeNone(isa.POPF)); err != nil {
		return err
	}
	adjust(delta - 8)
	if err := t.emit(isa.MakeR(isa.POP, isa.R9)); err != nil {
		return err
	}
	adjust(delta)
	t.rep.overhead.HandlerInstrs += 6 // PUSH/PUSHF/LEA/CALL/POPF/POP bracket
	t.rep.overhead.HandlerCalls++

	// Net effect on the world: the handler preserves registers and the
	// bracket restores R9 and the flags; only transient slots below the
	// current SP (the handler's frame) are clobbered.
	t.w.r[isa.R9] = savedR9
	t.w.flags = savedFlags
	t.w.fdirty = savedDirty
	if tracked {
		t.w.clearStackBelow(delta)
	} else {
		t.w.clearStack()
	}
	return nil
}

// stepLoad handles LOAD and LOADB.
func (t *tracer) stepLoad(ins isa.Instr) error {
	size := 8
	if ins.Op == isa.LOADB {
		size = 1
	}
	st := t.memAddr(ins.Src.Mem)
	switch st.kind {
	case vConst:
		// Data loads are operations and stay unknown under
		// ResultsUnknown.
		if !t.curOpts.ResultsUnknown {
			if v, ok := t.readKnownMem(st.val, size); ok {
				t.setInt(ins.Dst.Reg, konst(v))
				return nil
			}
		}
	case vStackRel:
		// A reload from a tracked frame slot is a register copy in
		// disguise (spill code), not an operation: it stays foldable even
		// under ResultsUnknown, mirroring the MOV exemption that lets
		// constants pass through as parameters (Section V.C).
		if slot, ok := t.w.readStack(st.delta(), uint8(size)); ok && slot.isKnown() {
			nv := slot
			nv.mat = false
			t.setInt(ins.Dst.Reg, nv)
			return nil
		}
	}
	m, err := t.foldMem(ins.Src.Mem, st)
	if err != nil {
		return err
	}
	if err := t.emitMemHandler(t.cfg.LoadHandler, m); err != nil {
		return err
	}
	if err := t.emit(isa.MakeRM(ins.Op, ins.Dst.Reg, m)); err != nil {
		return err
	}
	t.setInt(ins.Dst.Reg, unknown())
	return nil
}

// stepFLoad handles FLOAD.
func (t *tracer) stepFLoad(ins isa.Instr) error {
	st := t.memAddr(ins.Src.Mem)
	switch st.kind {
	case vConst:
		if !t.curOpts.ResultsUnknown {
			if v, ok := t.readKnownMem(st.val, 8); ok {
				t.w.f[ins.Dst.Reg] = fval{known: true, val: math.Float64frombits(v)}
				return nil
			}
		}
	case vStackRel:
		// Spill reloads stay foldable; see stepLoad.
		if slot, ok := t.w.readStack(st.delta(), 8); ok && slot.isConst() {
			t.w.f[ins.Dst.Reg] = fval{known: true, val: math.Float64frombits(slot.val)}
			return nil
		}
	}
	m, err := t.foldMem(ins.Src.Mem, st)
	if err != nil {
		return err
	}
	if err := t.emitMemHandler(t.cfg.LoadHandler, m); err != nil {
		return err
	}
	if err := t.emit(isa.MakeRM(isa.FLOAD, ins.Dst.Reg, m)); err != nil {
		return err
	}
	t.w.f[ins.Dst.Reg] = fval{}
	return nil
}

// stepStore handles STORE, STOREB and FSTORE. Stores are always emitted so
// the runtime memory and stack hold the true values at all times; tracking
// only licenses folding of later loads.
func (t *tracer) stepStore(ins isa.Instr) error {
	size := 8
	if ins.Op == isa.STOREB {
		size = 1
	}
	st := t.memAddr(ins.Dst.Mem)
	var sv ival
	if ins.Op == isa.FSTORE {
		if err := t.matFloat(ins.Src.Reg); err != nil {
			return err
		}
		if f := t.w.f[ins.Src.Reg]; f.known {
			sv = konst(math.Float64bits(f.val))
		} else {
			sv = unknown()
		}
	} else {
		if err := t.matInt(ins.Src.Reg); err != nil {
			return err
		}
		sv = t.w.r[ins.Src.Reg]
	}
	t.noteStore(st, size, sv)
	m, err := t.foldMem(ins.Dst.Mem, st)
	if err != nil {
		return err
	}
	if err := t.emitMemHandler(t.cfg.StoreHandler, m); err != nil {
		return err
	}
	return t.emit(isa.MakeMR(ins.Op, m, ins.Src.Reg))
}

// noteStore records the tracked effect of a store.
func (t *tracer) noteStore(st addrState, size int, v ival) {
	switch st.kind {
	case vConst:
		// The overlay only covers declared-known memory; everything else
		// is plain runtime memory.
		if t.inKnown(st.val, size) {
			if v.isConst() {
				t.w.overlayWrite(st.val, v.val, size)
			} else {
				t.w.poisonMem(st.val, size)
			}
		}
	case vStackRel:
		nv := v
		nv.mat = false
		if size == 1 {
			if nv.isConst() {
				nv = konst(nv.val & 0xFF)
			} else {
				nv = unknown()
			}
		}
		t.w.writeStack(st.delta(), uint8(size), nv)
	default:
		// A store through an unknown address may alias the caller-visible
		// stack region, and — only once a frame address has escaped into
		// a register — the private frame too (e.g. a local array indexed
		// by a runtime value). Declared-known memory is exempt by the
		// user's contract.
		if t.w.escaped {
			t.w.clearStack()
		} else {
			t.w.clearStackCallerVisible()
		}
	}
}
