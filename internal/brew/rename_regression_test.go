package brew_test

import (
	"testing"

	"repro/internal/brew"
)

// TestRenameSkipsInlinedSaveRestore is the regression test for a
// miscompilation found by the differential oracle (internal/oracle): after
// inlining, a captured block can contain the callee's own PUSH/POP
// save/restore pair mid-block. renameCalleeSaved used to exempt every
// PUSH/POP from renaming while renaming all body occurrences, so an outer
// value live in a callee-saved register across the inlined region moved to
// a caller-saved register — which the inlined body's scratch uses (renamed
// too, and no longer protected by the pair) then clobbered. The register
// pick also depended on map iteration order, so the bad rewrite appeared
// nondeterministically.
func TestRenameSkipsInlinedSaveRestore(t *testing.T) {
	m, im := load(t, `
outer:
    push r10
    mov  r10, r1
    call helper
    add  r0, r10
    pop  r10
    ret
helper:
    push r10
    mov  r10, r2
    imul r10, r10
    mov  r0, r10
    pop  r10
    ret
`)
	fn := im.MustEntry("outer")
	cfg := brew.NewConfig()
	res := mustRewrite(t, m, cfg, fn, nil, nil)
	// outer(a, b) = a + b*b; a survives in r10 across the inlined helper,
	// which scratches r10 under its own push/pop.
	got, err := m.Call(res.Addr, 7, 5)
	if err != nil || got != 32 {
		t.Fatalf("rewritten outer(7,5) = %d, %v; want 32\n%s", got, err, res.Listing())
	}
}

// TestRenameDeterministic: two rewrites of the same function must produce
// identical code — the rename candidate order is the prologue push order,
// not map iteration order.
func TestRenameDeterministic(t *testing.T) {
	src := `
f:
    push r10
    push r11
    push r12
    mov  r10, r1
    mov  r11, r2
    mov  r12, r3
    add  r10, r11
    imul r10, r12
    mov  r0, r10
    pop  r12
    pop  r11
    pop  r10
    ret
`
	var first string
	for i := 0; i < 8; i++ {
		m, im := load(t, src)
		fn := im.MustEntry("f")
		res := mustRewrite(t, m, brew.NewConfig(), fn, nil, nil)
		if i == 0 {
			first = res.Listing()
			continue
		}
		if res.Listing() != first {
			t.Fatalf("nondeterministic rewrite:\n--- first:\n%s\n--- run %d:\n%s", first, i, res.Listing())
		}
	}
}
