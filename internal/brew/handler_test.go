package brew_test

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/brew"
	"repro/internal/minc"
	"repro/internal/vm"
)

// Handlers used by injection tests: they satisfy the handler contract
// (preserve every register; the injection bracket protects the flags).
const handlerRuntime = `
entry_handler:
    push r8
    movi r8, entry_count
    push r9
    load r9, [r8]
    addi r9, 1
    store [r8], r9
    pop r9
    pop r8
    ret

exit_handler:
    push r8
    movi r8, exit_count
    push r9
    load r9, [r8]
    addi r9, 1
    store [r8], r9
    pop r9
    pop r8
    ret

; Records the accessed address (delivered in r9) into a ring buffer and
; counts accesses.
load_handler:
    push r8
    push r7
    movi r8, load_count
    load r7, [r8]
    addi r7, 1
    store [r8], r7
    ; ring slot = (count-1) % 8
    subi r7, 1
    andi r7, 7
    movi r8, load_ring
    store [r8+r7*8], r9
    pop r7
    pop r8
    ret

store_handler:
    push r8
    movi r8, store_count
    push r9
    load r9, [r8]
    addi r9, 1
    store [r8], r9
    pop r9
    pop r8
    ret

.data
entry_count: .quad 0
exit_count:  .quad 0
load_count:  .quad 0
store_count: .quad 0
load_ring:   .space 64
`

func TestExitHandlerInjection(t *testing.T) {
	m := vm.MustNew()
	rt, err := asm.Load(m, handlerRuntime)
	if err != nil {
		t.Fatal(err)
	}
	l, err := minc.CompileAndLink(m, `
long f(long a) {
    if (a > 10) { return a * 2; }
    return a + 1;
}
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	fn, _ := l.FuncAddr("f")
	cfg := brew.NewConfig()
	cfg.EntryHandler = rt.MustEntry("entry_handler")
	cfg.ExitHandler = rt.MustEntry("exit_handler")
	res, err := brew.Rewrite(m, cfg, fn, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Both return paths must fire the exit handler.
	for _, a := range []uint64{5, 50} {
		want, _ := m.Call(fn, a)
		got, err := m.Call(res.Addr, a)
		if err != nil || got != want {
			t.Fatalf("f(%d) = %d, %v; want %d", a, got, err, want)
		}
	}
	ec, _ := m.Mem.Read64(rt.MustEntry("entry_count"))
	xc, _ := m.Mem.Read64(rt.MustEntry("exit_count"))
	if ec != 2 || xc != 2 {
		t.Errorf("entry=%d exit=%d, want 2/2", ec, xc)
	}
}

func TestMemHandlerInjection(t *testing.T) {
	m := vm.MustNew()
	rt, err := asm.Load(m, handlerRuntime)
	if err != nil {
		t.Fatal(err)
	}
	l, err := minc.CompileAndLink(m, `
double sum3(double *a) {
    return a[0] + a[1] + a[2];
}
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	fn, _ := l.FuncAddr("sum3")
	arr, _ := m.AllocHeap(3 * 8)
	if err := m.WriteF64Slice(arr, []float64{1.5, 2.5, 3.5}); err != nil {
		t.Fatal(err)
	}
	cfg := brew.NewConfig()
	cfg.LoadHandler = rt.MustEntry("load_handler")
	res, err := brew.Rewrite(m, cfg, fn, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.CallFloat(res.Addr, []uint64{arr}, nil)
	if err != nil || got != 7.5 {
		t.Fatalf("sum3 = %g, %v", got, err)
	}
	lc, _ := m.Mem.Read64(rt.MustEntry("load_count"))
	if lc != 3 {
		t.Fatalf("load handler fired %d times, want 3\n%s", lc, res.Listing())
	}
	// The recorded addresses are the three array elements (in order).
	ring := rt.MustEntry("load_ring")
	for i := 0; i < 3; i++ {
		a, _ := m.Mem.Read64(ring + uint64(8*i))
		if a != arr+uint64(8*i) {
			t.Errorf("recorded address %d = 0x%x, want 0x%x", i, a, arr+uint64(8*i))
		}
	}
}

func TestMemHandlerPreservesLiveFlags(t *testing.T) {
	// A load sits between the comparison and the branch: the injected
	// callback must not corrupt the flags (PUSHF/POPF bracket).
	m := vm.MustNew()
	rt, err := asm.Load(m, handlerRuntime)
	if err != nil {
		t.Fatal(err)
	}
	im, err := asm.Load(m, `
f:
    cmp  r1, r2
    load r3, [d]       ; load between cmp and branch
    jlt  lt
    movi r0, 100
    add  r0, r3
    ret
lt:
    movi r0, 200
    add  r0, r3
    ret
.data
d: .quad 7
`)
	if err != nil {
		t.Fatal(err)
	}
	fn := im.MustEntry("f")
	cfg := brew.NewConfig()
	cfg.LoadHandler = rt.MustEntry("load_handler")
	res, err := brew.Rewrite(m, cfg, fn, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	cases := [][3]uint64{{1, 2, 207}, {5, 2, 107}, {3, 3, 107}}
	for _, c := range cases {
		got, err := m.Call(res.Addr, c[0], c[1])
		if err != nil || got != c[2] {
			t.Errorf("f(%d,%d) = %d, %v; want %d", c[0], c[1], got, err, c[2])
		}
	}
}

func TestStoreHandlerInjection(t *testing.T) {
	m := vm.MustNew()
	rt, err := asm.Load(m, handlerRuntime)
	if err != nil {
		t.Fatal(err)
	}
	l, err := minc.CompileAndLink(m, `
long fill(long *a, long n) {
    for (long i = 0; i < n; i++) { a[i] = i; }
    return n;
}
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	fn, _ := l.FuncAddr("fill")
	arr, _ := m.AllocHeap(8 * 8)
	cfg := brew.NewConfig()
	cfg.StoreHandler = rt.MustEntry("store_handler")
	// Only instrument data stores of the loop body; the function's own
	// frame traffic counts too, so compare against a known bound instead
	// of an exact count.
	res, err := brew.Rewrite(m, cfg, fn, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Call(res.Addr, arr, 8); err != nil {
		t.Fatal(err)
	}
	sc, _ := m.Mem.Read64(rt.MustEntry("store_count"))
	if sc < 8 {
		t.Errorf("store handler fired %d times, want >= 8", sc)
	}
	for i := 0; i < 8; i++ {
		v, _ := m.Mem.Read64(arr + uint64(8*i))
		if v != uint64(i) {
			t.Errorf("a[%d] = %d", i, v)
		}
	}
}
