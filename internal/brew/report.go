package brew

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/isa"
)

// Decision classification of one traced original instruction. Every traced
// instruction lands in exactly one class, so the four totals sum to
// TracedInstrs (the cmd/brew-trace accounting invariant).
const (
	classKept   = "kept"   // survived into the generated code
	classElided = "elided" // evaluated silently against the known world
	classFolded = "folded" // replaced by a cheaper form (immediate, strength
	//                          reduction, folded address)
	classInlined = "inlined" // call/return dissolved into the trace
)

// Decision aggregates what happened to one original instruction (by PC)
// across every time it was traced — a fully unrolled loop traces the same
// PC many times, possibly with different outcomes per iteration.
type Decision struct {
	PC      uint64 `json:"pc"`
	Op      string `json:"op"`
	Count   int    `json:"count"`
	Kept    int    `json:"kept,omitempty"`
	Elided  int    `json:"elided,omitempty"`
	Folded  int    `json:"folded,omitempty"`
	Inlined int    `json:"inlined,omitempty"`
	// Reason is the known-world justification recorded for the most recent
	// non-kept outcome at this PC.
	Reason string `json:"reason,omitempty"`
}

// BlockReport summarizes one captured basic block.
type BlockReport struct {
	ID         int    `json:"id"`
	Addr       uint64 `json:"addr,omitempty"` // 0 for compensation trampolines
	Trampoline bool   `json:"trampoline,omitempty"`
	Traced     int    `json:"traced"`
	Kept       int    `json:"kept,omitempty"`
	Elided     int    `json:"elided,omitempty"`
	Folded     int    `json:"folded,omitempty"`
	Inlined    int    `json:"inlined,omitempty"`
	Emitted    int    `json:"emitted"` // instructions in the final block body
}

// PassReport records one optimization pass's effect.
type PassReport struct {
	Name    string `json:"name"`
	Runs    int    `json:"runs"`
	Removed int    `json:"removed"` // instructions eliminated across all runs
}

// Overhead counts compensation instructions the rewriter added beyond the
// surviving originals.
type Overhead struct {
	Materializations int `json:"materializations,omitempty"` // MOVI/LEA/FMOVI reloads of known values
	HandlerInstrs    int `json:"handler_instrs,omitempty"`   // memory-handler brackets (Section III.D)
	HandlerCalls     int `json:"handler_calls,omitempty"`    // entry/exit handler calls
	TrampolineInstrs int `json:"trampoline_instrs,omitempty"`
}

// RewriteReport explains a Rewrite: per traced instruction, per block and
// per optimization pass, what was kept, elided, folded or inlined and why.
// It is always produced (tracing is not the emulated hot path) and rides
// on Result.Report.
type RewriteReport struct {
	Fn           uint64 `json:"fn"`
	Addr         uint64 `json:"addr"`
	CodeSize     int    `json:"code_size"`
	TracedInstrs int    `json:"traced_instrs"`

	Kept    int `json:"kept"`
	Elided  int `json:"elided"`
	Folded  int `json:"folded"`
	Inlined int `json:"inlined"`

	// EmittedTrace counts instructions captured during tracing (before
	// optimization), overhead included; EmittedFinal counts block-body
	// instructions after the optimization passes (terminators excluded —
	// they are synthesized at layout time).
	EmittedTrace int `json:"emitted_trace"`
	EmittedFinal int `json:"emitted_final"`

	InlinedCalls      int `json:"inlined_calls"`
	UnrollTraceOvers  int `json:"unroll_trace_overs"` // back edges traced through (loop unrolling)
	VariantMigrations int `json:"variant_migrations"` // threshold-forced state migrations

	Overhead Overhead `json:"overhead"`

	// Effort is the tier the rewrite ran at ("full" or "quick").
	Effort string `json:"effort,omitempty"`
	// PassWork sums the pre-pass instruction counts over every
	// optimization pass run — the deterministic pass-stack cost the E6
	// tiering benchmark charges against tier-1. Zero at EffortQuick.
	PassWork int `json:"pass_work,omitempty"`
	// OptSweeps records, per fixpoint sweep of the core pass loop, how
	// many instructions the sweep removed; the loop stops after the first
	// sweep that removes nothing, so the last entry is always 0 unless
	// the sweep bound was hit.
	OptSweeps []int `json:"opt_sweeps,omitempty"`

	Blocks    []BlockReport `json:"blocks"`
	Passes    []PassReport  `json:"passes"`
	Decisions []Decision    `json:"decisions"`
}

// ClassTotal returns Kept+Elided+Folded+Inlined; by construction it equals
// TracedInstrs.
func (r *RewriteReport) ClassTotal() int { return r.Kept + r.Elided + r.Folded + r.Inlined }

// JSON renders the report as indented JSON (deterministic: every slice is
// emitted in sorted order).
func (r *RewriteReport) JSON() ([]byte, error) { return json.MarshalIndent(r, "", "  ") }

// Text renders the report as a human-readable summary.
func (r *RewriteReport) Text() string {
	var b strings.Builder
	pct := func(n int) float64 {
		if r.TracedInstrs == 0 {
			return 0
		}
		return 100 * float64(n) / float64(r.TracedInstrs)
	}
	fmt.Fprintf(&b, "rewrite of 0x%x -> 0x%x (%d bytes)", r.Fn, r.Addr, r.CodeSize)
	if r.Effort != "" {
		fmt.Fprintf(&b, "  effort=%s", r.Effort)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "traced %d original instructions:\n", r.TracedInstrs)
	fmt.Fprintf(&b, "  kept    %6d  (%5.1f%%)\n", r.Kept, pct(r.Kept))
	fmt.Fprintf(&b, "  elided  %6d  (%5.1f%%)\n", r.Elided, pct(r.Elided))
	fmt.Fprintf(&b, "  folded  %6d  (%5.1f%%)\n", r.Folded, pct(r.Folded))
	fmt.Fprintf(&b, "  inlined %6d  (%5.1f%%)\n", r.Inlined, pct(r.Inlined))
	fmt.Fprintf(&b, "emitted: %d during trace, %d after passes\n", r.EmittedTrace, r.EmittedFinal)
	fmt.Fprintf(&b, "inlined calls: %d   unroll trace-overs: %d   variant migrations: %d\n",
		r.InlinedCalls, r.UnrollTraceOvers, r.VariantMigrations)
	fmt.Fprintf(&b, "overhead: %d materializations, %d handler instrs, %d handler calls, %d trampoline instrs\n",
		r.Overhead.Materializations, r.Overhead.HandlerInstrs, r.Overhead.HandlerCalls, r.Overhead.TrampolineInstrs)
	fmt.Fprintf(&b, "\nblocks (%d):\n", len(r.Blocks))
	for _, bl := range r.Blocks {
		if bl.Trampoline {
			fmt.Fprintf(&b, "  B%-3d <compensation trampoline>  emitted=%d\n", bl.ID, bl.Emitted)
			continue
		}
		fmt.Fprintf(&b, "  B%-3d @0x%-8x traced=%-6d kept=%-5d elided=%-6d folded=%-4d inlined=%-4d emitted=%d\n",
			bl.ID, bl.Addr, bl.Traced, bl.Kept, bl.Elided, bl.Folded, bl.Inlined, bl.Emitted)
	}
	fmt.Fprintf(&b, "\noptimization passes:\n")
	for _, p := range r.Passes {
		fmt.Fprintf(&b, "  %-20s runs=%-2d removed=%d\n", p.Name, p.Runs, p.Removed)
	}
	if len(r.OptSweeps) > 0 {
		fmt.Fprintf(&b, "  fixpoint sweeps: %d (removed per sweep %v), pass work %d instr-scans\n",
			len(r.OptSweeps), r.OptSweeps, r.PassWork)
	}
	fmt.Fprintf(&b, "\nper-instruction decisions (%d PCs):\n", len(r.Decisions))
	for _, d := range r.Decisions {
		var parts []string
		if d.Kept > 0 {
			parts = append(parts, fmt.Sprintf("kept=%d", d.Kept))
		}
		if d.Elided > 0 {
			parts = append(parts, fmt.Sprintf("elided=%d", d.Elided))
		}
		if d.Folded > 0 {
			parts = append(parts, fmt.Sprintf("folded=%d", d.Folded))
		}
		if d.Inlined > 0 {
			parts = append(parts, fmt.Sprintf("inlined=%d", d.Inlined))
		}
		fmt.Fprintf(&b, "  0x%-8x %-7s x%-6d %-28s", d.PC, d.Op, d.Count, strings.Join(parts, " "))
		if d.Reason != "" {
			fmt.Fprintf(&b, "  ; %s", d.Reason)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// reportBuilder accumulates decision data while the tracer runs. State is
// per-PC and per-block (both bounded by the original code and block count),
// never per trace event, so full unrolls stay cheap.
type reportBuilder struct {
	emitN int // instructions captured so far (emit + trampoline appends)

	// Per-step scratch, reset by beginStep.
	stepClass  string
	stepReason string

	totals   map[string]int
	perPC    map[uint64]*Decision
	perBlock map[int]*BlockReport

	inlinedCalls int
	traceOvers   int
	migrations   int
	overhead     Overhead

	passes    []*PassReport
	passIndex map[string]*PassReport
	passWork  int
	sweeps    []int
}

func newReportBuilder() *reportBuilder {
	return &reportBuilder{
		totals:    map[string]int{},
		perPC:     map[uint64]*Decision{},
		perBlock:  map[int]*BlockReport{},
		passIndex: map[string]*PassReport{},
	}
}

// beginStep snapshots the emission counter before one traced instruction.
func (rb *reportBuilder) beginStep() int {
	rb.stepClass = ""
	rb.stepReason = ""
	return rb.emitN
}

// classify pins the current traced instruction's class explicitly;
// endStep's emitted-delta heuristic only applies when no site did.
func (rb *reportBuilder) classify(class, reason string) {
	rb.stepClass = class
	rb.stepReason = reason
}

// note records a justification without forcing a class.
func (rb *reportBuilder) note(reason string) {
	if rb.stepReason == "" {
		rb.stepReason = reason
	}
}

// endStep classifies one successfully traced instruction.
func (rb *reportBuilder) endStep(blockID int, ins isa.Instr, emitBase int) {
	class := rb.stepClass
	if class == "" {
		if rb.emitN > emitBase {
			class = classKept
		} else {
			class = classElided
			if rb.stepReason == "" {
				rb.stepReason = "known world: evaluated silently"
			}
		}
	}
	rb.totals[class]++

	d := rb.perPC[ins.Addr]
	if d == nil {
		d = &Decision{PC: ins.Addr, Op: ins.Op.String()}
		rb.perPC[ins.Addr] = d
	}
	d.Count++
	switch class {
	case classKept:
		d.Kept++
	case classElided:
		d.Elided++
	case classFolded:
		d.Folded++
	case classInlined:
		d.Inlined++
	}
	if class != classKept && rb.stepReason != "" {
		d.Reason = rb.stepReason
	}

	br := rb.perBlock[blockID]
	if br == nil {
		br = &BlockReport{ID: blockID}
		rb.perBlock[blockID] = br
	}
	br.Traced++
	switch class {
	case classKept:
		br.Kept++
	case classElided:
		br.Elided++
	case classFolded:
		br.Folded++
	case classInlined:
		br.Inlined++
	}
}

func (rb *reportBuilder) pass(name string, scanned, removed int) {
	p := rb.passIndex[name]
	if p == nil {
		p = &PassReport{Name: name}
		rb.passIndex[name] = p
		rb.passes = append(rb.passes, p)
	}
	p.Runs++
	p.Removed += removed
	rb.passWork += scanned
}

// sweep records one fixpoint sweep of the core pass loop and its net
// instruction removal.
func (rb *reportBuilder) sweep(removed int) {
	rb.sweeps = append(rb.sweeps, removed)
}

// build assembles the final report from the builder and the optimized
// blocks. Every slice is sorted for byte-stable rendering.
func (rb *reportBuilder) build(fn uint64, res *Result, blocks []*eblock) *RewriteReport {
	r := &RewriteReport{
		Fn:                fn,
		Addr:              res.Addr,
		CodeSize:          res.CodeSize,
		TracedInstrs:      res.TracedInstrs,
		Kept:              rb.totals[classKept],
		Elided:            rb.totals[classElided],
		Folded:            rb.totals[classFolded],
		Inlined:           rb.totals[classInlined],
		EmittedTrace:      rb.emitN,
		InlinedCalls:      rb.inlinedCalls,
		UnrollTraceOvers:  rb.traceOvers,
		VariantMigrations: rb.migrations,
		Overhead:          rb.overhead,
		PassWork:          rb.passWork,
		OptSweeps:         append([]int(nil), rb.sweeps...),
	}
	for _, b := range blocks {
		br := rb.perBlock[b.id]
		if br == nil {
			br = &BlockReport{ID: b.id, Trampoline: b.addr == 0 && b.world == nil}
		}
		br.Addr = b.addr
		br.Emitted = len(b.ins)
		r.EmittedFinal += len(b.ins)
		r.Blocks = append(r.Blocks, *br)
	}
	sort.Slice(r.Blocks, func(i, j int) bool { return r.Blocks[i].ID < r.Blocks[j].ID })
	for _, p := range rb.passes {
		r.Passes = append(r.Passes, *p)
	}
	pcs := make([]uint64, 0, len(rb.perPC))
	for pc := range rb.perPC {
		pcs = append(pcs, pc)
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
	for _, pc := range pcs {
		r.Decisions = append(r.Decisions, *rb.perPC[pc])
	}
	return r
}
