package brew

import (
	"fmt"
	"math"
	"time"

	"repro/internal/isa"
	"repro/internal/vm"
)

// tracer carries the state of one Rewrite call: the block queue, the
// already-generated translations, and the state of the path currently being
// traced.
type tracer struct {
	cfg    *Config
	m      *vm.Machine
	ranges []MemRange // declared-known memory: config ranges + pointer params

	blocks    []*eblock
	keyed     map[blockKey]int
	sites     map[variantSite][]int
	queue     []int
	tracedN   int
	codeBytes int

	// Current path state.
	cur     *eblock
	w       *world
	frames  []frame
	curFn   uint64
	curOpts FuncOpts
	pc      uint64
	// Per-block trace-over counts for bounding inline unrolling of
	// unconditional back edges.
	overCount map[uint64]int
	// escapedEver / frameOpaque gate the dead frame-store elimination
	// pass: it only runs when every frame access was precisely
	// attributable and no frame address ever escaped.
	escapedEver bool
	frameOpaque bool

	// rep records per-instruction rewrite decisions for the RewriteReport.
	rep *reportBuilder

	// deadline, when set, bounds wall-clock tracing time (Budget.Deadline).
	deadline time.Time
}

func newTracer(m *vm.Machine, cfg *Config) *tracer {
	return &tracer{
		cfg:   cfg,
		m:     m,
		keyed: make(map[blockKey]int),
		sites: make(map[variantSite][]int),
		rep:   newReportBuilder(),
	}
}

// newBlock registers a pending translation for (addr, world, frames).
func (t *tracer) newBlock(addr uint64, w *world, frames []frame, fn uint64) (int, error) {
	if len(t.blocks) >= t.cfg.MaxBlocks {
		return 0, ErrTooManyBlocks
	}
	b := &eblock{
		id:     len(t.blocks),
		addr:   addr,
		world:  w,
		frames: append([]frame(nil), frames...),
		term:   termEnd,
		succ:   -1,
		jcc:    -1,
	}
	t.blocks = append(t.blocks, b)
	key := blockKey{addr: addr, wkey: w.key(), fkey: framesKey(b.frames)}
	t.keyed[key] = b.id
	site := variantSite{addr: addr, fkey: key.fkey}
	t.sites[site] = append(t.sites[site], b.id)
	t.queue = append(t.queue, b.id)
	// fn: function containing addr, used to look up per-function options.
	b.fnAddr = fn
	return b.id, nil
}

// run drives the yet-to-be-rewritten queue (paper, Section III.G).
func (t *tracer) run(entry uint64, w0 *world) error {
	if _, err := t.newBlock(entry, w0, nil, entry); err != nil {
		return err
	}
	for len(t.queue) > 0 {
		id := t.queue[0]
		t.queue = t.queue[1:]
		if err := t.traceBlock(id); err != nil {
			return err
		}
	}
	return nil
}

func (t *tracer) traceBlock(id int) error {
	b := t.blocks[id]
	t.cur = b
	t.w = b.world.clone()
	t.frames = append([]frame(nil), b.frames...)
	t.pc = b.addr
	t.curFn = b.fnAddr
	t.curOpts = t.cfg.optsFor(b.fnAddr)
	t.overCount = make(map[uint64]int)
	if t.cfg.EntryHandler != 0 && id == 0 {
		// Handlers preserve all registers by contract; only the runtime
		// flags are clobbered (Section III.D, injected profiling calls).
		if err := t.emit(isa.MakeRel(isa.CALL, t.cfg.EntryHandler)); err != nil {
			return err
		}
		t.rep.overhead.HandlerCalls++
		t.w.flags = flagval{}
		t.w.fdirty = false
	}
	for {
		if t.tracedN >= t.cfg.MaxTracedInstrs {
			return ErrTraceTooLong
		}
		if t.cfg.Inject != nil {
			if err := t.cfg.Inject(SiteTrace); err != nil {
				return err
			}
		}
		if !t.deadline.IsZero() && t.tracedN&1023 == 0 && time.Now().After(t.deadline) {
			return ErrDeadline
		}
		t.tracedN++
		ins, err := t.decode(t.pc)
		if err != nil {
			return err
		}
		base := t.rep.beginStep()
		done, err := t.step(ins)
		if err != nil {
			return err
		}
		t.rep.endStep(b.id, ins, base)
		if done {
			return nil
		}
	}
}

func (t *tracer) decode(pc uint64) (isa.Instr, error) {
	bs, err := t.m.Mem.FetchSlice(pc)
	if err != nil {
		return isa.Instr{}, fmt.Errorf("%w: %v", ErrBadCode, err)
	}
	ins, err := isa.Decode(bs, pc)
	if err != nil {
		return isa.Instr{}, fmt.Errorf("%w: %v", ErrBadCode, err)
	}
	return ins, nil
}

// step processes one traced instruction. It returns done=true when the
// current block is finished.
func (t *tracer) step(ins isa.Instr) (bool, error) {
	next := ins.Addr + uint64(ins.Len)
	t.pc = next

	switch ins.Op {
	case isa.NOP:
		return false, nil

	case isa.BRK:
		return false, t.emit(ins)

	case isa.HALT:
		if err := t.emit(ins); err != nil {
			return true, err
		}
		t.endBlock(termEnd, -1, -1, 0)
		return true, nil

	case isa.MOV, isa.ADD, isa.SUB, isa.IMUL, isa.IDIV, isa.IREM, isa.AND,
		isa.OR, isa.XOR, isa.SHL, isa.SHR, isa.SAR, isa.CMP, isa.TEST:
		return false, t.stepALU(ins, t.w.r[ins.Src.Reg], true)

	case isa.MOVI, isa.ADDI, isa.SUBI, isa.IMULI, isa.ANDI, isa.ORI,
		isa.XORI, isa.SHLI, isa.SHRI, isa.SARI, isa.CMPI:
		return false, t.stepALU(ins, konst(uint64(ins.Src.Imm)), false)

	case isa.NEG, isa.NOT:
		return false, t.stepALU1(ins)

	case isa.LEA:
		return false, t.stepLEA(ins)

	case isa.LOAD, isa.LOADB:
		return false, t.stepLoad(ins)

	case isa.STORE, isa.STOREB:
		return false, t.stepStore(ins)

	case isa.PUSH:
		return false, t.stepPush(ins)

	case isa.POP:
		return false, t.stepPop(ins)

	case isa.PUSHF:
		if err := t.emit(ins); err != nil {
			return false, err
		}
		if delta, ok := t.w.spDelta(); ok {
			nd := delta - 8
			t.setInt(isa.SP, ival{kind: vStackRel, val: uint64(nd), mat: true})
			t.w.writeStack(nd, 8, unknown())
		} else {
			t.w.clearStack()
		}
		return false, nil

	case isa.POPF:
		if err := t.emit(ins); err != nil {
			return false, err
		}
		if delta, ok := t.w.spDelta(); ok {
			t.setInt(isa.SP, ival{kind: vStackRel, val: uint64(delta + 8), mat: true})
		}
		// The restored runtime flags correspond to the traced flags at
		// the matching PUSHF, which we do not track: conservative
		// unknown+dirty (a later runtime flag reader fails the rewrite).
		t.w.flags = flagval{}
		t.w.fdirty = true
		return false, nil

	case isa.SETCC:
		return false, t.stepSetcc(ins)

	case isa.JMP:
		return t.stepJump(ins.Target())

	case isa.JMPR:
		v := t.w.r[ins.Dst.Reg]
		if !v.isConst() {
			return true, fmt.Errorf("%w: jmpr %s at 0x%x", ErrIndirectJump, ins.Dst.Reg, ins.Addr)
		}
		return t.stepJump(v.val)

	case isa.JCC:
		return t.stepJcc(ins)

	case isa.CALL:
		return t.stepCall(ins.Target(), next)

	case isa.CALLR:
		v := t.w.r[ins.Dst.Reg]
		if v.isConst() {
			return t.stepCall(v.val, next)
		}
		if v.kind == vStackRel {
			return true, fmt.Errorf("%w: call through stack address", ErrUnsupported)
		}
		// Unknown indirect call: keep it; the register holds the runtime
		// target.
		return false, t.emitCallInstr(ins)

	case isa.RET:
		return t.stepRet(ins)

	case isa.FMOV, isa.FADD, isa.FSUB, isa.FMUL, isa.FDIV, isa.FSQRT, isa.FCMP:
		return false, t.stepFPU(ins)

	case isa.FMOVI:
		t.w.f[ins.Dst.Reg] = fval{known: true, val: math.Float64frombits(uint64(ins.Src.Imm))}
		return false, nil

	case isa.FNEG:
		f := t.w.f[ins.Dst.Reg]
		if f.known {
			t.w.f[ins.Dst.Reg] = fval{known: true, val: -f.val}
			return false, nil
		}
		return false, t.emit(ins)

	case isa.FLOAD:
		return false, t.stepFLoad(ins)

	case isa.FSTORE:
		return false, t.stepStore(ins)

	case isa.CVTIF:
		v := t.w.r[ins.Src.Reg]
		if v.isConst() {
			t.w.f[ins.Dst.Reg] = fval{known: true, val: float64(int64(v.val))}
			return false, nil
		}
		if err := t.matInt(ins.Src.Reg); err != nil {
			return false, err
		}
		t.w.f[ins.Dst.Reg] = fval{}
		return false, t.emit(ins)

	case isa.CVTFI:
		f := t.w.f[ins.Src.Reg]
		if f.known {
			t.setInt(ins.Dst.Reg, konst(uint64(int64(f.val))))
			return false, nil
		}
		if err := t.matFloat(ins.Src.Reg); err != nil {
			return false, err
		}
		t.setInt(ins.Dst.Reg, unknown())
		return false, t.emit(ins)

	case isa.FMOVFI:
		f := t.w.f[ins.Src.Reg]
		if f.known {
			t.setInt(ins.Dst.Reg, konst(math.Float64bits(f.val)))
			return false, nil
		}
		if err := t.matFloat(ins.Src.Reg); err != nil {
			return false, err
		}
		t.setInt(ins.Dst.Reg, unknown())
		return false, t.emit(ins)

	case isa.FMOVIF:
		v := t.w.r[ins.Src.Reg]
		if v.isConst() {
			t.w.f[ins.Dst.Reg] = fval{known: true, val: math.Float64frombits(v.val)}
			return false, nil
		}
		if err := t.matInt(ins.Src.Reg); err != nil {
			return false, err
		}
		t.w.f[ins.Dst.Reg] = fval{}
		return false, t.emit(ins)

	case isa.VLOAD, isa.VSTORE, isa.VADD, isa.VSUB, isa.VMUL, isa.VBCAST, isa.VHADD:
		return false, t.stepVector(ins)
	}
	return true, fmt.Errorf("%w: opcode %s", ErrUnsupported, ins.Op)
}

// setInt writes an integer register's tracked state. A stack-relative
// value landing in a general register means a frame address is now
// observable by arbitrary code: the frame is marked escaped (see
// world.escaped).
func (t *tracer) setInt(r isa.Reg, v ival) {
	if v.kind == vStackRel && r != isa.SP {
		t.w.escaped = true
		t.escapedEver = true
	}
	t.w.r[r] = v
}

// silentFlags records flag effects of a silently evaluated instruction.
func (t *tracer) silentFlags(op isa.Opcode, fl isa.Flags, known bool) {
	if !isa.SetsFlags(op) {
		return
	}
	t.w.flags = flagval{known: known, fl: fl}
	t.w.fdirty = true
}

// emittedFlags records flag effects of an emitted instruction: the runtime
// flags become the live, true flags.
func (t *tracer) emittedFlags(op isa.Opcode) {
	if !isa.SetsFlags(op) {
		return
	}
	t.w.flags = flagval{}
	t.w.fdirty = false
}

// stepALU handles two-operand integer instructions; src is the tracked
// state of the source operand (a constant for immediate forms).
func (t *tracer) stepALU(ins isa.Instr, src ival, srcIsReg bool) error {
	op := ins.Op
	dst := ins.Dst.Reg
	d := t.w.r[dst]
	spDst := dst == isa.SP

	// ResultsUnknown (Section V.C): operations still execute, but their
	// results are forced unknown, which forces the emit path below. SP
	// stays exempt so frame addressing keeps working, and so do direct
	// constant loads: the paper notes that "called functions still get
	// specialized ... due to constant values directly passed through as
	// parameter", which requires plain MOV/MOVI of constants to stay
	// known.
	forceUnknown := t.curOpts.ResultsUnknown && !spDst &&
		op != isa.MOVI && !(op == isa.MOV && src.isKnown())

	// Fully known operands: evaluate silently. Under BranchesUnknown,
	// flag-setting operations are emitted anyway (the conditional jumps
	// they feed will be kept and need live runtime flags), but the result
	// stays known AND materialized because the emitted instruction
	// computes it at runtime.
	readsDst := op != isa.MOV && op != isa.MOVI
	if !forceUnknown && src.isConst() && (!readsDst || d.isConst()) && !spDst {
		a := d.val
		r, fl, writes, err := isa.EvalALU(op, a, src.val)
		if err != nil {
			return fmt.Errorf("%w: %v at 0x%x", ErrUnsupported, err, ins.Addr)
		}
		if t.curOpts.BranchesUnknown && isa.SetsFlags(op) {
			if err := t.emitALU(ins, src, srcIsReg); err != nil {
				return err
			}
			if writes {
				t.setInt(dst, ival{kind: vConst, val: r, mat: true})
			}
			t.emittedFlags(op)
			return nil
		}
		if writes {
			t.setInt(dst, konst(r))
		}
		t.silentFlags(op, fl, true)
		t.rep.note("operands known: evaluated at rewrite time")
		return nil
	}

	// MOV of a rematerializable value is a pure copy and can be elided;
	// MOV of an unknown (runtime) value must be emitted, because the value
	// only exists in the source register.
	if op == isa.MOV && !spDst && !forceUnknown && src.isKnown() {
		nv := src
		nv.mat = false
		t.setInt(dst, nv)
		t.rep.note("copy of rematerializable value")
		return nil
	}
	if op == isa.MOVI && !spDst && !forceUnknown {
		t.setInt(dst, konst(src.val))
		t.rep.note("constant load tracked, not emitted")
		return nil
	}

	// Stack-relative arithmetic: ADD/SUB of a constant keeps the value
	// symbolic. Anything writing SP is emitted so the runtime SP follows.
	if (op == isa.ADD || op == isa.ADDI || op == isa.SUB || op == isa.SUBI) && !forceUnknown {
		var nv ival
		ok := false
		switch {
		case d.kind == vStackRel && src.isConst():
			if op == isa.ADD || op == isa.ADDI {
				nv, ok = stackRel(d.delta()+int64(src.val)), true
			} else {
				nv, ok = stackRel(d.delta()-int64(src.val)), true
			}
		case d.isConst() && src.kind == vStackRel && (op == isa.ADD):
			nv, ok = stackRel(src.delta()+int64(d.val)), true
		}
		if ok && !spDst {
			t.setInt(dst, nv)
			t.w.flags = flagval{}
			t.w.fdirty = true
			t.rep.note("stack-relative arithmetic tracked symbolically")
			return nil
		}
		if ok && spDst {
			// Emit the SP adjustment, folding the source into an
			// immediate when possible; runtime SP tracks symbolic SP.
			if err := t.emitALU(ins, src, srcIsReg); err != nil {
				return err
			}
			nv.mat = true
			t.setInt(dst, nv)
			t.emittedFlags(op)
			return nil
		}
	}

	// MOV into SP with a known stack-relative source.
	if (op == isa.MOV || op == isa.MOVI) && spDst {
		if srcIsReg && src.kind == vStackRel {
			if err := t.matInt(ins.Src.Reg); err != nil {
				return err
			}
			if err := t.emit(ins); err != nil {
				return err
			}
			t.setInt(dst, ival{kind: vStackRel, val: src.val, mat: true})
			return nil
		}
		// SP becomes a constant or runtime value: emit and track.
		if err := t.emitALU(ins, src, srcIsReg); err != nil {
			return err
		}
		nv := unknown()
		if src.isConst() {
			nv = ival{kind: vConst, val: src.val, mat: true}
		}
		t.setInt(dst, nv)
		t.w.clearStack()
		return nil
	}

	// Known power-of-two divisors strength-reduce (Section III.A: index
	// computations depending on the runtime data distribution become
	// optimizable once the application has started).
	if (op == isa.IDIV || op == isa.IREM) && src.isConst() && !forceUnknown {
		if done, err := t.stepDivPow2(ins, src.val); done || err != nil {
			return err
		}
	}

	// Emit path.
	if err := t.emitALU(ins, src, srcIsReg); err != nil {
		return err
	}
	if op != isa.CMP && op != isa.CMPI && op != isa.TEST {
		nv := unknown()
		if spDst {
			// An emitted unexpected SP write: runtime value unknown.
			t.w.clearStack()
		}
		t.setInt(dst, nv)
	}
	t.emittedFlags(op)
	return nil
}

// emitALU emits a two-operand integer instruction, folding a constant
// source into the immediate form and materializing remaining known
// operands.
func (t *tracer) emitALU(ins isa.Instr, src ival, srcIsReg bool) error {
	op := ins.Op
	readsDst := op != isa.MOV && op != isa.MOVI
	if readsDst {
		if err := t.matInt(ins.Dst.Reg); err != nil {
			return err
		}
	}
	if srcIsReg {
		if src.isConst() {
			if ri, ok := isa.ImmForm(op); ok {
				ni := isa.MakeRI(ri, ins.Dst.Reg, int64(src.val))
				t.rep.classify(classFolded, "constant source folded to immediate form")
				return t.emit(ni)
			}
		}
		if err := t.matInt(ins.Src.Reg); err != nil {
			return err
		}
	}
	return t.emit(ins)
}

func (t *tracer) stepALU1(ins isa.Instr) error {
	d := t.w.r[ins.Dst.Reg]
	if ins.Dst.Reg != isa.SP && d.isConst() && !t.curOpts.ResultsUnknown &&
		!(ins.Op == isa.NEG && t.curOpts.BranchesUnknown) {
		r, fl, setsFl := isa.EvalALU1(ins.Op, d.val)
		t.setInt(ins.Dst.Reg, konst(r))
		if setsFl {
			t.silentFlags(ins.Op, fl, true)
		}
		t.rep.note("operand known: evaluated at rewrite time")
		return nil
	}
	if err := t.matInt(ins.Dst.Reg); err != nil {
		return err
	}
	if err := t.emit(ins); err != nil {
		return err
	}
	t.setInt(ins.Dst.Reg, unknown())
	if ins.Op == isa.NEG {
		t.emittedFlags(ins.Op)
	}
	return nil
}

func (t *tracer) stepLEA(ins isa.Instr) error {
	st := t.memAddr(ins.Src.Mem)
	if ins.Dst.Reg != isa.SP && !t.curOpts.ResultsUnknown {
		switch st.kind {
		case vConst:
			t.setInt(ins.Dst.Reg, konst(st.val))
			t.rep.note("effective address fully known")
			return nil
		case vStackRel:
			t.setInt(ins.Dst.Reg, ival{kind: vStackRel, val: st.val})
			t.rep.note("stack-relative address tracked symbolically")
			return nil
		}
	}
	m, err := t.foldMem(ins.Src.Mem, st)
	if err != nil {
		return err
	}
	if err := t.emit(isa.MakeRM(isa.LEA, ins.Dst.Reg, m)); err != nil {
		return err
	}
	if ins.Dst.Reg == isa.SP {
		switch st.kind {
		case vStackRel:
			t.setInt(isa.SP, ival{kind: vStackRel, val: st.val, mat: true})
		case vConst:
			t.setInt(isa.SP, ival{kind: vConst, val: st.val, mat: true})
			t.w.clearStack()
		default:
			t.setInt(isa.SP, unknown())
			t.w.clearStack()
		}
		return nil
	}
	t.setInt(ins.Dst.Reg, unknown())
	return nil
}

func (t *tracer) stepSetcc(ins isa.Instr) error {
	if t.w.flags.known && !t.curOpts.ResultsUnknown {
		v := uint64(0)
		if ins.CC.Holds(t.w.flags.fl) {
			v = 1
		}
		t.setInt(ins.Dst.Reg, konst(v))
		t.rep.note("condition flags known at rewrite time")
		return nil
	}
	if t.w.fdirty {
		return fmt.Errorf("%w: setcc reads dirty runtime flags at 0x%x", ErrUnsupported, ins.Addr)
	}
	if err := t.emit(ins); err != nil {
		return err
	}
	t.setInt(ins.Dst.Reg, unknown())
	return nil
}

func (t *tracer) stepFPU(ins isa.Instr) error {
	d, s := t.w.f[ins.Dst.Reg], t.w.f[ins.Src.Reg]
	op := ins.Op
	readsDst := op != isa.FMOV && op != isa.FSQRT
	if s.known && (!readsDst || d.known) && !t.curOpts.ResultsUnknown &&
		!(op == isa.FCMP && t.curOpts.BranchesUnknown) {
		r, fl, writes := isa.EvalFPU(op, d.val, s.val)
		if writes {
			t.w.f[ins.Dst.Reg] = fval{known: true, val: r}
		}
		if op == isa.FCMP {
			t.w.flags = flagval{known: true, fl: fl}
			t.w.fdirty = true
		}
		t.rep.note("fp operands known: evaluated at rewrite time")
		return nil
	}
	if op == isa.FMOV && !t.curOpts.ResultsUnknown && s.known {
		nv := s
		nv.mat = false
		t.w.f[ins.Dst.Reg] = nv
		t.rep.note("copy of rematerializable fp value")
		return nil
	}
	if readsDst {
		if err := t.matFloat(ins.Dst.Reg); err != nil {
			return err
		}
	}
	if err := t.matFloat(ins.Src.Reg); err != nil {
		return err
	}
	if err := t.emit(ins); err != nil {
		return err
	}
	if op != isa.FCMP {
		t.w.f[ins.Dst.Reg] = fval{}
	} else {
		t.w.flags = flagval{}
		t.w.fdirty = false
	}
	return nil
}

func (t *tracer) stepVector(ins isa.Instr) error {
	// Vector state is not tracked: operands fold, results are runtime
	// values. VBCAST needs its float source materialized.
	switch ins.Op {
	case isa.VLOAD:
		st := t.memAddr(ins.Src.Mem)
		m, err := t.foldMem(ins.Src.Mem, st)
		if err != nil {
			return err
		}
		if err := t.emitMemHandler(t.cfg.LoadHandler, m); err != nil {
			return err
		}
		return t.emit(isa.MakeRM(isa.VLOAD, ins.Dst.Reg, m))
	case isa.VSTORE:
		st := t.memAddr(ins.Dst.Mem)
		m, err := t.foldMem(ins.Dst.Mem, st)
		if err != nil {
			return err
		}
		t.noteStore(st, 8*isa.VecLanes, unknown())
		if err := t.emitMemHandler(t.cfg.StoreHandler, m); err != nil {
			return err
		}
		return t.emit(isa.MakeMR(isa.VSTORE, m, ins.Src.Reg))
	case isa.VBCAST:
		if err := t.matFloat(ins.Src.Reg); err != nil {
			return err
		}
		return t.emit(ins)
	case isa.VHADD:
		if err := t.emit(ins); err != nil {
			return err
		}
		t.w.f[ins.Dst.Reg] = fval{}
		return nil
	default:
		return t.emit(ins)
	}
}

func (t *tracer) stepPush(ins isa.Instr) error {
	if err := t.matInt(ins.Dst.Reg); err != nil {
		return err
	}
	if err := t.emit(ins); err != nil {
		return err
	}
	if delta, ok := t.w.spDelta(); ok {
		nd := delta - 8
		t.setInt(isa.SP, ival{kind: vStackRel, val: uint64(nd), mat: true})
		v := t.w.r[ins.Dst.Reg]
		v.mat = false
		t.w.writeStack(nd, 8, v)
	} else {
		t.w.clearStack()
	}
	return nil
}

func (t *tracer) stepPop(ins isa.Instr) error {
	if err := t.emit(ins); err != nil {
		return err
	}
	if delta, ok := t.w.spDelta(); ok {
		nv := unknown()
		if slot, found := t.w.readStack(delta, 8); found && slot.isKnown() {
			// The runtime stack always holds the true value because
			// stores are always emitted; the popped register is therefore
			// known AND materialized.
			nv = slot
			nv.mat = true
		}
		if ins.Dst.Reg == isa.SP {
			if nv.kind != vStackRel {
				t.w.clearStack()
			}
			nv.mat = true
			t.setInt(isa.SP, nv)
			return nil
		}
		t.setInt(ins.Dst.Reg, nv)
		t.setInt(isa.SP, ival{kind: vStackRel, val: uint64(delta + 8), mat: true})
	} else {
		t.setInt(ins.Dst.Reg, unknown())
	}
	return nil
}

// stepJump processes a direct jump or a trace-over to a known target.
func (t *tracer) stepJump(target uint64) (bool, error) {
	// If an identical translation exists, link to it.
	key := blockKey{addr: target, wkey: t.w.key(), fkey: framesKey(t.frames)}
	if id, ok := t.keyed[key]; ok {
		t.rep.classify(classKept, "jump to existing translation")
		t.endBlock(termFall, id, -1, 0)
		return true, nil
	}
	// Bound unrolling of unconditional back edges within one block chain.
	// This is a backstop against no-progress loops; genuine full unrolls
	// are bounded by the instruction and code-size budgets.
	const traceOverBudget = 4096
	t.overCount[target]++
	if t.overCount[target] > traceOverBudget {
		id, err := t.edgeTo(target)
		if err != nil {
			return true, err
		}
		t.rep.classify(classKept, "trace-over budget exhausted: edge kept")
		t.endBlock(termFall, id, -1, 0)
		return true, nil
	}
	// Trace over the jump (paper: "For unconditional jumps, we can proceed
	// as with calls without changes to the shadow stack").
	if target < t.pc {
		t.rep.traceOvers++ // back edge unrolled into the trace
		t.rep.note("back edge traced through (loop unrolled)")
	} else {
		t.rep.note("unconditional jump traced through")
	}
	t.pc = target
	return false, nil
}

func (t *tracer) stepJcc(ins isa.Instr) (bool, error) {
	if t.w.flags.known && !t.curOpts.BranchesUnknown {
		if ins.CC.Holds(t.w.flags.fl) {
			t.rep.note("branch direction known: taken")
			return t.stepJump(ins.Target())
		}
		t.rep.note("branch direction known: fall through")
		return false, nil
	}
	if t.w.fdirty {
		return true, fmt.Errorf("%w: conditional jump on dirty runtime flags at 0x%x", ErrUnsupported, ins.Addr)
	}
	// Diverging path: save the known-world state and enqueue both
	// successors (paper, Section III.F).
	takenID, err := t.edgeTo(ins.Target())
	if err != nil {
		return true, err
	}
	fallID, err := t.edgeTo(t.pc)
	if err != nil {
		return true, err
	}
	t.rep.classify(classKept, "runtime branch kept: both paths enqueued")
	t.endBlock(termJcc, fallID, takenID, ins.CC)
	return true, nil
}

func (t *tracer) stepRet(ins isa.Instr) (bool, error) {
	if len(t.frames) == 0 {
		delta, ok := t.w.spDelta()
		if !ok || delta != 0 {
			return true, fmt.Errorf("%w: return with unbalanced stack (delta=%d, tracked=%v)", ErrUnsupported, delta, ok)
		}
		// The return registers are live out: materialize known results.
		if err := t.matInt(isa.IntRet); err != nil {
			return true, err
		}
		if err := t.matFloat(0); err != nil {
			return true, err
		}
		if t.cfg.ExitHandler != 0 {
			if err := t.emit(isa.MakeRel(isa.CALL, t.cfg.ExitHandler)); err != nil {
				return true, err
			}
			t.rep.overhead.HandlerCalls++
		}
		if err := t.emit(ins); err != nil {
			return true, err
		}
		t.endBlock(termEnd, -1, -1, 0)
		return true, nil
	}
	// Inlined return: continue at the saved return address (paper,
	// Section III.E).
	fr := t.frames[len(t.frames)-1]
	delta, ok := t.w.spDelta()
	if !ok || delta != fr.delta {
		return true, fmt.Errorf("%w: inlined callee returns with unbalanced stack", ErrUnsupported)
	}
	t.rep.classify(classInlined, "return from inlined call")
	t.frames = t.frames[:len(t.frames)-1]
	t.curOpts = fr.opts
	t.curFn = fr.fn
	t.pc = fr.retAddr
	return false, nil
}

func (t *tracer) stepCall(target, next uint64) (bool, error) {
	if t.cfg.dynMarkers[target] {
		return false, t.stepMakeDynamic()
	}
	opts := t.cfg.optsFor(target)
	if opts.NoInline {
		return false, t.emitCallInstr(isa.MakeRel(isa.CALL, target))
	}
	if len(t.frames) >= t.cfg.MaxInlineDepth {
		return true, fmt.Errorf("%w: inlining %d deep at call to 0x%x", ErrInlineDepth, len(t.frames), target)
	}
	delta, ok := t.w.spDelta()
	if !ok {
		return true, fmt.Errorf("%w: call with untracked stack pointer", ErrUnsupported)
	}
	// Inline: no return-address push is emitted; the shadow stack
	// remembers where to continue.
	t.rep.classify(classInlined, "call inlined into trace")
	t.rep.inlinedCalls++
	t.frames = append(t.frames, frame{retAddr: next, fn: t.curFn, delta: delta, opts: t.curOpts})
	t.curFn = target
	t.curOpts = opts
	t.pc = target
	return false, nil
}

// stepMakeDynamic replaces a call to a registered makeDynamic marker with
// "result = argument, result unknown" (paper, Section V.C).
func (t *tracer) stepMakeDynamic() error {
	t.rep.classify(classFolded, "makeDynamic marker: result forced unknown")
	if err := t.matInt(isa.IntArgRegs[0]); err != nil {
		return err
	}
	if err := t.emit(isa.MakeRR(isa.MOV, isa.IntRet, isa.IntArgRegs[0])); err != nil {
		return err
	}
	t.setInt(isa.IntRet, unknown())
	// The marker behaves like a call: caller-saved registers are dead.
	t.clobberCallerSaved()
	return nil
}

// stepDivPow2 strength-reduces a signed division/remainder by a known
// positive power-of-two divisor. It needs a scratch register; any register
// whose tracked value is rematerializable can be clobbered (its runtime
// content is recreated on the next materialization). Returns done=false
// when no reduction applies, leaving the generic emit path to handle the
// instruction.
func (t *tracer) stepDivPow2(ins isa.Instr, d uint64) (bool, error) {
	dst := ins.Dst.Reg
	if d == 0 || d&(d-1) != 0 {
		return false, nil
	}
	if d == 1 {
		t.rep.note("division by 1 eliminated")
		// x/1 = x (even for unknown x); x%1 = 0. Original flags are based
		// on the result; runtime flags go stale.
		if ins.Op == isa.IREM {
			t.setInt(dst, konst(0))
			t.silentFlags(isa.IREM, isa.Flags{Z: true}, true)
		} else {
			dv := t.w.r[dst]
			fl := isa.Flags{}
			known := false
			if dv.isConst() {
				fl = isa.Flags{Z: dv.val == 0, S: int64(dv.val) < 0}
				known = true
			}
			t.w.flags = flagval{known: known, fl: fl}
			t.w.fdirty = true
		}
		return true, nil
	}
	var k int64
	for v := d; v > 1; v >>= 1 {
		k++
	}
	// Scratch: a rematerializable register other than the dividend. The
	// divisor register itself qualifies — its value is folded into
	// immediates and recreated on the next materialization.
	scratch := isa.RegNone
	for r := isa.Reg(0); r < isa.NumRegs; r++ {
		if r == dst || r == isa.SP {
			continue
		}
		if t.w.r[r].isKnown() {
			scratch = r
			break
		}
	}
	if scratch == isa.RegNone {
		return false, nil
	}
	if err := t.matInt(dst); err != nil {
		return true, err
	}
	t.rep.classify(classFolded, "power-of-two division strength-reduced to shifts")
	mask := int64(d) - 1
	var seq []isa.Instr
	if ins.Op == isa.IDIV {
		// q = (x + ((x >> 63) & (d-1))) >> k, rounding toward zero.
		seq = []isa.Instr{
			isa.MakeRR(isa.MOV, scratch, dst),
			isa.MakeRI(isa.SARI, scratch, 63),
			isa.MakeRI(isa.ANDI, scratch, mask),
			isa.MakeRR(isa.ADD, dst, scratch),
			isa.MakeRI(isa.SARI, dst, k),
		}
	} else {
		// r = x - ((x + bias) &^ (d-1)), where bias = (x>>63) & (d-1).
		seq = []isa.Instr{
			isa.MakeRR(isa.MOV, scratch, dst),
			isa.MakeRI(isa.SARI, dst, 63),
			isa.MakeRI(isa.ANDI, dst, mask),
			isa.MakeRR(isa.ADD, dst, scratch),
			isa.MakeRI(isa.ANDI, dst, ^mask),
			isa.MakeRR(isa.SUB, scratch, dst),
			isa.MakeRR(isa.MOV, dst, scratch),
		}
	}
	for _, s := range seq {
		if err := t.emit(s); err != nil {
			return true, err
		}
	}
	// The scratch register's runtime content is garbage now; its tracked
	// value survives unmaterialized.
	sv := t.w.r[scratch]
	sv.mat = false
	t.w.r[scratch] = sv
	t.setInt(dst, unknown())
	// Runtime flags do not match the original IDIV/IREM result flags.
	t.w.flags = flagval{}
	t.w.fdirty = true
	return true, nil
}

// emitCallInstr emits a kept (non-inlined) call: known ABI argument
// registers are materialized ("compensation code to make registers
// 'unknown' which are parameters according to the ABI"), caller-saved
// registers are dead afterwards, callee-saved registers keep their state.
func (t *tracer) emitCallInstr(ins isa.Instr) error {
	for _, r := range isa.IntArgRegs {
		if err := t.matInt(r); err != nil {
			return err
		}
	}
	for _, r := range isa.FloatArgRegs {
		if err := t.matFloat(r); err != nil {
			return err
		}
	}
	if err := t.emit(ins); err != nil {
		return err
	}
	t.clobberCallerSaved()
	return nil
}

func (t *tracer) clobberCallerSaved() {
	for r := isa.Reg(0); r < isa.NumRegs; r++ {
		if isa.CallerSavedInt(r) {
			t.setInt(r, unknown())
		}
		if isa.CallerSavedFloat(r) {
			t.w.f[r] = fval{}
		}
	}
	t.w.flags = flagval{}
	t.w.fdirty = false
	// The callee clobbers dead space below the current SP and — if frame
	// addresses escaped — possibly the whole frame; the caller-visible
	// region may be written through any pointer the callee holds.
	if t.w.escaped {
		t.w.clearStack()
	} else {
		if delta, ok := t.w.spDelta(); ok {
			t.w.clearStackBelow(delta)
		} else {
			t.w.clearStack()
		}
		t.w.clearStackCallerVisible()
	}
	t.w.clearMem()
}

// endBlock finalizes the current block's terminator.
func (t *tracer) endBlock(kind termKind, succ, jccTarget int, cc isa.Cond) {
	t.cur.term = kind
	t.cur.succ = succ
	t.cur.jcc = jccTarget
	t.cur.cc = cc
}

// edgeTo resolves a control-flow edge into state (addr, current world,
// current frames): an existing identical translation, a new pending block,
// or — once the per-address variant threshold is reached — a migration to
// an existing or generalized known-world state with compensation code
// (paper, Section III.F).
func (t *tracer) edgeTo(addr uint64) (int, error) {
	key := blockKey{addr: addr, wkey: t.w.key(), fkey: framesKey(t.frames)}
	if id, ok := t.keyed[key]; ok {
		return id, nil
	}
	site := variantSite{addr: addr, fkey: key.fkey}
	ids := t.sites[site]
	if len(ids) < t.cfg.maxVariants(t.curOpts) {
		return t.newBlock(addr, t.w.clone(), t.frames, t.curFn)
	}
	// Threshold reached: find the compatible existing translation needing
	// the least compensation.
	t.rep.migrations++
	best, bestCost := -1, int(^uint(0)>>1)
	var bestI, bestF []isa.Reg
	for _, id := range ids {
		tb := t.blocks[id]
		ic, fc, ok := compat(t.w, tb.world)
		if ok && len(ic)+len(fc) < bestCost {
			best, bestCost, bestI, bestF = id, len(ic)+len(fc), ic, fc
		}
	}
	if best >= 0 {
		return t.trampolineTo(best, bestI, bestF)
	}
	// No migration possible: generalize towards unknown (terminates at
	// the all-unknown state).
	others := make([]*world, 0, len(ids))
	for _, id := range ids {
		others = append(others, t.blocks[id].world)
	}
	gw := generalize(t.w, others)
	gkey := blockKey{addr: addr, wkey: gw.key(), fkey: key.fkey}
	if id, ok := t.keyed[gkey]; ok {
		ic, fc, ok2 := compat(t.w, t.blocks[id].world)
		if !ok2 {
			return 0, fmt.Errorf("%w: generalized world incompatible", ErrUnsupported)
		}
		return t.trampolineTo(id, ic, fc)
	}
	id, err := t.newBlock(addr, gw, t.frames, t.curFn)
	if err != nil {
		return 0, err
	}
	ic, fc, ok := compat(t.w, gw)
	if !ok {
		return 0, fmt.Errorf("%w: world does not reach its own generalization", ErrUnsupported)
	}
	return t.trampolineTo(id, ic, fc)
}

// trampolineTo links to target, inserting a compensation block that
// materializes the listed registers when needed.
func (t *tracer) trampolineTo(target int, intRegs, fRegs []isa.Reg) (int, error) {
	if len(intRegs) == 0 && len(fRegs) == 0 {
		return target, nil
	}
	if len(t.blocks) >= t.cfg.MaxBlocks {
		return 0, ErrTooManyBlocks
	}
	tb := &eblock{id: len(t.blocks), term: termFall, succ: target, jcc: -1}
	t.blocks = append(t.blocks, tb)
	delta, _ := t.w.spDelta()
	for _, r := range intRegs {
		v := t.w.r[r]
		var ins isa.Instr
		switch v.kind {
		case vConst:
			ins = isa.MakeRI(isa.MOVI, r, int64(v.val))
		case vStackRel:
			off := v.delta() - delta
			if off < math.MinInt32 || off > math.MaxInt32 {
				return 0, fmt.Errorf("%w: compensation offset out of range", ErrUnsupported)
			}
			ins = isa.MakeRM(isa.LEA, r, isa.BaseDisp(isa.SP, int32(off)))
		default:
			continue
		}
		n, err := isa.EncodedLen(ins)
		if err != nil {
			return 0, err
		}
		tb.ins = append(tb.ins, ins)
		tb.meta = append(tb.meta, insMeta{})
		tb.bytes += n
		t.codeBytes += n
		t.rep.emitN++
		t.rep.overhead.TrampolineInstrs++
	}
	for _, r := range fRegs {
		f := t.w.f[r]
		if !f.known {
			continue
		}
		ins := isa.Instr{Op: isa.FMOVI, Dst: isa.FRegOp(r), Src: isa.FImmOp(f.val)}
		n, err := isa.EncodedLen(ins)
		if err != nil {
			return 0, err
		}
		tb.ins = append(tb.ins, ins)
		tb.meta = append(tb.meta, insMeta{})
		tb.bytes += n
		t.codeBytes += n
		t.rep.emitN++
		t.rep.overhead.TrampolineInstrs++
	}
	if t.codeBytes > t.cfg.MaxCodeBytes {
		return 0, ErrCodeBufferFull
	}
	return tb.id, nil
}
