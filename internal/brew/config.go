// Package brew implements the paper's contribution: a minimal, low-level
// API for programmer-controlled binary rewriting at runtime ("BREW", Binary
// REWriting). Given the address of a compiled function and a configuration
// declaring which parameters and memory regions may be assumed constant,
// Rewrite traces the function's machine code instruction by instruction,
// maintains a known-world state, and captures a specialized version:
// operations on known values are evaluated at rewrite time (automatic
// constant propagation / partial evaluation), calls with known targets are
// inlined, and loop unrolling is controlled per function (paper, Section
// III).
//
// Failure is never catastrophic: every error leaves the original function
// intact and usable (Section III.G).
package brew

import (
	"errors"
	"time"

	"repro/internal/isa"
)

// Rewriting failures. All of them mean "keep using the original function".
var (
	// ErrIndirectJump reports an indirect jump whose target is not known at
	// rewrite time (paper: "we currently signal failure if we trace an
	// indirect unknown jump").
	ErrIndirectJump = errors.New("brew: indirect jump to unknown target")
	// ErrTraceTooLong reports that tracing exceeded Config.MaxTracedInstrs.
	ErrTraceTooLong = errors.New("brew: trace exceeds instruction budget")
	// ErrTooManyBlocks reports that block discovery exceeded
	// Config.MaxBlocks.
	ErrTooManyBlocks = errors.New("brew: too many basic blocks")
	// ErrInlineDepth reports that inlining exceeded Config.MaxInlineDepth.
	ErrInlineDepth = errors.New("brew: inline depth exceeded")
	// ErrCodeBufferFull reports that the generated code exceeds the
	// configured buffer size (paper: "when buffers run out of space").
	ErrCodeBufferFull = errors.New("brew: code buffer full")
	// ErrBadCode reports undecodable or ill-formed input code.
	ErrBadCode = errors.New("brew: cannot decode input code")
	// ErrUnsupported reports a traced construct the rewriter does not
	// handle (e.g. SP escaping into arbitrary arithmetic).
	ErrUnsupported = errors.New("brew: unsupported construct")
	// ErrBadConfig reports an invalid configuration.
	ErrBadConfig = errors.New("brew: invalid configuration")
	// ErrDeadline reports that a rewrite exceeded its wall-clock budget
	// (Budget.Deadline).
	ErrDeadline = errors.New("brew: rewrite wall-clock deadline exceeded")
	// ErrRewritePanic reports an internal rewriter panic converted into an
	// error: the host keeps running and the original function stays valid.
	ErrRewritePanic = errors.New("brew: rewrite panicked")
	// ErrDegraded marks a rewrite failure converted into transparent
	// fallback by RewriteOrDegrade: the returned Result addresses the
	// original function. It always wraps the underlying cause.
	ErrDegraded = errors.New("brew: specialization degraded to original")
)

// ParamClass declares the rewriter's assumption about one parameter
// (paper: BREW_KNOWN, BREW_PTR_TOKNOWN; unknown is the default).
type ParamClass uint8

// Parameter classes.
const (
	// ParamUnknown: the parameter is a runtime value (default).
	ParamUnknown ParamClass = iota
	// ParamKnown: the value passed to Rewrite is assumed constant in the
	// specialized version; callers of the result must pass the same value
	// (they may also pass anything if the function provably ignores it, as
	// the paper's Figure 3 does — the specialized code never reads it).
	ParamKnown
	// ParamPtrToKnown: like ParamKnown, and additionally the Size bytes
	// the pointer refers to are assumed constant data (the paper marks the
	// stencil struct this way).
	ParamPtrToKnown
)

// paramSpec is one parameter assumption.
type paramSpec struct {
	class ParamClass
	size  uint64 // for ParamPtrToKnown
}

// MemRange marks [Start, End) as known, fixed data.
type MemRange struct {
	Start, End uint64
}

// FuncOpts carries per-function tracing options, keyed by the function's
// start address (paper, Section III.C: "a rewriter configuration provides
// the options for functions given their start address").
type FuncOpts struct {
	// NoInline keeps calls to this function as calls in the generated code
	// instead of tracing into it; the rewriter emits compensation making
	// ABI argument registers materialized and treats caller-saved
	// registers as dead afterwards.
	NoInline bool
	// BranchesUnknown treats every conditional jump in the function as
	// having an unknown condition, even when the flags are known. This is
	// the paper's switch for avoiding complete loop unrolling.
	BranchesUnknown bool
	// ResultsUnknown forces every value created by an operation in the
	// function to be unknown (parameters keep their state). The paper's
	// "brute force approach" from Section V.C.
	ResultsUnknown bool
	// MaxVariants overrides Config.MaxVariantsPerAddr for blocks of this
	// function when positive.
	MaxVariants int
	// UnrollFactor enables the paper's controlled unrolling ("With
	// controlled unrolling (such as four-times) ...", Section V.B): loops
	// with known trip state are peeled this many times and then close
	// into a residual loop via known-world-state generalization. It is
	// sugar for BranchesUnknown with MaxVariants set to the factor.
	UnrollFactor int
}

// normalized resolves option sugar.
func (o FuncOpts) normalized() FuncOpts {
	if o.UnrollFactor > 0 {
		o.BranchesUnknown = true
		if o.MaxVariants == 0 {
			o.MaxVariants = o.UnrollFactor
		}
	}
	return o
}

// Budget tightens the resource bounds of one rewrite attempt beyond the
// structural Config limits. A server calling Rewrite on a hot path sets a
// Budget so a pathological specialization request degrades to the generic
// function quickly instead of stalling the host. Zero fields are "no extra
// bound"; non-zero fields only ever lower the corresponding Config limit.
type Budget struct {
	// MaxTracedInstrs caps instructions visited during tracing.
	MaxTracedInstrs int
	// MaxEmittedBytes caps generated code size (tightens MaxCodeBytes).
	MaxEmittedBytes int
	// Deadline caps wall-clock time spent tracing. Checked every 1024
	// traced instructions, so overshoot is bounded by a short burst.
	Deadline time.Duration
}

// Injection/observation sites for the Config.Inject hook, in pipeline
// order. internal/faultinject arms deterministic faults at these points.
const (
	// SiteTrace fires before every traced instruction.
	SiteTrace = "trace"
	// SiteOptimize fires before the optimization passes.
	SiteOptimize = "optimize"
	// SiteLayout fires before the layout/size probe.
	SiteLayout = "layout"
	// SiteInstall fires before JIT allocation and installation.
	SiteInstall = "install"
	// SiteDispatch fires before guard-dispatcher installation
	// (RewriteGuarded only).
	SiteDispatch = "dispatch"
)

// Config configures one Rewrite call. The zero value is NOT usable; call
// NewConfig (the analogue of the paper's brew_initConf).
type Config struct {
	intParams   [len(isa.IntArgRegs)]paramSpec
	floatParams [len(isa.FloatArgRegs)]ParamClass
	knownRanges []MemRange
	funcOpts    map[uint64]FuncOpts
	dynMarkers  map[uint64]bool

	// Defaults applies to every function without explicit FuncOpts.
	Defaults FuncOpts

	// MaxTracedInstrs bounds total traced instructions (default 4M).
	MaxTracedInstrs int
	// MaxBlocks bounds discovered basic-block variants (default 4096).
	MaxBlocks int
	// MaxInlineDepth bounds the shadow-stack depth (default 32).
	MaxInlineDepth int
	// MaxVariantsPerAddr is the paper's threshold for specialized versions
	// of the same original code; reaching it triggers known-world-state
	// migration (default 16).
	MaxVariantsPerAddr int
	// MaxCodeBytes bounds the generated code size (default 256 KiB).
	MaxCodeBytes int

	// EntryHandler, if nonzero, is a function address called on entry of
	// the rewritten function (profiling injection, Section III.D).
	EntryHandler uint64
	// ExitHandler, if nonzero, is called right before every return.
	ExitHandler uint64
	// LoadHandler/StoreHandler, if nonzero, are called before every
	// emitted data load/store with the effective address in R9 (Section
	// III.D: "Other interesting points for callbacks include memory
	// accesses"; Section VIII uses this to detect remote accesses). The
	// handler contract: R9 holds the address, all registers including R9
	// must be preserved, only the flags may be clobbered. R9's previous
	// value is saved and restored around the callback by generated code.
	LoadHandler  uint64
	StoreHandler uint64

	// Budget, when non-nil, tightens the structural limits for this
	// rewrite attempt (see Budget). The original function is unaffected by
	// a budget-exhausted attempt.
	Budget *Budget

	// Inject, when non-nil, is consulted at the named pipeline sites
	// (Site* constants). A non-nil return fails the site with that error;
	// a panicking hook exercises the panic-recovery path. This is the
	// deterministic fault-injection seam internal/faultinject drives; it
	// must be nil in production configurations.
	Inject func(site string) error

	// Vectorize enables the greedy vectorization pass over the captured
	// straight-line code (the paper's planned Section IV/V.B pass).
	// Horizontal reduction reassociates floating-point additions, so
	// results may differ in the last bits from the original — the same
	// contract as a compiler's -ffast-math.
	Vectorize bool

	// Effort selects the rewrite tier. The zero value, EffortFull, is
	// today's complete pipeline. EffortQuick (tier-0) skips the
	// optimization pass stack and vectorization — fastest
	// time-to-first-specialized-call, observably equivalent code.
	Effort Effort
}

// NewConfig returns a Config with library defaults (brew_initConf).
func NewConfig() *Config {
	return &Config{
		funcOpts:           make(map[uint64]FuncOpts),
		dynMarkers:         make(map[uint64]bool),
		MaxTracedInstrs:    4 << 20,
		MaxBlocks:          4096,
		MaxInlineDepth:     32,
		MaxVariantsPerAddr: 16,
		MaxCodeBytes:       256 << 10,
	}
}

// SetParam declares integer parameter i (1-based, as in the paper's
// brew_setpar) known or unknown.
func (c *Config) SetParam(i int, class ParamClass) *Config {
	if i >= 1 && i <= len(c.intParams) && class != ParamPtrToKnown {
		c.intParams[i-1] = paramSpec{class: class}
	}
	return c
}

// SetParamPtrToKnown declares integer parameter i a pointer to size bytes
// of known, fixed data (BREW_PTR_TOKNOWN). The size argument makes the
// extent explicit, which the paper leaves implicit in its C prototype.
func (c *Config) SetParamPtrToKnown(i int, size uint64) *Config {
	if i >= 1 && i <= len(c.intParams) {
		c.intParams[i-1] = paramSpec{class: ParamPtrToKnown, size: size}
	}
	return c
}

// SetFloatParam declares floating-point parameter i (1-based) known or
// unknown.
func (c *Config) SetFloatParam(i int, class ParamClass) *Config {
	if i >= 1 && i <= len(c.floatParams) && class != ParamPtrToKnown {
		c.floatParams[i-1] = class
	}
	return c
}

// IntParamClass returns the declared class of integer parameter i
// (1-based) and, for ParamPtrToKnown, the declared pointee size. Out-of-
// range indices are ParamUnknown. The differential oracle uses this to
// generate argument vectors consistent with the configuration.
func (c *Config) IntParamClass(i int) (ParamClass, uint64) {
	if i < 1 || i > len(c.intParams) {
		return ParamUnknown, 0
	}
	s := c.intParams[i-1]
	return s.class, s.size
}

// FloatParamClass returns the declared class of floating-point parameter i
// (1-based); out-of-range indices are ParamUnknown.
func (c *Config) FloatParamClass(i int) ParamClass {
	if i < 1 || i > len(c.floatParams) {
		return ParamUnknown
	}
	return c.floatParams[i-1]
}

// FrozenRanges returns the memory ranges a specialization built under the
// given rewrite-time arguments assumes frozen: the explicit SetMemRange
// ranges plus the pointee range of every ParamPtrToKnown parameter. The
// specialization manager (internal/specmgr) arms write-watchpoints over
// exactly these ranges, so any store into them deoptimizes the stale code.
func (c *Config) FrozenRanges(args []uint64) []MemRange {
	out := append([]MemRange(nil), c.knownRanges...)
	for i, spec := range c.intParams {
		if spec.class == ParamPtrToKnown && spec.size > 0 && i < len(args) {
			out = append(out, MemRange{Start: args[i], End: args[i] + spec.size})
		}
	}
	return out
}

// SetMemRange marks [start, end) as known, fixed data (brew_setmem).
func (c *Config) SetMemRange(start, end uint64) *Config {
	if start < end {
		c.knownRanges = append(c.knownRanges, MemRange{start, end})
	}
	return c
}

// SetFuncOpts attaches per-function options to the function starting at
// addr (which may be the rewritten function itself).
func (c *Config) SetFuncOpts(addr uint64, opts FuncOpts) *Config {
	c.funcOpts[addr] = opts
	return c
}

// MarkDynamic registers fn as a makeDynamic marker: a call to it is
// replaced by "result = argument, result unknown" (paper, Section V.C).
func (c *Config) MarkDynamic(fn uint64) *Config {
	c.dynMarkers[fn] = true
	return c
}

func (c *Config) optsFor(addr uint64) FuncOpts {
	if o, ok := c.funcOpts[addr]; ok {
		return o.normalized()
	}
	return c.Defaults.normalized()
}

func (c *Config) inKnownRange(addr uint64, size int) bool {
	end := addr + uint64(size)
	for _, r := range c.knownRanges {
		if addr >= r.Start && end <= r.End {
			return true
		}
	}
	return false
}

func (c *Config) maxVariants(opts FuncOpts) int {
	if opts.MaxVariants > 0 {
		return opts.MaxVariants
	}
	return c.MaxVariantsPerAddr
}

func (c *Config) validate() error {
	if c.funcOpts == nil || c.dynMarkers == nil {
		return errors.Join(ErrBadConfig, errors.New("use NewConfig"))
	}
	if c.MaxTracedInstrs <= 0 || c.MaxBlocks <= 0 || c.MaxInlineDepth <= 0 ||
		c.MaxVariantsPerAddr <= 0 || c.MaxCodeBytes <= 0 {
		return errors.Join(ErrBadConfig, errors.New("non-positive limit"))
	}
	if b := c.Budget; b != nil &&
		(b.MaxTracedInstrs < 0 || b.MaxEmittedBytes < 0 || b.Deadline < 0) {
		return errors.Join(ErrBadConfig, errors.New("negative budget"))
	}
	if !c.Effort.valid() {
		return errors.Join(ErrBadConfig, errors.New("unknown effort"))
	}
	return nil
}

// withBudget returns the effective configuration: a shallow copy with the
// structural limits tightened to the budget (never loosened). The copy
// shares the option maps and ranges, which are not mutated by tracing.
func (c *Config) withBudget() *Config {
	b := c.Budget
	if b == nil {
		return c
	}
	cc := *c
	if b.MaxTracedInstrs > 0 && b.MaxTracedInstrs < cc.MaxTracedInstrs {
		cc.MaxTracedInstrs = b.MaxTracedInstrs
	}
	if b.MaxEmittedBytes > 0 && b.MaxEmittedBytes < cc.MaxCodeBytes {
		cc.MaxCodeBytes = b.MaxEmittedBytes
	}
	return &cc
}
