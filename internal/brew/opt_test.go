package brew

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

func mkBlock(ins ...isa.Instr) *eblock {
	b := &eblock{id: 0, succ: -1, jcc: -1, term: termEnd}
	b.ins = ins
	b.meta = make([]insMeta, len(ins))
	return b
}

func listing(b *eblock) string {
	var sb strings.Builder
	for _, in := range b.ins {
		sb.WriteString(in.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

func TestDeadCodeGlobalRemovesChains(t *testing.T) {
	b := mkBlock(
		isa.MakeRR(isa.MOV, isa.R2, isa.R1),
		isa.MakeRR(isa.MOV, isa.R6, isa.R2),
		isa.MakeRI(isa.ADDI, isa.R6, 8),
		isa.MakeRM(isa.FLOAD, 3, isa.BaseDisp(isa.R1, 8)),
		isa.MakeRR(isa.FADD, 1, 3),
		isa.MakeRR(isa.FMOV, 0, 1),
		isa.MakeNone(isa.RET),
	)
	deadCodeGlobal([]*eblock{b})
	if len(b.ins) != 4 {
		t.Errorf("len = %d, want 4:\n%s", len(b.ins), listing(b))
	}
}

func TestDeadCodeGlobalKeepsAcrossBlocks(t *testing.T) {
	// Value defined in b0, used in b1: global liveness must keep it.
	b0 := mkBlock(
		isa.MakeRI(isa.MOVI, isa.R2, 7),
		isa.MakeRI(isa.MOVI, isa.R3, 9), // dead: never used anywhere
	)
	b0.term = termFall
	b0.succ = 1
	b1 := mkBlock(
		isa.MakeRR(isa.MOV, isa.R0, isa.R2),
		isa.MakeNone(isa.RET),
	)
	b1.id = 1
	deadCodeGlobal([]*eblock{b0, b1})
	if len(b0.ins) != 1 || b0.ins[0].Src.Imm != 7 {
		t.Errorf("b0:\n%s", listing(b0))
	}
}

func TestDeadCodeGlobalFlagsLiveIntoJcc(t *testing.T) {
	// The CMPI feeds the block terminator: must stay.
	b0 := mkBlock(isa.MakeRI(isa.CMPI, isa.R1, 5))
	b0.term = termJcc
	b0.cc = isa.CondLT
	b0.succ, b0.jcc = 1, 1
	b1 := mkBlock(isa.MakeNone(isa.RET))
	b1.id = 1
	deadCodeGlobal([]*eblock{b0, b1})
	if len(b0.ins) != 1 {
		t.Errorf("cmp removed:\n%s", listing(b0))
	}
}

func TestCopyDanceCoalesces(t *testing.T) {
	b := mkBlock(
		isa.MakeRR(isa.FMOV, 6, 1),
		isa.MakeRR(isa.FADD, 6, 5),
		isa.MakeRR(isa.FMOV, 1, 6),
		isa.MakeRR(isa.FMOV, 0, 1),
		isa.MakeNone(isa.RET),
	)
	copyDance(b)
	got := listing(b)
	if !strings.Contains(got, "fadd f1, f5") || strings.Contains(got, "fmov f6") {
		t.Errorf("not coalesced:\n%s", got)
	}
}

func TestCopyDanceBlockedByLaterUse(t *testing.T) {
	b := mkBlock(
		isa.MakeRR(isa.FMOV, 6, 1),
		isa.MakeRR(isa.FADD, 6, 5),
		isa.MakeRR(isa.FMOV, 1, 6),
		isa.MakeRR(isa.FMOV, 0, 6), // f6 read again: transformation invalid
		isa.MakeNone(isa.RET),
	)
	copyDance(b)
	if !strings.Contains(listing(b), "fmov f6, f1") {
		t.Errorf("unsafe coalesce:\n%s", listing(b))
	}
}

func TestAddrFoldChains(t *testing.T) {
	b := mkBlock(
		isa.MakeRR(isa.MOV, isa.R6, isa.R2),
		isa.MakeRI(isa.ADDI, isa.R6, 16),
		isa.MakeRM(isa.FLOAD, 3, isa.BaseDisp(isa.R6, 8)),
		isa.MakeNone(isa.RET),
	)
	addrFold(b)
	if !strings.Contains(listing(b), "fload f3, [r2+24]") {
		t.Errorf("not folded:\n%s", listing(b))
	}
}

func TestAddrFoldRespectsRedefinition(t *testing.T) {
	b := mkBlock(
		isa.MakeRR(isa.MOV, isa.R6, isa.R2),
		isa.MakeRI(isa.ADDI, isa.R2, 100), // base changes: fold must not use r2
		isa.MakeRM(isa.FLOAD, 3, isa.BaseDisp(isa.R6, 8)),
		isa.MakeNone(isa.RET),
	)
	addrFold(b)
	if !strings.Contains(listing(b), "[r6+8]") {
		t.Errorf("unsound fold:\n%s", listing(b))
	}
}

func TestAddrFoldAbsolute(t *testing.T) {
	b := mkBlock(
		isa.MakeRI(isa.MOVI, isa.R6, 0x5000),
		isa.MakeRM(isa.LOAD, isa.R3, isa.BaseDisp(isa.R6, 8)),
		isa.MakeNone(isa.RET),
	)
	addrFold(b)
	if !strings.Contains(listing(b), "[0x5008]") {
		t.Errorf("constant address not folded:\n%s", listing(b))
	}
}

func TestForwardFrameStores(t *testing.T) {
	b := mkBlock(
		isa.MakeMR(isa.STORE, isa.BaseDisp(isa.SP, 24), isa.R3),
		isa.MakeRM(isa.LOAD, isa.R3, isa.BaseDisp(isa.SP, 24)), // same reg: drop
		isa.MakeRM(isa.LOAD, isa.R4, isa.BaseDisp(isa.SP, 24)), // other reg: mov
		isa.MakeNone(isa.RET),
	)
	forwardFrameStores(b)
	got := listing(b)
	if strings.Contains(got, "load r3") {
		t.Errorf("same-register reload kept:\n%s", got)
	}
	if !strings.Contains(got, "mov r4, r3") {
		t.Errorf("forwarding move missing:\n%s", got)
	}
}

func TestForwardFrameStoresInvalidatedBySPChange(t *testing.T) {
	b := mkBlock(
		isa.MakeMR(isa.STORE, isa.BaseDisp(isa.SP, 24), isa.R3),
		isa.MakeR(isa.PUSH, isa.R5), // SP moves: displacement keys stale
		isa.MakeRM(isa.LOAD, isa.R4, isa.BaseDisp(isa.SP, 24)),
		isa.MakeNone(isa.RET),
	)
	forwardFrameStores(b)
	if !strings.Contains(listing(b), "load r4, [r15+24]") {
		t.Errorf("stale forwarding:\n%s", listing(b))
	}
}

func TestRedundantLoadsDropsDuplicate(t *testing.T) {
	b := mkBlock(
		isa.MakeRM(isa.LOAD, isa.R3, isa.BaseDisp(isa.R1, 8)),
		isa.MakeRM(isa.LOAD, isa.R3, isa.BaseDisp(isa.R1, 8)),
		isa.MakeNone(isa.RET),
	)
	redundantLoads(b)
	if len(b.ins) != 2 {
		t.Errorf("duplicate load kept:\n%s", listing(b))
	}
}

func TestRedundantLoadsRespectsStores(t *testing.T) {
	b := mkBlock(
		isa.MakeRM(isa.LOAD, isa.R3, isa.BaseDisp(isa.R1, 8)),
		isa.MakeMR(isa.STORE, isa.BaseDisp(isa.R2, 0), isa.R4), // may alias
		isa.MakeRM(isa.LOAD, isa.R3, isa.BaseDisp(isa.R1, 8)),
		isa.MakeNone(isa.RET),
	)
	redundantLoads(b)
	if len(b.ins) != 4 {
		t.Errorf("load across store dropped:\n%s", listing(b))
	}
}

func TestShrinkFrameRemovesAdjustPair(t *testing.T) {
	b := mkBlock(
		isa.MakeRI(isa.SUBI, isa.SP, 32),
		isa.MakeRI(isa.MOVI, isa.R0, 42),
		isa.MakeRI(isa.ADDI, isa.SP, 32),
		isa.MakeNone(isa.RET),
	)
	shrinkFrame([]*eblock{b})
	got := listing(b)
	if strings.Contains(got, "subi r15") || strings.Contains(got, "addi r15") {
		t.Errorf("frame adjust kept:\n%s", got)
	}
}

func TestShrinkFrameKeptWhenSlotsUsed(t *testing.T) {
	b := mkBlock(
		isa.MakeRI(isa.SUBI, isa.SP, 32),
		isa.MakeMR(isa.STORE, isa.BaseDisp(isa.SP, 8), isa.R1),
		isa.MakeRM(isa.LOAD, isa.R0, isa.BaseDisp(isa.SP, 8)),
		isa.MakeRI(isa.ADDI, isa.SP, 32),
		isa.MakeNone(isa.RET),
	)
	shrinkFrame([]*eblock{b})
	if !strings.Contains(listing(b), "subi r15, 32") {
		t.Errorf("frame removed while used:\n%s", listing(b))
	}
}

func TestCompatMigration(t *testing.T) {
	w1 := newWorld()
	w2 := newWorld()
	// Same known value, unmaterialized in w1, target expects materialized.
	w1.r[2] = ival{kind: vConst, val: 42}
	w2.r[2] = ival{kind: vConst, val: 42, mat: true}
	ic, fc, ok := compat(w1, w2)
	if !ok || len(ic) != 1 || ic[0] != isa.Reg(2) || len(fc) != 0 {
		t.Errorf("compat: %v %v %v", ic, fc, ok)
	}
	// Different known value: no migration.
	w2.r[2] = ival{kind: vConst, val: 43}
	if _, _, ok := compat(w1, w2); ok {
		t.Error("value mismatch accepted")
	}
	// Known -> unknown: allowed with materialization.
	w2.r[2] = unknown()
	ic, _, ok = compat(w1, w2)
	if !ok || len(ic) != 1 {
		t.Errorf("known->unknown: %v %v", ic, ok)
	}
	// Unknown -> known: rejected.
	w1.r[2] = unknown()
	w2.r[2] = konst(1)
	if _, _, ok := compat(w1, w2); ok {
		t.Error("unknown->known accepted")
	}
}

func TestGeneralizeConverges(t *testing.T) {
	w1 := newWorld()
	w2 := newWorld()
	w1.r[3] = konst(1)
	w2.r[3] = konst(2)
	w1.r[4] = konst(9)
	w2.r[4] = konst(9)
	g := generalize(w1, []*world{w2})
	if g.r[3].isKnown() {
		t.Error("conflicting value survived generalization")
	}
	if !g.r[4].isConst() || g.r[4].val != 9 {
		t.Error("agreeing value lost")
	}
	if g.r[isa.SP].kind != vStackRel {
		t.Error("SP must stay symbolic")
	}
	// Migrating from w1 into its own generalization always works.
	if _, _, ok := compat(w1, g); !ok {
		t.Error("w1 cannot reach its generalization")
	}
}

func TestWorldKeyDistinguishesStates(t *testing.T) {
	w1 := newWorld()
	w2 := newWorld()
	if w1.key() != w2.key() {
		t.Error("identical worlds differ")
	}
	w2.r[1] = konst(5)
	if w1.key() == w2.key() {
		t.Error("different reg state, same key")
	}
	w3 := w2.clone()
	if w2.key() != w3.key() {
		t.Error("clone changed key")
	}
	w3.writeStack(-8, 8, konst(1))
	if w2.key() == w3.key() {
		t.Error("stack slot not in key")
	}
	w4 := w2.clone()
	w4.fdirty = true
	if w2.key() == w4.key() {
		t.Error("fdirty not in key")
	}
	w5 := w2.clone()
	w5.escaped = true
	if w2.key() == w5.key() {
		t.Error("escaped not in key")
	}
}

func TestStackOverlapInvalidation(t *testing.T) {
	w := newWorld()
	w.writeStack(-16, 8, konst(7))
	if v, ok := w.readStack(-16, 8); !ok || v.val != 7 {
		t.Fatal("slot lost")
	}
	// Overlapping byte store invalidates the 8-byte slot.
	w.writeStack(-12, 1, konst(0xFF))
	if _, ok := w.readStack(-16, 8); ok {
		t.Error("overlapped slot still readable")
	}
	if v, ok := w.readStack(-12, 1); !ok || v.val != 0xFF {
		t.Error("byte slot missing")
	}
	// Size mismatch does not match.
	if _, ok := w.readStack(-12, 8); ok {
		t.Error("size mismatch matched")
	}
}
