package brew_test

import (
	"testing"

	"repro/internal/brew"
	"repro/internal/oracle"
)

// FuzzDifferential drives the differential-execution oracle from the fuzzer:
// each input seed selects one randomly generated minc translation unit, a
// random known-parameter declaration and random tracing options, and the
// oracle checks that the rewritten function is observably equivalent to the
// original (returns, non-stack stores, final memory, faulting behaviour)
// over randomized argument vectors. Compared to FuzzRewriteEquivalence this
// exercises whole compiled programs — frames, spills, helper calls and
// global-array traffic — rather than straight-line assembly.
//
//	go test -fuzz=FuzzDifferential -fuzztime=30s ./internal/brew/
func FuzzDifferential(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		f.Add(seed)
	}
	f.Add(int64(18))   // renameCalleeSaved inlined save/restore miscompile
	f.Add(int64(1234)) // wider slice of the generator space
	f.Fuzz(func(t *testing.T, seed int64) {
		// Both rewrite tiers must be observably equivalent: the full
		// pipeline and the tier-0 quick pipeline (trace + constant
		// folding only) are checked against the original on every seed.
		for _, effort := range []brew.Effort{brew.EffortFull, brew.EffortQuick} {
			c := oracle.Generated(seed)
			c.Trials = 3 // keep individual fuzz executions cheap
			c.Effort = effort
			res, err := oracle.Run(c, seed)
			if err != nil {
				t.Fatalf("seed %d (%s): harness error: %v", seed, effort, err)
			}
			if res.RewriteErr != nil {
				continue // typed refusal, not a bug
			}
			if res.Divergence != nil {
				t.Fatalf("seed %d (%s):\n%s", seed, effort, res.Divergence.Format())
			}
		}
	})
}
