package brew

import (
	"errors"

	"repro/internal/vm"
)

// Degradation reasons, the closed vocabulary RewriteOrDegrade classifies
// failures into (one telemetry counter each; see metrics.go).
const (
	ReasonTraceBudget  = "trace-budget"
	ReasonDeadline     = "deadline"
	ReasonCodeBuffer   = "code-buffer"
	ReasonBlocks       = "blocks"
	ReasonInlineDepth  = "inline-depth"
	ReasonIndirectJump = "indirect-jump"
	ReasonUnsupported  = "unsupported"
	ReasonBadCode      = "bad-code"
	ReasonBadConfig    = "bad-config"
	ReasonPanic        = "panic"
	ReasonOther        = "other"
)

// DegradeReason maps a Rewrite error to its degradation-reason label.
func DegradeReason(err error) string {
	switch {
	case errors.Is(err, ErrTraceTooLong):
		return ReasonTraceBudget
	case errors.Is(err, ErrDeadline):
		return ReasonDeadline
	case errors.Is(err, ErrCodeBufferFull):
		return ReasonCodeBuffer
	case errors.Is(err, ErrTooManyBlocks):
		return ReasonBlocks
	case errors.Is(err, ErrInlineDepth):
		return ReasonInlineDepth
	case errors.Is(err, ErrIndirectJump):
		return ReasonIndirectJump
	case errors.Is(err, ErrUnsupported):
		return ReasonUnsupported
	case errors.Is(err, ErrBadCode):
		return ReasonBadCode
	case errors.Is(err, ErrBadConfig):
		return ReasonBadConfig
	case errors.Is(err, ErrRewritePanic):
		return ReasonPanic
	default:
		return ReasonOther
	}
}

// RewriteOrDegrade is the never-fails form of Rewrite: the paper's Section
// III.D contract ("Otherwise, the original function should be executed")
// applied to every failure mode, not just guard misses. On success it
// returns the specialization unchanged. On ANY failure — budget or buffer
// exhaustion, unsupported constructs, injected faults, internal panics —
// it returns a degraded Result whose Addr is the original function (always
// safe to call) together with an error wrapping both ErrDegraded and the
// cause. The degradation is counted per reason in telemetry.
//
// Deprecated: use Do with ModeDegrade.
func RewriteOrDegrade(m *vm.Machine, cfg *Config, fn uint64, args []uint64, fargs []float64) (*Result, error) {
	out, err := Do(m, &Request{Config: cfg, Fn: fn, Args: args, FArgs: fargs, Mode: ModeDegrade})
	if out == nil {
		// Only a nil request/config refusal reaches here; ModeDegrade
		// converts every pipeline failure into a degraded outcome.
		return nil, err
	}
	return out.Result, err
}
