package brew_test

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/brew"
	"repro/internal/minc"
	"repro/internal/vm"
)

// load builds a machine with the given assembly program.
func load(t *testing.T, src string) (*vm.Machine, *asm.Image) {
	t.Helper()
	m := vm.MustNew()
	im, err := asm.Load(m, src)
	if err != nil {
		t.Fatal(err)
	}
	return m, im
}

func mustRewrite(t *testing.T, m *vm.Machine, cfg *brew.Config, fn uint64, args []uint64, fargs []float64) *brew.Result {
	t.Helper()
	res, err := brew.Rewrite(m, cfg, fn, args, fargs)
	if err != nil {
		t.Fatalf("Rewrite: %v", err)
	}
	return res
}

func TestSpecializeAddBothKnown(t *testing.T) {
	m, im := load(t, `
add2:
    mov r0, r1
    add r0, r2
    ret
`)
	fn := im.MustEntry("add2")
	cfg := brew.NewConfig().SetParam(1, brew.ParamKnown).SetParam(2, brew.ParamKnown)
	res := mustRewrite(t, m, cfg, fn, []uint64{40, 2}, nil)
	got, err := m.Call(res.Addr, 40, 2)
	if err != nil || got != 42 {
		t.Fatalf("rewritten(40,2) = %d, %v", got, err)
	}
	// Fully known: the result is precomputed (paper: "Any computation
	// using values specified as being known can be removed and
	// pre-computed").
	if !strings.Contains(res.Listing(), "movi r0, 42") {
		t.Errorf("expected constant result, listing:\n%s", res.Listing())
	}
	// Figure 3 semantics: the known parameter is ignored at call time.
	got, err = m.Call(res.Addr, 999, 999)
	if err != nil || got != 42 {
		t.Errorf("rewritten(999,999) = %d, %v; want 42", got, err)
	}
}

func TestSpecializeAddOneKnown(t *testing.T) {
	m, im := load(t, `
add2:
    mov r0, r1
    add r0, r2
    ret
`)
	fn := im.MustEntry("add2")
	cfg := brew.NewConfig().SetParam(2, brew.ParamKnown)
	res := mustRewrite(t, m, cfg, fn, []uint64{0, 5}, nil)
	for _, a := range []uint64{0, 1, 100, ^uint64(0)} {
		got, err := m.Call(res.Addr, a)
		if err != nil || got != a+5 {
			t.Fatalf("rewritten(%d) = %d, %v; want %d", a, got, err, a+5)
		}
	}
	// The constant should be folded into an immediate form.
	if !strings.Contains(res.Listing(), "addi r0, 5") {
		t.Errorf("expected addi fold, listing:\n%s", res.Listing())
	}
}

func TestFullUnrollKnownLoop(t *testing.T) {
	m, im := load(t, `
sum:
    movi r0, 0
loop:
    add  r0, r1
    subi r1, 1
    jne  loop
    ret
`)
	fn := im.MustEntry("sum")
	cfg := brew.NewConfig().SetParam(1, brew.ParamKnown)
	res := mustRewrite(t, m, cfg, fn, []uint64{10}, nil)
	got, err := m.Call(res.Addr, 10)
	if err != nil || got != 55 {
		t.Fatalf("rewritten sum(10) = %d, %v", got, err)
	}
	// Complete constant propagation through the unrolled loop.
	if !strings.Contains(res.Listing(), "movi r0, 55") {
		t.Errorf("expected full evaluation, listing:\n%s", res.Listing())
	}
}

func TestUnknownLoopStaysALoop(t *testing.T) {
	m, im := load(t, `
sum:
    movi r0, 0
loop:
    add  r0, r1
    subi r1, 1
    jne  loop
    ret
`)
	fn := im.MustEntry("sum")
	res := mustRewrite(t, m, brew.NewConfig(), fn, nil, nil)
	for _, n := range []uint64{1, 2, 7, 100} {
		got, err := m.Call(res.Addr, n)
		if err != nil || got != n*(n+1)/2 {
			t.Fatalf("rewritten sum(%d) = %d, %v", n, got, err)
		}
	}
	if res.Blocks < 2 {
		t.Errorf("expected a real loop structure, got %d blocks:\n%s", res.Blocks, res.Listing())
	}
}

func TestKnownMemoryFolds(t *testing.T) {
	m, im := load(t, `
getcoef:
    movi r2, tbl
    load r0, [r2+8]
    ret
.data
tbl: .quad 11, 22, 33
`)
	fn := im.MustEntry("getcoef")
	tbl := im.MustEntry("tbl")
	cfg := brew.NewConfig().SetMemRange(tbl, tbl+24)
	res := mustRewrite(t, m, cfg, fn, nil, nil)
	got, err := m.Call(res.Addr)
	if err != nil || got != 22 {
		t.Fatalf("rewritten = %d, %v; want 22", got, err)
	}
	if !strings.Contains(res.Listing(), "movi r0, 22") {
		t.Errorf("expected folded load, listing:\n%s", res.Listing())
	}
}

func TestPtrToKnownParameter(t *testing.T) {
	// f(p) = p[0] + p[1], pointer marked PtrToKnown (paper Figure 3/5).
	m, im := load(t, `
f:
    load r0, [r1]
    load r2, [r1+8]
    add  r0, r2
    ret
.data
tbl: .quad 30, 12
`)
	fn := im.MustEntry("f")
	tbl := im.MustEntry("tbl")
	cfg := brew.NewConfig().SetParamPtrToKnown(1, 16)
	res := mustRewrite(t, m, cfg, fn, []uint64{tbl}, nil)
	got, err := m.Call(res.Addr, tbl)
	if err != nil || got != 42 {
		t.Fatalf("rewritten = %d, %v; want 42", got, err)
	}
	if !strings.Contains(res.Listing(), "movi r0, 42") {
		t.Errorf("expected full fold, listing:\n%s", res.Listing())
	}
}

func TestInliningRemovesCall(t *testing.T) {
	m, im := load(t, `
caller:
    movi r1, 20
    movi r2, 22
    call addfn
    ret
addfn:
    mov r0, r1
    add r0, r2
    ret
`)
	fn := im.MustEntry("caller")
	res := mustRewrite(t, m, brew.NewConfig(), fn, nil, nil)
	got, err := m.Call(res.Addr)
	if err != nil || got != 42 {
		t.Fatalf("rewritten = %d, %v", got, err)
	}
	if strings.Contains(res.Listing(), "call") {
		t.Errorf("call should be inlined away:\n%s", res.Listing())
	}
}

func TestNoInlineKeepsCall(t *testing.T) {
	m, im := load(t, `
caller:
    movi r1, 20
    movi r2, 22
    call addfn
    ret
addfn:
    mov r0, r1
    add r0, r2
    ret
`)
	fn := im.MustEntry("caller")
	addfn := im.MustEntry("addfn")
	cfg := brew.NewConfig().SetFuncOpts(addfn, brew.FuncOpts{NoInline: true})
	res := mustRewrite(t, m, cfg, fn, nil, nil)
	got, err := m.Call(res.Addr)
	if err != nil || got != 42 {
		t.Fatalf("rewritten = %d, %v", got, err)
	}
	if !strings.Contains(res.Listing(), "call") {
		t.Errorf("call should be kept:\n%s", res.Listing())
	}
}

func TestInlineWithUnknownArgs(t *testing.T) {
	m, im := load(t, `
caller:
    call double
    addi r0, 1
    ret
double:
    mov r0, r1
    add r0, r0
    ret
`)
	fn := im.MustEntry("caller")
	res := mustRewrite(t, m, brew.NewConfig(), fn, nil, nil)
	for _, a := range []uint64{0, 3, 21} {
		got, err := m.Call(res.Addr, a)
		if err != nil || got != 2*a+1 {
			t.Fatalf("rewritten(%d) = %d, %v", a, got, err)
		}
	}
	if strings.Contains(res.Listing(), "call") {
		t.Errorf("call should be inlined:\n%s", res.Listing())
	}
}

func TestBranchesUnknownAvoidsUnrolling(t *testing.T) {
	src := `
sum:
    movi r0, 0
loop:
    add  r0, r1
    subi r1, 1
    jne  loop
    ret
`
	m, im := load(t, src)
	fn := im.MustEntry("sum")
	cfg := brew.NewConfig().SetParam(1, brew.ParamKnown)
	cfg.SetFuncOpts(fn, brew.FuncOpts{BranchesUnknown: true, ResultsUnknown: true})
	res := mustRewrite(t, m, cfg, fn, []uint64{100}, nil)
	got, err := m.Call(res.Addr, 100)
	if err != nil || got != 5050 {
		t.Fatalf("rewritten sum = %d, %v", got, err)
	}
	// The loop must not be 100x unrolled.
	if n := strings.Count(res.Listing(), "add r0"); n > 5 {
		t.Errorf("loop appears unrolled %d times:\n%s", n, res.Listing())
	}
}

func TestResultsUnknownStillSpecializesCallees(t *testing.T) {
	// Paper V.C: ResultsUnknown "does not remove chances for
	// specialization for nested called functions which get inlined".
	m, im := load(t, `
outer:
    movi r1, 6
    movi r2, 7
    call mul
    ret
mul:
    mov  r0, r1
    imul r0, r2
    ret
`)
	fn := im.MustEntry("outer")
	cfg := brew.NewConfig()
	cfg.SetFuncOpts(fn, brew.FuncOpts{ResultsUnknown: true})
	res := mustRewrite(t, m, cfg, fn, nil, nil)
	got, err := m.Call(res.Addr)
	if err != nil || got != 42 {
		t.Fatalf("rewritten = %d, %v", got, err)
	}
	// The callee had default options, so 6*7 folds inside it.
	if !strings.Contains(res.Listing(), "movi r0, 42") {
		t.Errorf("callee not specialized:\n%s", res.Listing())
	}
}

func TestMakeDynamic(t *testing.T) {
	m, im := load(t, `
f:
    movi r1, 5
    call makedyn
    mov  r1, r0
    movi r0, 0
loop:
    add  r0, r1
    subi r1, 1
    jne  loop
    ret
makedyn:
    mov r0, r1
    ret
`)
	fn := im.MustEntry("f")
	md := im.MustEntry("makedyn")
	cfg := brew.NewConfig().MarkDynamic(md)
	res := mustRewrite(t, m, cfg, fn, nil, nil)
	got, err := m.Call(res.Addr)
	if err != nil || got != 15 {
		t.Fatalf("rewritten = %d, %v; want 15", got, err)
	}
	// The value became dynamic, so the loop is NOT unrolled into a
	// constant.
	if strings.Contains(res.Listing(), "movi r0, 15") {
		t.Errorf("makeDynamic failed to stop constant propagation:\n%s", res.Listing())
	}
}

func TestStackLocalsAndCalleeSaved(t *testing.T) {
	// Uses frame slots and callee-saved registers; rewriting with an
	// unknown parameter must preserve behavior exactly.
	m, im := load(t, `
f:
    push r10
    subi sp, 16
    store [sp], r1        ; local a = x
    store [sp+8], r1      ; local b = x
    load  r10, [sp]
    load  r2, [sp+8]
    add   r10, r2
    mov   r0, r10
    addi  sp, 16
    pop   r10
    ret
`)
	fn := im.MustEntry("f")
	res := mustRewrite(t, m, brew.NewConfig(), fn, nil, nil)
	for _, a := range []uint64{0, 7, 1 << 40} {
		got, err := m.Call(res.Addr, a)
		if err != nil || got != 2*a {
			t.Fatalf("rewritten(%d) = %d, %v", a, got, err)
		}
	}
}

func TestStackSlotFolding(t *testing.T) {
	// A known value round-trips through the stack and keeps specializing.
	m, im := load(t, `
f:
    subi sp, 8
    store [sp], r1
    load  r2, [sp]
    mov   r0, r2
    imuli r0, 3
    addi  sp, 8
    ret
`)
	fn := im.MustEntry("f")
	cfg := brew.NewConfig().SetParam(1, brew.ParamKnown)
	res := mustRewrite(t, m, cfg, fn, []uint64{14}, nil)
	got, err := m.Call(res.Addr, 14)
	if err != nil || got != 42 {
		t.Fatalf("rewritten = %d, %v", got, err)
	}
	if !strings.Contains(res.Listing(), "movi r0, 42") {
		t.Errorf("stack slot did not fold:\n%s", res.Listing())
	}
}

func TestFloatSpecialization(t *testing.T) {
	m, im := load(t, `
f:
    fmul f1, f2
    fmov f0, f1
    ret
`)
	fn := im.MustEntry("f")
	cfg := brew.NewConfig().SetFloatParam(2, brew.ParamKnown)
	res := mustRewrite(t, m, cfg, fn, nil, []float64{0, 2.5})
	got, err := m.CallFloat(res.Addr, nil, []float64{4.0, 2.5})
	if err != nil || got != 10.0 {
		t.Fatalf("rewritten = %g, %v", got, err)
	}
}

func TestDiamondControlFlow(t *testing.T) {
	// if (a < b) r0 = a else r0 = b — with both unknown.
	m, im := load(t, `
min:
    cmp r1, r2
    jlt lo
    mov r0, r2
    ret
lo:
    mov r0, r1
    ret
`)
	fn := im.MustEntry("min")
	res := mustRewrite(t, m, brew.NewConfig(), fn, nil, nil)
	cases := [][3]uint64{{1, 2, 1}, {5, 3, 3}, {4, 4, 4}}
	for _, c := range cases {
		got, err := m.Call(res.Addr, c[0], c[1])
		if err != nil || got != c[2] {
			t.Fatalf("min(%d,%d) = %d, %v", c[0], c[1], got, err)
		}
	}
}

func TestIndirectJumpFails(t *testing.T) {
	m, im := load(t, `
f:
    jmpr r1
`)
	_, err := brew.Rewrite(m, brew.NewConfig(), im.MustEntry("f"), nil, nil)
	if !errors.Is(err, brew.ErrIndirectJump) {
		t.Errorf("err = %v, want ErrIndirectJump", err)
	}
}

func TestIndirectCallKnownTargetInlines(t *testing.T) {
	m, im := load(t, `
f:
    movi r3, target
    movi r1, 21
    callr r3
    ret
target:
    mov r0, r1
    add r0, r0
    ret
`)
	fn := im.MustEntry("f")
	res := mustRewrite(t, m, brew.NewConfig(), fn, nil, nil)
	got, err := m.Call(res.Addr)
	if err != nil || got != 42 {
		t.Fatalf("rewritten = %d, %v", got, err)
	}
	if strings.Contains(res.Listing(), "call") {
		t.Errorf("known indirect call should inline:\n%s", res.Listing())
	}
}

func TestIndirectCallUnknownTargetKept(t *testing.T) {
	m, im := load(t, `
f:
    callr r1
    ret
helper:
    movi r0, 9
    ret
`)
	fn := im.MustEntry("f")
	res := mustRewrite(t, m, brew.NewConfig(), fn, nil, nil)
	got, err := m.Call(res.Addr, im.MustEntry("helper"))
	if err != nil || got != 9 {
		t.Fatalf("rewritten = %d, %v", got, err)
	}
	if !strings.Contains(res.Listing(), "callr") {
		t.Errorf("unknown indirect call should be kept:\n%s", res.Listing())
	}
}

func TestRecursionWithUnknownArgFails(t *testing.T) {
	m, im := load(t, `
fib:
    cmpi r1, 2
    jlt base
    push r10
    push r11
    mov  r10, r1
    subi r1, 1
    call fib
    mov  r11, r0
    mov  r1, r10
    subi r1, 2
    call fib
    add  r0, r11
    pop  r11
    pop  r10
    ret
base:
    mov r0, r1
    ret
`)
	cfg := brew.NewConfig()
	cfg.MaxInlineDepth = 8
	_, err := brew.Rewrite(m, cfg, im.MustEntry("fib"), nil, nil)
	if !errors.Is(err, brew.ErrInlineDepth) {
		t.Errorf("err = %v, want ErrInlineDepth", err)
	}
}

func TestRecursionWithKnownArgUnrolls(t *testing.T) {
	m, im := load(t, `
fib:
    cmpi r1, 2
    jlt base
    push r10
    push r11
    mov  r10, r1
    subi r1, 1
    call fib
    mov  r11, r0
    mov  r1, r10
    subi r1, 2
    call fib
    add  r0, r11
    pop  r11
    pop  r10
    ret
base:
    mov r0, r1
    ret
`)
	fn := im.MustEntry("fib")
	cfg := brew.NewConfig().SetParam(1, brew.ParamKnown)
	res := mustRewrite(t, m, cfg, fn, []uint64{10}, nil)
	got, err := m.Call(res.Addr, 10)
	if err != nil || got != 55 {
		t.Fatalf("fib(10) = %d, %v", got, err)
	}
}

func TestBadConfigRejected(t *testing.T) {
	m := vm.MustNew()
	var zero brew.Config
	if _, err := brew.Rewrite(m, &zero, 0x1000, nil, nil); !errors.Is(err, brew.ErrBadConfig) {
		t.Errorf("zero config: %v", err)
	}
	cfg := brew.NewConfig().SetParam(1, brew.ParamKnown)
	if _, err := brew.Rewrite(m, cfg, 0x1000, nil, nil); !errors.Is(err, brew.ErrBadConfig) {
		t.Errorf("missing arg: %v", err)
	}
}

func TestUndecodableCodeFails(t *testing.T) {
	m := vm.MustNew()
	addr, err := m.LoadCode([]byte{0xFE, 0xFE, 0xFE})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := brew.Rewrite(m, brew.NewConfig(), addr, nil, nil); !errors.Is(err, brew.ErrBadCode) {
		t.Errorf("err = %v, want ErrBadCode", err)
	}
}

func TestBlockLimit(t *testing.T) {
	m, im := load(t, `
f:
    cmp r1, r2
    jlt a
    mov r0, r2
    ret
a:
    mov r0, r1
    ret
`)
	cfg := brew.NewConfig()
	cfg.MaxBlocks = 1
	_, err := brew.Rewrite(m, cfg, im.MustEntry("f"), nil, nil)
	if !errors.Is(err, brew.ErrTooManyBlocks) {
		t.Errorf("err = %v, want ErrTooManyBlocks", err)
	}
}

func TestOriginalStaysUsableAfterFailure(t *testing.T) {
	m, im := load(t, `
f:
    jmpr r1
g:
    movi r0, 5
    ret
`)
	if _, err := brew.Rewrite(m, brew.NewConfig(), im.MustEntry("f"), nil, nil); err == nil {
		t.Fatal("expected failure")
	}
	// The original and unrelated functions still run.
	got, err := m.Call(im.MustEntry("g"))
	if err != nil || got != 5 {
		t.Errorf("g() = %d, %v after failed rewrite", got, err)
	}
}

func TestHandlersInjected(t *testing.T) {
	m, im := load(t, `
f:
    mov r0, r1
    addi r0, 1
    ret
entryh:
    movi r9, counter       ; handlers may clobber nothing visible; they
    load r8, [r9]          ; use caller-saved scratch regs which f does
    addi r8, 1              ; not rely on after the call point
    store [r9], r8
    ret
.data
counter: .quad 0
`)
	// NOTE: the entry handler contract requires preserving registers; this
	// test handler clobbers r8/r9 which the traced function never reads
	// before writing, so the contract holds for this pairing.
	fn := im.MustEntry("f")
	cfg := brew.NewConfig()
	cfg.EntryHandler = im.MustEntry("entryh")
	res := mustRewrite(t, m, cfg, fn, nil, nil)
	counter := im.MustEntry("counter")
	for i := uint64(1); i <= 3; i++ {
		got, err := m.Call(res.Addr, 10)
		if err != nil || got != 11 {
			t.Fatalf("call %d: %d, %v", i, got, err)
		}
		c, _ := m.Mem.Read64(counter)
		if c != i {
			t.Fatalf("counter = %d after %d calls", c, i)
		}
	}
}

// The key invariant (DESIGN.md acceptance criteria): for arguments
// consistent with the declared known values, the rewritten function
// computes exactly what the original computes.
func TestEquivalenceProperty(t *testing.T) {
	progs := []struct {
		name  string
		src   string
		entry string
	}{
		{"mix", `
f:
    mov  r3, r1
    imul r3, r2
    cmp  r3, r1
    jle  small
    sub  r3, r1
    shri r3, 2
small:
    mov  r0, r3
    xori r0, 12345
    ret
`, "f"},
		{"memloop", `
f:
    movi r0, 0
    movi r3, 0
loop:
    cmp  r3, r2
    jge  done
    load r4, [r1+r3*8]
    add  r0, r4
    addi r3, 1
    jmp  loop
done:
    ret
`, "f"},
	}
	for _, p := range progs {
		t.Run(p.name, func(t *testing.T) {
			m, im := load(t, p.src)
			fn := im.MustEntry(p.entry)
			res := mustRewrite(t, m, brew.NewConfig(), fn, nil, nil)
			// Prepare a small table for memloop.
			tbl, err := m.AllocHeap(64)
			if err != nil {
				t.Fatal(err)
			}
			r := rand.New(rand.NewSource(42))
			for i := 0; i < 8; i++ {
				if err := m.Mem.Write64(tbl+uint64(8*i), r.Uint64()%1000); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < 200; i++ {
				var a1, a2 uint64
				if p.name == "memloop" {
					a1, a2 = tbl, uint64(r.Intn(8))
				} else {
					a1, a2 = r.Uint64(), r.Uint64()
				}
				want, err1 := m.Call(fn, a1, a2)
				got, err2 := m.Call(res.Addr, a1, a2)
				if (err1 == nil) != (err2 == nil) {
					t.Fatalf("error mismatch: %v vs %v", err1, err2)
				}
				if got != want {
					t.Fatalf("f(%d,%d): original %d, rewritten %d", a1, a2, want, got)
				}
			}
		})
	}
}

func TestRewrittenIsFasterWhenSpecialized(t *testing.T) {
	// The whole point: a specialized version executes fewer instructions.
	m, im := load(t, `
poly:
    ; r0 = c0 + x*(c1 + x*c2) with coefficients loaded from memory
    movi r3, coefs
    load r4, [r3+16]
    imul r4, r1
    load r5, [r3+8]
    add  r4, r5
    imul r4, r1
    load r6, [r3]
    add  r4, r6
    mov  r0, r4
    ret
.data
coefs: .quad 7, 3, 2
`)
	fn := im.MustEntry("poly")
	coefs := im.MustEntry("coefs")
	cfg := brew.NewConfig().SetMemRange(coefs, coefs+24)
	res := mustRewrite(t, m, cfg, fn, nil, nil)

	run := func(f uint64) uint64 {
		before := m.Stats.Instructions
		got, err := m.Call(f, 10)
		if err != nil || got != 7+3*10+2*100 {
			t.Fatalf("poly(10) = %d, %v", got, err)
		}
		return m.Stats.Instructions - before
	}
	orig := run(fn)
	spec := run(res.Addr)
	if spec >= orig {
		t.Errorf("specialized executes %d instrs, original %d:\n%s", spec, orig, res.Listing())
	}
}

func TestDivPow2StrengthReduction(t *testing.T) {
	m, im := load(t, `
f:
    ; r0 = r1 / r2 * 1000000 + r1 % r2  (keeps both results visible)
    mov  r3, r1
    idiv r3, r2
    mov  r4, r1
    irem r4, r2
    imuli r3, 1000000
    mov  r0, r3
    add  r0, r4
    ret
`)
	fn := im.MustEntry("f")
	for _, d := range []uint64{1, 2, 8, 1024} {
		cfg := brew.NewConfig().SetParam(2, brew.ParamKnown)
		res, err := brew.Rewrite(m, cfg, fn, []uint64{0, d}, nil)
		if err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		if d > 1 && strings.Contains(res.Listing(), "idiv") {
			t.Errorf("d=%d: idiv not strength-reduced:\n%s", d, res.Listing())
		}
		for _, x := range []int64{0, 1, -1, 5, -5, 1023, -1024, 1 << 40, -(1 << 40), 7777777, -7777777} {
			want, err1 := m.Call(fn, uint64(x), d)
			got, err2 := m.Call(res.Addr, uint64(x), d)
			if err1 != nil || err2 != nil {
				t.Fatalf("d=%d x=%d: %v %v", d, x, err1, err2)
			}
			if got != want {
				t.Errorf("d=%d x=%d: rewritten %d, original %d", d, x, int64(got), int64(want))
			}
		}
	}
	// Non-power-of-two keeps the idiv and stays correct.
	cfg := brew.NewConfig().SetParam(2, brew.ParamKnown)
	res, err := brew.Rewrite(m, cfg, fn, []uint64{0, 6}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := m.Call(fn, uint64(100), 6)
	got, _ := m.Call(res.Addr, uint64(100), 6)
	if got != want {
		t.Errorf("d=6: rewritten %d, original %d", got, want)
	}
}

func TestRewriteComposability(t *testing.T) {
	// Section III.A: "As the result of a rewriting step itself can be used
	// as input for further rewriting, this approach is composable."
	m, im := load(t, `
f:
    mov  r0, r1
    imul r0, r2
    add  r0, r3
    ret
`)
	fn := im.MustEntry("f")

	// Stage 1: fix parameter 2.
	cfg1 := brew.NewConfig().SetParam(2, brew.ParamKnown)
	r1, err := brew.Rewrite(m, cfg1, fn, []uint64{0, 6, 0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Stage 2: rewrite the rewritten code, fixing parameter 1 too.
	cfg2 := brew.NewConfig().SetParam(1, brew.ParamKnown)
	r2, err := brew.Rewrite(m, cfg2, r1.Addr, []uint64{7}, nil)
	if err != nil {
		t.Fatalf("second-stage rewrite: %v", err)
	}
	// Stage 3: all parameters fixed; the result must be fully evaluated.
	cfg3 := brew.NewConfig().SetParam(3, brew.ParamKnown)
	r3, err := brew.Rewrite(m, cfg3, r2.Addr, []uint64{0, 0, 8}, nil)
	if err != nil {
		t.Fatalf("third-stage rewrite: %v", err)
	}
	got, err := m.Call(r3.Addr, 7, 6, 8)
	if err != nil || got != 50 {
		t.Fatalf("composed rewrite = %d, %v; want 50", got, err)
	}
	if !strings.Contains(r3.Listing(), "movi r0, 50") {
		t.Errorf("final stage not fully evaluated:\n%s", r3.Listing())
	}
	// Every stage stays usable.
	for _, stage := range []uint64{fn, r1.Addr, r2.Addr} {
		got, err := m.Call(stage, 7, 6, 8)
		if err != nil || got != 50 {
			t.Errorf("stage at 0x%x = %d, %v", stage, got, err)
		}
	}
}

func TestControlledUnrolling(t *testing.T) {
	// Section V.B: "With controlled unrolling (such as four-times), we
	// imagine that it should be quite simple to write optimization passes
	// for straight-line code." A known-trip loop peels UnrollFactor
	// iterations and closes into a residual loop.
	src := `
sum:
    movi r0, 0
loop:
    add  r0, r1
    subi r1, 1
    jne  loop
    ret
`
	sizes := map[int]int{}
	for _, factor := range []int{0, 4} {
		m, im := load(t, src)
		fn := im.MustEntry("sum")
		cfg := brew.NewConfig().SetParam(1, brew.ParamKnown)
		if factor > 0 {
			cfg.SetFuncOpts(fn, brew.FuncOpts{UnrollFactor: factor})
		} else {
			cfg.SetFuncOpts(fn, brew.FuncOpts{BranchesUnknown: true, ResultsUnknown: true})
		}
		res := mustRewrite(t, m, cfg, fn, []uint64{100}, nil)
		got, err := m.Call(res.Addr, 100)
		if err != nil || got != 5050 {
			t.Fatalf("factor %d: sum = %d, %v", factor, got, err)
		}
		sizes[factor] = res.CodeSize
		if factor > 0 {
			// Peeled iterations fold the known counter into immediates
			// (addi r0, 100/99/98/97); the residual loop keeps add r0, r1.
			peeled := strings.Count(res.Listing(), "addi r0")
			residual := strings.Count(res.Listing(), "add r0, r1")
			if peeled < 3 || peeled > 8 || residual < 1 {
				t.Errorf("factor 4: %d peeled, %d residual:\n%s", peeled, residual, res.Listing())
			}
		}
	}
	if !(sizes[4] > sizes[0]) {
		t.Errorf("4x unroll (%dB) should be bigger than no-unroll (%dB)", sizes[4], sizes[0])
	}
}

func TestTraceBudgetExceeded(t *testing.T) {
	// A known-condition loop that would unroll 1e6 times exhausts the
	// instruction budget and fails cleanly.
	m, im := load(t, `
f:
    movi r1, 1000000
    movi r0, 0
loop:
    add  r0, r1
    subi r1, 1
    jne  loop
    ret
`)
	cfg := brew.NewConfig()
	cfg.MaxTracedInstrs = 10000
	_, err := brew.Rewrite(m, cfg, im.MustEntry("f"), nil, nil)
	if !errors.Is(err, brew.ErrTraceTooLong) {
		t.Errorf("err = %v, want ErrTraceTooLong", err)
	}
}

func TestCodeBufferFull(t *testing.T) {
	m, im := load(t, `
f:
    movi r1, 2000
    movi r0, 0
loop:
    add  r0, r1
    load r2, [d]      ; emitted every unrolled iteration
    add  r0, r2
    subi r1, 1
    jne  loop
    ret
.data
d: .quad 5
`)
	cfg := brew.NewConfig().SetParam(1, brew.ParamKnown)
	cfg.MaxCodeBytes = 512
	_, err := brew.Rewrite(m, cfg, im.MustEntry("f"), []uint64{0}, nil)
	if !errors.Is(err, brew.ErrCodeBufferFull) {
		t.Errorf("err = %v, want ErrCodeBufferFull", err)
	}
}

func TestRetWithUnbalancedStackFails(t *testing.T) {
	m, im := load(t, `
f:
    subi sp, 8
    ret
`)
	_, err := brew.Rewrite(m, brew.NewConfig(), im.MustEntry("f"), nil, nil)
	if !errors.Is(err, brew.ErrUnsupported) {
		t.Errorf("err = %v, want ErrUnsupported", err)
	}
}

func TestPushfPopfTraced(t *testing.T) {
	// Traced input code using PUSHF/POPF: emitted as-is, correct runtime
	// behavior, conservative flag state afterwards.
	m, im := load(t, `
f:
    cmp r1, r2
    pushf
    movi r3, 0      ; clobbers flags
    popf
    setlt r0
    ret
`)
	fn := im.MustEntry("f")
	res, err := brew.Rewrite(m, brew.NewConfig(), fn, nil, nil)
	if err != nil {
		// A rewrite failure is acceptable here (flags after POPF are
		// conservatively dirty); the original must still work.
		if !errors.Is(err, brew.ErrUnsupported) {
			t.Fatalf("unexpected error class: %v", err)
		}
		got, err := m.Call(fn, 1, 2)
		if err != nil || got != 1 {
			t.Errorf("original f(1,2) = %d, %v", got, err)
		}
		return
	}
	for _, c := range [][3]uint64{{1, 2, 1}, {5, 2, 0}} {
		got, err := m.Call(res.Addr, c[0], c[1])
		if err != nil || got != c[2] {
			t.Errorf("f(%d,%d) = %d, %v; want %d", c[0], c[1], got, err, c[2])
		}
	}
}

func TestFloatFuzzEquivalence(t *testing.T) {
	// Random float pipelines: known/unknown float parameters.
	seeds := 80
	if testing.Short() {
		seeds = 20
	}
	ops := []string{"fadd", "fsub", "fmul"}
	for seed := 0; seed < seeds; seed++ {
		r := rand.New(rand.NewSource(int64(7_000_000 + seed)))
		var sb strings.Builder
		sb.WriteString("f:\n")
		n := 4 + r.Intn(12)
		for i := 0; i < n; i++ {
			d, s := 1+r.Intn(4), 1+r.Intn(4)
			switch r.Intn(5) {
			case 0:
				fmt.Fprintf(&sb, "    fmovi f%d, %g\n", d, float64(r.Intn(64))*0.25)
			case 1:
				fmt.Fprintf(&sb, "    fmov f%d, f%d\n", d, s)
			default:
				fmt.Fprintf(&sb, "    %s f%d, f%d\n", ops[r.Intn(len(ops))], d, s)
			}
		}
		sb.WriteString("    fmov f0, f1\n    fadd f0, f2\n    fadd f0, f3\n    fadd f0, f4\n    ret\n")
		m := vm.MustNew()
		im, err := asm.Load(m, sb.String())
		if err != nil {
			t.Fatal(err)
		}
		fn := im.MustEntry("f")
		cfg := brew.NewConfig()
		var fixed []float64
		known := r.Intn(2) == 0
		if known {
			cfg.SetFloatParam(1, brew.ParamKnown)
			fixed = []float64{float64(r.Intn(16)) * 0.5}
		}
		res, err := brew.Rewrite(m, cfg, fn, nil, fixed)
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, sb.String())
		}
		for trial := 0; trial < 10; trial++ {
			args := []float64{float64(r.Intn(32)) * 0.25, float64(r.Intn(32)) * 0.25,
				float64(r.Intn(32)) * 0.25, float64(r.Intn(32)) * 0.25}
			if known {
				args[0] = fixed[0]
			}
			want, err1 := m.CallFloat(fn, nil, args)
			got, err2 := m.CallFloat(res.Addr, nil, args)
			if err1 != nil || err2 != nil {
				t.Fatalf("seed %d: %v / %v", seed, err1, err2)
			}
			if want != got && !(math.IsNaN(want) && math.IsNaN(got)) {
				t.Fatalf("seed %d: original %g, rewritten %g\n%s\n%s",
					seed, want, got, sb.String(), res.Listing())
			}
		}
	}
}

func TestRewriteBatchConcurrent(t *testing.T) {
	// Several independent specializations of minc-compiled functions run
	// concurrently; run this test under -race to validate the locking.
	m := vm.MustNew()
	l, err := minc.CompileAndLink(m, `
long poly(long x, long k) {
    long r = 1;
    for (long i = 0; i < k; i++) { r = r * x + i; }
    return r;
}
long mix(long a, long b) { return (a ^ b) * 7 + (a & b); }
double scale(double *v, long n, double f) {
    double s = 0.0;
    for (long i = 0; i < n; i++) { s += v[i] * f; }
    return s;
}
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	poly, _ := l.FuncAddr("poly")
	mix, _ := l.FuncAddr("mix")
	scale, _ := l.FuncAddr("scale")

	var reqs []brew.BatchRequest
	for k := uint64(1); k <= 6; k++ {
		cfg := brew.NewConfig().SetParam(2, brew.ParamKnown)
		reqs = append(reqs, brew.BatchRequest{Cfg: cfg, Fn: poly, Args: []uint64{0, k}})
	}
	reqs = append(reqs, brew.BatchRequest{Cfg: brew.NewConfig().SetParam(1, brew.ParamKnown), Fn: mix, Args: []uint64{42}})
	cfgS := brew.NewConfig().SetParam(2, brew.ParamKnown)
	reqs = append(reqs, brew.BatchRequest{Cfg: cfgS, Fn: scale, Args: []uint64{0, 4}})

	results, errs := brew.RewriteBatch(m, reqs)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if results[i] == nil {
			t.Fatalf("request %d: nil result", i)
		}
	}
	// Validate each specialized poly variant.
	for k := uint64(1); k <= 6; k++ {
		want, _ := m.Call(poly, 9, k)
		got, err := m.Call(results[k-1].Addr, 9, k)
		if err != nil || got != want {
			t.Errorf("poly k=%d: %d vs %d (%v)", k, got, want, err)
		}
	}
	want, _ := m.Call(mix, 42, 99)
	got, err := m.Call(results[6].Addr, 42, 99)
	if err != nil || got != want {
		t.Errorf("mix: %d vs %d (%v)", got, want, err)
	}
	arr, _ := m.AllocHeap(4 * 8)
	if err := m.WriteF64Slice(arr, []float64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	fwant, _ := m.CallFloat(scale, []uint64{arr, 4}, []float64{2})
	fgot, err := m.CallFloat(results[7].Addr, []uint64{arr, 4}, []float64{2})
	if err != nil || fgot != fwant {
		t.Errorf("scale: %g vs %g (%v)", fgot, fwant, err)
	}
}

func TestDefaultsFuncOptsApply(t *testing.T) {
	// Config.Defaults applies to every function without explicit options.
	m, im := load(t, `
sum:
    movi r0, 0
loop:
    add  r0, r1
    subi r1, 1
    jne  loop
    ret
`)
	fn := im.MustEntry("sum")
	cfg := brew.NewConfig().SetParam(1, brew.ParamKnown)
	cfg.Defaults = brew.FuncOpts{BranchesUnknown: true, ResultsUnknown: true}
	res := mustRewrite(t, m, cfg, fn, []uint64{50}, nil)
	if strings.Contains(res.Listing(), "movi r0, 1275") {
		t.Errorf("defaults ignored; loop fully evaluated:\n%s", res.Listing())
	}
	got, err := m.Call(res.Addr, 50)
	if err != nil || got != 1275 {
		t.Errorf("sum = %d, %v", got, err)
	}
}

func TestResultMetadata(t *testing.T) {
	m, im := load(t, "f:\n mov r0, r1\n addi r0, 1\n ret\n")
	res := mustRewrite(t, m, brew.NewConfig(), im.MustEntry("f"), nil, nil)
	if res.TracedInstrs < 3 {
		t.Errorf("TracedInstrs = %d", res.TracedInstrs)
	}
	if res.CodeSize <= 0 || res.Blocks < 1 {
		t.Errorf("CodeSize=%d Blocks=%d", res.CodeSize, res.Blocks)
	}
	if res.Addr < 0x200000 || res.Addr >= 0x400000 {
		t.Errorf("Addr 0x%x outside JIT segment", res.Addr)
	}
}
