package brew_test

import (
	"errors"
	"testing"

	"repro/internal/brew"
)

// TestDoPlain: the unified entry point covers the legacy Rewrite contract.
func TestDoPlain(t *testing.T) {
	m, im := load(t, `
add2:
    mov r0, r1
    add r0, r2
    ret
`)
	fn := im.MustEntry("add2")
	cfg := brew.NewConfig().SetParam(2, brew.ParamKnown)
	out, err := brew.Do(m, &brew.Request{Config: cfg, Fn: fn, Args: []uint64{0, 5}})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if out.Result == nil || out.Guarded != nil || out.Degraded {
		t.Fatalf("unexpected outcome shape: %+v", out)
	}
	if out.Addr != out.Result.Addr {
		t.Fatalf("Addr %#x != Result.Addr %#x", out.Addr, out.Result.Addr)
	}
	got, err := m.Call(out.Addr, 37)
	if err != nil || got != 42 {
		t.Fatalf("rewritten(37) = %d, %v; want 42", got, err)
	}
}

// TestDoGuarded: Request.Guards produces a dispatcher, and — unlike the
// legacy RewriteGuarded — the caller's Config is left untouched (Do clones
// before the ParamKnown augmentation).
func TestDoGuarded(t *testing.T) {
	m, im := load(t, `
scale:
    mov r0, r1
    imul r0, r2
    ret
`)
	fn := im.MustEntry("scale")
	cfg := brew.NewConfig()
	before := cfg.Fingerprint()

	out, err := brew.Do(m, &brew.Request{
		Config: cfg,
		Fn:     fn,
		Guards: []brew.ParamGuard{{Param: 2, Value: 3}},
	})
	if err != nil {
		t.Fatalf("Do guarded: %v", err)
	}
	if out.Guarded == nil || out.Result == nil {
		t.Fatalf("guarded outcome missing parts: %+v", out)
	}
	if out.Addr != out.Guarded.Addr {
		t.Fatalf("Addr %#x != Guarded.Addr %#x", out.Addr, out.Guarded.Addr)
	}
	if cfg.Fingerprint() != before {
		t.Fatal("Do mutated the caller's Config")
	}
	if class, _ := cfg.IntParamClass(2); class != brew.ParamUnknown {
		t.Fatal("guard augmentation leaked into the caller's Config")
	}
	// Guard hit takes the specialized path, miss falls back to the original.
	for _, tc := range []struct{ a, b, want uint64 }{{7, 3, 21}, {7, 5, 35}} {
		got, err := m.Call(out.Addr, tc.a, tc.b)
		if err != nil || got != tc.want {
			t.Fatalf("dispatch(%d,%d) = %d, %v; want %d", tc.a, tc.b, got, err, tc.want)
		}
	}
}

// TestDoModeDegrade: any pipeline failure converts to a callable degraded
// outcome with the closed-vocabulary reason, wrapping ErrDegraded.
func TestDoModeDegrade(t *testing.T) {
	m, im := load(t, `
id:
    mov r0, r1
    ret
`)
	fn := im.MustEntry("id")
	cfg := brew.NewConfig()
	cfg.Inject = func(site string) error {
		if site == brew.SiteTrace {
			return brew.ErrUnsupported
		}
		return nil
	}
	out, err := brew.Do(m, &brew.Request{Config: cfg, Fn: fn, Mode: brew.ModeDegrade})
	if !errors.Is(err, brew.ErrDegraded) || !errors.Is(err, brew.ErrUnsupported) {
		t.Fatalf("error = %v; want ErrDegraded wrapping ErrUnsupported", err)
	}
	if out == nil || !out.Degraded || out.Reason != brew.ReasonUnsupported {
		t.Fatalf("outcome = %+v; want degraded/unsupported", out)
	}
	if out.Addr != fn || out.Result == nil || !out.Result.Degraded {
		t.Fatalf("degraded outcome must address the original: %+v", out)
	}
	got, cerr := m.Call(out.Addr, 9)
	if cerr != nil || got != 9 {
		t.Fatalf("degraded call = %d, %v; want 9", got, cerr)
	}
}

// TestDoModeSpecializeFails: without ModeDegrade the same failure is a
// plain error and a nil outcome.
func TestDoModeSpecializeFails(t *testing.T) {
	m, im := load(t, `
id:
    mov r0, r1
    ret
`)
	fn := im.MustEntry("id")
	cfg := brew.NewConfig()
	cfg.Inject = func(site string) error {
		if site == brew.SiteTrace {
			return brew.ErrUnsupported
		}
		return nil
	}
	out, err := brew.Do(m, &brew.Request{Config: cfg, Fn: fn})
	if out != nil || !errors.Is(err, brew.ErrUnsupported) {
		t.Fatalf("Do = %+v, %v; want nil outcome + ErrUnsupported", out, err)
	}
}

// TestDoBadRequest: refusals and their ModeDegrade conversion.
func TestDoBadRequest(t *testing.T) {
	m, im := load(t, `
id:
    mov r0, r1
    ret
`)
	fn := im.MustEntry("id")

	if _, err := brew.Do(m, nil); !errors.Is(err, brew.ErrBadConfig) {
		t.Fatalf("Do(nil) error = %v; want ErrBadConfig", err)
	}
	if out, err := brew.Do(m, &brew.Request{Fn: fn}); out != nil || !errors.Is(err, brew.ErrBadConfig) {
		t.Fatalf("Do(nil config) = %+v, %v; want nil + ErrBadConfig", out, err)
	}
	// ModeDegrade converts even the nil-config refusal into a degraded
	// outcome (there is a function to fall back to).
	out, err := brew.Do(m, &brew.Request{Fn: fn, Mode: brew.ModeDegrade})
	if !errors.Is(err, brew.ErrDegraded) || out == nil || !out.Degraded ||
		out.Addr != fn || out.Reason != brew.ReasonBadConfig {
		t.Fatalf("Do(nil config, ModeDegrade) = %+v, %v", out, err)
	}
	// A zero-value Config still fails validation through the guarded
	// clone path: Clone preserves nil maps.
	if out, err := brew.Do(m, &brew.Request{
		Config: &brew.Config{},
		Fn:     fn,
		Guards: []brew.ParamGuard{{Param: 1, Value: 1}},
	}); out != nil || !errors.Is(err, brew.ErrBadConfig) {
		t.Fatalf("Do(zero config, guarded) = %+v, %v; want ErrBadConfig", out, err)
	}
}
