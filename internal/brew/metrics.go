package brew

import "repro/internal/telemetry"

// Rewriter metrics, published once per completed Rewrite from the finished
// RewriteReport. Handles are resolved at init; updates are no-ops while
// telemetry is disabled.
var (
	mRewrites     = telemetry.Default.Counter("brew.rewrites")
	mBlocksTraced = telemetry.Default.Counter("brew.blocks_traced")
	mInstrsTraced = telemetry.Default.Counter("brew.instrs_traced")
	mInstrsKept   = telemetry.Default.Counter("brew.instrs_kept")
	mInstrsElided = telemetry.Default.Counter("brew.instrs_elided")
	mInstrsFolded = telemetry.Default.Counter("brew.instrs_folded")
	mInstrsInline = telemetry.Default.Counter("brew.instrs_inlined")
	mEmittedFinal = telemetry.Default.Counter("brew.instrs_emitted")
	mCallsInlined = telemetry.Default.Counter("brew.calls_inlined")
	mTraceOvers   = telemetry.Default.Counter("brew.unroll_trace_overs")
	mMigrations   = telemetry.Default.Counter("brew.variant_migrations")
	mGuardHits    = telemetry.Default.Counter("brew.guard_hits")
	mGuardMisses  = telemetry.Default.Counter("brew.guard_misses")

	mTracedHist = telemetry.Default.Histogram("brew.traced_instrs",
		[]uint64{100, 1_000, 10_000, 100_000, 1_000_000})

	// Degradations (RewriteOrDegrade), total and by reason.
	mDegrades  = telemetry.Default.Counter("brew.degrades")
	mDegradeBy = map[string]*telemetry.Counter{
		ReasonTraceBudget:  telemetry.Default.Counter("brew.degrade.trace_budget"),
		ReasonDeadline:     telemetry.Default.Counter("brew.degrade.deadline"),
		ReasonCodeBuffer:   telemetry.Default.Counter("brew.degrade.code_buffer"),
		ReasonBlocks:       telemetry.Default.Counter("brew.degrade.blocks"),
		ReasonInlineDepth:  telemetry.Default.Counter("brew.degrade.inline_depth"),
		ReasonIndirectJump: telemetry.Default.Counter("brew.degrade.indirect_jump"),
		ReasonUnsupported:  telemetry.Default.Counter("brew.degrade.unsupported"),
		ReasonBadCode:      telemetry.Default.Counter("brew.degrade.bad_code"),
		ReasonBadConfig:    telemetry.Default.Counter("brew.degrade.bad_config"),
		ReasonPanic:        telemetry.Default.Counter("brew.degrade.panic"),
		ReasonOther:        telemetry.Default.Counter("brew.degrade.other"),
	}
)

func publishDegradeTelemetry(reason string) {
	if !telemetry.Enabled() {
		return
	}
	mDegrades.Inc()
	mDegradeBy[reason].Inc()
}

func publishRewriteTelemetry(r *RewriteReport) {
	if !telemetry.Enabled() {
		return
	}
	mRewrites.Inc()
	mBlocksTraced.Add(uint64(len(r.Blocks)))
	mInstrsTraced.Add(uint64(r.TracedInstrs))
	mInstrsKept.Add(uint64(r.Kept))
	mInstrsElided.Add(uint64(r.Elided))
	mInstrsFolded.Add(uint64(r.Folded))
	mInstrsInline.Add(uint64(r.Inlined))
	mEmittedFinal.Add(uint64(r.EmittedFinal))
	mCallsInlined.Add(uint64(r.InlinedCalls))
	mTraceOvers.Add(uint64(r.UnrollTraceOvers))
	mMigrations.Add(uint64(r.VariantMigrations))
	mTracedHist.Observe(uint64(r.TracedInstrs))
}
