package brew_test

import (
	"math"
	"testing"

	"repro/internal/brew"
	"repro/internal/stencil"
	"repro/internal/vm"
)

// TestEffortTiers pins the tier contract on the E1 stencil kernel: the
// quick tier runs no optimization passes (PassWork 0, no fixpoint
// sweeps), the full tier runs the pass stack to a fixpoint, both trace
// the same instruction stream, and both produce observably equivalent
// code. The report's Effort field records the tier the code was built at.
func TestEffortTiers(t *testing.T) {
	rewrite := func(effort brew.Effort) (*vm.Machine, *stencil.Workload, *brew.Result) {
		m := vm.MustNew()
		w, err := stencil.New(m, 16, 12)
		if err != nil {
			t.Fatal(err)
		}
		cfg, args := w.ApplyConfig()
		cfg.Effort = effort
		out, err := brew.Do(m, &brew.Request{Config: cfg, Fn: w.Apply, Args: args})
		if err != nil {
			t.Fatalf("%s rewrite: %v", effort, err)
		}
		return m, w, out.Result
	}

	mq, wq, rq := rewrite(brew.EffortQuick)
	mf, _, rf := rewrite(brew.EffortFull)

	if rq.Report.Effort != "quick" || rf.Report.Effort != "full" {
		t.Fatalf("report efforts %q/%q, want quick/full", rq.Report.Effort, rf.Report.Effort)
	}
	if rq.Report.PassWork != 0 || len(rq.Report.OptSweeps) != 0 {
		t.Fatalf("quick tier ran the pass stack: work %d, sweeps %v",
			rq.Report.PassWork, rq.Report.OptSweeps)
	}
	if rf.Report.PassWork == 0 || len(rf.Report.OptSweeps) == 0 {
		t.Fatalf("full tier skipped the pass stack: work %d, sweeps %v",
			rf.Report.PassWork, rf.Report.OptSweeps)
	}
	// Run-to-fixpoint: the loop ends on a sweep that removed nothing, or
	// at the bound — a sweep before the last must always remove something.
	sweeps := rf.Report.OptSweeps
	for i, removed := range sweeps[:len(sweeps)-1] {
		if removed == 0 {
			t.Fatalf("fixpoint loop continued past an empty sweep: %v (sweep %d)", sweeps, i)
		}
	}
	if rq.Report.TracedInstrs != rf.Report.TracedInstrs {
		t.Fatalf("tiers traced different streams: %d vs %d instrs",
			rq.Report.TracedInstrs, rf.Report.TracedInstrs)
	}
	if rq.Report.EmittedFinal <= rf.Report.EmittedFinal {
		t.Fatalf("quick tier emitted %d instrs, full tier %d — the pass stack removed nothing",
			rq.Report.EmittedFinal, rf.Report.EmittedFinal)
	}

	// Both tiers are drop-in replacements for the original.
	cell := wq.M1 + uint64((16+1)*8)
	args := []uint64{cell, 16, wq.S5}
	want, err := mq.CallFloat(wq.Apply, args, nil)
	if err != nil {
		t.Fatal(err)
	}
	gotQ, err := mq.CallFloat(rq.Addr, args, nil)
	if err != nil || math.Abs(gotQ-want) > 1e-12 {
		t.Fatalf("quick tier = %g, %v; want %g", gotQ, err, want)
	}
	gotF, err := mf.CallFloat(rf.Addr, args, nil)
	if err != nil || math.Abs(gotF-want) > 1e-12 {
		t.Fatalf("full tier = %g, %v; want %g", gotF, err, want)
	}
}
