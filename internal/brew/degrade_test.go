package brew_test

import (
	"errors"
	"testing"
	"time"

	"repro/internal/brew"
	"repro/internal/mem"
	"repro/internal/vm"
)

const sumSrc = `
sum:
    movi r0, 0
loop:
    add  r0, r1
    subi r1, 1
    jne  loop
    ret
`

const add2Src = `
add2:
    mov r0, r1
    add r0, r2
    ret
`

// TestCodeBufferFullNoLeak forces InstallJIT's allocation to fail and
// checks both the error classification and that no code-buffer space leaks
// (regression: InstallJIT used to keep the reservation when the generator
// or write failed).
func TestCodeBufferFullNoLeak(t *testing.T) {
	m, im := load(t, sumSrc)
	fn := im.MustEntry("sum")
	m.JITAlloc = mem.NewAllocator(vm.JITBase, 8, 8)
	free0 := m.JITAlloc.FreeBytes()

	_, err := brew.Rewrite(m, brew.NewConfig(), fn, nil, nil)
	if !errors.Is(err, brew.ErrCodeBufferFull) {
		t.Fatalf("Rewrite under 8-byte buffer: %v, want ErrCodeBufferFull", err)
	}
	if got := m.JITAlloc.FreeBytes(); got != free0 {
		t.Errorf("code buffer leaked: %d free, was %d", got, free0)
	}
	if r := brew.DegradeReason(err); r != brew.ReasonCodeBuffer {
		t.Errorf("DegradeReason = %q, want %q", r, brew.ReasonCodeBuffer)
	}
}

// TestGuardedDispatcherNoSpaceFreesBody sizes the code buffer so the
// specialized body fits exactly and the dispatcher allocation must fail:
// RewriteGuarded has to give the body back (regression: it leaked).
func TestGuardedDispatcherNoSpaceFreesBody(t *testing.T) {
	m, im := load(t, add2Src)
	fn := im.MustEntry("add2")

	// Probe the body size with the same parameter setting RewriteGuarded
	// will construct for the guard below.
	probe, err := brew.Rewrite(m,
		brew.NewConfig().SetParam(2, brew.ParamKnown), fn, []uint64{0, 5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.FreeJIT(probe.Addr); err != nil {
		t.Fatal(err)
	}
	bodySize := (uint64(probe.CodeSize) + 15) &^ 15

	m.JITAlloc = mem.NewAllocator(vm.JITBase, bodySize, 16)
	free0 := m.JITAlloc.FreeBytes()
	g, err := brew.RewriteGuarded(m, brew.NewConfig(), fn,
		[]brew.ParamGuard{{Param: 2, Value: 5}}, []uint64{0, 0}, nil)
	if g != nil || !errors.Is(err, brew.ErrCodeBufferFull) {
		t.Fatalf("RewriteGuarded = %v, %v; want nil, ErrCodeBufferFull", g, err)
	}
	if got := m.JITAlloc.FreeBytes(); got != free0 {
		t.Errorf("specialized body leaked: %d free, was %d", got, free0)
	}
}

// TestGuardedInjectedDispatchFaultFreesBody covers the same leak path via
// the fault-injection seam instead of genuine exhaustion.
func TestGuardedInjectedDispatchFaultFreesBody(t *testing.T) {
	m, im := load(t, add2Src)
	fn := im.MustEntry("add2")
	free0 := m.JITAlloc.FreeBytes()

	boom := errors.New("injected dispatch fault")
	cfg := brew.NewConfig()
	cfg.Inject = func(site string) error {
		if site == brew.SiteDispatch {
			return boom
		}
		return nil
	}
	g, err := brew.RewriteGuarded(m, cfg, fn,
		[]brew.ParamGuard{{Param: 2, Value: 5}}, []uint64{0, 0}, nil)
	if g != nil || !errors.Is(err, boom) {
		t.Fatalf("RewriteGuarded = %v, %v; want nil, injected fault", g, err)
	}
	if got := m.JITAlloc.FreeBytes(); got != free0 {
		t.Errorf("specialized body leaked: %d free, was %d", got, free0)
	}
}

func TestBadConfigVariants(t *testing.T) {
	m, im := load(t, add2Src)
	fn := im.MustEntry("add2")

	cases := []struct {
		name string
		call func() error
	}{
		{"zero-value config", func() error {
			_, err := brew.Rewrite(m, &brew.Config{}, fn, nil, nil)
			return err
		}},
		{"negative budget instrs", func() error {
			cfg := brew.NewConfig()
			cfg.Budget = &brew.Budget{MaxTracedInstrs: -1}
			_, err := brew.Rewrite(m, cfg, fn, nil, nil)
			return err
		}},
		{"negative budget bytes", func() error {
			cfg := brew.NewConfig()
			cfg.Budget = &brew.Budget{MaxEmittedBytes: -1}
			_, err := brew.Rewrite(m, cfg, fn, nil, nil)
			return err
		}},
		{"negative budget deadline", func() error {
			cfg := brew.NewConfig()
			cfg.Budget = &brew.Budget{Deadline: -time.Second}
			_, err := brew.Rewrite(m, cfg, fn, nil, nil)
			return err
		}},
		{"known param without argument", func() error {
			cfg := brew.NewConfig().SetParam(1, brew.ParamKnown)
			_, err := brew.Rewrite(m, cfg, fn, nil, nil)
			return err
		}},
		{"guarded without guards", func() error {
			_, err := brew.RewriteGuarded(m, brew.NewConfig(), fn, nil, nil, nil)
			return err
		}},
		{"guard on parameter 0", func() error {
			_, err := brew.RewriteGuarded(m, brew.NewConfig(), fn,
				[]brew.ParamGuard{{Param: 0, Value: 1}}, nil, nil)
			return err
		}},
		{"guard out of ABI range", func() error {
			_, err := brew.RewriteGuarded(m, brew.NewConfig(), fn,
				[]brew.ParamGuard{{Param: 99, Value: 1}}, nil, nil)
			return err
		}},
	}
	for _, tc := range cases {
		if err := tc.call(); !errors.Is(err, brew.ErrBadConfig) {
			t.Errorf("%s: %v, want ErrBadConfig", tc.name, err)
		} else if r := brew.DegradeReason(err); r != brew.ReasonBadConfig {
			t.Errorf("%s: DegradeReason = %q, want %q", tc.name, r, brew.ReasonBadConfig)
		}
	}
}

func TestBudgetTraceExhaustion(t *testing.T) {
	m, im := load(t, sumSrc)
	fn := im.MustEntry("sum")
	cfg := brew.NewConfig().SetParam(1, brew.ParamKnown)
	cfg.Budget = &brew.Budget{MaxTracedInstrs: 100}
	// Unrolling 100k iterations would trace ~300k instructions; the budget
	// stops it after 100.
	_, err := brew.Rewrite(m, cfg, fn, []uint64{100_000}, nil)
	if !errors.Is(err, brew.ErrTraceTooLong) {
		t.Fatalf("Rewrite = %v, want ErrTraceTooLong", err)
	}
	if r := brew.DegradeReason(err); r != brew.ReasonTraceBudget {
		t.Errorf("DegradeReason = %q, want %q", r, brew.ReasonTraceBudget)
	}
	// Without the budget the same rewrite succeeds: the budget tightened,
	// not replaced, the structural limit.
	cfg.Budget = nil
	if _, err := brew.Rewrite(m, cfg, fn, []uint64{100_000}, nil); err != nil {
		t.Fatalf("unbudgeted Rewrite = %v", err)
	}
}

func TestBudgetDeadline(t *testing.T) {
	m, im := load(t, sumSrc)
	fn := im.MustEntry("sum")
	cfg := brew.NewConfig().SetParam(1, brew.ParamKnown)
	cfg.Budget = &brew.Budget{Deadline: time.Nanosecond}
	_, err := brew.Rewrite(m, cfg, fn, []uint64{100_000}, nil)
	if !errors.Is(err, brew.ErrDeadline) {
		t.Fatalf("Rewrite = %v, want ErrDeadline", err)
	}
	if r := brew.DegradeReason(err); r != brew.ReasonDeadline {
		t.Errorf("DegradeReason = %q, want %q", r, brew.ReasonDeadline)
	}
}

func TestBudgetEmittedBytes(t *testing.T) {
	m, im := load(t, sumSrc)
	fn := im.MustEntry("sum")
	cfg := brew.NewConfig()
	cfg.Budget = &brew.Budget{MaxEmittedBytes: 4}
	_, err := brew.Rewrite(m, cfg, fn, nil, nil)
	if !errors.Is(err, brew.ErrCodeBufferFull) {
		t.Fatalf("Rewrite = %v, want ErrCodeBufferFull", err)
	}
}

// TestInjectedFaultsAtEverySite checks that a fault injected at each
// pipeline site surfaces as the rewrite error, and that a panicking hook is
// converted to ErrRewritePanic instead of unwinding into the host.
func TestInjectedFaultsAtEverySite(t *testing.T) {
	m, im := load(t, sumSrc)
	fn := im.MustEntry("sum")
	sites := []string{brew.SiteTrace, brew.SiteOptimize, brew.SiteLayout, brew.SiteInstall}
	for _, site := range sites {
		boom := errors.New("injected at " + site)
		cfg := brew.NewConfig()
		cfg.Inject = func(s string) error {
			if s == site {
				return boom
			}
			return nil
		}
		if _, err := brew.Rewrite(m, cfg, fn, nil, nil); !errors.Is(err, boom) {
			t.Errorf("site %s: Rewrite = %v, want injected fault", site, err)
		}
	}

	cfg := brew.NewConfig()
	cfg.Inject = func(string) error { panic("injected panic") }
	_, err := brew.Rewrite(m, cfg, fn, nil, nil)
	if !errors.Is(err, brew.ErrRewritePanic) {
		t.Fatalf("panicking hook: Rewrite = %v, want ErrRewritePanic", err)
	}
	if r := brew.DegradeReason(err); r != brew.ReasonPanic {
		t.Errorf("DegradeReason = %q, want %q", r, brew.ReasonPanic)
	}
}

// TestRewriteOrDegrade checks the never-fails contract: on failure the
// result addresses the original function and stays correct to call.
func TestRewriteOrDegrade(t *testing.T) {
	m, im := load(t, sumSrc)
	fn := im.MustEntry("sum")

	cfg := brew.NewConfig().SetParam(1, brew.ParamKnown)
	cfg.Budget = &brew.Budget{MaxTracedInstrs: 10}
	res, err := brew.RewriteOrDegrade(m, cfg, fn, []uint64{1000}, nil)
	if !errors.Is(err, brew.ErrDegraded) || !errors.Is(err, brew.ErrTraceTooLong) {
		t.Fatalf("err = %v, want ErrDegraded wrapping ErrTraceTooLong", err)
	}
	if res == nil || !res.Degraded || res.Addr != fn {
		t.Fatalf("res = %+v, want degraded result at original entry", res)
	}
	got, err := m.Call(res.Addr, 10)
	if err != nil || got != 55 {
		t.Fatalf("degraded call = %d, %v; want 55", got, err)
	}

	// Success path is a passthrough.
	cfg.Budget = nil
	res, err = brew.RewriteOrDegrade(m, cfg, fn, []uint64{10}, nil)
	if err != nil || res.Degraded {
		t.Fatalf("RewriteOrDegrade success = %+v, %v", res, err)
	}
	if got, err := m.Call(res.Addr, 10); err != nil || got != 55 {
		t.Fatalf("specialized call = %d, %v; want 55", got, err)
	}
}

// TestGuardCountersUnconditional checks that guard hit/miss accounting
// works without telemetry: the adaptive deoptimization policy depends on
// these counters even in zero-telemetry deployments.
func TestGuardCountersUnconditional(t *testing.T) {
	m, im := load(t, add2Src)
	fn := im.MustEntry("add2")
	g, err := brew.RewriteGuarded(m, brew.NewConfig(), fn,
		[]brew.ParamGuard{{Param: 2, Value: 5}}, []uint64{0, 0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	call := func(a, b, want uint64) {
		t.Helper()
		got, err := g.Call(m, a, b)
		if err != nil || got != want {
			t.Fatalf("Call(%d,%d) = %d, %v; want %d", a, b, got, err, want)
		}
	}
	call(1, 5, 6) // hit
	call(2, 7, 9) // miss, via original
	call(3, 8, 11)
	if g.Hits() != 1 || g.Misses() != 2 || g.MissStreak() != 2 {
		t.Errorf("hits/misses/streak = %d/%d/%d, want 1/2/2",
			g.Hits(), g.Misses(), g.MissStreak())
	}
	call(4, 5, 9) // hit resets the streak
	if g.Hits() != 2 || g.MissStreak() != 0 {
		t.Errorf("after hit: hits=%d streak=%d, want 2/0", g.Hits(), g.MissStreak())
	}
}
