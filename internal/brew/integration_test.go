package brew_test

import (
	"math"
	"strings"
	"testing"

	"repro/internal/brew"
	"repro/internal/minc"
	"repro/internal/vm"
)

// These tests exercise the paper's real workflow: the rewriter consumes
// binary code produced by an optimizing compiler it does not control.

const stencilSrc = `
struct P { double f; long dx; long dy; };
struct S { long ps; struct P p[]; };
struct S s5 = {5, {{-1.0, 0, 0}, {0.25, -1, 0}, {0.25, 1, 0}, {0.25, 0, -1}, {0.25, 0, 1}}};

double apply(double *m, long xs, struct S *s) {
    double v = 0.0;
    for (long i = 0; i < s->ps; i++) {
        struct P *p = s->p + i;
        v += p->f * m[p->dx + xs * p->dy];
    }
    return v;
}
`

func TestRewriteCompiledStencilApply(t *testing.T) {
	m := vm.MustNew()
	l, err := minc.CompileAndLink(m, stencilSrc, nil)
	if err != nil {
		t.Fatal(err)
	}
	apply, _ := l.FuncAddr("apply")
	s5, _ := l.GlobalAddr("s5")

	const xs, ys = 16, 8
	grid, err := m.AllocHeap(xs * ys * 8)
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]float64, xs*ys)
	for i := range vals {
		vals[i] = float64((i*7)%13) * 0.25
	}
	if err := m.WriteF64Slice(grid, vals); err != nil {
		t.Fatal(err)
	}

	// Figure 5: xs known, stencil struct known fixed data.
	structSize := uint64(8 + 5*24)
	cfg := brew.NewConfig().
		SetParam(2, brew.ParamKnown).
		SetParamPtrToKnown(3, structSize)
	res, err := brew.Rewrite(m, cfg, apply, []uint64{0, xs, s5}, nil)
	if err != nil {
		t.Fatalf("Rewrite: %v\n", err)
	}

	// The specialized version must be a straight-line unrolled kernel: no
	// branches, no loop, coefficients as immediates.
	if strings.Contains(res.Listing(), "jcc") || strings.Contains(res.Listing(), "jlt") {
		t.Errorf("specialized apply still branches:\n%s", res.Listing())
	}

	golden := func(x, y int) float64 {
		c := y*xs + x
		return 0.25*(vals[c-1]+vals[c+1]+vals[c-xs]+vals[c+xs]) - vals[c]
	}
	for _, pt := range [][2]int{{1, 1}, {5, 3}, {xs - 2, ys - 2}} {
		addr := grid + uint64((pt[1]*xs+pt[0])*8)
		want, errO := m.CallFloat(apply, []uint64{addr, xs, s5}, nil)
		if errO != nil {
			t.Fatal(errO)
		}
		got, errR := m.CallFloat(res.Addr, []uint64{addr, xs, s5}, nil)
		if errR != nil {
			t.Fatal(errR)
		}
		if got != want || math.Abs(got-golden(pt[0], pt[1])) > 1e-12 {
			t.Errorf("apply(%v): original %g, rewritten %g, golden %g", pt, want, got, golden(pt[0], pt[1]))
		}
	}

	// The headline claim: far fewer instructions per stencil application.
	count := func(fn uint64) uint64 {
		before := m.Stats.Instructions
		if _, err := m.CallFloat(fn, []uint64{grid + (xs+1)*8, xs, s5}, nil); err != nil {
			t.Fatal(err)
		}
		return m.Stats.Instructions - before
	}
	orig := count(apply)
	spec := count(res.Addr)
	t.Logf("apply: original %d instrs, specialized %d instrs (listing %d blocks)", orig, spec, res.Blocks)
	if spec*2 > orig {
		t.Errorf("specialization too weak: %d vs %d instrs\n%s", spec, orig, res.Listing())
	}
}

func TestRewriteCompiledLoopUnknownBound(t *testing.T) {
	m := vm.MustNew()
	l, err := minc.CompileAndLink(m, `
long sumsq(long n) {
    long s = 0;
    for (long i = 1; i <= n; i++) { s += i * i; }
    return s;
}
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	fn, _ := l.FuncAddr("sumsq")
	res, err := brew.Rewrite(m, brew.NewConfig(), fn, nil, nil)
	if err != nil {
		t.Fatalf("Rewrite: %v", err)
	}
	for _, n := range []uint64{0, 1, 5, 50} {
		want, _ := m.Call(fn, n)
		got, err := m.Call(res.Addr, n)
		if err != nil || got != want {
			t.Errorf("sumsq(%d): rewritten %d (%v), original %d", n, got, err, want)
		}
	}
}

func TestRewriteCompiledFunctionPointerCall(t *testing.T) {
	// The PGAS motivation: indirect calls through a known function
	// pointer disappear under specialization.
	m := vm.MustNew()
	l, err := minc.CompileAndLink(m, `
typedef double (*getter_t)(double*, long);
double direct(double *a, long i) { return a[i]; }
double sum(double *a, getter_t get, long n) {
    double s = 0.0;
    for (long i = 0; i < n; i++) { s += get(a, i); }
    return s;
}
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	sum, _ := l.FuncAddr("sum")
	direct, _ := l.FuncAddr("direct")
	arr, _ := m.AllocHeap(8 * 8)
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	if err := m.WriteF64Slice(arr, vals); err != nil {
		t.Fatal(err)
	}

	cfg := brew.NewConfig().SetParam(2, brew.ParamKnown) // getter known
	res, err := brew.Rewrite(m, cfg, sum, []uint64{0, direct, 0}, nil)
	if err != nil {
		t.Fatalf("Rewrite: %v", err)
	}
	got, err := m.CallFloat(res.Addr, []uint64{arr, direct, 8}, nil)
	if err != nil || got != 36 {
		t.Fatalf("rewritten sum = %g, %v", got, err)
	}
	if strings.Contains(res.Listing(), "callr") {
		t.Errorf("indirect call should be inlined:\n%s", res.Listing())
	}
}

func TestRewriteCompiledMakeDynamic(t *testing.T) {
	// Section V.C: the compiler is free to rebuild the iteration space,
	// which may defeat makeDynamic. Verify correctness is preserved
	// regardless of whether unrolling was avoided.
	m := vm.MustNew()
	mdProg, err := minc.CompileAndLink(m, "long makeDynamic(long x) { return x; }", nil)
	if err != nil {
		t.Fatal(err)
	}
	md, _ := mdProg.FuncAddr("makeDynamic")
	l, err := minc.CompileAndLink(m, `
extern long makeDynamic(long x);
long f(void) {
    long s = 0;
    for (long i = makeDynamic(1); i <= 4; i++) { s += i * 10; }
    return s;
}
`, map[string]uint64{"makeDynamic": md})
	if err != nil {
		t.Fatal(err)
	}
	fn, _ := l.FuncAddr("f")
	cfg := brew.NewConfig().MarkDynamic(md)
	res, err := brew.Rewrite(m, cfg, fn, nil, nil)
	if err != nil {
		t.Fatalf("Rewrite: %v", err)
	}
	got, err := m.Call(res.Addr)
	if err != nil || got != 100 {
		t.Errorf("f() = %d, %v; want 100", got, err)
	}
}

func TestRewriteWholeSweepNoUnroll(t *testing.T) {
	// E3b precursor: rewrite a full matrix sweep with unrolling disabled;
	// the inner generic apply must still be inlined and specialized.
	m := vm.MustNew()
	l, err := minc.CompileAndLink(m, stencilSrc+`
typedef double (*apply_t)(double*, long, struct S*);
double sweep(double *m1, double *m2, long xs, long ys, apply_t ap, struct S *s) {
    double acc = 0.0;
    for (long y = 1; y < ys - 1; y++) {
        for (long x = 1; x < xs - 1; x++) {
            double v = ap(m1 + y*xs + x, xs, s);
            m2[y*xs+x] = v;
            acc += v;
        }
    }
    return acc;
}
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	sweep, _ := l.FuncAddr("sweep")
	apply, _ := l.FuncAddr("apply")
	s5, _ := l.GlobalAddr("s5")

	const xs, ys = 10, 6
	m1, _ := m.AllocHeap(xs * ys * 8)
	m2, _ := m.AllocHeap(xs * ys * 8)
	vals := make([]float64, xs*ys)
	for i := range vals {
		vals[i] = float64((i*3)%11) * 0.5
	}
	if err := m.WriteF64Slice(m1, vals); err != nil {
		t.Fatal(err)
	}

	cfg := brew.NewConfig().
		SetParam(3, brew.ParamKnown). // xs
		SetParam(5, brew.ParamKnown). // apply fn ptr
		SetParamPtrToKnown(6, 8+5*24) // stencil struct
	cfg.SetFuncOpts(sweep, brew.FuncOpts{BranchesUnknown: true, ResultsUnknown: true})
	res, err := brew.Rewrite(m, cfg, sweep, []uint64{0, 0, xs, 0, apply, s5}, nil)
	if err != nil {
		t.Fatalf("Rewrite: %v", err)
	}
	want, err := m.CallFloat(sweep, []uint64{m1, m2, xs, ys, apply, s5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Clear m2 between runs.
	if err := m.WriteF64Slice(m2, make([]float64, xs*ys)); err != nil {
		t.Fatal(err)
	}
	got, err := m.CallFloat(res.Addr, []uint64{m1, m2, xs, ys, apply, s5}, nil)
	if err != nil || math.Abs(got-want) > 1e-12 {
		t.Fatalf("rewritten sweep = %g, %v; want %g\nblocks=%d", got, err, want, res.Blocks)
	}
	// The indirect call must be gone; the loops must remain loops.
	if strings.Contains(res.Listing(), "callr") {
		t.Errorf("sweep still calls through pointer:\n%s", res.Listing())
	}
	if res.CodeSize > 4096 {
		t.Errorf("sweep appears unrolled: %d bytes of code", res.CodeSize)
	}
}
