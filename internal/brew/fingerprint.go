package brew

import (
	"sort"
	"time"
)

// fp is an incremental FNV-1a/64 hash with domain-separation tags, the
// canonicalization core of Config.Fingerprint.
type fp uint64

const (
	fnvOffset64 fp = 14695981039346656037
	fnvPrime64  fp = 1099511628211
)

func (h *fp) byte(b byte) { *h = (*h ^ fp(b)) * fnvPrime64 }
func (h *fp) u64(v uint64) {
	for i := 0; i < 64; i += 8 {
		h.byte(byte(v >> i))
	}
}
func (h *fp) i64(v int64) { h.u64(uint64(v)) }
func (h *fp) bool(b bool) {
	if b {
		h.byte(1)
	} else {
		h.byte(0)
	}
}

// tag separates the fingerprint domains so e.g. a handler address can never
// collide with a limit of the same numeric value.
func (h *fp) tag(t string) {
	for i := 0; i < len(t); i++ {
		h.byte(t[i])
	}
	h.byte(0)
}

func (h *fp) funcOpts(o FuncOpts) {
	// Hash the normalized form without the UnrollFactor sugar field, so
	// {UnrollFactor: 4} and {BranchesUnknown: true, MaxVariants: 4} — the
	// same semantics — fingerprint identically.
	o = o.normalized()
	h.bool(o.NoInline)
	h.bool(o.BranchesUnknown)
	h.bool(o.ResultsUnknown)
	h.i64(int64(o.MaxVariants))
}

// Fingerprint returns a canonical 64-bit hash of the rewrite assumptions
// this configuration declares: parameter classes, known memory ranges,
// per-function options, handlers, limits, budget, flags, and the effort
// tier (tier-0 and tier-1 code are distinct artifacts, so they must
// never share a cache slot or coalesce onto one flight). It is
// order-independent — two semantically equal configurations built by
// different call sequences (ranges added in different orders, options set
// for functions in different orders) fingerprint identically — so it is
// usable as a specialization cache key (internal/brewsvc keys its shards
// by it, combined with the known argument values).
//
// The Inject fault-injection hook is deliberately excluded: it is a
// runtime test seam, not a rewrite assumption. The service layer refuses
// to cache or coalesce Inject-bearing requests for exactly that reason.
func (c *Config) Fingerprint() uint64 {
	h := fnvOffset64

	h.tag("iparams")
	for _, s := range c.intParams {
		h.byte(byte(s.class))
		h.u64(s.size)
	}
	h.tag("fparams")
	for _, class := range c.floatParams {
		h.byte(byte(class))
	}

	h.tag("ranges")
	ranges := append([]MemRange(nil), c.knownRanges...)
	sort.Slice(ranges, func(i, j int) bool {
		if ranges[i].Start != ranges[j].Start {
			return ranges[i].Start < ranges[j].Start
		}
		return ranges[i].End < ranges[j].End
	})
	var prev MemRange
	for i, r := range ranges {
		if i > 0 && r == prev {
			continue // duplicates declare nothing new
		}
		h.u64(r.Start)
		h.u64(r.End)
		prev = r
	}

	h.tag("funcopts")
	addrs := make([]uint64, 0, len(c.funcOpts))
	for a := range c.funcOpts {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		h.u64(a)
		h.funcOpts(c.funcOpts[a])
	}

	h.tag("dyn")
	marks := make([]uint64, 0, len(c.dynMarkers))
	for a, on := range c.dynMarkers {
		if on {
			marks = append(marks, a)
		}
	}
	sort.Slice(marks, func(i, j int) bool { return marks[i] < marks[j] })
	for _, a := range marks {
		h.u64(a)
	}

	h.tag("defaults")
	h.funcOpts(c.Defaults)

	h.tag("limits")
	h.i64(int64(c.MaxTracedInstrs))
	h.i64(int64(c.MaxBlocks))
	h.i64(int64(c.MaxInlineDepth))
	h.i64(int64(c.MaxVariantsPerAddr))
	h.i64(int64(c.MaxCodeBytes))

	h.tag("handlers")
	h.u64(c.EntryHandler)
	h.u64(c.ExitHandler)
	h.u64(c.LoadHandler)
	h.u64(c.StoreHandler)

	h.tag("flags")
	h.bool(c.Vectorize)

	h.tag("effort")
	h.byte(byte(c.Effort))

	h.tag("budget")
	if c.Budget != nil {
		h.byte(1)
		h.i64(int64(c.Budget.MaxTracedInstrs))
		h.i64(int64(c.Budget.MaxEmittedBytes))
		h.i64(int64(c.Budget.Deadline / time.Nanosecond))
	} else {
		h.byte(0)
	}

	return uint64(h)
}

// Clone returns an independent deep copy: mutating the clone's parameter
// declarations, ranges, per-function options, markers, or budget never
// affects the original (Do clones before augmenting guarded requests). Nil
// maps stay nil, so a clone of an invalid zero-value Config still fails
// validation. The Inject hook is shared — it is a stateless seam by
// contract — as are handler addresses.
func (c *Config) Clone() *Config {
	if c == nil {
		return nil
	}
	cc := *c
	if c.knownRanges != nil {
		cc.knownRanges = append([]MemRange(nil), c.knownRanges...)
	}
	if c.funcOpts != nil {
		cc.funcOpts = make(map[uint64]FuncOpts, len(c.funcOpts))
		for a, o := range c.funcOpts {
			cc.funcOpts[a] = o
		}
	}
	if c.dynMarkers != nil {
		cc.dynMarkers = make(map[uint64]bool, len(c.dynMarkers))
		for a, on := range c.dynMarkers {
			cc.dynMarkers[a] = on
		}
	}
	if c.Budget != nil {
		b := *c.Budget
		cc.Budget = &b
	}
	return &cc
}
