package brew_test

import (
	"math"
	"strings"
	"testing"

	"repro/internal/brew"
	"repro/internal/minc"
	"repro/internal/vm"
)

const vecSrc = `
double vsum(double *a, long n) {
    double s = 0.0;
    for (long i = 0; i < n; i++) { s += a[i]; }
    return s;
}
double vdot(double *a, long n, double f) {
    double s = 0.0;
    for (long i = 0; i < n; i++) { s += a[i] * f; }
    return s;
}
`

func vecSetup(t *testing.T) (*vm.Machine, *minc.Linked, uint64, []float64) {
	t.Helper()
	m := vm.MustNew()
	l, err := minc.CompileAndLink(m, vecSrc, nil)
	if err != nil {
		t.Fatal(err)
	}
	const n = 32
	arr, err := m.AllocHeap(n * 8)
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64(i%7)*0.25 + 1
	}
	if err := m.WriteF64Slice(arr, vals); err != nil {
		t.Fatal(err)
	}
	return m, l, arr, vals
}

func TestVectorizeSumReduction(t *testing.T) {
	m, l, arr, vals := vecSetup(t)
	fn, _ := l.FuncAddr("vsum")
	cfg := brew.NewConfig().SetParam(2, brew.ParamKnown)
	cfg.Vectorize = true
	res, err := brew.Rewrite(m, cfg, fn, []uint64{0, uint64(len(vals))}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Listing(), "vload") || !strings.Contains(res.Listing(), "vhadd") {
		t.Fatalf("no vector code generated:\n%s", res.Listing())
	}
	want := 0.0
	for _, v := range vals {
		want += v
	}
	got, err := m.CallFloat(res.Addr, []uint64{arr, uint64(len(vals))}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("vectorized sum = %g, want %g", got, want)
	}
	// Fewer instructions than the scalar specialization.
	cfg2 := brew.NewConfig().SetParam(2, brew.ParamKnown)
	scalar, err := brew.Rewrite(m, cfg2, fn, []uint64{0, uint64(len(vals))}, nil)
	if err != nil {
		t.Fatal(err)
	}
	count := func(f uint64) uint64 {
		before := m.Stats.Instructions
		if _, err := m.CallFloat(f, []uint64{arr, uint64(len(vals))}, nil); err != nil {
			t.Fatal(err)
		}
		return m.Stats.Instructions - before
	}
	vi, si := count(res.Addr), count(scalar.Addr)
	t.Logf("vectorized %d instrs vs scalar %d", vi, si)
	if vi >= si {
		t.Errorf("vectorized (%d) not cheaper than scalar (%d)", vi, si)
	}
}

func TestVectorizeMulAccumulate(t *testing.T) {
	m, l, arr, vals := vecSetup(t)
	fn, _ := l.FuncAddr("vdot")
	cfg := brew.NewConfig().SetParam(2, brew.ParamKnown)
	cfg.Vectorize = true
	res, err := brew.Rewrite(m, cfg, fn, []uint64{0, uint64(len(vals))}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Listing(), "vmul") {
		t.Logf("multiply form not vectorized (pattern shape dependent):\n%s", res.Listing())
	}
	f := 1.5
	want := 0.0
	for _, v := range vals {
		want += v * f
	}
	got, err := m.CallFloat(res.Addr, []uint64{arr, uint64(len(vals))}, []float64{f})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("vectorized dot = %g, want %g", got, want)
	}
}

func TestVectorizeOffByDefault(t *testing.T) {
	m, l, _, vals := vecSetup(t)
	fn, _ := l.FuncAddr("vsum")
	cfg := brew.NewConfig().SetParam(2, brew.ParamKnown)
	res, err := brew.Rewrite(m, cfg, fn, []uint64{0, uint64(len(vals))}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(res.Listing(), "vload") {
		t.Errorf("vector code without opt-in:\n%s", res.Listing())
	}
}

func TestVectorizePreservedWhenNotMatching(t *testing.T) {
	// Strided access must not be vectorized.
	m := vm.MustNew()
	l, err := minc.CompileAndLink(m, `
double strided(double *a, long n) {
    double s = 0.0;
    for (long i = 0; i < n; i = i + 2) { s += a[i]; }
    return s;
}
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	fn, _ := l.FuncAddr("strided")
	arr, _ := m.AllocHeap(32 * 8)
	vals := make([]float64, 32)
	want := 0.0
	for i := range vals {
		vals[i] = float64(i) * 0.5
		if i%2 == 0 {
			want += vals[i]
		}
	}
	if err := m.WriteF64Slice(arr, vals); err != nil {
		t.Fatal(err)
	}
	cfg := brew.NewConfig().SetParam(2, brew.ParamKnown)
	cfg.Vectorize = true
	res, err := brew.Rewrite(m, cfg, fn, []uint64{0, 32}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(res.Listing(), "vload") {
		t.Errorf("strided access vectorized:\n%s", res.Listing())
	}
	got, err := m.CallFloat(res.Addr, []uint64{arr, 32}, nil)
	if err != nil || math.Abs(got-want) > 1e-9 {
		t.Errorf("strided sum = %g, %v; want %g", got, err, want)
	}
}
