package brew

// Effort selects the rewrite tier. The split follows the
// generating-extension view (Vaughn & Reps): a cheap residualizer first,
// an optimizing specializer only where profiles prove it pays.
type Effort uint8

const (
	// EffortFull is today's complete pipeline: trace with constant
	// folding, then the optimization pass stack (and vectorization when
	// enabled). It is the zero value, so existing configurations keep
	// their behavior.
	EffortFull Effort = iota
	// EffortQuick is tier-0: the trace with constant folding only. The
	// optimization passes and vectorization are skipped for the fastest
	// time-to-first-specialized-call; the generated code is observably
	// equivalent, just less optimized. internal/brewsvc promotes hot
	// tier-0 entries to EffortFull in the background.
	EffortQuick
)

// String returns "full" or "quick".
func (e Effort) String() string {
	switch e {
	case EffortFull:
		return "full"
	case EffortQuick:
		return "quick"
	}
	return "invalid"
}

func (e Effort) valid() bool { return e <= EffortQuick }
