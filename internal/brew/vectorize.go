package brew

import "repro/internal/isa"

// The greedy vectorization pass the paper plans in Sections IV and V.B:
// "a simple greedy vectorization pass ... guiding the search for best
// replacement of scalar operations with vector instructions", applied to
// straight-line code ("(2) vectorization by replacing scalar instruction
// with vector versions with same semantics").
//
// It recognizes the reduction runs that full unrolling produces:
//
//	fload fX, [b+d]      ; fadd fS, fX
//	fload fX, [b+d+8]    ; fadd fS, fX
//	fload fX, [b+d+16]   ; fadd fS, fX
//	fload fX, [b+d+24]   ; fadd fS, fX
//
// and, with a loop-invariant factor,
//
//	fload fX, [b+d+8i] ; fmul fX, fC ; fadd fS, fX   (x4)
//
// replacing each group of four with VLOAD / (VBCAST+VMUL) / VHADD / FADD.
// Horizontal summation reassociates the floating-point additions, so the
// pass only runs when Config.Vectorize opts in (the moral equivalent of
// -ffast-math).
//
// The pass needs a free vector register pair and, for the multiply form, a
// second one for the broadcast factor; vector registers are caller-saved
// and the tracer never emits vector code on its own, so v6/v7 are free
// unless the traced code itself used them.

// vectorize runs the pass over every block.
func vectorize(blocks []*eblock) {
	for _, b := range blocks {
		vectorizeBlock(b)
	}
}

// vecGroup is one matched run of four lanes.
type vecGroup struct {
	start   int // index of the first instruction of lane 0
	perLane int // instructions per lane (2, 3 or 4)
	base    isa.Reg
	disp    int32
	acc     isa.Reg // scalar accumulator (float file)
	lane    isa.Reg // scalar lane register (float file)
	temp    isa.Reg // copy temporary (copy-mul form only), else == lane
	factor  isa.Reg // multiply factor register (mul forms only)
	mul     bool
}

func vectorizeBlock(b *eblock) {
	if usesVec(b, isa.Reg(6)) || usesVec(b, isa.Reg(7)) {
		return
	}
	var groups []vecGroup
	i := 0
	for i < len(b.ins) {
		if g, ok := matchGroup(b, i); ok {
			// The scalar lane registers no longer receive their final
			// per-lane values; the rewrite is only valid when nothing
			// reads them afterwards.
			end := g.start + 4*g.perLane
			if !regReadBeforeRedefined(b, end, regRef{isa.RFFloat, g.lane}) &&
				(g.temp == g.lane || !regReadBeforeRedefined(b, end, regRef{isa.RFFloat, g.temp})) {
				groups = append(groups, g)
				i = end
				continue
			}
		}
		i++
	}
	if len(groups) == 0 {
		return
	}
	// Rewrite back to front so indices stay valid.
	for gi := len(groups) - 1; gi >= 0; gi-- {
		g := groups[gi]
		var repl []isa.Instr
		mem := isa.BaseDisp(g.base, g.disp)
		if g.base == isa.RegNone {
			mem = isa.Abs(g.disp)
		}
		repl = append(repl, isa.MakeRM(isa.VLOAD, isa.Reg(6), mem))
		if g.mul {
			repl = append(repl,
				isa.MakeRR(isa.VBCAST, isa.Reg(7), g.factor),
				isa.MakeRR(isa.VMUL, isa.Reg(6), isa.Reg(7)),
			)
		}
		repl = append(repl,
			isa.MakeRR(isa.VHADD, g.lane, isa.Reg(6)),
			isa.MakeRR(isa.FADD, g.acc, g.lane),
		)
		tail := append([]isa.Instr(nil), b.ins[g.start+4*g.perLane:]...)
		b.ins = append(b.ins[:g.start], append(repl, tail...)...)
		// Metadata is positional; rebuild it empty (the pass runs after
		// every frame-sensitive pass).
	}
	b.meta = make([]insMeta, len(b.ins))
	b.bytes = 0
	for _, in := range b.ins {
		if n, err := isa.EncodedLen(in); err == nil {
			b.bytes += n
		}
	}
}

func usesVec(b *eblock, v isa.Reg) bool {
	for _, in := range b.ins {
		if in.Dst.Kind == isa.KindVReg && in.Dst.Reg == v {
			return true
		}
		if in.Src.Kind == isa.KindVReg && in.Src.Reg == v {
			return true
		}
	}
	return false
}

// matchGroup tries to match four consecutive lanes starting at index i.
func matchGroup(b *eblock, i int) (vecGroup, bool) {
	g, ok := matchLane(b, i)
	if !ok {
		return vecGroup{}, false
	}
	for lane := 1; lane < 4; lane++ {
		idx := i + lane*g.perLane
		l2, ok := matchLane(b, idx)
		if !ok || l2.perLane != g.perLane || l2.base != g.base ||
			l2.acc != g.acc || l2.lane != g.lane || l2.temp != g.temp ||
			l2.mul != g.mul || (g.mul && l2.factor != g.factor) ||
			l2.disp != g.disp+int32(8*lane) {
			return vecGroup{}, false
		}
	}
	return g, true
}

// matchLane matches one {fload; [fmul;] fadd} lane at index i.
func matchLane(b *eblock, i int) (vecGroup, bool) {
	if i+1 >= len(b.ins) {
		return vecGroup{}, false
	}
	ld := b.ins[i]
	if ld.Op != isa.FLOAD {
		return vecGroup{}, false
	}
	m := ld.Src.Mem
	if m.HasIndex() {
		return vecGroup{}, false
	}
	base := isa.RegNone
	if m.HasBase() {
		base = m.Base
		if base == ld.Dst.Reg {
			return vecGroup{}, false
		}
	}
	lane := ld.Dst.Reg
	// Plain reduction: fadd acc, lane.
	if in := b.ins[i+1]; in.Op == isa.FADD && in.Src.Reg == lane && in.Dst.Reg != lane {
		return vecGroup{
			start: i, perLane: 2, base: base, disp: m.Disp,
			acc: in.Dst.Reg, lane: lane, temp: lane,
		}, true
	}
	// Multiply-accumulate: fmul lane, factor ; fadd acc, lane.
	if i+2 < len(b.ins) {
		mul, add := b.ins[i+1], b.ins[i+2]
		if mul.Op == isa.FMUL && mul.Dst.Reg == lane && mul.Src.Reg != lane &&
			add.Op == isa.FADD && add.Src.Reg == lane && add.Dst.Reg != lane &&
			add.Dst.Reg != mul.Src.Reg {
			return vecGroup{
				start: i, perLane: 3, base: base, disp: m.Disp,
				acc: add.Dst.Reg, lane: lane, temp: lane, factor: mul.Src.Reg, mul: true,
			}, true
		}
	}
	// Copy-multiply-accumulate, the shape two-address code generators
	// produce for s += a[i] * f:
	//   fload L, [b+d] ; fmov T, L ; fmul T, F ; fadd A, T
	if i+3 < len(b.ins) {
		cp, mul, add := b.ins[i+1], b.ins[i+2], b.ins[i+3]
		if cp.Op == isa.FMOV && cp.Src.Reg == lane && cp.Dst.Reg != lane {
			tmp := cp.Dst.Reg
			if mul.Op == isa.FMUL && mul.Dst.Reg == tmp && mul.Src.Reg != tmp && mul.Src.Reg != lane &&
				add.Op == isa.FADD && add.Src.Reg == tmp && add.Dst.Reg != tmp &&
				add.Dst.Reg != lane && add.Dst.Reg != mul.Src.Reg {
				return vecGroup{
					start: i, perLane: 4, base: base, disp: m.Disp,
					acc: add.Dst.Reg, lane: lane, temp: tmp, factor: mul.Src.Reg, mul: true,
				}, true
			}
		}
	}
	return vecGroup{}, false
}
