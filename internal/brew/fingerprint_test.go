package brew_test

import (
	"testing"
	"time"

	"repro/internal/brew"
)

// TestFingerprintOrderIndependent proves the satellite contract: two
// semantically equal configurations built by different call sequences
// fingerprint identically.
func TestFingerprintOrderIndependent(t *testing.T) {
	a := brew.NewConfig()
	a.SetParam(1, brew.ParamKnown)
	a.SetParamPtrToKnown(2, 64)
	a.SetFloatParam(1, brew.ParamKnown)
	a.SetMemRange(0x1000, 0x2000)
	a.SetMemRange(0x3000, 0x4000)
	a.SetFuncOpts(0x100, brew.FuncOpts{NoInline: true})
	a.SetFuncOpts(0x200, brew.FuncOpts{BranchesUnknown: true})
	a.MarkDynamic(0x500)
	a.MarkDynamic(0x600)

	// Same declarations, every insertion order reversed.
	b := brew.NewConfig()
	b.MarkDynamic(0x600)
	b.MarkDynamic(0x500)
	b.SetFuncOpts(0x200, brew.FuncOpts{BranchesUnknown: true})
	b.SetFuncOpts(0x100, brew.FuncOpts{NoInline: true})
	b.SetMemRange(0x3000, 0x4000)
	b.SetMemRange(0x1000, 0x2000)
	b.SetFloatParam(1, brew.ParamKnown)
	b.SetParamPtrToKnown(2, 64)
	b.SetParam(1, brew.ParamKnown)

	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("order-dependent fingerprint: %#x != %#x", a.Fingerprint(), b.Fingerprint())
	}
}

// TestFingerprintDuplicateRange: re-declaring a known range adds no new
// assumption and must not change the fingerprint.
func TestFingerprintDuplicateRange(t *testing.T) {
	a := brew.NewConfig().SetMemRange(0x1000, 0x2000)
	b := brew.NewConfig().SetMemRange(0x1000, 0x2000).SetMemRange(0x1000, 0x2000)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("duplicate range changed fingerprint: %#x != %#x", a.Fingerprint(), b.Fingerprint())
	}
}

// TestFingerprintUnrollSugar: UnrollFactor is declared sugar for
// BranchesUnknown+MaxVariants (config.go), so the two spellings are the
// same specialization and must share a cache slot.
func TestFingerprintUnrollSugar(t *testing.T) {
	a := brew.NewConfig().SetFuncOpts(0x100, brew.FuncOpts{UnrollFactor: 4})
	b := brew.NewConfig().SetFuncOpts(0x100, brew.FuncOpts{BranchesUnknown: true, MaxVariants: 4})
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("unroll sugar fingerprints differ: %#x != %#x", a.Fingerprint(), b.Fingerprint())
	}
	c := brew.NewConfig().SetFuncOpts(0x100, brew.FuncOpts{BranchesUnknown: true, MaxVariants: 8})
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("different unroll factors collide")
	}
	// The sugar also applies to Defaults.
	d := brew.NewConfig()
	d.Defaults = brew.FuncOpts{UnrollFactor: 4}
	e := brew.NewConfig()
	e.Defaults = brew.FuncOpts{BranchesUnknown: true, MaxVariants: 4}
	if d.Fingerprint() != e.Fingerprint() {
		t.Fatalf("Defaults unroll sugar fingerprints differ")
	}
}

// TestFingerprintDistinguishes: every declared assumption dimension must
// move the fingerprint — a collision here would let the service hand out
// the wrong specialization.
func TestFingerprintDistinguishes(t *testing.T) {
	base := func() *brew.Config { return brew.NewConfig() }
	variants := map[string]func(*brew.Config){
		"int-param":      func(c *brew.Config) { c.SetParam(1, brew.ParamKnown) },
		"int-param-pos":  func(c *brew.Config) { c.SetParam(2, brew.ParamKnown) },
		"ptr-param":      func(c *brew.Config) { c.SetParamPtrToKnown(1, 64) },
		"ptr-size":       func(c *brew.Config) { c.SetParamPtrToKnown(1, 128) },
		"float-param":    func(c *brew.Config) { c.SetFloatParam(1, brew.ParamKnown) },
		"range":          func(c *brew.Config) { c.SetMemRange(0x1000, 0x2000) },
		"range-extent":   func(c *brew.Config) { c.SetMemRange(0x1000, 0x3000) },
		"funcopts":       func(c *brew.Config) { c.SetFuncOpts(0x100, brew.FuncOpts{NoInline: true}) },
		"funcopts-addr":  func(c *brew.Config) { c.SetFuncOpts(0x200, brew.FuncOpts{NoInline: true}) },
		"dyn-marker":     func(c *brew.Config) { c.MarkDynamic(0x500) },
		"defaults":       func(c *brew.Config) { c.Defaults = brew.FuncOpts{ResultsUnknown: true} },
		"trace-limit":    func(c *brew.Config) { c.MaxTracedInstrs = 1000 },
		"block-limit":    func(c *brew.Config) { c.MaxBlocks = 7 },
		"inline-limit":   func(c *brew.Config) { c.MaxInlineDepth = 3 },
		"variants-limit": func(c *brew.Config) { c.MaxVariantsPerAddr = 5 },
		"code-limit":     func(c *brew.Config) { c.MaxCodeBytes = 4096 },
		"entry-handler":  func(c *brew.Config) { c.EntryHandler = 0x900 },
		"exit-handler":   func(c *brew.Config) { c.ExitHandler = 0x900 },
		"load-handler":   func(c *brew.Config) { c.LoadHandler = 0x900 },
		"store-handler":  func(c *brew.Config) { c.StoreHandler = 0x900 },
		"vectorize":      func(c *brew.Config) { c.Vectorize = true },
		"budget":         func(c *brew.Config) { c.Budget = &brew.Budget{} },
		"budget-instrs":  func(c *brew.Config) { c.Budget = &brew.Budget{MaxTracedInstrs: 100} },
		"budget-bytes":   func(c *brew.Config) { c.Budget = &brew.Budget{MaxEmittedBytes: 100} },
		"budget-time":    func(c *brew.Config) { c.Budget = &brew.Budget{Deadline: time.Second} },
	}
	seen := map[uint64]string{base().Fingerprint(): "base"}
	for name, mutate := range variants {
		c := base()
		mutate(c)
		got := c.Fingerprint()
		if prev, dup := seen[got]; dup {
			t.Errorf("%q collides with %q: %#x", name, prev, got)
			continue
		}
		seen[got] = name
		// Determinism: rebuilding the same variant reproduces the hash.
		c2 := base()
		mutate(c2)
		if c2.Fingerprint() != got {
			t.Errorf("%q: fingerprint not deterministic", name)
		}
	}
}

// TestFingerprintIgnoresInject: the fault-injection seam is runtime
// behavior, not a rewrite assumption, and must not enter the cache key.
func TestFingerprintIgnoresInject(t *testing.T) {
	a := brew.NewConfig()
	b := brew.NewConfig()
	b.Inject = func(string) error { return nil }
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("Inject hook changed the fingerprint")
	}
}

// TestCloneIndependent: mutating a clone must not leak into the original
// (Do relies on this for guarded requests).
func TestCloneIndependent(t *testing.T) {
	orig := brew.NewConfig()
	orig.SetParam(1, brew.ParamKnown)
	orig.SetMemRange(0x1000, 0x2000)
	orig.SetFuncOpts(0x100, brew.FuncOpts{NoInline: true})
	orig.MarkDynamic(0x500)
	orig.Budget = &brew.Budget{MaxTracedInstrs: 100}
	before := orig.Fingerprint()

	cl := orig.Clone()
	if cl.Fingerprint() != before {
		t.Fatal("clone does not fingerprint like the original")
	}
	cl.SetParam(2, brew.ParamKnown)
	cl.SetMemRange(0x3000, 0x4000)
	cl.SetFuncOpts(0x200, brew.FuncOpts{ResultsUnknown: true})
	cl.MarkDynamic(0x600)
	cl.Budget.MaxTracedInstrs = 5
	cl.MaxCodeBytes = 1024

	if orig.Fingerprint() != before {
		t.Fatal("mutating the clone changed the original")
	}
	if cl.Fingerprint() == before {
		t.Fatal("mutating the clone did not change the clone")
	}
	if class, _ := orig.IntParamClass(2); class != brew.ParamUnknown {
		t.Fatal("clone SetParam leaked into original")
	}
	if orig.Budget.MaxTracedInstrs != 100 {
		t.Fatal("clone budget mutation leaked into original")
	}
}

// TestCloneNil: Clone of a nil Config is nil, not a panic.
func TestCloneNil(t *testing.T) {
	var c *brew.Config
	if c.Clone() != nil {
		t.Fatal("Clone of nil should be nil")
	}
}
