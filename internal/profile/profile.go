// Package profile implements the value-profiling support the paper's
// Section III.D builds guarded specialization on: observe the arguments a
// function is called with, find stable values, and feed them to
// brew.RewriteGuarded.
package profile

import (
	"sort"

	"repro/internal/isa"
	"repro/internal/vm"
)

// Collector observes calls to selected functions through the machine's
// call hook and histograms their integer arguments.
type Collector struct {
	watch  map[uint64]*FuncProfile
	prev   func(uint64, *vm.CPU)
	limit  int
	closed bool
	m      *vm.Machine
}

// FuncProfile accumulates per-parameter value histograms for one function.
type FuncProfile struct {
	Addr    uint64
	Calls   uint64
	nparams int
	params  [len(isa.IntArgRegs)]map[uint64]uint64
}

// NewCollector attaches a collector to the machine. Watch at most
// maxValues distinct values per parameter (further values are dropped to
// bound memory; they still count towards Calls).
func NewCollector(m *vm.Machine, maxValues int) *Collector {
	if maxValues <= 0 {
		maxValues = 64
	}
	c := &Collector{
		watch: make(map[uint64]*FuncProfile),
		limit: maxValues,
		prev:  m.OnCall,
		m:     m,
	}
	m.OnCall = func(target uint64, cpu *vm.CPU) {
		if c.prev != nil {
			c.prev(target, cpu)
		}
		c.observe(target, cpu)
	}
	return c
}

// Watch starts profiling calls to fn, histogramming its first nparams
// integer parameters (the binary alone does not reveal arity, so the
// caller provides it; values outside 1..6 are clamped).
func (c *Collector) Watch(fn uint64, nparams int) *FuncProfile {
	if nparams < 1 {
		nparams = 1
	}
	if nparams > len(isa.IntArgRegs) {
		nparams = len(isa.IntArgRegs)
	}
	p, ok := c.watch[fn]
	if !ok {
		p = &FuncProfile{Addr: fn, nparams: nparams}
		for i := 0; i < nparams; i++ {
			p.params[i] = make(map[uint64]uint64)
		}
		c.watch[fn] = p
	}
	return p
}

// Detach restores the machine's previous call hook.
func (c *Collector) Detach() {
	if !c.closed {
		c.m.OnCall = c.prev
		c.closed = true
	}
}

func (c *Collector) observe(target uint64, cpu *vm.CPU) {
	p, ok := c.watch[target]
	if !ok {
		return
	}
	p.Calls++
	for i := 0; i < p.nparams; i++ {
		v := cpu.R[isa.IntArgRegs[i]]
		h := p.params[i]
		if _, seen := h[v]; seen || len(h) < c.limit {
			h[v]++
		}
	}
}

// ValueFreq is one observed value with its frequency.
type ValueFreq struct {
	Value uint64
	Count uint64
}

// Hot returns the most frequent value of parameter i (1-based) and the
// fraction of profiled calls it covers.
func (p *FuncProfile) Hot(i int) (ValueFreq, float64) {
	if i < 1 || i > len(p.params) || p.Calls == 0 {
		return ValueFreq{}, 0
	}
	var best ValueFreq
	for v, n := range p.params[i-1] {
		if n > best.Count || (n == best.Count && v < best.Value) {
			best = ValueFreq{Value: v, Count: n}
		}
	}
	return best, float64(best.Count) / float64(p.Calls)
}

// Top returns the n most frequent values of parameter i (1-based).
func (p *FuncProfile) Top(i, n int) []ValueFreq {
	if i < 1 || i > len(p.params) {
		return nil
	}
	var out []ValueFreq
	for v, cnt := range p.params[i-1] {
		out = append(out, ValueFreq{Value: v, Count: cnt})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Count != out[b].Count {
			return out[a].Count > out[b].Count
		}
		return out[a].Value < out[b].Value
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// StableParams returns the 1-based indices of parameters whose hottest
// value covers at least threshold of all profiled calls; the natural
// guard set for brew.RewriteGuarded.
func (p *FuncProfile) StableParams(threshold float64) []int {
	var out []int
	for i := 1; i <= p.nparams; i++ {
		if _, frac := p.Hot(i); frac >= threshold && len(p.params[i-1]) > 0 {
			out = append(out, i)
		}
	}
	return out
}
