package profile_test

import (
	"strings"
	"testing"

	"repro/internal/brew"
	"repro/internal/minc"
	"repro/internal/profile"
	"repro/internal/vm"
)

const src = `
long poly(long x, long k) {
    long r = 0;
    for (long i = 0; i < k; i++) { r = r * x + i; }
    return r;
}
long driver(long n) {
    long acc = 0;
    for (long j = 0; j < n; j++) {
        acc += poly(j, 42);
    }
    acc += poly(7, 3);
    return acc;
}
`

func setup(t *testing.T) (*vm.Machine, uint64, uint64) {
	t.Helper()
	m := vm.MustNew()
	l, err := minc.CompileAndLink(m, src, nil)
	if err != nil {
		t.Fatal(err)
	}
	poly, _ := l.FuncAddr("poly")
	driver, _ := l.FuncAddr("driver")
	return m, poly, driver
}

func TestCollectorHistograms(t *testing.T) {
	m, poly, driver := setup(t)
	c := profile.NewCollector(m, 128)
	p := c.Watch(poly, 2)
	if _, err := m.Call(driver, 10); err != nil {
		t.Fatal(err)
	}
	c.Detach()
	if p.Calls != 11 {
		t.Fatalf("calls = %d, want 11", p.Calls)
	}
	hot, frac := p.Hot(2)
	if hot.Value != 42 || frac < 0.9 {
		t.Errorf("hot param2 = %d (%.2f), want 42 (>= 0.9)", hot.Value, frac)
	}
	top := p.Top(2, 2)
	if len(top) != 2 || top[0].Value != 42 || top[1].Value != 3 {
		t.Errorf("top = %v", top)
	}
	stable := p.StableParams(0.9)
	if len(stable) != 1 || stable[0] != 2 {
		t.Errorf("stable = %v", stable)
	}
}

func TestDetachRestoresHook(t *testing.T) {
	m, poly, driver := setup(t)
	var outer int
	m.OnCall = func(uint64, *vm.CPU) { outer++ }
	c := profile.NewCollector(m, 8)
	p := c.Watch(poly, 2)
	if _, err := m.Call(driver, 2); err != nil {
		t.Fatal(err)
	}
	if outer == 0 {
		t.Error("previous hook not chained")
	}
	c.Detach()
	before := p.Calls
	if _, err := m.Call(driver, 2); err != nil {
		t.Fatal(err)
	}
	if p.Calls != before {
		t.Error("collector still active after Detach")
	}
	if outer < 6 {
		t.Errorf("outer hook lost after detach: %d", outer)
	}
}

func TestGuardedSpecializationFromProfile(t *testing.T) {
	m, poly, driver := setup(t)
	c := profile.NewCollector(m, 128)
	p := c.Watch(poly, 2)
	want, err := m.Call(driver, 50)
	if err != nil {
		t.Fatal(err)
	}
	c.Detach()

	hot, frac := p.Hot(2)
	if frac < 0.9 {
		t.Fatalf("profile not stable: %v %f", hot, frac)
	}
	g, err := brew.RewriteGuarded(m, brew.NewConfig(), poly,
		[]brew.ParamGuard{{Param: 2, Value: hot.Value}}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Hot path: guard matches, runs the specialized version.
	a, err := m.Call(g.Addr, 9, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Call(poly, 9, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("guarded hot path: %d != %d", a, b)
	}
	// Cold path: guard fails, falls back to the original.
	a, err = m.Call(g.Addr, 9, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err = m.Call(poly, 9, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("guarded cold path: %d != %d", a, b)
	}

	// The specialized version must be cheaper on the hot path.
	count := func(fn uint64) uint64 {
		before := m.Stats.Instructions
		if _, err := m.Call(fn, 9, 42); err != nil {
			t.Fatal(err)
		}
		return m.Stats.Instructions - before
	}
	if spec, orig := count(g.Addr), count(poly); spec >= orig {
		t.Errorf("guarded dispatch (%d instrs) not cheaper than original (%d)", spec, orig)
	}
	_ = want

	if !strings.Contains(g.Rewrite.Listing(), "block") {
		t.Error("missing listing")
	}
}

func TestGuardErrors(t *testing.T) {
	m, poly, _ := setup(t)
	if _, err := brew.RewriteGuarded(m, brew.NewConfig(), poly, nil, nil, nil); err == nil {
		t.Error("empty guards accepted")
	}
	if _, err := brew.RewriteGuarded(m, brew.NewConfig(), poly,
		[]brew.ParamGuard{{Param: 9, Value: 1}}, nil, nil); err == nil {
		t.Error("bad param index accepted")
	}
}
