// Package stencil reproduces the paper's Section V workload: a generic 2D
// stencil computation whose stencil form (number of points, offsets,
// coefficients) is runtime data, specialized at runtime with the BREW
// rewriter and compared against manually specialized variants.
//
// All kernels are minc source compiled to VX64 — the rewriter works on
// compiler-generated binary code it does not control, as in the paper.
package stencil

import (
	"fmt"

	"repro/internal/brew"
	"repro/internal/minc"
	"repro/internal/vm"
)

// Source is the single translation unit holding every kernel variant. The
// generic/manual kernels are invoked through function pointers from the
// sweep drivers (separate-compilation-unit behaviour); sweepInlined has
// the manual stencil written directly in the loop body (the paper's
// "same compilation unit" 0.48s variant).
const Source = `
struct P { double f; long dx; long dy; };
struct S { long ps; struct P p[]; };

// The paper's 5-point stencil: average of the four neighbours minus the
// value at the point itself.
struct S s5 = {5, {{-1.0, 0, 0},
                   {0.25, -1, 0},
                   {0.25, 1, 0},
                   {0.25, 0, -1},
                   {0.25, 0, 1}}};

// Grouped-coefficient representation (Section V.B): points with the same
// coefficient share one multiplication.
struct GP { long dx; long dy; };
struct G { double f; long n; struct GP pts[4]; };
struct SG { long gs; struct G g[]; };
struct SG sg5 = {2, {{-1.0, 1, {{0, 0}, {0, 0}, {0, 0}, {0, 0}}},
                     {0.25, 4, {{-1, 0}, {1, 0}, {0, -1}, {0, 1}}}}};

typedef double (*apply_t)(double*, long, struct S*);
typedef double (*applyg_t)(double*, long, struct SG*);

// Generic stencil application (the paper's Figure 4).
double apply(double *m, long xs, struct S *s) {
    double v = 0.0;
    for (long i = 0; i < s->ps; i++) {
        struct P *p = s->p + i;
        v += p->f * m[p->dx + xs * p->dy];
    }
    return v;
}

// Grouped generic version: one multiplication per coefficient group.
double apply_grouped(double *m, long xs, struct SG *s) {
    double v = 0.0;
    for (long gi = 0; gi < s->gs; gi++) {
        struct G *g = s->g + gi;
        double acc = 0.0;
        for (long i = 0; i < g->n; i++) {
            struct GP *p = g->pts + i;
            acc += m[p->dx + xs * p->dy];
        }
        v += g->f * acc;
    }
    return v;
}

// Manually specialized 5-point stencil; keeps the generic signature so it
// is a drop-in replacement, and (like the paper's manual version) does NOT
// exploit knowledge of the matrix side length.
double apply_manual(double *m, long xs, struct S *s) {
    return 0.25 * (m[-1] + m[1] + m[0-xs] + m[xs]) - m[0];
}

// Sweep drivers: traverse the interior and call the kernel through a
// function pointer (separate-compilation-unit behaviour).
double sweep(double *m1, double *m2, long xs, long ys, apply_t ap, struct S *s) {
    double acc = 0.0;
    for (long y = 1; y < ys - 1; y++) {
        for (long x = 1; x < xs - 1; x++) {
            double v = ap(m1 + y*xs + x, xs, s);
            m2[y*xs + x] = v;
            acc += v;
        }
    }
    return acc;
}

double sweep_grouped(double *m1, double *m2, long xs, long ys, applyg_t ap, struct SG *s) {
    double acc = 0.0;
    for (long y = 1; y < ys - 1; y++) {
        for (long x = 1; x < xs - 1; x++) {
            double v = ap(m1 + y*xs + x, xs, s);
            m2[y*xs + x] = v;
            acc += v;
        }
    }
    return acc;
}

// The "same compilation unit" variant: with the stencil visible in the
// loop, the compiler reuses values across neighbouring applications
// (paper, Section V.B: "Reuse of values ... across stencil updates is
// important but not possible if the stencil update code is part of
// another compilation unit"). minc does not inline or reuse on its own,
// so the source spells out what gcc -O2 produces: the row window
// (left, center, right) rotates instead of being reloaded.
double sweep_inlined(double *m1, double *m2, long xs, long ys) {
    double acc = 0.0;
    for (long y = 1; y < ys - 1; y++) {
        long row = y * xs;
        double left = m1[row];
        double center = m1[row + 1];
        for (long x = 1; x < xs - 1; x++) {
            long c = row + x;
            double right = m1[c + 1];
            double v = 0.25 * (left + right + m1[c - xs] + m1[c + xs]) - center;
            m2[c] = v;
            acc += v;
            left = center;
            center = right;
        }
    }
    return acc;
}
`

// StructSSize is the byte size of the initialized s5 global (header plus
// five 24-byte points).
const StructSSize = 8 + 5*24

// StructSGSize is the byte size of the initialized sg5 global (header plus
// two groups of 8+8+4*16 bytes).
const StructSGSize = 8 + 2*(8+8+4*16)

// Workload is a ready-to-run stencil system: compiled kernels plus two
// matrices in simulated memory.
type Workload struct {
	M      *vm.Machine
	L      *minc.Linked
	XS, YS int
	M1, M2 uint64

	Apply        uint64 // generic kernel
	ApplyGrouped uint64
	ApplyManual  uint64
	Sweep        uint64 // function-pointer sweep over struct S kernels
	SweepGrouped uint64
	SweepInlined uint64
	S5, SG5      uint64 // stencil descriptor globals
}

// New compiles the kernels into a fresh machine and allocates xs*ys
// matrices initialized with a deterministic pattern.
func New(m *vm.Machine, xs, ys int) (*Workload, error) {
	l, err := minc.CompileAndLink(m, Source, nil)
	if err != nil {
		return nil, fmt.Errorf("stencil: %w", err)
	}
	w := &Workload{M: m, L: l, XS: xs, YS: ys}
	for name, dst := range map[string]*uint64{
		"apply": &w.Apply, "apply_grouped": &w.ApplyGrouped,
		"apply_manual": &w.ApplyManual, "sweep": &w.Sweep,
		"sweep_grouped": &w.SweepGrouped, "sweep_inlined": &w.SweepInlined,
	} {
		a, err := l.FuncAddr(name)
		if err != nil {
			return nil, err
		}
		*dst = a
	}
	if w.S5, err = l.GlobalAddr("s5"); err != nil {
		return nil, err
	}
	if w.SG5, err = l.GlobalAddr("sg5"); err != nil {
		return nil, err
	}
	n := uint64(xs * ys * 8)
	if w.M1, err = m.AllocHeap(n); err != nil {
		return nil, err
	}
	if w.M2, err = m.AllocHeap(n); err != nil {
		return nil, err
	}
	if err := w.ResetMatrices(); err != nil {
		return nil, err
	}
	return w, nil
}

// ResetMatrices reinitializes m1 with the deterministic pattern and zeros
// m2.
func (w *Workload) ResetMatrices() error {
	vals := make([]float64, w.XS*w.YS)
	for i := range vals {
		vals[i] = float64((i*31)%17) * 0.125
	}
	if err := w.M.WriteF64Slice(w.M1, vals); err != nil {
		return err
	}
	return w.M.WriteF64Slice(w.M2, make([]float64, w.XS*w.YS))
}

// RunSweeps performs iters sweeps through the function-pointer driver with
// the given kernel, swapping source and destination after each iteration
// (the paper's 1000-iteration setup). It returns the final checksum.
func (w *Workload) RunSweeps(kernel uint64, grouped bool, iters int) (float64, error) {
	driver := w.Sweep
	desc := w.S5
	if grouped {
		driver = w.SweepGrouped
		desc = w.SG5
	}
	src, dst := w.M1, w.M2
	var acc float64
	for i := 0; i < iters; i++ {
		v, err := w.M.CallFloat(driver, []uint64{src, dst, uint64(w.XS), uint64(w.YS), kernel, desc}, nil)
		if err != nil {
			return 0, err
		}
		acc = v
		src, dst = dst, src
	}
	return acc, nil
}

// RunSweepsInlined is RunSweeps for the direct (same-compilation-unit)
// sweep or any rewritten whole-sweep function with the same signature.
func (w *Workload) RunSweepsInlined(sweepFn uint64, iters int) (float64, error) {
	src, dst := w.M1, w.M2
	var acc float64
	for i := 0; i < iters; i++ {
		v, err := w.M.CallFloat(sweepFn, []uint64{src, dst, uint64(w.XS), uint64(w.YS)}, nil)
		if err != nil {
			return 0, err
		}
		acc = v
		src, dst = dst, src
	}
	return acc, nil
}

// ApplyConfig returns the E1c rewrite configuration and parameter setting
// for the generic kernel: matrix width and stencil descriptor known (the
// paper's Figure 5 configuration).
func (w *Workload) ApplyConfig() (*brew.Config, []uint64) {
	cfg := brew.NewConfig().
		SetParam(2, brew.ParamKnown).
		SetParamPtrToKnown(3, StructSSize)
	return cfg, []uint64{0, uint64(w.XS), w.S5}
}

// GroupedConfig returns the E2b rewrite configuration and parameter
// setting for the grouped kernel.
func (w *Workload) GroupedConfig() (*brew.Config, []uint64) {
	cfg := brew.NewConfig().
		SetParam(2, brew.ParamKnown).
		SetParamPtrToKnown(3, StructSGSize)
	return cfg, []uint64{0, uint64(w.XS), w.SG5}
}

// SweepConfig returns the E3b rewrite configuration and parameter setting
// for the whole function-pointer sweep: matrix width, kernel pointer and
// stencil descriptor known, loop unrolling disabled for the driver itself.
func (w *Workload) SweepConfig() (*brew.Config, []uint64) {
	cfg := brew.NewConfig().
		SetParam(3, brew.ParamKnown).
		SetParam(5, brew.ParamKnown).
		SetParamPtrToKnown(6, StructSSize)
	cfg.SetFuncOpts(w.Sweep, brew.FuncOpts{BranchesUnknown: true, ResultsUnknown: true})
	return cfg, []uint64{0, 0, uint64(w.XS), 0, w.Apply, w.S5}
}

// RewriteApply specializes the generic kernel for the workload's matrix
// width and the s5 stencil (the paper's Figure 5 configuration).
func (w *Workload) RewriteApply() (*brew.Result, error) {
	cfg, args := w.ApplyConfig()
	out, err := brew.Do(w.M, &brew.Request{Config: cfg, Fn: w.Apply, Args: args})
	if err != nil {
		return nil, err
	}
	return out.Result, nil
}

// RewriteApplyGrouped specializes the grouped kernel.
func (w *Workload) RewriteApplyGrouped() (*brew.Result, error) {
	cfg, args := w.GroupedConfig()
	out, err := brew.Do(w.M, &brew.Request{Config: cfg, Fn: w.ApplyGrouped, Args: args})
	if err != nil {
		return nil, err
	}
	return out.Result, nil
}

// RewriteSweep specializes the whole function-pointer sweep: matrix width,
// kernel pointer and stencil descriptor known, loop unrolling disabled for
// the driver itself (E3b). The result has the sweep_inlined signature from
// the caller's perspective except that the kernel and descriptor arguments
// are folded away; it must be called with the full argument list.
func (w *Workload) RewriteSweep() (*brew.Result, error) {
	cfg, args := w.SweepConfig()
	out, err := brew.Do(w.M, &brew.Request{Config: cfg, Fn: w.Sweep, Args: args})
	if err != nil {
		return nil, err
	}
	return out.Result, nil
}

// RunRewrittenSweeps drives a whole-sweep rewrite (from RewriteSweep),
// passing the original argument list.
func (w *Workload) RunRewrittenSweeps(fn uint64, iters int) (float64, error) {
	src, dst := w.M1, w.M2
	var acc float64
	for i := 0; i < iters; i++ {
		v, err := w.M.CallFloat(fn, []uint64{src, dst, uint64(w.XS), uint64(w.YS), w.Apply, w.S5}, nil)
		if err != nil {
			return 0, err
		}
		acc = v
		src, dst = dst, src
	}
	return acc, nil
}

// Golden computes iters sweeps in Go and returns the final checksum;
// the reference the VX64 kernels are validated against.
func (w *Workload) Golden(iters int) float64 {
	xs, ys := w.XS, w.YS
	m1 := make([]float64, xs*ys)
	m2 := make([]float64, xs*ys)
	for i := range m1 {
		m1[i] = float64((i*31)%17) * 0.125
	}
	var acc float64
	for it := 0; it < iters; it++ {
		acc = 0
		for y := 1; y < ys-1; y++ {
			for x := 1; x < xs-1; x++ {
				c := y*xs + x
				v := 0.25*(m1[c-1]+m1[c+1]+m1[c-xs]+m1[c+xs]) - m1[c]
				m2[c] = v
				acc += v
			}
		}
		m1, m2 = m2, m1
	}
	return acc
}
