package stencil

import (
	"math"
	"testing"

	"repro/internal/vm"
)

func newWorkload(t *testing.T, xs, ys int) *Workload {
	t.Helper()
	w, err := New(vm.MustNew(), xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestAllVariantsAgreeWithGolden(t *testing.T) {
	const xs, ys, iters = 12, 10, 3
	want := newWorkload(t, xs, ys).Golden(iters)

	run := func(name string, f func(w *Workload) (float64, error)) {
		t.Run(name, func(t *testing.T) {
			w := newWorkload(t, xs, ys)
			got, err := f(w)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-want) > 1e-9 {
				t.Errorf("checksum = %g, want %g", got, want)
			}
		})
	}

	run("generic", func(w *Workload) (float64, error) {
		return w.RunSweeps(w.Apply, false, iters)
	})
	run("grouped", func(w *Workload) (float64, error) {
		return w.RunSweeps(w.ApplyGrouped, true, iters)
	})
	run("manual", func(w *Workload) (float64, error) {
		return w.RunSweeps(w.ApplyManual, false, iters)
	})
	run("inlined", func(w *Workload) (float64, error) {
		return w.RunSweepsInlined(w.SweepInlined, iters)
	})
	run("rewritten", func(w *Workload) (float64, error) {
		res, err := w.RewriteApply()
		if err != nil {
			return 0, err
		}
		return w.RunSweeps(res.Addr, false, iters)
	})
	run("rewritten-grouped", func(w *Workload) (float64, error) {
		res, err := w.RewriteApplyGrouped()
		if err != nil {
			return 0, err
		}
		return w.RunSweeps(res.Addr, true, iters)
	})
	run("rewritten-sweep", func(w *Workload) (float64, error) {
		res, err := w.RewriteSweep()
		if err != nil {
			return 0, err
		}
		return w.RunRewrittenSweeps(res.Addr, iters)
	})
}

func TestSpecializationOrdering(t *testing.T) {
	// The paper's performance ordering, in emulated cycles:
	//   generic > rewritten >= manual-ish > whole-sweep rewrite
	const xs, ys, iters = 24, 16, 2
	cycles := func(f func(w *Workload) (float64, error)) uint64 {
		w := newWorkload(t, xs, ys)
		before := w.M.Stats.Cycles
		if _, err := f(w); err != nil {
			t.Fatal(err)
		}
		return w.M.Stats.Cycles - before
	}
	generic := cycles(func(w *Workload) (float64, error) {
		return w.RunSweeps(w.Apply, false, iters)
	})
	manual := cycles(func(w *Workload) (float64, error) {
		return w.RunSweeps(w.ApplyManual, false, iters)
	})
	rewritten := cycles(func(w *Workload) (float64, error) {
		res, err := w.RewriteApply()
		if err != nil {
			return 0, err
		}
		return w.RunSweeps(res.Addr, false, iters)
	})
	sweepRw := cycles(func(w *Workload) (float64, error) {
		res, err := w.RewriteSweep()
		if err != nil {
			return 0, err
		}
		return w.RunRewrittenSweeps(res.Addr, iters)
	})
	t.Logf("cycles: generic=%d manual=%d rewritten=%d sweep-rewrite=%d", generic, manual, rewritten, sweepRw)
	if !(rewritten < generic) {
		t.Errorf("rewritten (%d) should beat generic (%d)", rewritten, generic)
	}
	if !(manual < generic) {
		t.Errorf("manual (%d) should beat generic (%d)", manual, generic)
	}
	if !(sweepRw < manual) {
		t.Errorf("whole-sweep rewrite (%d) should beat per-point manual (%d)", sweepRw, manual)
	}
}

func TestGroupedGenericSlowerButRewriteBetter(t *testing.T) {
	// Section V.B: the grouped generic is ~10% slower than the plain
	// generic, but its rewrite is better than the plain rewrite.
	const xs, ys, iters = 24, 16, 2
	type res struct{ plain, grouped uint64 }
	var generic, rewritten res

	w := newWorkload(t, xs, ys)
	before := w.M.Stats.Cycles
	if _, err := w.RunSweeps(w.Apply, false, iters); err != nil {
		t.Fatal(err)
	}
	generic.plain = w.M.Stats.Cycles - before

	before = w.M.Stats.Cycles
	if _, err := w.RunSweeps(w.ApplyGrouped, true, iters); err != nil {
		t.Fatal(err)
	}
	generic.grouped = w.M.Stats.Cycles - before

	r1, err := w.RewriteApply()
	if err != nil {
		t.Fatal(err)
	}
	before = w.M.Stats.Cycles
	if _, err := w.RunSweeps(r1.Addr, false, iters); err != nil {
		t.Fatal(err)
	}
	rewritten.plain = w.M.Stats.Cycles - before

	r2, err := w.RewriteApplyGrouped()
	if err != nil {
		t.Fatal(err)
	}
	before = w.M.Stats.Cycles
	if _, err := w.RunSweeps(r2.Addr, true, iters); err != nil {
		t.Fatal(err)
	}
	rewritten.grouped = w.M.Stats.Cycles - before

	t.Logf("generic: plain=%d grouped=%d; rewritten: plain=%d grouped=%d",
		generic.plain, generic.grouped, rewritten.plain, rewritten.grouped)
	if generic.grouped <= generic.plain {
		t.Errorf("grouped generic (%d) should be slower than plain generic (%d)", generic.grouped, generic.plain)
	}
	if rewritten.grouped >= rewritten.plain {
		t.Errorf("grouped rewrite (%d) should beat plain rewrite (%d)", rewritten.grouped, rewritten.plain)
	}
}

func TestRewriteApplyIsStraightLine(t *testing.T) {
	w := newWorkload(t, 16, 8)
	res, err := w.RewriteApply()
	if err != nil {
		t.Fatal(err)
	}
	if res.Blocks != 1 {
		t.Errorf("specialized apply should be a single block, got %d:\n%s", res.Blocks, res.Listing())
	}
}

func TestResetMatrices(t *testing.T) {
	w := newWorkload(t, 8, 8)
	if _, err := w.RunSweeps(w.Apply, false, 1); err != nil {
		t.Fatal(err)
	}
	if err := w.ResetMatrices(); err != nil {
		t.Fatal(err)
	}
	v, err := w.M.ReadF64Slice(w.M2, 8*8)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range v {
		if x != 0 {
			t.Fatalf("m2[%d] = %g after reset", i, x)
		}
	}
}
