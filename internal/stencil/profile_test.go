package stencil

import (
	"strings"
	"testing"

	"repro/internal/vm"
)

// TestProfilerE1aTopIsApply samples the generic function-pointer sweep
// (E1a) and checks the profiler attributes the heat to the generic apply
// kernel, with minc source lines resolved through the line table.
func TestProfilerE1aTopIsApply(t *testing.T) {
	w := newWorkload(t, 32, 24)
	p := vm.NewProfiler(200, w.L.Lines.Lookup)
	w.M.AttachProfiler(p)
	if _, err := w.RunSweeps(w.Apply, false, 1); err != nil {
		t.Fatal(err)
	}
	if p.TotalSamples() == 0 {
		t.Fatal("no samples recorded")
	}
	top := p.Top(3)
	if top[0].Name != "apply" {
		t.Fatalf("hottest function = %q, want apply (top: %+v)", top[0].Name, top)
	}
	var attributed uint64
	for _, l := range top[0].Lines {
		if l.Line > 0 {
			attributed += l.Samples
		}
	}
	if attributed == 0 {
		t.Error("no apply samples attributed to a source line")
	}
	folded := p.FoldedStacks()
	if !strings.Contains(folded, "sweep;apply ") {
		t.Errorf("folded stacks missing sweep;apply frame:\n%s", folded)
	}
	if out := p.RenderTop(3); !strings.Contains(out, "apply") {
		t.Errorf("RenderTop missing apply:\n%s", out)
	}
}
