package stencil

import (
	"fmt"
	"testing"

	"repro/internal/vm"
)

func TestDumpRewrites(t *testing.T) {
	w, err := New(vm.MustNew(), 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := w.RewriteApply()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := w.RewriteApplyGrouped()
	if err != nil {
		t.Fatal(err)
	}
	fmt.Println("=== plain ===")
	fmt.Println(r1.Listing())
	fmt.Println("=== grouped ===")
	fmt.Println(r2.Listing())
}
