// Package cache models a multi-level set-associative data-cache hierarchy
// with LRU replacement. The VX64 emulator charges every memory access the
// latency this model reports, which is how the reproduction recovers the
// paper's performance effects ("the space traversed for the 2 matrices is
// 4 MB, fitting into L3") without real hardware.
package cache

import "fmt"

// Level configures one cache level.
type Level struct {
	Name     string
	Size     int // bytes
	LineSize int // bytes, power of two
	Assoc    int // ways
	Latency  int // cycles charged on a hit at this level
}

// Stats counts accesses at one level.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64 // lines displaced from a full set on fill
}

// Accesses returns total accesses at the level.
func (s Stats) Accesses() uint64 { return s.Hits + s.Misses }

// HitRate returns the fraction of accesses that hit (0 if no accesses).
func (s Stats) HitRate() float64 {
	if s.Accesses() == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses())
}

type set struct {
	tags []uint64 // index 0 = most recently used
}

type level struct {
	cfg      Level
	sets     []set
	setShift uint // log2(LineSize)
	setMask  uint64
	stats    Stats
}

// Hierarchy is a stack of inclusive cache levels in front of main memory.
type Hierarchy struct {
	levels     []*level
	memLatency int
}

// Default returns a hierarchy modeled after the paper's evaluation machine
// (Intel i7-3740QM): 32 KiB 8-way L1D, 256 KiB 8-way L2, 6 MiB 12-way L3,
// 64-byte lines.
func Default() *Hierarchy {
	h, err := New([]Level{
		{Name: "L1", Size: 32 << 10, LineSize: 64, Assoc: 8, Latency: 4},
		{Name: "L2", Size: 256 << 10, LineSize: 64, Assoc: 8, Latency: 12},
		{Name: "L3", Size: 6 << 20, LineSize: 64, Assoc: 12, Latency: 36},
	}, 160)
	if err != nil {
		panic(err) // static configuration; cannot fail
	}
	return h
}

// New builds a hierarchy from level configs (ordered L1 first) and the
// latency of main memory.
func New(cfgs []Level, memLatency int) (*Hierarchy, error) {
	h := &Hierarchy{memLatency: memLatency}
	for _, c := range cfgs {
		if c.LineSize <= 0 || c.LineSize&(c.LineSize-1) != 0 {
			return nil, fmt.Errorf("cache %s: line size %d not a power of two", c.Name, c.LineSize)
		}
		if c.Assoc <= 0 || c.Size <= 0 {
			return nil, fmt.Errorf("cache %s: bad geometry", c.Name)
		}
		nsets := c.Size / (c.LineSize * c.Assoc)
		if nsets == 0 || nsets&(nsets-1) != 0 {
			return nil, fmt.Errorf("cache %s: %d sets (size/line/assoc must give a power of two)", c.Name, nsets)
		}
		lv := &level{cfg: c, sets: make([]set, nsets), setMask: uint64(nsets - 1)}
		for s := c.LineSize; s > 1; s >>= 1 {
			lv.setShift++
		}
		for i := range lv.sets {
			lv.sets[i].tags = make([]uint64, 0, c.Assoc)
		}
		h.levels = append(h.levels, lv)
	}
	return h, nil
}

// Access simulates an access of size bytes at addr and returns the latency
// in cycles. Accesses spanning multiple lines charge each line.
func (h *Hierarchy) Access(addr uint64, size int) int {
	if len(h.levels) == 0 || size <= 0 {
		// size == 0 must not reach the line walk: addr+size-1 would wrap
		// and the loop would visit (nearly) every line in the 64-bit space.
		return 0
	}
	line := uint64(h.levels[0].cfg.LineSize)
	first := addr &^ (line - 1)
	last := (addr + uint64(size) - 1) &^ (line - 1)
	lat := 0
	for a := first; ; a += line {
		lat += h.accessLine(a)
		if a == last {
			break
		}
	}
	return lat
}

func (h *Hierarchy) accessLine(addr uint64) int {
	lat := 0
	hitLevel := len(h.levels) // == miss everywhere
	for i, lv := range h.levels {
		if lv.lookup(addr) {
			lv.stats.Hits++
			hitLevel = i
			lat += lv.cfg.Latency
			break
		}
		lv.stats.Misses++
		lat += lv.cfg.Latency
	}
	if hitLevel == len(h.levels) {
		lat += h.memLatency
	}
	// Fill all levels above the hit (inclusive hierarchy).
	for i := 0; i < hitLevel && i < len(h.levels); i++ {
		h.levels[i].fill(addr)
	}
	return lat
}

func (lv *level) lookup(addr uint64) bool {
	tag := addr >> lv.setShift
	s := &lv.sets[tag&lv.setMask]
	for i, t := range s.tags {
		if t == tag {
			// Move to MRU position.
			copy(s.tags[1:i+1], s.tags[:i])
			s.tags[0] = tag
			return true
		}
	}
	return false
}

func (lv *level) fill(addr uint64) {
	tag := addr >> lv.setShift
	s := &lv.sets[tag&lv.setMask]
	if len(s.tags) < lv.cfg.Assoc {
		s.tags = append(s.tags, 0)
	} else {
		lv.stats.Evictions++ // LRU tag at the tail is overwritten below
	}
	copy(s.tags[1:], s.tags)
	s.tags[0] = tag
}

// Stats returns per-level statistics keyed by level name, in order.
func (h *Hierarchy) Stats() []struct {
	Name string
	Stats
} {
	out := make([]struct {
		Name string
		Stats
	}, len(h.levels))
	for i, lv := range h.levels {
		out[i].Name = lv.cfg.Name
		out[i].Stats = lv.stats
	}
	return out
}

// Reset clears contents and statistics.
func (h *Hierarchy) Reset() {
	for _, lv := range h.levels {
		for i := range lv.sets {
			lv.sets[i].tags = lv.sets[i].tags[:0]
		}
		lv.stats = Stats{}
	}
}

// Flush clears cache contents but keeps statistics.
func (h *Hierarchy) Flush() {
	for _, lv := range h.levels {
		for i := range lv.sets {
			lv.sets[i].tags = lv.sets[i].tags[:0]
		}
	}
}
