package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func single(t *testing.T, size, line, assoc, lat, memLat int) *Hierarchy {
	t.Helper()
	h, err := New([]Level{{Name: "L1", Size: size, LineSize: line, Assoc: assoc, Latency: lat}}, memLat)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestColdMissThenHit(t *testing.T) {
	h := single(t, 1024, 64, 2, 4, 100)
	if lat := h.Access(0, 8); lat != 104 {
		t.Errorf("cold miss latency = %d, want 104", lat)
	}
	if lat := h.Access(0, 8); lat != 4 {
		t.Errorf("hit latency = %d, want 4", lat)
	}
	// Same line, different offset: still a hit.
	if lat := h.Access(56, 8); lat != 4 {
		t.Errorf("same-line hit latency = %d, want 4", lat)
	}
	// Next line: miss.
	if lat := h.Access(64, 8); lat != 104 {
		t.Errorf("next-line latency = %d, want 104", lat)
	}
}

func TestStraddlingAccessChargesBothLines(t *testing.T) {
	h := single(t, 1024, 64, 2, 4, 100)
	if lat := h.Access(60, 8); lat != 208 {
		t.Errorf("straddling cold access = %d, want 208", lat)
	}
	if lat := h.Access(60, 8); lat != 8 {
		t.Errorf("straddling warm access = %d, want 8", lat)
	}
}

func TestLRUEviction(t *testing.T) {
	// 2-way, one line per way per set; sets = 1024/(64*2) = 8.
	h := single(t, 1024, 64, 2, 4, 100)
	// Three lines mapping to the same set (stride = nsets*line = 512).
	a, b, c := uint64(0), uint64(512), uint64(1024)
	h.Access(a, 1)
	h.Access(b, 1)
	h.Access(a, 1) // a is now MRU, b LRU
	h.Access(c, 1) // evicts b
	if lat := h.Access(a, 1); lat != 4 {
		t.Errorf("a should still hit, lat=%d", lat)
	}
	if lat := h.Access(b, 1); lat != 104 {
		t.Errorf("b should have been evicted, lat=%d", lat)
	}
}

func TestMultiLevelFill(t *testing.T) {
	h, err := New([]Level{
		{Name: "L1", Size: 128, LineSize: 64, Assoc: 1, Latency: 4},
		{Name: "L2", Size: 1024, LineSize: 64, Assoc: 2, Latency: 12},
	}, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Cold: L1 miss + L2 miss + memory.
	if lat := h.Access(0, 1); lat != 116 {
		t.Errorf("cold = %d, want 116", lat)
	}
	// Evict line 0 from tiny L1 (2 sets, 1 way: line 0 -> set 0, 128 -> set 0).
	h.Access(128, 1)
	// Line 0 should now hit in L2: L1 miss(4) + L2 hit(12).
	if lat := h.Access(0, 1); lat != 16 {
		t.Errorf("L2 hit = %d, want 16", lat)
	}
	st := h.Stats()
	if st[0].Name != "L1" || st[1].Name != "L2" {
		t.Fatalf("stats order: %+v", st)
	}
	if st[1].Hits != 1 {
		t.Errorf("L2 hits = %d, want 1", st[1].Hits)
	}
}

func TestWorkingSetFitsVsThrashes(t *testing.T) {
	// The paper's key locality argument: a working set within capacity is
	// fast on re-traversal; beyond capacity it keeps missing.
	h := single(t, 8192, 64, 8, 4, 100)
	sweep := func(bytes int) int {
		total := 0
		for a := 0; a < bytes; a += 8 {
			total += h.Access(uint64(a), 8)
		}
		return total
	}
	sweep(4096)         // warm small set
	warm := sweep(4096) // must hit everywhere
	if warm != 4*4096/8 {
		t.Errorf("warm sweep latency = %d, want all-hit %d", warm, 4*4096/8)
	}
	h.Reset()
	sweep(1 << 20)        // way beyond capacity
	big := sweep(1 << 20) // still mostly misses
	if big <= 4*(1<<20)/8*2 {
		t.Errorf("thrashing sweep too fast: %d", big)
	}
}

func TestBadGeometryRejected(t *testing.T) {
	if _, err := New([]Level{{Name: "x", Size: 100, LineSize: 60, Assoc: 1, Latency: 1}}, 1); err == nil {
		t.Error("non-power-of-two line accepted")
	}
	if _, err := New([]Level{{Name: "x", Size: 0, LineSize: 64, Assoc: 1, Latency: 1}}, 1); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := New([]Level{{Name: "x", Size: 64 * 3, LineSize: 64, Assoc: 1, Latency: 1}}, 1); err == nil {
		t.Error("3 sets accepted")
	}
}

func TestResetAndFlush(t *testing.T) {
	h := single(t, 1024, 64, 2, 4, 100)
	h.Access(0, 8)
	h.Access(0, 8)
	h.Flush()
	if lat := h.Access(0, 8); lat != 104 {
		t.Errorf("after flush: %d, want miss", lat)
	}
	if h.Stats()[0].Hits != 1 {
		t.Errorf("flush cleared stats: %+v", h.Stats()[0])
	}
	h.Reset()
	if s := h.Stats()[0]; s.Hits != 0 || s.Misses != 0 {
		t.Errorf("reset kept stats: %+v", s)
	}
}

func TestDefaultHierarchy(t *testing.T) {
	h := Default()
	if len(h.levels) != 3 {
		t.Fatalf("default levels = %d", len(h.levels))
	}
	h.Access(0, 8)
	st := h.Stats()
	if st[0].Misses != 1 || st[1].Misses != 1 || st[2].Misses != 1 {
		t.Errorf("cold access should miss all levels: %+v", st)
	}
}

// Property: hit rate of repeated accesses within a small working set is 100%
// after warmup, for random geometries.
func TestWarmWorkingSetProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		lineLog := 4 + r.Intn(3) // 16..64
		line := 1 << lineLog
		assoc := 1 + r.Intn(4)
		nsets := 1 << (1 + r.Intn(5))
		size := line * assoc * nsets
		h, err := New([]Level{{Name: "p", Size: size, LineSize: line, Assoc: assoc, Latency: 1}}, 50)
		if err != nil {
			return false
		}
		ws := size / 2
		for a := 0; a < ws; a += 8 {
			h.Access(uint64(a), 8)
		}
		before := h.Stats()[0]
		for a := 0; a < ws; a += 8 {
			h.Access(uint64(a), 8)
		}
		after := h.Stats()[0]
		return after.Misses == before.Misses // second pass all hits
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestStatsHitRate(t *testing.T) {
	var s Stats
	if s.HitRate() != 0 {
		t.Error("empty hit rate should be 0")
	}
	s = Stats{Hits: 3, Misses: 1}
	if s.HitRate() != 0.75 || s.Accesses() != 4 {
		t.Errorf("hit rate %v accesses %d", s.HitRate(), s.Accesses())
	}
}

// TestPerLevelStatsKnownPattern drives a hand-checkable access sequence
// through a one-set two-way cache and verifies hits, misses and evictions
// exactly.
func TestPerLevelStatsKnownPattern(t *testing.T) {
	h := single(t, 128, 64, 2, 4, 100) // one set, two ways
	for _, addr := range []uint64{
		0,   // miss, fill          -> [A]
		64,  // miss, fill          -> [B A]
		0,   // hit                 -> [A B]
		128, // miss, evicts B      -> [C A]
		64,  // miss, evicts A      -> [B C]
		128, // hit                 -> [C B]
	} {
		h.Access(addr, 8)
	}
	st := h.Stats()[0]
	if st.Hits != 2 || st.Misses != 4 || st.Evictions != 2 {
		t.Errorf("got hits=%d misses=%d evictions=%d, want 2/4/2", st.Hits, st.Misses, st.Evictions)
	}
}

// TestTwoLevelStatsKnownPattern checks the per-level split of an inclusive
// two-level hierarchy: L1 thrashes (direct-mapped, one set) while L2 keeps
// both lines.
func TestTwoLevelStatsKnownPattern(t *testing.T) {
	h, err := New([]Level{
		{Name: "L1", Size: 64, LineSize: 64, Assoc: 1, Latency: 4},
		{Name: "L2", Size: 128, LineSize: 64, Assoc: 2, Latency: 12},
	}, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, addr := range []uint64{
		0,  // L1 miss, L2 miss, fill both
		64, // L1 miss (evicts A), L2 miss, fill
		0,  // L1 miss (evicts B), L2 hit
		0,  // L1 hit
	} {
		h.Access(addr, 8)
	}
	st := h.Stats()
	if l1 := st[0]; l1.Hits != 1 || l1.Misses != 3 || l1.Evictions != 2 {
		t.Errorf("L1 hits=%d misses=%d evictions=%d, want 1/3/2", l1.Hits, l1.Misses, l1.Evictions)
	}
	if l2 := st[1]; l2.Hits != 1 || l2.Misses != 2 || l2.Evictions != 0 {
		t.Errorf("L2 hits=%d misses=%d evictions=%d, want 1/2/0", l2.Hits, l2.Misses, l2.Evictions)
	}
}
