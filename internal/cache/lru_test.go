package cache

import "testing"

// TestAccessSizeZeroNoUnderflow is the regression test for an underflow in
// Access: with size == 0, `addr + size - 1` wrapped around and the line walk
// iterated over (nearly) the whole 64-bit address space. A zero- or
// negative-sized access must cost nothing and touch no state.
func TestAccessSizeZeroNoUnderflow(t *testing.T) {
	h := single(t, 1024, 64, 2, 4, 100)
	if lat := h.Access(0, 0); lat != 0 {
		t.Errorf("Access(0, 0) = %d, want 0", lat)
	}
	if lat := h.Access(12345, 0); lat != 0 {
		t.Errorf("Access(12345, 0) = %d, want 0", lat)
	}
	if lat := h.Access(64, -8); lat != 0 {
		t.Errorf("Access(64, -8) = %d, want 0", lat)
	}
	for _, s := range h.Stats() {
		if s.Accesses() != 0 {
			t.Errorf("%s recorded %d accesses for size<=0 requests", s.Name, s.Accesses())
		}
	}
	// An empty hierarchy is free too.
	empty, err := New(nil, 100)
	if err != nil {
		t.Fatal(err)
	}
	if lat := empty.Access(0, 8); lat != 0 {
		t.Errorf("empty hierarchy Access = %d, want 0", lat)
	}
}

// TestLRUEvictionOrderFullAssoc fills one set to full associativity and
// checks that a conflict evicts exactly the least recently used way.
func TestLRUEvictionOrderFullAssoc(t *testing.T) {
	// 4-way, sets = 2048/(64*4) = 8, so stride 512 maps to the same set.
	h := single(t, 2048, 64, 4, 4, 100)
	lines := []uint64{0, 512, 1024, 1536, 2048} // five lines, one set
	for _, a := range lines[:4] {
		h.Access(a, 8) // cold fill; MRU order now 1536, 1024, 512, 0
	}
	h.Access(lines[4], 8) // conflict: must evict line 0 (LRU)
	if lat := h.Access(lines[0], 8); lat != 104 {
		t.Errorf("evicted LRU line should miss: latency %d, want 104", lat)
	}
	// Line 0's refill in turn evicted 512 (LRU after the 2048 fill);
	// the remaining three stayed resident.
	for _, a := range []uint64{1024, 1536, 2048} {
		if lat := h.Access(a, 8); lat != 4 {
			t.Errorf("line 0x%x should still hit: latency %d, want 4", a, lat)
		}
	}
	if lat := h.Access(512, 8); lat != 104 {
		t.Errorf("second-oldest line should have been evicted next: latency %d, want 104", lat)
	}
}

// TestMRUPromotionOnHit: a hit must move the line to the MRU position, so
// the *other* resident line is the eviction victim.
func TestMRUPromotionOnHit(t *testing.T) {
	h := single(t, 1024, 64, 2, 4, 100)
	a, b, c := uint64(0), uint64(512), uint64(1024) // one 2-way set
	h.Access(a, 8)                                  // order: a
	h.Access(b, 8)                                  // order: b, a
	h.Access(a, 8)                                  // hit promotes a: order a, b
	h.Access(c, 8)                                  // evicts b, not a
	if lat := h.Access(a, 8); lat != 4 {
		t.Errorf("promoted line was evicted: latency %d, want 4", lat)
	}
	if lat := h.Access(b, 8); lat != 104 {
		t.Errorf("unpromoted line should have been the victim: latency %d, want 104", lat)
	}
}

// TestMultiLineSpanLatency: an access spanning N lines charges each line
// independently, both cold and warm.
func TestMultiLineSpanLatency(t *testing.T) {
	h := single(t, 4096, 64, 4, 4, 100)
	// 256 bytes at an aligned base: exactly 4 lines.
	if lat := h.Access(0, 256); lat != 4*104 {
		t.Errorf("4-line cold span = %d, want %d", lat, 4*104)
	}
	if lat := h.Access(0, 256); lat != 4*4 {
		t.Errorf("4-line warm span = %d, want %d", lat, 4*4)
	}
	// Misaligned span: bytes [100, 240) touch lines 64, 128, 192 — the
	// head and tail partial lines count like full ones.
	h2 := single(t, 4096, 64, 4, 4, 100)
	if lat := h2.Access(100, 140); lat != 3*104 {
		t.Errorf("misaligned 3-line cold span = %d, want %d", lat, 3*104)
	}
	if lat := h2.Access(100, 140); lat != 3*4 {
		t.Errorf("misaligned 3-line warm span = %d, want %d", lat, 3*4)
	}
}
