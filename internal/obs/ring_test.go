package obs

import (
	"sync"
	"testing"
)

// Below capacity nothing is overwritten: every recorded event comes back
// from Dump, in order, gap-free.
func TestRingNoLossBelowCapacity(t *testing.T) {
	r := NewRecorder(64)
	if r.Capacity() != 64 {
		t.Fatalf("capacity = %d, want 64", r.Capacity())
	}
	const n = 63
	for i := 0; i < n; i++ {
		r.Record(&Event{Kind: KindFault, Fn: uint64(i)})
	}
	got := r.Dump()
	if len(got) != n {
		t.Fatalf("dump holds %d events below capacity, want %d", len(got), n)
	}
	for i, e := range got {
		if e.Seq != uint64(i) {
			t.Fatalf("event %d has seq %d: dump not gap-free/ordered", i, e.Seq)
		}
		if e.Fn != uint64(i) {
			t.Fatalf("event %d carries fn %d, want %d", i, e.Fn, i)
		}
	}
}

// Past capacity the ring wraps: memory stays bounded, the newest
// Capacity() events survive, and Dump is still sorted by sequence.
func TestRingOverflowKeepsNewest(t *testing.T) {
	r := NewRecorder(16)
	const n = 100
	for i := 0; i < n; i++ {
		r.Record(&Event{Kind: KindFault, Fn: uint64(i)})
	}
	got := r.Dump()
	if len(got) != 16 {
		t.Fatalf("dump holds %d events past capacity, want exactly 16", len(got))
	}
	for i, e := range got {
		want := uint64(n - 16 + i)
		if e.Seq != want {
			t.Fatalf("event %d has seq %d, want %d (newest 16 of %d)", i, e.Seq, want, n)
		}
	}
	if r.Seq() != n {
		t.Fatalf("total seq = %d, want %d", r.Seq(), n)
	}
}

// Capacity rounds up to a power of two with a floor of 16.
func TestRingCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{
		{0, 16}, {1, 16}, {16, 16}, {17, 32}, {100, 128}, {4096, 4096},
	} {
		if got := NewRecorder(tc.ask).Capacity(); got != tc.want {
			t.Fatalf("NewRecorder(%d).Capacity() = %d, want %d", tc.ask, got, tc.want)
		}
	}
}

// Tail returns the newest n, oldest first.
func TestRingTail(t *testing.T) {
	r := NewRecorder(32)
	for i := 0; i < 10; i++ {
		r.Record(&Event{Kind: KindDegrade, Fn: uint64(i)})
	}
	tail := r.Tail(3)
	if len(tail) != 3 {
		t.Fatalf("tail holds %d events, want 3", len(tail))
	}
	for i, e := range tail {
		if e.Seq != uint64(7+i) {
			t.Fatalf("tail event %d has seq %d, want %d", i, e.Seq, 7+i)
		}
	}
	if got := r.Tail(100); len(got) != 10 {
		t.Fatalf("oversized tail holds %d events, want all 10", len(got))
	}
}

// Concurrent writers wrapping the ring many times over, with concurrent
// dumpers: run under -race (verify.sh). Every dump must be strictly
// ordered by sequence number and every surviving event intact
// (seq-consistent payload).
func TestRingConcurrentWrapRace(t *testing.T) {
	r := NewRecorder(64)
	const writers = 8
	perWriter := 4000
	if testing.Short() {
		perWriter = 1000
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Dumpers race the writers throughout.
	for d := 0; d < 2; d++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				got := r.Dump()
				for i := 1; i < len(got); i++ {
					if got[i-1].Seq >= got[i].Seq {
						t.Errorf("dump not strictly seq-ordered: %d then %d", got[i-1].Seq, got[i].Seq)
						return
					}
				}
				for _, e := range got {
					// Writers stamp Fn = writer id and Addr = iteration; the
					// event must be internally consistent (never torn).
					if e.Addr >= uint64(perWriter) || e.Fn >= writers {
						t.Errorf("torn event: fn=%d addr=%d", e.Fn, e.Addr)
						return
					}
				}
			}
		}()
	}
	var wwg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wwg.Add(1)
		go func(w int) {
			defer wwg.Done()
			for i := 0; i < perWriter; i++ {
				r.Record(&Event{Kind: KindSpan, Fn: uint64(w), Addr: uint64(i)})
			}
		}(w)
	}
	wwg.Wait()
	close(stop)
	wg.Wait()
	if r.Seq() != uint64(writers*perWriter) {
		t.Fatalf("total seq = %d, want %d: writes lost", r.Seq(), writers*perWriter)
	}
	if got := len(r.Dump()); got != 64 {
		t.Fatalf("post-wrap dump holds %d events, want full capacity 64", got)
	}
}
