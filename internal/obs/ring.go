package obs

import (
	"sort"
	"sync/atomic"
)

// Recorder is a lock-free ring-buffer flight recorder with bounded
// memory. Writers claim a globally ordered sequence number with one
// atomic add and publish an immutable *Event into the slot
// seq % capacity with one atomic pointer store; past capacity the
// newest event overwrites the oldest. There are no locks and no
// blocking on the write path, so it is safe from watchpoint handlers,
// service workers, and fault-injection sites alike.
//
// Reads (Dump/Tail) are best-effort snapshots: they collect the current
// slot pointers and sort by sequence number. Because events are never
// mutated after publication, a reader racing a wrapping writer sees
// either the old or the new event in a slot — both complete, neither
// torn.
type Recorder struct {
	seq   atomic.Uint64
	slots []atomic.Pointer[Event]
	mask  uint64
}

// NewRecorder returns a recorder holding the most recent `capacity`
// events. Capacity is rounded up to a power of two (minimum 16) so slot
// selection is a mask, not a modulo.
func NewRecorder(capacity int) *Recorder {
	c := 16
	for c < capacity {
		c <<= 1
	}
	return &Recorder{slots: make([]atomic.Pointer[Event], c), mask: uint64(c - 1)}
}

// Capacity returns the rounded ring capacity.
func (r *Recorder) Capacity() int { return len(r.slots) }

// Seq returns the total number of events ever recorded (the next
// sequence number to be assigned). Chaos tests snapshot it around a
// fault window to bound which events belong to the window.
func (r *Recorder) Seq() uint64 { return r.seq.Load() }

// Record assigns e the next sequence number and publishes it. e must
// not be mutated afterwards.
func (r *Recorder) Record(e *Event) {
	s := r.seq.Add(1) - 1
	e.Seq = s
	r.slots[s&r.mask].Store(e)
}

// Dump returns a snapshot of the recorder's contents sorted by
// sequence number, oldest first. Below capacity no event has been
// overwritten, so the dump is complete and gap-free; past capacity it
// holds the newest Capacity() events (modulo writers racing the
// snapshot, which can displace the very oldest entries).
func (r *Recorder) Dump() []Event {
	out := make([]Event, 0, len(r.slots))
	for i := range r.slots {
		if p := r.slots[i].Load(); p != nil {
			out = append(out, *p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Tail returns the newest n events, oldest first (all of them if fewer
// than n are held).
func (r *Recorder) Tail(n int) []Event {
	all := r.Dump()
	if n < len(all) {
		all = all[len(all)-n:]
	}
	return all
}

// Reset drops all recorded events and restarts sequence numbering.
// Not safe against concurrent writers; for tests and benchmarks.
func (r *Recorder) Reset() {
	for i := range r.slots {
		r.slots[i].Store(nil)
	}
	r.seq.Store(0)
}
