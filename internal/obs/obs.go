// Package obs is the request-lifecycle observability layer for the
// specialization service: a span-based tracer, a lock-free ring-buffer
// flight recorder, and a Prometheus-style exposition of both together
// with the internal/telemetry registry.
//
// Like the telemetry registry, every entry point is zero-cost when
// observation is disabled: the hot path pays one atomic load (plus
// building a stack-resident argument struct) and never allocates. When
// enabled:
//
//   - brewsvc.Submit allocates a TraceID per request and records spans
//     covering the cache lookup, the queue wait, the coalesce join, the
//     rewrite itself, the install, and — asynchronously linked through
//     the Link field — the background tier promotion;
//   - span durations aggregate into exact-quantile (p50/p99/p999)
//     statistics per stage and per tier (trace.go);
//   - structured lifecycle events (variant install/evict/demote, entry
//     deopt, watchpoint hit, guard-miss storm, promotion success and
//     failure, degradation with reason, injected faults) land in the
//     flight recorder (ring.go), whose Dump the chaos tests snapshot on
//     failure for post-mortem.
//
// The package-level Default observer is what the built-in
// instrumentation (brewsvc, specmgr, faultinject) writes to;
// Service.Inspect and cmd/brew-top read it back.
package obs

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"
)

// enabled gates every instrument update, package-level so the hot-path
// check is a single atomic load with no pointer chase (the telemetry
// pattern).
var enabled atomic.Bool

// Enable turns on lifecycle observation process-wide.
func Enable() { enabled.Store(true) }

// Disable turns off lifecycle observation. Already-recorded spans and
// events remain readable; new updates are dropped.
func Disable() { enabled.Store(false) }

// Enabled reports whether observation is on.
func Enabled() bool { return enabled.Load() }

// epoch anchors Now: span timestamps are monotonic nanoseconds since
// process start, so they subtract safely (time.Since uses the monotonic
// clock).
var epoch = time.Now()

// Now returns the current monotonic timestamp in nanoseconds, or 0 when
// observation is disabled — span start sites call it unconditionally and
// the zero gates the matching EndSpan into a no-op.
func Now() int64 {
	if !enabled.Load() {
		return 0
	}
	return int64(time.Since(epoch))
}

// TraceID identifies one request lifecycle. 0 means "not traced" and
// turns every span/event call carrying it into a no-op.
type TraceID uint64

// Stage identifies one lifecycle span within a trace.
type Stage uint8

// Span stages, in lifecycle order.
const (
	// StageSubmit covers one caller's Submit call end to end (admission:
	// cache lookup, coalesce decision, enqueue).
	StageSubmit Stage = iota
	// StageCacheLookup covers the specialized-code cache probe.
	StageCacheLookup
	// StageQueue covers a flight's wait in the bounded priority queue,
	// from push to worker pop.
	StageQueue
	// StageCoalesce covers a coalesced caller's wait on another caller's
	// in-flight trace, from its Submit to the shared completion; its Link
	// is the flight's trace.
	StageCoalesce
	// StageRewrite covers the rewrite itself (brew.Do) on a worker.
	StageRewrite
	// StageInstall covers variant installation and cache publication.
	StageInstall
	// StagePromotion covers a background tier promotion end to end (queue
	// wait + re-rewrite + hot swap); its Link is the trace of the request
	// that installed the tier-0 variant.
	StagePromotion

	numStages
)

var stageNames = [numStages]string{
	"submit", "cache_lookup", "queue", "coalesce", "rewrite", "install", "promotion",
}

// String returns the stage's snake_case name.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return fmt.Sprintf("stage(%d)", uint8(s))
}

// Tier labels which rewrite effort a span belongs to.
type Tier uint8

// Span tiers. Stages that are not tier-specific (cache lookup, submit)
// record under TierNone.
const (
	TierQuick Tier = iota // brew.EffortQuick (tier-0)
	TierFull              // brew.EffortFull (tier-1)
	TierNone

	numTiers
)

// String returns "quick", "full" or "-".
func (t Tier) String() string {
	switch t {
	case TierQuick:
		return "quick"
	case TierFull:
		return "full"
	default:
		return "-"
	}
}

// Kind classifies a flight-recorder event.
type Kind uint8

// Event kinds.
const (
	// KindSpan is a completed tracer span (EndSpan records one per span,
	// so a trace can be reconstructed from the recorder alone).
	KindSpan Kind = iota
	// KindVariantInstall: a specialized body joined an entry's table.
	KindVariantInstall
	// KindVariantEvict: a variant was removed by its owner (LRU within
	// the table, or a service cache eviction).
	KindVariantEvict
	// KindVariantDemote: a variant was taken out of service (assumption
	// violation or guard-miss storm; Reason says which).
	KindVariantDemote
	// KindEntryDeopt: an entry's last live variant died and the whole
	// entry deoptimized to the original function.
	KindEntryDeopt
	// KindWatchHit: a store landed in a frozen region watched for a
	// variant's assumptions.
	KindWatchHit
	// KindGuardStorm: a variant crossed the consecutive-guard-miss limit.
	KindGuardStorm
	// KindPromoteOK: a tier promotion hot-swapped an optimized body.
	KindPromoteOK
	// KindPromoteFail: a tier promotion was refused or its rewrite
	// degraded; the variant keeps its tier-0 body.
	KindPromoteFail
	// KindDegrade: a rewrite failed and the request degraded to the
	// original function (Reason carries the brew.Reason* label).
	KindDegrade
	// KindFault: an injected fault fired (Reason is the injection point).
	KindFault
	// KindPersist: a persistent-store lifecycle event — warm adoption,
	// revalidation failure, quarantine, remote-tier degradation (Reason
	// says which; see internal/spstore).
	KindPersist

	numKinds
)

var kindNames = [numKinds]string{
	"span", "variant_install", "variant_evict", "variant_demote",
	"entry_deopt", "watch_hit", "guard_storm",
	"promote_ok", "promote_fail", "degrade", "fault", "persist",
}

// String returns the kind's snake_case name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one structured lifecycle record. Events are immutable once
// recorded (the ring stores pointers; Dump readers share them with
// writers), so fields must not be mutated after Emit/EndSpan.
type Event struct {
	// Seq is the recorder-assigned global sequence number; Dump returns
	// events sorted by it.
	Seq uint64 `json:"seq"`
	// Start is the event timestamp (monotonic ns since process start);
	// for spans, the span start.
	Start int64 `json:"start_ns"`
	// Dur is the span duration in nanoseconds (0 for non-span events).
	Dur  int64 `json:"dur_ns,omitempty"`
	Kind Kind  `json:"kind"`
	// Stage and Tier are meaningful for KindSpan.
	Stage Stage `json:"stage,omitempty"`
	Tier  Tier  `json:"tier,omitempty"`
	// Trace is the lifecycle this event belongs to (0 = unattributed,
	// e.g. a specmgr event outside any service request).
	Trace TraceID `json:"trace,omitempty"`
	// Link attributes the event to a second trace: a coalesce span links
	// to the flight it joined, a promotion span to the request that
	// installed the tier-0 variant.
	Link TraceID `json:"link,omitempty"`
	// Fn is the original function address the event concerns.
	Fn uint64 `json:"fn,omitempty"`
	// Addr is the specialized body (or other code) address involved.
	Addr uint64 `json:"addr,omitempty"`
	// Reason carries the deopt/degrade reason or fault point label.
	Reason string `json:"reason,omitempty"`
	// Shard attributes the event to one service shard. Stored 1-based so
	// the zero value means "unattributed" (shard N is stored as N+1); read
	// it through ShardID.
	Shard int32 `json:"shard,omitempty"`
}

// ShardID returns the service shard this event is attributed to and
// whether it carries an attribution at all.
func (e Event) ShardID() (int, bool) {
	if e.Shard == 0 {
		return 0, false
	}
	return int(e.Shard) - 1, true
}

// Format renders the event as one human-readable line.
func (e Event) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "#%-6d %12.3fms %-15s", e.Seq, float64(e.Start)/1e6, e.Kind.String())
	if e.Kind == KindSpan {
		fmt.Fprintf(&b, " %-12s tier=%-5s dur=%.3fms", e.Stage.String(), e.Tier.String(), float64(e.Dur)/1e6)
	}
	if e.Trace != 0 {
		fmt.Fprintf(&b, " trace=%d", e.Trace)
	}
	if e.Link != 0 {
		fmt.Fprintf(&b, " link=%d", e.Link)
	}
	if e.Fn != 0 {
		fmt.Fprintf(&b, " fn=0x%x", e.Fn)
	}
	if e.Addr != 0 {
		fmt.Fprintf(&b, " addr=0x%x", e.Addr)
	}
	if e.Reason != "" {
		fmt.Fprintf(&b, " reason=%s", e.Reason)
	}
	if id, ok := e.ShardID(); ok {
		fmt.Fprintf(&b, " shard=%d", id)
	}
	return b.String()
}

// FormatEvents renders events one per line (chaos-test post-mortems).
func FormatEvents(events []Event) string {
	var b strings.Builder
	for _, e := range events {
		b.WriteString(e.Format())
		b.WriteByte('\n')
	}
	return b.String()
}

// DefaultRingCapacity sizes the Default observer's flight recorder.
const DefaultRingCapacity = 4096

// Observer bundles one tracer and one flight recorder.
type Observer struct {
	Tracer   *Tracer
	Recorder *Recorder
}

// NewObserver returns an observer with a fresh tracer and a recorder of
// the given capacity.
func NewObserver(ringCapacity int) *Observer {
	return &Observer{Tracer: NewTracer(), Recorder: NewRecorder(ringCapacity)}
}

// Default is the process-wide observer the built-in instrumentation
// (brewsvc, specmgr, faultinject) writes to.
var Default = NewObserver(DefaultRingCapacity)

// StartTrace allocates a trace ID from the Default observer (0 when
// disabled).
func StartTrace() TraceID { return Default.Tracer.StartTrace() }

// EndSpan completes one span on the Default observer: no-op when tid is
// 0 (untraced request or observation disabled at span start). The span
// duration is aggregated into the per-stage/per-tier statistics and the
// span itself is recorded as a flight-recorder event.
func EndSpan(tid TraceID, stage Stage, tier Tier, startNS int64, fn uint64, link TraceID) {
	if tid == 0 || !enabled.Load() {
		return
	}
	Default.endSpan(tid, stage, tier, startNS, fn, link, 0)
}

// EndSpanOn is EndSpan with a service-shard attribution: the recorded
// event carries the shard that performed the work, so a flight-recorder
// tail shows which shard a queue wait or rewrite ran on.
func EndSpanOn(shard int, tid TraceID, stage Stage, tier Tier, startNS int64, fn uint64, link TraceID) {
	if tid == 0 || !enabled.Load() {
		return
	}
	Default.endSpan(tid, stage, tier, startNS, fn, link, int32(shard)+1)
}

func (o *Observer) endSpan(tid TraceID, stage Stage, tier Tier, startNS int64, fn uint64, link TraceID, shard int32) {
	dur := int64(time.Since(epoch)) - startNS
	if dur < 0 {
		dur = 0
	}
	o.Tracer.observe(stage, tier, dur)
	o.Recorder.Record(&Event{
		Kind: KindSpan, Stage: stage, Tier: tier,
		Trace: tid, Link: link, Fn: fn, Start: startNS, Dur: dur, Shard: shard,
	})
}

// Emit records one lifecycle event on the Default observer (no-op when
// disabled). The Start timestamp is stamped here; the caller fills the
// classification fields.
func Emit(e Event) {
	if !enabled.Load() {
		return
	}
	e.Start = int64(time.Since(epoch))
	ev := e // escape once, after the enabled gate
	Default.Recorder.Record(&ev)
}

// Events returns the Default recorder's contents, oldest first.
func Events() []Event { return Default.Recorder.Dump() }

// TailEvents returns the newest n events from the Default recorder.
func TailEvents(n int) []Event { return Default.Recorder.Tail(n) }

// TraceEvents returns every Default-recorder event belonging to trace
// tid — directly (Trace == tid) or by link (Link == tid) — oldest first.
// This is the lifecycle-reconstruction primitive: one coalesced burst's
// flight trace yields the shared rewrite/install spans, every coalesced
// caller's submit span, and the asynchronously linked promotion span.
func TraceEvents(tid TraceID) []Event {
	all := Default.Recorder.Dump()
	out := make([]Event, 0, 8)
	for _, e := range all {
		if e.Trace == tid || e.Link == tid {
			out = append(out, e)
		}
	}
	return out
}

// StageSnapshot returns the Default tracer's per-stage/per-tier quantile
// statistics.
func StageSnapshot() []StageQuantiles { return Default.Tracer.Snapshot() }

// Reset clears the Default observer's spans, stage statistics and
// recorded events (tests and benchmarks).
func Reset() {
	Default.Tracer.Reset()
	Default.Recorder.Reset()
}
