package obs

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/telemetry"
)

// maxExactSamples caps the raw-sample buffer of one (stage, tier) cell.
// Up to the cap quantiles are exact (computed over every recorded
// duration); past it the cell degrades to exponential-bucket rank
// quantiles so memory stays bounded under sustained load.
const maxExactSamples = 1 << 14

// stageBounds are the exponential nanosecond bucket bounds backing the
// past-cap fallback: 250ns doubling to ~8.6s (26 buckets).
var stageBounds = telemetry.ExponentialBounds(250, 2, 26)

// durStat aggregates one (stage, tier) cell: count/sum/max, exact raw
// samples up to maxExactSamples, and exponential bucket counts for the
// fallback. A plain mutex per cell: span completion is orders of
// magnitude rarer than the emulator hot path, and cells are per
// stage×tier so contention is spread.
type durStat struct {
	mu      sync.Mutex
	count   uint64
	sum     int64
	max     int64
	samples []int64
	buckets []uint64 // len(stageBounds)+1
}

func (c *durStat) observe(d int64) {
	c.mu.Lock()
	c.count++
	c.sum += d
	if d > c.max {
		c.max = d
	}
	if len(c.samples) < maxExactSamples {
		c.samples = append(c.samples, d)
	}
	if c.buckets == nil {
		c.buckets = make([]uint64, len(stageBounds)+1)
	}
	i := sort.Search(len(stageBounds), func(i int) bool { return uint64(d) <= stageBounds[i] })
	c.buckets[i]++
	c.mu.Unlock()
}

func (c *durStat) reset() {
	c.mu.Lock()
	c.count, c.sum, c.max = 0, 0, 0
	c.samples = nil
	c.buckets = nil
	c.mu.Unlock()
}

// StageQuantiles is one (stage, tier) cell's aggregate in a snapshot.
// When Exact is true the quantiles are computed over every recorded
// sample (rank-exact, value-exact); otherwise they are rank-exact over
// exponential buckets (value resolution = bucket width).
type StageQuantiles struct {
	Stage  Stage  `json:"-"`
	Tier   Tier   `json:"-"`
	StageS string `json:"stage"`
	TierS  string `json:"tier"`
	Count  uint64 `json:"count"`
	SumNS  int64  `json:"sum_ns"`
	MaxNS  int64  `json:"max_ns"`
	P50NS  int64  `json:"p50_ns"`
	P99NS  int64  `json:"p99_ns"`
	P999NS int64  `json:"p999_ns"`
	Exact  bool   `json:"exact"`
}

// Tracer allocates trace IDs and aggregates span durations per stage
// and per tier.
type Tracer struct {
	next  atomic.Uint64
	cells [numStages][numTiers]durStat
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return &Tracer{} }

// StartTrace returns a fresh nonzero trace ID, or 0 when observation is
// disabled (which downgrades every span carrying it to a no-op).
func (t *Tracer) StartTrace() TraceID {
	if !enabled.Load() {
		return 0
	}
	return TraceID(t.next.Add(1))
}

func (t *Tracer) observe(stage Stage, tier Tier, d int64) {
	if stage >= numStages || tier >= numTiers {
		return
	}
	t.cells[stage][tier].observe(d)
}

// Snapshot returns the non-empty (stage, tier) cells in stage order,
// tiers within a stage ordered quick, full, none.
func (t *Tracer) Snapshot() []StageQuantiles {
	out := make([]StageQuantiles, 0, 8)
	for s := Stage(0); s < numStages; s++ {
		for tr := Tier(0); tr < numTiers; tr++ {
			c := &t.cells[s][tr]
			c.mu.Lock()
			if c.count == 0 {
				c.mu.Unlock()
				continue
			}
			q := StageQuantiles{
				Stage: s, Tier: tr, StageS: s.String(), TierS: tr.String(),
				Count: c.count, SumNS: c.sum, MaxNS: c.max,
				Exact: c.count <= uint64(len(c.samples)),
			}
			if q.Exact {
				samples := append([]int64(nil), c.samples...)
				c.mu.Unlock()
				sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
				q.P50NS = exactQuantile(samples, 0.50)
				q.P99NS = exactQuantile(samples, 0.99)
				q.P999NS = exactQuantile(samples, 0.999)
			} else {
				buckets := append([]uint64(nil), c.buckets...)
				n := c.count
				max := c.max
				c.mu.Unlock()
				q.P50NS = bucketQuantile(buckets, n, max, 0.50)
				q.P99NS = bucketQuantile(buckets, n, max, 0.99)
				q.P999NS = bucketQuantile(buckets, n, max, 0.999)
			}
			out = append(out, q)
		}
	}
	return out
}

// Reset zeroes every cell and restarts trace-ID allocation.
func (t *Tracer) Reset() {
	for s := range t.cells {
		for tr := range t.cells[s] {
			t.cells[s][tr].reset()
		}
	}
	t.next.Store(0)
}

// exactQuantile returns the rank-ceil(q*n) element of a sorted sample
// slice — the classic nearest-rank definition, exact for any n > 0.
func exactQuantile(sorted []int64, q float64) int64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	rank := int(q * float64(n))
	if float64(rank) < q*float64(n) || rank == 0 {
		rank++
	}
	if rank > n {
		rank = n
	}
	return sorted[rank-1]
}

// bucketQuantile locates the rank-ceil(q*n) sample's exponential bucket
// and returns its upper bound (the overflow bucket reports the observed
// max).
func bucketQuantile(buckets []uint64, n uint64, max int64, q float64) int64 {
	if n == 0 {
		return 0
	}
	rank := uint64(q * float64(n))
	if float64(rank) < q*float64(n) || rank == 0 {
		rank++
	}
	if rank > n {
		rank = n
	}
	var seen uint64
	for i, c := range buckets {
		seen += c
		if seen >= rank {
			if i < len(stageBounds) {
				return int64(stageBounds[i])
			}
			break
		}
	}
	return max
}
