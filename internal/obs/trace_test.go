package obs

import (
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
)

func resetObs(t *testing.T) {
	t.Helper()
	Disable()
	Reset()
	t.Cleanup(func() {
		Disable()
		Reset()
	})
}

// Disabled, every entry point is a no-op and allocation-free — the
// zero-cost contract the service hot path relies on.
func TestDisabledPathAllocationFree(t *testing.T) {
	resetObs(t)
	allocs := testing.AllocsPerRun(1000, func() {
		tid := StartTrace()
		start := Now()
		EndSpan(tid, StageRewrite, TierQuick, start, 0x1000, 0)
		Emit(Event{Kind: KindDegrade, Reason: "trace-budget"})
	})
	if allocs != 0 {
		t.Fatalf("disabled obs path allocates %.1f per op, want 0", allocs)
	}
	if StartTrace() != 0 {
		t.Fatal("disabled StartTrace must return 0")
	}
	if Now() != 0 {
		t.Fatal("disabled Now must return 0")
	}
	if len(Events()) != 0 {
		t.Fatal("disabled entry points recorded events")
	}
	if len(StageSnapshot()) != 0 {
		t.Fatal("disabled entry points recorded spans")
	}
}

// A span recorded with a stale (pre-Enable) zero trace ID stays a no-op
// even after observation is enabled mid-flight.
func TestZeroTraceSpanIgnored(t *testing.T) {
	resetObs(t)
	start := Now() // disabled: 0
	Enable()
	EndSpan(0, StageRewrite, TierQuick, start, 0x1000, 0)
	if len(Events()) != 0 {
		t.Fatal("zero-trace span was recorded")
	}
}

// Enabled, spans aggregate into per-stage/per-tier exact quantiles and
// land in the flight recorder; TraceEvents reassembles a lifecycle from
// direct and linked attribution.
func TestSpansAggregateAndReconstruct(t *testing.T) {
	resetObs(t)
	Enable()

	flight := StartTrace()
	caller := StartTrace()
	if flight == 0 || caller == 0 || flight == caller {
		t.Fatalf("trace ids: flight=%d caller=%d", flight, caller)
	}

	start := Now()
	time.Sleep(time.Millisecond)
	EndSpan(flight, StageRewrite, TierQuick, start, 0xabc, 0)
	EndSpan(flight, StageInstall, TierQuick, Now(), 0xabc, 0)
	// The coalesced caller's span links to the flight's trace.
	EndSpan(caller, StageCoalesce, TierNone, Now(), 0xabc, flight)
	// The async promotion gets its own trace, linked back to the flight.
	promo := StartTrace()
	EndSpan(promo, StagePromotion, TierFull, Now(), 0xabc, flight)

	got := TraceEvents(flight)
	if len(got) != 4 {
		t.Fatalf("TraceEvents(flight) returned %d events, want 4 (rewrite, install, coalesce-linked, promotion-linked):\n%s",
			len(got), FormatEvents(got))
	}
	stages := map[Stage]bool{}
	for _, e := range got {
		stages[e.Stage] = true
	}
	for _, s := range []Stage{StageRewrite, StageInstall, StageCoalesce, StagePromotion} {
		if !stages[s] {
			t.Fatalf("lifecycle reconstruction missing stage %s:\n%s", s, FormatEvents(got))
		}
	}

	snap := StageSnapshot()
	var rewrite *StageQuantiles
	for i := range snap {
		if snap[i].Stage == StageRewrite && snap[i].Tier == TierQuick {
			rewrite = &snap[i]
		}
	}
	if rewrite == nil {
		t.Fatal("stage snapshot missing rewrite/quick cell")
	}
	if rewrite.Count != 1 || !rewrite.Exact {
		t.Fatalf("rewrite cell count=%d exact=%v, want 1/true", rewrite.Count, rewrite.Exact)
	}
	if rewrite.P50NS < int64(time.Millisecond/2) {
		t.Fatalf("rewrite p50 = %dns, want >= ~1ms (slept 1ms inside the span)", rewrite.P50NS)
	}
	if rewrite.P999NS < rewrite.P50NS || rewrite.MaxNS < rewrite.P999NS {
		t.Fatalf("quantiles not monotone: p50=%d p999=%d max=%d", rewrite.P50NS, rewrite.P999NS, rewrite.MaxNS)
	}
}

// Exact quantiles really are exact: a known sample set must return the
// exact nearest-rank elements, not bucket bounds.
func TestExactQuantileValues(t *testing.T) {
	resetObs(t)
	Enable()
	tr := NewTracer()
	// 1..1000 in a scrambled order.
	for i := 0; i < 1000; i++ {
		tr.observe(StageQueue, TierNone, int64((i*617)%1000+1))
	}
	snap := tr.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot has %d cells, want 1", len(snap))
	}
	q := snap[0]
	if !q.Exact {
		t.Fatal("1000 samples should be under the exact cap")
	}
	if q.P50NS != 500 || q.P99NS != 990 || q.P999NS != 999 {
		t.Fatalf("exact quantiles p50=%d p99=%d p999=%d, want 500/990/999", q.P50NS, q.P99NS, q.P999NS)
	}
	if q.MaxNS != 1000 || q.Count != 1000 {
		t.Fatalf("max=%d count=%d, want 1000/1000", q.MaxNS, q.Count)
	}
}

// Past the per-cell cap the cell falls back to exponential-bucket
// quantiles: still rank-exact, value resolution bucket-wide, memory
// bounded.
func TestQuantileFallbackPastCap(t *testing.T) {
	resetObs(t)
	Enable()
	tr := NewTracer()
	n := maxExactSamples + 5000
	for i := 0; i < n; i++ {
		tr.observe(StageQueue, TierNone, 1000) // lands exactly on the le=1000 bound (250,500,1000,...)
	}
	snap := tr.Snapshot()
	q := snap[0]
	if q.Exact {
		t.Fatalf("%d samples past cap %d still reported exact", n, maxExactSamples)
	}
	if q.Count != uint64(n) {
		t.Fatalf("count = %d, want %d", q.Count, n)
	}
	// Every sample is 1000ns; the 250*2^k bounds include 1000 exactly, so
	// even bucket quantiles land on the true value.
	if q.P50NS != 1000 || q.P999NS != 1000 {
		t.Fatalf("bucket quantiles p50=%d p999=%d, want 1000/1000", q.P50NS, q.P999NS)
	}
	if len(tr.cells[StageQueue][TierNone].samples) != maxExactSamples {
		t.Fatalf("sample buffer grew past cap: %d", len(tr.cells[StageQueue][TierNone].samples))
	}
}

// Prometheus exposition renders telemetry + stage summaries and parses
// as line-oriented name/value pairs.
func TestWritePromSmoke(t *testing.T) {
	resetObs(t)
	telemetry.Default.Reset()
	telemetry.Enable()
	defer func() {
		telemetry.Disable()
		telemetry.Default.Reset()
	}()
	Enable()

	telemetry.Default.Counter("obs.test_counter").Add(7)
	tid := StartTrace()
	EndSpan(tid, StageRewrite, TierQuick, Now(), 0xabc, 0)

	var b strings.Builder
	if err := Default.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"obs_test_counter 7",
		`brew_span_ns{stage="rewrite",tier="quick",quantile="0.5"}`,
		"brew_flight_recorder_seq",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prom output missing %q:\n%s", want, out)
		}
	}
}
