package obs

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/telemetry"
)

// WriteProm renders the full observability surface in Prometheus text
// exposition format: every instrument in the telemetry.Default registry
// (counters as-is, gauges as-is, histograms with cumulative le buckets
// plus _count/_sum and rank-exact quantile gauges) followed by the
// observer's per-stage/per-tier span statistics as
// brew_span_ns{stage=...,tier=...,quantile=...} summaries. Output is
// deterministic: both sources snapshot in sorted order.
func (o *Observer) WriteProm(w io.Writer) error {
	for _, m := range telemetry.Default.Snapshot() {
		name := promName(m.Name)
		switch m.Kind {
		case "counter":
			fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, m.Value)
		case "gauge":
			fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, m.Gauge)
		case "histogram":
			fmt.Fprintf(w, "# TYPE %s histogram\n", name)
			var cum uint64
			for _, b := range m.Buckets {
				cum += b.Count
				if b.Overflow {
					fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
				} else {
					fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, b.UpperBound, cum)
				}
			}
			fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", name, m.Sum, name, m.Count)
			if m.Count > 0 {
				fmt.Fprintf(w, "%s_quantile{quantile=\"0.5\"} %d\n", name, m.P50)
				fmt.Fprintf(w, "%s_quantile{quantile=\"0.99\"} %d\n", name, m.P99)
				fmt.Fprintf(w, "%s_quantile{quantile=\"0.999\"} %d\n", name, m.P999)
			}
		}
	}
	stages := o.Tracer.Snapshot()
	if len(stages) > 0 {
		fmt.Fprintf(w, "# TYPE brew_span_ns summary\n")
		for _, s := range stages {
			lbl := fmt.Sprintf("stage=%q,tier=%q", s.StageS, s.TierS)
			fmt.Fprintf(w, "brew_span_ns{%s,quantile=\"0.5\"} %d\n", lbl, s.P50NS)
			fmt.Fprintf(w, "brew_span_ns{%s,quantile=\"0.99\"} %d\n", lbl, s.P99NS)
			fmt.Fprintf(w, "brew_span_ns{%s,quantile=\"0.999\"} %d\n", lbl, s.P999NS)
			fmt.Fprintf(w, "brew_span_ns_sum{%s} %d\n", lbl, s.SumNS)
			fmt.Fprintf(w, "brew_span_ns_count{%s} %d\n", lbl, s.Count)
		}
	}
	fmt.Fprintf(w, "# TYPE brew_flight_recorder_seq counter\nbrew_flight_recorder_seq %d\n",
		o.Recorder.Seq())
	return nil
}

// promName maps a registry metric name ("brewsvc.queue_depth") to a
// Prometheus-legal one ("brewsvc_queue_depth").
func promName(name string) string {
	return strings.NewReplacer(".", "_", "-", "_", "/", "_").Replace(name)
}
