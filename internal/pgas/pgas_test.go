package pgas

import (
	"math"
	"strings"
	"testing"

	"repro/internal/vm"
)

func newSys(t *testing.T, nnodes, bs, me int) *System {
	t.Helper()
	s, err := New(vm.MustNew(), nnodes, bs, me)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Fill(func(i int) float64 { return float64(i%13) * 0.5 }); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestGenericSumMatchesGolden(t *testing.T) {
	s := newSys(t, 4, 64, 1)
	for _, r := range [][2]int{{0, 256}, {64, 128}, {10, 11}, {100, 200}, {0, 0}} {
		want, err := s.Golden(r[0], r[1])
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.Sum(r[0], r[1])
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("sum[%d,%d) = %g, want %g", r[0], r[1], got, want)
		}
	}
}

func TestSpecializedSumCorrect(t *testing.T) {
	s := newSys(t, 4, 64, 1)
	res, err := s.SpecializeSum()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range [][2]int{{0, 256}, {64, 128}, {31, 97}} {
		want, err := s.Sum(r[0], r[1])
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.SumWith(res.Addr, s.PgasGet, r[0], r[1])
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("specialized sum[%d,%d) = %g, want %g", r[0], r[1], got, want)
		}
	}
	// The indirect getter call is inlined and the power-of-two division
	// strength-reduced.
	if strings.Contains(res.Listing(), "callr") {
		t.Errorf("getter call survived:\n%s", res.Listing())
	}
	if strings.Contains(res.Listing(), "idiv") {
		t.Errorf("index division survived:\n%s", res.Listing())
	}
}

func TestSpecializedSumFasterOnLocalRange(t *testing.T) {
	s := newSys(t, 4, 64, 1)
	res, err := s.SpecializeSum()
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := 64, 128 // node 1's own block: all local
	cycles := func(fn, getter uint64) uint64 {
		before := s.M.Stats.Cycles
		if _, err := s.SumWith(fn, getter, lo, hi); err != nil {
			t.Fatal(err)
		}
		return s.M.Stats.Cycles - before
	}
	generic := cycles(s.GSum, s.PgasGet)
	spec := cycles(res.Addr, s.PgasGet)
	t.Logf("local-range gsum: generic=%d specialized=%d", generic, spec)
	if spec*3 > generic*2 {
		t.Errorf("specialization too weak: %d vs %d cycles", spec, generic)
	}
}

func TestPreloadRedirectsRemoteAccesses(t *testing.T) {
	s := newSys(t, 4, 64, 1)
	lo, hi := 128, 192 // node 2's block: all remote for node 1

	want, err := s.Golden(lo, hi)
	if err != nil {
		t.Fatal(err)
	}

	// Generic: every access is a fine-grained remote fetch.
	before := s.RemoteAccesses()
	got, err := s.Sum(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("generic remote sum = %g, want %g", got, want)
	}
	if n := s.RemoteAccesses() - before; n != uint64(hi-lo) {
		t.Errorf("remote accesses = %d, want %d", n, hi-lo)
	}

	// Preload + specialized: zero fine-grained remote accesses.
	if err := s.Preload(lo, hi); err != nil {
		t.Fatal(err)
	}
	res, err := s.SpecializeSumPrefetched()
	if err != nil {
		t.Fatal(err)
	}
	before = s.RemoteAccesses()
	got, err = s.SumWith(res.Addr, s.PgasGetPref, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("prefetched sum = %g, want %g", got, want)
	}
	if n := s.RemoteAccesses() - before; n != 0 {
		t.Errorf("prefetched run still made %d remote accesses", n)
	}
}

func TestPreloadBeatsFineGrainedRemote(t *testing.T) {
	s := newSys(t, 4, 64, 1)
	lo, hi := 128, 192
	before := s.M.Stats.Cycles
	if _, err := s.Sum(lo, hi); err != nil {
		t.Fatal(err)
	}
	generic := s.M.Stats.Cycles - before

	before = s.M.Stats.Cycles
	if err := s.Preload(lo, hi); err != nil {
		t.Fatal(err)
	}
	res, err := s.SpecializeSumPrefetched()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.SumWith(res.Addr, s.PgasGetPref, lo, hi); err != nil {
		t.Fatal(err)
	}
	withPreload := s.M.Stats.Cycles - before
	t.Logf("remote-range gsum: generic=%d preload+specialized=%d (incl. transfer)", generic, withPreload)
	if withPreload >= generic {
		t.Errorf("preload (%d cycles incl. transfer) not faster than fine-grained remote (%d)", withPreload, generic)
	}
}

func TestWindowMoveNeedsRespecialization(t *testing.T) {
	// The prefetch window is folded in; after moving it, the OLD
	// specialized version must not be reused. A fresh specialization
	// picks up the new window (Section VI's domain-map change protocol).
	s := newSys(t, 4, 64, 1)
	if err := s.Preload(128, 192); err != nil {
		t.Fatal(err)
	}
	res1, err := s.SpecializeSumPrefetched()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Preload(192, 256); err != nil {
		t.Fatal(err)
	}
	res2, err := s.SpecializeSumPrefetched()
	if err != nil {
		t.Fatal(err)
	}
	want, err := s.Golden(192, 256)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.SumWith(res2.Addr, s.PgasGetPref, 192, 256)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("respecialized sum = %g, want %g", got, want)
	}
	_ = res1
}

func TestBadConfigs(t *testing.T) {
	m := vm.MustNew()
	if _, err := New(m, 0, 64, 0); err == nil {
		t.Error("0 nodes accepted")
	}
	if _, err := New(m, 9, 64, 0); err == nil {
		t.Error("9 nodes accepted")
	}
	if _, err := New(m, 2, 64, 5); err == nil {
		t.Error("bad me accepted")
	}
	s, err := New(m, 2, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Preload(0, 64); err == nil {
		t.Error("oversized prefetch accepted")
	}
}

func TestNonPow2BlockSizeStillWorks(t *testing.T) {
	s := newSys(t, 3, 48, 0)
	res, err := s.SpecializeSum()
	if err != nil {
		t.Fatal(err)
	}
	want, err := s.Golden(0, 144)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.SumWith(res.Addr, s.PgasGet, 0, 144)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("sum = %g, want %g", got, want)
	}
}

func TestDetectRemoteWindow(t *testing.T) {
	s := newSys(t, 4, 64, 1)
	// Range spanning the end of node 2 and start of node 3.
	lo, hi, sum, err := s.DetectRemote(180, 220)
	if err != nil {
		t.Fatal(err)
	}
	want, err := s.Golden(180, 220)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sum-want) > 1e-9 {
		t.Errorf("instrumented sum = %g, want %g", sum, want)
	}
	if lo != 180 || hi != 220 {
		t.Errorf("detected window [%d,%d), want [180,220)", lo, hi)
	}
	// All-local range detects nothing.
	lo, hi, _, err = s.DetectRemote(64, 128)
	if err != nil {
		t.Fatal(err)
	}
	if lo != hi {
		t.Errorf("local range flagged remote: [%d,%d)", lo, hi)
	}
}

func TestAutoOptimizeEndToEnd(t *testing.T) {
	s := newSys(t, 4, 64, 1)
	from, to := 128, 192 // node 2: all remote

	want, err := s.Golden(from, to)
	if err != nil {
		t.Fatal(err)
	}
	fn, getter, preloaded, err := s.AutoOptimize(from, to)
	if err != nil {
		t.Fatal(err)
	}
	if !preloaded {
		t.Fatal("remote range did not trigger preload")
	}
	before := s.RemoteAccesses()
	got, err := s.SumWith(fn, getter, from, to)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("auto-optimized sum = %g, want %g", got, want)
	}
	if n := s.RemoteAccesses() - before; n != 0 {
		t.Errorf("auto-optimized run made %d fine-grained remote accesses", n)
	}

	// Local range: no preload, still correct.
	fn, getter, preloaded, err = s.AutoOptimize(64, 128)
	if err != nil {
		t.Fatal(err)
	}
	if preloaded {
		t.Error("local range triggered preload")
	}
	want, _ = s.Golden(64, 128)
	got, err = s.SumWith(fn, getter, 64, 128)
	if err != nil || math.Abs(got-want) > 1e-9 {
		t.Errorf("local auto sum = %g, %v; want %g", got, err, want)
	}
}
