// Package pgas implements the simulated PGAS (Partitioned Global Address
// Space) substrate motivating the paper: a DASH-like distributed array
// whose global-to-local index translation and locality check sit on the
// hot path of every element access (Section V: "DASH must translate
// between global and local address space for every call to operator[]...
// using this operator is not recommended in inner-most loops"), and the
// Section VIII plan of redirecting remote accesses to RDMA-prefetched
// local buffers via a second rewritten version of the same code.
//
// The "cluster" is simulated: every node's partition lives in the one
// simulated address space; partitions of other nodes cost extra cycles per
// access (vm.RegionCost) and fetches through the rdma_get helper pay a
// protocol overhead (vm.FuncCost).
package pgas

import (
	"fmt"

	"repro/internal/brew"
	"repro/internal/minc"
	"repro/internal/telemetry"
	"repro/internal/vm"
)

// PGAS metrics: fine-grained local vs remote element accesses and RDMA
// bulk-prefetch traffic. Counts come from zero-cost vm.RegionCost probes
// over the partitions, published at operation boundaries.
var (
	mLocalAccesses  = telemetry.Default.Counter("pgas.local_accesses")
	mRemoteAccesses = telemetry.Default.Counter("pgas.remote_accesses")
	mRdmaPreloads   = telemetry.Default.Counter("pgas.rdma_preloads")
	mRdmaBytes      = telemetry.Default.Counter("pgas.rdma_bytes")
)

// MaxNodes bounds the simulated node count (the GArr descriptor holds a
// fixed partition table).
const MaxNodes = 8

// Source is the PGAS runtime and kernels, compiled to VX64.
const Source = `
struct GArr {
    long nnodes;
    long bs;          // elements per node
    long me;          // executing node
    long pref;        // prefetch buffer base (pgas_get_pref)
    long pref_lo;     // first prefetched global index
    long pref_hi;     // one past the last prefetched global index
    long parts[8];    // partition base addresses
};

struct GArr garr = {0, 0, 0, 0, 0, 0, {0, 0, 0, 0, 0, 0, 0, 0}};

typedef double (*getter_t)(struct GArr*, long);

// rdma_get models the remote fetch path; the machine charges it a
// protocol overhead on top of the remote-region access latency.
double rdma_get(struct GArr *a, long node, long off) {
    double *p = (double*) a->parts[node];
    return p[off];
}

// pgas_get is the generic global access: index translation, locality
// check, local or remote path. This is the paper's operator[].
double pgas_get(struct GArr *a, long i) {
    long node = i / a->bs;
    long off = i - node * a->bs;
    if (node == a->me) {
        double *p = (double*) a->parts[node];
        return p[off];
    }
    return rdma_get(a, node, off);
}

// pgas_get_pref first consults the prefetch window (filled by an RDMA
// bulk transfer), then falls back to the generic path.
double pgas_get_pref(struct GArr *a, long i) {
    if (i >= a->pref_lo && i < a->pref_hi) {
        double *p = (double*) a->pref;
        return p[i - a->pref_lo];
    }
    return pgas_get(a, i);
}

// gsum reduces a global index range through a getter; the workload whose
// inner-most loop the paper warns about.
double gsum(struct GArr *a, long from, long to, getter_t get) {
    double s = 0.0;
    for (long i = from; i < to; i++) {
        s += get(a, i);
    }
    return s;
}
`

// GArr field offsets (must match the struct layout above).
const (
	offNNodes = 0
	offBS     = 8
	offMe     = 16
	offPref   = 24
	offPrefLo = 32
	offPrefHi = 40
	offParts  = 48
	garrSize  = 48 + 8*MaxNodes
)

// RemoteAccessCost is the extra per-access latency of another node's
// partition (fine-grained remote load, ~RDMA read).
const RemoteAccessCost = 400

// RdmaCallCost is the protocol overhead charged per rdma_get call.
const RdmaCallCost = 200

// System is a linked PGAS runtime with one distributed array.
type System struct {
	M      *vm.Machine
	L      *minc.Linked
	NNodes int
	BS     int // elements per node
	Me     int

	Garr        uint64 // the GArr descriptor
	Parts       []uint64
	GSum        uint64
	PgasGet     uint64
	PgasGetPref uint64
	RdmaGet     uint64

	prefBuf uint64
	prefCap int
	remotes []*vm.RegionCost
	locals  []*vm.RegionCost // zero-cost probes: local partition + prefetch buffer
	det     *detector

	pubLocal, pubRemote uint64 // last published access counts
}

// New builds a system with nnodes partitions of bs elements each,
// executing on node me. bs should be a power of two to expose the paper's
// index-computation optimization; other sizes work but keep the division.
func New(m *vm.Machine, nnodes, bs, me int) (*System, error) {
	if nnodes < 1 || nnodes > MaxNodes {
		return nil, fmt.Errorf("pgas: nnodes %d out of range 1..%d", nnodes, MaxNodes)
	}
	if me < 0 || me >= nnodes {
		return nil, fmt.Errorf("pgas: node %d out of range", me)
	}
	l, err := minc.CompileAndLink(m, Source, nil)
	if err != nil {
		return nil, fmt.Errorf("pgas: %w", err)
	}
	s := &System{M: m, L: l, NNodes: nnodes, BS: bs, Me: me}
	for name, dst := range map[string]*uint64{
		"gsum": &s.GSum, "pgas_get": &s.PgasGet,
		"pgas_get_pref": &s.PgasGetPref, "rdma_get": &s.RdmaGet,
	} {
		if *dst, err = l.FuncAddr(name); err != nil {
			return nil, err
		}
	}
	if s.Garr, err = l.GlobalAddr("garr"); err != nil {
		return nil, err
	}
	// Partitions; remote ones cost extra per access.
	for n := 0; n < nnodes; n++ {
		p, err := m.AllocHeap(uint64(bs * 8))
		if err != nil {
			return nil, err
		}
		s.Parts = append(s.Parts, p)
		rc := &vm.RegionCost{Base: p, End: p + uint64(bs*8)}
		if n != me {
			rc.Extra = RemoteAccessCost
			s.remotes = append(s.remotes, rc)
		} else {
			s.locals = append(s.locals, rc)
		}
		m.RegionCosts = append(m.RegionCosts, rc)
	}
	m.FuncCost[s.RdmaGet] = RdmaCallCost

	// Prefetch buffer: one partition's worth.
	s.prefCap = bs
	if s.prefBuf, err = m.AllocHeap(uint64(bs * 8)); err != nil {
		return nil, err
	}
	prc := &vm.RegionCost{Base: s.prefBuf, End: s.prefBuf + uint64(bs*8)}
	m.RegionCosts = append(m.RegionCosts, prc)
	s.locals = append(s.locals, prc)

	// Fill the descriptor.
	w := func(off int, v uint64) error { return m.Mem.Write64(s.Garr+uint64(off), v) }
	if err := w(offNNodes, uint64(nnodes)); err != nil {
		return nil, err
	}
	if err := w(offBS, uint64(bs)); err != nil {
		return nil, err
	}
	if err := w(offMe, uint64(me)); err != nil {
		return nil, err
	}
	for n := 0; n < nnodes; n++ {
		if err := w(offParts+8*n, s.Parts[n]); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Len returns the global element count.
func (s *System) Len() int { return s.NNodes * s.BS }

// Fill initializes the global array with f(i).
func (s *System) Fill(f func(i int) float64) error {
	for i := 0; i < s.Len(); i++ {
		node, off := i/s.BS, i%s.BS
		if err := s.M.Mem.WriteF64(s.Parts[node]+uint64(8*off), f(i)); err != nil {
			return err
		}
	}
	return nil
}

// Golden computes the reference sum of [from, to) in Go.
func (s *System) Golden(from, to int) (float64, error) {
	var sum float64
	for i := from; i < to; i++ {
		node, off := i/s.BS, i%s.BS
		v, err := s.M.Mem.ReadF64(s.Parts[node] + uint64(8*off))
		if err != nil {
			return 0, err
		}
		sum += v
	}
	return sum, nil
}

// Sum runs the generic global reduction over [from, to).
func (s *System) Sum(from, to int) (float64, error) {
	return s.SumWith(s.GSum, s.PgasGet, from, to)
}

// publishTelemetry pushes local/remote access deltas since the last
// publication into the default registry.
func (s *System) publishTelemetry() {
	if !telemetry.Enabled() {
		return
	}
	var local, remote uint64
	for _, rc := range s.locals {
		local += rc.Count
	}
	for _, rc := range s.remotes {
		remote += rc.Count
	}
	mLocalAccesses.Add(local - s.pubLocal)
	mRemoteAccesses.Add(remote - s.pubRemote)
	s.pubLocal, s.pubRemote = local, remote
}

// SpecializeSum rewrites gsum for the current distribution: descriptor
// known (block size, executing node, partition table fold; a power-of-two
// block size strength-reduces the index translation), getter inlined. The
// loop itself stays a loop. Callers pass the same argument list.
func (s *System) SpecializeSum() (*brew.Result, error) {
	cfg := brew.NewConfig().
		SetParamPtrToKnown(1, garrSize).
		SetParam(4, brew.ParamKnown)
	// Only the driving loop needs unroll protection; inside the getters
	// every branch condition depends on the (unknown) index, so locality
	// checks survive naturally while the descriptor folds.
	cfg.SetFuncOpts(s.GSum, brew.FuncOpts{BranchesUnknown: true, ResultsUnknown: true})
	out, err := brew.Do(s.M, &brew.Request{
		Config: cfg, Fn: s.GSum, Args: []uint64{s.Garr, 0, 0, s.PgasGet},
	})
	if err != nil {
		return nil, err
	}
	return out.Result, nil
}

// Preload simulates an RDMA bulk transfer of global range [lo, hi) into
// the local prefetch buffer and publishes the window in the descriptor
// (the paper's Section VIII: "triggering preloading from remote nodes per
// RDMA"). A bulk transfer pays the protocol cost once.
func (s *System) Preload(lo, hi int) error {
	if hi-lo > s.prefCap {
		return fmt.Errorf("pgas: prefetch window %d exceeds buffer %d", hi-lo, s.prefCap)
	}
	for i := lo; i < hi; i++ {
		node, off := i/s.BS, i%s.BS
		v, err := s.M.Mem.ReadF64(s.Parts[node] + uint64(8*off))
		if err != nil {
			return err
		}
		if err := s.M.Mem.WriteF64(s.prefBuf+uint64(8*(i-lo)), v); err != nil {
			return err
		}
	}
	// One protocol round plus per-element wire cost, charged up front.
	s.M.Stats.Cycles += RdmaCallCost + uint64(hi-lo)*8
	mRdmaPreloads.Inc()
	mRdmaBytes.Add(uint64(hi-lo) * 8)
	w := func(off int, v uint64) error { return s.M.Mem.Write64(s.Garr+uint64(off), v) }
	if err := w(offPref, s.prefBuf); err != nil {
		return err
	}
	if err := w(offPrefLo, uint64(lo)); err != nil {
		return err
	}
	return w(offPrefHi, uint64(hi))
}

// SpecializeSumPrefetched rewrites gsum against the prefetch-aware getter
// with the current prefetch window folded in: accesses inside the window
// become direct local buffer loads. Must be re-run when the window moves
// ("a runtime system could trigger a new specialization whenever the
// domain map is changed", Section VI).
func (s *System) SpecializeSumPrefetched() (*brew.Result, error) {
	cfg := brew.NewConfig().
		SetParamPtrToKnown(1, garrSize).
		SetParam(4, brew.ParamKnown)
	cfg.SetFuncOpts(s.GSum, brew.FuncOpts{BranchesUnknown: true, ResultsUnknown: true})
	out, err := brew.Do(s.M, &brew.Request{
		Config: cfg, Fn: s.GSum, Args: []uint64{s.Garr, 0, 0, s.PgasGetPref},
	})
	if err != nil {
		return nil, err
	}
	return out.Result, nil
}

// SumWith runs a (possibly rewritten) reduction entry with the given
// getter argument.
func (s *System) SumWith(fn, getter uint64, from, to int) (float64, error) {
	v, err := s.M.CallFloat(fn, []uint64{s.Garr, uint64(from), uint64(to), getter}, nil)
	s.publishTelemetry()
	return v, err
}

// RemoteAccesses reports the number of fine-grained accesses that hit
// remote partitions so far.
func (s *System) RemoteAccesses() uint64 {
	var n uint64
	for _, rc := range s.remotes {
		n += rc.Count
	}
	return n
}

// DescriptorSize is the byte size of the GArr descriptor, for
// ParamPtrToKnown declarations on kernels taking a *GArr.
const DescriptorSize = garrSize
