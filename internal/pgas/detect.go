package pgas

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/brew"
)

// Section VIII, end to end: "We want to use our API to detect remote
// memory accesses in arbitrary code, triggering preloading from remote
// nodes per RDMA, and use a second rewritten version of the same code
// which redirects memory access to the local pre-loaded data."
//
// DetectRemote builds an instrumented rewrite of gsum whose injected load
// handler records the address window of accesses that hit non-local
// partitions; AutoOptimize turns the window into a bulk preload plus a
// respecialized access path.

// detectRuntime is the detection handler: r9 carries the accessed address
// (handler-injection contract); accesses within the watch window but
// outside the local partition update a min/max record.
const detectRuntime = `
det_handler:
    push r7
    push r8
    movi r7, det_watch_lo
    load r7, [r7]
    cmp  r9, r7
    jb   det_done
    movi r7, det_watch_hi
    load r7, [r7]
    cmp  r9, r7
    jae  det_done
    movi r7, det_loc_lo
    load r7, [r7]
    cmp  r9, r7
    jb   det_remote
    movi r7, det_loc_hi
    load r7, [r7]
    cmp  r9, r7
    jb   det_done
det_remote:
    movi r7, det_min
    load r8, [r7]
    cmp  r9, r8
    jae  det_skipmin
    store [r7], r9
det_skipmin:
    movi r7, det_max
    load r8, [r7]
    cmp  r9, r8      ; det_max holds one-past; update when r9 >= max
    jb   det_done
    addi r9, 8          ; record one past the access
    store [r7], r9
    subi r9, 8
det_done:
    pop r8
    pop r7
    ret
.data
det_watch_lo: .quad 0
det_watch_hi: .quad 0
det_loc_lo:   .quad 0
det_loc_hi:   .quad 0
det_min:      .quad -1
det_max:      .quad 0
`

type detector struct {
	handler                  uint64
	watchLo, watchHi         uint64
	locLo, locHi, dmin, dmax uint64
	instrumented             uint64 // instrumented gsum entry
}

func (s *System) detector() (*detector, error) {
	if s.det != nil {
		return s.det, nil
	}
	im, err := asm.Load(s.M, detectRuntime)
	if err != nil {
		return nil, err
	}
	d := &detector{handler: im.MustEntry("det_handler")}
	d.watchLo = im.MustEntry("det_watch_lo")
	d.watchHi = im.MustEntry("det_watch_hi")
	d.locLo = im.MustEntry("det_loc_lo")
	d.locHi = im.MustEntry("det_loc_hi")
	d.dmin = im.MustEntry("det_min")
	d.dmax = im.MustEntry("det_max")

	// Watch window: the hull of all partitions.
	lo, hi := ^uint64(0), uint64(0)
	for _, p := range s.Parts {
		if p < lo {
			lo = p
		}
		if e := p + uint64(s.BS*8); e > hi {
			hi = e
		}
	}
	w := func(addr, v uint64) error { return s.M.Mem.Write64(addr, v) }
	if err := w(d.watchLo, lo); err != nil {
		return nil, err
	}
	if err := w(d.watchHi, hi); err != nil {
		return nil, err
	}
	if err := w(d.locLo, s.Parts[s.Me]); err != nil {
		return nil, err
	}
	if err := w(d.locHi, s.Parts[s.Me]+uint64(s.BS*8)); err != nil {
		return nil, err
	}

	// Instrumented rewrite: same specialization as SpecializeSum (the
	// getter must be inlined so its loads are observable) plus the load
	// handler.
	cfg := brew.NewConfig().
		SetParamPtrToKnown(1, garrSize).
		SetParam(4, brew.ParamKnown)
	cfg.SetFuncOpts(s.GSum, brew.FuncOpts{BranchesUnknown: true, ResultsUnknown: true})
	cfg.LoadHandler = d.handler
	out, err := brew.Do(s.M, &brew.Request{
		Config: cfg, Fn: s.GSum, Args: []uint64{s.Garr, 0, 0, s.PgasGet},
	})
	if err != nil {
		return nil, err
	}
	d.instrumented = out.Addr
	s.det = d
	return d, nil
}

// DetectionHandler returns the address of the remote-access detection
// callback for use as a brew.Config.LoadHandler on any kernel operating
// over this system's partitions (lazy-built).
func (s *System) DetectionHandler() (uint64, error) {
	d, err := s.detector()
	if err != nil {
		return 0, err
	}
	return d.handler, nil
}

// ResetDetection clears the recorded remote-access window.
func (s *System) ResetDetection() error {
	d, err := s.detector()
	if err != nil {
		return err
	}
	if err := s.M.Mem.Write64(d.dmin, ^uint64(0)); err != nil {
		return err
	}
	return s.M.Mem.Write64(d.dmax, 0)
}

// DetectedWindow returns the remote global-index window [lo, hi) recorded
// since the last ResetDetection; ok is false when no remote access was
// observed.
func (s *System) DetectedWindow() (lo, hi int, ok bool, err error) {
	d, err := s.detector()
	if err != nil {
		return 0, 0, false, err
	}
	minA, _ := s.M.Mem.Read64(d.dmin)
	maxA, _ := s.M.Mem.Read64(d.dmax)
	if maxA == 0 || minA == ^uint64(0) {
		return 0, 0, false, nil
	}
	gi, ok1 := s.indexOfAddr(minA)
	gj, ok2 := s.indexOfAddr(maxA - 8)
	if !ok1 || !ok2 {
		return 0, 0, false, fmt.Errorf("pgas: detected window [0x%x,0x%x) outside partitions", minA, maxA)
	}
	return gi, gj + 1, true, nil
}

// DetectRemote executes one instrumented reduction over [from, to) and
// returns the observed remote global-index window [lo, hi) (lo == hi when
// every access was local). The instrumented run computes the correct sum;
// its result is returned too.
func (s *System) DetectRemote(from, to int) (lo, hi int, sum float64, err error) {
	d, err := s.detector()
	if err != nil {
		return 0, 0, 0, err
	}
	if err := s.ResetDetection(); err != nil {
		return 0, 0, 0, err
	}
	sum, err = s.SumWith(d.instrumented, s.PgasGet, from, to)
	if err != nil {
		return 0, 0, 0, err
	}
	lo, hi, ok, err := s.DetectedWindow()
	if err != nil {
		return 0, 0, sum, err
	}
	if !ok {
		return 0, 0, sum, nil // all local
	}
	return lo, hi, sum, nil
}

// indexOfAddr maps a partition address back to the global element index.
func (s *System) indexOfAddr(addr uint64) (int, bool) {
	for n, p := range s.Parts {
		if addr >= p && addr < p+uint64(s.BS*8) {
			return n*s.BS + int(addr-p)/8, true
		}
	}
	return 0, false
}

// AutoOptimize runs detection over [from, to) and, when remote accesses
// are observed, preloads the detected window and respecializes against
// the prefetch-aware getter. It returns the optimized entry, the getter
// to pass it, and whether a preload happened.
func (s *System) AutoOptimize(from, to int) (fn, getter uint64, preloaded bool, err error) {
	lo, hi, _, err := s.DetectRemote(from, to)
	if err != nil {
		return 0, 0, false, err
	}
	if lo == hi {
		res, err := s.SpecializeSum()
		if err != nil {
			return 0, 0, false, err
		}
		return res.Addr, s.PgasGet, false, nil
	}
	if hi-lo > s.prefCap {
		hi = lo + s.prefCap // window bounded by the buffer
	}
	if err := s.Preload(lo, hi); err != nil {
		return 0, 0, false, err
	}
	res, err := s.SpecializeSumPrefetched()
	if err != nil {
		return 0, 0, false, err
	}
	return res.Addr, s.PgasGetPref, true, nil
}
