package minc

import (
	"fmt"
	"strings"
)

// TypeKind classifies minc types.
type TypeKind int

// Type kinds.
const (
	TVoid   TypeKind = iota
	TLong            // 64-bit signed integer ("long", "int" is an alias)
	TDouble          // 64-bit IEEE float
	TPtr
	TStruct
	TArray
	TFunc // function type (only used behind pointers)
)

// Type describes a minc type. Types are interned enough for comparison by
// structural equality via same().
type Type struct {
	Kind TypeKind
	Elem *Type // TPtr, TArray element
	Len  int   // TArray length; -1 for flexible array member
	// TStruct:
	StructName string
	Fields     []Field
	// TFunc:
	Ret    *Type
	Params []*Type
}

// Field is one struct member.
type Field struct {
	Name   string
	Type   *Type
	Offset int64
}

var (
	typeVoid   = &Type{Kind: TVoid}
	typeLong   = &Type{Kind: TLong}
	typeDouble = &Type{Kind: TDouble}
)

func ptrTo(t *Type) *Type { return &Type{Kind: TPtr, Elem: t} }

// Size returns the storage size in bytes. Every scalar is 8 bytes wide,
// matching VX64's 64-bit loads and stores.
func (t *Type) Size() int64 {
	switch t.Kind {
	case TLong, TDouble, TPtr:
		return 8
	case TArray:
		if t.Len < 0 {
			return 0 // flexible array member
		}
		return int64(t.Len) * t.Elem.Size()
	case TStruct:
		var n int64
		for _, f := range t.Fields {
			n = f.Offset + f.Type.Size()
		}
		return n
	}
	return 0
}

// isScalar reports whether values of the type fit a register.
func (t *Type) isScalar() bool {
	return t.Kind == TLong || t.Kind == TDouble || t.Kind == TPtr
}

// isInt reports whether the type lives in the integer register class.
func (t *Type) isInt() bool { return t.Kind == TLong || t.Kind == TPtr }

func (t *Type) isFuncPtr() bool { return t.Kind == TPtr && t.Elem.Kind == TFunc }

func (t *Type) same(o *Type) bool {
	if t == o {
		return true
	}
	if t == nil || o == nil || t.Kind != o.Kind {
		return false
	}
	switch t.Kind {
	case TPtr, TArray:
		return t.Len == o.Len && t.Elem.same(o.Elem)
	case TStruct:
		return t.StructName == o.StructName
	case TFunc:
		if !t.Ret.same(o.Ret) || len(t.Params) != len(o.Params) {
			return false
		}
		for i := range t.Params {
			if !t.Params[i].same(o.Params[i]) {
				return false
			}
		}
		return true
	}
	return true
}

func (t *Type) String() string {
	if t == nil {
		return "<nil>"
	}
	switch t.Kind {
	case TVoid:
		return "void"
	case TLong:
		return "long"
	case TDouble:
		return "double"
	case TPtr:
		return t.Elem.String() + "*"
	case TArray:
		if t.Len < 0 {
			return t.Elem.String() + "[]"
		}
		return fmt.Sprintf("%s[%d]", t.Elem, t.Len)
	case TStruct:
		return "struct " + t.StructName
	case TFunc:
		var ps []string
		for _, p := range t.Params {
			ps = append(ps, p.String())
		}
		return fmt.Sprintf("%s(%s)", t.Ret, strings.Join(ps, ", "))
	}
	return "?"
}

// field looks up a struct member.
func (t *Type) field(name string) (Field, bool) {
	for _, f := range t.Fields {
		if f.Name == name {
			return f, true
		}
	}
	return Field{}, false
}

// layoutStruct assigns 8-byte-aligned offsets.
func layoutStruct(fields []Field) []Field {
	var off int64
	for i := range fields {
		fields[i].Offset = off
		off += fields[i].Type.Size()
	}
	return fields
}
