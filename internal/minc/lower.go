package minc

import "repro/internal/isa"

// Lowering: checked AST -> IR.

type lowerer struct {
	f    *irFunc
	cf   *checkedFunc
	cur  *irBlock
	brk  []*irBlock // break targets
	cont []*irBlock // continue targets
}

func lowerFunc(cf *checkedFunc) (*irFunc, error) {
	f := &irFunc{name: cf.decl.Name, decl: cf.decl, params: cf.params}
	lw := &lowerer{f: f, cf: cf}
	entry := f.newBlock()
	lw.cur = entry

	// Frame slots for address-taken locals and aggregates.
	var off int64
	for _, s := range cf.locals {
		if s.addrTaken || s.isArray {
			s.frameOff = off
			off += s.typ.Size()
			if s.typ.Size()%8 != 0 {
				off += 8 - s.typ.Size()%8
			}
		} else {
			s.vreg = f.newVal(classOf(s.typ))
		}
	}
	f.frameSize = off

	// Incoming parameters.
	intIdx, floatIdx := 0, 0
	for _, s := range cf.params {
		var abiIdx int
		var cls vclass
		if s.typ.isInt() {
			abiIdx, cls = intIdx, classInt
			intIdx++
		} else {
			abiIdx, cls = floatIdx+100, classFloat // float ABI slots offset
			floatIdx++
		}
		s.vreg = f.newVal(cls)
		lw.emit(irInstr{Op: irParam, Dst: s.vreg, Idx: abiIdx})
		if s.addrTaken {
			// Spill the parameter to a frame slot so & works.
			s.frameOff = f.frameSize
			f.frameSize += 8
			addr := f.newVal(classInt)
			lw.emit(irInstr{Op: irAddr, Dst: addr, Sym: s})
			lw.emit(irInstr{Op: irStore, A: addr, B: s.vreg, Size: 8})
		}
	}

	if err := lw.stmt(cf.decl.Body); err != nil {
		return nil, err
	}
	// Implicit return for void functions / fallthrough.
	if !lw.cur.terminated() {
		lw.emit(irInstr{Op: irRet, A: -1})
	}
	return f, nil
}

func classOf(t *Type) vclass {
	if t.Kind == TDouble {
		return classFloat
	}
	return classInt
}

func (lw *lowerer) emit(in irInstr) {
	lw.cur.ins = append(lw.cur.ins, in)
}

func (lw *lowerer) seal(b *irBlock) {
	if !lw.cur.terminated() {
		lw.emit(irInstr{Op: irJmp, T: b})
	}
	lw.cur = b
}

func (lw *lowerer) stmt(s *Stmt) error {
	if s == nil {
		return nil
	}
	switch s.Kind {
	case StBlock:
		for _, sub := range s.List {
			if err := lw.stmt(sub); err != nil {
				return err
			}
			if lw.cur.terminated() && sub != s.List[len(s.List)-1] {
				// Unreachable code after return/break: put it in a fresh
				// block so lowering stays well-formed.
				lw.cur = lw.f.newBlock()
			}
		}
		return nil

	case StDecl:
		if s.DeclInit == nil {
			return nil
		}
		sym := s.declSym
		v, err := lw.exprVal(s.DeclInit, classOf(sym.typ) == classFloat)
		if err != nil {
			return err
		}
		if sym.addrTaken || sym.isArray {
			addr := lw.f.newVal(classInt)
			lw.emit(irInstr{Op: irAddr, Dst: addr, Sym: sym})
			lw.emit(irInstr{Op: irStore, A: addr, B: v, Size: 8, Line: s.Line})
			return nil
		}
		lw.emit(irInstr{Op: irMov, Dst: sym.vreg, A: v, Line: s.Line})
		return nil

	case StExpr:
		_, err := lw.expr(s.X)
		return err

	case StIf:
		tb, fb, out := lw.f.newBlock(), lw.f.newBlock(), lw.f.newBlock()
		if s.Else == nil {
			fb = out
		}
		if err := lw.cond(s.CondE, tb, fb); err != nil {
			return err
		}
		lw.cur = tb
		if err := lw.stmt(s.Then); err != nil {
			return err
		}
		lw.seal(out)
		if s.Else != nil {
			lw.cur = fb
			if err := lw.stmt(s.Else); err != nil {
				return err
			}
			lw.seal(out)
		}
		lw.cur = out
		return nil

	case StWhile:
		head, body, out := lw.f.newBlock(), lw.f.newBlock(), lw.f.newBlock()
		lw.seal(head)
		if err := lw.cond(s.CondE, body, out); err != nil {
			return err
		}
		lw.cur = body
		lw.brk = append(lw.brk, out)
		lw.cont = append(lw.cont, head)
		if err := lw.stmt(s.Body); err != nil {
			return err
		}
		lw.brk = lw.brk[:len(lw.brk)-1]
		lw.cont = lw.cont[:len(lw.cont)-1]
		lw.seal(head)
		lw.cur = out
		return nil

	case StFor:
		if err := lw.stmt(s.Init); err != nil {
			return err
		}
		head, body, post, out := lw.f.newBlock(), lw.f.newBlock(), lw.f.newBlock(), lw.f.newBlock()
		lw.seal(head)
		if s.CondE != nil {
			if err := lw.cond(s.CondE, body, out); err != nil {
				return err
			}
		} else {
			lw.emit(irInstr{Op: irJmp, T: body})
		}
		lw.cur = body
		lw.brk = append(lw.brk, out)
		lw.cont = append(lw.cont, post)
		if err := lw.stmt(s.Body); err != nil {
			return err
		}
		lw.brk = lw.brk[:len(lw.brk)-1]
		lw.cont = lw.cont[:len(lw.cont)-1]
		lw.seal(post)
		if err := lw.stmt(s.Post); err != nil {
			return err
		}
		lw.seal(head)
		lw.cur = out
		return nil

	case StReturn:
		if s.X == nil {
			lw.emit(irInstr{Op: irRet, A: -1, Line: s.Line})
			return nil
		}
		v, err := lw.exprVal(s.X, lw.cf.decl.Ret.Kind == TDouble)
		if err != nil {
			return err
		}
		lw.emit(irInstr{Op: irRet, A: v, Line: s.Line})
		return nil

	case StBreak:
		lw.emit(irInstr{Op: irJmp, T: lw.brk[len(lw.brk)-1], Line: s.Line})
		return nil

	case StContinue:
		lw.emit(irInstr{Op: irJmp, T: lw.cont[len(lw.cont)-1], Line: s.Line})
		return nil
	}
	return errAt(s.Line, 1, "unhandled statement in lowering")
}

// intCondFor maps a C comparison operator to a signed condition code.
func intCondFor(op string) isa.Cond {
	switch op {
	case "==":
		return isa.CondEQ
	case "!=":
		return isa.CondNE
	case "<":
		return isa.CondLT
	case "<=":
		return isa.CondLE
	case ">":
		return isa.CondGT
	case ">=":
		return isa.CondGE
	}
	return isa.CondEQ
}

// floatCondFor maps a comparison to FCMP's unsigned-style flags.
func floatCondFor(op string) isa.Cond {
	switch op {
	case "==":
		return isa.CondEQ
	case "!=":
		return isa.CondNE
	case "<":
		return isa.CondB
	case "<=":
		return isa.CondBE
	case ">":
		return isa.CondA
	case ">=":
		return isa.CondAE
	}
	return isa.CondEQ
}

// cond lowers e as a branch to tb/fb.
func (lw *lowerer) cond(e *Expr, tb, fb *irBlock) error {
	switch {
	case e.Kind == ExBinary && e.Op == "&&":
		mid := lw.f.newBlock()
		if err := lw.cond(e.X, mid, fb); err != nil {
			return err
		}
		lw.cur = mid
		return lw.cond(e.Y, tb, fb)
	case e.Kind == ExBinary && e.Op == "||":
		mid := lw.f.newBlock()
		if err := lw.cond(e.X, tb, mid); err != nil {
			return err
		}
		lw.cur = mid
		return lw.cond(e.Y, tb, fb)
	case e.Kind == ExUnary && e.Op == "!":
		return lw.cond(e.X, fb, tb)
	case e.Kind == ExBinary && isCmpOp(e.Op):
		xf := e.X.Type.Kind == TDouble || e.Y.Type.Kind == TDouble
		a, err := lw.exprVal(e.X, xf)
		if err != nil {
			return err
		}
		b, err := lw.exprVal(e.Y, xf)
		if err != nil {
			return err
		}
		cc := intCondFor(e.Op)
		if xf {
			cc = floatCondFor(e.Op)
		}
		lw.emit(irInstr{Op: irBr, A: a, B: b, Cond: cc, FCmp: xf, T: tb, Fb: fb, Line: e.Line})
		return nil
	}
	// Generic scalar: compare against zero.
	v, err := lw.expr(e)
	if err != nil {
		return err
	}
	if e.Type.Kind == TDouble {
		z := lw.f.newVal(classFloat)
		lw.emit(irInstr{Op: irConstF, Dst: z, F: 0})
		lw.emit(irInstr{Op: irBr, A: v, B: z, Cond: isa.CondNE, FCmp: true, T: tb, Fb: fb, Line: e.Line})
		return nil
	}
	lw.emit(irInstr{Op: irBr, A: v, B: -1, UseImm: true, Imm: 0, Cond: isa.CondNE, T: tb, Fb: fb, Line: e.Line})
	return nil
}

func isCmpOp(op string) bool {
	switch op {
	case "==", "!=", "<", "<=", ">", ">=":
		return true
	}
	return false
}

// exprVal lowers e and converts the result to the requested class.
func (lw *lowerer) exprVal(e *Expr, wantFloat bool) (int, error) {
	v, err := lw.expr(e)
	if err != nil {
		return -1, err
	}
	isF := e.Type.Kind == TDouble
	switch {
	case wantFloat && !isF:
		d := lw.f.newVal(classFloat)
		lw.emit(irInstr{Op: irCvtIF, Dst: d, A: v, Line: e.Line})
		return d, nil
	case !wantFloat && isF:
		d := lw.f.newVal(classInt)
		lw.emit(irInstr{Op: irCvtFI, Dst: d, A: v, Line: e.Line})
		return d, nil
	}
	return v, nil
}

// addr computes the address of an lvalue, returning (value id, const
// offset).
func (lw *lowerer) addr(e *Expr) (int, int64, error) {
	switch e.Kind {
	case ExIdent:
		s := e.sym
		switch s.kind {
		case symGlobal, symLocal, symParam:
			if s.kind != symGlobal && !s.addrTaken && !s.isArray {
				return -1, 0, errAt(e.Line, 1, "internal: register variable has no address")
			}
			v := lw.f.newVal(classInt)
			lw.emit(irInstr{Op: irAddr, Dst: v, Sym: s, Line: e.Line})
			return v, 0, nil
		}
		return -1, 0, errAt(e.Line, 1, "cannot take address of %s", e.Name)

	case ExUnary:
		if e.Op != "*" {
			return -1, 0, errAt(e.Line, 1, "not an lvalue")
		}
		v, err := lw.expr(e.X)
		return v, 0, err

	case ExIndex:
		base, err := lw.expr(e.X)
		if err != nil {
			return -1, 0, err
		}
		size := e.X.Type.Elem.Size()
		if e.Y.Kind == ExIntLit {
			return base, e.Y.IVal * size, nil
		}
		idx, err := lw.exprVal(e.Y, false)
		if err != nil {
			return -1, 0, err
		}
		scaled := lw.f.newVal(classInt)
		lw.emit(irInstr{Op: irBin, Dst: scaled, A: idx, UseImm: true, Imm: size, Op2: "*", Line: e.Line})
		sum := lw.f.newVal(classInt)
		lw.emit(irInstr{Op: irBin, Dst: sum, A: base, B: scaled, Op2: "+", Line: e.Line})
		return sum, 0, nil

	case ExMember:
		if e.Arrow {
			base, err := lw.expr(e.X)
			if err != nil {
				return -1, 0, err
			}
			return base, e.fieldOff, nil
		}
		base, off, err := lw.addr(e.X)
		if err != nil {
			return -1, 0, err
		}
		return base, off + e.fieldOff, nil
	}
	return -1, 0, errAt(e.Line, 1, "not an lvalue")
}

// loadLV loads an lvalue's current value.
func (lw *lowerer) loadLV(e *Expr) (int, error) {
	// Register-allocated locals read directly.
	if e.Kind == ExIdent && (e.sym.kind == symLocal || e.sym.kind == symParam) &&
		!e.sym.addrTaken && !e.sym.isArray {
		return e.sym.vreg, nil
	}
	base, off, err := lw.addr(e)
	if err != nil {
		return -1, err
	}
	d := lw.f.newVal(classOf(e.Type))
	lw.emit(irInstr{Op: irLoad, Dst: d, A: base, Off: off, Size: 8, Line: e.Line})
	return d, nil
}

// storeLV assigns v to the lvalue e.
func (lw *lowerer) storeLV(e *Expr, v int) error {
	if e.Kind == ExIdent && (e.sym.kind == symLocal || e.sym.kind == symParam) &&
		!e.sym.addrTaken && !e.sym.isArray {
		lw.emit(irInstr{Op: irMov, Dst: e.sym.vreg, A: v, Line: e.Line})
		return nil
	}
	base, off, err := lw.addr(e)
	if err != nil {
		return err
	}
	lw.emit(irInstr{Op: irStore, A: base, B: v, Off: off, Size: 8, Line: e.Line})
	return nil
}

func (lw *lowerer) expr(e *Expr) (int, error) {
	switch e.Kind {
	case ExIntLit:
		v := lw.f.newVal(classInt)
		lw.emit(irInstr{Op: irConst, Dst: v, Imm: e.IVal, Line: e.Line})
		return v, nil

	case ExFloatLit:
		v := lw.f.newVal(classFloat)
		lw.emit(irInstr{Op: irConstF, Dst: v, F: e.FVal, Line: e.Line})
		return v, nil

	case ExSizeof:
		v := lw.f.newVal(classInt)
		lw.emit(irInstr{Op: irConst, Dst: v, Imm: e.sizeofT.Size(), Line: e.Line})
		return v, nil

	case ExIdent:
		s := e.sym
		switch s.kind {
		case symFunc, symExtern:
			v := lw.f.newVal(classInt)
			lw.emit(irInstr{Op: irAddr, Dst: v, Sym: s, Line: e.Line})
			return v, nil
		case symGlobal:
			v := lw.f.newVal(classInt)
			lw.emit(irInstr{Op: irAddr, Dst: v, Sym: s, Line: e.Line})
			if s.typ.Kind == TArray || s.typ.Kind == TStruct {
				return v, nil // decays to its address
			}
			d := lw.f.newVal(classOf(s.typ))
			lw.emit(irInstr{Op: irLoad, Dst: d, A: v, Size: 8, Line: e.Line})
			return d, nil
		default:
			if s.isArray {
				v := lw.f.newVal(classInt)
				lw.emit(irInstr{Op: irAddr, Dst: v, Sym: s, Line: e.Line})
				return v, nil
			}
			if s.addrTaken {
				return lw.loadLV(e)
			}
			return s.vreg, nil
		}

	case ExUnary:
		switch e.Op {
		case "-":
			v, err := lw.expr(e.X)
			if err != nil {
				return -1, err
			}
			d := lw.f.newVal(classOf(e.Type))
			lw.emit(irInstr{Op: irNeg, Dst: d, A: v, Line: e.Line})
			return d, nil
		case "~":
			v, err := lw.expr(e.X)
			if err != nil {
				return -1, err
			}
			d := lw.f.newVal(classInt)
			lw.emit(irInstr{Op: irNot, Dst: d, A: v, Line: e.Line})
			return d, nil
		case "!":
			v, err := lw.exprVal(e.X, false)
			if err != nil {
				return -1, err
			}
			d := lw.f.newVal(classInt)
			lw.emit(irInstr{Op: irSet, Dst: d, A: v, B: -1, UseImm: true, Imm: 0, Cond: isa.CondEQ, Line: e.Line})
			return d, nil
		case "&":
			if e.X.Kind == ExIdent && (e.X.sym.kind == symFunc || e.X.sym.kind == symExtern) {
				v := lw.f.newVal(classInt)
				lw.emit(irInstr{Op: irAddr, Dst: v, Sym: e.X.sym, Line: e.Line})
				return v, nil
			}
			base, off, err := lw.addr(e.X)
			if err != nil {
				return -1, err
			}
			if off == 0 {
				return base, nil
			}
			d := lw.f.newVal(classInt)
			lw.emit(irInstr{Op: irBin, Dst: d, A: base, UseImm: true, Imm: off, Op2: "+", Line: e.Line})
			return d, nil
		case "*":
			if e.Type.Kind == TStruct || e.Type.Kind == TArray {
				return lw.expr(e.X) // address is the value
			}
			base, err := lw.expr(e.X)
			if err != nil {
				return -1, err
			}
			d := lw.f.newVal(classOf(e.Type))
			lw.emit(irInstr{Op: irLoad, Dst: d, A: base, Size: 8, Line: e.Line})
			return d, nil
		}
		return -1, errAt(e.Line, 1, "unhandled unary %s", e.Op)

	case ExBinary:
		return lw.binary(e)

	case ExAssign:
		return lw.assign(e)

	case ExIncDec:
		step := int64(1)
		if e.X.Type.Kind == TPtr {
			step = e.X.Type.Elem.Size()
		}
		old, err := lw.loadLV(e.X)
		if err != nil {
			return -1, err
		}
		op := "+"
		if e.Op == "--" {
			op = "-"
		}
		d := lw.f.newVal(classInt)
		lw.emit(irInstr{Op: irBin, Dst: d, A: old, UseImm: true, Imm: step, Op2: op, Line: e.Line})
		if err := lw.storeLV(e.X, d); err != nil {
			return -1, err
		}
		return d, nil

	case ExCall:
		return lw.call(e)

	case ExIndex:
		if e.Type.Kind == TStruct || e.Type.Kind == TArray {
			base, off, err := lw.addr(e)
			if err != nil {
				return -1, err
			}
			if off == 0 {
				return base, nil
			}
			d := lw.f.newVal(classInt)
			lw.emit(irInstr{Op: irBin, Dst: d, A: base, UseImm: true, Imm: off, Op2: "+", Line: e.Line})
			return d, nil
		}
		base, off, err := lw.addr(e)
		if err != nil {
			return -1, err
		}
		d := lw.f.newVal(classOf(e.Type))
		lw.emit(irInstr{Op: irLoad, Dst: d, A: base, Off: off, Size: 8, Line: e.Line})
		return d, nil

	case ExMember:
		// Aggregate fields (structs, decayed arrays) evaluate to their
		// address.
		if isAggregateField(e) {
			var base int
			var off int64
			var err error
			if e.Arrow {
				base, err = lw.expr(e.X)
				off = e.fieldOff
			} else {
				base, off, err = lw.addr(e.X)
				off += e.fieldOff
			}
			if err != nil {
				return -1, err
			}
			if off == 0 {
				return base, nil
			}
			d := lw.f.newVal(classInt)
			lw.emit(irInstr{Op: irBin, Dst: d, A: base, UseImm: true, Imm: off, Op2: "+", Line: e.Line})
			return d, nil
		}
		base, off, err := lw.addr(e)
		if err != nil {
			return -1, err
		}
		d := lw.f.newVal(classOf(e.Type))
		lw.emit(irInstr{Op: irLoad, Dst: d, A: base, Off: off, Size: 8, Line: e.Line})
		return d, nil

	case ExCast:
		to := e.castTo
		from := e.X.Type
		v, err := lw.expr(e.X)
		if err != nil {
			return -1, err
		}
		switch {
		case to.Kind == TDouble && from.Kind != TDouble:
			d := lw.f.newVal(classFloat)
			lw.emit(irInstr{Op: irCvtIF, Dst: d, A: v, Line: e.Line})
			return d, nil
		case to.Kind != TDouble && from.Kind == TDouble:
			d := lw.f.newVal(classInt)
			lw.emit(irInstr{Op: irCvtFI, Dst: d, A: v, Line: e.Line})
			return d, nil
		default:
			return v, nil // pointer/integer casts are free
		}

	case ExCond:
		cls := classOf(e.Type)
		d := lw.f.newVal(cls)
		tb, fb, out := lw.f.newBlock(), lw.f.newBlock(), lw.f.newBlock()
		if err := lw.cond(e.X, tb, fb); err != nil {
			return -1, err
		}
		lw.cur = tb
		v1, err := lw.exprVal(e.Y, cls == classFloat)
		if err != nil {
			return -1, err
		}
		lw.emit(irInstr{Op: irMov, Dst: d, A: v1, Line: e.Line})
		lw.seal(out)
		lw.cur = fb
		v2, err := lw.exprVal(e.Z, cls == classFloat)
		if err != nil {
			return -1, err
		}
		lw.emit(irInstr{Op: irMov, Dst: d, A: v2, Line: e.Line})
		lw.seal(out)
		lw.cur = out
		return d, nil
	}
	return -1, errAt(e.Line, 1, "unhandled expression in lowering")
}

// isAggregateField reports whether the member expression denotes an
// aggregate (struct or decayed array field) whose "value" is its address.
func isAggregateField(e *Expr) bool {
	st := e.X.Type
	if e.Arrow {
		st = st.Elem
	}
	f, ok := st.field(e.Name)
	if !ok {
		return false
	}
	return f.Type.Kind == TArray || f.Type.Kind == TStruct
}

func (lw *lowerer) binary(e *Expr) (int, error) {
	switch e.Op {
	case "&&", "||":
		d := lw.f.newVal(classInt)
		tb, fb, out := lw.f.newBlock(), lw.f.newBlock(), lw.f.newBlock()
		if err := lw.cond(e, tb, fb); err != nil {
			return -1, err
		}
		lw.cur = tb
		lw.emit(irInstr{Op: irConst, Dst: d, Imm: 1, Line: e.Line})
		lw.emit(irInstr{Op: irJmp, T: out})
		lw.cur = fb
		lw.emit(irInstr{Op: irConst, Dst: d, Imm: 0, Line: e.Line})
		lw.emit(irInstr{Op: irJmp, T: out})
		lw.cur = out
		return d, nil

	case "==", "!=", "<", "<=", ">", ">=":
		xf := e.X.Type.Kind == TDouble || e.Y.Type.Kind == TDouble
		a, err := lw.exprVal(e.X, xf)
		if err != nil {
			return -1, err
		}
		b, err := lw.exprVal(e.Y, xf)
		if err != nil {
			return -1, err
		}
		cc := intCondFor(e.Op)
		if xf {
			cc = floatCondFor(e.Op)
		}
		d := lw.f.newVal(classInt)
		lw.emit(irInstr{Op: irSet, Dst: d, A: a, B: b, Cond: cc, FCmp: xf, Line: e.Line})
		return d, nil
	}

	// Pointer arithmetic scaling.
	if e.Type.Kind == TPtr && (e.Op == "+" || e.Op == "-") {
		ptr, idx := e.X, e.Y
		if e.X.Type.Kind != TPtr {
			ptr, idx = e.Y, e.X
		}
		pv, err := lw.expr(ptr)
		if err != nil {
			return -1, err
		}
		size := e.Type.Elem.Size()
		if idx.Kind == ExIntLit {
			off := idx.IVal * size
			if e.Op == "-" {
				off = -off
			}
			d := lw.f.newVal(classInt)
			lw.emit(irInstr{Op: irBin, Dst: d, A: pv, UseImm: true, Imm: off, Op2: "+", Line: e.Line})
			return d, nil
		}
		iv, err := lw.exprVal(idx, false)
		if err != nil {
			return -1, err
		}
		scaled := lw.f.newVal(classInt)
		lw.emit(irInstr{Op: irBin, Dst: scaled, A: iv, UseImm: true, Imm: size, Op2: "*", Line: e.Line})
		d := lw.f.newVal(classInt)
		lw.emit(irInstr{Op: irBin, Dst: d, A: pv, B: scaled, Op2: e.Op, Line: e.Line})
		return d, nil
	}

	wantF := e.Type.Kind == TDouble
	a, err := lw.exprVal(e.X, wantF)
	if err != nil {
		return -1, err
	}
	// Fold literal right operands into immediates (integer class only).
	if !wantF && e.Y.Kind == ExIntLit {
		d := lw.f.newVal(classOf(e.Type))
		lw.emit(irInstr{Op: irBin, Dst: d, A: a, UseImm: true, Imm: e.Y.IVal, Op2: e.Op, Line: e.Line})
		return d, nil
	}
	b, err := lw.exprVal(e.Y, wantF)
	if err != nil {
		return -1, err
	}
	d := lw.f.newVal(classOf(e.Type))
	lw.emit(irInstr{Op: irBin, Dst: d, A: a, B: b, Op2: e.Op, Line: e.Line})
	return d, nil
}

func (lw *lowerer) assign(e *Expr) (int, error) {
	wantF := e.X.Type.Kind == TDouble
	if e.Op == "=" {
		v, err := lw.exprVal(e.Y, wantF)
		if err != nil {
			return -1, err
		}
		if err := lw.storeLV(e.X, v); err != nil {
			return -1, err
		}
		return v, nil
	}
	// Compound assignment.
	old, err := lw.loadLV(e.X)
	if err != nil {
		return -1, err
	}
	op := e.Op[:len(e.Op)-1] // "+=" -> "+", "<<=" -> "<<"
	// Pointer compound assignment scales.
	if e.X.Type.Kind == TPtr {
		size := e.X.Type.Elem.Size()
		iv, err := lw.exprVal(e.Y, false)
		if err != nil {
			return -1, err
		}
		scaled := lw.f.newVal(classInt)
		lw.emit(irInstr{Op: irBin, Dst: scaled, A: iv, UseImm: true, Imm: size, Op2: "*", Line: e.Line})
		d := lw.f.newVal(classInt)
		lw.emit(irInstr{Op: irBin, Dst: d, A: old, B: scaled, Op2: op, Line: e.Line})
		if err := lw.storeLV(e.X, d); err != nil {
			return -1, err
		}
		return d, nil
	}
	v, err := lw.exprVal(e.Y, wantF)
	if err != nil {
		return -1, err
	}
	d := lw.f.newVal(classOf(e.X.Type))
	lw.emit(irInstr{Op: irBin, Dst: d, A: old, B: v, Op2: op, Line: e.Line})
	if err := lw.storeLV(e.X, d); err != nil {
		return -1, err
	}
	return d, nil
}

func (lw *lowerer) call(e *Expr) (int, error) {
	var args []int
	ft := e.X.Type
	if ft.Kind == TPtr {
		ft = ft.Elem
	}
	for i, a := range e.Args {
		v, err := lw.exprVal(a, ft.Params[i].Kind == TDouble)
		if err != nil {
			return -1, err
		}
		args = append(args, v)
	}
	dst := -1
	if e.Type.Kind != TVoid {
		dst = lw.f.newVal(classOf(e.Type))
	}
	// Direct call when the callee is a plain function name.
	if e.X.Kind == ExIdent && (e.X.sym.kind == symFunc || e.X.sym.kind == symExtern) {
		lw.emit(irInstr{Op: irCall, Dst: dst, Sym: e.X.sym, Args: args, Line: e.Line})
	} else {
		fv, err := lw.expr(e.X)
		if err != nil {
			return -1, err
		}
		lw.emit(irInstr{Op: irCallPtr, Dst: dst, A: fv, Args: args, Line: e.Line})
	}
	if dst < 0 {
		dst = lw.f.newVal(classInt) // dummy for expression-statement voids
	}
	return dst, nil
}
